#pragma once

// Indirect multistage switch topology (Table 3: "4x4 switch topology").
// For N nodes connected through k-ary switches the message traverses
// ceil(log_k N) switch stages each way; every stage adds a fall-through
// delay plus wire propagation.

#include <cstdint>

namespace ascoma::net {

class Topology {
 public:
  Topology(std::uint32_t nodes, std::uint32_t switch_arity);

  std::uint32_t nodes() const { return nodes_; }
  std::uint32_t arity() const { return arity_; }

  /// Number of switch stages traversed between two distinct nodes.
  std::uint32_t stages() const { return stages_; }

  /// Hop count between src and dst (0 when src == dst; otherwise the stage
  /// count — an indirect network has a uniform path length).
  std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const {
    return src == dst ? 0 : stages_;
  }

 private:
  std::uint32_t nodes_;
  std::uint32_t arity_;
  std::uint32_t stages_;
};

}  // namespace ascoma::net
