#pragma once

// Interconnect timing model.  A message from src to dst experiences
//
//   source NI  +  stages * fall-through  +  (stages+1) * propagation
//   +  destination input-port occupancy  +  destination NI
//
// Only destination input-port contention is modeled (each node has one input
// port Resource), matching the paper: "our network model only accounts for
// input port contention".
//
// Fault injection: an attached fault::FaultPlan may drop, duplicate, or
// jitter-delay individual messages.  try_deliver() performs one attempt and
// reports a drop to the caller (protocol layers run their own backoff);
// deliver() is the reliable primitive used by fire-and-forget traffic — it
// retransmits a dropped message after `retry_timeout` cycles, up to the
// configured attempt backstop.  With no plan attached (or a disabled one)
// both take the exact pre-fault code path, so zero-fault runs are
// bit-identical to a build without the fault layer.

#include <cstdint>
#include <vector>

#include "common/annotate.hh"
#include "common/config.hh"
#include "common/types.hh"
#include "fault/plan.hh"
#include "net/topology.hh"
#include "obs/sink.hh"
#include "sim/resource.hh"
#include "store/codec.hh"

namespace ascoma::net {

class Network {
 public:
  explicit Network(const MachineConfig& cfg);

  /// Attach a fault plan (nullptr detaches).  Non-owning.
  void set_fault_plan(fault::FaultPlan* plan) { plan_ = plan; }

  /// Attach an observability sink (nullptr detaches); injected faults are
  /// emitted as kFaultInjected events.
  void set_sink(obs::EventSink* sink) { sink_ = sink; }

  /// One delivery attempt src -> dst injected at `now`.
  struct Attempt {
    Cycle arrival{0};   ///< delivery cycle, or (when dropped) the cycle the
                         ///< message died in the fabric
    bool dropped = false;
  };
  ASCOMA_HOT_PATH Attempt try_deliver(Cycle now, NodeId src, NodeId dst);

  /// Reliable delivery: retransmits on drop every `retry_timeout` cycles;
  /// returns the arrival cycle (after the destination port and NI have
  /// processed it).  Throws CheckFailure once the attempt backstop is hit.
  Cycle deliver(Cycle now, NodeId src, NodeId dst);

  /// Uncontended one-way latency between distinct nodes (for calibration).
  Cycle min_one_way_latency() const;

  /// Uncontended latency for the specific pair — 0 for the src==dst loopback
  /// (which never enters the fabric), else min_one_way_latency().  The
  /// profiler uses this to split a delivery into fabric vs queueing cycles.
  Cycle uncontended_latency(NodeId src, NodeId dst) const {
    return src == dst ? Cycle{0} : min_one_way_latency();
  }

  /// Sender loss-detection timeout used by deliver() and protocol retries.
  Cycle retry_timeout() const { return retry_timeout_; }

  const Topology& topology() const { return topo_; }
  std::uint64_t messages() const { return messages_; }
  std::uint64_t retransmits() const { return retransmits_; }
  const sim::Resource& input_port(NodeId n) const { return ports_[n]; }
  const fault::FaultPlan* fault_plan() const { return plan_; }

  /// True when an enabled fault plan is attached (messages may fault).
  bool faulty() const { return plan_ != nullptr && plan_->enabled(); }

  // Checkpoint serialization: port resources + counters.  The fault plan is
  // owned (and serialized) by the machine, not here (encode/decode adjacent —
  // pairing check).
  void encode(store::Encoder& e) const {
    e.u64(ports_.size());
    for (const sim::Resource& p : ports_) p.encode(e);
    e.u64(messages_);
    e.u64(retransmits_);
  }
  void decode(store::Decoder& d) {
    if (d.u64() != ports_.size())
      throw store::CodecError("network geometry mismatch");
    for (sim::Resource& p : ports_) p.decode(d);
    messages_ = d.u64();
    retransmits_ = d.u64();
  }

  void reset();

 private:
  Topology topo_;
  Cycle ni_cycles_;
  Cycle fall_through_;
  Cycle propagation_;
  Cycle port_occupancy_;
  Cycle retry_timeout_;
  std::uint32_t retry_max_attempts_;
  IdVector<NodeId, sim::Resource> ports_;
  std::uint64_t messages_ = 0;
  std::uint64_t retransmits_ = 0;
  fault::FaultPlan* plan_ = nullptr;  // non-owning
  obs::EventSink* sink_ = nullptr;    // non-owning
};

}  // namespace ascoma::net
