#pragma once

// Interconnect timing model.  A message from src to dst experiences
//
//   source NI  +  stages * fall-through  +  (stages+1) * propagation
//   +  destination input-port occupancy  +  destination NI
//
// Only destination input-port contention is modeled (each node has one input
// port Resource), matching the paper: "our network model only accounts for
// input port contention".

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "net/topology.hh"
#include "sim/resource.hh"

namespace ascoma::net {

class Network {
 public:
  explicit Network(const MachineConfig& cfg);

  /// Deliver a message src -> dst injected at `now`; returns arrival cycle
  /// (after the destination port and NI have processed it).
  Cycle deliver(Cycle now, NodeId src, NodeId dst);

  /// Uncontended one-way latency between distinct nodes (for calibration).
  Cycle min_one_way_latency() const;

  const Topology& topology() const { return topo_; }
  std::uint64_t messages() const { return messages_; }
  const sim::Resource& input_port(NodeId n) const { return ports_[n]; }

  void reset();

 private:
  Topology topo_;
  Cycle ni_cycles_;
  Cycle fall_through_;
  Cycle propagation_;
  Cycle port_occupancy_;
  std::vector<sim::Resource> ports_;
  std::uint64_t messages_ = 0;
};

}  // namespace ascoma::net
