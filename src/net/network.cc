#include "net/network.hh"

#include "common/check.hh"
#include "selfprof/collector.hh"

namespace ascoma::net {

Network::Network(const MachineConfig& cfg)
    : topo_(cfg.nodes, cfg.switch_arity),
      ni_cycles_(cfg.net_interface_cycles),
      fall_through_(cfg.net_fall_through),
      propagation_(cfg.net_propagation),
      port_occupancy_(cfg.net_port_occupancy),
      retry_timeout_(cfg.retry_timeout),
      retry_max_attempts_(cfg.retry_max_attempts) {
  ports_.reserve(cfg.nodes);
  for (std::uint32_t n = 0; n < cfg.nodes; ++n)
    ports_.emplace_back("net.port" + std::to_string(n));
}

Network::Attempt Network::try_deliver(Cycle now, NodeId src, NodeId dst) {
  const selfprof::SelfScope sps(selfprof::HostSite::kNetDeliver);
  ASCOMA_CHECK(src.value() < ports_.size() && dst.value() < ports_.size());
  ++messages_;
  if (src == dst) return {now, false};  // loopback: NI shortcut, no fabric
  const std::uint32_t stages = topo_.stages();
  const Cycle fabric = ni_cycles_ + stages * fall_through_ +
                       (stages + 1) * propagation_;
  Cycle at_port = now + fabric;
  if (plan_ && plan_->enabled()) {
    const fault::FaultDecision d = plan_->decide(now, src, dst);
    if (d.drop) {
      if (sink_)
        sink_->emit(obs::EventKind::kFaultInjected, now, src, kInvalidPage,
                    static_cast<std::uint64_t>(fault::FaultKind::kDrop), dst.value());
      return {at_port, true};  // died in the fabric: never touches the port
    }
    if (d.jitter > Cycle{0}) {
      at_port += d.jitter;
      if (sink_)
        sink_->emit(obs::EventKind::kFaultInjected, now, src, kInvalidPage,
                    static_cast<std::uint64_t>(fault::FaultKind::kJitter), dst.value(),
                    d.jitter.value());
    }
    if (d.duplicate) {
      // The spurious copy occupies the destination input port ahead of the
      // real one; the receiver's NI discards it by sequence number.
      ports_[dst].acquire(at_port, port_occupancy_);
      if (sink_)
        sink_->emit(obs::EventKind::kFaultInjected, now, src, kInvalidPage,
                    static_cast<std::uint64_t>(fault::FaultKind::kDuplicate),
                    dst.value());
    }
  }
  // The input port serializes arriving messages, then the destination NI
  // hands the payload to the DSM engine.
  return {ports_[dst].acquire_until(at_port, port_occupancy_) + ni_cycles_,
          false};
}

Cycle Network::deliver(Cycle now, NodeId src, NodeId dst) {
  for (std::uint32_t attempt = 1;; ++attempt) {
    const Attempt a = try_deliver(now, src, dst);
    if (!a.dropped) return a.arrival;
    ASCOMA_CHECK_MSG(attempt < retry_max_attempts_,
                     "network retransmission budget exhausted ("
                         << retry_max_attempts_ << " attempts, " << src
                         << " -> " << dst << ")");
    ++retransmits_;
    now += retry_timeout_;  // hardware retransmit after the loss timeout
  }
}

Cycle Network::min_one_way_latency() const {
  const std::uint32_t stages = topo_.stages();
  return ni_cycles_ + stages * fall_through_ + (stages + 1) * propagation_ +
         port_occupancy_ + ni_cycles_;
}

void Network::reset() {
  for (auto& p : ports_) p.reset();
  messages_ = 0;
  retransmits_ = 0;
}

}  // namespace ascoma::net
