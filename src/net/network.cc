#include "net/network.hh"

#include "common/check.hh"

namespace ascoma::net {

Network::Network(const MachineConfig& cfg)
    : topo_(cfg.nodes, cfg.switch_arity),
      ni_cycles_(cfg.net_interface_cycles),
      fall_through_(cfg.net_fall_through),
      propagation_(cfg.net_propagation),
      port_occupancy_(cfg.net_port_occupancy) {
  ports_.reserve(cfg.nodes);
  for (std::uint32_t n = 0; n < cfg.nodes; ++n)
    ports_.emplace_back("net.port" + std::to_string(n));
}

Cycle Network::deliver(Cycle now, NodeId src, NodeId dst) {
  ASCOMA_CHECK(src < ports_.size() && dst < ports_.size());
  ++messages_;
  if (src == dst) return now;  // loopback: NI shortcut, no fabric traversal
  const std::uint32_t stages = topo_.stages();
  const Cycle fabric = ni_cycles_ + stages * fall_through_ +
                       (stages + 1) * propagation_;
  const Cycle at_port = now + fabric;
  // The input port serializes arriving messages, then the destination NI
  // hands the payload to the DSM engine.
  return ports_[dst].acquire_until(at_port, port_occupancy_) + ni_cycles_;
}

Cycle Network::min_one_way_latency() const {
  const std::uint32_t stages = topo_.stages();
  return ni_cycles_ + stages * fall_through_ + (stages + 1) * propagation_ +
         port_occupancy_ + ni_cycles_;
}

void Network::reset() {
  for (auto& p : ports_) p.reset();
  messages_ = 0;
}

}  // namespace ascoma::net
