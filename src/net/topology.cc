#include "net/topology.hh"

#include "common/check.hh"

namespace ascoma::net {

Topology::Topology(std::uint32_t nodes, std::uint32_t switch_arity)
    : nodes_(nodes), arity_(switch_arity) {
  ASCOMA_CHECK(nodes > 0);
  ASCOMA_CHECK(switch_arity >= 2);
  std::uint32_t stages = 1;
  std::uint64_t reach = switch_arity;
  while (reach < nodes) {
    reach *= switch_arity;
    ++stages;
  }
  stages_ = stages;
}

}  // namespace ascoma::net
