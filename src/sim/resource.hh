#pragma once

// Busy-until contention model.
//
// Every contended hardware unit (bus, DRAM bank, DSM controller, network
// input port) is a Resource.  A transaction reserves the resource for a
// duration starting no earlier than `now`; if the resource is still busy the
// transaction is delayed until it frees.  This is the classic queueing
// approximation used by occupancy-based architecture simulators and matches
// the paper's statement that (for the network) "port contention (only)" is
// modeled.

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "store/codec.hh"

namespace ascoma::sim {

class Resource {
 public:
  Resource() = default;
  explicit Resource(std::string name) : name_(std::move(name)) {}

  /// Reserves the resource for `duration` cycles starting at or after `now`.
  /// Returns the cycle at which service *starts* (>= now).  The caller's
  /// completion time is the returned value plus `duration`.
  Cycle acquire(Cycle now, Cycle duration) {
    const Cycle start = now > free_at_ ? now : free_at_;
    free_at_ = start + duration;
    busy_cycles_ += duration;
    wait_cycles_ += start - now;
    ++transactions_;
    return start;
  }

  /// Reserve and return the *completion* cycle directly.
  Cycle acquire_until(Cycle now, Cycle duration) {
    return acquire(now, duration) + duration;
  }

  Cycle free_at() const { return free_at_; }
  std::uint64_t transactions() const { return transactions_; }
  Cycle busy_cycles() const { return busy_cycles_; }
  Cycle wait_cycles() const { return wait_cycles_; }
  const std::string& name() const { return name_; }

  /// Utilization over the interval [0, horizon].
  double utilization(Cycle horizon) const;

  // Checkpoint serialization (ARCHITECTURE.md §15).  encode/decode pairs
  // stay adjacent so a field added to one side fails the lint pairing check.
  void encode(store::Encoder& e) const {
    e.u64(free_at_.value());
    e.u64(busy_cycles_.value());
    e.u64(wait_cycles_.value());
    e.u64(transactions_);
  }
  void decode(store::Decoder& d) {
    free_at_ = Cycle{d.u64()};
    busy_cycles_ = Cycle{d.u64()};
    wait_cycles_ = Cycle{d.u64()};
    transactions_ = d.u64();
  }

  void reset();

 private:
  std::string name_;
  Cycle free_at_{0};
  Cycle busy_cycles_{0};
  Cycle wait_cycles_{0};
  std::uint64_t transactions_ = 0;
};

}  // namespace ascoma::sim
