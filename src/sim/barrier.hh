#pragma once

// Global sense-reversing barrier for the SPMD workloads.  All processors
// participate in every barrier episode (SPLASH-2 style).  The machine loop
// blocks a processor when it arrives early and releases every participant at
// max(arrival) + release cost, charging the waiting interval to SYNC.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"
#include "store/codec.hh"

namespace ascoma::sim {

class Barrier {
 public:
  Barrier(std::uint32_t nprocs, Cycle release_cost);

  /// Processor `p` arrives at `now`.  Returns the release cycle if this
  /// arrival completes the episode (the caller must then ready every other
  /// participant), or nullopt if `p` must block.
  std::optional<Cycle> arrive(std::uint32_t p, Cycle now);

  /// Arrival cycle of `p` within the current (or just-completed) episode.
  Cycle arrival_of(std::uint32_t p) const;

  /// Marks a processor as no longer participating (its stream ended).  A
  /// departure can complete an episode; if so the release cycle is returned.
  std::optional<Cycle> depart(std::uint32_t p, Cycle now);

  std::uint64_t episodes() const { return episodes_; }
  std::uint32_t waiting() const { return arrived_count_; }

  // Checkpoint serialization (encode/decode stay adjacent — pairing check).
  void encode(store::Encoder& e) const {
    e.u32(participants_);
    for (std::uint32_t p = 0; p < participants_; ++p) {
      e.b(arrived_[p]);
      e.b(departed_[p]);
      e.u64(arrival_cycle_[p].value());
    }
    e.u32(arrived_count_);
    e.u32(departed_count_);
    e.u64(max_arrival_.value());
    e.u64(episodes_);
  }
  void decode(store::Decoder& d) {
    if (d.u32() != participants_)
      throw store::CodecError("barrier size mismatch");
    for (std::uint32_t p = 0; p < participants_; ++p) {
      arrived_[p] = d.b();
      departed_[p] = d.b();
      arrival_cycle_[p] = Cycle{d.u64()};
    }
    arrived_count_ = d.u32();
    departed_count_ = d.u32();
    max_arrival_ = Cycle{d.u64()};
    episodes_ = d.u64();
  }

 private:
  std::optional<Cycle> maybe_release();

  std::uint32_t participants_;
  Cycle release_cost_;
  std::vector<bool> arrived_;
  std::vector<bool> departed_;
  std::vector<Cycle> arrival_cycle_;
  std::uint32_t arrived_count_ = 0;
  std::uint32_t departed_count_ = 0;
  Cycle max_arrival_{0};
  std::uint64_t episodes_ = 0;
};

}  // namespace ascoma::sim
