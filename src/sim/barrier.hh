#pragma once

// Global sense-reversing barrier for the SPMD workloads.  All processors
// participate in every barrier episode (SPLASH-2 style).  The machine loop
// blocks a processor when it arrives early and releases every participant at
// max(arrival) + release cost, charging the waiting interval to SYNC.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"

namespace ascoma::sim {

class Barrier {
 public:
  Barrier(std::uint32_t nprocs, Cycle release_cost);

  /// Processor `p` arrives at `now`.  Returns the release cycle if this
  /// arrival completes the episode (the caller must then ready every other
  /// participant), or nullopt if `p` must block.
  std::optional<Cycle> arrive(std::uint32_t p, Cycle now);

  /// Arrival cycle of `p` within the current (or just-completed) episode.
  Cycle arrival_of(std::uint32_t p) const;

  /// Marks a processor as no longer participating (its stream ended).  A
  /// departure can complete an episode; if so the release cycle is returned.
  std::optional<Cycle> depart(std::uint32_t p, Cycle now);

  std::uint64_t episodes() const { return episodes_; }
  std::uint32_t waiting() const { return arrived_count_; }

 private:
  std::optional<Cycle> maybe_release();

  std::uint32_t participants_;
  Cycle release_cost_;
  std::vector<bool> arrived_;
  std::vector<bool> departed_;
  std::vector<Cycle> arrival_cycle_;
  std::uint32_t arrived_count_ = 0;
  std::uint32_t departed_count_ = 0;
  Cycle max_arrival_{0};
  std::uint64_t episodes_ = 0;
};

}  // namespace ascoma::sim
