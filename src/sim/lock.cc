#include "sim/lock.hh"

namespace ascoma::sim {

std::optional<Cycle> LockTable::acquire(std::uint64_t lock_id, std::uint32_t p,
                                        Cycle now) {
  LockState& l = locks_[lock_id];
  if (!l.held) {
    l.held = true;
    l.holder = p;
    ++acquisitions_;
    return now + op_cost_;
  }
  ASCOMA_CHECK_MSG(l.holder != p, "recursive lock acquisition");
  l.waiters.emplace_back(p, now);
  ++contended_;
  return std::nullopt;
}

std::optional<LockTable::Grant> LockTable::release(std::uint64_t lock_id,
                                                   std::uint32_t p, Cycle now) {
  auto it = locks_.find(lock_id);
  ASCOMA_CHECK_MSG(it != locks_.end(), "release of unknown lock");
  LockState& l = it->second;
  ASCOMA_CHECK_MSG(l.held && l.holder == p, "release by non-holder");
  if (l.waiters.empty()) {
    l.held = false;
    return std::nullopt;
  }
  auto [next, enq] = l.waiters.front();
  l.waiters.pop_front();
  l.holder = next;
  ++acquisitions_;
  return Grant{next, now + op_cost_, enq};
}

bool LockTable::is_held(std::uint64_t lock_id) const {
  auto it = locks_.find(lock_id);
  return it != locks_.end() && it->second.held;
}

}  // namespace ascoma::sim
