#pragma once

// Queued (ticket-style, FIFO) lock table for workload Lock/Unlock operations.
// Lock service time abstracts the underlying fetch&op traffic; contended
// waits are charged to the SYNC bucket by the machine loop.

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"

namespace ascoma::sim {

class LockTable {
 public:
  explicit LockTable(Cycle op_cost) : op_cost_(op_cost) {}

  /// Processor `p` tries to acquire `lock_id` at `now`.  Returns the grant
  /// cycle if the lock was free; nullopt if `p` was queued (the machine must
  /// block it; it will be resumed via the pair returned by release()).
  std::optional<Cycle> acquire(std::uint64_t lock_id, std::uint32_t p,
                               Cycle now);

  struct Grant {
    std::uint32_t proc;
    Cycle grant_cycle;
    Cycle enqueue_cycle;  ///< when the grantee originally requested the lock
  };

  /// Processor `p` releases `lock_id` at `now`.  If a waiter exists, returns
  /// its grant record so the machine can resume it.
  std::optional<Grant> release(std::uint64_t lock_id, std::uint32_t p,
                               Cycle now);

  bool is_held(std::uint64_t lock_id) const;
  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t contended_acquisitions() const { return contended_; }

 private:
  struct LockState {
    bool held = false;
    std::uint32_t holder = 0;
    std::deque<std::pair<std::uint32_t, Cycle>> waiters;  // (proc, enqueue)
  };

  Cycle op_cost_;
  std::unordered_map<std::uint64_t, LockState> locks_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_ = 0;
};

}  // namespace ascoma::sim
