#pragma once

// Queued (ticket-style, FIFO) lock table for workload Lock/Unlock operations.
// Lock service time abstracts the underlying fetch&op traffic; contended
// waits are charged to the SYNC bucket by the machine loop.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"
#include "store/codec.hh"

namespace ascoma::sim {

class LockTable {
 public:
  explicit LockTable(Cycle op_cost) : op_cost_(op_cost) {}

  /// Processor `p` tries to acquire `lock_id` at `now`.  Returns the grant
  /// cycle if the lock was free; nullopt if `p` was queued (the machine must
  /// block it; it will be resumed via the pair returned by release()).
  std::optional<Cycle> acquire(std::uint64_t lock_id, std::uint32_t p,
                               Cycle now);

  struct Grant {
    std::uint32_t proc;
    Cycle grant_cycle;
    Cycle enqueue_cycle;  ///< when the grantee originally requested the lock
  };

  /// Processor `p` releases `lock_id` at `now`.  If a waiter exists, returns
  /// its grant record so the machine can resume it.
  std::optional<Grant> release(std::uint64_t lock_id, std::uint32_t p,
                               Cycle now);

  bool is_held(std::uint64_t lock_id) const;
  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t contended_acquisitions() const { return contended_; }

  // Checkpoint serialization.  Locks are written sorted by id so the byte
  // image is canonical despite the unordered map (encode/decode adjacent —
  // pairing check).
  void encode(store::Encoder& e) const {
    std::vector<std::uint64_t> ids;
    ids.reserve(locks_.size());
    for (const auto& [id, st] : locks_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    e.u64(ids.size());
    for (const std::uint64_t id : ids) {
      const LockState& st = locks_.at(id);
      e.u64(id);
      e.b(st.held);
      e.u32(st.holder);
      e.u64(st.waiters.size());
      for (const auto& [proc, enq] : st.waiters) {
        e.u32(proc);
        e.u64(enq.value());
      }
    }
    e.u64(acquisitions_);
    e.u64(contended_);
  }
  void decode(store::Decoder& d) {
    locks_.clear();
    const std::uint64_t n = d.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t id = d.u64();
      LockState st;
      st.held = d.b();
      st.holder = d.u32();
      const std::uint64_t waiters = d.u64();
      for (std::uint64_t w = 0; w < waiters; ++w) {
        const std::uint32_t proc = d.u32();
        st.waiters.emplace_back(proc, Cycle{d.u64()});
      }
      locks_.emplace(id, std::move(st));
    }
    acquisitions_ = d.u64();
    contended_ = d.u64();
  }

 private:
  struct LockState {
    bool held = false;
    std::uint32_t holder = 0;
    std::deque<std::pair<std::uint32_t, Cycle>> waiters;  // (proc, enqueue)
  };

  Cycle op_cost_;
  std::unordered_map<std::uint64_t, LockState> locks_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t contended_ = 0;
};

}  // namespace ascoma::sim
