#include "sim/scheduler.hh"

namespace ascoma::sim {

Scheduler::Scheduler(std::uint32_t nprocs)
    : ready_(nprocs, Cycle{0}),
      state_(nprocs, State::kRunnable),
      live_(nprocs) {
  ASCOMA_CHECK(nprocs > 0);
}

void Scheduler::set_ready(ProcId p, Cycle cycle) {
  ASCOMA_CHECK(p < nprocs());
  ASCOMA_CHECK_MSG(state_[p] != State::kDone, "readying a finished processor");
  ready_[p] = cycle;
  state_[p] = State::kRunnable;
}

void Scheduler::block(ProcId p) {
  ASCOMA_CHECK(p < nprocs());
  ASCOMA_CHECK(state_[p] == State::kRunnable);
  state_[p] = State::kBlocked;
}

void Scheduler::finish(ProcId p) {
  ASCOMA_CHECK(p < nprocs());
  ASCOMA_CHECK(state_[p] != State::kDone);
  state_[p] = State::kDone;
  ASCOMA_CHECK(live_ > 0);
  --live_;
}

ProcId Scheduler::pick() const {
  ProcId best = nprocs();
  for (ProcId p = 0; p < nprocs(); ++p) {
    if (state_[p] != State::kRunnable) continue;
    if (best == nprocs() || ready_[p] < ready_[best]) best = p;
  }
  ASCOMA_CHECK_MSG(best != nprocs(),
                   "deadlock: all live processors are blocked");
  return best;
}

}  // namespace ascoma::sim
