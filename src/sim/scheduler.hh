#pragma once

// Cooperative processor scheduler for the discrete-event machine loop.
//
// Each simulated processor is either runnable (has a known next-ready cycle),
// blocked (waiting on a barrier or lock; it will be re-readied by whoever
// releases it), or done.  The machine repeatedly picks the runnable processor
// with the smallest next-ready cycle and executes its next operation — the
// standard conservative event loop for blocking in-order processors.

#include <cstdint>
#include <vector>

#include "common/annotate.hh"
#include "common/check.hh"
#include "common/types.hh"
#include "store/codec.hh"

namespace ascoma::sim {

using ProcId = std::uint32_t;

class Scheduler {
 public:
  explicit Scheduler(std::uint32_t nprocs);

  std::uint32_t nprocs() const { return static_cast<std::uint32_t>(ready_.size()); }

  void set_ready(ProcId p, Cycle cycle);
  void block(ProcId p);
  void finish(ProcId p);

  bool is_blocked(ProcId p) const { return state_[p] == State::kBlocked; }
  bool is_done(ProcId p) const { return state_[p] == State::kDone; }
  Cycle ready_at(ProcId p) const { return ready_[p]; }

  /// Number of processors not yet done.
  std::uint32_t live() const { return live_; }
  bool all_done() const { return live_ == 0; }

  /// Picks the runnable processor with the smallest ready cycle.  It is a
  /// deadlock (checked) for every live processor to be blocked.
  ASCOMA_HOT_PATH ProcId pick() const;

  // Checkpoint serialization (encode/decode stay adjacent — pairing check).
  void encode(store::Encoder& e) const {
    e.u64(ready_.size());
    for (const Cycle c : ready_) e.u64(c.value());
    for (const State s : state_) e.u8(static_cast<std::uint8_t>(s));
    e.u32(live_);
  }
  void decode(store::Decoder& d) {
    const std::uint64_t n = d.u64();
    if (n != ready_.size())
      throw store::CodecError("scheduler size mismatch");
    for (Cycle& c : ready_) c = Cycle{d.u64()};
    for (State& s : state_) s = static_cast<State>(d.u8());
    live_ = d.u32();
  }

 private:
  enum class State : std::uint8_t { kRunnable, kBlocked, kDone };
  std::vector<Cycle> ready_;
  std::vector<State> state_;
  std::uint32_t live_;
};

}  // namespace ascoma::sim
