#pragma once

// Cooperative processor scheduler for the discrete-event machine loop.
//
// Each simulated processor is either runnable (has a known next-ready cycle),
// blocked (waiting on a barrier or lock; it will be re-readied by whoever
// releases it), or done.  The machine repeatedly picks the runnable processor
// with the smallest next-ready cycle and executes its next operation — the
// standard conservative event loop for blocking in-order processors.

#include <cstdint>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"

namespace ascoma::sim {

using ProcId = std::uint32_t;

class Scheduler {
 public:
  explicit Scheduler(std::uint32_t nprocs);

  std::uint32_t nprocs() const { return static_cast<std::uint32_t>(ready_.size()); }

  void set_ready(ProcId p, Cycle cycle);
  void block(ProcId p);
  void finish(ProcId p);

  bool is_blocked(ProcId p) const { return state_[p] == State::kBlocked; }
  bool is_done(ProcId p) const { return state_[p] == State::kDone; }
  Cycle ready_at(ProcId p) const { return ready_[p]; }

  /// Number of processors not yet done.
  std::uint32_t live() const { return live_; }
  bool all_done() const { return live_ == 0; }

  /// Picks the runnable processor with the smallest ready cycle.  It is a
  /// deadlock (checked) for every live processor to be blocked.
  ProcId pick() const;

 private:
  enum class State : std::uint8_t { kRunnable, kBlocked, kDone };
  std::vector<Cycle> ready_;
  std::vector<State> state_;
  std::uint32_t live_;
};

}  // namespace ascoma::sim
