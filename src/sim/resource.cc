#include "sim/resource.hh"

namespace ascoma::sim {

double Resource::utilization(Cycle horizon) const {
  if (horizon == 0) return 0.0;
  return static_cast<double>(busy_cycles_) / static_cast<double>(horizon);
}

void Resource::reset() {
  free_at_ = 0;
  busy_cycles_ = 0;
  wait_cycles_ = 0;
  transactions_ = 0;
}

}  // namespace ascoma::sim
