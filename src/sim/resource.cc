#include "sim/resource.hh"

namespace ascoma::sim {

double Resource::utilization(Cycle horizon) const {
  if (horizon == Cycle{0}) return 0.0;
  return static_cast<double>(busy_cycles_.value()) /
         static_cast<double>(horizon.value());
}

void Resource::reset() {
  free_at_ = Cycle{0};
  busy_cycles_ = Cycle{0};
  wait_cycles_ = Cycle{0};
  transactions_ = 0;
}

}  // namespace ascoma::sim
