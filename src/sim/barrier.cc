#include "sim/barrier.hh"

#include <algorithm>

namespace ascoma::sim {

Barrier::Barrier(std::uint32_t nprocs, Cycle release_cost)
    : participants_(nprocs),
      release_cost_(release_cost),
      arrived_(nprocs, false),
      departed_(nprocs, false),
      arrival_cycle_(nprocs, Cycle{0}) {
  ASCOMA_CHECK(nprocs > 0);
}

std::optional<Cycle> Barrier::arrive(std::uint32_t p, Cycle now) {
  ASCOMA_CHECK(p < arrived_.size());
  ASCOMA_CHECK_MSG(!arrived_[p], "double arrival at barrier");
  ASCOMA_CHECK_MSG(!departed_[p], "departed processor arrived at barrier");
  arrived_[p] = true;
  arrival_cycle_[p] = now;
  ++arrived_count_;
  max_arrival_ = std::max(max_arrival_, now);
  return maybe_release();
}

Cycle Barrier::arrival_of(std::uint32_t p) const {
  ASCOMA_CHECK(p < arrival_cycle_.size());
  return arrival_cycle_[p];
}

std::optional<Cycle> Barrier::depart(std::uint32_t p, Cycle now) {
  ASCOMA_CHECK(p < departed_.size());
  if (departed_[p]) return std::nullopt;
  departed_[p] = true;
  ++departed_count_;
  max_arrival_ = std::max(max_arrival_, now);
  return maybe_release();
}

std::optional<Cycle> Barrier::maybe_release() {
  if (arrived_count_ == 0) return std::nullopt;  // nothing to release
  if (arrived_count_ + departed_count_ < participants_) return std::nullopt;
  // Episode complete: reset for the next one and report the release cycle.
  const Cycle release = max_arrival_ + release_cost_;
  std::fill(arrived_.begin(), arrived_.end(), false);
  arrived_count_ = 0;
  max_arrival_ = Cycle{0};
  ++episodes_;
  return release;
}

}  // namespace ascoma::sim
