#pragma once

// Table 2 reproduction: per-model storage cost and implementation-complexity
// inventory.  Storage follows the paper's accounting: S-COMA-capable models
// pay page-cache state (a valid bit per line plus a per-page map entry), and
// the hybrids additionally pay a refetch counter per page per node at the
// directory.

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"

namespace ascoma::arch {

struct StorageCost {
  std::uint64_t page_cache_state_bytes = 0;  ///< valid bits + page state
  std::uint64_t page_map_bytes = 0;          ///< local<->global page map
  std::uint64_t refetch_counter_bytes = 0;   ///< per page per node counters
  std::vector<std::string> complexity;       ///< required mechanisms

  std::uint64_t total_bytes() const {
    return page_cache_state_bytes + page_map_bytes + refetch_counter_bytes;
  }
};

/// Cost for one node managing `pages_per_node` local pages in a machine of
/// `cfg.nodes` nodes.
StorageCost estimate_storage(ArchModel model, const MachineConfig& cfg,
                             std::uint64_t pages_per_node);

}  // namespace ascoma::arch
