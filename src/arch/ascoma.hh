#pragma once

// AS-COMA — the paper's contribution.  Two departures from R-NUMA/VC-NUMA:
//
// 1. S-COMA-first allocation: while the local free page pool lasts, remote
//    pages are mapped directly in S-COMA mode (no refetches, no remap cost
//    at low memory pressure).  Once the pool drains — or while the node is
//    in thrash back-off — new pages are mapped CC-NUMA and must earn an
//    upgrade via the refetch threshold.
//
// 2. Adaptive replacement back-off: when the pageout daemon cannot refill
//    the pool to free_target it (a) raises the refetch threshold, (b)
//    stretches the daemon period, and (c) under sustained pressure disables
//    CC-NUMA -> S-COMA remapping entirely, converging to CC-NUMA behaviour.
//    When the daemon later finds ample cold pages (a program phase change),
//    the threshold steps back down and remapping resumes.
//
// The back-off/relaxation state machine itself lives in BackoffKernel
// (backoff_kernel.hh) so check::PolicyModel can explore the exact same
// transition logic exhaustively; this class owns the simulator-facing glue
// (time, stats, the hot-page-churn detector).

#include <algorithm>
#include <vector>

#include "arch/backoff_kernel.hh"
#include "arch/policy.hh"

namespace ascoma::arch {

class AsComaPolicy final : public Policy {
 public:
  explicit AsComaPolicy(const MachineConfig& cfg)
      : Policy(cfg),
        kernel_(BackoffSettings{cfg.refetch_threshold, cfg.threshold_increment,
                                cfg.threshold_max, cfg.daemon_period,
                                cfg.daemon_period_max,
                                cfg.daemon_backoff_factor,
                                /*relax_streak=*/3}) {}

  ArchModel model() const override { return ArchModel::kAsComa; }

  PageMode initial_mode(PolicyEnv& env) override;
  bool should_relocate(PolicyEnv& env, VPageId page,
                       std::uint32_t refetches) override;
  void on_daemon_result(PolicyEnv& env, const vm::DaemonResult& r) override;
  void on_replacement(PolicyEnv& env, VPageId victim) override;
  void on_remap_suppressed(PolicyEnv& env) override;

  bool thrashing() const { return kernel_.thrashing(); }
  const BackoffKernel& kernel() const { return kernel_; }

  void reserve_pages(std::uint64_t total_pages) override {
    if (total_pages > downgraded_at_.size())
      downgraded_at_.resize(total_pages, kNeverDowngraded);
  }

  // Checkpoint serialization.  `downgraded_at_` is written as (page, cycle)
  // pairs in ascending page order so the byte image is canonical and
  // independent of the array's capacity (encode/decode adjacent — pairing
  // check).
  void encode(store::Encoder& e) const override {
    Policy::encode(e);
    const BackoffState& st = kernel_.state();
    e.u32(st.threshold);
    e.b(st.relocation_enabled);
    e.b(st.thrashing);
    e.b(st.backed_off_once);
    e.u32(st.success_streak);
    e.u64(last_backoff_.value());
    std::uint64_t n = 0;
    for (const Cycle when : downgraded_at_)
      if (when != kNeverDowngraded) ++n;
    e.u64(n);
    for (std::uint64_t p = 0; p < downgraded_at_.size(); ++p) {
      if (downgraded_at_[p] == kNeverDowngraded) continue;
      e.u64(p);
      e.u64(downgraded_at_[p].value());
    }
  }
  void decode(store::Decoder& d) override {
    Policy::decode(d);
    BackoffState st{};
    st.threshold = d.u32();
    st.relocation_enabled = d.b();
    st.thrashing = d.b();
    st.backed_off_once = d.b();
    st.success_streak = d.u32();
    kernel_.restore(st);
    last_backoff_ = Cycle{d.u64()};
    std::fill(downgraded_at_.begin(), downgraded_at_.end(), kNeverDowngraded);
    const std::uint64_t n = d.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const VPageId page{d.u64()};
      reserve_pages(page.value() + 1);
      downgraded_at_[page.value()] = Cycle{d.u64()};
    }
  }

 private:
  void back_off(PolicyEnv& env);
  /// Mirror the kernel's threshold/remap decision into the Policy base
  /// fields the rest of the simulator reads.
  void sync_from_kernel() {
    threshold_ = kernel_.threshold();
    relocation_enabled_ = kernel_.relocation_enabled();
  }

  /// "no recorded downgrade" sentinel — simulated time never reaches 2^64-1.
  static constexpr Cycle kNeverDowngraded{~std::uint64_t{0}};

  /// Cold growth for direct-construction uses (tests) that never call
  /// reserve_pages(); simulator runs pre-size the array at machine setup, so
  /// the hot mutators below stay allocation-free.
  void grow_for(VPageId page) { reserve_pages(page.value() + 1); }

  BackoffKernel kernel_;
  Cycle last_backoff_{0};
  /// Downgrade timestamps indexed by page (kNeverDowngraded = absent): a
  /// page re-earning its upgrade shortly after being evicted means the cache
  /// is churning equally-hot pages — the paper's "replacing hot pages with
  /// other hot pages" thrash signature.
  std::vector<Cycle> downgraded_at_;
};

}  // namespace ascoma::arch
