#pragma once

// AS-COMA — the paper's contribution.  Two departures from R-NUMA/VC-NUMA:
//
// 1. S-COMA-first allocation: while the local free page pool lasts, remote
//    pages are mapped directly in S-COMA mode (no refetches, no remap cost
//    at low memory pressure).  Once the pool drains — or while the node is
//    in thrash back-off — new pages are mapped CC-NUMA and must earn an
//    upgrade via the refetch threshold.
//
// 2. Adaptive replacement back-off: when the pageout daemon cannot refill
//    the pool to free_target it (a) raises the refetch threshold, (b)
//    stretches the daemon period, and (c) under sustained pressure disables
//    CC-NUMA -> S-COMA remapping entirely, converging to CC-NUMA behaviour.
//    When the daemon later finds ample cold pages (a program phase change),
//    the threshold steps back down and remapping resumes.

#include <unordered_map>

#include "arch/policy.hh"

namespace ascoma::arch {

class AsComaPolicy final : public Policy {
 public:
  explicit AsComaPolicy(const MachineConfig& cfg)
      : Policy(cfg),
        increment_(cfg.threshold_increment),
        initial_threshold_(cfg.refetch_threshold),
        threshold_max_(cfg.threshold_max),
        backoff_factor_(cfg.daemon_backoff_factor),
        initial_period_(cfg.daemon_period),
        period_max_(cfg.daemon_period_max) {}

  ArchModel model() const override { return ArchModel::kAsComa; }

  PageMode initial_mode(PolicyEnv& env) override;
  bool should_relocate(PolicyEnv& env, VPageId page,
                       std::uint32_t refetches) override;
  void on_daemon_result(PolicyEnv& env, const vm::DaemonResult& r) override;
  void on_replacement(PolicyEnv& env, VPageId victim) override;
  void on_remap_suppressed(PolicyEnv& env) override;

  bool thrashing() const { return thrashing_; }

 private:
  void back_off(PolicyEnv& env);

  std::uint32_t increment_;
  std::uint32_t initial_threshold_;
  std::uint32_t threshold_max_;
  double backoff_factor_;
  Cycle initial_period_;
  Cycle period_max_;
  bool thrashing_ = false;
  Cycle last_backoff_ = 0;
  bool backed_off_once_ = false;
  std::uint32_t success_streak_ = 0;  ///< healthy daemon runs since failure
  /// Downgrade timestamps: a page re-earning its upgrade shortly after being
  /// evicted means the cache is churning equally-hot pages — the paper's
  /// "replacing hot pages with other hot pages" thrash signature.
  std::unordered_map<VPageId, Cycle> downgraded_at_;
};

}  // namespace ascoma::arch
