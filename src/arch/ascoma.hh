#pragma once

// AS-COMA — the paper's contribution.  Two departures from R-NUMA/VC-NUMA:
//
// 1. S-COMA-first allocation: while the local free page pool lasts, remote
//    pages are mapped directly in S-COMA mode (no refetches, no remap cost
//    at low memory pressure).  Once the pool drains — or while the node is
//    in thrash back-off — new pages are mapped CC-NUMA and must earn an
//    upgrade via the refetch threshold.
//
// 2. Adaptive replacement back-off: when the pageout daemon cannot refill
//    the pool to free_target it (a) raises the refetch threshold, (b)
//    stretches the daemon period, and (c) under sustained pressure disables
//    CC-NUMA -> S-COMA remapping entirely, converging to CC-NUMA behaviour.
//    When the daemon later finds ample cold pages (a program phase change),
//    the threshold steps back down and remapping resumes.
//
// The back-off/relaxation state machine itself lives in BackoffKernel
// (backoff_kernel.hh) so check::PolicyModel can explore the exact same
// transition logic exhaustively; this class owns the simulator-facing glue
// (time, stats, the hot-page-churn detector).

#include <unordered_map>

#include "arch/backoff_kernel.hh"
#include "arch/policy.hh"

namespace ascoma::arch {

class AsComaPolicy final : public Policy {
 public:
  explicit AsComaPolicy(const MachineConfig& cfg)
      : Policy(cfg),
        kernel_(BackoffSettings{cfg.refetch_threshold, cfg.threshold_increment,
                                cfg.threshold_max, cfg.daemon_period,
                                cfg.daemon_period_max,
                                cfg.daemon_backoff_factor,
                                /*relax_streak=*/3}) {}

  ArchModel model() const override { return ArchModel::kAsComa; }

  PageMode initial_mode(PolicyEnv& env) override;
  bool should_relocate(PolicyEnv& env, VPageId page,
                       std::uint32_t refetches) override;
  void on_daemon_result(PolicyEnv& env, const vm::DaemonResult& r) override;
  void on_replacement(PolicyEnv& env, VPageId victim) override;
  void on_remap_suppressed(PolicyEnv& env) override;

  bool thrashing() const { return kernel_.thrashing(); }
  const BackoffKernel& kernel() const { return kernel_; }

 private:
  void back_off(PolicyEnv& env);
  /// Mirror the kernel's threshold/remap decision into the Policy base
  /// fields the rest of the simulator reads.
  void sync_from_kernel() {
    threshold_ = kernel_.threshold();
    relocation_enabled_ = kernel_.relocation_enabled();
  }

  BackoffKernel kernel_;
  Cycle last_backoff_{0};
  /// Downgrade timestamps: a page re-earning its upgrade shortly after being
  /// evicted means the cache is churning equally-hot pages — the paper's
  /// "replacing hot pages with other hot pages" thrash signature.
  std::unordered_map<VPageId, Cycle> downgraded_at_;
};

}  // namespace ascoma::arch
