#pragma once

// AS-COMA — the paper's contribution.  Two departures from R-NUMA/VC-NUMA:
//
// 1. S-COMA-first allocation: while the local free page pool lasts, remote
//    pages are mapped directly in S-COMA mode (no refetches, no remap cost
//    at low memory pressure).  Once the pool drains — or while the node is
//    in thrash back-off — new pages are mapped CC-NUMA and must earn an
//    upgrade via the refetch threshold.
//
// 2. Adaptive replacement back-off: when the pageout daemon cannot refill
//    the pool to free_target it (a) raises the refetch threshold, (b)
//    stretches the daemon period, and (c) under sustained pressure disables
//    CC-NUMA -> S-COMA remapping entirely, converging to CC-NUMA behaviour.
//    When the daemon later finds ample cold pages (a program phase change),
//    the threshold steps back down and remapping resumes.
//
// The back-off/relaxation state machine itself lives in BackoffKernel
// (backoff_kernel.hh) so check::PolicyModel can explore the exact same
// transition logic exhaustively; this class owns the simulator-facing glue
// (time, stats, the hot-page-churn detector).

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "arch/backoff_kernel.hh"
#include "arch/policy.hh"

namespace ascoma::arch {

class AsComaPolicy final : public Policy {
 public:
  explicit AsComaPolicy(const MachineConfig& cfg)
      : Policy(cfg),
        kernel_(BackoffSettings{cfg.refetch_threshold, cfg.threshold_increment,
                                cfg.threshold_max, cfg.daemon_period,
                                cfg.daemon_period_max,
                                cfg.daemon_backoff_factor,
                                /*relax_streak=*/3}) {}

  ArchModel model() const override { return ArchModel::kAsComa; }

  PageMode initial_mode(PolicyEnv& env) override;
  bool should_relocate(PolicyEnv& env, VPageId page,
                       std::uint32_t refetches) override;
  void on_daemon_result(PolicyEnv& env, const vm::DaemonResult& r) override;
  void on_replacement(PolicyEnv& env, VPageId victim) override;
  void on_remap_suppressed(PolicyEnv& env) override;

  bool thrashing() const { return kernel_.thrashing(); }
  const BackoffKernel& kernel() const { return kernel_; }

  // Checkpoint serialization.  `downgraded_at_` is written sorted by page so
  // the byte image is canonical (encode/decode adjacent — pairing check).
  void encode(store::Encoder& e) const override {
    Policy::encode(e);
    const BackoffState& st = kernel_.state();
    e.u32(st.threshold);
    e.b(st.relocation_enabled);
    e.b(st.thrashing);
    e.b(st.backed_off_once);
    e.u32(st.success_streak);
    e.u64(last_backoff_.value());
    std::vector<std::pair<std::uint64_t, std::uint64_t>> dg;
    dg.reserve(downgraded_at_.size());
    for (const auto& [page, when] : downgraded_at_)
      dg.emplace_back(page.value(), when.value());
    std::sort(dg.begin(), dg.end());
    e.u64(dg.size());
    for (const auto& [page, when] : dg) {
      e.u64(page);
      e.u64(when);
    }
  }
  void decode(store::Decoder& d) override {
    Policy::decode(d);
    BackoffState st{};
    st.threshold = d.u32();
    st.relocation_enabled = d.b();
    st.thrashing = d.b();
    st.backed_off_once = d.b();
    st.success_streak = d.u32();
    kernel_.restore(st);
    last_backoff_ = Cycle{d.u64()};
    downgraded_at_.clear();
    const std::uint64_t n = d.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const VPageId page{d.u64()};
      downgraded_at_.emplace(page, Cycle{d.u64()});
    }
  }

 private:
  void back_off(PolicyEnv& env);
  /// Mirror the kernel's threshold/remap decision into the Policy base
  /// fields the rest of the simulator reads.
  void sync_from_kernel() {
    threshold_ = kernel_.threshold();
    relocation_enabled_ = kernel_.relocation_enabled();
  }

  BackoffKernel kernel_;
  Cycle last_backoff_{0};
  /// Downgrade timestamps: a page re-earning its upgrade shortly after being
  /// evicted means the cache is churning equally-hot pages — the paper's
  /// "replacing hot pages with other hot pages" thrash signature.
  std::unordered_map<VPageId, Cycle> downgraded_at_;
};

}  // namespace ascoma::arch
