#pragma once

// Plain CC-NUMA: every remote page is mapped in CC-NUMA mode forever.  No
// page cache use, no daemon, no remapping — its performance is independent
// of memory pressure (the single reference bar in Figures 2/3).

#include "arch/policy.hh"

namespace ascoma::arch {

class CcNumaPolicy final : public Policy {
 public:
  explicit CcNumaPolicy(const MachineConfig& cfg) : Policy(cfg) {
    relocation_enabled_ = false;
  }

  ArchModel model() const override { return ArchModel::kCcNuma; }
  PageMode initial_mode(PolicyEnv& env) override;
  bool should_relocate(PolicyEnv&, VPageId, std::uint32_t) override {
    return false;
  }
  bool runs_daemon() const override { return false; }
};

}  // namespace ascoma::arch
