#include "arch/ascoma.hh"

namespace ascoma::arch {

PageMode AsComaPolicy::initial_mode(PolicyEnv& env) {
  // S-COMA-preferred while the pool lasts; CC-NUMA once it drains or while
  // the node has concluded local memory cannot hold the working set.
  if (!env.cfg.ascoma_scoma_first) return PageMode::kNuma;
  if (!kernel_.thrashing() && env.page_cache.free_frames() > 0)
    return PageMode::kScoma;
  return PageMode::kNuma;
}

void AsComaPolicy::back_off(PolicyEnv& env) {
  if (!env.cfg.ascoma_backoff) return;  // ablation: back-off disabled
  // Thrashing: equally-hot pages would only replace each other.  Back off —
  // but escalate at most once per daemon period: the back-off is a pageout
  // daemon decision, and a burst of suppressed remaps within one period is
  // one signal, not many.
  const bool period_elapsed = env.now >= last_backoff_ + env.daemon_period;
  const BackoffStep step =
      kernel_.on_pressure(period_elapsed, &env.daemon_period);
  sync_from_kernel();
  if (step.accepted) last_backoff_ = env.now;
  if (step.escalated) note_threshold_raise(env);
}

bool AsComaPolicy::should_relocate(PolicyEnv& env, VPageId page,
                                   std::uint32_t refetches) {
  if (!Policy::should_relocate(env, page, refetches)) return false;
  // Re-upgrade detector: this page was itself downgraded recently, so the
  // page cache is churning equally-hot pages.  Let the upgrade proceed (the
  // page has re-earned the full threshold) but escalate the back-off so the
  // churn rate decays toward zero.
  if (env.cfg.ascoma_backoff && page.value() < downgraded_at_.size() &&
      downgraded_at_[page.value()] != kNeverDowngraded) {
    if (env.now - downgraded_at_[page.value()] <= 2 * env.daemon_period)
      back_off(env);
    downgraded_at_[page.value()] = kNeverDowngraded;
  }
  return relocation_enabled_;  // back_off may have just disabled remapping
}

void AsComaPolicy::on_replacement(PolicyEnv& env, VPageId victim) {
  if (victim.value() >= downgraded_at_.size()) grow_for(victim);
  downgraded_at_[victim.value()] = env.now;
}

void AsComaPolicy::on_remap_suppressed(PolicyEnv& env) {
  if (!env.cfg.ascoma_backoff) return;
  // A suppressed remap means the pool is drained *right now* — evidence that
  // memory is tight (stop S-COMA-first allocation), but not yet that the
  // cache holds only hot pages.  Only a pageout-daemon run that fails to
  // find cold pages (back_off via on_daemon_result) escalates the threshold;
  // if the daemon keeps succeeding (a phase-structured program like lu),
  // remapping continues at the pool-refill rate.
  kernel_.mark_thrashing();
}

void AsComaPolicy::on_daemon_result(PolicyEnv& env, const vm::DaemonResult& r) {
  if (!r.met_target) {
    kernel_.clear_streak();
    back_off(env);
    return;
  }

  // The pool was refilled.  Relaxation is hysteretic: it takes several
  // consecutive healthy runs that found genuinely cold pages (a program
  // phase change) to step the threshold back down — a single lucky run must
  // not reopen the remapping floodgates (radix would oscillate forever).
  const bool cold_evidence =
      r.reclaimed != 0 && r.cold_pages_seen >= r.reclaimed;
  const BackoffStep step = kernel_.on_healthy(cold_evidence, &env.daemon_period);
  sync_from_kernel();
  if (step.relaxed) note_threshold_drop(env);
}

}  // namespace ascoma::arch
