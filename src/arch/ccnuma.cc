#include "arch/ccnuma.hh"

namespace ascoma::arch {

PageMode CcNumaPolicy::initial_mode(PolicyEnv& env) {
  (void)env;
  return PageMode::kNuma;
}

}  // namespace ascoma::arch
