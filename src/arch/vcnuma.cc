#include "arch/vcnuma.hh"

#include <algorithm>

namespace ascoma::arch {

void VcNumaPolicy::on_replacement(PolicyEnv& env, VPageId victim) {
  ++window_replacements_;
  const bool known = victim.value() < benefit_.size();
  const std::uint32_t earned = known ? benefit_[victim.value()] : 0;
  if (known) benefit_[victim.value()] = 0;
  if (earned >= break_even_) ++window_earned_;

  // The detector is only consulted every `eval_replacements_` replacements
  // per cached page — the coarseness the paper criticises ("not sufficiently
  // often to avoid thrashing").
  const double cached =
      std::max<std::uint32_t>(1, env.page_cache.capacity());
  if (static_cast<double>(window_replacements_) >=
      eval_replacements_ * cached) {
    evaluate(env);
  }
}

void VcNumaPolicy::evaluate(PolicyEnv& env) {
  ++evaluations_;
  // If fewer than half of the evicted pages earned their break-even number
  // of saved refetches, the page cache is churning hot pages: back off.
  if (window_earned_ * 2 < window_replacements_) {
    threshold_ += increment_;
    note_threshold_raise(env);
  } else if (threshold_ > initial_threshold_) {
    threshold_ = std::max(initial_threshold_, threshold_ - increment_);
    note_threshold_drop(env);
  }
  window_replacements_ = 0;
  window_earned_ = 0;
}

}  // namespace ascoma::arch
