#pragma once

// VC-NUMA relocation strategy (Moga & Dubois).  Like R-NUMA it maps pages
// CC-NUMA-first and always upgrades on threshold crossing, but it adds a
// hardware thrashing detector: each S-COMA page carries a local refetch
// counter (here: page-cache hits it has supplied — the refetches it *saved*),
// and after an average of `vcnuma_eval_replacements` replacements per cached
// page the detector compares the evicted pages' earnings against a
// break-even number; if the evictions did not pay for themselves the
// relocation threshold is raised.
//
// Note: following the paper's methodology, only the relocation strategy is
// modeled — not the victim-cache integration with the processor cache, which
// requires non-commodity hardware.

#include <algorithm>
#include <vector>

#include "arch/policy.hh"

namespace ascoma::arch {

class VcNumaPolicy final : public Policy {
 public:
  explicit VcNumaPolicy(const MachineConfig& cfg)
      : Policy(cfg),
        break_even_(cfg.vcnuma_break_even),
        eval_replacements_(cfg.vcnuma_eval_replacements),
        increment_(cfg.threshold_increment),
        initial_threshold_(cfg.refetch_threshold) {}

  ArchModel model() const override { return ArchModel::kVcNuma; }
  PageMode initial_mode(PolicyEnv&) override { return PageMode::kNuma; }
  bool force_eviction_on_upgrade() const override { return true; }

  void reserve_pages(std::uint64_t total_pages) override {
    if (total_pages > benefit_.size()) benefit_.resize(total_pages, 0);
  }

  void on_page_cache_hit(VPageId page) override {
    if (page.value() >= benefit_.size()) grow_for(page);
    ++benefit_[page.value()];
  }
  void on_replacement(PolicyEnv& env, VPageId victim) override;

  // Exposed for tests/ablation.
  std::uint64_t window_replacements() const { return window_replacements_; }
  std::uint64_t evaluations() const { return evaluations_; }

  // Checkpoint serialization.  `benefit_` is written as (page, earned) pairs
  // in ascending page order, nonzero counters only, so the byte image is
  // canonical and independent of the array's capacity (encode/decode
  // adjacent — pairing check).
  void encode(store::Encoder& e) const override {
    Policy::encode(e);
    std::uint64_t n = 0;
    for (const std::uint32_t earned : benefit_)
      if (earned != 0) ++n;
    e.u64(n);
    for (std::uint64_t p = 0; p < benefit_.size(); ++p) {
      if (benefit_[p] == 0) continue;
      e.u64(p);
      e.u32(benefit_[p]);
    }
    e.u64(window_replacements_);
    e.u64(window_earned_);
    e.u64(evaluations_);
  }
  void decode(store::Decoder& d) override {
    Policy::decode(d);
    std::fill(benefit_.begin(), benefit_.end(), 0u);
    const std::uint64_t n = d.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const VPageId page{d.u64()};
      reserve_pages(page.value() + 1);
      benefit_[page.value()] = d.u32();
    }
    window_replacements_ = d.u64();
    window_earned_ = d.u64();
    evaluations_ = d.u64();
  }

 private:
  void evaluate(PolicyEnv& env);

  /// Cold growth for direct-construction uses (tests) that never call
  /// reserve_pages(); simulator runs pre-size the array at machine setup, so
  /// the hot mutators above stay allocation-free.
  void grow_for(VPageId page) { reserve_pages(page.value() + 1); }

  std::uint32_t break_even_;
  double eval_replacements_;
  std::uint32_t increment_;
  std::uint32_t initial_threshold_;

  /// Saved-refetch counters indexed by page (0 = never hit, counters are
  /// always >= 1 once earned).
  std::vector<std::uint32_t> benefit_;
  std::uint64_t window_replacements_ = 0;
  std::uint64_t window_earned_ = 0;
  std::uint64_t evaluations_ = 0;
};

}  // namespace ascoma::arch
