#pragma once

// VC-NUMA relocation strategy (Moga & Dubois).  Like R-NUMA it maps pages
// CC-NUMA-first and always upgrades on threshold crossing, but it adds a
// hardware thrashing detector: each S-COMA page carries a local refetch
// counter (here: page-cache hits it has supplied — the refetches it *saved*),
// and after an average of `vcnuma_eval_replacements` replacements per cached
// page the detector compares the evicted pages' earnings against a
// break-even number; if the evictions did not pay for themselves the
// relocation threshold is raised.
//
// Note: following the paper's methodology, only the relocation strategy is
// modeled — not the victim-cache integration with the processor cache, which
// requires non-commodity hardware.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "arch/policy.hh"

namespace ascoma::arch {

class VcNumaPolicy final : public Policy {
 public:
  explicit VcNumaPolicy(const MachineConfig& cfg)
      : Policy(cfg),
        break_even_(cfg.vcnuma_break_even),
        eval_replacements_(cfg.vcnuma_eval_replacements),
        increment_(cfg.threshold_increment),
        initial_threshold_(cfg.refetch_threshold) {}

  ArchModel model() const override { return ArchModel::kVcNuma; }
  PageMode initial_mode(PolicyEnv&) override { return PageMode::kNuma; }
  bool force_eviction_on_upgrade() const override { return true; }

  void on_page_cache_hit(VPageId page) override { ++benefit_[page]; }
  void on_replacement(PolicyEnv& env, VPageId victim) override;

  // Exposed for tests/ablation.
  std::uint64_t window_replacements() const { return window_replacements_; }
  std::uint64_t evaluations() const { return evaluations_; }

  // Checkpoint serialization.  `benefit_` is written sorted by page so the
  // byte image is canonical (encode/decode adjacent — pairing check).
  void encode(store::Encoder& e) const override {
    Policy::encode(e);
    std::vector<std::pair<std::uint64_t, std::uint32_t>> ben;
    ben.reserve(benefit_.size());
    for (const auto& [page, earned] : benefit_)
      ben.emplace_back(page.value(), earned);
    std::sort(ben.begin(), ben.end());
    e.u64(ben.size());
    for (const auto& [page, earned] : ben) {
      e.u64(page);
      e.u32(earned);
    }
    e.u64(window_replacements_);
    e.u64(window_earned_);
    e.u64(evaluations_);
  }
  void decode(store::Decoder& d) override {
    Policy::decode(d);
    benefit_.clear();
    const std::uint64_t n = d.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const VPageId page{d.u64()};
      benefit_.emplace(page, d.u32());
    }
    window_replacements_ = d.u64();
    window_earned_ = d.u64();
    evaluations_ = d.u64();
  }

 private:
  void evaluate(PolicyEnv& env);

  std::uint32_t break_even_;
  double eval_replacements_;
  std::uint32_t increment_;
  std::uint32_t initial_threshold_;

  std::unordered_map<VPageId, std::uint32_t> benefit_;
  std::uint64_t window_replacements_ = 0;
  std::uint64_t window_earned_ = 0;
  std::uint64_t evaluations_ = 0;
};

}  // namespace ascoma::arch
