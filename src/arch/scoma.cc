#include "arch/scoma.hh"

// Decision logic is fully inline; this TU anchors the class's presence in
// the library.
namespace ascoma::arch {}
