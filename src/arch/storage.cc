#include "arch/storage.hh"

namespace ascoma::arch {

StorageCost estimate_storage(ArchModel model, const MachineConfig& cfg,
                             std::uint64_t pages_per_node) {
  StorageCost c;
  const bool has_page_cache = model != ArchModel::kCcNuma;
  const bool is_hybrid = model == ArchModel::kRNuma ||
                         model == ArchModel::kVcNuma ||
                         model == ArchModel::kAsComa;

  if (has_page_cache) {
    // Paper Table 2: page-cache state of a few bits per block plus ~32 bits
    // per page.  We charge 2 bits per coherence block (valid + dirty summary)
    // and 32 bits per page for the local<->global map entry.
    const std::uint64_t blocks = pages_per_node * cfg.blocks_per_page();
    c.page_cache_state_bytes = (blocks * 2 + 7) / 8;
    c.page_map_bytes = pages_per_node * 4;
    c.complexity.push_back("page cache state lookup/controller");
    c.complexity.push_back("local <-> remote page map");
    c.complexity.push_back("page daemon and VM kernel support");
  }
  if (is_hybrid) {
    // 8-bit refetch counter per page per node at the directory.
    c.refetch_counter_bytes = pages_per_node * cfg.nodes;
    c.complexity.push_back(
        "refetch counter, comparator and interrupt generator");
  }
  if (model == ArchModel::kVcNuma) {
    c.complexity.push_back(
        "victim-cache tags / per-page local counters (non-commodity)");
  }
  if (model == ArchModel::kAsComa) {
    c.complexity.push_back("adaptive threshold + daemon back-off (software)");
  }
  return c;
}

}  // namespace ascoma::arch
