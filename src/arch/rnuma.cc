#include "arch/rnuma.hh"

// R-NUMA inherits the default should_relocate (fixed threshold comparison)
// and ignores daemon results entirely — it has no back-off mechanism.
namespace ascoma::arch {}
