#pragma once

// The AS-COMA adaptive back-off state machine, extracted as a pure value
// type so the same transition logic can be (a) executed by AsComaPolicy in
// the timing simulator and (b) exhaustively explored by check::PolicyModel
// (tools/ascoma_policycheck).  The kernel is deliberately time-free: the
// caller decides whether a daemon period has elapsed since the last accepted
// back-off (the rate-limit input), so the checker can enumerate both answers
// without modelling absolute time.
//
// Pressure side (pageout daemon missed its free target, or hot-page churn
// was detected): mark the node thrashing and — at most once per daemon
// period — raise the refetch threshold one increment, or once the threshold
// is saturated disable CC-NUMA -> S-COMA remapping entirely; every accepted
// back-off also stretches the daemon period geometrically.  Under sustained
// pressure the node therefore converges monotonically to pure CC-NUMA
// behaviour (paper §2).
//
// Recovery side (daemon met its target and found genuinely cold pages): the
// relaxation is hysteretic — `relax_streak` consecutive healthy runs are one
// relaxation step, which re-enables remapping first and then walks the
// threshold back down; the thrashing flag clears only at full health
// (initial threshold, remapping enabled).

#include <algorithm>
#include <cstdint>

#include "common/types.hh"

namespace ascoma::arch {

/// Tuning constants, fixed at construction (MachineConfig in the simulator,
/// tiny abstract values in the checker).
struct BackoffSettings {
  std::uint32_t initial_threshold = 64;
  std::uint32_t increment = 64;
  std::uint32_t threshold_max = 1024;
  Cycle initial_period{500'000};
  Cycle period_max{8'000'000};
  double backoff_factor = 2.0;
  std::uint32_t relax_streak = 3;  ///< healthy runs per relaxation step
};

/// The kernel's complete mutable state, exposed as a POD so the model
/// checker can encode/decode it and mutation tests can perturb it.
struct BackoffState {
  std::uint32_t threshold = 0;
  bool relocation_enabled = true;
  bool thrashing = false;
  bool backed_off_once = false;    ///< a back-off has ever been accepted
  std::uint32_t success_streak = 0;  ///< healthy daemon runs since failure

  friend bool operator==(const BackoffState&, const BackoffState&) = default;
};

/// What one kernel step did (drives KernelStats / event emission).
struct BackoffStep {
  bool accepted = false;   ///< not absorbed by the per-period rate limit
  bool escalated = false;  ///< threshold raised or remapping disabled
  bool relaxed = false;    ///< threshold lowered or remapping re-enabled
};

class BackoffKernel {
 public:
  explicit BackoffKernel(const BackoffSettings& s) : s_(s) {
    st_.threshold = s.initial_threshold;
  }

  /// Thrash signal (daemon failure or hot-page churn).  `period_elapsed`
  /// tells the kernel whether a full daemon period has passed since the last
  /// accepted back-off; a burst of signals within one period is one signal.
  /// `period` is the node's live daemon period, stretched in place.
  BackoffStep on_pressure(bool period_elapsed, Cycle* period) {
    BackoffStep step;
    st_.thrashing = true;
    if (st_.backed_off_once && !period_elapsed) return step;
    st_.backed_off_once = true;
    step.accepted = true;
    if (st_.threshold <= s_.threshold_max - s_.increment) {
      st_.threshold += s_.increment;
      step.escalated = true;
    } else if (st_.relocation_enabled) {
      // Extreme pressure: disable CC-NUMA -> S-COMA remapping entirely.
      st_.relocation_enabled = false;
      step.escalated = true;
    }
    *period = std::min<Cycle>(
        s_.period_max,
        Cycle{static_cast<Cycle::rep>(static_cast<double>(period->value()) *
                                      s_.backoff_factor)});
    return step;
  }

  /// Healthy daemon run.  `cold_evidence` is true when the run reclaimed
  /// pages and saw at least as many cold pages — the phase-change signal
  /// that justifies relaxing.  A single lucky run must not reopen the
  /// remapping floodgates, hence the streak.
  BackoffStep on_healthy(bool cold_evidence, Cycle* period) {
    BackoffStep step;
    if (!st_.thrashing || !cold_evidence) return step;
    if (++st_.success_streak < s_.relax_streak) return step;
    st_.success_streak = 0;
    step.accepted = true;
    if (!st_.relocation_enabled) {
      st_.relocation_enabled = true;
      step.relaxed = true;
    } else if (st_.threshold > s_.initial_threshold) {
      st_.threshold = std::max(s_.initial_threshold, st_.threshold - s_.increment);
      step.relaxed = true;
    }
    *period = std::max<Cycle>(
        s_.initial_period,
        Cycle{static_cast<Cycle::rep>(static_cast<double>(period->value()) /
                                      s_.backoff_factor)});
    if (st_.threshold == s_.initial_threshold && st_.relocation_enabled)
      st_.thrashing = false;
    return step;
  }

  /// A daemon failure resets the healthy streak even when the back-off
  /// itself is rate-limited (AsComaPolicy::on_daemon_result).
  void clear_streak() { st_.success_streak = 0; }

  /// Direct thrash mark without escalation (suppressed remap: the pool is
  /// drained right now, but the cache may not yet hold only hot pages).
  void mark_thrashing() { st_.thrashing = true; }

  std::uint32_t threshold() const { return st_.threshold; }
  bool relocation_enabled() const { return st_.relocation_enabled; }
  bool thrashing() const { return st_.thrashing; }

  const BackoffSettings& settings() const { return s_; }
  const BackoffState& state() const { return st_; }
  /// Restore a snapshot (model-checker decode; mutation tests).
  void restore(const BackoffState& st) { st_ = st; }

 private:
  BackoffSettings s_;
  BackoffState st_;
};

}  // namespace ascoma::arch
