#pragma once

// Architecture policy interface: the decision logic that distinguishes the
// five studied memory architectures.  Mechanics (flushing, remapping, cycle
// accounting) are implemented once in core::Machine; each per-node Policy
// instance only answers the questions the paper's designs differ on:
//
//   * in which mode is a freshly-touched remote page mapped?
//   * when does a CC-NUMA page deserve upgrading to S-COMA?
//   * how does the node react to pageout-daemon success/failure (thrashing)?

#include <cstdint>
#include <memory>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/sink.hh"
#include "store/codec.hh"
#include "vm/page_cache.hh"
#include "vm/pageout_daemon.hh"

namespace ascoma::arch {

/// Mutable per-node state a policy may inspect or adjust.
struct PolicyEnv {
  const MachineConfig& cfg;
  NodeId node;
  vm::PageCache& page_cache;
  KernelStats& kernel;
  Cycle& daemon_period;  ///< node's current pageout-daemon period (cycles)
  Cycle now{0};         ///< current simulated cycle
  obs::EventSink* sink = nullptr;  ///< observability sink (may be null)
};

class Policy {
 public:
  explicit Policy(const MachineConfig& cfg)
      : threshold_(cfg.refetch_threshold) {}
  virtual ~Policy() = default;

  virtual ArchModel model() const = 0;

  /// Pre-size per-page state for `total_pages` shared pages.  Called once at
  /// machine setup so stateful policies never grow containers on the
  /// simulation hot path; safe to call again with a larger count.
  virtual void reserve_pages(std::uint64_t total_pages) { (void)total_pages; }

  /// Mapping mode for a remote page at its first touch on this node.
  virtual PageMode initial_mode(PolicyEnv& env) = 0;

  /// The home directory reported `refetches` conflict refetches for a page
  /// currently mapped CC-NUMA: upgrade it to S-COMA now?
  virtual bool should_relocate(PolicyEnv& env, VPageId page,
                               std::uint32_t refetches);

  /// Outcome of a pageout-daemon run on this node (thrash signal).
  virtual void on_daemon_result(PolicyEnv& env, const vm::DaemonResult& r);

  /// A shared-memory miss was satisfied from this node's page cache.
  virtual void on_page_cache_hit(VPageId page);

  /// An S-COMA page was evicted/downgraded on this node.
  virtual void on_replacement(PolicyEnv& env, VPageId victim);

  /// A relocation interrupt fired but no frame could be found and the
  /// policy does not force evictions: the remap was suppressed.  AS-COMA
  /// treats this as a direct thrash signal.
  virtual void on_remap_suppressed(PolicyEnv& env);

  /// Does this architecture run the pageout daemon at all?
  virtual bool runs_daemon() const { return true; }

  /// When an upgrade finds no free frame: may the fault handler evict a
  /// (possibly hot) victim on the spot?  R-NUMA/VC-NUMA: yes ("always
  /// upgrades"); AS-COMA: no (it backs off instead).
  virtual bool force_eviction_on_upgrade() const { return false; }

  std::uint32_t threshold() const { return threshold_; }
  bool relocation_enabled() const { return relocation_enabled_; }

  // Checkpoint serialization.  The base pair covers the fields every model
  // shares; stateful policies (AS-COMA, VC-NUMA) extend both sides in lock
  // step (encode/decode adjacent — pairing check).
  virtual void encode(store::Encoder& e) const {
    e.u32(threshold_);
    e.b(relocation_enabled_);
  }
  virtual void decode(store::Decoder& d) {
    threshold_ = d.u32();
    relocation_enabled_ = d.b();
  }

 protected:
  /// Record a back-off escalation / relaxation: bumps the kernel counter and
  /// emits the matching event.  All threshold moves must go through these so
  /// KernelStats and the event stream can never disagree.
  void note_threshold_raise(PolicyEnv& env);
  void note_threshold_drop(PolicyEnv& env);

  std::uint32_t threshold_;
  bool relocation_enabled_ = true;
};

/// Factory for the model selected in `cfg.arch`.
std::unique_ptr<Policy> make_policy(const MachineConfig& cfg);

}  // namespace ascoma::arch
