#pragma once

// Pure S-COMA: every remote page *must* occupy a local page-cache frame
// before it can be accessed.  At high memory pressure the fault handler
// replaces pages on every fault to an unmapped page — the thrashing the
// paper's Section 2.3 describes.

#include "arch/policy.hh"

namespace ascoma::arch {

class ScomaPolicy final : public Policy {
 public:
  explicit ScomaPolicy(const MachineConfig& cfg) : Policy(cfg) {
    // S-COMA has no CC-NUMA mode at all, hence no relocation machinery.
    relocation_enabled_ = false;
  }

  ArchModel model() const override { return ArchModel::kScoma; }

  /// Always S-COMA — if the pool is empty the machine's fault handler must
  /// evict a victim to honour this (mandatory replacement).
  PageMode initial_mode(PolicyEnv&) override { return PageMode::kScoma; }

  bool should_relocate(PolicyEnv&, VPageId, std::uint32_t) override {
    return false;
  }
};

}  // namespace ascoma::arch
