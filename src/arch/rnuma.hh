#pragma once

// Reactive NUMA (Falsafi & Wood): all pages start in CC-NUMA mode; a page is
// upgraded to S-COMA when its refetch count crosses a *fixed* threshold, and
// the upgrade always proceeds — evicting another (possibly hot) page when the
// pool is empty.  No back-off: the design the paper shows thrashing at high
// memory pressure.

#include "arch/policy.hh"

namespace ascoma::arch {

class RNumaPolicy final : public Policy {
 public:
  explicit RNumaPolicy(const MachineConfig& cfg) : Policy(cfg) {}

  ArchModel model() const override { return ArchModel::kRNuma; }
  PageMode initial_mode(PolicyEnv&) override { return PageMode::kNuma; }
  bool force_eviction_on_upgrade() const override { return true; }
};

}  // namespace ascoma::arch
