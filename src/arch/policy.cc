#include "arch/policy.hh"

#include "arch/ascoma.hh"
#include "arch/ccnuma.hh"
#include "arch/rnuma.hh"
#include "arch/scoma.hh"
#include "arch/vcnuma.hh"
#include "common/check.hh"

namespace ascoma::arch {

bool Policy::should_relocate(PolicyEnv& env, VPageId page,
                             std::uint32_t refetches) {
  (void)env;
  (void)page;
  return relocation_enabled_ && refetches >= threshold_;
}

void Policy::on_daemon_result(PolicyEnv& env, const vm::DaemonResult& r) {
  (void)env;
  (void)r;
}

void Policy::on_page_cache_hit(VPageId page) { (void)page; }

void Policy::on_replacement(PolicyEnv& env, VPageId victim) {
  (void)env;
  (void)victim;
}

void Policy::on_remap_suppressed(PolicyEnv& env) { (void)env; }

void Policy::note_threshold_raise(PolicyEnv& env) {
  ++env.kernel.threshold_raises;
  if (env.sink)
    env.sink->emit(obs::EventKind::kThresholdRaise, env.now, env.node,
                   kInvalidPage, threshold_, relocation_enabled_ ? 1 : 0);
}

void Policy::note_threshold_drop(PolicyEnv& env) {
  ++env.kernel.threshold_drops;
  if (env.sink)
    env.sink->emit(obs::EventKind::kThresholdDrop, env.now, env.node,
                   kInvalidPage, threshold_, relocation_enabled_ ? 1 : 0);
}

std::unique_ptr<Policy> make_policy(const MachineConfig& cfg) {
  switch (cfg.arch) {
    case ArchModel::kCcNuma: return std::make_unique<CcNumaPolicy>(cfg);
    case ArchModel::kScoma: return std::make_unique<ScomaPolicy>(cfg);
    case ArchModel::kRNuma: return std::make_unique<RNumaPolicy>(cfg);
    case ArchModel::kVcNuma: return std::make_unique<VcNumaPolicy>(cfg);
    case ArchModel::kAsComa: return std::make_unique<AsComaPolicy>(cfg);
  }
  ASCOMA_CHECK_MSG(false, "unknown architecture model");
}

}  // namespace ascoma::arch
