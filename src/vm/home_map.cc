#include "vm/home_map.hh"

#include <algorithm>

namespace ascoma::vm {

HomeMap::HomeMap(std::uint64_t total_pages, std::uint32_t nodes)
    : homes_(total_pages, kInvalidNode),
      count_(nodes, 0),
      cap_((total_pages + nodes - 1) / nodes) {
  ASCOMA_CHECK(nodes > 0);
}

NodeId HomeMap::claim(VPageId page, NodeId node) {
  ASCOMA_CHECK(page.value() < homes_.size());
  ASCOMA_CHECK(node.value() < count_.size());
  if (homes_[page] != kInvalidNode) return homes_[page];
  NodeId home = node;
  if (count_[home] >= cap_) {
    // First-touch cap reached: round-robin over nodes still under the cap.
    home = next_under_cap(rr_cursor_);
    rr_cursor_ = NodeId{(home.value() + 1) % nodes()};
  }
  homes_[page] = home;
  ++count_[home];
  return home;
}

void HomeMap::assign_contiguous() {
  const std::uint64_t total = homes_.size();
  const std::uint32_t n = nodes();
  const std::uint64_t per = (total + n - 1) / n;
  for (VPageId p{0}; p.value() < total; ++p) {
    if (homes_[p] != kInvalidNode) continue;
    const NodeId home{static_cast<std::uint32_t>(
        std::min<std::uint64_t>(p.value() / per, n - 1))};
    homes_[p] = home;
    ++count_[home];
  }
}

bool HomeMap::assigned(VPageId page) const {
  ASCOMA_CHECK(page.value() < homes_.size());
  return homes_[page] != kInvalidNode;
}

NodeId HomeMap::home_of(VPageId page) const {
  ASCOMA_CHECK(page.value() < homes_.size());
  ASCOMA_CHECK_MSG(homes_[page] != kInvalidNode, "home_of unassigned page");
  return homes_[page];
}

std::uint64_t HomeMap::max_home_pages() const {
  return *std::max_element(count_.begin(), count_.end());
}

NodeId HomeMap::next_under_cap(NodeId start) const {
  const std::uint32_t n = nodes();
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId cand{(start.value() + i) % n};
    if (count_[cand] < cap_) return cand;
  }
  // All nodes at cap (can only happen when total == cap * nodes exactly and
  // every page is assigned); fall back to the starting node.
  return NodeId{start.value() % n};
}

}  // namespace ascoma::vm
