#include "vm/pageout_daemon.hh"

#include "common/check.hh"

namespace ascoma::vm {

PageoutDaemon::PageoutDaemon(std::uint32_t free_min_pages,
                             std::uint32_t free_target_pages)
    : free_min_(free_min_pages), free_target_(free_target_pages) {
  ASCOMA_CHECK(free_target_ >= free_min_);
}

DaemonResult PageoutDaemon::run(PageCache& cache, PageTable& pt,
                                EvictionHandler& handler) {
  DaemonResult result;
  // Two passes give every page exactly one second chance per invocation.
  const std::uint32_t budget = 2 * cache.active_pages();
  while (cache.free_frames() < free_target_ && result.scanned < budget) {
    const auto cand = cache.rotate();
    if (!cand) break;  // no S-COMA pages left to consider
    ++result.scanned;
    const VPageId page = *cand;
    if (pt.ref_bit(page)) {
      // Referenced since last consideration: clear and give a second chance.
      pt.clear_ref_bit(page);
      continue;
    }
    ++result.cold_pages_seen;
    if (handler.evict(page)) ++result.reclaimed;
  }
  result.met_target = cache.free_frames() >= free_target_;
  return result;
}

}  // namespace ascoma::vm
