#pragma once

// Second-chance pageout daemon (Section 3 of the paper).
//
// The daemon keeps the free page pool between free_min and free_target:
// whenever free frames drop below free_min it scans the clock list of
// S-COMA pages, clearing reference bits and evicting pages whose bit was
// already clear, until free_target frames are free or the scan gives up.
// A run that cannot reach free_target is the thrashing signal AS-COMA's
// back-off policy consumes.

#include <cstdint>

#include "common/types.hh"
#include "vm/page_cache.hh"
#include "vm/page_table.hh"

namespace ascoma::vm {

/// Performs the architecture-specific side effects of evicting one S-COMA
/// page: flushing caches, notifying the home directory, downgrading or
/// unmapping the page, and releasing its frame.  Implemented by the machine.
class EvictionHandler {
 public:
  virtual ~EvictionHandler() = default;
  /// Evict `page`; must release the page's frame back to the PageCache and
  /// remove the page from the active list.  Returns false if the page must
  /// not be evicted (e.g. wired); the daemon then skips it.
  virtual bool evict(VPageId page) = 0;
};

struct DaemonResult {
  std::uint32_t scanned = 0;
  std::uint32_t reclaimed = 0;
  bool met_target = false;
  /// Cold pages seen this run (ref bit already clear) — the signal AS-COMA
  /// uses to relax its back-off when a program phase change frees pages.
  std::uint32_t cold_pages_seen = 0;
};

class PageoutDaemon {
 public:
  PageoutDaemon(std::uint32_t free_min_pages, std::uint32_t free_target_pages);

  /// True when the free pool is below the low-water mark.
  bool should_run(const PageCache& cache) const {
    return cache.free_frames() < free_min_;
  }

  /// One daemon invocation: scan (at most two full passes of the clock),
  /// second-chance pages with their reference bit set, evict cold pages
  /// until the pool reaches free_target.
  DaemonResult run(PageCache& cache, PageTable& pt, EvictionHandler& handler);

  std::uint32_t free_min() const { return free_min_; }
  std::uint32_t free_target() const { return free_target_; }

 private:
  std::uint32_t free_min_;
  std::uint32_t free_target_;
};

}  // namespace ascoma::vm
