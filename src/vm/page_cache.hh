#pragma once

// Per-node physical frame accounting for the S-COMA page cache.
//
// A node's frames split into `home_frames` (pinned, hold home pages) and
// `cache_capacity` frames available for S-COMA replication.  The free pool
// plus the clock list of active S-COMA pages implement the 4.4BSD-style
// allocation the paper builds on.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"
#include "store/codec.hh"

namespace ascoma::vm {

class PageCache {
 public:
  /// `capacity` = number of frames available for S-COMA page replication.
  explicit PageCache(std::uint32_t capacity);

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t free_frames() const { return static_cast<std::uint32_t>(free_.size()); }
  std::uint32_t active_pages() const { return active_count_; }

  /// Pre-size the activity bitmap for `total_pages` shared pages.  Called at
  /// machine setup so add_active() never grows the bitmap on the fault path;
  /// safe to call again with a larger count.
  void reserve_pages(std::uint64_t total_pages);

  /// Take a frame from the free pool (nullopt when drained).
  std::optional<FrameId> alloc();

  /// Return a frame to the free pool.
  void release(FrameId f);

  /// Register a page as an active S-COMA replica (enters the clock list).
  void add_active(VPageId p);

  /// Remove a page from the clock list (evicted or explicitly downgraded).
  void remove_active(VPageId p);

  bool is_active(VPageId p) const {
    return p.value() < active_.size() && active_[p.value()] != 0;
  }

  /// Second-chance clock traversal: returns the next candidate page and
  /// rotates it to the back, or nullopt when the list is empty.  The caller
  /// is responsible for ref-bit handling and for calling remove_active() on
  /// eviction.
  std::optional<VPageId> rotate();

  // Checkpoint serialization.  `free_` and `clock_` are order-sensitive (the
  // allocator and second-chance clock depend on their sequence) and are
  // written in order; `active_` is membership-only, so its set pages are
  // written in ascending order for a canonical byte image independent of the
  // bitmap's capacity (encode/decode adjacent — pairing check).
  void encode(store::Encoder& e) const {
    e.u32(capacity_);
    e.u64(free_.size());
    for (const FrameId f : free_) e.u32(f.value());
    e.u64(clock_.size());
    for (const VPageId p : clock_) e.u64(p.value());
    e.u64(active_count_);
    for (std::uint64_t p = 0; p < active_.size(); ++p)
      if (active_[p] != 0) e.u64(p);
  }
  void decode(store::Decoder& d) {
    if (d.u32() != capacity_)
      throw store::CodecError("page cache geometry mismatch");
    free_.clear();
    const std::uint64_t nfree = d.u64();
    for (std::uint64_t i = 0; i < nfree; ++i) free_.push_back(FrameId{d.u32()});
    clock_.clear();
    const std::uint64_t nclock = d.u64();
    for (std::uint64_t i = 0; i < nclock; ++i) clock_.push_back(VPageId{d.u64()});
    std::fill(active_.begin(), active_.end(), 0);
    active_count_ = 0;
    const std::uint64_t nact = d.u64();
    for (std::uint64_t i = 0; i < nact; ++i) {
      const VPageId p{d.u64()};
      reserve_pages(p.value() + 1);
      active_[p.value()] = 1;
      ++active_count_;
    }
  }

 private:
  std::uint32_t capacity_;
  std::vector<FrameId> free_;
  std::deque<VPageId> clock_;  // may contain stale entries (lazy deletion)
  /// Active-replica membership bitmap indexed by page (1 = active S-COMA
  /// replica on this node); grown only by reserve_pages().
  std::vector<std::uint8_t> active_;
  std::uint32_t active_count_ = 0;
};

}  // namespace ascoma::vm
