#include "vm/page_table.hh"

namespace ascoma::vm {

PageTable::PageTable(std::uint64_t total_pages) : entries_(total_pages) {}

void PageTable::map_home(VPageId p) {
  Entry& e = entries_[p];
  ASCOMA_CHECK(e.mode == PageMode::kUnmapped);
  e.mode = PageMode::kHome;
  ++mapped_;
}

void PageTable::map_numa(VPageId p) {
  Entry& e = entries_[p];
  ASCOMA_CHECK(e.mode == PageMode::kUnmapped);
  e.mode = PageMode::kNuma;
  ++mapped_;
}

void PageTable::map_scoma(VPageId p, FrameId f) {
  Entry& e = entries_[p];
  ASCOMA_CHECK(e.mode == PageMode::kUnmapped);
  ASCOMA_CHECK(f != kInvalidFrame);
  e.mode = PageMode::kScoma;
  e.frame = f;
  ++mapped_;
  ++scoma_;
}

void PageTable::unmap(VPageId p) {
  Entry& e = entries_[p];
  ASCOMA_CHECK(e.mode != PageMode::kUnmapped);
  if (e.mode == PageMode::kScoma) --scoma_;
  e = Entry{};
  --mapped_;
}

FrameId PageTable::downgrade_to_numa(VPageId p) {
  Entry& e = entries_[p];
  ASCOMA_CHECK_MSG(e.mode == PageMode::kScoma, "downgrade of non-S-COMA page");
  const FrameId f = e.frame;
  e.mode = PageMode::kNuma;
  e.frame = kInvalidFrame;
  e.referenced = false;
  --scoma_;
  return f;
}

void PageTable::upgrade_to_scoma(VPageId p, FrameId f) {
  Entry& e = entries_[p];
  ASCOMA_CHECK_MSG(e.mode == PageMode::kNuma, "upgrade of non-CC-NUMA page");
  ASCOMA_CHECK(f != kInvalidFrame);
  e.mode = PageMode::kScoma;
  e.frame = f;
  ++scoma_;
}

}  // namespace ascoma::vm
