#pragma once

// Home-node assignment for shared pages.  The paper extends first-touch
// allocation with a per-node cap: each node may be home to at most its
// proportional share of pages; once a node hits the cap, its remaining
// first-touch claims are assigned round-robin to nodes below the cap.

#include <cstdint>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"

namespace ascoma::vm {

class HomeMap {
 public:
  /// `total_pages` shared pages distributed over `nodes` nodes with a cap of
  /// ceil(total/nodes) home pages per node.
  HomeMap(std::uint64_t total_pages, std::uint32_t nodes);

  /// First-touch claim: `node` touched `page` first.  Assigns the home
  /// (honouring the cap) if not yet assigned.  Returns the home.
  NodeId claim(VPageId page, NodeId node);

  /// Directly assign contiguous per-node partitions (the layout the paper's
  /// SPMD programs produce anyway); used by workloads that declare layout.
  void assign_contiguous();

  bool assigned(VPageId page) const;
  NodeId home_of(VPageId page) const;
  std::uint64_t home_pages(NodeId node) const { return count_[node]; }
  std::uint64_t max_home_pages() const;
  std::uint64_t total_pages() const { return homes_.size(); }
  std::uint32_t nodes() const { return static_cast<std::uint32_t>(count_.size()); }

 private:
  NodeId next_under_cap(NodeId start) const;

  IdVector<PageId, NodeId> homes_;
  IdVector<NodeId, std::uint64_t> count_;
  std::uint64_t cap_;
  NodeId rr_cursor_{0};
};

}  // namespace ascoma::vm
