#pragma once

// Per-node page table: maps global virtual pages to a mapping mode and, for
// S-COMA replicas, a local frame.  Also carries the TLB reference bit used
// by the pageout daemon's second-chance algorithm.

#include <cstdint>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"
#include "store/codec.hh"

namespace ascoma::vm {

class PageTable {
 public:
  explicit PageTable(std::uint64_t total_pages);

  PageMode mode(VPageId p) const { return entries_[p].mode; }
  FrameId frame(VPageId p) const { return entries_[p].frame; }
  bool ref_bit(VPageId p) const { return entries_[p].referenced; }
  void set_ref_bit(VPageId p) { entries_[p].referenced = true; }
  void clear_ref_bit(VPageId p) { entries_[p].referenced = false; }

  void map_home(VPageId p);
  void map_numa(VPageId p);
  void map_scoma(VPageId p, FrameId f);

  /// Remove any mapping (page returns to kUnmapped — a later touch faults).
  void unmap(VPageId p);

  /// Downgrade an S-COMA replica to CC-NUMA mode (hybrid eviction: the page
  /// stays accessible through its remote home).  Returns the freed frame.
  FrameId downgrade_to_numa(VPageId p);

  /// Upgrade a CC-NUMA mapping to an S-COMA replica in frame `f`.
  void upgrade_to_scoma(VPageId p, FrameId f);

  std::uint64_t mapped_pages() const { return mapped_; }
  std::uint64_t scoma_pages() const { return scoma_; }
  std::uint64_t total_pages() const { return entries_.size(); }

  // Checkpoint serialization (encode/decode stay adjacent — pairing check).
  void encode(store::Encoder& e) const {
    e.u64(entries_.size());
    for (const Entry& en : entries_) {
      e.u8(static_cast<std::uint8_t>(en.mode));
      e.b(en.referenced);
      e.u32(en.frame.value());
    }
    e.u64(mapped_);
    e.u64(scoma_);
  }
  void decode(store::Decoder& d) {
    if (d.u64() != entries_.size())
      throw store::CodecError("page table geometry mismatch");
    for (Entry& en : entries_) {
      en.mode = static_cast<PageMode>(d.u8());
      en.referenced = d.b();
      en.frame = FrameId{d.u32()};
    }
    mapped_ = d.u64();
    scoma_ = d.u64();
  }

 private:
  struct Entry {
    PageMode mode = PageMode::kUnmapped;
    bool referenced = false;
    FrameId frame = kInvalidFrame;
  };
  IdVector<PageId, Entry> entries_;
  std::uint64_t mapped_ = 0;
  std::uint64_t scoma_ = 0;
};

}  // namespace ascoma::vm
