#include "vm/page_cache.hh"

namespace ascoma::vm {

PageCache::PageCache(std::uint32_t capacity) : capacity_(capacity) {
  free_.reserve(capacity);
  // Frames handed out lowest-first for deterministic behaviour.
  for (std::uint32_t f = capacity; f > 0; --f)
    free_.push_back(FrameId(f - 1));
}

std::optional<FrameId> PageCache::alloc() {
  if (free_.empty()) return std::nullopt;
  const FrameId f = free_.back();
  free_.pop_back();
  return f;
}

void PageCache::release(FrameId f) {
  ASCOMA_CHECK(f.value() < capacity_);
  ASCOMA_CHECK_MSG(free_.size() < capacity_, "double release of a frame");
  free_.push_back(f);
}

void PageCache::reserve_pages(std::uint64_t total_pages) {
  if (total_pages > active_.size()) active_.resize(total_pages, 0);
}

void PageCache::add_active(VPageId p) {
  ASCOMA_CHECK_MSG(!is_active(p), "page already active");
  reserve_pages(p.value() + 1);  // no-op when pre-sized at machine setup
  active_[p.value()] = 1;
  ++active_count_;
  clock_.push_back(p);
}

void PageCache::remove_active(VPageId p) {
  ASCOMA_CHECK_MSG(is_active(p), "removing inactive page");
  active_[p.value()] = 0;
  --active_count_;
  // The clock entry is removed lazily during rotation.
}

std::optional<VPageId> PageCache::rotate() {
  while (!clock_.empty()) {
    const VPageId p = clock_.front();
    clock_.pop_front();
    if (!is_active(p)) continue;  // stale entry
    clock_.push_back(p);
    return p;
  }
  return std::nullopt;
}

}  // namespace ascoma::vm
