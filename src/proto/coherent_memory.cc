#include "proto/coherent_memory.hh"

#include <algorithm>
#include <sstream>

#include "common/check.hh"
#include "selfprof/collector.hh"

namespace ascoma::proto {

void CoherentMemory::throw_retry_exhausted(const char* what,
                                           const char* dst_label, NodeId src,
                                           NodeId dst, Cycle now) const {
  throw fault::WatchdogError(
      std::string(what) + " retry budget exhausted (" +
      std::to_string(cfg_.retry_max_attempts) + " attempts, node " +
      std::to_string(src.value()) + " -> " + dst_label +
      std::to_string(dst.value()) + ")\n  " + watchdog_.describe_in_flight() +
      "\n" + dump_in_flight_state(now));
}

CoherentMemory::CoherentMemory(const MachineConfig& cfg,
                               const vm::HomeMap& homes)
    : cfg_(cfg),
      homes_(homes),
      ppn_(cfg.procs_per_node),
      plan_(cfg),
      watchdog_(cfg.watchdog_cycles),
      net_(cfg),
      dir_(homes.total_pages() * cfg.blocks_per_page(), cfg.nodes),
      refetch_(homes.total_pages(), cfg.nodes) {
  net_.set_fault_plan(&plan_);
  const std::uint64_t blocks = dir_.total_blocks();
  const std::uint64_t pages = homes.total_pages();
  l1_.reserve(cfg.total_procs());
  for (std::uint32_t p = 0; p < cfg.total_procs(); ++p)
    l1_.push_back(std::make_unique<mem::L1Cache>(cfg));
  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    rac_.push_back(std::make_unique<mem::Rac>(cfg));
    dram_.push_back(std::make_unique<mem::Dram>(cfg));
    bus_.push_back(std::make_unique<mem::Bus>(cfg));
    engine_.emplace_back("engine" + std::to_string(n));
    touched_.emplace_back(blocks, 0);
    ever_fetched_.emplace_back(blocks, 0);
    scoma_valid_.emplace_back(blocks, 0);
    remote_page_seen_.emplace_back(pages, 0);
  }
  remote_pages_touched_.assign(cfg.nodes, 0);
  if (cfg.check_invariants) {
    global_version_.assign(blocks, 0);
    local_version_.assign(cfg.nodes,
                          IdVector<BlockId, std::uint32_t>(blocks, 0));
  }
}

void CoherentMemory::shadow_commit_store(NodeId node, BlockId b) {
  if (global_version_.empty()) return;
  local_version_[node][b] = ++global_version_[b];
}

void CoherentMemory::shadow_fetch(NodeId node, BlockId b) {
  if (global_version_.empty()) return;
  local_version_[node][b] = global_version_[b];
}

void CoherentMemory::shadow_check_local(NodeId node, BlockId b,
                                        const char* where) const {
  if (global_version_.empty()) return;
  ASCOMA_CHECK_MSG(local_version_[node][b] == global_version_[b],
                   "coherence violation: stale local copy served at "
                       << where << " (node " << node << ", block " << b
                       << ", local v" << local_version_[node][b]
                       << ", global v" << global_version_[b] << ")");
}

void CoherentMemory::set_page_tables(
    std::span<const vm::PageTable* const> tables) {
  ASCOMA_CHECK(tables.size() == cfg_.nodes);
  page_tables_.assign(tables.begin(), tables.end());
}

void CoherentMemory::apply_invalidation(NodeId s, BlockId b) {
  for (std::uint32_t q = s.value() * ppn_; q < (s.value() + 1) * ppn_; ++q)
    l1_[q]->invalidate_block(b);
  rac_[s]->invalidate(b);
  scoma_valid_[s][b] = 0;
  if (touch_of(s, b) == Touch::kFetched) set_touch(s, b, Touch::kInvalidated);
}

void CoherentMemory::invalidate_sibling_line(std::uint32_t proc,
                                             LineId line) {
  if (ppn_ == 1) return;
  const NodeId n = node_of(proc);
  for (std::uint32_t q = n.value() * ppn_; q < (n.value() + 1) * ppn_; ++q)
    if (q != proc) l1_[q]->invalidate_line(line);
}

int CoherentMemory::sibling_with_line(std::uint32_t proc,
                                      LineId line) const {
  if (ppn_ == 1) return -1;
  const NodeId n = node_of(proc);
  for (std::uint32_t q = n.value() * ppn_; q < (n.value() + 1) * ppn_; ++q)
    if (q != proc && l1_[q]->probe(line)) return static_cast<int>(q);
  return -1;
}


Cycle CoherentMemory::use_bus(NodeId n, Cycle t) {
  if (background_) return t + cfg_.bus_occupancy;
  const Cycle r = bus_[n]->transact(t);
  prof_add(prof::Component::kBus, t, r);
  return r;
}

Cycle CoherentMemory::use_bus_short(NodeId n, Cycle t) {
  if (background_) return t + (cfg_.bus_occupancy + Cycle{1}) / 2;
  const Cycle r = bus_[n]->transact_short(t);
  prof_add(prof::Component::kBus, t, r);
  return r;
}

Cycle CoherentMemory::use_engine(NodeId n, Cycle t) {
  if (background_) return t + cfg_.dsm_engine_cycles;
  const Cycle r = engine_[n].acquire_until(t, cfg_.dsm_engine_cycles);
  prof_add(prof::Component::kEngine, t, r);
  return r;
}

Cycle CoherentMemory::use_dram(NodeId n, Cycle t, BlockId b) {
  if (background_) return t + cfg_.dram_access_cycles;
  const Cycle r = dram_[n]->access(t, b);
  prof_add(prof::Component::kDram, t, r);
  return r;
}

void CoherentMemory::prof_net(Cycle t, Cycle arrival, NodeId src,
                              NodeId dst) {
  if (!prof_on_ || arrival <= t) return;
  // The uncontended pair latency is the fabric's share; anything beyond it
  // is input-port queueing (the only contention the model admits) or
  // injected jitter.
  const Cycle delta = arrival - t;
  const Cycle fabric = std::min(delta, net_.uncontended_latency(src, dst));
  prof_->add(prof::Component::kNetFabric, fabric);
  if (delta > fabric) prof_->add(prof::Component::kNetQueue, delta - fabric);
}

Cycle CoherentMemory::use_net(Cycle t, NodeId src, NodeId dst) {
  if (background_) return src == dst ? t : t + net_.min_one_way_latency();
  if (!net_.faulty()) {
    const Cycle r = net_.deliver(t, src, dst);
    prof_net(t, r, src, dst);
    return r;
  }
  // Protocol-visible retransmission: the sender detects a dropped request by
  // timeout and re-issues it after a capped exponential backoff.
  Cycle backoff = cfg_.retry_backoff_base;
  for (std::uint32_t attempt = 1;; ++attempt) {
    const net::Network::Attempt a = net_.try_deliver(t, src, dst);
    if (!a.dropped) {
      prof_net(t, a.arrival, src, dst);
      return a.arrival;
    }
    ++net_retries_;
    ++cur_retries_;
    watchdog_.note_retry();
    const Cycle resend = t + net_.retry_timeout() + backoff;
    if (sink_)
      sink_->emit(obs::EventKind::kRetry, resend, src, kInvalidPage, dst.value(),
                  attempt);
    check_watchdog(resend);
    if (attempt >= cfg_.retry_max_attempts)
      throw_retry_exhausted("request", "", src, dst, resend);
    prof_add(prof::Component::kBackoff, t, resend);
    t = resend;
    backoff = std::min(backoff * 2, cfg_.retry_backoff_max);
  }
}

Cycle CoherentMemory::request_engine(NodeId src, NodeId dst, BlockId block,
                                     Cycle t) {
  t = use_net(t, src, dst);
  if (background_ ||
      (cfg_.nack_busy_cycles == Cycle{0} && !plan_.enabled()))
    return use_engine(dst, t);
  // NACK-on-overload: a home engine whose backlog exceeds the threshold (or
  // a fault rule forcing a NACK) refuses the request; the requester backs
  // off and re-sends.  Directory state is untouched by a NACKed request.
  Cycle backoff = cfg_.retry_backoff_base;
  for (std::uint32_t attempt = 1;; ++attempt) {
    const Cycle free_at = engine_[dst].free_at();
    const bool overloaded =
        cfg_.nack_busy_cycles > Cycle{0} &&
        free_at > t + cfg_.nack_busy_cycles;
    if (!overloaded && !plan_.nack_forced(t, dst)) break;
    ++nacks_;
    ++cur_nacks_;
    watchdog_.note_nack();
    dir_.note_nack(block, src);
    if (sink_)
      sink_->emit(obs::EventKind::kNack, t, dst, cfg_.page_of_block(block),
                  src.value(),
                  free_at > t ? (free_at - t).value() : 0);
    const Cycle nack_at = use_net(t, dst, src);  // NACK reply to requester
    const Cycle resend = nack_at + backoff;
    prof_add(prof::Component::kBackoff, nack_at, resend);
    check_watchdog(resend);
    if (attempt >= cfg_.retry_max_attempts)
      throw_retry_exhausted("NACK", "home ", src, dst, resend);
    t = use_net(resend, src, dst);  // re-issued request
    backoff = std::min(backoff * 2, cfg_.retry_backoff_max);
  }
  return use_engine(dst, t);
}

void CoherentMemory::check_watchdog(Cycle now) {
  if (!watchdog_.expired(now)) return;
  const fault::Watchdog::InFlight& tx = watchdog_.in_flight();
  if (sink_)
    sink_->emit(obs::EventKind::kWatchdogTrip, now, node_of(tx.proc),
                cfg_.page_of(tx.addr), (now - tx.start).value(), tx.retries,
                tx.nacks);
  watchdog_.trip(now, dump_in_flight_state(now));
}

std::string CoherentMemory::dump_in_flight_state(Cycle now) const {
  std::ostringstream os;
  os << "protocol state at cycle " << now << ":";
  const fault::Watchdog::InFlight& tx = watchdog_.in_flight();
  if (tx.active) {
    const BlockId b = cfg_.block_of(tx.addr);
    const VPageId page = cfg_.page_of(tx.addr);
    os << "\n  block " << b << " (page " << page << ", home "
       << home_of_page(page) << "): " << dir_.describe(b);
  }
  for (NodeId n{0}; n.value() < cfg_.nodes; ++n)
    os << "\n  node " << n << ": engine free_at=" << engine_[n].free_at()
       << ", input port free_at=" << net_.input_port(n).free_at();
  os << "\n  faults injected=" << plan_.injected()
     << " (drops=" << plan_.drops() << " dups=" << plan_.duplicates()
     << " jitters=" << plan_.jitters() << "), nacks=" << nacks_
     << ", retries=" << net_retries_;
  return os.str();
}

Cycle CoherentMemory::invalidate_targets(NodeMask targets, BlockId block,
                                         NodeId home, NodeId requester,
                                         Cycle t_home) {
  // Invalidations proceed in parallel with the data reply, so their
  // component steps are off the requester's critical path: suspend
  // attribution and let the caller charge any excess of the ack join over
  // the data return as kInvalStall.
  const bool prof_saved = prof_on_;
  prof_on_ = false;
  if (!targets.empty())
    note_dir_event(obs::EventKind::kDirInvalidation, t_home, requester, block,
                   targets.size());
  Cycle acks = t_home;
  for (const NodeId s : targets) {
    apply_invalidation(s, block);
    const Cycle at_s = use_net(t_home, home, s);
    const Cycle e = use_engine(s, at_s);
    const Cycle done_inval = use_bus_short(s, e);
    const Cycle ack = use_net(done_inval, s, requester);
    acks = std::max(acks, ack);
  }
  prof_on_ = prof_saved;
  return acks;
}

void CoherentMemory::victim_writeback(std::uint32_t proc, LineId victim_line,
                                      Cycle now) {
  const NodeId node = node_of(proc);
  const Addr addr = cfg_.line_base(victim_line);
  const VPageId page = cfg_.page_of(addr);
  const BlockId block = cfg_.block_of(addr);
  const PageMode mode = page_tables_[node]->mode(page);
  ASCOMA_CHECK_MSG(mode != PageMode::kUnmapped,
                   "dirty victim from an unmapped page");
  // Fire-and-forget: the writeback consumes bandwidth (bus, DRAM bank,
  // network port) but does not stall the processor.
  const Cycle t = bus_[node]->transact_short(now);
  if (mode == PageMode::kHome || mode == PageMode::kScoma) {
    dram_[node]->access(t, block);
    ++wb_local_;
  } else {
    const NodeId home = home_of_page(page);
    const Cycle at_home = net_.deliver(t, node, home);
    dram_[home]->access(at_home, block);
    ++wb_remote_;
  }
}

CoherentMemory::Outcome CoherentMemory::access(std::uint32_t proc, Addr addr,
                                               bool is_store, Cycle now,
                                               bool background) {
  const selfprof::SelfScope sps(selfprof::HostSite::kProtoAccess);
  background_ = background;
  cur_retries_ = 0;
  cur_nacks_ = 0;
  // Record attribution only for the profiler-bracketed demand access in
  // flight; store-buffer drains and unbracketed accesses (unit tests poking
  // the memory system directly) leave the helpers on their null path.
  prof_on_ = prof_ != nullptr && !background && prof_->in_access();
  if (!background && watchdog_.enabled())
    watchdog_.arm(proc, addr, is_store, now);
  Outcome o = access_impl(proc, addr, is_store, now);
  watchdog_.disarm();
  prof_on_ = false;
  o.retries = cur_retries_;
  o.nacks = cur_nacks_;
  return o;
}

CoherentMemory::Outcome CoherentMemory::access_impl(std::uint32_t proc,
                                                    Addr addr, bool is_store,
                                                    Cycle now) {
  ASCOMA_CHECK(proc < cfg_.total_procs());
  ASCOMA_CHECK(!page_tables_.empty());
  const NodeId node = node_of(proc);
  const LineId line = cfg_.line_of(addr);
  const BlockId block = cfg_.block_of(addr);
  const VPageId page = cfg_.page_of(addr);
  const PageMode mode = page_tables_[node]->mode(page);
  ASCOMA_CHECK_MSG(mode != PageMode::kUnmapped,
                   "access to unmapped page (kernel must fault first)");
  const NodeId home = home_of_page(page);

  if (home != node && !remote_page_seen_[node][page]) {
    remote_page_seen_[node][page] = 1;
    ++remote_pages_touched_[node];
  }

  Outcome o;
  mem::L1Cache& l1 = *l1_[proc];

  // ---- L1 hit paths ---------------------------------------------------------
  if (l1.probe(line)) {
    o.l1_hit = true;
    if (!is_store || dir_.owner(block) == node) {
      shadow_check_local(node, block, "L1 hit");
      if (is_store) {
        shadow_commit_store(node, block);
        l1.touch_store(line);
        invalidate_sibling_line(proc, line);  // bus snoop
      }
      o.done = now + cfg_.l1_hit_cycles;
      prof_add(prof::Component::kL1, now, o.done);
      return o;
    }
    shadow_check_local(node, block, "L1 upgrade");
    // Ownership upgrade: the line is valid locally but the node is not the
    // exclusive owner.
    o.upgrade = true;
    Cycle t = use_bus(node, now);
    t = use_engine(node, t);
    if (home != node) {
      t = request_engine(node, home, block, t);
      o.remote = true;
    }
    t += cfg_.dir_lookup_cycles;
    prof_add(prof::Component::kDirectory, Cycle{0}, cfg_.dir_lookup_cycles);
    auto gx = dir_.getx(block, node);
    ASCOMA_CHECK_MSG(!gx.forward(),
                     "valid L1 line while another node owns the block dirty");
    const Cycle acks = invalidate_targets(gx.invalidate, block, home, node, t);
    if (home != node) {
      t = use_net(t, home, node);  // ownership grant
      t = use_engine(node, t);
    }
    o.done = std::max(t, acks);
    prof_join(t, o.done);
    shadow_commit_store(node, block);
    l1.touch_store(line);
    invalidate_sibling_line(proc, line);
    return o;
  }

  // ---- L1 miss ---------------------------------------------------------------
  o.counted_miss = true;
  const Touch prior = touch_of(node, block);

  auto fill_l1 = [&](Cycle t) {
    const auto fr = l1.fill(line, is_store);
    if (fr.writeback) victim_writeback(proc, fr.victim, t);
    if (is_store) invalidate_sibling_line(proc, line);
  };

  auto classify_local = [&]() {
    switch (mode) {
      case PageMode::kHome: return MissSource::kHome;
      case PageMode::kScoma: return MissSource::kScoma;
      default: return MissSource::kRac;  // NUMA-mode, supplied on-node
    }
  };

  // ---- sibling cache-to-cache supply (SMP nodes) -----------------------------
  // The fast path applies only when no directory transaction is needed: any
  // load (the node already holds the data; the copyset is unchanged), or a
  // store by the exclusive owner node.  Stores that need ownership fall
  // through to the regular paths, which perform the GETX/invalidations.
  if ((!is_store || dir_.owner(block) == node) &&
      sibling_with_line(proc, line) >= 0) {
    // The bus transaction overlaps the snoop/supply; total latency is the
    // fixed cache-to-cache transfer time (>= one bus occupancy).
    shadow_check_local(node, block, "sibling supply");
    if (is_store) shadow_commit_store(node, block);
    const Cycle t = use_bus(node, now);
    o.done = std::max(t, now + cfg_.sibling_transfer_cycles);
    prof_add(prof::Component::kBus, t, o.done);  // cache-to-cache transfer
    o.source = classify_local();
    o.data_fetch = true;
    ++sibling_transfers_;
    fill_l1(o.done);
    return o;
  }

  if (mode == PageMode::kHome) {
    Cycle t = use_bus(node, now);
    t = use_engine(node, t);
    if (is_store) {
      auto gx = dir_.getx(block, node);
      if (gx.forward()) {
        // 3-hop: fetch the dirty data from its owner, invalidating it.
        t += cfg_.dir_lookup_cycles;
        prof_add(prof::Component::kDirectory, Cycle{0}, cfg_.dir_lookup_cycles);
        note_dir_event(obs::EventKind::kDirForward, t, node, block,
                       gx.dirty_owner.value());
        const Cycle at_owner = use_net(t, node, gx.dirty_owner);
        const Cycle eo = use_engine(gx.dirty_owner, at_owner);
        const Cycle data = use_dram(gx.dirty_owner, eo, block);
        apply_invalidation(gx.dirty_owner, block);
        Cycle back = use_net(data, gx.dirty_owner, node);
        back = use_engine(node, back);
        const Cycle acks =
            invalidate_targets(gx.invalidate, block, node, node, t);
        o.done = std::max(back, acks);
        prof_join(back, o.done);
        o.remote = true;
        o.source = MissSource::kCoherence;
      } else {
        const Cycle data0 = use_dram(node, t, block);
        const Cycle data = use_engine(node, data0);
        const Cycle acks =
            invalidate_targets(gx.invalidate, block, node, node, t);
        o.done = std::max(data, acks);
        prof_join(data, o.done);
        o.remote = !gx.invalidate.empty();
        o.source = MissSource::kHome;
      }
    } else {
      auto gs = dir_.gets(block, node);
      if (gs.forward()) {
        t += cfg_.dir_lookup_cycles;
        prof_add(prof::Component::kDirectory, Cycle{0}, cfg_.dir_lookup_cycles);
        note_dir_event(obs::EventKind::kDirForward, t, node, block,
                       gs.dirty_owner.value());
        const Cycle at_owner = use_net(t, node, gs.dirty_owner);
        const Cycle eo = use_engine(gs.dirty_owner, at_owner);
        const Cycle data = use_dram(gs.dirty_owner, eo, block);
        Cycle back = use_net(data, gs.dirty_owner, node);
        back = use_engine(node, back);
        o.done = back;
        o.remote = true;
        o.source = MissSource::kCoherence;
      } else {
        const Cycle data0 = use_dram(node, t, block);
        o.done = use_engine(node, data0);
        o.source = MissSource::kHome;
      }
    }
    if (is_store)
      shadow_commit_store(node, block);
    else
      shadow_fetch(node, block);
    o.data_fetch = true;
    fill_l1(o.done);
    return o;
  }

  ASCOMA_CHECK_MSG(home != node, "non-home mapping mode on the home node");

  if (mode == PageMode::kScoma && scoma_valid_[node][block]) {
    if (!is_store || dir_.owner(block) == node) {
      // Supplied from the local page cache at local-memory latency.
      shadow_check_local(node, block, "scoma page cache");
      if (is_store) shadow_commit_store(node, block);
      Cycle t = use_bus(node, now);
      t = use_engine(node, t);
      t = use_dram(node, t, block);
      o.done = use_engine(node, t);
      o.source = MissSource::kScoma;
      o.data_fetch = true;
      fill_l1(o.done);
      return o;
    }
    // Store to a valid shared replica: ownership-only GETX to the home.
    shadow_check_local(node, block, "scoma ownership upgrade");
    shadow_commit_store(node, block);
    Cycle t = use_bus(node, now);
    t = use_engine(node, t);
    t = request_engine(node, home, block, t);
    t += cfg_.dir_lookup_cycles;
    prof_add(prof::Component::kDirectory, Cycle{0}, cfg_.dir_lookup_cycles);
    auto gx = dir_.getx(block, node);
    ASCOMA_CHECK_MSG(!gx.forward(),
                     "valid S-COMA block while another node owns it dirty");
    const Cycle acks = invalidate_targets(gx.invalidate, block, home, node, t);
    Cycle grant = use_net(t, home, node);
    grant = use_engine(node, grant);
    // Data comes from the local frame once ownership is granted.
    prof_join(grant, std::max(grant, acks));
    const Cycle data = use_dram(node, std::max(grant, acks), block);
    o.done = use_engine(node, data);
    o.remote = true;
    o.source = MissSource::kCoherence;
    o.data_fetch = true;
    fill_l1(o.done);
    return o;
  }

  if (mode == PageMode::kNuma && !is_store && rac_[node]->probe(block)) {
    Cycle t = use_bus(node, now);
    t = use_engine(node, t);
    o.done = t + cfg_.rac_array_cycles;
    prof_add(prof::Component::kRac, t, o.done);
    shadow_check_local(node, block, "RAC hit");
    o.source = MissSource::kRac;
    o.data_fetch = true;
    rac_[node]->note_hit();
    fill_l1(o.done);
    return o;
  }

  // ---- Remote fetch (S-COMA invalid block, or CC-NUMA RAC miss) ------------
  Cycle t = use_bus(node, now);
  t = use_engine(node, t);
  t = request_engine(node, home, block, t);
  t += cfg_.dir_lookup_cycles;
  prof_add(prof::Component::kDirectory, Cycle{0}, cfg_.dir_lookup_cycles);

  Cycle data_done;
  Cycle acks = t;
  if (is_store) {
    auto gx = dir_.getx(block, node);
    o.counted_refetch = (prior == Touch::kFetched);
    if (gx.forward()) {
      note_dir_event(obs::EventKind::kDirForward, t, node, block,
                     gx.dirty_owner.value());
      const Cycle at_owner = use_net(t, home, gx.dirty_owner);
      const Cycle eo = use_engine(gx.dirty_owner, at_owner);
      const Cycle data = use_dram(gx.dirty_owner, eo, block);
      apply_invalidation(gx.dirty_owner, block);
      Cycle back = use_net(data, gx.dirty_owner, node);
      data_done = use_engine(node, back);
    } else {
      const Cycle data = use_dram(home, t, block);
      Cycle back = use_net(data, home, node);
      data_done = use_engine(node, back);
    }
    acks = invalidate_targets(gx.invalidate, block, home, node, t);
  } else {
    auto gs = dir_.gets(block, node);
    o.counted_refetch = (prior == Touch::kFetched);
    if (gs.forward()) {
      note_dir_event(obs::EventKind::kDirForward, t, node, block,
                     gs.dirty_owner.value());
      const Cycle at_owner = use_net(t, home, gs.dirty_owner);
      const Cycle eo = use_engine(gs.dirty_owner, at_owner);
      const Cycle data = use_dram(gs.dirty_owner, eo, block);
      Cycle back = use_net(data, gs.dirty_owner, node);
      data_done = use_engine(node, back);
    } else {
      const Cycle data = use_dram(home, t, block);
      Cycle back = use_net(data, home, node);
      data_done = use_engine(node, back);
    }
  }
  o.done = std::max(data_done, acks);
  prof_join(data_done, o.done);
  o.remote = true;
  o.data_fetch = true;

  // Classification by the requesting node's prior knowledge of the block.
  switch (prior) {
    case Touch::kNever:
      o.source = MissSource::kCold;
      o.induced_cold = ever_fetched_[node][block] != 0;
      break;
    case Touch::kInvalidated:
      o.source = MissSource::kCoherence;
      break;
    case Touch::kFetched:
      o.source = MissSource::kConfCapc;
      break;
  }
  o.page_refetch_count = o.counted_refetch ? refetch_.increment(page, node)
                                           : refetch_.count(page, node);

  if (is_store)
    shadow_commit_store(node, block);
  else
    shadow_fetch(node, block);
  set_touch(node, block, Touch::kFetched);
  ever_fetched_[node][block] = 1;

  // Install the arriving 4-line chunk at its destination.
  if (mode == PageMode::kScoma) {
    scoma_valid_[node][block] = 1;
    if (!background_) dram_[node]->access(o.done, block);  // page-cache write
  } else {
    rac_[node]->fill(block);
  }
  fill_l1(o.done);
  return o;
}

CoherentMemory::FlushOutcome CoherentMemory::flush_page(NodeId node,
                                                        VPageId page,
                                                        Cycle now) {
  ASCOMA_CHECK(node.value() < cfg_.nodes);
  FlushOutcome fo;
  for (std::uint32_t q = node.value() * ppn_; q < (node.value() + 1) * ppn_;
       ++q) {
    const auto l1res = l1_[q]->flush_page(page);
    fo.l1_valid_lines += l1res.valid_lines;
    fo.l1_dirty_lines += l1res.dirty_lines;
  }
  rac_[node]->invalidate_page(page);

  const BlockId first = cfg_.first_block_of_page(page);
  for (std::uint32_t i = 0; i < cfg_.blocks_per_page(); ++i) {
    const BlockId b = first + i;
    scoma_valid_[node][b] = 0;
    set_touch(node, b, Touch::kNever);
    if (dir_.in_copyset(b, node)) {
      dir_.flush_node(b, node);
      ++fo.blocks_released;
    }
  }
  refetch_.reset(page, node);

  if (fo.blocks_released > 0) {
    const NodeId home = home_of_page(page);
    const Cycle t = bus_[node]->transact_short(now);
    if (home != node) {
      // One batched flush/writeback notification to the home.
      const Cycle at_home = net_.deliver(t, node, home);
      engine_[home].acquire(at_home, cfg_.dsm_engine_cycles);
    }
  }
  return fo;
}

void CoherentMemory::audit() const {
  const std::uint64_t blocks = dir_.total_blocks();
  for (BlockId b{0}; b.value() < blocks; ++b) {
    dir_.check_entry(b);
    for (NodeId n{0}; n.value() < cfg_.nodes; ++n) {
      if (scoma_valid_[n][b]) {
        ASCOMA_CHECK_MSG(dir_.in_copyset(b, n),
                         "S-COMA valid block not in directory copyset");
      }
      if (touch_of(n, b) == Touch::kFetched) {
        ASCOMA_CHECK_MSG(dir_.in_copyset(b, n),
                         "Fetched block not in directory copyset");
      }
    }
  }
}

namespace {

void encode_byte_table(
    store::Encoder& e,
    const IdVector<NodeId, IdVector<BlockId, std::uint8_t>>& t) {
  for (const auto& per_node : t)
    for (const std::uint8_t v : per_node) e.u8(v);
}

void decode_byte_table(store::Decoder& d,
                       IdVector<NodeId, IdVector<BlockId, std::uint8_t>>& t) {
  for (auto& per_node : t)
    for (std::uint8_t& v : per_node) v = d.u8();
}

}  // namespace

void CoherentMemory::encode(store::Encoder& e) const {
  e.begin_section("cmem");
  e.u32(static_cast<std::uint32_t>(l1_.size()));
  for (const auto& c : l1_) c->encode(e);
  e.u32(static_cast<std::uint32_t>(rac_.size()));
  for (const auto& r : rac_) r->encode(e);
  for (const auto& dr : dram_) dr->encode(e);
  for (const auto& b : bus_) b->encode(e);
  for (const sim::Resource& r : engine_) r.encode(e);
  plan_.encode(e);
  watchdog_.encode(e);
  net_.encode(e);
  dir_.encode(e);
  refetch_.encode(e);
  encode_byte_table(e, touched_);
  encode_byte_table(e, ever_fetched_);
  encode_byte_table(e, scoma_valid_);
  for (const auto& per_node : remote_page_seen_)
    for (const std::uint8_t v : per_node) e.u8(v);
  for (const std::uint64_t v : remote_pages_touched_) e.u64(v);
  e.u64(wb_local_);
  e.u64(wb_remote_);
  e.u64(sibling_transfers_);
  e.u64(net_retries_);
  e.u64(nacks_);
  for (const std::uint32_t v : global_version_) e.u32(v);
  for (const auto& per_node : local_version_)
    for (const std::uint32_t v : per_node) e.u32(v);
  e.end_section();
}

void CoherentMemory::decode(store::Decoder& d) {
  d.begin_section("cmem");
  if (d.u32() != l1_.size())
    throw store::CodecError("coherent memory processor count mismatch");
  for (const auto& c : l1_) c->decode(d);
  if (d.u32() != rac_.size())
    throw store::CodecError("coherent memory node count mismatch");
  for (const auto& r : rac_) r->decode(d);
  for (const auto& dr : dram_) dr->decode(d);
  for (const auto& b : bus_) b->decode(d);
  for (sim::Resource& r : engine_) r.decode(d);
  plan_.decode(d);
  watchdog_.decode(d);
  net_.decode(d);
  dir_.decode(d);
  refetch_.decode(d);
  decode_byte_table(d, touched_);
  decode_byte_table(d, ever_fetched_);
  decode_byte_table(d, scoma_valid_);
  for (auto& per_node : remote_page_seen_)
    for (std::uint8_t& v : per_node) v = d.u8();
  for (std::uint64_t& v : remote_pages_touched_) v = d.u64();
  wb_local_ = d.u64();
  wb_remote_ = d.u64();
  sibling_transfers_ = d.u64();
  net_retries_ = d.u64();
  nacks_ = d.u64();
  for (std::uint32_t& v : global_version_) v = d.u32();
  for (auto& per_node : local_version_)
    for (std::uint32_t& v : per_node) v = d.u32();
  d.end_section();
}

}  // namespace ascoma::proto
