#pragma once

// Declarative transition table for the directory-based write-invalidate,
// sequentially-consistent DSM protocol.
//
// Every directory transition the simulator can take is one row of a
// (state x message x requester-relation) table: the exact protocol is
// inspectable *data*, not branching code.  proto::Directory applies rows
// mechanically (Directory::apply), proto::CoherentMemory branches on the
// action bits a transition returned (instead of re-deriving them from entry
// fields), tools/ascoma_modelcheck exhaustively explores the table's
// message-level semantics, and tools/lint_protocol.py statically verifies
// the table is total — every (state, message, relation) triple has exactly
// one row in kProtocol.
//
// Directory states are a *view* of a directory entry (Directory::Entry is
// the ground truth): kUncached (no sharers, no owner), kShared (sharers,
// no owner — home memory current), kExclusive (one owner, dirty).  The
// requester relation splits rows that transition differently depending on
// whether the requester already appears in the entry.  Rows whose triple
// cannot arise under the protocol invariants (e.g. a sharer bit in an
// uncached entry) are declared with act::kFatal: reaching one is itself a
// protocol violation, and the model checker reports it as such when a
// mutated table makes one reachable.

#include <array>
#include <cstdint>
#include <string>

namespace ascoma::proto {

/// View of a directory entry's coherence state.
enum class DirState : std::uint8_t { kUncached, kShared, kExclusive };
inline constexpr int kNumDirStates = 3;

/// Protocol message classes a directory entry reacts to.
enum class ProtoMsg : std::uint8_t { kGetS, kGetX, kFlush, kNack };
inline constexpr int kNumProtoMsgs = 4;

/// Requester's relation to the entry when the message is processed.
enum class ReqRel : std::uint8_t { kNone, kSharer, kOwner };
inline constexpr int kNumReqRels = 3;

/// Expected entry state after a row's actions are applied.  kSharedOrUncached
/// covers a sharer flush that may or may not empty the copyset.
enum class DirNext : std::uint8_t {
  kUncached,
  kShared,
  kExclusive,
  kSharedOrUncached,
  kFatal,
};

const char* to_string(DirState s);
const char* to_string(ProtoMsg m);
const char* to_string(ReqRel r);
const char* to_string(DirNext n);

/// Transition actions, applied by Directory::apply in declaration order
/// (reads before writes: forwards/invalidations observe the pre-transition
/// entry, then the entry is rewritten).
namespace act {
inline constexpr std::uint32_t kNone = 0;
/// 3-hop forward: the dirty owner supplies the data (counts one forward).
inline constexpr std::uint32_t kForwardOwner = 1u << 0;
/// Invalidate every sharer except the requester and the dirty owner
/// (counts one invalidation per target).
inline constexpr std::uint32_t kInvalSharers = 1u << 1;
/// The forwarded-to owner also loses its copy (GETX; counts one
/// invalidation).
inline constexpr std::uint32_t kInvalOwner = 1u << 2;
/// Clear the owner field: home memory becomes current (downgrade/writeback).
inline constexpr std::uint32_t kClearOwner = 1u << 3;
/// Add the requester to the copyset.
inline constexpr std::uint32_t kAddSharer = 1u << 4;
/// Collapse the copyset to {requester} and make it the owner.
inline constexpr std::uint32_t kSetOwner = 1u << 5;
/// Remove the requester from the copyset.
inline constexpr std::uint32_t kRemoveSharer = 1u << 6;
/// Home memory is current and supplies the data if the requester needs it.
inline constexpr std::uint32_t kDataFromHome = 1u << 7;
/// The triple is unreachable under the protocol invariants.
inline constexpr std::uint32_t kFatal = 1u << 8;
}  // namespace act

/// One row: state x message x relation -> actions + next state.
struct Transition {
  DirState state;
  ProtoMsg msg;
  ReqRel rel;
  std::uint32_t actions;
  DirNext next;
  const char* why;  ///< one-line rationale (or unreachability argument)

  bool has(std::uint32_t bit) const { return (actions & bit) != 0; }
  bool fatal() const { return has(act::kFatal); }
};

/// The full protocol table, indexed by (state, message, relation).  The
/// constructor ingests a row list and enforces totality: every triple
/// covered exactly once (throws common::CheckFailure otherwise).  The
/// pristine() singleton holds the protocol as shipped; the model checker
/// copies it and edits rows to study known-bad mutations.
class TransitionTable {
 public:
  /// Builds the pristine protocol (the kProtocol row list).
  TransitionTable();

  const Transition& lookup(DirState s, ProtoMsg m, ReqRel r) const {
    return rows_[index(s, m, r)];
  }

  /// Mutable row access — only for protocol-mutation studies (the model
  /// checker and its tests); the simulator consults pristine() rows.
  Transition& row(DirState s, ProtoMsg m, ReqRel r) {
    return rows_[index(s, m, r)];
  }

  /// The protocol as shipped (shared immutable singleton).
  static const TransitionTable& pristine();

  /// Human-readable dump, one row per line (for docs and debugging).
  std::string describe() const;

  static constexpr int kNumRows =
      kNumDirStates * kNumProtoMsgs * kNumReqRels;

 private:
  static int index(DirState s, ProtoMsg m, ReqRel r) {
    return (static_cast<int>(s) * kNumProtoMsgs + static_cast<int>(m)) *
               kNumReqRels +
           static_cast<int>(r);
  }

  std::array<Transition, kNumRows> rows_;
};

}  // namespace ascoma::proto
