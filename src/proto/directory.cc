#include "proto/directory.hh"

#include <bit>

#include "selfprof/collector.hh"

namespace ascoma::proto {

Directory::Directory(std::uint64_t total_blocks, std::uint32_t nodes,
                     const TransitionTable* table)
    : nodes_(nodes),
      table_(table != nullptr ? table : &TransitionTable::pristine()),
      entries_(total_blocks) {
  ASCOMA_CHECK_MSG(nodes >= 1 && nodes <= 64,
                   "directory sharer mask supports up to 64 nodes");
}

const Transition& Directory::apply(BlockId b, ProtoMsg msg, NodeId requester,
                                   NodeId* dirty_owner,
                                   NodeMask* invalidate) {
  const selfprof::SelfScope sps(selfprof::HostSite::kDirLookup);
  Entry& e = entries_[b];
  const Transition& t = table_->lookup(state_of(e), msg, rel_of(e, requester));
  ASCOMA_CHECK_MSG(!t.fatal(), "protocol table row declared unreachable was "
                               "hit: "
                                   << to_string(t.state) << " x "
                                   << to_string(t.msg) << " x "
                                   << to_string(t.rel) << " (" << t.why
                                   << ")");
  // Reads first: forwards and invalidations observe the pre-transition entry.
  if (t.has(act::kForwardOwner)) {
    if (dirty_owner != nullptr) *dirty_owner = e.owner;
    ++forwards_;
  }
  if (t.has(act::kInvalSharers)) {
    std::uint64_t to_inval = e.sharers & ~bit(requester);
    if (e.owner != kInvalidNode) to_inval &= ~bit(e.owner);
    if (invalidate != nullptr) *invalidate = NodeMask{to_inval};
    invalidations_ += std::popcount(to_inval);
  }
  if (t.has(act::kInvalOwner)) ++invalidations_;  // the owner also loses it
  // Then the entry rewrite.
  if (t.has(act::kClearOwner)) e.owner = kInvalidNode;
  if (t.has(act::kAddSharer)) e.sharers |= bit(requester);
  if (t.has(act::kRemoveSharer)) e.sharers &= ~bit(requester);
  if (t.has(act::kSetOwner)) {
    e.sharers = bit(requester);
    e.owner = requester;
  }
  // The table's next-state column is a checked promise, not an input.
  const DirState after = state_of(e);
  const bool next_ok =
      t.next == DirNext::kSharedOrUncached
          ? (after == DirState::kShared || after == DirState::kUncached)
          : after == static_cast<DirState>(t.next);
  ASCOMA_CHECK_MSG(next_ok, "protocol row "
                                << to_string(t.state) << " x "
                                << to_string(t.msg) << " x " << to_string(t.rel)
                                << " promised " << to_string(t.next)
                                << " but produced " << to_string(after));
  return t;
}

Directory::FetchResult Directory::gets(BlockId b, NodeId requester) {
  ASCOMA_CHECK(b.value() < entries_.size() && requester.value() < nodes_);
  FetchResult r;
  r.was_in_copyset = (entries_[b].sharers & bit(requester)) != 0;
  r.actions =
      apply(b, ProtoMsg::kGetS, requester, &r.dirty_owner, nullptr).actions;
  return r;
}

Directory::GetxResult Directory::getx(BlockId b, NodeId requester) {
  ASCOMA_CHECK(b.value() < entries_.size() && requester.value() < nodes_);
  GetxResult r;
  r.was_in_copyset = (entries_[b].sharers & bit(requester)) != 0;
  r.actions =
      apply(b, ProtoMsg::kGetX, requester, &r.dirty_owner, &r.invalidate)
          .actions;
  return r;
}

bool Directory::flush_node(BlockId b, NodeId node) {
  ASCOMA_CHECK(b.value() < entries_.size() && node.value() < nodes_);
  const bool was_owner = rel_of(entries_[b], node) == ReqRel::kOwner;
  apply(b, ProtoMsg::kFlush, node, nullptr, nullptr);
  return was_owner;
}

void Directory::note_nack(BlockId b, NodeId requester) {
  ASCOMA_CHECK(b.value() < entries_.size() && requester.value() < nodes_);
  apply(b, ProtoMsg::kNack, requester, nullptr, nullptr);
  ++nacks_;
}

bool Directory::in_copyset(BlockId b, NodeId node) const {
  ASCOMA_CHECK(b.value() < entries_.size() && node.value() < nodes_);
  return (entries_[b].sharers & bit(node)) != 0;
}

std::uint32_t Directory::sharer_count(BlockId b) const {
  ASCOMA_CHECK(b.value() < entries_.size());
  return static_cast<std::uint32_t>(std::popcount(entries_[b].sharers));
}

std::string Directory::describe(BlockId b) const {
  ASCOMA_CHECK(b.value() < entries_.size());
  const Entry& e = entries_[b];
  std::string out = "owner=";
  out += e.owner == kInvalidNode ? "-" : std::to_string(e.owner.value());
  out += " sharers={";
  bool first = true;
  for (NodeId n{0}; n.value() < nodes_; ++n) {
    if ((e.sharers & bit(n)) == 0) continue;
    if (!first) out += ',';
    out += std::to_string(n.value());
    first = false;
  }
  out += '}';
  return out;
}

void Directory::check_entry(BlockId b) const {
  ASCOMA_CHECK(b.value() < entries_.size());
  const Entry& e = entries_[b];
  if (e.owner != kInvalidNode) {
    ASCOMA_CHECK_MSG(e.owner.value() < nodes_, "owner out of range");
    ASCOMA_CHECK_MSG(e.sharers == bit(e.owner),
                     "exclusive block must have exactly its owner as sharer");
  }
  ASCOMA_CHECK_MSG((e.sharers >> nodes_) == 0, "sharer bit beyond node count");
}

}  // namespace ascoma::proto
