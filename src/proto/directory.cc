#include "proto/directory.hh"

#include <bit>

namespace ascoma::proto {

Directory::Directory(std::uint64_t total_blocks, std::uint32_t nodes)
    : nodes_(nodes), entries_(total_blocks) {
  ASCOMA_CHECK_MSG(nodes >= 1 && nodes <= 64,
                   "directory sharer mask supports up to 64 nodes");
}

Directory::FetchResult Directory::gets(BlockId b, NodeId requester) {
  ASCOMA_CHECK(b < entries_.size() && requester < nodes_);
  Entry& e = entries_[b];
  FetchResult r;
  r.was_in_copyset = (e.sharers & bit(requester)) != 0;
  if (e.owner != kInvalidNode && e.owner != requester) {
    r.dirty_owner = e.owner;
    ++forwards_;
  }
  // Any exclusive copy is downgraded: the owner's data is written back home
  // as part of the forward, after which home is current.
  e.owner = kInvalidNode;
  e.sharers |= bit(requester);
  return r;
}

Directory::GetxResult Directory::getx(BlockId b, NodeId requester) {
  ASCOMA_CHECK(b < entries_.size() && requester < nodes_);
  Entry& e = entries_[b];
  GetxResult r;
  r.was_in_copyset = (e.sharers & bit(requester)) != 0;
  if (e.owner != kInvalidNode && e.owner != requester) {
    r.dirty_owner = e.owner;
    ++forwards_;
  }
  std::uint64_t to_inval = e.sharers & ~bit(requester);
  if (r.dirty_owner != kInvalidNode) to_inval &= ~bit(r.dirty_owner);
  while (to_inval != 0) {
    const int n = std::countr_zero(to_inval);
    r.invalidate.push_back(static_cast<NodeId>(n));
    to_inval &= to_inval - 1;
    ++invalidations_;
  }
  if (r.dirty_owner != kInvalidNode) ++invalidations_;  // owner also loses it
  e.sharers = bit(requester);
  e.owner = requester;
  return r;
}

bool Directory::flush_node(BlockId b, NodeId node) {
  ASCOMA_CHECK(b < entries_.size() && node < nodes_);
  Entry& e = entries_[b];
  const bool was_owner = e.owner == node;
  e.sharers &= ~bit(node);
  if (was_owner) e.owner = kInvalidNode;
  return was_owner;
}

bool Directory::in_copyset(BlockId b, NodeId node) const {
  ASCOMA_CHECK(b < entries_.size() && node < nodes_);
  return (entries_[b].sharers & bit(node)) != 0;
}

std::uint32_t Directory::sharer_count(BlockId b) const {
  ASCOMA_CHECK(b < entries_.size());
  return static_cast<std::uint32_t>(std::popcount(entries_[b].sharers));
}

std::string Directory::describe(BlockId b) const {
  ASCOMA_CHECK(b < entries_.size());
  const Entry& e = entries_[b];
  std::string out = "owner=";
  out += e.owner == kInvalidNode ? "-" : std::to_string(e.owner);
  out += " sharers={";
  bool first = true;
  for (NodeId n = 0; n < nodes_; ++n) {
    if ((e.sharers & bit(n)) == 0) continue;
    if (!first) out += ',';
    out += std::to_string(n);
    first = false;
  }
  out += '}';
  return out;
}

void Directory::check_entry(BlockId b) const {
  ASCOMA_CHECK(b < entries_.size());
  const Entry& e = entries_[b];
  if (e.owner != kInvalidNode) {
    ASCOMA_CHECK_MSG(e.owner < nodes_, "owner out of range");
    ASCOMA_CHECK_MSG(e.sharers == bit(e.owner),
                     "exclusive block must have exactly its owner as sharer");
  }
  ASCOMA_CHECK_MSG((e.sharers >> nodes_) == 0, "sharer bit beyond node count");
}

}  // namespace ascoma::proto
