#include "proto/transition_table.hh"

#include <sstream>

#include "common/check.hh"

namespace ascoma::proto {

const char* to_string(DirState s) {
  switch (s) {
    case DirState::kUncached: return "Uncached";
    case DirState::kShared: return "Shared";
    case DirState::kExclusive: return "Exclusive";
  }
  return "?";
}

const char* to_string(ProtoMsg m) {
  switch (m) {
    case ProtoMsg::kGetS: return "GETS";
    case ProtoMsg::kGetX: return "GETX";
    case ProtoMsg::kFlush: return "FLUSH";
    case ProtoMsg::kNack: return "NACK";
  }
  return "?";
}

const char* to_string(ReqRel r) {
  switch (r) {
    case ReqRel::kNone: return "none";
    case ReqRel::kSharer: return "sharer";
    case ReqRel::kOwner: return "owner";
  }
  return "?";
}

const char* to_string(DirNext n) {
  switch (n) {
    case DirNext::kUncached: return "Uncached";
    case DirNext::kShared: return "Shared";
    case DirNext::kExclusive: return "Exclusive";
    case DirNext::kSharedOrUncached: return "Shared|Uncached";
    case DirNext::kFatal: return "-";
  }
  return "?";
}

namespace {

// The protocol.  One row per (state, message, relation) triple; totality
// over the full cross-product is enforced by the TransitionTable constructor
// at startup and by tools/lint_protocol.py at lint time.  Keep each row's
// triple on a single line — the lint script parses them textually.
//
// clang-format off
constexpr Transition kProtocol[] = {
  // ---- GETS: read request -------------------------------------------------
  {DirState::kUncached, ProtoMsg::kGetS, ReqRel::kNone,
   act::kAddSharer | act::kDataFromHome, DirNext::kShared,
   "cold read: home supplies, requester joins the copyset"},
  {DirState::kUncached, ProtoMsg::kGetS, ReqRel::kSharer,
   act::kFatal, DirNext::kFatal,
   "an uncached entry has an empty copyset"},
  {DirState::kUncached, ProtoMsg::kGetS, ReqRel::kOwner,
   act::kFatal, DirNext::kFatal,
   "an uncached entry has no owner"},
  {DirState::kShared, ProtoMsg::kGetS, ReqRel::kNone,
   act::kAddSharer | act::kDataFromHome, DirNext::kShared,
   "read join: home memory is current"},
  {DirState::kShared, ProtoMsg::kGetS, ReqRel::kSharer,
   act::kAddSharer | act::kDataFromHome, DirNext::kShared,
   "re-fetch after a silent local eviction (RAC/L1 conflict)"},
  {DirState::kShared, ProtoMsg::kGetS, ReqRel::kOwner,
   act::kFatal, DirNext::kFatal,
   "a shared entry has no owner"},
  {DirState::kExclusive, ProtoMsg::kGetS, ReqRel::kNone,
   act::kForwardOwner | act::kClearOwner | act::kAddSharer, DirNext::kShared,
   "3-hop read: owner supplies and downgrades, writeback makes home current"},
  {DirState::kExclusive, ProtoMsg::kGetS, ReqRel::kSharer,
   act::kFatal, DirNext::kFatal,
   "an exclusive entry's only sharer is the owner itself"},
  {DirState::kExclusive, ProtoMsg::kGetS, ReqRel::kOwner,
   act::kClearOwner | act::kAddSharer | act::kDataFromHome, DirNext::kShared,
   "owner self-downgrade: its L1 lost the line; home serves after writeback"},

  // ---- GETX: write/ownership request --------------------------------------
  {DirState::kUncached, ProtoMsg::kGetX, ReqRel::kNone,
   act::kSetOwner | act::kDataFromHome, DirNext::kExclusive,
   "cold write: home supplies, requester becomes owner"},
  {DirState::kUncached, ProtoMsg::kGetX, ReqRel::kSharer,
   act::kFatal, DirNext::kFatal,
   "an uncached entry has an empty copyset"},
  {DirState::kUncached, ProtoMsg::kGetX, ReqRel::kOwner,
   act::kFatal, DirNext::kFatal,
   "an uncached entry has no owner"},
  {DirState::kShared, ProtoMsg::kGetX, ReqRel::kNone,
   act::kInvalSharers | act::kSetOwner | act::kDataFromHome,
   DirNext::kExclusive,
   "write by a non-holder: invalidate every sharer, home supplies"},
  {DirState::kShared, ProtoMsg::kGetX, ReqRel::kSharer,
   act::kInvalSharers | act::kSetOwner | act::kDataFromHome,
   DirNext::kExclusive,
   "upgrade: invalidate the other sharers; data moves only if the "
   "requester lost its copy"},
  {DirState::kShared, ProtoMsg::kGetX, ReqRel::kOwner,
   act::kFatal, DirNext::kFatal,
   "a shared entry has no owner"},
  {DirState::kExclusive, ProtoMsg::kGetX, ReqRel::kNone,
   act::kForwardOwner | act::kInvalOwner | act::kSetOwner,
   DirNext::kExclusive,
   "3-hop write: owner supplies and is invalidated, requester takes over"},
  {DirState::kExclusive, ProtoMsg::kGetX, ReqRel::kSharer,
   act::kFatal, DirNext::kFatal,
   "an exclusive entry's only sharer is the owner itself"},
  {DirState::kExclusive, ProtoMsg::kGetX, ReqRel::kOwner,
   act::kSetOwner | act::kDataFromHome, DirNext::kExclusive,
   "owner re-acquire after losing its L1 line: no third party involved"},

  // ---- FLUSH: page remap/eviction released the node's copy ----------------
  {DirState::kUncached, ProtoMsg::kFlush, ReqRel::kNone,
   act::kNone, DirNext::kUncached,
   "spurious flush: nothing recorded for this node"},
  {DirState::kUncached, ProtoMsg::kFlush, ReqRel::kSharer,
   act::kFatal, DirNext::kFatal,
   "an uncached entry has an empty copyset"},
  {DirState::kUncached, ProtoMsg::kFlush, ReqRel::kOwner,
   act::kFatal, DirNext::kFatal,
   "an uncached entry has no owner"},
  {DirState::kShared, ProtoMsg::kFlush, ReqRel::kNone,
   act::kNone, DirNext::kShared,
   "spurious flush: the node is not in the copyset"},
  {DirState::kShared, ProtoMsg::kFlush, ReqRel::kSharer,
   act::kRemoveSharer, DirNext::kSharedOrUncached,
   "sharer leaves the copyset (clean copy discarded)"},
  {DirState::kShared, ProtoMsg::kFlush, ReqRel::kOwner,
   act::kFatal, DirNext::kFatal,
   "a shared entry has no owner"},
  {DirState::kExclusive, ProtoMsg::kFlush, ReqRel::kNone,
   act::kNone, DirNext::kExclusive,
   "spurious flush: the node is not in the copyset"},
  {DirState::kExclusive, ProtoMsg::kFlush, ReqRel::kSharer,
   act::kFatal, DirNext::kFatal,
   "an exclusive entry's only sharer is the owner itself"},
  {DirState::kExclusive, ProtoMsg::kFlush, ReqRel::kOwner,
   act::kRemoveSharer | act::kClearOwner, DirNext::kUncached,
   "owner flush: its writeback makes home memory current"},

  // ---- NACK: home refused to queue the request ----------------------------
  // A NACKed request performed no transition; every legal row is a no-op.
  // The model checker's kNackMutatesDirectory study edits these rows.
  {DirState::kUncached, ProtoMsg::kNack, ReqRel::kNone,
   act::kNone, DirNext::kUncached,
   "NACK leaves the entry untouched"},
  {DirState::kUncached, ProtoMsg::kNack, ReqRel::kSharer,
   act::kFatal, DirNext::kFatal,
   "an uncached entry has an empty copyset"},
  {DirState::kUncached, ProtoMsg::kNack, ReqRel::kOwner,
   act::kFatal, DirNext::kFatal,
   "an uncached entry has no owner"},
  {DirState::kShared, ProtoMsg::kNack, ReqRel::kNone,
   act::kNone, DirNext::kShared,
   "NACK leaves the entry untouched"},
  {DirState::kShared, ProtoMsg::kNack, ReqRel::kSharer,
   act::kNone, DirNext::kShared,
   "NACK leaves the entry untouched"},
  {DirState::kShared, ProtoMsg::kNack, ReqRel::kOwner,
   act::kFatal, DirNext::kFatal,
   "a shared entry has no owner"},
  {DirState::kExclusive, ProtoMsg::kNack, ReqRel::kNone,
   act::kNone, DirNext::kExclusive,
   "NACK leaves the entry untouched"},
  {DirState::kExclusive, ProtoMsg::kNack, ReqRel::kSharer,
   act::kFatal, DirNext::kFatal,
   "an exclusive entry's only sharer is the owner itself"},
  {DirState::kExclusive, ProtoMsg::kNack, ReqRel::kOwner,
   act::kNone, DirNext::kExclusive,
   "NACK leaves the entry untouched"},
};
// clang-format on

static_assert(sizeof(kProtocol) / sizeof(kProtocol[0]) ==
                  static_cast<std::size_t>(TransitionTable::kNumRows),
              "protocol table must cover the full state x message x relation "
              "cross-product");

}  // namespace

TransitionTable::TransitionTable() {
  std::array<bool, kNumRows> seen{};
  for (const Transition& t : kProtocol) {
    const int i = index(t.state, t.msg, t.rel);
    ASCOMA_CHECK_MSG(!seen[static_cast<std::size_t>(i)],
                     "duplicate protocol row: " << to_string(t.state) << " x "
                                                << to_string(t.msg) << " x "
                                                << to_string(t.rel));
    seen[static_cast<std::size_t>(i)] = true;
    rows_[static_cast<std::size_t>(i)] = t;
  }
  for (int i = 0; i < kNumRows; ++i)
    ASCOMA_CHECK_MSG(seen[static_cast<std::size_t>(i)],
                     "protocol table is not total: row " << i << " missing");
}

const TransitionTable& TransitionTable::pristine() {
  static const TransitionTable table;
  return table;
}

std::string TransitionTable::describe() const {
  std::ostringstream os;
  for (const Transition& t : rows_) {
    os << to_string(t.state) << " x " << to_string(t.msg) << " x "
       << to_string(t.rel) << " -> " << to_string(t.next);
    if (t.fatal()) {
      os << " [unreachable: " << t.why << "]";
    } else {
      os << " {";
      const char* sep = "";
      const auto flag = [&](std::uint32_t bit, const char* name) {
        if (t.has(bit)) {
          os << sep << name;
          sep = ",";
        }
      };
      flag(act::kForwardOwner, "forward-owner");
      flag(act::kInvalSharers, "inval-sharers");
      flag(act::kInvalOwner, "inval-owner");
      flag(act::kClearOwner, "clear-owner");
      flag(act::kAddSharer, "add-sharer");
      flag(act::kSetOwner, "set-owner");
      flag(act::kRemoveSharer, "remove-sharer");
      flag(act::kDataFromHome, "data-from-home");
      os << "}  // " << t.why;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ascoma::proto
