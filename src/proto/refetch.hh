#pragma once

// Per-page, per-node refetch counters (the R-NUMA mechanism the hybrids
// share): the home directory counts, for each page and each remote node, the
// number of conflict-miss refetches — requests for a block the node already
// fetched and neither flushed nor had invalidated.  Crossing the (per-node,
// possibly adaptive) threshold makes the page a relocation candidate.

#include <cstdint>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"
#include "store/codec.hh"

namespace ascoma::proto {

class RefetchTable {
 public:
  RefetchTable(std::uint64_t total_pages, std::uint32_t nodes);

  /// Records one refetch; returns the new (resettable) count.
  std::uint32_t increment(VPageId page, NodeId node);

  /// Policy counter: reset when the page is remapped so post-remap behaviour
  /// is judged afresh.
  std::uint32_t count(VPageId page, NodeId node) const;

  /// Census counter: never reset (drives Table 6).
  std::uint32_t cumulative(VPageId page, NodeId node) const;

  /// Reset one page's policy counter for one node (performed on remap).
  void reset(VPageId page, NodeId node);

  /// --- census helpers for Table 6 (use cumulative counts) ------------------
  /// Number of (page, node) pairs with cumulative count >= threshold.
  std::uint64_t pairs_at_least(std::uint32_t threshold) const;
  /// Number of distinct pages having some node with cumulative >= threshold.
  std::uint64_t pages_at_least(std::uint32_t threshold) const;

  std::uint64_t total_refetches() const { return total_; }
  std::uint64_t total_pages() const { return pages_; }
  std::uint32_t nodes() const { return nodes_; }

  // Checkpoint serialization (encode/decode stay adjacent — pairing check).
  void encode(store::Encoder& e) const {
    e.u64(counts_.size());
    for (const std::uint32_t c : counts_) e.u32(c);
    for (const std::uint32_t c : cumulative_) e.u32(c);
    e.u64(total_);
  }
  void decode(store::Decoder& d) {
    if (d.u64() != counts_.size())
      throw store::CodecError("refetch table geometry mismatch");
    for (std::uint32_t& c : counts_) c = d.u32();
    for (std::uint32_t& c : cumulative_) c = d.u32();
    total_ = d.u64();
  }

 private:
  std::size_t idx(VPageId page, NodeId node) const {
    ASCOMA_CHECK(page.value() < pages_ && node.value() < nodes_);
    return page.value() * nodes_ + node.value();
  }

  std::uint64_t pages_;
  std::uint32_t nodes_;
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint32_t> cumulative_;
  std::uint64_t total_ = 0;
};

}  // namespace ascoma::proto
