#pragma once

// CoherentMemory composes the whole hardware memory system of the machine:
// per-processor L1s, and per-node RAC, bus, banked DRAM and DSM-engine
// occupancy, the global interconnect, the directory, and the refetch
// counters.  It executes one shared-memory access at a time (processors
// block on misses — one outstanding miss, as in the paper) and returns both
// the completion cycle and the paper's classification of where the miss was
// satisfied.
//
// SMP nodes (procs_per_node > 1): each processor has a private L1; the
// node's coherent bus snoop supplies lines cache-to-cache between siblings
// and invalidates sibling copies on stores.  Directory state is node-
// granular, exactly as in the paper's Figure 1.
//
// The *kernel* (page faults, remapping, the pageout daemon) lives above this
// layer in core::Machine; CoherentMemory only requires that the accessed
// page already be mapped on the requesting node and reads the mapping from
// the node's PageTable.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "fault/plan.hh"
#include "fault/watchdog.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/rac.hh"
#include "net/network.hh"
#include "obs/sink.hh"
#include "prof/profiler.hh"
#include "proto/directory.hh"
#include "proto/refetch.hh"
#include "sim/resource.hh"
#include "vm/home_map.hh"
#include "vm/page_table.hh"

namespace ascoma::proto {

class CoherentMemory {
 public:
  CoherentMemory(const MachineConfig& cfg, const vm::HomeMap& homes);

  /// The machine must register the per-node page tables before any access.
  void set_page_tables(std::span<const vm::PageTable* const> tables);

  /// Install an observability sink (nullptr detaches).  When set, directory
  /// invalidation rounds, 3-hop dirty-owner forwards, and recovery traffic
  /// (injected faults, NACKs, retries, watchdog trips) are emitted as
  /// events.
  void set_sink(obs::EventSink* sink) {
    sink_ = sink;
    net_.set_sink(sink);
  }

  /// Install a latency-attribution profiler (nullptr detaches).  While a
  /// profiler-bracketed demand access is in flight, the timing helpers
  /// attribute every cycle they add to the critical path to its Component;
  /// background (store-buffer) transactions and accesses outside a bracket
  /// record nothing.  Attribution never changes timing.
  void set_profiler(prof::Profiler* p) { prof_ = p; }

  struct Outcome {
    Cycle done{0};          ///< completion cycle of the access
    bool l1_hit = false;     ///< satisfied entirely by the processor's L1
    bool counted_miss = false;  ///< contributes to the miss breakdown
    MissSource source = MissSource::kHome;  ///< valid when counted_miss
    bool remote = false;     ///< a network round trip occurred
    bool data_fetch = false; ///< data moved (vs. ownership-only upgrade)
    bool upgrade = false;    ///< L1-valid ownership upgrade (GETX, no data)
    bool induced_cold = false;  ///< cold miss re-created by a page flush
    bool counted_refetch = false;  ///< directory incremented the counter
    std::uint32_t page_refetch_count = 0;  ///< post-access counter value
    std::uint32_t retries = 0;  ///< request retransmissions after drops
    std::uint32_t nacks = 0;    ///< NACKs received from overloaded homes
  };

  /// Execute one load/store by processor `proc` to byte address `addr` at
  /// `now`.  With one processor per node (the paper's machine), `proc` and
  /// node id coincide.
  ///
  /// `background` models store-buffer drains (blocking_stores = false):
  /// state transitions are identical, but the transaction uses uncontended
  /// path latencies and reserves no foreground resources — approximating
  /// hardware that prioritizes demand loads over buffered stores.
  ASCOMA_HOT_PATH Outcome access(std::uint32_t proc, Addr addr, bool is_store,
                                 Cycle now, bool background = false);

  struct FlushOutcome {
    std::uint32_t l1_valid_lines = 0;  ///< lines flushed across node L1s
    std::uint32_t l1_dirty_lines = 0;
    std::uint32_t blocks_released = 0;  ///< directory copyset entries cleared
  };

  /// Flush every trace of `page` from node `node`'s caches (all processors)
  /// and release its directory presence (the hardware half of a page
  /// remap/eviction).  One batched flush message to the home is charged on
  /// the network when the node held any block and the home is remote.
  FlushOutcome flush_page(NodeId node, VPageId page, Cycle now);

  // --- component access (tests, stats, benches) ----------------------------
  mem::L1Cache& l1(std::uint32_t proc) { return *l1_[proc]; }
  const mem::L1Cache& l1(std::uint32_t proc) const { return *l1_[proc]; }
  mem::Rac& rac(NodeId n) { return *rac_[n]; }
  const mem::Rac& rac(NodeId n) const { return *rac_[n]; }
  mem::Dram& dram(NodeId n) { return *dram_[n]; }
  mem::Bus& bus(NodeId n) { return *bus_[n]; }
  net::Network& network() { return net_; }
  const net::Network& network() const { return net_; }
  Directory& directory() { return dir_; }
  RefetchTable& refetch() { return refetch_; }
  const Directory& directory() const { return dir_; }
  const RefetchTable& refetch() const { return refetch_; }
  fault::FaultPlan& fault_plan() { return plan_; }
  const fault::FaultPlan& fault_plan() const { return plan_; }
  fault::Watchdog& watchdog() { return watchdog_; }
  const fault::Watchdog& watchdog() const { return watchdog_; }

  std::uint64_t writebacks_local() const { return wb_local_; }
  std::uint64_t writebacks_remote() const { return wb_remote_; }
  std::uint64_t sibling_transfers() const { return sibling_transfers_; }
  std::uint64_t net_retries() const { return net_retries_; }
  std::uint64_t nacks_received() const { return nacks_; }

  // --- requester-side state (invariant checker, tests) ----------------------
  bool scoma_block_valid(NodeId n, BlockId b) const {
    return scoma_valid_[n][b] != 0;
  }
  bool block_fetched(NodeId n, BlockId b) const {
    return touched_[n][b] ==
           static_cast<std::uint8_t>(Touch::kFetched);
  }
  const MachineConfig& config() const { return cfg_; }

  /// Distinct remote pages this node has ever accessed (Table 5 census).
  std::uint64_t remote_pages_touched(NodeId n) const {
    return remote_pages_touched_[n];
  }

  NodeId node_of(std::uint32_t proc) const { return NodeId{proc / ppn_}; }

  /// Cross-checks directory state against per-node block state; throws
  /// CheckFailure on violation.  O(blocks * nodes) — test/diagnostic use.
  void audit() const;

  // Checkpoint serialization (defined adjacently in coherent_memory.cc —
  // pairing check).  Covers every mutable hardware table: caches, resources,
  // directory, refetch counters, fault plan, watchdog, requester-side block
  // state, and the functional coherence shadow.  The non-owning sink and
  // profiler pointers are scratch and excluded.
  void encode(store::Encoder& e) const;
  void decode(store::Decoder& d);

 private:
  enum class Touch : std::uint8_t { kNever = 0, kFetched, kInvalidated };

  Touch touch_of(NodeId n, BlockId b) const {
    return static_cast<Touch>(touched_[n][b]);
  }
  void set_touch(NodeId n, BlockId b, Touch t) {
    touched_[n][b] = static_cast<std::uint8_t>(t);
  }

  NodeId home_of_page(VPageId p) const { return homes_.home_of(p); }

  /// Apply an invalidation of `b` at node `s` (state only, no timing):
  /// every processor L1 on the node, the RAC, and the S-COMA valid bit.
  void apply_invalidation(NodeId s, BlockId b);

  /// Invalidate `line` in the L1s of `proc`'s siblings (bus snoop on store).
  void invalidate_sibling_line(std::uint32_t proc, LineId line);

  /// First sibling of `proc` holding `line` valid, or -1.
  int sibling_with_line(std::uint32_t proc, LineId line) const;

  /// Invalidate `block` at each target node (state + timing), starting when
  /// the home has the request at `t_home`.  Returns the cycle at which all
  /// acks have reached the requester.
  Cycle invalidate_targets(NodeMask targets, BlockId block, NodeId home,
                           NodeId requester, Cycle t_home);

  /// Writeback of a dirty victim line evicted by an L1 fill (fire & forget).
  void victim_writeback(std::uint32_t proc, LineId victim_line, Cycle now);

  /// Body of access(); the public wrapper arms the watchdog and folds the
  /// per-transaction retry/NACK counts into the Outcome.
  Outcome access_impl(std::uint32_t proc, Addr addr, bool is_store, Cycle now);

  // Timing steps that honour background mode (no reservations, minimum
  // latencies) for store-buffer drains.
  Cycle use_bus(NodeId n, Cycle t);
  Cycle use_bus_short(NodeId n, Cycle t);
  Cycle use_engine(NodeId n, Cycle t);
  Cycle use_dram(NodeId n, Cycle t, BlockId b);
  Cycle use_net(Cycle t, NodeId src, NodeId dst);

  /// Reliable request from `src` to `dst`'s DSM engine: network-level
  /// retransmission on drops plus NACK/backoff retry while the engine is
  /// overloaded (or the fault plan forces a NACK).  Returns the cycle at
  /// which the engine has accepted the request.
  Cycle request_engine(NodeId src, NodeId dst, BlockId block, Cycle t);

  /// Fail the run if the armed transaction has exceeded the watchdog bound
  /// at `now`; the thrown WatchdogError carries a dump of in-flight
  /// protocol state (directory entry, engine backlogs, input ports).
  void check_watchdog(Cycle now);

  /// Protocol-state dump for watchdog trips and audit diagnostics.
  std::string dump_in_flight_state(Cycle now) const;

  /// Cold failure for an exhausted retry budget (`what` = "request"/"NACK");
  /// builds the message and in-flight dump off the hot retry loops.
  [[noreturn]] void throw_retry_exhausted(const char* what,
                                          const char* dst_label, NodeId src,
                                          NodeId dst, Cycle now) const;

  /// Emit a directory-traffic event for `block` on behalf of `requester`.
  void note_dir_event(obs::EventKind kind, Cycle cycle, NodeId requester,
                      BlockId block, std::uint64_t arg) {
    if (!sink_) return;
    sink_->emit(kind, cycle, requester, cfg_.page_of_block(block),
                block.value(), arg);
  }

  /// Attribute `to - from` critical-path cycles to `c` when recording is on.
  void prof_add(prof::Component c, Cycle from, Cycle to) {
    if (prof_on_ && to > from) prof_->add(c, to - from);
  }
  /// Excess of an ack/grant join over the data path (`kInvalStall`).
  void prof_join(Cycle data_path, Cycle joined) {
    prof_add(prof::Component::kInvalStall, data_path, joined);
  }
  /// Split one delivery into kNetFabric (uncontended share) and kNetQueue.
  void prof_net(Cycle t, Cycle arrival, NodeId src, NodeId dst);

  bool background_ = false;
  obs::EventSink* sink_ = nullptr;
  prof::Profiler* prof_ = nullptr;  // non-owning
  bool prof_on_ = false;  ///< recording armed for the access in flight

  const MachineConfig cfg_;
  const vm::HomeMap& homes_;
  const std::uint32_t ppn_;
  IdVector<NodeId, const vm::PageTable*> page_tables_;

  std::vector<std::unique_ptr<mem::L1Cache>> l1_;   // per processor
  IdVector<NodeId, std::unique_ptr<mem::Rac>> rac_;    // per node
  IdVector<NodeId, std::unique_ptr<mem::Dram>> dram_;  // per node
  IdVector<NodeId, std::unique_ptr<mem::Bus>> bus_;    // per node
  IdVector<NodeId, sim::Resource> engine_;              // per node
  fault::FaultPlan plan_;
  fault::Watchdog watchdog_;
  net::Network net_;
  Directory dir_;
  RefetchTable refetch_;

  // Per-node, per-block requester-side state.
  IdVector<NodeId, IdVector<BlockId, std::uint8_t>> touched_;      // Touch enum
  IdVector<NodeId, IdVector<BlockId, std::uint8_t>> ever_fetched_; // sticky, for stats
  IdVector<NodeId, IdVector<BlockId, std::uint8_t>> scoma_valid_;  // S-COMA valid bits
  IdVector<NodeId, IdVector<PageId, std::uint8_t>> remote_page_seen_;
  IdVector<NodeId, std::uint64_t> remote_pages_touched_;

  std::uint64_t wb_local_ = 0;
  std::uint64_t wb_remote_ = 0;
  std::uint64_t sibling_transfers_ = 0;
  std::uint64_t net_retries_ = 0;  ///< request retransmissions (all procs)
  std::uint64_t nacks_ = 0;        ///< NACKs received (all procs)
  std::uint32_t cur_retries_ = 0;  ///< scratch: retries of the access in flight
  std::uint32_t cur_nacks_ = 0;    ///< scratch: NACKs of the access in flight

  // ---- functional coherence shadow (check_invariants) ----------------------
  // Every committed store bumps the block's global version; every fetch
  // stamps the receiving node with the version it obtained.  Any access
  // satisfied from node-local state must then observe the latest version —
  // a missed invalidation anywhere shows up as a stale hit immediately.
  void shadow_commit_store(NodeId node, BlockId b);
  void shadow_fetch(NodeId node, BlockId b);
  void shadow_check_local(NodeId node, BlockId b, const char* where) const;
  IdVector<BlockId, std::uint32_t> global_version_;
  IdVector<NodeId, IdVector<BlockId, std::uint32_t>> local_version_;
};

}  // namespace ascoma::proto
