#include "proto/refetch.hh"

namespace ascoma::proto {

RefetchTable::RefetchTable(std::uint64_t total_pages, std::uint32_t nodes)
    : pages_(total_pages),
      nodes_(nodes),
      counts_(total_pages * nodes, 0),
      cumulative_(total_pages * nodes, 0) {}

std::uint32_t RefetchTable::increment(VPageId page, NodeId node) {
  ++total_;
  ++cumulative_[idx(page, node)];
  return ++counts_[idx(page, node)];
}

std::uint32_t RefetchTable::count(VPageId page, NodeId node) const {
  return counts_[idx(page, node)];
}

std::uint32_t RefetchTable::cumulative(VPageId page, NodeId node) const {
  return cumulative_[idx(page, node)];
}

void RefetchTable::reset(VPageId page, NodeId node) {
  counts_[idx(page, node)] = 0;
}

std::uint64_t RefetchTable::pairs_at_least(std::uint32_t threshold) const {
  std::uint64_t n = 0;
  for (std::uint32_t c : cumulative_)
    if (c >= threshold) ++n;
  return n;
}

std::uint64_t RefetchTable::pages_at_least(std::uint32_t threshold) const {
  std::uint64_t n = 0;
  for (std::uint64_t p = 0; p < pages_; ++p) {
    for (std::uint32_t nd = 0; nd < nodes_; ++nd) {
      if (cumulative_[p * nodes_ + nd] >= threshold) {
        ++n;
        break;
      }
    }
  }
  return n;
}

}  // namespace ascoma::proto
