#pragma once

// Directory state for the write-invalidate, sequentially-consistent DSM
// protocol.  One entry per 128-byte coherence block; the entry lives at the
// block's home node (Figure 1's "Directory State" storage), but since homes
// never move we store all entries in one flat array indexed by global block.
//
// State encoding: `sharers` is a bitmask of nodes holding a (possibly
// partial) copy; `owner` is the node holding the block exclusive/dirty, or
// kInvalidNode when the home memory is current.  Invariant: owner valid
// implies sharers == {owner}.
//
// Transitions are not coded here: every request is resolved by looking up
// the (DirState, ProtoMsg, ReqRel) row of a TransitionTable and applying its
// action bits mechanically (apply()).  The simulator runs against
// TransitionTable::pristine(); the model checker constructs Directories
// over mutated tables to study known-bad protocols.

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotate.hh"
#include "common/check.hh"
#include "common/types.hh"
#include "proto/transition_table.hh"
#include "store/codec.hh"

namespace ascoma::proto {

/// A set of nodes as a 64-bit mask (the directory's native sharer
/// representation).  Returning invalidation targets this way keeps getx()
/// allocation-free on the proto_access hot path; iteration yields NodeIds
/// in ascending order, matching the old vector's push_back order, so the
/// invalidation sequence — and everything downstream of it — is unchanged.
class NodeMask {
 public:
  constexpr NodeMask() = default;
  constexpr explicit NodeMask(std::uint64_t bits) : bits_(bits) {}

  constexpr bool empty() const { return bits_ == 0; }
  constexpr std::uint32_t size() const {
    return static_cast<std::uint32_t>(std::popcount(bits_));
  }
  constexpr bool contains(NodeId n) const {
    return (bits_ >> n.value()) & 1u;
  }
  constexpr void add(NodeId n) { bits_ |= std::uint64_t{1} << n.value(); }
  constexpr std::uint64_t bits() const { return bits_; }

  /// The i-th member in ascending node order (bounds-checked).
  NodeId operator[](std::uint32_t i) const {
    ASCOMA_CHECK(i < size());
    std::uint64_t b = bits_;
    while (i-- > 0) b &= b - 1;
    return NodeId(static_cast<std::uint32_t>(std::countr_zero(b)));
  }

  /// Ascending-order iteration: `for (NodeId n : mask)`.
  class iterator {
   public:
    constexpr explicit iterator(std::uint64_t bits) : bits_(bits) {}
    NodeId operator*() const {
      return NodeId(static_cast<std::uint32_t>(std::countr_zero(bits_)));
    }
    constexpr iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    constexpr bool operator!=(const iterator& o) const {
      return bits_ != o.bits_;
    }

   private:
    std::uint64_t bits_;
  };
  constexpr iterator begin() const { return iterator{bits_}; }
  constexpr iterator end() const { return iterator{0}; }

  /// Materialize for test assertions (not for simulator paths).
  std::vector<NodeId> to_vector() const {
    std::vector<NodeId> v;
    v.reserve(size());
    for (const NodeId n : *this) v.push_back(n);
    return v;
  }

  friend constexpr bool operator==(NodeMask a, NodeMask b) = default;

 private:
  std::uint64_t bits_ = 0;
};

class Directory {
 public:
  /// `table` selects the protocol (nullptr = TransitionTable::pristine()).
  /// The table must outlive the directory.
  Directory(std::uint64_t total_blocks, std::uint32_t nodes,
            const TransitionTable* table = nullptr);

  struct FetchResult {
    bool was_in_copyset = false;  ///< requester held the block before this
    NodeId dirty_owner = kInvalidNode;  ///< forward target (3-hop) if set
    std::uint32_t actions = act::kNone;  ///< action bits of the applied row
    /// The applied row forwarded the request to a dirty owner.
    bool forward() const { return (actions & act::kForwardOwner) != 0; }
  };

  /// Read request (GETS).  A dirty owner (if any, other than the requester)
  /// is downgraded to sharer and its data considered written back home.
  ASCOMA_HOT_PATH FetchResult gets(BlockId b, NodeId requester);

  struct GetxResult {
    bool was_in_copyset = false;
    NodeId dirty_owner = kInvalidNode;
    std::uint32_t actions = act::kNone;
    /// Sharers (excluding requester and dirty_owner) that must be
    /// invalidated before the requester may write.
    NodeMask invalidate;
    bool forward() const { return (actions & act::kForwardOwner) != 0; }
  };

  /// Write/ownership request (GETX or upgrade).
  ASCOMA_HOT_PATH GetxResult getx(BlockId b, NodeId requester);

  /// Node flushed its copy (page remap/eviction).  Returns true if the node
  /// was the dirty owner (its writeback makes home current again).
  bool flush_node(BlockId b, NodeId node);

  bool in_copyset(BlockId b, NodeId node) const;
  NodeId owner(BlockId b) const { return entries_[b].owner; }
  std::uint64_t sharer_mask(BlockId b) const { return entries_[b].sharers; }
  std::uint32_t sharer_count(BlockId b) const;

  /// Coherence state of `b`'s entry as the transition table views it.
  DirState state_of(BlockId b) const {
    ASCOMA_CHECK(b.value() < entries_.size());
    return state_of(entries_[b]);
  }
  /// `node`'s relation to `b`'s entry as the transition table views it.
  ReqRel rel_of(BlockId b, NodeId node) const {
    ASCOMA_CHECK(b.value() < entries_.size() && node.value() < nodes_);
    return rel_of(entries_[b], node);
  }

  std::uint64_t total_blocks() const { return entries_.size(); }
  std::uint32_t nodes() const { return nodes_; }
  const TransitionTable& table() const { return *table_; }

  std::uint64_t invalidations_sent() const { return invalidations_; }
  std::uint64_t forwards() const { return forwards_; }

  /// Record a NACK issued on behalf of `b`'s entry (the home refused to
  /// queue `requester`'s request — overload or injected fault).  The table's
  /// NACK rows carry no actions: a NACKed request performed no transition.
  void note_nack(BlockId b, NodeId requester);
  std::uint64_t nacks() const { return nacks_; }

  /// Human-readable entry state ("owner=2 sharers={0,2}") for watchdog dumps
  /// and invariant reports.
  std::string describe(BlockId b) const;

  /// Structural invariant check over one entry (throws CheckFailure).
  void check_entry(BlockId b) const;

  // Checkpoint serialization (encode/decode stay adjacent — pairing check).
  void encode(store::Encoder& e) const {
    e.u64(entries_.size());
    for (const Entry& en : entries_) {
      e.u64(en.sharers);
      e.u32(en.owner.value());
    }
    e.u64(invalidations_);
    e.u64(forwards_);
    e.u64(nacks_);
  }
  void decode(store::Decoder& d) {
    if (d.u64() != entries_.size())
      throw store::CodecError("directory geometry mismatch");
    for (Entry& en : entries_) {
      en.sharers = d.u64();
      en.owner = NodeId{d.u32()};
    }
    invalidations_ = d.u64();
    forwards_ = d.u64();
    nacks_ = d.u64();
  }

 private:
  struct Entry {
    std::uint64_t sharers = 0;
    NodeId owner = kInvalidNode;
  };

  static std::uint64_t bit(NodeId n) { return std::uint64_t{1} << n.value(); }

  static DirState state_of(const Entry& e) {
    if (e.owner != kInvalidNode) return DirState::kExclusive;
    return e.sharers == 0 ? DirState::kUncached : DirState::kShared;
  }
  ReqRel rel_of(const Entry& e, NodeId node) const {
    if (e.owner == node) return ReqRel::kOwner;
    return (e.sharers & bit(node)) != 0 ? ReqRel::kSharer : ReqRel::kNone;
  }

  /// Look up the row for (`b`'s state, `msg`, requester relation), apply its
  /// action bits to the entry in declaration order (reads first), fold the
  /// invalidation/forward census, and check the resulting state against the
  /// row's `next` column.  `invalidate` (optional) collects kInvalSharers
  /// targets.  Returns the applied row.
  ASCOMA_HOT_PATH const Transition& apply(BlockId b, ProtoMsg msg,
                                          NodeId requester,
                                          NodeId* dirty_owner,
                                          NodeMask* invalidate);

  std::uint32_t nodes_;
  const TransitionTable* table_;
  IdVector<BlockId, Entry> entries_;
  std::uint64_t invalidations_ = 0;
  std::uint64_t forwards_ = 0;
  std::uint64_t nacks_ = 0;
};

}  // namespace ascoma::proto
