#pragma once

// Directory state for the write-invalidate, sequentially-consistent DSM
// protocol.  One entry per 128-byte coherence block; the entry lives at the
// block's home node (Figure 1's "Directory State" storage), but since homes
// never move we store all entries in one flat array indexed by global block.
//
// State encoding: `sharers` is a bitmask of nodes holding a (possibly
// partial) copy; `owner` is the node holding the block exclusive/dirty, or
// kInvalidNode when the home memory is current.  Invariant: owner valid
// implies sharers == {owner}.

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"

namespace ascoma::proto {

class Directory {
 public:
  Directory(std::uint64_t total_blocks, std::uint32_t nodes);

  struct FetchResult {
    bool was_in_copyset = false;  ///< requester held the block before this
    NodeId dirty_owner = kInvalidNode;  ///< forward target (3-hop) if set
  };

  /// Read request (GETS).  A dirty owner (if any, other than the requester)
  /// is downgraded to sharer and its data considered written back home.
  FetchResult gets(BlockId b, NodeId requester);

  struct GetxResult {
    bool was_in_copyset = false;
    NodeId dirty_owner = kInvalidNode;
    /// Sharers (excluding requester and dirty_owner) that must be
    /// invalidated before the requester may write.
    std::vector<NodeId> invalidate;
  };

  /// Write/ownership request (GETX or upgrade).
  GetxResult getx(BlockId b, NodeId requester);

  /// Node flushed its copy (page remap/eviction).  Returns true if the node
  /// was the dirty owner (its writeback makes home current again).
  bool flush_node(BlockId b, NodeId node);

  bool in_copyset(BlockId b, NodeId node) const;
  NodeId owner(BlockId b) const { return entries_[b].owner; }
  std::uint64_t sharer_mask(BlockId b) const { return entries_[b].sharers; }
  std::uint32_t sharer_count(BlockId b) const;

  std::uint64_t total_blocks() const { return entries_.size(); }
  std::uint32_t nodes() const { return nodes_; }

  std::uint64_t invalidations_sent() const { return invalidations_; }
  std::uint64_t forwards() const { return forwards_; }

  /// Record a NACK issued on behalf of `b`'s entry (the home refused to
  /// queue a request — overload or injected fault).  Directory state is
  /// untouched: a NACKed request performed no transition.
  void note_nack(BlockId b) {
    ASCOMA_CHECK(b < entries_.size());
    ++nacks_;
  }
  std::uint64_t nacks() const { return nacks_; }

  /// Human-readable entry state ("owner=2 sharers={0,2}") for watchdog dumps
  /// and invariant reports.
  std::string describe(BlockId b) const;

  /// Structural invariant check over one entry (throws CheckFailure).
  void check_entry(BlockId b) const;

 private:
  struct Entry {
    std::uint64_t sharers = 0;
    NodeId owner = kInvalidNode;
  };

  static std::uint64_t bit(NodeId n) { return std::uint64_t{1} << n; }

  std::uint32_t nodes_;
  std::vector<Entry> entries_;
  std::uint64_t invalidations_ = 0;
  std::uint64_t forwards_ = 0;
  std::uint64_t nacks_ = 0;
};

}  // namespace ascoma::proto
