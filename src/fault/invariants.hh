#pragma once

// Post-run coherence invariant sweep.
//
// The run-time shadow checker (MachineConfig::check_invariants) catches
// stale *reads* the moment they happen; this module instead sweeps the whole
// machine state — directory entries, per-node L1/RAC/S-COMA residency, page
// tables and page-cache frame accounting — and cross-checks the structures
// against each other.  It exists for the fault-injection work: a bug in the
// retry/NACK paths that silently corrupts metadata (a node left in a copyset
// after a flush, a mapped S-COMA page without a frame, two nodes believing
// they own a block) may never be *read* through during a short run, but a
// sweep finds it immediately.
//
// The checker only reads state, reports instead of throwing, and is
// O(blocks * nodes + pages * nodes) — intended for end-of-run validation and
// tests, not the inner loop.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "proto/coherent_memory.hh"
#include "vm/page_cache.hh"
#include "vm/page_table.hh"

namespace ascoma::fault {

struct InvariantReport {
  std::uint64_t blocks_checked = 0;
  std::uint64_t pages_checked = 0;
  std::uint64_t nodes_checked = 0;
  std::uint64_t total_violations = 0;
  /// First kMaxReported violation descriptions (the count above is exact).
  std::vector<std::string> violations;

  static constexpr std::size_t kMaxReported = 16;

  bool ok() const { return total_violations == 0; }
  std::string to_string() const;
};

/// Sweep every block, page, and node.  `tables` and `caches` are the
/// per-node page tables and S-COMA page caches (both sized to the node
/// count of `cmem`'s config).
InvariantReport check_coherence_invariants(
    const proto::CoherentMemory& cmem,
    std::span<const vm::PageTable* const> tables,
    std::span<const vm::PageCache* const> caches);

}  // namespace ascoma::fault
