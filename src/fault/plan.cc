#include "fault/plan.hh"

#include "common/check.hh"

namespace ascoma::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kJitter: return "jitter";
    case FaultKind::kNack: return "nack";
  }
  return "?";
}

FaultPlan::FaultPlan(const MachineConfig& cfg)
    : seed_(cfg.effective_fault_seed()),
      rng_(cfg.effective_fault_seed()),
      drop_p_(cfg.fault_drop),
      dup_p_(cfg.fault_dup),
      jitter_p_(cfg.fault_jitter),
      jitter_max_(cfg.fault_jitter_cycles) {}

void FaultPlan::add_rule(const TargetRule& r) {
  ASCOMA_CHECK_MSG(r.begin < r.end, "fault rule window is empty");
  rules_.push_back(r);
}

bool FaultPlan::rule_matches(const TargetRule& r, FaultKind kind, Cycle now,
                             NodeId src, NodeId dst) const {
  if (r.kind != kind) return false;
  if (now < r.begin || now >= r.end) return false;
  if (r.src != kInvalidNode && r.src != src) return false;
  if (r.dst != kInvalidNode && r.dst != dst) return false;
  return true;
}

FaultDecision FaultPlan::decide(Cycle now, NodeId src, NodeId dst) {
  ++decisions_;
  FaultDecision d;
  for (const TargetRule& r : rules_) {
    if (rule_matches(r, FaultKind::kDrop, now, src, dst)) d.drop = true;
    if (rule_matches(r, FaultKind::kDuplicate, now, src, dst))
      d.duplicate = true;
    if (rule_matches(r, FaultKind::kJitter, now, src, dst) && d.jitter == Cycle{0})
      d.jitter = jitter_max_ == Cycle{0} ? Cycle{1} : jitter_max_;
  }
  // Probabilistic draws happen unconditionally per enabled knob so the RNG
  // stream consumed by one message never depends on rule outcomes.
  if (drop_p_ > 0.0 && rng_.chance(drop_p_)) d.drop = true;
  if (dup_p_ > 0.0 && rng_.chance(dup_p_)) d.duplicate = true;
  if (jitter_p_ > 0.0 && rng_.chance(jitter_p_) && d.jitter == Cycle{0})
    d.jitter = Cycle{rng_.range(1, jitter_max_.value())};
  // A dropped message never reaches the destination: duplication and jitter
  // are moot (the copy dies in the same fabric).
  if (d.drop) {
    d.duplicate = false;
    d.jitter = Cycle{0};
    ++drops_;
    return d;
  }
  if (d.duplicate) ++duplicates_;
  if (d.jitter > Cycle{0}) ++jitters_;
  return d;
}

bool FaultPlan::nack_forced(Cycle now, NodeId home) const {
  for (const TargetRule& r : rules_)
    if (rule_matches(r, FaultKind::kNack, now, r.src, home)) return true;
  return false;
}

void FaultPlan::reset() {
  rng_ = Rng(seed_);
  decisions_ = drops_ = duplicates_ = jitters_ = 0;
}

}  // namespace ascoma::fault
