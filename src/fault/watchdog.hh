#pragma once

// Forward-progress watchdog.
//
// The simulator's processors are blocking: exactly one memory transaction is
// outstanding per processor, and it is executed to completion inside
// proto::CoherentMemory::access().  Under fault injection that completion is
// no longer guaranteed — a fault storm or a NACK livelock can keep a
// transaction retrying indefinitely.  The watchdog bounds each transaction:
// access() arms it with the transaction's identity and start cycle, retry
// and NACK loops feed it the current simulated cycle, and once the elapsed
// time exceeds the configured bound the run fails with a WatchdogError whose
// message carries a dump of the in-flight transaction plus whatever protocol
// state the tripping layer gathered (directory entry, engine backlogs, port
// queues).  A bound of 0 disables the watchdog entirely.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hh"
#include "store/codec.hh"

namespace ascoma::fault {

/// Thrown when a transaction exceeds the forward-progress bound (or a retry
/// budget backstop fires).  what() contains the full diagnostic dump.
class WatchdogError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Watchdog {
 public:
  Watchdog() = default;
  explicit Watchdog(Cycle bound) : bound_(bound) {}

  bool enabled() const { return bound_ != Cycle{0}; }
  Cycle bound() const { return bound_; }

  /// The transaction currently under the bound.
  struct InFlight {
    bool active = false;
    std::uint32_t proc = 0;
    Addr addr{0};
    bool is_store = false;
    Cycle start{0};
    std::uint32_t retries = 0;  ///< network retransmissions so far
    std::uint32_t nacks = 0;    ///< NACKs received so far
  };

  void arm(std::uint32_t proc, Addr addr, bool is_store, Cycle start) {
    tx_ = InFlight{true, proc, addr, is_store, start, 0, 0};
  }
  void disarm() { tx_.active = false; }

  void note_retry() { ++tx_.retries; }
  void note_nack() { ++tx_.nacks; }

  /// Has the armed transaction been outstanding past the bound at `now`?
  bool expired(Cycle now) const {
    return enabled() && tx_.active && now > tx_.start + bound_;
  }

  const InFlight& in_flight() const { return tx_; }
  std::uint64_t trips() const { return trips_; }

  /// One-line description of the in-flight transaction for dumps.
  std::string describe_in_flight() const;

  /// Record the trip and throw WatchdogError.  `state_dump` is the protocol
  /// state gathered by the tripping layer; it is appended to the in-flight
  /// description.
  [[noreturn]] void trip(Cycle now, const std::string& state_dump);

  // Checkpoint serialization (encode/decode stay adjacent — pairing check).
  void encode(store::Encoder& e) const {
    e.b(tx_.active);
    e.u32(tx_.proc);
    e.u64(tx_.addr.value());
    e.b(tx_.is_store);
    e.u64(tx_.start.value());
    e.u32(tx_.retries);
    e.u32(tx_.nacks);
    e.u64(trips_);
  }
  void decode(store::Decoder& d) {
    tx_.active = d.b();
    tx_.proc = d.u32();
    tx_.addr = Addr{d.u64()};
    tx_.is_store = d.b();
    tx_.start = Cycle{d.u64()};
    tx_.retries = d.u32();
    tx_.nacks = d.u32();
    trips_ = d.u64();
  }

 private:
  Cycle bound_{0};
  InFlight tx_;
  std::uint64_t trips_ = 0;
};

}  // namespace ascoma::fault
