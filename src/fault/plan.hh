#pragma once

// Deterministic fault-injection plan for the interconnect.
//
// A FaultPlan decides, per delivered message, whether the fabric drops it,
// duplicates it, or delays it by random jitter.  Two sources of faults
// compose:
//
//   * seeded probabilities (MachineConfig::fault_drop / fault_dup /
//     fault_jitter), drawn from a dedicated RNG stream derived from the
//     top-level seed — the same seed replays the same fault pattern exactly;
//   * targeted rules — (kind, src, dst, cycle-window) tuples that force a
//     fault deterministically, used by tests and chaos experiments to stall
//     a specific node at a specific time.
//
// The plan is pure decision logic: it owns no timing.  net::Network consults
// it inside try_deliver(); proto::CoherentMemory consults nack_forced() when
// a request reaches a home node.  With no probabilities and no rules the
// plan reports !enabled() and the network takes the exact pre-fault code
// path, keeping zero-fault runs bit-identical.

#include <cstdint>
#include <limits>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "store/codec.hh"

namespace ascoma::fault {

enum class FaultKind : std::uint8_t { kDrop, kDuplicate, kJitter, kNack };

const char* to_string(FaultKind k);

/// Forces `kind` on every message (or home request, for kNack) matching the
/// (src, dst, cycle-window) filter.  kInvalidNode matches any node.
struct TargetRule {
  FaultKind kind = FaultKind::kDrop;
  NodeId src = kInvalidNode;  ///< sending node filter (kNack: ignored)
  NodeId dst = kInvalidNode;  ///< receiving node filter (kNack: the home)
  Cycle begin{0};            ///< window start, inclusive
  Cycle end = kNeverCycle;    ///< window end, exclusive
};

/// What the fabric does to one message.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  Cycle jitter{0};
};

class FaultPlan {
 public:
  /// Disabled plan: decide() never faults, enabled() is false.
  FaultPlan() = default;

  /// Plan seeded and parameterised from the config's fault knobs.
  explicit FaultPlan(const MachineConfig& cfg);

  void add_rule(const TargetRule& r);

  bool enabled() const {
    return drop_p_ > 0.0 || dup_p_ > 0.0 || jitter_p_ > 0.0 ||
           !rules_.empty();
  }

  /// Decide the fate of one message src -> dst injected at `now`.  Draws
  /// from the plan's RNG; calls are deterministic given a deterministic call
  /// order (the simulator is single-threaded per run).
  FaultDecision decide(Cycle now, NodeId src, NodeId dst);

  /// True when a kNack rule matches a request arriving at `home` at `now`.
  bool nack_forced(Cycle now, NodeId home) const;

  // ---- injection census -----------------------------------------------------
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t duplicates() const { return duplicates_; }
  std::uint64_t jitters() const { return jitters_; }
  std::uint64_t injected() const { return drops_ + duplicates_ + jitters_; }
  std::uint64_t seed() const { return seed_; }

  /// Forget counters and rewind the RNG to the seed (rule set is kept).
  void reset();

  // Checkpoint serialization: RNG position + census.  Probabilities and rules
  // come from the config / test setup and must already match; the rule count
  // is written as a drift check (encode/decode adjacent — pairing check).
  void encode(store::Encoder& e) const {
    const Rng::State st = rng_.state();
    for (int i = 0; i < 4; ++i) e.u64(st.s[i]);
    e.u64(rules_.size());
    e.u64(decisions_);
    e.u64(drops_);
    e.u64(duplicates_);
    e.u64(jitters_);
  }
  void decode(store::Decoder& d) {
    Rng::State st{};
    for (int i = 0; i < 4; ++i) st.s[i] = d.u64();
    rng_.set_state(st);
    if (d.u64() != rules_.size())
      throw store::CodecError("fault plan rule count mismatch");
    decisions_ = d.u64();
    drops_ = d.u64();
    duplicates_ = d.u64();
    jitters_ = d.u64();
  }

 private:
  bool rule_matches(const TargetRule& r, FaultKind kind, Cycle now,
                    NodeId src, NodeId dst) const;

  std::uint64_t seed_ = 0;
  Rng rng_;
  double drop_p_ = 0.0;
  double dup_p_ = 0.0;
  double jitter_p_ = 0.0;
  Cycle jitter_max_{0};
  std::vector<TargetRule> rules_;

  std::uint64_t decisions_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t jitters_ = 0;
};

}  // namespace ascoma::fault
