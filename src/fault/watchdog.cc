#include "fault/watchdog.hh"

#include <sstream>

namespace ascoma::fault {

std::string Watchdog::describe_in_flight() const {
  std::ostringstream os;
  if (!tx_.active) {
    os << "no transaction in flight";
    return os.str();
  }
  os << (tx_.is_store ? "store" : "load") << " by proc " << tx_.proc
     << " to addr 0x" << std::hex << tx_.addr << std::dec << ", issued at cycle "
     << tx_.start << ", " << tx_.retries << " retransmission(s), " << tx_.nacks
     << " NACK(s)";
  return os.str();
}

void Watchdog::trip(Cycle now, const std::string& state_dump) {
  ++trips_;
  std::ostringstream os;
  os << "forward-progress watchdog tripped at cycle " << now << " (bound "
     << bound_ << " cycles exceeded)\n  in-flight: " << describe_in_flight();
  if (!state_dump.empty()) os << "\n" << state_dump;
  throw WatchdogError(os.str());
}

}  // namespace ascoma::fault
