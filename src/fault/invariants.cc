#include "fault/invariants.hh"

#include <bit>
#include <sstream>

namespace ascoma::fault {

namespace {

class Reporter {
 public:
  explicit Reporter(InvariantReport& r) : r_(r) {}

  std::ostringstream& next() {
    ++r_.total_violations;
    buf_.str({});
    buf_.clear();
    return buf_;
  }

  void commit() {
    if (r_.violations.size() < InvariantReport::kMaxReported)
      r_.violations.push_back(buf_.str());
  }

 private:
  InvariantReport& r_;
  std::ostringstream buf_;
};

}  // namespace

std::string InvariantReport::to_string() const {
  std::ostringstream os;
  if (ok()) {
    os << "coherence invariants OK (" << blocks_checked << " blocks, "
       << pages_checked << " pages, " << nodes_checked << " nodes)";
    return os.str();
  }
  os << "coherence invariant violations: " << total_violations;
  for (const std::string& v : violations) os << "\n  " << v;
  if (total_violations > violations.size())
    os << "\n  ... (" << total_violations - violations.size() << " more)";
  return os.str();
}

InvariantReport check_coherence_invariants(
    const proto::CoherentMemory& cmem,
    std::span<const vm::PageTable* const> tables,
    std::span<const vm::PageCache* const> caches) {
  const MachineConfig& cfg = cmem.config();
  const proto::Directory& dir = cmem.directory();
  const std::uint64_t blocks = dir.total_blocks();
  const std::uint32_t bpp = cfg.blocks_per_page();
  const std::uint64_t pages = blocks / bpp;

  InvariantReport report;
  report.blocks_checked = blocks;
  report.pages_checked = pages;
  report.nodes_checked = cfg.nodes;
  Reporter out(report);

  // --- directory structure: at most one exclusive claim per block -----------
  for (BlockId b{0}; b.value() < blocks; ++b) {
    const NodeId owner = dir.owner(b);
    const std::uint64_t mask = dir.sharer_mask(b);
    if (cfg.nodes < 64 && (mask >> cfg.nodes) != 0) {
      out.next() << "block " << b << ": sharer bit beyond node count ("
                 << dir.describe(b) << ")";
      out.commit();
    }
    if (owner == kInvalidNode) continue;
    if (owner.value() >= cfg.nodes) {
      out.next() << "block " << b << ": owner " << owner << " out of range";
      out.commit();
    } else if (mask != (std::uint64_t{1} << owner.value())) {
      out.next() << "block " << b
                 << ": exclusive owner must be the sole sharer ("
                 << dir.describe(b) << ")";
      out.commit();
    }
  }

  // --- residency: every locally valid copy must be in the copyset -----------
  const std::uint32_t ppn = cfg.procs_per_node;
  for (NodeId n{0}; n.value() < cfg.nodes; ++n) {
    for (BlockId b{0}; b.value() < blocks; ++b) {
      if (cmem.scoma_block_valid(n, b) && !dir.in_copyset(b, n)) {
        out.next() << "node " << n << " block " << b
                   << ": S-COMA valid bit set but node not in copyset ("
                   << dir.describe(b) << ")";
        out.commit();
      }
      if (cmem.block_fetched(n, b) && !dir.in_copyset(b, n)) {
        out.next() << "node " << n << " block " << b
                   << ": fetched-state block but node not in copyset ("
                   << dir.describe(b) << ")";
        out.commit();
      }
    }
    for (std::uint32_t q = n.value() * ppn; q < (n.value() + 1) * ppn; ++q) {
      for (const LineId line : cmem.l1(q).valid_line_ids()) {
        const BlockId b = cfg.block_of_line(line);
        if (b.value() < blocks && !dir.in_copyset(b, n)) {
          out.next() << "proc " << q << " line " << line << " (block " << b
                     << "): valid L1 line but node " << n
                     << " not in copyset (" << dir.describe(b) << ")";
          out.commit();
        }
      }
    }
    for (const BlockId b : cmem.rac(n).valid_block_ids()) {
      if (b.value() < blocks && !dir.in_copyset(b, n)) {
        out.next() << "node " << n << " block " << b
                   << ": valid RAC entry but node not in copyset ("
                   << dir.describe(b) << ")";
        out.commit();
      }
    }
  }

  // --- VM: mappings, frames, and page-cache accounting -----------------------
  for (NodeId n{0}; n.value() < cfg.nodes && n.value() < tables.size() &&
                    n.value() < caches.size();
       ++n) {
    const vm::PageTable& pt = *tables[n.value()];
    const vm::PageCache& pc = *caches[n.value()];
    for (VPageId p{0}; p.value() < pages; ++p) {
      const PageMode mode = pt.mode(p);
      if (mode == PageMode::kScoma) {
        if (pt.frame(p) == kInvalidFrame) {
          out.next() << "node " << n << " page " << p
                     << ": S-COMA mapping without a frame";
          out.commit();
        }
        if (!pc.is_active(p)) {
          out.next() << "node " << n << " page " << p
                     << ": S-COMA mapping not active in the page cache";
          out.commit();
        }
      } else if (pc.is_active(p)) {
        out.next() << "node " << n << " page " << p
                   << ": active page-cache entry without an S-COMA mapping";
        out.commit();
      }
      if (mode == PageMode::kUnmapped) {
        const BlockId first = cfg.first_block_of_page(p);
        for (std::uint32_t i = 0; i < bpp; ++i) {
          if (dir.in_copyset(first + i, n)) {
            out.next() << "node " << n << " page " << p << " block "
                       << first + i
                       << ": unmapped page still in directory copyset ("
                       << dir.describe(first + i) << ")";
            out.commit();
            break;  // one violation per page is enough signal
          }
        }
      }
    }
    if (pc.free_frames() + pc.active_pages() != pc.capacity()) {
      out.next() << "node " << n << ": page-cache frame leak (capacity "
                 << pc.capacity() << ", free " << pc.free_frames()
                 << ", active " << pc.active_pages() << ")";
      out.commit();
    }
  }

  return report;
}

}  // namespace ascoma::fault
