#pragma once

// obsd — the embedded observability HTTP server.
//
// A deliberately tiny, dependency-free HTTP/1.0-style server: one blocking
// poll() loop on one dedicated thread, bound to 127.0.0.1 only (the plane is
// a local diagnostic tap, not a network service), GET-only, one request per
// connection (`Connection: close`).  Handlers are plain std::functions fed by
// whoever owns the server (core::run_sweep wires /metrics, /progress, /jobs,
// /events); obsd itself knows nothing about simulators, sweeps, or metrics —
// it speaks sockets and routes, which is what keeps it below src/core in the
// dependency order.
//
// Lifecycle: construct, register routes, start(port) (port 0 picks an
// ephemeral port; port() reports the bound one), stop() wakes the loop via a
// self-pipe and joins.  stop() is safe to call at any time, including while
// a request is mid-flight: per-connection reads poll with a short tick and
// re-check the stop flag, so shutdown never hangs on a slow client.
//
// Thread-safety: route()/set_request_hook() must happen before start();
// start()/stop()/port()/running() may be called from any one owner thread.
// Handlers run on the serve thread — they must be internally synchronized
// against whatever state they read (Registry and EventTail are; the status
// board takes its own mutex).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace ascoma::obsd {

/// A parsed request line.  `path` excludes the query string; `query` is the
/// raw text after '?' (empty when absent).
struct Request {
  std::string method;
  std::string path;
  std::string query;
};

struct Response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// First `key=value` for `key` in a raw query string, or `fallback` when the
/// key is absent or its value is not a base-10 number.
std::uint64_t query_u64(const std::string& query, const std::string& key,
                        std::uint64_t fallback);

/// Reason phrase for the handful of statuses obsd emits ("OK", "Not Found",
/// ...); "Unknown" otherwise.
const char* status_text(int status);

class Server {
 public:
  using Handler = std::function<Response(const Request&)>;
  /// Observed after every answered request: (status, body bytes, path).
  /// Runs on the serve thread.
  using RequestHook = std::function<void(int, std::size_t, const std::string&)>;

  Server() = default;
  ~Server() { stop(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register an exact-match route (e.g. "/metrics").
  void route(std::string path, Handler h);
  /// Register a prefix-match route (e.g. "/jobs/"); consulted after exact
  /// routes, longest prefix first.
  void route_prefix(std::string prefix, Handler h);
  void set_request_hook(RequestHook hook) { hook_ = std::move(hook); }

  /// Bind 127.0.0.1:`port` (0 = kernel-chosen ephemeral port), start the
  /// serve thread.  Returns false (and records last_error()) on any socket
  /// failure; no thread is spawned on failure.
  bool start(std::uint16_t port);
  /// The bound port after a successful start() (useful with port 0).
  std::uint16_t port() const { return port_; }
  bool running() const { return serving_; }
  /// Wake the poll loop and join the serve thread.  Idempotent.
  void stop();

  const std::string& last_error() const { return error_; }

 private:
  void serve_loop();
  void handle_connection(int fd);
  bool read_request(int fd, std::string* raw);
  Response dispatch(const Request& req);

  std::vector<std::pair<std::string, Handler>> exact_;
  std::vector<std::pair<std::string, Handler>> prefix_;
  RequestHook hook_;

  // Cross-thread plane (lint_concurrency): everything below except
  // stop_requested_ is owner-thread state — written by start()/stop() on
  // the owning thread, published to the serve thread by the std::thread
  // constructor and reclaimed by join(), both full happens-before edges —
  // so none of it needs a mutex or GUARDED_BY.  The routes/hook are frozen
  // before start() per the lifecycle contract above.
  int listen_fd_ = -1;
  int wake_rd_ = -1;   // self-pipe read end (poll target)
  int wake_wr_ = -1;   // self-pipe write end (stop() writes one byte)
  std::uint16_t port_ = 0;
  std::thread thread_;
  bool serving_ = false;
  // The one truly concurrent member: stop() publishes true with a release
  // store, the serve thread polls it with acquire loads (see server.cc).
  std::atomic<bool> stop_requested_{false};
  std::string error_;
};

}  // namespace ascoma::obsd
