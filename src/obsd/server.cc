#include "obsd/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

namespace ascoma::obsd {

namespace {

// Per-connection budget: a client that dribbles its request line slower than
// this is cut off so the single serve thread can never be parked forever.
constexpr int kReadTickMs = 50;
constexpr int kReadBudgetMs = 2000;
constexpr std::size_t kMaxRequestBytes = 8192;

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

bool set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  return flags >= 0 && ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

/// Write all of `data`, tolerating short writes and EINTR.
void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; nothing useful to do
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint64_t query_u64(const std::string& query, const std::string& key,
                        std::uint64_t fallback) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < end &&
        query.compare(pos, eq - pos, key) == 0) {
      const std::string value = query.substr(eq + 1, end - eq - 1);
      if (!value.empty() &&
          value.find_first_not_of("0123456789") == std::string::npos &&
          value.size() <= 19) {
        return std::stoull(value);
      }
      return fallback;
    }
    pos = end + 1;
  }
  return fallback;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

void Server::route(std::string path, Handler h) {
  exact_.emplace_back(std::move(path), std::move(h));
}

void Server::route_prefix(std::string prefix, Handler h) {
  prefix_.emplace_back(std::move(prefix), std::move(h));
  std::stable_sort(prefix_.begin(), prefix_.end(),
                   [](const auto& x, const auto& y) {
                     return x.first.size() > y.first.size();
                   });
}

bool Server::start(std::uint16_t port) {
  if (serving_) {
    error_ = "already serving";
    return false;
  }
  error_.clear();
  // order: relaxed — reset happens before the serve thread is spawned, and
  // the std::thread constructor itself is the happens-before edge that
  // publishes it (along with listen_fd_/wake_rd_) to the new thread.
  stop_requested_.store(false, std::memory_order_relaxed);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  set_cloexec(listen_fd_);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only, by design
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    error_ = std::string("bind 127.0.0.1: ") + std::strerror(errno);
    close_quiet(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    close_quiet(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    error_ = std::string("getsockname: ") + std::strerror(errno);
    close_quiet(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = ntohs(bound.sin_port);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    error_ = std::string("pipe: ") + std::strerror(errno);
    close_quiet(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  set_cloexec(wake_rd_);
  set_cloexec(wake_wr_);

  serving_ = true;
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void Server::stop() {
  if (!serving_) return;
  // order: release — the stop()→worker handshake.  Pairs with the acquire
  // loads in serve_loop()/read_request(): once the worker observes true,
  // everything the stopping thread wrote beforehand is visible to it.  The
  // self-pipe write below is only the wake-up kick for a parked poll(), not
  // the ordering edge — with a relaxed store, shutdown would only be
  // correct by the accident of the syscall acting as a barrier.
  stop_requested_.store(true, std::memory_order_release);
  const char byte = 'x';
  // A full pipe already guarantees a pending wake-up; ignore the result.
  [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &byte, 1);
  thread_.join();
  close_quiet(listen_fd_);
  close_quiet(wake_rd_);
  close_quiet(wake_wr_);
  listen_fd_ = wake_rd_ = wake_wr_ = -1;
  serving_ = false;
}

void Server::serve_loop() {
  pollfd fds[2];
  fds[0].fd = listen_fd_;
  fds[0].events = POLLIN;
  fds[1].fd = wake_rd_;
  fds[1].events = POLLIN;
  // order: acquire — pairs with the release store in stop(); see there.
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds[0].revents = fds[1].revents = 0;
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;  // poll is broken; bail rather than spin
    }
    if (fds[1].revents != 0) return;  // stop() woke us
    if ((fds[0].revents & POLLIN) != 0) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn >= 0) {
        set_cloexec(conn);
        handle_connection(conn);
        close_quiet(conn);
      }
    }
  }
}

bool Server::read_request(int fd, std::string* raw) {
  char buf[1024];
  int waited_ms = 0;
  while (raw->find("\r\n\r\n") == std::string::npos &&
         raw->find("\n\n") == std::string::npos) {
    // order: acquire — pairs with the release store in stop(); a stop
    // mid-request must abandon the read within one poll tick (bounded
    // shutdown latency, pinned by ObsdServer.StopMidRequest* tests).
    if (stop_requested_.load(std::memory_order_acquire)) return false;
    if (waited_ms >= kReadBudgetMs || raw->size() > kMaxRequestBytes) {
      return false;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kReadTickMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) {
      waited_ms += kReadTickMs;
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // client closed before finishing the request
    }
    raw->append(buf, static_cast<std::size_t>(n));
  }
  return true;
}

Response Server::dispatch(const Request& req) {
  for (const auto& [path, handler] : exact_) {
    if (req.path == path) return handler(req);
  }
  for (const auto& [prefix, handler] : prefix_) {
    if (req.path.size() > prefix.size() &&
        req.path.compare(0, prefix.size(), prefix) == 0) {
      return handler(req);
    }
  }
  return Response{404, "text/plain; charset=utf-8",
                  "not found: " + req.path + "\n"};
}

void Server::handle_connection(int fd) {
  std::string raw;
  if (!read_request(fd, &raw)) return;

  // Request line: METHOD SP PATH[?QUERY] SP VERSION.
  const std::size_t eol = raw.find_first_of("\r\n");
  std::istringstream line(raw.substr(0, eol));
  std::string method, target;
  line >> method >> target;

  Request req;
  req.method = method;
  const std::size_t q = target.find('?');
  req.path = target.substr(0, q);
  if (q != std::string::npos) req.query = target.substr(q + 1);

  Response resp;
  std::string extra_headers;
  if (method.empty() || target.empty()) {
    resp = Response{400, "text/plain; charset=utf-8", "malformed request\n"};
  } else if (method != "GET") {
    resp = Response{405, "text/plain; charset=utf-8",
                    "method not allowed: " + method + "\n"};
    extra_headers = "Allow: GET\r\n";
  } else {
    resp = dispatch(req);
  }

  std::ostringstream out;
  out << "HTTP/1.0 " << resp.status << ' ' << status_text(resp.status)
      << "\r\nContent-Type: " << resp.content_type
      << "\r\nContent-Length: " << resp.body.size() << "\r\n"
      << extra_headers << "Connection: close\r\n\r\n"
      << resp.body;
  write_all(fd, out.str());
  ::shutdown(fd, SHUT_WR);

  if (hook_) hook_(resp.status, resp.body.size(), req.path);
}

}  // namespace ascoma::obsd
