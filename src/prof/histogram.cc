#include "prof/histogram.hh"

namespace ascoma::prof {

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

std::uint64_t LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p > 1.0) p = 1.0;
  if (p <= 0.0) p = 1e-9;
  // Rank as ceil(p * count), at least 1, at most count.
  const double scaled = p * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(scaled);
  if (static_cast<double>(rank) < scaled) ++rank;
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const std::uint64_t ub = bucket_upper_bound(i);
      return ub < max_ ? ub : max_;
    }
  }
  return max_;  // unreachable when count_ > 0
}

}  // namespace ascoma::prof
