#pragma once

// Profile comparison: parse two latency.csv dumps produced by
// Profiler::write_profile() and flag latency regressions.  Used by
// tools/ascoma_prof_diff (CI gates on its exit status) and unit tests.
//
// Rows are joined on (class, component).  A row regresses when its p99 or
// its mean (sum/count) grew by more than the configured relative tolerance
// AND by at least `min_cycles` absolute — the absolute floor keeps tiny
// histograms (a 2-cycle p99 becoming 3) from tripping a percentage gate.
// Rows with fewer than `min_count` samples on either side are skipped as
// statistically meaningless.  Rows present only in the candidate are
// reported as informational (new traffic class), never as regressions.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ascoma::prof {

struct DiffOptions {
  double p99_tol = 0.10;         ///< relative p99 growth that fails the gate
  double mean_tol = 0.10;        ///< relative mean growth that fails the gate
  std::uint64_t min_cycles = 16; ///< absolute growth floor (cycles)
  std::uint64_t min_count = 100; ///< minimum samples per side to compare
};

/// One parsed latency.csv row.
struct LatencyRow {
  std::string cls;
  std::string component;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t max = 0;

  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
};

struct DiffFinding {
  enum class Kind : std::uint8_t {
    kP99Regression,
    kMeanRegression,
    kRowVanished,   ///< informational: row in baseline only
    kRowAppeared,   ///< informational: row in candidate only
  };
  Kind kind;
  std::string cls;
  std::string component;
  std::uint64_t base_value = 0;  ///< baseline p99 / rounded mean
  std::uint64_t cand_value = 0;  ///< candidate p99 / rounded mean
  double ratio = 0.0;            ///< cand / base

  bool is_regression() const {
    return kind == Kind::kP99Regression || kind == Kind::kMeanRegression;
  }
};

struct DiffReport {
  std::vector<DiffFinding> findings;
  std::size_t rows_compared = 0;
  std::string error;  ///< non-empty when a dump could not be parsed

  bool ok() const { return error.empty(); }
  std::size_t regressions() const;
};

/// Parse the latency.csv text of one dump.  Returns false (and sets `error`)
/// on a malformed header or row.
bool parse_latency_csv(const std::string& text, std::vector<LatencyRow>& rows,
                       std::string& error);

/// Load `<dir>/latency.csv` for both dumps and compare.
DiffReport diff_profiles(const std::string& baseline_dir,
                         const std::string& candidate_dir,
                         const DiffOptions& opts = {});

/// Compare already-parsed rows (unit-test entry point).
DiffReport diff_rows(const std::vector<LatencyRow>& baseline,
                     const std::vector<LatencyRow>& candidate,
                     const DiffOptions& opts = {});

/// Human-readable report; one line per finding plus a verdict line.
void write_report(std::ostream& os, const DiffReport& report,
                  const DiffOptions& opts);

}  // namespace ascoma::prof
