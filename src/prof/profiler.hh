#pragma once

// Latency-attribution profiler and per-page heat profiler (layered on
// src/obs).
//
// The paper's argument is about *where* memory-access cycles go: CC-NUMA
// pays remote stalls, S-COMA pays page-fault/remap overhead, and AS-COMA's
// threshold back-off shifts the balance between them.  The Profiler makes
// that visible for one run:
//
//   * Latency attribution — core::Machine and proto::CoherentMemory bracket
//     every blocking demand access with begin_access()/end_access() and
//     attribute each cycle of it to one Component (L1, bus, RAC, DSM engine,
//     directory, DRAM, network fabric, port queueing, retry/NACK backoff,
//     invalidation stall, VM fault, kernel remap machinery) as the
//     transaction's critical path advances.  Per access class the profiler
//     keeps a log2-bucketed histogram of end-to-end latency plus one
//     histogram per component segment.  By construction the recorded
//     segments of an access sum exactly to its end-to-end latency;
//     attribution_mismatches() counts any access for which they do not
//     (always 0 unless an instrumentation site is missed).
//
//   * Per-page heat — the profiler implements obs::EventObserver and, when
//     registered on the run's EventSink, folds the event stream into
//     per-page counters (faults, allocation modes, upgrades, evictions,
//     suppressed remaps) and per-node back-off trajectories (threshold
//     raises/drops, daemon runs).  Refetch and remote-fetch counts per page
//     come from end_access().  Exact even when the sink's ring buffer
//     overflows, because observers run on every emit.
//
// Attach via MachineConfig::profiler (non-owning, like MachineConfig::sink).
// A profiler never changes simulated behaviour — runs with and without one
// are bit-identical.  Not thread-safe: do not share across concurrent
// simulate() calls.
//
// write_profile(dir) dumps the whole profile as machine-readable artifacts
// (latency.csv/json, heat.csv/json, summary.json); tools/ascoma_prof_diff
// compares two such dumps and flags latency/percentile regressions.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/sink.hh"
#include "prof/histogram.hh"

namespace ascoma::prof {

/// Where a cycle of a demand access was spent.
enum class Component : std::uint8_t {
  kL1,          ///< L1 hit/fill time
  kBus,         ///< node-bus transactions on the requester's critical path
  kRac,         ///< RAC data-array access
  kEngine,      ///< DSM-engine occupancy and queueing (requester + home)
  kDirectory,   ///< home directory state lookup
  kDram,        ///< DRAM bank access (home, owner, or page-cache frame)
  kNetFabric,   ///< uncontended network traversal (NI + switches + wires)
  kNetQueue,    ///< input-port contention and injected jitter
  kBackoff,     ///< retry timeouts and NACK exponential-backoff waits
  kInvalStall,  ///< waiting for invalidation acks beyond the data return
  kVmFault,     ///< kernel page-fault base cost (K-BASE share of the access)
  kVmKernel,    ///< kernel remap/eviction/daemon overhead on the access path
};
inline constexpr int kNumComponents = 12;

/// Paper-aligned classification of a demand access.
enum class AccessClass : std::uint8_t {
  kL1Hit,           ///< satisfied entirely by the processor's L1
  kLocalHome,       ///< local home DRAM (incl. sibling supply of home pages)
  kScomaHit,        ///< S-COMA page-cache replica supplied locally
  kRacHit,          ///< remote access cache hit
  kOwnership,       ///< ownership-only upgrade (data already in the L1)
  kRemoteCold,      ///< remote CC-NUMA fetch, first touch of the block
  kRemoteCoherence, ///< remote fetch or GETX forced by write sharing
  kRemoteRefetch,   ///< remote conflict/capacity refetch (the paper's CONF/CAPC)
  kUpgradeRefetch,  ///< refetch that crossed the threshold and triggered a
                    ///< relocation attempt (kernel remap rides on the access)
};
inline constexpr int kNumAccessClasses = 9;

const char* to_string(Component c);
const char* to_string(AccessClass c);

/// Per-page activity census (the heat-map row).
struct PageHeat {
  VPageId page = kInvalidPage;
  std::uint64_t accesses = 0;        ///< profiled demand accesses to the page
  std::uint64_t faults = 0;          ///< first-touch mapping faults
  std::uint64_t scoma_allocs = 0;
  std::uint64_t numa_allocs = 0;
  std::uint64_t upgrades = 0;        ///< CC-NUMA -> S-COMA remaps
  std::uint64_t downgrades = 0;      ///< S-COMA evictions
  std::uint64_t suppressed = 0;      ///< relocation interrupts backed off
  std::uint64_t refetches = 0;       ///< directory-counted conflict refetches
  std::uint64_t remote_fetches = 0;  ///< accesses needing a network round trip
  /// Distinct pageout-daemon back-off epochs (node threshold raises) during
  /// which this page was evicted — pages churned across escalations.
  std::uint64_t backoff_epochs = 0;

  bool any() const {
    return accesses || faults || upgrades || downgrades || suppressed;
  }
};

/// Machine-wide protocol/robustness census folded from the event stream.
/// Every obs::EventKind has a fold: page-subject events land in PageHeat /
/// NodeHeat, the rest land here (tools/lint_protocol.py statically verifies
/// the switch in profiler.cc stays exhaustive).  Not part of the CSV/JSON
/// dump schemas — exposed via Profiler::protocol_counters() for tests and
/// future exporters.
struct ProtocolCounters {
  std::uint64_t reloc_interrupts = 0;   ///< kRelocInterrupt deliveries
  std::uint64_t dir_invalidations = 0;  ///< kDirInvalidation episodes
  std::uint64_t inval_targets = 0;      ///< sharers invalidated across them
  std::uint64_t dir_forwards = 0;       ///< kDirForward 3-hop forwards
  std::uint64_t barrier_releases = 0;   ///< kBarrierRelease episodes
  std::uint64_t faults_injected = 0;    ///< kFaultInjected plan hits
  std::uint64_t nacks = 0;              ///< kNack refusals observed
  std::uint64_t retries = 0;            ///< kRetry retransmissions observed
  std::uint64_t watchdog_trips = 0;     ///< kWatchdogTrip aborts (0 or 1)
  std::uint64_t sweep_stragglers = 0;   ///< kSweepStraggler flags observed
  std::uint64_t sweep_cache_hits = 0;   ///< kSweepCacheHit store hits observed
  std::uint64_t serve_requests = 0;     ///< kServeRequest obsd hits observed
  std::uint64_t serve_errors = 0;       ///< kServeError obsd 4xx/5xx observed
};

/// Per-node policy trajectory (back-off epochs).
struct NodeHeat {
  std::uint64_t threshold_raises = 0;
  std::uint64_t threshold_drops = 0;
  std::uint64_t daemon_runs = 0;
  std::uint64_t daemon_failures = 0;  ///< runs that missed free_target
  std::uint64_t suppressed = 0;
  std::uint64_t last_threshold = 0;   ///< threshold after the last move
};

class Profiler final : public obs::EventObserver {
 public:
  Profiler();

  // ---- run metadata (stamped into the profile dump) ------------------------
  void set_meta(std::string workload, std::string arch, double pressure,
                std::uint64_t seed);
  void set_run_cycles(Cycle cycles) { run_cycles_ = cycles; }

  // ---- latency attribution (producers: core::Machine, proto) ---------------
  void begin_access(Cycle now);
  /// Attribute `cycles` of the in-flight access to `c`; no-op outside an
  /// access so stray producer calls can never corrupt the next record.
  void add(Component c, Cycle cycles) {
    if (in_access_) scratch_[static_cast<int>(c)] += cycles;
  }
  /// Commit the in-flight access: `end_to_end` is the measured latency (the
  /// processor's stall); `remote` marks a network round trip; `refetch`
  /// marks a directory-counted conflict refetch.
  void end_access(AccessClass cls, VPageId page, Cycle end_to_end,
                  bool remote, bool refetch);
  void cancel_access() { in_access_ = false; }
  bool in_access() const { return in_access_; }

  // ---- heat-map event intake (obs::EventObserver) --------------------------
  void on_event(const obs::Event& e) override;

  // ---- results -------------------------------------------------------------
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t attribution_mismatches() const { return mismatches_; }
  const LatencyHistogram& end_to_end(AccessClass cls) const {
    return end_to_end_[static_cast<int>(cls)];
  }
  const LatencyHistogram& segment(AccessClass cls, Component c) const {
    return segments_[static_cast<int>(cls)][static_cast<int>(c)];
  }
  /// End-to-end histogram over every profiled access (all classes merged).
  LatencyHistogram merged_end_to_end() const;
  /// Total cycles attributed to `c` across all classes.
  std::uint64_t component_cycles(Component c) const;

  /// Heat rows for pages with any recorded activity, ascending page id.
  std::vector<PageHeat> page_heat() const;
  const std::vector<NodeHeat>& node_heat() const { return nodes_; }
  const ProtocolCounters& protocol_counters() const { return proto_; }

  // ---- export --------------------------------------------------------------
  void write_latency_csv(std::ostream& os) const;
  void write_heat_csv(std::ostream& os) const;
  void write_latency_json(std::ostream& os) const;
  void write_heat_json(std::ostream& os) const;
  void write_summary_json(std::ostream& os) const;

  /// Header line of latency.csv / heat.csv (shared with diff and tests).
  static std::string latency_csv_header();
  static std::string heat_csv_header();

  /// Write the whole profile into `dir` (created if missing): latency.csv,
  /// latency.json, heat.csv, heat.json, summary.json.  Returns false on any
  /// I/O failure.
  bool write_profile(const std::string& dir) const;

 private:
  PageHeat& page(VPageId p);

  // Scratch of the in-flight access.
  std::array<Cycle, kNumComponents> scratch_{};
  bool in_access_ = false;

  std::array<LatencyHistogram, kNumAccessClasses> end_to_end_;
  std::array<std::array<LatencyHistogram, kNumComponents>, kNumAccessClasses>
      segments_;
  std::uint64_t accesses_ = 0;
  std::uint64_t mismatches_ = 0;

  std::vector<PageHeat> pages_;          // dense, indexed by page id
  /// Per page: (node, raise-count) key of the back-off epoch in which the
  /// page was last evicted; sentinel ~0ull = never.
  std::vector<std::uint64_t> page_last_epoch_;
  std::vector<NodeHeat> nodes_;
  ProtocolCounters proto_;

  std::string workload_;
  std::string arch_;
  double pressure_ = 0.0;
  std::uint64_t seed_ = 0;
  Cycle run_cycles_{0};
};

}  // namespace ascoma::prof
