#pragma once

// Log2-bucketed latency histogram — the storage unit of the latency
// attribution profiler (src/prof/profiler.hh).
//
// Bucket i holds values whose bit width is i: bucket 0 is exactly {0},
// bucket 1 is {1}, bucket 2 is [2,3], bucket 3 is [4,7], ..., bucket 64 is
// [2^63, 2^64-1].  Every std::uint64_t value lands in exactly one bucket, so
// there is no separate overflow bucket to mishandle.  Alongside the buckets
// the histogram keeps exact count/sum/min/max, so means and extrema are
// precise while percentiles are bucket-resolution upper bounds — good enough
// to rank p50/p90/p99 shifts, cheap enough to keep one histogram per
// (access class x latency component).

#include <array>
#include <bit>
#include <cstdint>

#include "common/types.hh"

namespace ascoma::prof {

class LatencyHistogram {
 public:
  /// One bucket per possible bit width of a uint64 value (0..64).
  static constexpr int kNumBuckets = 65;

  void record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Smallest bucket upper bound below which at least ceil(p * count)
  /// recorded values fall, clamped to the exact observed max (so
  /// percentile(1.0) == max()).  Returns 0 on an empty histogram.
  /// `p` is clamped to (0, 1].
  std::uint64_t percentile(double p) const;

  std::uint64_t p50() const { return percentile(0.50); }
  std::uint64_t p90() const { return percentile(0.90); }
  std::uint64_t p99() const { return percentile(0.99); }

  std::uint64_t bucket_count(int i) const { return buckets_[i]; }

  /// Bucket index of `v` (its bit width): 0 for 0, 64 for values >= 2^63.
  /// constexpr so other bucketed consumers (the obs metrics registry) share
  /// these exact bucket boundaries without a link dependency on prof.
  static constexpr int bucket_of(std::uint64_t v) {
    return static_cast<int>(std::bit_width(v));  // 0 -> 0, [2^(i-1), 2^i) -> i
  }
  /// Largest value bucket `i` can hold (2^i - 1; bucket 0 -> 0).
  static constexpr std::uint64_t bucket_upper_bound(int i) {
    if (i <= 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace ascoma::prof
