#include "prof/profiler.hh"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <utility>

#include "obs/export.hh"

namespace ascoma::prof {

namespace {

constexpr std::uint64_t kNeverEpoch = ~std::uint64_t{0};

/// (node, raise-count) key identifying one node's current back-off epoch.
std::uint64_t epoch_key(NodeId node, std::uint64_t raises) {
  return (static_cast<std::uint64_t>(node.value()) << 32) ^ raises;
}

void json_hist(std::ostream& os, const LatencyHistogram& h) {
  os << "{\"count\":" << h.count() << ",\"sum\":" << h.sum()
     << ",\"min\":" << h.min() << ",\"p50\":" << h.p50()
     << ",\"p90\":" << h.p90() << ",\"p99\":" << h.p99()
     << ",\"max\":" << h.max() << '}';
}

void csv_hist(std::ostream& os, const char* cls, const char* component,
              const LatencyHistogram& h) {
  os << obs::csv_field(cls) << ',' << obs::csv_field(component) << ','
     << h.count() << ',' << h.sum() << ',' << h.min() << ',' << h.p50() << ','
     << h.p90() << ',' << h.p99() << ',' << h.max() << '\n';
}

}  // namespace

const char* to_string(Component c) {
  switch (c) {
    case Component::kL1: return "l1";
    case Component::kBus: return "bus";
    case Component::kRac: return "rac";
    case Component::kEngine: return "engine";
    case Component::kDirectory: return "directory";
    case Component::kDram: return "dram";
    case Component::kNetFabric: return "net_fabric";
    case Component::kNetQueue: return "net_queue";
    case Component::kBackoff: return "backoff";
    case Component::kInvalStall: return "inval_stall";
    case Component::kVmFault: return "vm_fault";
    case Component::kVmKernel: return "vm_kernel";
  }
  return "?";
}

const char* to_string(AccessClass c) {
  switch (c) {
    case AccessClass::kL1Hit: return "l1_hit";
    case AccessClass::kLocalHome: return "local_home";
    case AccessClass::kScomaHit: return "scoma_hit";
    case AccessClass::kRacHit: return "rac_hit";
    case AccessClass::kOwnership: return "ownership";
    case AccessClass::kRemoteCold: return "remote_cold";
    case AccessClass::kRemoteCoherence: return "remote_coherence";
    case AccessClass::kRemoteRefetch: return "remote_refetch";
    case AccessClass::kUpgradeRefetch: return "upgrade_refetch";
  }
  return "?";
}

Profiler::Profiler() = default;

void Profiler::set_meta(std::string workload, std::string arch,
                        double pressure, std::uint64_t seed) {
  workload_ = std::move(workload);
  arch_ = std::move(arch);
  pressure_ = pressure;
  seed_ = seed;
}

void Profiler::begin_access(Cycle) {
  scratch_.fill(Cycle{0});
  in_access_ = true;
}

void Profiler::end_access(AccessClass cls, VPageId p, Cycle end_to_end,
                          bool remote, bool refetch) {
  if (!in_access_) return;
  in_access_ = false;
  ++accesses_;

  Cycle attributed{0};
  const int ci = static_cast<int>(cls);
  for (int c = 0; c < kNumComponents; ++c) {
    attributed += scratch_[c];
    if (scratch_[c] > Cycle{0}) segments_[ci][c].record(scratch_[c].value());
  }
  if (attributed != end_to_end) ++mismatches_;
  end_to_end_[ci].record(end_to_end.value());

  if (p != kInvalidPage) {
    PageHeat& h = page(p);
    ++h.accesses;
    if (remote) ++h.remote_fetches;
    if (refetch) ++h.refetches;
  }
}

PageHeat& Profiler::page(VPageId p) {
  const std::size_t idx = p.value();
  if (idx >= pages_.size()) {
    pages_.resize(idx + 1);
    page_last_epoch_.resize(idx + 1, kNeverEpoch);
  }
  PageHeat& h = pages_[idx];
  h.page = p;
  return h;
}

void Profiler::on_event(const obs::Event& e) {
  if (e.node.value() >= nodes_.size()) nodes_.resize(e.node.value() + 1);
  NodeHeat& n = nodes_[e.node.value()];
  switch (e.kind) {
    case obs::EventKind::kPageFault:
      ++page(e.page).faults;
      break;
    case obs::EventKind::kScomaAlloc:
      ++page(e.page).scoma_allocs;
      break;
    case obs::EventKind::kNumaAlloc:
      ++page(e.page).numa_allocs;
      break;
    case obs::EventKind::kUpgrade:
      ++page(e.page).upgrades;
      break;
    case obs::EventKind::kDowngrade: {
      PageHeat& h = page(e.page);
      ++h.downgrades;
      const std::uint64_t key = epoch_key(e.node, n.threshold_raises);
      if (page_last_epoch_[e.page.value()] != key) {
        page_last_epoch_[e.page.value()] = key;
        ++h.backoff_epochs;
      }
      break;
    }
    case obs::EventKind::kRemapSuppressed:
      ++page(e.page).suppressed;
      ++n.suppressed;
      break;
    case obs::EventKind::kThresholdRaise:
      ++n.threshold_raises;
      n.last_threshold = e.a;
      break;
    case obs::EventKind::kThresholdDrop:
      ++n.threshold_drops;
      n.last_threshold = e.a;
      break;
    case obs::EventKind::kDaemonRun:
      ++n.daemon_runs;
      if (e.c == 0) ++n.daemon_failures;
      break;
    case obs::EventKind::kRelocInterrupt:
      ++proto_.reloc_interrupts;
      break;
    case obs::EventKind::kDirInvalidation:
      ++proto_.dir_invalidations;
      proto_.inval_targets += e.b;
      break;
    case obs::EventKind::kDirForward:
      ++proto_.dir_forwards;
      break;
    case obs::EventKind::kBarrierRelease:
      ++proto_.barrier_releases;
      break;
    case obs::EventKind::kFaultInjected:
      ++proto_.faults_injected;
      break;
    case obs::EventKind::kNack:
      ++proto_.nacks;
      break;
    case obs::EventKind::kRetry:
      ++proto_.retries;
      break;
    case obs::EventKind::kWatchdogTrip:
      ++proto_.watchdog_trips;
      break;
    case obs::EventKind::kSweepStraggler:
      ++proto_.sweep_stragglers;
      break;
    case obs::EventKind::kSweepCacheHit:
      ++proto_.sweep_cache_hits;
      break;
    case obs::EventKind::kServeRequest:
      ++proto_.serve_requests;
      break;
    case obs::EventKind::kServeError:
      ++proto_.serve_errors;
      break;
  }
  // No default: -Wswitch (promoted by ASCOMA_WERROR) forces a fold for every
  // new EventKind; tools/lint_protocol.py checks the same property statically.
}

LatencyHistogram Profiler::merged_end_to_end() const {
  LatencyHistogram all;
  for (const auto& h : end_to_end_) all.merge(h);
  return all;
}

std::uint64_t Profiler::component_cycles(Component c) const {
  std::uint64_t total = 0;
  for (int cls = 0; cls < kNumAccessClasses; ++cls)
    total += segments_[cls][static_cast<int>(c)].sum();
  return total;
}

std::vector<PageHeat> Profiler::page_heat() const {
  std::vector<PageHeat> out;
  for (const PageHeat& h : pages_)
    if (h.any()) out.push_back(h);
  return out;
}

// ---- export ----------------------------------------------------------------

std::string Profiler::latency_csv_header() {
  return "class,component,count,sum,min,p50,p90,p99,max";
}

std::string Profiler::heat_csv_header() {
  return "page,accesses,faults,scoma_allocs,numa_allocs,upgrades,downgrades,"
         "suppressed,refetches,remote_fetches,backoff_epochs";
}

void Profiler::write_latency_csv(std::ostream& os) const {
  os << latency_csv_header() << '\n';
  csv_hist(os, "all", "total", merged_end_to_end());
  for (int cls = 0; cls < kNumAccessClasses; ++cls) {
    const auto ac = static_cast<AccessClass>(cls);
    if (end_to_end_[cls].count() == 0) continue;
    csv_hist(os, to_string(ac), "total", end_to_end_[cls]);
    for (int c = 0; c < kNumComponents; ++c) {
      const auto& h = segments_[cls][c];
      if (h.count() == 0) continue;
      csv_hist(os, to_string(ac), to_string(static_cast<Component>(c)), h);
    }
  }
}

void Profiler::write_heat_csv(std::ostream& os) const {
  os << heat_csv_header() << '\n';
  for (const PageHeat& h : page_heat()) {
    os << h.page << ',' << h.accesses << ',' << h.faults << ','
       << h.scoma_allocs << ',' << h.numa_allocs << ',' << h.upgrades << ','
       << h.downgrades << ',' << h.suppressed << ',' << h.refetches << ','
       << h.remote_fetches << ',' << h.backoff_epochs << '\n';
  }
}

void Profiler::write_latency_json(std::ostream& os) const {
  os << "{\"schema\":\"ascoma.prof.latency/1\",\"workload\":\""
     << obs::json_escape(workload_) << "\",\"arch\":\""
     << obs::json_escape(arch_) << "\",\"accesses\":" << accesses_
     << ",\"attribution_mismatches\":" << mismatches_ << ",\"all\":";
  json_hist(os, merged_end_to_end());
  os << ",\"classes\":[";
  bool first = true;
  for (int cls = 0; cls < kNumAccessClasses; ++cls) {
    if (end_to_end_[cls].count() == 0) continue;
    if (!first) os << ',';
    first = false;
    os << "\n{\"class\":\"" << to_string(static_cast<AccessClass>(cls))
       << "\",\"total\":";
    json_hist(os, end_to_end_[cls]);
    os << ",\"components\":[";
    bool cfirst = true;
    for (int c = 0; c < kNumComponents; ++c) {
      const auto& h = segments_[cls][c];
      if (h.count() == 0) continue;
      if (!cfirst) os << ',';
      cfirst = false;
      os << "{\"component\":\"" << to_string(static_cast<Component>(c))
         << "\",\"hist\":";
      json_hist(os, h);
      os << '}';
    }
    os << "]}";
  }
  os << "\n]}\n";
}

void Profiler::write_heat_json(std::ostream& os) const {
  os << "{\"schema\":\"ascoma.prof.heat/1\",\"pages\":[";
  bool first = true;
  for (const PageHeat& h : page_heat()) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"page\":" << h.page << ",\"accesses\":" << h.accesses
       << ",\"faults\":" << h.faults << ",\"scoma_allocs\":" << h.scoma_allocs
       << ",\"numa_allocs\":" << h.numa_allocs
       << ",\"upgrades\":" << h.upgrades << ",\"downgrades\":" << h.downgrades
       << ",\"suppressed\":" << h.suppressed
       << ",\"refetches\":" << h.refetches
       << ",\"remote_fetches\":" << h.remote_fetches
       << ",\"backoff_epochs\":" << h.backoff_epochs << '}';
  }
  os << "\n],\"nodes\":[";
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const NodeHeat& h = nodes_[n];
    if (n) os << ',';
    os << "\n{\"node\":" << n
       << ",\"threshold_raises\":" << h.threshold_raises
       << ",\"threshold_drops\":" << h.threshold_drops
       << ",\"daemon_runs\":" << h.daemon_runs
       << ",\"daemon_failures\":" << h.daemon_failures
       << ",\"suppressed\":" << h.suppressed
       << ",\"last_threshold\":" << h.last_threshold << '}';
  }
  os << "\n]}\n";
}

void Profiler::write_summary_json(std::ostream& os) const {
  // Integers only (pressure as rounded percent): the dump must be
  // byte-stable across toolchains so CI can diff against committed
  // baselines.
  const auto pct =
      static_cast<std::uint64_t>(pressure_ * 100.0 + 0.5);
  os << "{\"schema\":\"ascoma.prof.summary/1\",\"workload\":\""
     << obs::json_escape(workload_) << "\",\"arch\":\""
     << obs::json_escape(arch_) << "\",\"pressure_pct\":" << pct
     << ",\"seed\":" << seed_ << ",\"cycles\":" << run_cycles_
     << ",\"accesses\":" << accesses_
     << ",\"attribution_mismatches\":" << mismatches_ << ",\"classes\":{";
  bool first = true;
  for (int cls = 0; cls < kNumAccessClasses; ++cls) {
    if (end_to_end_[cls].count() == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << to_string(static_cast<AccessClass>(cls))
       << "\":" << end_to_end_[cls].count();
  }
  os << "}}\n";
}

bool Profiler::write_profile(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  const auto write = [&](const char* name, auto&& fn) {
    std::ofstream os(std::filesystem::path(dir) / name, std::ios::trunc);
    if (!os) return false;
    fn(os);
    return os.good();
  };
  return write("latency.csv",
               [&](std::ostream& os) { write_latency_csv(os); }) &&
         write("latency.json",
               [&](std::ostream& os) { write_latency_json(os); }) &&
         write("heat.csv", [&](std::ostream& os) { write_heat_csv(os); }) &&
         write("heat.json", [&](std::ostream& os) { write_heat_json(os); }) &&
         write("summary.json",
               [&](std::ostream& os) { write_summary_json(os); });
}

}  // namespace ascoma::prof
