#include "prof/diff.hh"

#include <charconv>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "prof/profiler.hh"

namespace ascoma::prof {

namespace {

bool parse_u64(std::string_view s, std::uint64_t& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool split_fields(const std::string& line, std::vector<std::string>& out) {
  // Dump fields are identifiers and integers; a quote would mean the file is
  // not one of ours (csv_field only quotes when a delimiter is embedded).
  out.clear();
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    out.push_back(line.substr(start, comma - start));
    if (out.back().find('"') != std::string::npos) return false;
    if (comma == std::string::npos) return true;
    start = comma + 1;
  }
}

bool load_file(const std::string& path, std::string& out, std::string& error) {
  std::ifstream is(path);
  if (!is) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

/// Growth check shared by the p99 and mean gates.
bool regressed(double base, double cand, double tol, std::uint64_t min_abs) {
  return cand > base * (1.0 + tol) &&
         cand - base >= static_cast<double>(min_abs);
}

}  // namespace

std::size_t DiffReport::regressions() const {
  std::size_t n = 0;
  for (const DiffFinding& f : findings)
    if (f.is_regression()) ++n;
  return n;
}

bool parse_latency_csv(const std::string& text, std::vector<LatencyRow>& rows,
                       std::string& error) {
  rows.clear();
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) {
    error = "empty latency.csv";
    return false;
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != Profiler::latency_csv_header()) {
    error = "unexpected latency.csv header: " + line;
    return false;
  }
  std::vector<std::string> f;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    LatencyRow r;
    if (!split_fields(line, f) || f.size() != 9 || !parse_u64(f[2], r.count) ||
        !parse_u64(f[3], r.sum) || !parse_u64(f[4], r.min) ||
        !parse_u64(f[5], r.p50) || !parse_u64(f[6], r.p90) ||
        !parse_u64(f[7], r.p99) || !parse_u64(f[8], r.max)) {
      error = "malformed latency.csv row: " + line;
      return false;
    }
    r.cls = f[0];
    r.component = f[1];
    rows.push_back(std::move(r));
  }
  return true;
}

DiffReport diff_rows(const std::vector<LatencyRow>& baseline,
                     const std::vector<LatencyRow>& candidate,
                     const DiffOptions& opts) {
  DiffReport rep;
  std::map<std::pair<std::string, std::string>, const LatencyRow*> base_by_key;
  for (const LatencyRow& r : baseline)
    base_by_key[{r.cls, r.component}] = &r;

  std::map<std::pair<std::string, std::string>, bool> seen;
  for (const LatencyRow& c : candidate) {
    const auto key = std::make_pair(c.cls, c.component);
    seen[key] = true;
    const auto it = base_by_key.find(key);
    if (it == base_by_key.end()) {
      rep.findings.push_back({DiffFinding::Kind::kRowAppeared, c.cls,
                              c.component, 0, c.p99, 0.0});
      continue;
    }
    const LatencyRow& b = *it->second;
    if (b.count < opts.min_count || c.count < opts.min_count) continue;
    ++rep.rows_compared;
    if (regressed(static_cast<double>(b.p99), static_cast<double>(c.p99),
                  opts.p99_tol, opts.min_cycles)) {
      rep.findings.push_back(
          {DiffFinding::Kind::kP99Regression, c.cls, c.component, b.p99, c.p99,
           static_cast<double>(c.p99) / static_cast<double>(b.p99)});
    }
    if (regressed(b.mean(), c.mean(), opts.mean_tol, opts.min_cycles)) {
      rep.findings.push_back(
          {DiffFinding::Kind::kMeanRegression, c.cls, c.component,
           static_cast<std::uint64_t>(b.mean() + 0.5),
           static_cast<std::uint64_t>(c.mean() + 0.5), c.mean() / b.mean()});
    }
  }
  for (const LatencyRow& b : baseline) {
    if (!seen.count({b.cls, b.component})) {
      rep.findings.push_back({DiffFinding::Kind::kRowVanished, b.cls,
                              b.component, b.p99, 0, 0.0});
    }
  }
  return rep;
}

DiffReport diff_profiles(const std::string& baseline_dir,
                         const std::string& candidate_dir,
                         const DiffOptions& opts) {
  DiffReport rep;
  std::string base_text, cand_text;
  if (!load_file(baseline_dir + "/latency.csv", base_text, rep.error) ||
      !load_file(candidate_dir + "/latency.csv", cand_text, rep.error))
    return rep;
  std::vector<LatencyRow> base_rows, cand_rows;
  if (!parse_latency_csv(base_text, base_rows, rep.error) ||
      !parse_latency_csv(cand_text, cand_rows, rep.error))
    return rep;
  return diff_rows(base_rows, cand_rows, opts);
}

void write_report(std::ostream& os, const DiffReport& rep,
                  const DiffOptions& opts) {
  if (!rep.ok()) {
    os << "error: " << rep.error << '\n';
    return;
  }
  for (const DiffFinding& f : rep.findings) {
    switch (f.kind) {
      case DiffFinding::Kind::kP99Regression:
        os << "REGRESSION p99  " << f.cls << '/' << f.component << "  "
           << f.base_value << " -> " << f.cand_value << "  (x" << f.ratio
           << ", tol " << opts.p99_tol << ")\n";
        break;
      case DiffFinding::Kind::kMeanRegression:
        os << "REGRESSION mean " << f.cls << '/' << f.component << "  "
           << f.base_value << " -> " << f.cand_value << "  (x" << f.ratio
           << ", tol " << opts.mean_tol << ")\n";
        break;
      case DiffFinding::Kind::kRowVanished:
        os << "note: row vanished  " << f.cls << '/' << f.component << '\n';
        break;
      case DiffFinding::Kind::kRowAppeared:
        os << "note: row appeared  " << f.cls << '/' << f.component << '\n';
        break;
    }
  }
  os << rep.rows_compared << " row(s) compared, " << rep.regressions()
     << " regression(s)\n";
}

}  // namespace ascoma::prof
