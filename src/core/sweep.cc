#include "core/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "common/check.hh"
#include "common/sync.hh"
#include "core/sweep_status.hh"
#include "core/sweep_store.hh"
#include "obs/metrics.hh"
#include "obs/tail.hh"
#include "obsd/server.hh"
#include "selfprof/host.hh"
#include "store/store.hh"
#include "workload/workload.hh"

namespace ascoma::core {

namespace {

std::string fmt_rate(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Median wall time over the sweep (mean of the middle two when even).
selfprof::HostNs median_wall(const std::vector<SweepResult>& results) {
  std::vector<selfprof::HostNs> walls;
  walls.reserve(results.size());
  for (const SweepResult& r : results) walls.push_back(r.timing.wall);
  std::sort(walls.begin(), walls.end());
  const std::size_t n = walls.size();
  if (n == 0) return selfprof::HostNs{0};
  if (n % 2 == 1) return walls[n / 2];
  return (walls[n / 2 - 1] + walls[n / 2]) / 2;
}

/// One fsync'd completion line in the store's manifest journal.
void journal_done(store::ResultStore& rs, std::size_t job,
                  const std::string& label, const std::string& key,
                  bool cached, Cycle cycles) {
  std::ostringstream os;
  os << "{\"sweep\":\"done\",\"job\":" << job << ",\"label\":\""
     << store::json_escape_min(label) << "\",\"key\":\"" << key
     << "\",\"cached\":" << (cached ? "true" : "false")
     << ",\"cycles\":" << cycles.value() << '}';
  rs.append_manifest(os.str());
}

// ---- serve plane constants ------------------------------------------------

/// Per-job private sink capacity while serving: big enough for the event
/// tallies to stay exact (tallies count past capacity anyway) without
/// reserving the 1M-event default per concurrent job.
constexpr std::size_t kServeJobSinkCapacity = std::size_t{1} << 14;
/// Newest events of each finished job fed into the shared tail.
constexpr std::size_t kServeJobTailEvents = 256;
/// Default mid-job gauge cadence when the job config does not sample.
constexpr Cycle kServeSampleEvery{50'000};

/// Stable endpoint id carried in kServeRequest/kServeError's `c` argument.
std::uint64_t endpoint_id(const std::string& path) {
  if (path == "/metrics") return 1;
  if (path == "/progress") return 2;
  if (path == "/jobs") return 3;
  if (path.rfind("/jobs/", 0) == 0) return 4;
  if (path == "/events") return 5;
  if (path == "/") return 6;
  return 0;
}

const char* endpoint_name(std::uint64_t id) {
  switch (id) {
    case 1: return "metrics";
    case 2: return "progress";
    case 3: return "jobs";
    case 4: return "job";
    case 5: return "events";
    case 6: return "index";
    default: return "other";
  }
}

/// The sweep-level metric handles, resolved once so workers never touch the
/// registry's registration mutex.
struct SweepMetrics {
  obs::Counter* jobs_done = nullptr;
  obs::Counter* jobs_cached = nullptr;
  obs::Counter* jobs_failed = nullptr;
  obs::Counter* sim_cycles = nullptr;
  obs::Gauge* jobs_running = nullptr;
  obs::Gauge* jobs_total = nullptr;
  obs::Histogram* job_wall_ns = nullptr;

  void resolve(obs::Registry& reg) {
    const char* help = "Sweep jobs finished, by terminal state";
    jobs_done = &reg.counter("ascoma_sweep_jobs_total", help,
                             {{"state", "done"}});
    jobs_cached = &reg.counter("ascoma_sweep_jobs_total", help,
                               {{"state", "cached"}});
    jobs_failed = &reg.counter("ascoma_sweep_jobs_total", help,
                               {{"state", "failed"}});
    sim_cycles = &reg.counter(
        "ascoma_sweep_sim_cycles_total",
        "Simulated cycles completed by finished sweep jobs");
    jobs_running = &reg.gauge("ascoma_sweep_jobs_running",
                              "Sweep jobs currently simulating");
    jobs_total =
        &reg.gauge("ascoma_sweep_jobs", "Total jobs in the running sweep");
    job_wall_ns = &reg.histogram(
        "ascoma_sweep_job_wall_ns",
        "Host wall time per finished sweep job in nanoseconds");
  }
};

/// Fold a finished job's private event tally into ascoma_events_total.
void fold_event_counts(obs::Registry& reg, const obs::EventSink& sink) {
  for (int k = 0; k < obs::kNumEventKinds; ++k) {
    const auto kind = static_cast<obs::EventKind>(k);
    const std::uint64_t n = sink.count(kind);
    if (n == 0) continue;
    reg.counter("ascoma_events_total",
                "Simulator events emitted by sweep jobs, by kind",
                {{"kind", obs::to_string(kind)}})
        .inc(n);
  }
}

/// Fold a finished job's selfprof site totals into ascoma_selfprof_ns_total.
void fold_selfprof(obs::Registry& reg, const selfprof::Collector& col) {
  for (int s = 0; s < selfprof::kNumHostSites; ++s) {
    const auto site = static_cast<selfprof::HostSite>(s);
    if (col.count(site) == 0) continue;
    reg.counter("ascoma_selfprof_ns_total",
                "Self-profiled host wall time by site, summed over sweep "
                "jobs, in nanoseconds",
                {{"site", selfprof::to_string(site)}})
        .inc(col.total(site));
  }
}

}  // namespace

std::uint64_t SweepResult::accesses() const {
  return result.stats.totals.shared_loads + result.stats.totals.shared_stores;
}

double SweepResult::sim_rate_hz() const {
  if (timing.wall.value() == 0) return 0.0;
  return static_cast<double>(result.stats.parallel_cycles.value()) /
         (static_cast<double>(timing.wall.value()) * 1e-9);
}

std::string progress_line(std::size_t done, std::size_t total,
                          selfprof::HostNs wall, Cycle cycles_done,
                          std::size_t cached, std::uint64_t seq) {
  const double wall_s = static_cast<double>(wall.value()) * 1e-9;
  const double rate =
      wall_s > 0.0 ? static_cast<double>(cycles_done.value()) / wall_s : 0.0;
  // Mean-job extrapolation; jobs are heterogeneous, so this is a coarse
  // bound, not a promise (the straggler flag exists for a reason).
  std::uint64_t eta_ms = 0;
  if (done > 0 && total > done) {
    const double per_job = wall_s / static_cast<double>(done);
    eta_ms = static_cast<std::uint64_t>(
        per_job * static_cast<double>(total - done) * 1e3);
  }
  std::ostringstream os;
  os << "{\"sweep\":\"progress\",\"seq\":" << seq << ",\"done\":" << done
     << ",\"total\":" << total << ",\"cached\":" << cached
     << ",\"wall_ms\":" << wall.value() / 1'000'000
     << ",\"sim_cycles\":" << cycles_done
     << ",\"sim_rate_hz\":" << fmt_rate(rate) << ",\"eta_ms\":" << eta_ms
     << '}';
  return os.str();
}

std::vector<SweepResult> run_sweep(std::vector<SweepJob> jobs,
                                   const SweepOptions& opts) {
  unsigned threads = opts.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  threads = std::min<unsigned>(threads, jobs.size() == 0 ? 1
                                        : static_cast<unsigned>(jobs.size()));

  selfprof::HostClock* clock =
      opts.clock != nullptr ? opts.clock : selfprof::default_clock();
  const bool collect = opts.collect && selfprof::runtime_enabled();

  // Durable mode: open (and scan) the result store once, up front, so
  // corruption is quarantined and reported before any worker consults it.
  std::unique_ptr<store::ResultStore> rs;
  if (!opts.store_dir.empty()) {
    rs = std::make_unique<store::ResultStore>(opts.store_dir);
    if (!rs->report().clean())
      std::cerr << rs->report().to_string() << std::endl;
  }

  // ---- live observability plane (SweepOptions::serve_port) -----------------
  // Everything below this block is heap-free and thread-free when
  // serve_port is unset: no registry, no tail, no board, no server.
  const bool serving = opts.serve_port.has_value();
  std::unique_ptr<obs::Registry> own_registry;
  obs::Registry* reg = nullptr;
  std::unique_ptr<obs::EventTail> tail;
  std::unique_ptr<SweepStatusBoard> board;
  SweepMetrics sm;
  std::unique_ptr<obsd::Server> server;  // declared last: stops first
  if (serving) {
    reg = opts.registry;
    if (reg == nullptr) {
      own_registry = std::make_unique<obs::Registry>();
      reg = own_registry.get();
    }
    tail = std::make_unique<obs::EventTail>();
    board = std::make_unique<SweepStatusBoard>();
    std::vector<std::string> fingerprints(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
      fingerprints[i] = job_fingerprint(jobs[i]).hex();
    board->reset(jobs, fingerprints);
    sm.resolve(*reg);
    sm.jobs_total->set(std::uint64_t{jobs.size()});

    server = std::make_unique<obsd::Server>();
    server->route("/", [](const obsd::Request&) {
      return obsd::Response{200, "text/plain; charset=utf-8",
                            "ascoma obsd\n/metrics\n/progress\n/jobs\n"
                            "/jobs/<fingerprint>\n/events?last=N\n"};
    });
    server->route("/metrics", [reg](const obsd::Request&) {
      std::ostringstream os;
      reg->write_prometheus(os);
      return obsd::Response{200, "text/plain; version=0.0.4; charset=utf-8",
                            os.str()};
    });
    server->route("/progress", [b = board.get()](const obsd::Request&) {
      return obsd::Response{200, "application/json", b->progress_json()};
    });
    server->route("/jobs", [b = board.get()](const obsd::Request&) {
      return obsd::Response{200, "application/json", b->jobs_json()};
    });
    server->route_prefix("/jobs/", [b = board.get()](const obsd::Request& r) {
      std::string body = b->job_json(std::string_view(r.path).substr(6));
      if (body.empty())
        return obsd::Response{404, "text/plain; charset=utf-8",
                              "no such job\n"};
      return obsd::Response{200, "application/json", std::move(body)};
    });
    server->route("/events", [t = tail.get()](const obsd::Request& r) {
      const std::uint64_t last = obsd::query_u64(r.query, "last", 100);
      return obsd::Response{200, "application/x-ndjson",
                            t->jsonl_tail(last)};
    });
    server->set_request_hook([reg, t = tail.get()](int status,
                                                   std::size_t body_size,
                                                   const std::string& path) {
      const std::uint64_t ep = endpoint_id(path);
      reg->counter("ascoma_serve_requests_total",
                   "HTTP requests answered by obsd, by endpoint",
                   {{"endpoint", endpoint_name(ep)}})
          .inc();
      obs::Event e;
      e.kind = obs::EventKind::kServeRequest;
      e.a = static_cast<std::uint64_t>(status);
      e.b = body_size;
      e.c = ep;
      t->push(e);
      if (status >= 400) {
        reg->counter("ascoma_serve_errors_total",
                     "HTTP error responses answered by obsd")
            .inc();
        obs::Event err;
        err.kind = obs::EventKind::kServeError;
        err.a = static_cast<std::uint64_t>(status);
        err.c = ep;
        t->push(err);
      }
    });
    if (server->start(*opts.serve_port)) {
      if (opts.serve_ready) opts.serve_ready(server->port());
    } else {
      std::cerr << "obsd: serving disabled: " << server->last_error()
                << std::endl;
      server.reset();
    }
  }

  std::vector<SweepResult> results(jobs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> cached_jobs{0};
  std::atomic<std::uint64_t> cycles_done{0};
  std::atomic<bool> failed{false};
  // First-thrower-wins slot; the exception_ptr crosses threads via err.mu
  // and the pool join, never via the `failed` flag.
  struct ErrorSlot {
    Mutex mu;
    std::exception_ptr first ASCOMA_GUARDED_BY(mu);
  } err;
  const selfprof::HostNs sweep_t0 = clock->now();

  auto worker = [&] {
    for (;;) {
      // order: relaxed — `failed` is an advisory early-exit hint; the
      // exception and all result state cross via err.mu and the join.
      // order: acquire on `stop` — pairs with the release store in the
      // shutdown signal handler (store/shutdown.cc) and test setters, so a
      // worker observing the flag also observes everything written before
      // the stop was requested.
      if (failed.load(std::memory_order_relaxed) ||
          (opts.stop != nullptr &&
           opts.stop->load(std::memory_order_acquire)))
        break;
      // order: relaxed — a job-claim ticket: only the RMW's atomicity
      // matters (each index claimed once); results[i] is then exclusively
      // this worker's until the join publishes it.
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) break;
      bool marked_running = false;
      try {
        auto wl = workload::make_workload(jobs[i].workload,
                                          jobs[i].workload_scale);
        ASCOMA_CHECK_MSG(wl != nullptr,
                         "unknown workload: " << jobs[i].workload);
        results[i].job = jobs[i];

        // Cache lookup: a verified record with this job's content hash is
        // the job's result — restore it and skip the simulation.
        std::string key;
        selfprof::HostNs store_ns{0};
        if (rs) {
          const selfprof::HostNs s0 = clock->now();
          key = job_fingerprint(jobs[i]).hex();
          bool hit = false;
          if (const auto payload = rs->load(key)) {
            try {
              store::Decoder d(payload->data(), payload->size());
              decode_sweep_result(d, &results[i]);
              hit = true;
            } catch (const store::CodecError&) {
              hit = false;  // foreign/stale record shape: recompute
            }
          }
          store_ns = clock->now() - s0;
          if (hit) {
            results[i].timing.cached = true;
            results[i].timing.store = store_ns;
            journal_done(*rs, i, jobs[i].label, key, /*cached=*/true,
                         results[i].result.stats.parallel_cycles);
            // order: relaxed — monotonic progress telemetry, read by the
            // heartbeat for display only; exact after the join.
            cached_jobs.fetch_add(1, std::memory_order_relaxed);
            cycles_done.fetch_add(
                results[i].result.stats.parallel_cycles.value(),
                std::memory_order_relaxed);
            done.fetch_add(1, std::memory_order_relaxed);
            if (serving) {
              const selfprof::HostNs v0 = clock->now();
              sm.jobs_cached->inc();
              sm.sim_cycles->inc(results[i].result.stats.parallel_cycles);
              obs::Event e;
              e.cycle = results[i].result.stats.parallel_cycles;
              e.kind = obs::EventKind::kSweepCacheHit;
              e.a = i;
              e.b = job_fingerprint(jobs[i]).lo;
              tail->push(e);
              results[i].timing.serve = clock->now() - v0;
              board->mark_finished(i, JobStatus::State::kCached, results[i],
                                   clock->now() - sweep_t0);
            }
            continue;
          }
        }

        // The simulated config: identical to the job's except that, while
        // serving, a private sink, the shared registry, and a default gauge
        // cadence are attached.  All of it is invisible to the fingerprint
        // (computed from jobs[i] above) and to simulated behaviour.
        MachineConfig mcfg = jobs[i].config;
        std::unique_ptr<obs::EventSink> job_sink;
        if (serving) {
          if (mcfg.sink == nullptr) {
            job_sink =
                std::make_unique<obs::EventSink>(kServeJobSinkCapacity);
            mcfg.sink = job_sink.get();
          }
          mcfg.registry = reg;
          if (mcfg.sample_every.value() == 0)
            mcfg.sample_every = kServeSampleEvery;
          board->mark_running(i, clock->now() - sweep_t0);
          sm.jobs_running->add(1.0);
          marked_running = true;
        }

        std::shared_ptr<selfprof::Collector> col;
        if (collect) col = std::make_shared<selfprof::Collector>(clock);
        const std::uint64_t allocs0 = selfprof::thread_alloc_count();
        const selfprof::HostNs t0 = clock->now();
        {
          const selfprof::ScopedInstall install(col.get());
          results[i].result = simulate(mcfg, *wl);
        }
        const selfprof::HostNs t1 = clock->now();
        results[i].timing.wall = t1 - t0;
        results[i].timing.allocs = selfprof::thread_alloc_count() - allocs0;
        results[i].timing.peak_rss_bytes = selfprof::peak_rss_bytes();
        // The result carries the config it ran with; restore the caller's so
        // serve-plane pointers never leak into results (or the store).
        if (serving) results[i].result.config = jobs[i].config;
        if (col) {
          col->set_meta(jobs[i].workload, to_string(jobs[i].config.arch),
                        jobs[i].config.memory_pressure);
          col->set_sim(results[i].result.stats.parallel_cycles,
                       results[i].accesses());
          results[i].selfprof = std::move(col);
        }

        // Persist the miss before it counts as done: after a kill, every
        // journaled job has a verified record on disk.
        if (rs) {
          const selfprof::HostNs s1 = clock->now();
          store::Encoder e;
          encode_sweep_result(e, results[i]);
          rs->save(key, e.bytes(), static_cast<std::uint64_t>(i));
          journal_done(*rs, i, jobs[i].label, key, /*cached=*/false,
                       results[i].result.stats.parallel_cycles);
          results[i].timing.store = store_ns + (clock->now() - s1);
        }
        // order: relaxed — monotonic progress telemetry (see above).
        cycles_done.fetch_add(
            results[i].result.stats.parallel_cycles.value(),
            std::memory_order_relaxed);
        done.fetch_add(1, std::memory_order_relaxed);
        if (serving) {
          const selfprof::HostNs v0 = clock->now();
          sm.jobs_done->inc();
          sm.jobs_running->sub(1.0);
          sm.sim_cycles->inc(results[i].result.stats.parallel_cycles);
          sm.job_wall_ns->observe(results[i].timing.wall);
          if (job_sink) {
            fold_event_counts(*reg, *job_sink);
            tail->push_sink_tail(*job_sink, kServeJobTailEvents);
          }
          if (results[i].selfprof) fold_selfprof(*reg, *results[i].selfprof);
          results[i].timing.serve = clock->now() - v0;
          board->mark_finished(i, JobStatus::State::kDone, results[i],
                               clock->now() - sweep_t0);
        }
      } catch (...) {
        if (serving) {
          sm.jobs_failed->inc();
          if (marked_running) sm.jobs_running->sub(1.0);
          board->mark_finished(i, JobStatus::State::kFailed, results[i],
                               clock->now() - sweep_t0);
        }
        {
          const LockGuard g(err.mu);
          if (!err.first) err.first = std::current_exception();
        }
        // order: relaxed — advisory early-exit hint only (see the loop
        // head); correctness does not depend on when peers observe it.
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
  };

  // Progress heartbeat: one extra thread building single-line JSON at the
  // configured cadence; woken early at shutdown so the sweep never waits on
  // a sleeping reporter.  The same lines feed the stderr stream
  // (opts.progress) and the status board's `GET /progress` (serving) — a
  // served sweep beats even when --progress is off.
  struct Heartbeat {
    Mutex mu;
    CondVar cv;
    bool stop ASCOMA_GUARDED_BY(mu) = false;
  } hb;
  // Heartbeat-thread-private while it runs; the final-line read below
  // happens after join(), a full happens-before edge — no guard needed.
  std::uint64_t hb_seq = 0;
  std::thread heartbeat;
  if ((opts.progress || serving) && !jobs.empty()) {
    std::ostream* out =
        opts.progress_out != nullptr ? opts.progress_out : &std::cerr;
    const auto interval =
        std::chrono::milliseconds(std::max<std::uint32_t>(
            opts.progress_interval_ms, 1));
    heartbeat = std::thread([&, out, interval] {
      for (;;) {
        bool stop_now;
        {
          const LockGuard lk(hb.mu);
          // Manual timed-wait loop instead of a predicate lambda so
          // -Wthread-safety sees hb.stop read with hb.mu held; one timeout
          // tick ends a round, a notify ends the thread.
          while (!hb.stop) {
            if (hb.cv.wait_for(hb.mu, interval) == std::cv_status::timeout)
              break;
          }
          stop_now = hb.stop;
        }
        if (stop_now) break;
        // Beat OUTSIDE the lock (lint_concurrency rule C4): formatting the
        // line and streaming it to *out (possibly a pipe) must never stall
        // the stopper; board->set_progress takes the board's own leaf lock.
        // order: relaxed — monotonic telemetry reads for display only.
        const std::string line = progress_line(
            done.load(std::memory_order_relaxed), jobs.size(),
            clock->now() - sweep_t0,
            Cycle{cycles_done.load(std::memory_order_relaxed)},
            cached_jobs.load(std::memory_order_relaxed), hb_seq++);
        if (opts.progress) *out << line << std::endl;
        if (board) board->set_progress(line);
      }
    });
  }

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (heartbeat.joinable()) {
    {
      const LockGuard g(hb.mu);
      hb.stop = true;
    }
    hb.cv.notify_all();
    heartbeat.join();
    // Final line so a consumer always sees done == total (or the partial
    // count when a job threw).
    // order: relaxed — all workers joined above, so these reads are exact;
    // the joins are the happens-before edges.
    const std::string line = progress_line(
        done.load(std::memory_order_relaxed), jobs.size(),
        clock->now() - sweep_t0,
        Cycle{cycles_done.load(std::memory_order_relaxed)},
        cached_jobs.load(std::memory_order_relaxed), hb_seq);
    if (opts.progress) {
      std::ostream* out =
          opts.progress_out != nullptr ? opts.progress_out : &std::cerr;
      *out << line << std::endl;
    }
    if (board) board->set_progress(line);
  }
  {
    const LockGuard g(err.mu);
    if (err.first) std::rethrow_exception(err.first);
  }

  // Cache-hit events are emitted here, after the workers joined — the sink
  // is not thread-safe, so the workers only count hits atomically.
  if (opts.sink != nullptr && rs) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].timing.cached) continue;
      opts.sink->emit(obs::EventKind::kSweepCacheHit,
                      results[i].result.stats.parallel_cycles, NodeId{0},
                      kInvalidPage, i, job_fingerprint(results[i].job).lo, 0);
    }
  }

  // Straggler pass: flag jobs whose wall time exceeded the configured
  // multiple of the sweep median — the load-imbalance signal the sweep
  // daemon (ROADMAP item 4) will act on.
  if (opts.straggler_factor > 0.0 && results.size() >= 2) {
    const selfprof::HostNs median = median_wall(results);
    for (std::size_t i = 0; i < results.size(); ++i) {
      SweepResult& r = results[i];
      if (static_cast<double>(r.timing.wall.value()) <=
          opts.straggler_factor * static_cast<double>(median.value()))
        continue;
      r.timing.straggler = true;
      if (opts.sink != nullptr)
        opts.sink->emit(obs::EventKind::kSweepStraggler,
                        r.result.stats.parallel_cycles, NodeId{0},
                        kInvalidPage, r.timing.wall.value() / 1'000'000,
                        median.value() / 1'000'000, i);
      if (tail) {
        obs::Event e;
        e.cycle = r.result.stats.parallel_cycles;
        e.kind = obs::EventKind::kSweepStraggler;
        e.a = r.timing.wall.value() / 1'000'000;
        e.b = median.value() / 1'000'000;
        e.c = i;
        tail->push(e);
      }
      if (board) board->mark_straggler(i);
    }
  }
  return results;
}

std::vector<SweepResult> run_sweep(std::vector<SweepJob> jobs,
                                   unsigned threads) {
  SweepOptions opts;
  opts.threads = threads;
  opts.straggler_factor = 0.0;  // legacy path: timing only, no analysis
  return run_sweep(std::move(jobs), opts);
}

std::vector<SweepJob> paper_grid(const std::string& workload,
                                 const std::vector<double>& pressures,
                                 const MachineConfig& base, double scale) {
  std::vector<SweepJob> jobs;
  auto add = [&](ArchModel arch, double pressure) {
    SweepJob j;
    j.config = base;
    j.config.arch = arch;
    j.config.memory_pressure = pressure;
    std::ostringstream label;
    label << to_string(arch) << '('
          << static_cast<int>(pressure * 100.0 + 0.5) << "%)";
    j.label = label.str();
    j.workload = workload;
    j.workload_scale = scale;
    jobs.push_back(std::move(j));
  };

  // CC-NUMA is memory-pressure independent: one run.
  add(ArchModel::kCcNuma, pressures.empty() ? 0.5 : pressures.front());
  for (ArchModel arch : {ArchModel::kScoma, ArchModel::kAsComa,
                         ArchModel::kVcNuma, ArchModel::kRNuma}) {
    for (double p : pressures) add(arch, p);
  }
  return jobs;
}

}  // namespace ascoma::core
