#include "core/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/check.hh"
#include "core/sweep_store.hh"
#include "selfprof/host.hh"
#include "store/store.hh"
#include "workload/workload.hh"

namespace ascoma::core {

namespace {

std::string fmt_rate(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Median wall time over the sweep (mean of the middle two when even).
selfprof::HostNs median_wall(const std::vector<SweepResult>& results) {
  std::vector<selfprof::HostNs> walls;
  walls.reserve(results.size());
  for (const SweepResult& r : results) walls.push_back(r.timing.wall);
  std::sort(walls.begin(), walls.end());
  const std::size_t n = walls.size();
  if (n == 0) return selfprof::HostNs{0};
  if (n % 2 == 1) return walls[n / 2];
  return (walls[n / 2 - 1] + walls[n / 2]) / 2;
}

/// One fsync'd completion line in the store's manifest journal.
void journal_done(store::ResultStore& rs, std::size_t job,
                  const std::string& label, const std::string& key,
                  bool cached, Cycle cycles) {
  std::ostringstream os;
  os << "{\"sweep\":\"done\",\"job\":" << job << ",\"label\":\""
     << store::json_escape_min(label) << "\",\"key\":\"" << key
     << "\",\"cached\":" << (cached ? "true" : "false")
     << ",\"cycles\":" << cycles.value() << '}';
  rs.append_manifest(os.str());
}

}  // namespace

std::uint64_t SweepResult::accesses() const {
  return result.stats.totals.shared_loads + result.stats.totals.shared_stores;
}

double SweepResult::sim_rate_hz() const {
  if (timing.wall.value() == 0) return 0.0;
  return static_cast<double>(result.stats.parallel_cycles.value()) /
         (static_cast<double>(timing.wall.value()) * 1e-9);
}

std::string progress_line(std::size_t done, std::size_t total,
                          selfprof::HostNs wall, Cycle cycles_done,
                          std::size_t cached) {
  const double wall_s = static_cast<double>(wall.value()) * 1e-9;
  const double rate =
      wall_s > 0.0 ? static_cast<double>(cycles_done.value()) / wall_s : 0.0;
  // Mean-job extrapolation; jobs are heterogeneous, so this is a coarse
  // bound, not a promise (the straggler flag exists for a reason).
  std::uint64_t eta_ms = 0;
  if (done > 0 && total > done) {
    const double per_job = wall_s / static_cast<double>(done);
    eta_ms = static_cast<std::uint64_t>(
        per_job * static_cast<double>(total - done) * 1e3);
  }
  std::ostringstream os;
  os << "{\"sweep\":\"progress\",\"done\":" << done << ",\"total\":" << total
     << ",\"cached\":" << cached
     << ",\"wall_ms\":" << wall.value() / 1'000'000
     << ",\"sim_cycles\":" << cycles_done
     << ",\"sim_rate_hz\":" << fmt_rate(rate) << ",\"eta_ms\":" << eta_ms
     << '}';
  return os.str();
}

std::vector<SweepResult> run_sweep(std::vector<SweepJob> jobs,
                                   const SweepOptions& opts) {
  unsigned threads = opts.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  threads = std::min<unsigned>(threads, jobs.size() == 0 ? 1
                                        : static_cast<unsigned>(jobs.size()));

  selfprof::HostClock* clock =
      opts.clock != nullptr ? opts.clock : selfprof::default_clock();
  const bool collect = opts.collect && selfprof::runtime_enabled();

  // Durable mode: open (and scan) the result store once, up front, so
  // corruption is quarantined and reported before any worker consults it.
  std::unique_ptr<store::ResultStore> rs;
  if (!opts.store_dir.empty()) {
    rs = std::make_unique<store::ResultStore>(opts.store_dir);
    if (!rs->report().clean())
      std::cerr << rs->report().to_string() << std::endl;
  }

  std::vector<SweepResult> results(jobs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> cached_jobs{0};
  std::atomic<std::uint64_t> cycles_done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      if (failed.load() ||
          (opts.stop != nullptr && opts.stop->load()))
        break;
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) break;
      try {
        auto wl = workload::make_workload(jobs[i].workload,
                                          jobs[i].workload_scale);
        ASCOMA_CHECK_MSG(wl != nullptr,
                         "unknown workload: " << jobs[i].workload);
        results[i].job = jobs[i];

        // Cache lookup: a verified record with this job's content hash is
        // the job's result — restore it and skip the simulation.
        std::string key;
        selfprof::HostNs store_ns{0};
        if (rs) {
          const selfprof::HostNs s0 = clock->now();
          key = job_fingerprint(jobs[i]).hex();
          bool hit = false;
          if (const auto payload = rs->load(key)) {
            try {
              store::Decoder d(payload->data(), payload->size());
              decode_sweep_result(d, &results[i]);
              hit = true;
            } catch (const store::CodecError&) {
              hit = false;  // foreign/stale record shape: recompute
            }
          }
          store_ns = clock->now() - s0;
          if (hit) {
            results[i].timing.cached = true;
            results[i].timing.store = store_ns;
            journal_done(*rs, i, jobs[i].label, key, /*cached=*/true,
                         results[i].result.stats.parallel_cycles);
            cached_jobs.fetch_add(1);
            cycles_done.fetch_add(
                results[i].result.stats.parallel_cycles.value());
            done.fetch_add(1);
            continue;
          }
        }

        std::shared_ptr<selfprof::Collector> col;
        if (collect) col = std::make_shared<selfprof::Collector>(clock);
        const std::uint64_t allocs0 = selfprof::thread_alloc_count();
        const selfprof::HostNs t0 = clock->now();
        {
          const selfprof::ScopedInstall install(col.get());
          results[i].result = simulate(jobs[i].config, *wl);
        }
        const selfprof::HostNs t1 = clock->now();
        results[i].timing.wall = t1 - t0;
        results[i].timing.allocs = selfprof::thread_alloc_count() - allocs0;
        results[i].timing.peak_rss_bytes = selfprof::peak_rss_bytes();
        if (col) {
          col->set_meta(jobs[i].workload, to_string(jobs[i].config.arch),
                        jobs[i].config.memory_pressure);
          col->set_sim(results[i].result.stats.parallel_cycles,
                       results[i].accesses());
          results[i].selfprof = std::move(col);
        }

        // Persist the miss before it counts as done: after a kill, every
        // journaled job has a verified record on disk.
        if (rs) {
          const selfprof::HostNs s1 = clock->now();
          store::Encoder e;
          encode_sweep_result(e, results[i]);
          rs->save(key, e.bytes(), static_cast<std::uint64_t>(i));
          journal_done(*rs, i, jobs[i].label, key, /*cached=*/false,
                       results[i].result.stats.parallel_cycles);
          results[i].timing.store = store_ns + (clock->now() - s1);
        }
        cycles_done.fetch_add(
            results[i].result.stats.parallel_cycles.value());
        done.fetch_add(1);
      } catch (...) {
        std::lock_guard<std::mutex> g(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true);
        break;
      }
    }
  };

  // Progress heartbeat: one extra thread writing single-line JSON at the
  // configured cadence; woken early at shutdown so the sweep never waits on
  // a sleeping reporter.
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool stop_heartbeat = false;
  std::thread heartbeat;
  const selfprof::HostNs sweep_t0 = clock->now();
  if (opts.progress && !jobs.empty()) {
    std::ostream* out =
        opts.progress_out != nullptr ? opts.progress_out : &std::cerr;
    const auto interval =
        std::chrono::milliseconds(std::max<std::uint32_t>(
            opts.progress_interval_ms, 1));
    heartbeat = std::thread([&, out, interval] {
      std::unique_lock<std::mutex> lk(hb_mu);
      for (;;) {
        if (hb_cv.wait_for(lk, interval, [&] { return stop_heartbeat; }))
          break;
        *out << progress_line(done.load(), jobs.size(),
                              clock->now() - sweep_t0,
                              Cycle{cycles_done.load()}, cached_jobs.load())
             << std::endl;
      }
    });
  }

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (heartbeat.joinable()) {
    {
      std::lock_guard<std::mutex> g(hb_mu);
      stop_heartbeat = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
    // Final line so a consumer always sees done == total (or the partial
    // count when a job threw).
    std::ostream* out =
        opts.progress_out != nullptr ? opts.progress_out : &std::cerr;
    *out << progress_line(done.load(), jobs.size(), clock->now() - sweep_t0,
                          Cycle{cycles_done.load()}, cached_jobs.load())
         << std::endl;
  }
  if (first_error) std::rethrow_exception(first_error);

  // Cache-hit events are emitted here, after the workers joined — the sink
  // is not thread-safe, so the workers only count hits atomically.
  if (opts.sink != nullptr && rs) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].timing.cached) continue;
      opts.sink->emit(obs::EventKind::kSweepCacheHit,
                      results[i].result.stats.parallel_cycles, NodeId{0},
                      kInvalidPage, i, job_fingerprint(results[i].job).lo, 0);
    }
  }

  // Straggler pass: flag jobs whose wall time exceeded the configured
  // multiple of the sweep median — the load-imbalance signal the sweep
  // daemon (ROADMAP item 4) will act on.
  if (opts.straggler_factor > 0.0 && results.size() >= 2) {
    const selfprof::HostNs median = median_wall(results);
    for (std::size_t i = 0; i < results.size(); ++i) {
      SweepResult& r = results[i];
      if (static_cast<double>(r.timing.wall.value()) <=
          opts.straggler_factor * static_cast<double>(median.value()))
        continue;
      r.timing.straggler = true;
      if (opts.sink != nullptr)
        opts.sink->emit(obs::EventKind::kSweepStraggler,
                        r.result.stats.parallel_cycles, NodeId{0},
                        kInvalidPage, r.timing.wall.value() / 1'000'000,
                        median.value() / 1'000'000, i);
    }
  }
  return results;
}

std::vector<SweepResult> run_sweep(std::vector<SweepJob> jobs,
                                   unsigned threads) {
  SweepOptions opts;
  opts.threads = threads;
  opts.straggler_factor = 0.0;  // legacy path: timing only, no analysis
  return run_sweep(std::move(jobs), opts);
}

std::vector<SweepJob> paper_grid(const std::string& workload,
                                 const std::vector<double>& pressures,
                                 const MachineConfig& base, double scale) {
  std::vector<SweepJob> jobs;
  auto add = [&](ArchModel arch, double pressure) {
    SweepJob j;
    j.config = base;
    j.config.arch = arch;
    j.config.memory_pressure = pressure;
    std::ostringstream label;
    label << to_string(arch) << '('
          << static_cast<int>(pressure * 100.0 + 0.5) << "%)";
    j.label = label.str();
    j.workload = workload;
    j.workload_scale = scale;
    jobs.push_back(std::move(j));
  };

  // CC-NUMA is memory-pressure independent: one run.
  add(ArchModel::kCcNuma, pressures.empty() ? 0.5 : pressures.front());
  for (ArchModel arch : {ArchModel::kScoma, ArchModel::kAsComa,
                         ArchModel::kVcNuma, ArchModel::kRNuma}) {
    for (double p : pressures) add(arch, p);
  }
  return jobs;
}

}  // namespace ascoma::core
