#include "core/sweep.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/check.hh"
#include "workload/workload.hh"

namespace ascoma::core {

std::vector<SweepResult> run_sweep(std::vector<SweepJob> jobs,
                                   unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  threads = std::min<unsigned>(threads, jobs.size() == 0 ? 1
                                        : static_cast<unsigned>(jobs.size()));

  std::vector<SweepResult> results(jobs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size() || failed.load()) break;
      try {
        auto wl = workload::make_workload(jobs[i].workload,
                                          jobs[i].workload_scale);
        ASCOMA_CHECK_MSG(wl != nullptr,
                         "unknown workload: " << jobs[i].workload);
        results[i].job = jobs[i];
        results[i].result = simulate(jobs[i].config, *wl);
      } catch (...) {
        std::lock_guard<std::mutex> g(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true);
        break;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<SweepJob> paper_grid(const std::string& workload,
                                 const std::vector<double>& pressures,
                                 const MachineConfig& base, double scale) {
  std::vector<SweepJob> jobs;
  auto add = [&](ArchModel arch, double pressure) {
    SweepJob j;
    j.config = base;
    j.config.arch = arch;
    j.config.memory_pressure = pressure;
    std::ostringstream label;
    label << to_string(arch) << '('
          << static_cast<int>(pressure * 100.0 + 0.5) << "%)";
    j.label = label.str();
    j.workload = workload;
    j.workload_scale = scale;
    jobs.push_back(std::move(j));
  };

  // CC-NUMA is memory-pressure independent: one run.
  add(ArchModel::kCcNuma, pressures.empty() ? 0.5 : pressures.front());
  for (ArchModel arch : {ArchModel::kScoma, ArchModel::kAsComa,
                         ArchModel::kVcNuma, ArchModel::kRNuma}) {
    for (double p : pressures) add(arch, p);
  }
  return jobs;
}

}  // namespace ascoma::core
