#include "core/sweep_status.hh"

#include <sstream>

#include "obs/export.hh"
#include "selfprof/collector.hh"

namespace ascoma::core {

namespace {

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string quoted(std::string_view s) {
  return '"' + obs::json_escape(s) + '"';
}

/// The summary fields shared by the /jobs rows and the /jobs/<fp> object.
void write_row_head(std::ostream& os, std::size_t i, const JobStatus& j) {
  os << "{\"index\":" << i << ",\"state\":" << quoted(to_string(j.state))
     << ",\"label\":" << quoted(j.label)
     << ",\"fingerprint\":" << quoted(j.fingerprint);
}

}  // namespace

const char* to_string(JobStatus::State s) {
  switch (s) {
    case JobStatus::State::kPending: return "pending";
    case JobStatus::State::kRunning: return "running";
    case JobStatus::State::kDone: return "done";
    case JobStatus::State::kCached: return "cached";
    case JobStatus::State::kFailed: return "failed";
  }
  return "?";
}

void SweepStatusBoard::reset(const std::vector<SweepJob>& jobs,
                             const std::vector<std::string>& fingerprints) {
  const LockGuard g(mu_);
  jobs_.assign(jobs.size(), JobStatus{});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    JobStatus& j = jobs_[i];
    j.label = jobs[i].label;
    j.workload = jobs[i].workload;
    j.arch = to_string(jobs[i].config.arch);
    j.pressure = jobs[i].config.memory_pressure;
    if (i < fingerprints.size()) j.fingerprint = fingerprints[i];
  }
  progress_.clear();
}

void SweepStatusBoard::mark_running(std::size_t i,
                                    selfprof::HostNs since_sweep_start) {
  const LockGuard g(mu_);
  if (i >= jobs_.size()) return;
  jobs_[i].state = JobStatus::State::kRunning;
  jobs_[i].started = since_sweep_start;
}

void SweepStatusBoard::mark_finished(std::size_t i, JobStatus::State state,
                                     const SweepResult& r,
                                     selfprof::HostNs since_sweep_start) {
  const LockGuard g(mu_);
  if (i >= jobs_.size()) return;
  JobStatus& j = jobs_[i];
  j.state = state;
  j.finished = since_sweep_start;
  j.timing = r.timing;
  j.sim_cycles = r.result.stats.parallel_cycles.value();
  j.accesses = r.accesses();
  j.selfprof_ns.clear();
  if (r.selfprof) {
    for (int s = 0; s < selfprof::kNumHostSites; ++s) {
      const auto site = static_cast<selfprof::HostSite>(s);
      if (r.selfprof->count(site) == 0) continue;
      j.selfprof_ns.emplace_back(selfprof::to_string(site),
                                 r.selfprof->total(site).value());
    }
  }
}

void SweepStatusBoard::mark_straggler(std::size_t i) {
  const LockGuard g(mu_);
  if (i < jobs_.size()) jobs_[i].timing.straggler = true;
}

void SweepStatusBoard::set_progress(std::string line) {
  const LockGuard g(mu_);
  progress_ = std::move(line);
}

std::string SweepStatusBoard::progress_json() const {
  // Snapshot under mu_, format outside (rule C4).
  std::string line;
  std::size_t total = 0;
  {
    const LockGuard g(mu_);
    line = progress_;
    total = jobs_.size();
  }
  if (!line.empty()) return line + '\n';
  std::ostringstream os;
  os << "{\"sweep\":\"progress\",\"seq\":0,\"done\":0,\"total\":"
     << total << "}\n";
  return os.str();
}

std::string SweepStatusBoard::jobs_json() const {
  // Snapshot the whole table under mu_, render outside (rule C4): scrapes
  // still see one consistent table, but workers marking jobs only contend
  // with a vector copy, never with JSON formatting.
  std::vector<JobStatus> jobs;
  {
    const LockGuard g(mu_);
    jobs = jobs_;
  }
  std::size_t counts[5] = {0, 0, 0, 0, 0};
  for (const JobStatus& j : jobs) ++counts[static_cast<int>(j.state)];
  std::ostringstream os;
  os << "{\"sweep\":\"jobs\",\"total\":" << jobs.size()
     << ",\"pending\":" << counts[0] << ",\"running\":" << counts[1]
     << ",\"done\":" << counts[2] << ",\"cached\":" << counts[3]
     << ",\"failed\":" << counts[4] << ",\"jobs\":[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobStatus& j = jobs[i];
    if (i != 0) os << ',';
    write_row_head(os, i, j);
    os << ",\"wall_ms\":" << j.timing.wall.value() / 1'000'000
       << ",\"straggler\":" << (j.timing.straggler ? "true" : "false") << '}';
  }
  os << "]}\n";
  return os.str();
}

std::string SweepStatusBoard::job_json(std::string_view key) const {
  if (key.empty()) return {};

  // Find and copy the matching row under mu_, render outside (rule C4).
  JobStatus j;
  std::size_t found;
  {
    const LockGuard g(mu_);
    found = jobs_.size();
    const bool numeric =
        key.find_first_not_of("0123456789") == std::string_view::npos &&
        key.size() <= 9;
    if (numeric) {
      const std::size_t i = std::stoul(std::string(key));
      if (i < jobs_.size()) found = i;
    } else {
      for (std::size_t i = 0; i < jobs_.size(); ++i) {
        if (jobs_[i].fingerprint.compare(0, key.size(), key) != 0) continue;
        if (found != jobs_.size()) return {};  // ambiguous prefix
        found = i;
      }
    }
    if (found == jobs_.size()) return {};
    j = jobs_[found];
  }

  std::ostringstream os;
  write_row_head(os, found, j);
  os << ",\"workload\":" << quoted(j.workload)
     << ",\"arch\":" << quoted(j.arch)
     << ",\"pressure\":" << fmt_double(j.pressure)
     << ",\"started_ms\":" << j.started.value() / 1'000'000
     << ",\"finished_ms\":" << j.finished.value() / 1'000'000
     << ",\"wall_ns\":" << j.timing.wall.value()
     << ",\"store_ns\":" << j.timing.store.value()
     << ",\"serve_ns\":" << j.timing.serve.value()
     << ",\"peak_rss_bytes\":" << j.timing.peak_rss_bytes
     << ",\"allocs\":" << j.timing.allocs
     << ",\"cached\":" << (j.timing.cached ? "true" : "false")
     << ",\"straggler\":" << (j.timing.straggler ? "true" : "false")
     << ",\"sim_cycles\":" << j.sim_cycles << ",\"accesses\":" << j.accesses;
  const double wall_s = static_cast<double>(j.timing.wall.value()) * 1e-9;
  os << ",\"sim_rate_hz\":"
     << fmt_double(wall_s > 0.0 ? static_cast<double>(j.sim_cycles) / wall_s
                                : 0.0);
  os << ",\"selfprof_ns\":{";
  for (std::size_t s = 0; s < j.selfprof_ns.size(); ++s) {
    if (s != 0) os << ',';
    os << quoted(j.selfprof_ns[s].first) << ':' << j.selfprof_ns[s].second;
  }
  os << "}}\n";
  return os.str();
}

std::size_t SweepStatusBoard::size() const {
  const LockGuard g(mu_);
  return jobs_.size();
}

}  // namespace ascoma::core
