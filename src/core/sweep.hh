#pragma once

// Parallel parameter-sweep runner: benchmarks evaluate dozens of
// (architecture × memory pressure × workload) points; each point is an
// independent single-threaded simulation, so the sweep fans them out over a
// thread pool and returns results in submission order.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/machine.hh"

namespace ascoma::core {

struct SweepJob {
  std::string label;            ///< e.g. "ASCOMA(70%)"
  MachineConfig config;
  std::string workload;         ///< name for make_workload
  double workload_scale = 1.0;
};

struct SweepResult {
  SweepJob job;
  RunResult result;
};

/// Runs all jobs on up to `threads` worker threads (0 = hardware
/// concurrency).  Results are returned in job order.  A job whose workload
/// name is unknown throws (after all threads join).
std::vector<SweepResult> run_sweep(std::vector<SweepJob> jobs,
                                   unsigned threads = 0);

/// Convenience builder: the full paper grid for one workload — every
/// architecture crossed with the given pressures (CC-NUMA once, since it is
/// pressure-independent).
std::vector<SweepJob> paper_grid(const std::string& workload,
                                 const std::vector<double>& pressures,
                                 const MachineConfig& base = {},
                                 double scale = 1.0);

}  // namespace ascoma::core
