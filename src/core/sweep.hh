#pragma once

// Parallel parameter-sweep runner: benchmarks evaluate dozens of
// (architecture × memory pressure × workload) points; each point is an
// independent single-threaded simulation, so the sweep fans them out over a
// thread pool and returns results in submission order.
//
// Besides the RunResults themselves the sweep records a host-side timing
// envelope per job (wall time, peak RSS, allocation count — the sim-rate
// telemetry of ARCHITECTURE.md §14), can stream a single-line-JSON progress
// heartbeat to stderr (`--progress` in the CLI; the seed of the sweep
// daemon's status endpoint), and flags straggler jobs whose wall time
// exceeded a configurable multiple of the sweep median, emitting a
// kSweepStraggler event on the options' sink.
//
// With SweepOptions::store_dir set the sweep becomes durable: each job is
// fingerprinted (core/sweep_store.hh) and looked up in a store::ResultStore
// before simulating; hits skip the simulation entirely (kSweepCacheHit on
// the sink, `cached` count in the heartbeat), misses persist their result
// atomically after completion, and every finished job appends one fsync'd
// line to the store's manifest journal.  Killing the process at any point
// and re-running the same sweep against the same store reproduces the exact
// result vector without redoing completed work.

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/machine.hh"
#include "obs/sink.hh"
#include "selfprof/clock.hh"
#include "selfprof/collector.hh"

namespace ascoma::obs {
class Registry;  // live-metrics registry (src/obs/metrics.hh)
}

namespace ascoma::core {

struct SweepJob {
  std::string label;            ///< e.g. "ASCOMA(70%)"
  MachineConfig config;
  std::string workload;         ///< name for make_workload
  double workload_scale = 1.0;
};

/// Host-side execution envelope of one job (always recorded: two clock reads
/// and one /proc lookup per job, independent of the selfprof kill switch).
struct SweepTiming {
  selfprof::HostNs wall{0};        ///< host wall time of the simulate() call
  std::uint64_t peak_rss_bytes = 0;///< process high-water RSS after the job
  std::uint64_t allocs = 0;        ///< heap allocations on the job's thread
  bool straggler = false;          ///< wall > straggler_factor × sweep median
  /// Host time spent in the result store for this job (lookup + decode on a
  /// hit; encode + atomic write + manifest append on a miss).  Always 0 when
  /// SweepOptions::store_dir is empty — the store is zero-cost when off.
  selfprof::HostNs store{0};
  bool cached = false;             ///< satisfied from the result store
  /// Host time this job spent publishing to the live observability plane
  /// (status board, metrics registry, event tail).  Always 0 when
  /// SweepOptions::serve_port is unset — serving is zero-cost when off.
  selfprof::HostNs serve{0};
};

struct SweepResult {
  SweepJob job;
  RunResult result;
  SweepTiming timing;
  /// Per-job attribution tree; non-null only when SweepOptions::collect was
  /// set and the selfprof layer is enabled.
  std::shared_ptr<selfprof::Collector> selfprof;

  /// Simulated shared-memory accesses of the run (sim-rate denominator).
  std::uint64_t accesses() const;
  /// Simulated cycles per host wall second (0 when the wall time is 0).
  double sim_rate_hz() const;
};

struct SweepOptions {
  unsigned threads = 0;            ///< 0 = hardware concurrency
  bool progress = false;           ///< heartbeat JSON lines on progress_out
  std::uint32_t progress_interval_ms = 1000;
  std::ostream* progress_out = nullptr;  ///< nullptr = std::cerr
  /// A job is a straggler when its wall time exceeds this multiple of the
  /// sweep median (needs >= 2 jobs); 0 disables the check.
  double straggler_factor = 3.0;
  obs::EventSink* sink = nullptr;  ///< kSweepStraggler / kSweepCacheHit
  /// Install a selfprof::Collector around every job (SweepResult::selfprof).
  bool collect = false;
  selfprof::HostClock* clock = nullptr;  ///< injectable for tests
  /// Non-empty = durable sweep: open a store::ResultStore here, satisfy
  /// jobs from it when possible, persist misses, journal completions to the
  /// manifest.  The directory is created if missing; corrupt records found
  /// on open are quarantined and reported once on std::cerr.
  std::string store_dir;
  /// Cooperative stop flag (the CLI wires the SIGINT/SIGTERM handler here):
  /// when it reads true, workers finish their in-flight job — persisting it
  /// to the store as usual — and claim no further jobs.  Ordering contract:
  /// the setter must publish with a release store (the shutdown handler in
  /// store/shutdown.cc does); workers poll with acquire loads.
  const std::atomic<bool>* stop = nullptr;
  /// Engage the live observability plane: bind an obsd::Server to
  /// 127.0.0.1:<port> (0 = ephemeral) for the duration of the sweep, serving
  /// GET /metrics (Prometheus), /progress (heartbeat JSON), /jobs +
  /// /jobs/<fingerprint> (status board), and /events?last=N (event tail).
  /// Unset = no server, no serve thread, no registry traffic — runs are
  /// byte-identical to a build without the plane.  A bind failure is
  /// reported once on std::cerr and the sweep proceeds unserved.
  std::optional<std::uint16_t> serve_port;
  /// Invoked once with the bound port when the server is listening (useful
  /// with serve_port 0); never invoked when the bind fails.
  std::function<void(std::uint16_t)> serve_ready;
  /// Metrics registry the served sweep publishes into.  nullptr = the sweep
  /// owns a private registry for the server's lifetime; non-null lets the
  /// caller keep scraping (or asserting, in tests) after run_sweep returns.
  /// Ignored when serve_port is unset.
  obs::Registry* registry = nullptr;
};

/// Runs all jobs on up to `opts.threads` worker threads.  Results are
/// returned in job order.  A job whose workload name is unknown throws
/// (after all threads join).
std::vector<SweepResult> run_sweep(std::vector<SweepJob> jobs,
                                   const SweepOptions& opts);

/// Back-compat entry point: no progress, no straggler sink, no collectors.
std::vector<SweepResult> run_sweep(std::vector<SweepJob> jobs,
                                   unsigned threads = 0);

/// The heartbeat line run_sweep emits (exposed for tests and the sweep
/// daemon's `GET /progress`): single-line JSON, no trailing newline.  `wall`
/// is the sweep's elapsed host time, `cycles_done` the simulated cycles
/// completed so far; ETA extrapolates mean job wall time over the remainder.
/// `cached` counts jobs satisfied from the result store (always 0 when no
/// store is configured).  `seq` is the heartbeat's monotonic sequence
/// number (0-based) so a polling consumer can tell a fresh beat from a
/// re-read.
std::string progress_line(std::size_t done, std::size_t total,
                          selfprof::HostNs wall, Cycle cycles_done,
                          std::size_t cached = 0, std::uint64_t seq = 0);

/// Convenience builder: the full paper grid for one workload — every
/// architecture crossed with the given pressures (CC-NUMA once, since it is
/// pressure-independent).
std::vector<SweepJob> paper_grid(const std::string& workload,
                                 const std::vector<double>& pressures,
                                 const MachineConfig& base = {},
                                 double scale = 1.0);

}  // namespace ascoma::core
