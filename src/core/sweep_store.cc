#include "core/sweep_store.hh"

#include <utility>

namespace ascoma::core {

// ---- MachineConfig ----------------------------------------------------------
// Field order is declaration order in config.hh.  The non-owning sink and
// profiler pointers are excluded: attaching observers never changes results.

void encode_config(store::Encoder& e, const MachineConfig& c) {
  e.begin_section("cfg");
  e.u32(c.nodes);
  e.u32(c.procs_per_node);
  e.u64(c.sibling_transfer_cycles.value());
  e.u64(c.page_bytes.value());
  e.u64(c.block_bytes.value());
  e.u64(c.line_bytes.value());
  e.u64(c.l1_bytes.value());
  e.u64(c.l1_hit_cycles.value());
  e.u64(c.rac_bytes.value());
  e.u64(c.rac_array_cycles.value());
  e.u64(c.bus_occupancy.value());
  e.u32(c.dram_banks);
  e.u64(c.dram_access_cycles.value());
  e.u64(c.dsm_engine_cycles.value());
  e.u64(c.dir_lookup_cycles.value());
  e.u32(c.switch_arity);
  e.u64(c.net_fall_through.value());
  e.u64(c.net_propagation.value());
  e.u64(c.net_interface_cycles.value());
  e.u64(c.net_port_occupancy.value());
  e.u64(c.cost_page_fault.value());
  e.u64(c.cost_interrupt.value());
  e.u64(c.cost_remap.value());
  e.u64(c.cost_flush_line.value());
  e.u64(c.cost_daemon_wakeup.value());
  e.u64(c.cost_daemon_scan_page.value());
  e.u64(c.private_op_cycles.value());
  e.u64(c.lock_op_cycles.value());
  e.u64(c.barrier_cycles.value());
  e.b(c.blocking_stores);
  e.u32(c.store_buffer_entries);
  e.f64(c.free_min_frac);
  e.f64(c.free_target_frac);
  e.u64(c.daemon_period.value());
  e.u32(c.refetch_threshold);
  e.u32(c.threshold_increment);
  e.u32(c.threshold_max);
  e.u32(c.vcnuma_break_even);
  e.f64(c.vcnuma_eval_replacements);
  e.f64(c.daemon_backoff_factor);
  e.u64(c.daemon_period_max.value());
  e.b(c.ascoma_scoma_first);
  e.b(c.ascoma_backoff);
  e.f64(c.memory_pressure);
  e.u8(static_cast<std::uint8_t>(c.arch));
  e.u64(c.sample_every.value());
  e.f64(c.fault_drop);
  e.f64(c.fault_dup);
  e.f64(c.fault_jitter);
  e.u64(c.fault_jitter_cycles.value());
  e.u64(c.fault_seed);
  e.u64(c.retry_timeout.value());
  e.u64(c.retry_backoff_base.value());
  e.u64(c.retry_backoff_max.value());
  e.u32(c.retry_max_attempts);
  e.u64(c.nack_busy_cycles.value());
  e.u64(c.watchdog_cycles.value());
  e.u64(c.seed);
  e.b(c.check_invariants);
  e.end_section();
}

void decode_config(store::Decoder& d, MachineConfig* c) {
  d.begin_section("cfg");
  c->nodes = d.u32();
  c->procs_per_node = d.u32();
  c->sibling_transfer_cycles = Cycles{d.u64()};
  c->page_bytes = ByteCount{d.u64()};
  c->block_bytes = ByteCount{d.u64()};
  c->line_bytes = ByteCount{d.u64()};
  c->l1_bytes = ByteCount{d.u64()};
  c->l1_hit_cycles = Cycles{d.u64()};
  c->rac_bytes = ByteCount{d.u64()};
  c->rac_array_cycles = Cycles{d.u64()};
  c->bus_occupancy = Cycles{d.u64()};
  c->dram_banks = d.u32();
  c->dram_access_cycles = Cycles{d.u64()};
  c->dsm_engine_cycles = Cycles{d.u64()};
  c->dir_lookup_cycles = Cycles{d.u64()};
  c->switch_arity = d.u32();
  c->net_fall_through = Cycles{d.u64()};
  c->net_propagation = Cycles{d.u64()};
  c->net_interface_cycles = Cycles{d.u64()};
  c->net_port_occupancy = Cycles{d.u64()};
  c->cost_page_fault = Cycles{d.u64()};
  c->cost_interrupt = Cycles{d.u64()};
  c->cost_remap = Cycles{d.u64()};
  c->cost_flush_line = Cycles{d.u64()};
  c->cost_daemon_wakeup = Cycles{d.u64()};
  c->cost_daemon_scan_page = Cycles{d.u64()};
  c->private_op_cycles = Cycles{d.u64()};
  c->lock_op_cycles = Cycles{d.u64()};
  c->barrier_cycles = Cycles{d.u64()};
  c->blocking_stores = d.b();
  c->store_buffer_entries = d.u32();
  c->free_min_frac = d.f64();
  c->free_target_frac = d.f64();
  c->daemon_period = Cycles{d.u64()};
  c->refetch_threshold = d.u32();
  c->threshold_increment = d.u32();
  c->threshold_max = d.u32();
  c->vcnuma_break_even = d.u32();
  c->vcnuma_eval_replacements = d.f64();
  c->daemon_backoff_factor = d.f64();
  c->daemon_period_max = Cycles{d.u64()};
  c->ascoma_scoma_first = d.b();
  c->ascoma_backoff = d.b();
  c->memory_pressure = d.f64();
  c->arch = static_cast<ArchModel>(d.u8());
  c->sample_every = Cycles{d.u64()};
  c->fault_drop = d.f64();
  c->fault_dup = d.f64();
  c->fault_jitter = d.f64();
  c->fault_jitter_cycles = Cycles{d.u64()};
  c->fault_seed = d.u64();
  c->retry_timeout = Cycles{d.u64()};
  c->retry_backoff_base = Cycles{d.u64()};
  c->retry_backoff_max = Cycles{d.u64()};
  c->retry_max_attempts = d.u32();
  c->nack_busy_cycles = Cycles{d.u64()};
  c->watchdog_cycles = Cycles{d.u64()};
  c->seed = d.u64();
  c->check_invariants = d.b();
  c->sink = nullptr;
  c->profiler = nullptr;
  c->registry = nullptr;
  d.end_section();
}

// ---- stats ------------------------------------------------------------------

namespace {

void encode_kernel_stats(store::Encoder& e, const KernelStats& k) {
  e.u64(k.page_faults);
  e.u64(k.scoma_allocs);
  e.u64(k.numa_allocs);
  e.u64(k.upgrades);
  e.u64(k.downgrades);
  e.u64(k.relocation_interrupts);
  e.u64(k.lines_flushed);
  e.u64(k.daemon_runs);
  e.u64(k.daemon_pages_scanned);
  e.u64(k.daemon_pages_reclaimed);
  e.u64(k.daemon_reclaim_failures);
  e.u64(k.threshold_raises);
  e.u64(k.threshold_drops);
  e.u64(k.remap_suppressed);
  e.u64(k.refetch_notifications);
  e.u64(k.net_retries);
  e.u64(k.nacks);
}

void decode_kernel_stats(store::Decoder& d, KernelStats* k) {
  k->page_faults = d.u64();
  k->scoma_allocs = d.u64();
  k->numa_allocs = d.u64();
  k->upgrades = d.u64();
  k->downgrades = d.u64();
  k->relocation_interrupts = d.u64();
  k->lines_flushed = d.u64();
  k->daemon_runs = d.u64();
  k->daemon_pages_scanned = d.u64();
  k->daemon_pages_reclaimed = d.u64();
  k->daemon_reclaim_failures = d.u64();
  k->threshold_raises = d.u64();
  k->threshold_drops = d.u64();
  k->remap_suppressed = d.u64();
  k->refetch_notifications = d.u64();
  k->net_retries = d.u64();
  k->nacks = d.u64();
}

}  // namespace

void encode_node_stats(store::Encoder& e, const NodeStats& s) {
  for (const Cycle c : s.time.cycles) e.u64(c.value());
  for (const std::uint64_t m : s.misses.count) e.u64(m);
  encode_kernel_stats(e, s.kernel);
  e.u64(s.shared_loads);
  e.u64(s.shared_stores);
  e.u64(s.l1_hits);
  e.u64(s.upgrades_issued);
  e.u64(s.induced_cold_misses);
  e.u64(s.remote_pages_touched);
}

void decode_node_stats(store::Decoder& d, NodeStats* s) {
  for (Cycle& c : s->time.cycles) c = Cycle{d.u64()};
  for (std::uint64_t& m : s->misses.count) m = d.u64();
  decode_kernel_stats(d, &s->kernel);
  s->shared_loads = d.u64();
  s->shared_stores = d.u64();
  s->l1_hits = d.u64();
  s->upgrades_issued = d.u64();
  s->induced_cold_misses = d.u64();
  s->remote_pages_touched = d.u64();
}

// ---- RunResult --------------------------------------------------------------

void encode_run_result(store::Encoder& e, const RunResult& r) {
  e.begin_section("run");
  encode_node_stats(e, r.stats.totals);
  e.u64(r.stats.parallel_cycles.value());
  e.u32(r.stats.nodes);
  e.u64(r.stats.frames_per_node);
  e.u64(r.stats.home_pages_per_node);
  e.f64(r.stats.memory_pressure);
  e.u64(r.per_node.size());
  for (const NodeStats& s : r.per_node) encode_node_stats(e, s);
  e.u64(r.final_threshold.size());
  for (const std::uint32_t t : r.final_threshold) e.u32(t);
  e.u64(r.relocation_enabled.size());
  for (const std::uint8_t v : r.relocation_enabled) e.u8(v);
  e.u64(r.remote_page_node_pairs);
  e.u64(r.relocated_pairs);
  e.u64(r.lock_acquisitions);
  e.u64(r.contended_locks);
  e.u64(r.barrier_episodes);
  e.u64(r.net_messages);
  e.u64(r.directory_invalidations);
  e.u64(r.directory_forwards);
  e.u64(r.writebacks_local);
  e.u64(r.writebacks_remote);
  e.u64(r.net_retransmits);
  e.u64(r.net_retries);
  e.u64(r.nacks);
  e.u64(r.faults_injected);
  e.b(r.invariants_checked);
  encode_config(e, r.config);
  e.end_section();
}

void decode_run_result(store::Decoder& d, RunResult* r) {
  d.begin_section("run");
  decode_node_stats(d, &r->stats.totals);
  r->stats.parallel_cycles = Cycle{d.u64()};
  r->stats.nodes = d.u32();
  r->stats.frames_per_node = d.u64();
  r->stats.home_pages_per_node = d.u64();
  r->stats.memory_pressure = d.f64();
  r->per_node.resize(d.u64());
  for (NodeStats& s : r->per_node) decode_node_stats(d, &s);
  r->final_threshold.resize(d.u64());
  for (std::uint32_t& t : r->final_threshold) t = d.u32();
  r->relocation_enabled.resize(d.u64());
  for (std::uint8_t& v : r->relocation_enabled) v = d.u8();
  r->remote_page_node_pairs = d.u64();
  r->relocated_pairs = d.u64();
  r->lock_acquisitions = d.u64();
  r->contended_locks = d.u64();
  r->barrier_episodes = d.u64();
  r->net_messages = d.u64();
  r->directory_invalidations = d.u64();
  r->directory_forwards = d.u64();
  r->writebacks_local = d.u64();
  r->writebacks_remote = d.u64();
  r->net_retransmits = d.u64();
  r->net_retries = d.u64();
  r->nacks = d.u64();
  r->faults_injected = d.u64();
  r->invariants_checked = d.b();
  decode_config(d, &r->config);
  d.end_section();
}

// ---- SweepResult ------------------------------------------------------------

void encode_sweep_result(store::Encoder& e, const SweepResult& sr) {
  e.begin_section("sres");
  e.u32(kStoreFormatVersion);
  encode_run_result(e, sr.result);
  e.u64(sr.timing.wall.value());
  e.u64(sr.timing.peak_rss_bytes);
  e.u64(sr.timing.allocs);
  e.b(sr.timing.straggler);
  e.end_section();
}

void decode_sweep_result(store::Decoder& d, SweepResult* sr) {
  d.begin_section("sres");
  if (d.u32() != kStoreFormatVersion)
    throw store::CodecError("sweep result format version mismatch");
  decode_run_result(d, &sr->result);
  sr->timing.wall = selfprof::HostNs{d.u64()};
  sr->timing.peak_rss_bytes = d.u64();
  sr->timing.allocs = d.u64();
  sr->timing.straggler = d.b();
  d.end_section();
}

// ---- content addressing -----------------------------------------------------

namespace {

constexpr std::uint64_t kSaltHi = 0x41'53'43'4F'4D'41'48'49ull;  // "ASCOMAHI"
constexpr std::uint64_t kSaltLo = 0x41'53'43'4F'4D'41'4C'4Full;  // "ASCOMALO"

Fingerprint fingerprint_of(const std::vector<std::uint8_t>& bytes) {
  Fingerprint fp;
  fp.hi = store::fnv1a64(bytes.data(), bytes.size(),
                         store::kFnvBasis ^ kSaltHi);
  fp.lo = store::fnv1a64(bytes.data(), bytes.size(),
                         store::kFnvBasis ^ kSaltLo);
  return fp;
}

}  // namespace

std::string Fingerprint::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i)
    out[static_cast<std::size_t>(15 - i)] = digits[(hi >> (4 * i)) & 0xF];
  for (int i = 0; i < 16; ++i)
    out[static_cast<std::size_t>(31 - i)] = digits[(lo >> (4 * i)) & 0xF];
  return out;
}

Fingerprint job_fingerprint(const SweepJob& job) {
  store::Encoder e;
  e.u32(kStoreFormatVersion);
  e.str(job.label);
  e.str(job.workload);
  e.f64(job.workload_scale);
  encode_config(e, job.config);
  return fingerprint_of(e.bytes());
}

Fingerprint machine_fingerprint(const MachineConfig& cfg,
                                const std::string& workload_name,
                                std::uint64_t total_pages,
                                std::uint32_t processes) {
  store::Encoder e;
  e.u32(kStoreFormatVersion);
  e.str(workload_name);
  e.u64(total_pages);
  e.u32(processes);
  encode_config(e, cfg);
  return fingerprint_of(e.bytes());
}

}  // namespace ascoma::core
