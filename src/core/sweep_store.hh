#pragma once

// Durable-sweep serialization (ARCHITECTURE.md §15): the canonical byte
// representations that make sweep results content-addressable.
//
// A SweepJob's identity is everything that determines its RunResult: the
// store format version, the job label, workload name and scale, and the full
// MachineConfig (minus the non-owning sink/profiler pointers, which never
// change results).  job_fingerprint() folds the canonical encoding into a
// 128-bit salted FNV pair whose hex spelling names the job's record file in
// a ResultStore.  encode_sweep_result()/decode_sweep_result() round-trip the
// completed result so a resumed sweep reproduces the exact result vector —
// and therefore a byte-identical CSV — without re-simulating cache hits.
//
// Every encode_* has its decode_* immediately after it (the lint pairing
// rule): a field added to one side without the other fails review and, at
// runtime, the section length check.

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "core/machine.hh"
#include "core/sweep.hh"
#include "store/codec.hh"

namespace ascoma::core {

/// Bumped whenever any canonical encoding below changes shape.  Part of the
/// fingerprint, so old store records simply never match and are left alone.
inline constexpr std::uint32_t kStoreFormatVersion = 1;

// ---- canonical encodings ----------------------------------------------------

void encode_config(store::Encoder& e, const MachineConfig& c);
void decode_config(store::Decoder& d, MachineConfig* c);

void encode_node_stats(store::Encoder& e, const NodeStats& s);
void decode_node_stats(store::Decoder& d, NodeStats* s);

void encode_run_result(store::Encoder& e, const RunResult& r);
void decode_run_result(store::Decoder& d, RunResult* r);

void encode_sweep_result(store::Encoder& e, const SweepResult& sr);
/// Restores result + timing; `job` and `selfprof` are not stored (the caller
/// owns the job, and collector trees are observability, not results).
void decode_sweep_result(store::Decoder& d, SweepResult* sr);

// ---- content addressing -----------------------------------------------------

/// 128-bit content hash: two salted FNV-1a 64 passes over the same canonical
/// bytes.  hex() is the record's file stem in a store::ResultStore.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  std::string hex() const;
  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// Content address of one sweep job (see file comment for what it covers).
Fingerprint job_fingerprint(const SweepJob& job);

/// Fingerprint of a machine's identity (config + workload shape); stamped
/// into snapshots so a checkpoint can only restore into a machine built the
/// same way.
Fingerprint machine_fingerprint(const MachineConfig& cfg,
                                const std::string& workload_name,
                                std::uint64_t total_pages,
                                std::uint32_t processes);

}  // namespace ascoma::core
