#pragma once

// SweepStatusBoard — the shared per-job status table behind obsd's
// `GET /jobs` and `GET /jobs/<fingerprint>` endpoints.
//
// run_sweep owns one board per served sweep: workers mark jobs running /
// finished under the board's mutex, the heartbeat thread parks its latest
// progress line here (promoting the stderr heartbeat to `GET /progress`),
// and the serve thread renders JSON snapshots on demand.  Renderers copy
// a consistent snapshot of the table under the mutex and format it after
// dropping it (lint_concurrency rule C4: no string building under a held
// lock), and every caller-supplied string (labels, workload names) passes
// through obs::json_escape on the way out.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.hh"
#include "core/sweep.hh"

namespace ascoma::core {

/// One job's live row on the board.
struct JobStatus {
  enum class State : std::uint8_t {
    kPending,   ///< not yet claimed by a worker
    kRunning,   ///< simulate() in flight
    kDone,      ///< simulated to completion
    kCached,    ///< satisfied from the result store
    kFailed,    ///< the job threw (the sweep rethrows after joining)
  };

  State state = State::kPending;
  std::string label;
  std::string workload;
  std::string arch;
  double pressure = 0.0;
  std::string fingerprint;          ///< content-hash hex (store identity)
  selfprof::HostNs started{0};      ///< sweep-relative claim time
  selfprof::HostNs finished{0};     ///< sweep-relative completion time
  SweepTiming timing;               ///< valid once finished
  std::uint64_t sim_cycles = 0;
  std::uint64_t accesses = 0;
  /// Selfprof attribution summary (site name -> inclusive ns), present only
  /// when the sweep collected and the job simulated.
  std::vector<std::pair<std::string, std::uint64_t>> selfprof_ns;
};

const char* to_string(JobStatus::State s);

class SweepStatusBoard {
 public:
  /// (Re)populate the board: one pending row per job, in job order.
  /// `fingerprints` must be parallel to `jobs`.
  void reset(const std::vector<SweepJob>& jobs,
             const std::vector<std::string>& fingerprints)
      ASCOMA_EXCLUDES(mu_);

  void mark_running(std::size_t i, selfprof::HostNs since_sweep_start)
      ASCOMA_EXCLUDES(mu_);
  /// `state` is kDone, kCached, or kFailed.
  void mark_finished(std::size_t i, JobStatus::State state,
                     const SweepResult& r,
                     selfprof::HostNs since_sweep_start)
      ASCOMA_EXCLUDES(mu_);
  /// Post-hoc straggler flag (the straggler pass runs after all jobs join).
  void mark_straggler(std::size_t i) ASCOMA_EXCLUDES(mu_);

  /// Park the newest heartbeat line (single-line JSON, no newline).
  void set_progress(std::string line) ASCOMA_EXCLUDES(mu_);
  /// The parked heartbeat, or a minimal `{"sweep":"progress",...}` stub
  /// before the first beat.  Always single-line JSON plus '\n'.
  std::string progress_json() const ASCOMA_EXCLUDES(mu_);

  /// `GET /jobs`: a JSON object with sweep totals and one summary row per
  /// job.
  std::string jobs_json() const ASCOMA_EXCLUDES(mu_);

  /// `GET /jobs/<fp>`: the full row whose fingerprint equals `key` or
  /// starts with it (unique prefix), or whose decimal job index is `key`.
  /// Empty string when there is no (unique) match.
  std::string job_json(std::string_view key) const ASCOMA_EXCLUDES(mu_);

  std::size_t size() const ASCOMA_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<JobStatus> jobs_ ASCOMA_GUARDED_BY(mu_);
  std::string progress_ ASCOMA_GUARDED_BY(mu_);
};

}  // namespace ascoma::core
