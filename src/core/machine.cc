#include "core/machine.hh"

#include <algorithm>

#include "common/check.hh"

namespace ascoma::core {

namespace {

std::uint64_t div_ceil(std::uint64_t a, double b) {
  return static_cast<std::uint64_t>(static_cast<double>(a) / b + 0.999999);
}

}  // namespace

// Adapts Machine::evict_scoma_page to the pageout daemon's handler interface,
// accumulating the kernel cycles evictions cost.  `proc` is the processor on
// whose behalf the daemon runs (its node owns the pages; its stats pay).
class Machine::Evictor final : public vm::EvictionHandler {
 public:
  Evictor(Machine* m, std::uint32_t proc, Cycle now, Cycle* cost)
      : m_(m), proc_(proc), now_(now), cost_(cost) {}
  bool evict(VPageId page) override {
    *cost_ += m_->evict_scoma_page(proc_, page, now_ + *cost_);
    return true;
  }

 private:
  Machine* m_;
  std::uint32_t proc_;
  Cycle now_;
  Cycle* cost_;
};

Machine::Machine(MachineConfig cfg, const workload::Workload& workload)
    : cfg_([&] {
        cfg.nodes = workload.nodes();
        ASCOMA_CHECK_MSG(workload.processes() % workload.nodes() == 0,
                         "process count must be a multiple of node count");
        cfg.procs_per_node = workload.processes() / workload.nodes();
        return cfg;
      }()),
      wl_(workload),
      homes_(workload.total_pages(), workload.nodes()),
      sched_(cfg_.total_procs()),
      barrier_(cfg_.total_procs(), cfg_.barrier_cycles),
      locks_(cfg_.lock_op_cycles) {
  const std::string err = cfg_.validate();
  ASCOMA_CHECK_MSG(err.empty(), "invalid MachineConfig: " << err);
  ASCOMA_CHECK_MSG(cfg_.page_bytes == wl_.page_bytes() &&
                       cfg_.line_bytes == wl_.line_bytes(),
                   "workload/config granularity mismatch");

  // Home assignment: the workload's declared layout (equivalent to the
  // paper's capped first-touch for these SPMD programs).
  for (VPageId p{0}; p.value() < wl_.total_pages(); ++p)
    homes_.claim(p, wl_.home_of(p));

  // Memory pressure P => each node has ceil(home_pages / P) frames, of which
  // the home pages are pinned and the remainder forms the page cache.
  frames_per_node_ = div_ceil(homes_.max_home_pages(), cfg_.memory_pressure);

  cmem_ = std::make_unique<proto::CoherentMemory>(cfg_, homes_);

  std::vector<const vm::PageTable*> table_ptrs;
  for (NodeId n{0}; n.value() < cfg_.nodes; ++n) {
    page_tables_.push_back(
        std::make_unique<vm::PageTable>(wl_.total_pages()));
    const std::uint64_t home_n = homes_.home_pages(n);
    ASCOMA_CHECK_MSG(frames_per_node_ >= home_n,
                     "memory pressure leaves no room for home pages");
    const auto capacity =
        static_cast<std::uint32_t>(frames_per_node_ - home_n);
    page_caches_.push_back(std::make_unique<vm::PageCache>(capacity));
    page_caches_.back()->reserve_pages(wl_.total_pages());

    auto free_min = static_cast<std::uint32_t>(
        static_cast<double>(frames_per_node_) * cfg_.free_min_frac);
    auto free_target = static_cast<std::uint32_t>(
        static_cast<double>(frames_per_node_) * cfg_.free_target_frac);
    // Keep the watermarks meaningful for small page caches.
    const std::uint32_t target_cap = std::max<std::uint32_t>(
        capacity == 0 ? 0 : 1, capacity * 2 / 3);
    free_target = std::min(std::max<std::uint32_t>(free_target, 1),
                           target_cap);
    free_min = std::min(std::max<std::uint32_t>(free_min, 1), free_target);
    if (capacity == 0) {
      free_min = 0;
      free_target = 0;
    }
    daemons_.push_back(
        std::make_unique<vm::PageoutDaemon>(free_min, free_target));

    policies_.push_back(arch::make_policy(cfg_));
    policies_.back()->reserve_pages(wl_.total_pages());
    if (cfg_.arch == ArchModel::kScoma) {
      ASCOMA_CHECK_MSG(capacity >= 1,
                       "pure S-COMA needs at least one page-cache frame");
    }

    // Home pages are mapped up front (before the measured parallel phase).
    for (VPageId p{0}; p.value() < wl_.total_pages(); ++p)
      if (homes_.home_of(p) == n) page_tables_[n]->map_home(p);

    table_ptrs.push_back(page_tables_[n].get());
  }
  cmem_->set_page_tables(table_ptrs);

  sink_ = cfg_.sink;
  sampler_ = obs::Sampler(cfg_.sample_every);
  cmem_->set_sink(sink_);
  install_profiler(cfg_.profiler);

  registry_ = cfg_.registry;
  if (registry_ != nullptr) {
    for (NodeId n{0}; n.value() < cfg_.nodes; ++n) {
      const std::vector<obs::Label> labels{
          {"node", std::to_string(n.value())}};
      NodeGauges g;
      g.free_frames = &registry_->gauge(
          "ascoma_node_free_frames",
          "Free page-cache frames per node (live sample)", labels);
      g.threshold = &registry_->gauge(
          "ascoma_node_threshold",
          "Adaptive replacement back-off threshold per node (live sample)",
          labels);
      g.cache_active = &registry_->gauge(
          "ascoma_node_cache_active_pages",
          "Active S-COMA page-cache pages per node (live sample)", labels);
      g.remote_misses = &registry_->gauge(
          "ascoma_node_remote_misses",
          "Cumulative remote misses per node of the sampled job (live sample)",
          labels);
      node_gauges_.push_back(g);
    }
  }

  node_stats_.assign(cfg_.total_procs(), NodeStats{});
  if (!cfg_.blocking_stores) {
    store_buffer_.assign(cfg_.total_procs(),
                         std::vector<Cycle>(cfg_.store_buffer_entries,
                                            Cycle{0}));
  }
  daemon_period_.assign(cfg_.nodes, cfg_.daemon_period);
  next_daemon_.assign(cfg_.nodes, cfg_.daemon_period);
  waiting_in_barrier_.assign(cfg_.total_procs(), 0);
  // Sized here (not in run()) so a pre-run snapshot has the same shape as a
  // mid-run one.
  ops_consumed_.assign(cfg_.total_procs(), 0);
}

Machine::~Machine() = default;

void Machine::install_sink(obs::EventSink* sink, Cycle sample_every) {
  ASCOMA_CHECK_MSG(!ran_, "install_sink must precede run()");
  sink_ = sink;
  cmem_->set_sink(sink);
  if (sample_every > Cycle{0}) sampler_ = obs::Sampler(sample_every);
  if (sink_ && prof_) sink_->set_observer(prof_);
}

void Machine::install_profiler(prof::Profiler* profiler) {
  ASCOMA_CHECK_MSG(!ran_, "install_profiler must precede run()");
  prof_ = profiler;
  cmem_->set_profiler(profiler);
  if (sink_) sink_->set_observer(profiler);
}

void Machine::take_samples(Cycle cycle) {
  const selfprof::SelfScope sps(selfprof::HostSite::kObsEmit);
  for (NodeId n{0}; n.value() < cfg_.nodes; ++n) {
    obs::Sample s;
    s.cycle = cycle;
    s.node = n;
    s.free_frames = page_caches_[n]->free_frames();
    s.threshold = policies_[n]->threshold();
    s.cache_active = page_caches_[n]->active_pages();
    for (std::uint32_t p = n.value() * cfg_.procs_per_node;
         p < (n.value() + 1) * cfg_.procs_per_node; ++p)
      s.remote_misses += node_stats_[p].misses.remote();
    if (sink_ != nullptr) sink_->add_sample(s);
    if (registry_ != nullptr) {
      const NodeGauges& g = node_gauges_[n.value()];
      g.free_frames->set(s.free_frames);
      g.threshold->set(s.threshold);
      g.cache_active->set(s.cache_active);
      g.remote_misses->set(s.remote_misses);
    }
  }
}

arch::PolicyEnv Machine::env(std::uint32_t proc, Cycle now) {
  const NodeId n = node_of(proc);
  return arch::PolicyEnv{cfg_,
                         n,
                         *page_caches_[n],
                         node_stats_[proc].kernel,
                         daemon_period_[n],
                         now,
                         sink_};
}

VPageId Machine::force_select_victim(NodeId node) {
  const selfprof::SelfScope sps(selfprof::HostSite::kTableWalk);
  vm::PageCache& cache = *page_caches_[node];
  vm::PageTable& pt = *page_tables_[node];
  ASCOMA_CHECK_MSG(cache.active_pages() > 0, "no S-COMA page to evict");
  std::optional<VPageId> fallback;
  const std::uint32_t limit = 2 * cache.active_pages();
  for (std::uint32_t i = 0; i < limit; ++i) {
    const auto cand = cache.rotate();
    if (!cand) break;
    if (!fallback) fallback = *cand;
    if (pt.ref_bit(*cand)) {
      pt.clear_ref_bit(*cand);
      continue;
    }
    return *cand;
  }
  return *fallback;  // every page is hot: replace the oldest anyway
}

Cycle Machine::evict_scoma_page(std::uint32_t proc, VPageId victim,
                                Cycle now) {
  const selfprof::SelfScope sps(selfprof::HostSite::kVmKernel);
  const NodeId node = node_of(proc);
  vm::PageTable& pt = *page_tables_[node];
  vm::PageCache& cache = *page_caches_[node];
  KernelStats& k = node_stats_[proc].kernel;

  const auto fo = cmem_->flush_page(node, victim, now);
  const Cycle cost =
      cfg_.cost_remap + fo.l1_valid_lines * cfg_.cost_flush_line;
  k.lines_flushed += fo.l1_valid_lines;

  FrameId frame;
  if (cfg_.arch == ArchModel::kScoma) {
    // Pure S-COMA has no CC-NUMA mode to fall back to: fully unmap, the
    // next touch faults again.
    frame = pt.frame(victim);
    pt.unmap(victim);
  } else {
    frame = pt.downgrade_to_numa(victim);
  }
  cache.remove_active(victim);
  cache.release(frame);
  ++k.downgrades;
  note(obs::EventKind::kDowngrade, now + cost, node, victim);

  auto e = env(proc, now + cost);
  policies_[node]->on_replacement(e, victim);
  return cost;
}

std::pair<Cycle, Cycle> Machine::handle_fault(std::uint32_t proc,
                                              VPageId page, Cycle now) {
  const selfprof::SelfScope sps(selfprof::HostSite::kVmFault);
  const NodeId node = node_of(proc);
  vm::PageTable& pt = *page_tables_[node];
  vm::PageCache& cache = *page_caches_[node];
  KernelStats& k = node_stats_[proc].kernel;
  ASCOMA_CHECK_MSG(homes_.home_of(page) != node,
                   "home pages are premapped; fault must be remote");

  auto e = env(proc, now);
  const PageMode mode = policies_[node]->initial_mode(e);
  const Cycle base = cfg_.cost_page_fault;
  Cycle overhead{0};

  note(obs::EventKind::kPageFault, now, node, page);
  if (mode == PageMode::kNuma) {
    pt.map_numa(page);
    ++k.numa_allocs;
    note(obs::EventKind::kNumaAlloc, now + base, node, page);
  } else {
    auto frame = cache.alloc();
    if (!frame) {
      // Mandatory replacement (pure S-COMA at drained pool).
      const VPageId victim = force_select_victim(node);
      overhead += evict_scoma_page(proc, victim, now + base);
      frame = cache.alloc();
      ASCOMA_CHECK(frame.has_value());
    }
    pt.map_scoma(page, *frame);
    cache.add_active(page);
    ++k.scoma_allocs;
    note(obs::EventKind::kScomaAlloc, now + base + overhead, node, page);
  }
  ++k.page_faults;
  return {base, overhead};
}

Cycle Machine::run_daemon(std::uint32_t proc, Cycle now) {
  const selfprof::SelfScope sps(selfprof::HostSite::kVmKernel);
  const NodeId node = node_of(proc);
  if (!policies_[node]->runs_daemon()) return Cycle{0};
  vm::PageCache& cache = *page_caches_[node];
  vm::PageTable& pt = *page_tables_[node];
  KernelStats& k = node_stats_[proc].kernel;

  ++k.daemon_runs;
  Cycle cost = cfg_.cost_daemon_wakeup;
  Evictor handler(this, proc, now, &cost);
  const vm::DaemonResult r = daemons_[node]->run(cache, pt, handler);
  cost += r.scanned * cfg_.cost_daemon_scan_page;
  k.daemon_pages_scanned += r.scanned;
  k.daemon_pages_reclaimed += r.reclaimed;
  if (!r.met_target) ++k.daemon_reclaim_failures;
  note(obs::EventKind::kDaemonRun, now, node, kInvalidPage, r.scanned,
       r.reclaimed, r.met_target ? 1 : 0);

  auto e = env(proc, now + cost);
  policies_[node]->on_daemon_result(e, r);
  return cost;
}

Cycle Machine::maybe_run_daemon(std::uint32_t proc, Cycle now) {
  const NodeId node = node_of(proc);
  if (!policies_[node]->runs_daemon()) return Cycle{0};
  if (now < next_daemon_[node]) return Cycle{0};
  if (!daemons_[node]->should_run(*page_caches_[node])) {
    next_daemon_[node] = now + daemon_period_[node];
    return Cycle{0};
  }
  const Cycle cost = run_daemon(proc, now);
  next_daemon_[node] = now + cost + daemon_period_[node];
  return cost;
}

Cycle Machine::handle_relocation(std::uint32_t proc, VPageId page,
                                 Cycle now) {
  const selfprof::SelfScope sps(selfprof::HostSite::kVmKernel);
  const NodeId node = node_of(proc);
  vm::PageTable& pt = *page_tables_[node];
  vm::PageCache& cache = *page_caches_[node];
  KernelStats& k = node_stats_[proc].kernel;

  ++k.relocation_interrupts;
  note(obs::EventKind::kRelocInterrupt, now, node, page);
  Cycle cost = cfg_.cost_interrupt;

  auto frame = cache.alloc();
  if (!frame) {
    // On-demand reclamation, rate-limited: if the daemon ran too recently
    // the pool stays empty and the remap is suppressed (AS-COMA) or a
    // victim is forced (R-NUMA/VC-NUMA).
    cost += maybe_run_daemon(proc, now + cost);
    frame = cache.alloc();
  }
  if (!frame) {
    if (policies_[node]->force_eviction_on_upgrade() &&
        cache.active_pages() > 0) {
      const VPageId victim = force_select_victim(node);
      cost += evict_scoma_page(proc, victim, now + cost);
      frame = cache.alloc();
      ASCOMA_CHECK(frame.has_value());
    } else {
      // AS-COMA under back-off: leave the page in CC-NUMA mode.  The
      // directory counter resets with the fired interrupt, so the page must
      // re-earn a (possibly raised) threshold before interrupting again.
      ++k.remap_suppressed;
      note(obs::EventKind::kRemapSuppressed, now + cost, node, page);
      cmem_->refetch().reset(page, node);
      auto e = env(proc, now + cost);
      policies_[node]->on_remap_suppressed(e);
      return cost;
    }
  }

  // Upgrade: the page's current cached contents must be flushed (the source
  // of the induced cold misses the paper highlights).
  const auto fo = cmem_->flush_page(node, page, now + cost);
  cost += cfg_.cost_remap + fo.l1_valid_lines * cfg_.cost_flush_line;
  k.lines_flushed += fo.l1_valid_lines;

  pt.upgrade_to_scoma(page, *frame);
  cache.add_active(page);
  ++k.upgrades;
  note(obs::EventKind::kUpgrade, now + cost, node, page);
  return cost;
}

void Machine::release_barrier(Cycle release) {
  // Barrier episodes are machine-global; they ride on node 0's track.
  note(obs::EventKind::kBarrierRelease, release, NodeId{0}, kInvalidPage,
       barrier_.episodes());
  for (std::uint32_t q = 0; q < cfg_.total_procs(); ++q) {
    if (!waiting_in_barrier_[q]) continue;
    waiting_in_barrier_[q] = 0;
    node_stats_[q].time[TimeBucket::kSync] +=
        release - barrier_.arrival_of(q);
    sched_.set_ready(q, release);
  }
}

void Machine::execute_op(std::uint32_t p, const Op& op) {
  const NodeId node = node_of(p);
  const Cycle now = sched_.ready_at(p);
  NodeStats& s = node_stats_[p];

  switch (op.kind) {
    case OpKind::kCompute:
      s.time[TimeBucket::kUserInstr] += Cycle{op.arg};
      sched_.set_ready(p, now + Cycle{op.arg});
      return;

    case OpKind::kPrivate: {
      const Cycle c = op.arg * cfg_.private_op_cycles;
      s.time[TimeBucket::kUserLocal] += c;
      sched_.set_ready(p, now + c);
      return;
    }

    case OpKind::kLoad:
    case OpKind::kStore: {
      const bool is_store = op.kind == OpKind::kStore;
      const Addr addr{op.arg};
      const VPageId page = cfg_.page_of(addr);
      ASCOMA_CHECK(page.value() < wl_.total_pages());
      if (is_store)
        ++s.shared_stores;
      else
        ++s.shared_loads;

      vm::PageTable& pt = *page_tables_[node];
      // Profile every blocking demand access; store-buffer drains are
      // background traffic and stay out of the latency histograms.
      const bool buffered_store = is_store && !cfg_.blocking_stores;
      const bool profiled = prof_ != nullptr && !buffered_store;
      if (profiled) prof_->begin_access(now);
      Cycle t = now;
      if (pt.mode(page) == PageMode::kUnmapped) {
        const auto [base, ovhd] = handle_fault(p, page, t);
        s.time[TimeBucket::kKernelBase] += base;
        s.time[TimeBucket::kKernelOvhd] += ovhd;
        if (profiled) {
          prof_->add(prof::Component::kVmFault, base);
          prof_->add(prof::Component::kVmKernel, ovhd);
        }
        t += base + ovhd;
      }
      if (pt.mode(page) == PageMode::kScoma) pt.set_ref_bit(page);

      const auto o = cmem_->access(p, addr, is_store, t, buffered_store);
      Cycle ready;
      if (buffered_store && !(o.l1_hit && !o.remote)) {
        // Retire into the store buffer: the memory transaction proceeds in
        // the background; the processor stalls only while the buffer is
        // full.  (Processor-consistency extension; see MachineConfig.)
        auto& sb = store_buffer_[p];
        auto slot = std::min_element(sb.begin(), sb.end());
        const Cycle issue = std::max(t, *slot);
        *slot = std::max(o.done, issue);
        const Cycle stall = (issue - t) + cfg_.l1_hit_cycles;
        s.time[TimeBucket::kUserShared] += stall;
        ready = t + stall;
      } else {
        s.time[TimeBucket::kUserShared] += o.done - t;
        ready = o.done;
      }

      s.kernel.net_retries += o.retries;
      s.kernel.nacks += o.nacks;
      if (o.counted_miss) {
        ++s.misses[o.source];
        if (o.induced_cold) ++s.induced_cold_misses;
        if (o.source == MissSource::kScoma)
          policies_[node]->on_page_cache_hit(page);
      } else {
        ++s.l1_hits;
        if (o.remote) ++s.upgrades_issued;
      }

      bool relocated = false;
      if (o.counted_refetch && pt.mode(page) == PageMode::kNuma) {
        auto e = env(p, ready);
        if (policies_[node]->should_relocate(e, page,
                                             o.page_refetch_count)) {
          ++s.kernel.refetch_notifications;
          const Cycle c = handle_relocation(p, page, ready);
          s.time[TimeBucket::kKernelOvhd] += c;
          if (profiled) prof_->add(prof::Component::kVmKernel, c);
          ready += c;
          relocated = true;
        }
      }
      if (profiled) {
        prof::AccessClass cls;
        if (relocated) {
          cls = prof::AccessClass::kUpgradeRefetch;
        } else if (o.l1_hit) {
          cls = o.upgrade ? prof::AccessClass::kOwnership
                          : prof::AccessClass::kL1Hit;
        } else {
          switch (o.source) {
            case MissSource::kHome:
              cls = prof::AccessClass::kLocalHome;
              break;
            case MissSource::kScoma:
              cls = prof::AccessClass::kScomaHit;
              break;
            case MissSource::kRac:
              cls = prof::AccessClass::kRacHit;
              break;
            case MissSource::kCold:
              cls = prof::AccessClass::kRemoteCold;
              break;
            case MissSource::kCoherence:
              cls = prof::AccessClass::kRemoteCoherence;
              break;
            case MissSource::kConfCapc:
            default:
              cls = prof::AccessClass::kRemoteRefetch;
              break;
          }
        }
        prof_->end_access(cls, page, ready - now, o.remote,
                          o.counted_refetch);
      }
      sched_.set_ready(p, ready);
      return;
    }

    case OpKind::kBarrier: {
      const auto release = barrier_.arrive(p, now);
      if (release) {
        release_barrier(*release);
        s.time[TimeBucket::kSync] += *release - now;
        sched_.set_ready(p, *release);
      } else {
        waiting_in_barrier_[p] = 1;
        sched_.block(p);
      }
      return;
    }

    case OpKind::kLock: {
      const auto grant = locks_.acquire(op.arg, p, now);
      if (grant) {
        s.time[TimeBucket::kSync] += *grant - now;
        sched_.set_ready(p, *grant);
      } else {
        sched_.block(p);  // resumed by the holder's unlock
      }
      return;
    }

    case OpKind::kUnlock: {
      const auto grant = locks_.release(op.arg, p, now);
      s.time[TimeBucket::kSync] += cfg_.lock_op_cycles;
      sched_.set_ready(p, now + cfg_.lock_op_cycles);
      if (grant) {
        node_stats_[grant->proc].time[TimeBucket::kSync] +=
            grant->grant_cycle - grant->enqueue_cycle;
        sched_.set_ready(grant->proc, grant->grant_cycle);
      }
      return;
    }

    case OpKind::kEnd: {
      sched_.finish(p);
      const auto release = barrier_.depart(p, now);
      if (release) release_barrier(*release);
      return;
    }
  }
  ASCOMA_CHECK_MSG(false, "unhandled op kind");
}

RunResult Machine::run() {
  ASCOMA_CHECK_MSG(!ran_, "Machine::run() is single-shot");
  ran_ = true;
  if (prof_)
    prof_->set_meta(wl_.name(), to_string(cfg_.arch), cfg_.memory_pressure,
                    cfg_.seed);

  if (!resumed_) {
    streams_.clear();
    // Workloads receive the workload stream of the top-level seed (the
    // identity mapping, by definition) and split per-proc internally; the
    // fault layer draws from its own component_seed stream.
    const std::uint64_t wl_seed =
        cfg_.component_seed(MachineConfig::kSeedStreamWorkload);
    for (std::uint32_t p = 0; p < cfg_.total_procs(); ++p)
      streams_.push_back(wl_.stream(p, wl_seed));
    ops_consumed_.assign(cfg_.total_procs(), 0);
  }

  while (!sched_.all_done()) {
    const std::uint32_t p = [this] {
      const selfprof::SelfScope sps(selfprof::HostSite::kSchedPick);
      return sched_.pick();
    }();
    const Cycle now = sched_.ready_at(p);

    // Gauge sampling: the global clock (min ready cycle) just crossed a
    // sample boundary.  One catch-up sample per crossing, stamped at the
    // boundary the clock passed.
    if ((sink_ != nullptr || registry_ != nullptr) && sampler_.due(now)) {
      take_samples(sampler_.boundary());
      sampler_.advance(now);
    }

    // Periodic checkpoint.  Taken at the top of an iteration so the snapshot
    // always captures a machine between operations, never mid-transaction.
    if (checkpoint_every_ > Cycle{0} && now >= next_checkpoint_) {
      store::Snapshot snap;
      save(&snap);
      if (checkpoint_self_check_) self_check_snapshot(snap);
      if (checkpoint_cb_) checkpoint_cb_(snap, now);
      while (next_checkpoint_ <= now) next_checkpoint_ += checkpoint_every_;
    }

    // Demand-driven, rate-limited pageout-daemon tick for this node.
    if (const Cycle c = maybe_run_daemon(p, now); c > Cycle{0}) {
      node_stats_[p].time[TimeBucket::kKernelOvhd] += c;
      sched_.set_ready(p, now + c);
      continue;
    }

    const Op op = streams_[p]->next();
    ++ops_consumed_[p];
    execute_op(p, op);
    if (sched_.is_done(p)) end_cycle_ = std::max(end_cycle_, now);
  }

  bool invariants_checked = false;
  if (cfg_.check_invariants) {
    cmem_->audit();
    const fault::InvariantReport rep = invariant_report();
    ASCOMA_CHECK_MSG(rep.ok(), rep.to_string());
    invariants_checked = true;
  }

  // Close the time series with the end-of-run state so the last row of the
  // metrics export agrees with RunResult::final_threshold and friends.
  if ((sink_ != nullptr || registry_ != nullptr) && sampler_.enabled())
    take_samples(end_cycle_);
  if (prof_) prof_->set_run_cycles(end_cycle_);

  RunResult r;
  r.config = cfg_;
  r.per_node = node_stats_;  // one entry per processor
  for (std::uint32_t p = 0; p < cfg_.total_procs(); ++p) {
    // Node-level censuses are attributed to the node's first processor so
    // machine-wide sums remain correct.
    if (p % cfg_.procs_per_node == 0) {
      const NodeId n = node_of(p);
      r.per_node[p].remote_pages_touched = cmem_->remote_pages_touched(n);
      r.remote_page_node_pairs += cmem_->remote_pages_touched(n);
    }
    r.stats.totals.add(r.per_node[p]);
  }
  for (NodeId n{0}; n.value() < cfg_.nodes; ++n) {
    r.final_threshold.push_back(policies_[n]->threshold());
    r.relocation_enabled.push_back(policies_[n]->relocation_enabled() ? 1
                                                                      : 0);
  }
  r.stats.parallel_cycles = end_cycle_;
  r.stats.nodes = cfg_.nodes;
  r.stats.frames_per_node = frames_per_node_;
  r.stats.home_pages_per_node = homes_.max_home_pages();
  r.stats.memory_pressure = cfg_.memory_pressure;
  r.relocated_pairs = cmem_->refetch().pairs_at_least(cfg_.refetch_threshold);
  r.lock_acquisitions = locks_.acquisitions();
  r.contended_locks = locks_.contended_acquisitions();
  r.barrier_episodes = barrier_.episodes();
  r.net_messages = cmem_->network().messages();
  r.directory_invalidations = cmem_->directory().invalidations_sent();
  r.directory_forwards = cmem_->directory().forwards();
  r.writebacks_local = cmem_->writebacks_local();
  r.writebacks_remote = cmem_->writebacks_remote();
  r.net_retransmits = cmem_->network().retransmits();
  r.net_retries = cmem_->net_retries();
  r.nacks = cmem_->nacks_received();
  r.faults_injected = cmem_->fault_plan().injected();
  r.invariants_checked = invariants_checked;
  return r;
}

fault::InvariantReport Machine::invariant_report() const {
  const selfprof::SelfScope sps(selfprof::HostSite::kTableWalk);
  std::vector<const vm::PageTable*> tables;
  std::vector<const vm::PageCache*> caches;
  for (NodeId n{0}; n.value() < cfg_.nodes; ++n) {
    tables.push_back(page_tables_[n].get());
    caches.push_back(page_caches_[n].get());
  }
  return fault::check_coherence_invariants(*cmem_, tables, caches);
}

RunResult simulate(const MachineConfig& cfg, const workload::Workload& wl) {
  Machine m(cfg, wl);
  return m.run();
}

}  // namespace ascoma::core
