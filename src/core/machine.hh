#pragma once

// core::Machine — the top of the stack and the library's primary public API.
//
// A Machine instantiates the full simulated multiprocessor (nodes with L1 +
// RAC + bus + banked DRAM + DSM engine, interconnect, directory, kernel VM,
// and the architecture policy selected in MachineConfig::arch), runs one
// workload's parallel phase to completion, and returns the paper's
// measurements: the execution-time breakdown (Figures 2/3 left), the miss
// satisfaction breakdown (Figures 2/3 right), kernel/VM activity, and the
// refetch census (Tables 5/6).
//
//   MachineConfig cfg;                 // defaults reproduce the paper
//   cfg.arch = ArchModel::kAsComa;
//   cfg.memory_pressure = 0.70;
//   auto wl = workload::make_workload("em3d");
//   core::RunResult r = core::simulate(cfg, *wl);

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "arch/policy.hh"
#include "common/annotate.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "fault/invariants.hh"
#include "obs/metrics.hh"
#include "obs/sink.hh"
#include "prof/profiler.hh"
#include "proto/coherent_memory.hh"
#include "selfprof/collector.hh"
#include "sim/barrier.hh"
#include "sim/lock.hh"
#include "sim/scheduler.hh"
#include "store/snapshot.hh"
#include "vm/home_map.hh"
#include "vm/page_cache.hh"
#include "vm/page_table.hh"
#include "vm/pageout_daemon.hh"
#include "workload/workload.hh"

namespace ascoma::core {

/// Everything measured over one run.
struct RunResult {
  RunStats stats;                       ///< machine-wide totals
  /// Per-processor detail (one entry per node on the paper's 1-processor
  /// nodes).  Node-level censuses (remote_pages_touched) are attributed to
  /// each node's first processor.
  std::vector<NodeStats> per_node;
  std::vector<std::uint32_t> final_threshold;  ///< per-node refetch threshold
  std::vector<std::uint8_t> relocation_enabled;  ///< per-node, at run end
  std::uint64_t remote_page_node_pairs = 0;  ///< Σ_n distinct remote pages(n)
  std::uint64_t relocated_pairs = 0;    ///< (page,node) with refetch >= T0
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t contended_locks = 0;
  std::uint64_t barrier_episodes = 0;
  std::uint64_t net_messages = 0;
  std::uint64_t directory_invalidations = 0;
  std::uint64_t directory_forwards = 0;
  std::uint64_t writebacks_local = 0;
  std::uint64_t writebacks_remote = 0;
  std::uint64_t net_retransmits = 0;    ///< fire-and-forget retransmissions
  std::uint64_t net_retries = 0;        ///< protocol-level retries after drops
  std::uint64_t nacks = 0;              ///< NACKs issued by overloaded homes
  std::uint64_t faults_injected = 0;    ///< messages dropped/duplicated/jittered
  bool invariants_checked = false;      ///< post-run sweep ran (and passed)
  MachineConfig config;                 ///< effective (post-derivation) config

  /// Makespan of the parallel phase.
  Cycle cycles() const { return stats.parallel_cycles; }
};

class Machine {
 public:
  /// `cfg.nodes` is overridden by the workload's node count; granularities
  /// must match the workload.  Throws CheckFailure on invalid configuration.
  Machine(MachineConfig cfg, const workload::Workload& workload);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Run the workload's parallel phase to completion.  Callable once.
  RunResult run();

  // --- component access (tests/diagnostics) --------------------------------
  proto::CoherentMemory& memory() { return *cmem_; }
  const MachineConfig& config() const { return cfg_; }
  vm::PageTable& page_table(NodeId n) { return *page_tables_[n]; }
  vm::PageCache& page_cache(NodeId n) { return *page_caches_[n]; }
  arch::Policy& policy(NodeId n) { return *policies_[n]; }
  std::uint64_t frames_per_node() const { return frames_per_node_; }

  /// Full-state coherence sweep (directory vs. caches vs. VM).  run()
  /// invokes it when cfg.check_invariants is set and fails on violations;
  /// callable directly for diagnostics or after planting state in tests.
  fault::InvariantReport invariant_report() const;

  /// Attach/detach an observability sink after construction (equivalent to
  /// setting MachineConfig::sink; `sample_every` of 0 keeps the config's
  /// sampling period).  Must be called before run().
  void install_sink(obs::EventSink* sink, Cycle sample_every = Cycle{0});

  /// Attach/detach a latency-attribution profiler after construction
  /// (equivalent to setting MachineConfig::profiler).  When a sink is also
  /// attached, the profiler is registered as its streaming observer so the
  /// per-page heat map sees every event.  Must be called before run().
  void install_profiler(prof::Profiler* profiler);

  /// Node hosting processor `proc` (identity when procs_per_node == 1).
  NodeId node_of(std::uint32_t proc) const {
    return NodeId{proc / cfg_.procs_per_node};
  }

  // --- crash-safe checkpointing (ARCHITECTURE.md §15) -----------------------
  /// Serialize the complete mutable machine state (scheduler, caches,
  /// directory, VM tables, policies, RNG-stream positions, stats) into a
  /// versioned tagged snapshot.  Callable mid-run (from the checkpoint hook)
  /// or between runs.
  ASCOMA_DETERMINISM_SENSITIVE void save(store::Snapshot* snap) const;

  /// Restore a snapshot into this machine.  The machine must be freshly
  /// constructed from the *same* config and workload (verified via a
  /// fingerprint in the snapshot header; mismatch throws store::CodecError)
  /// and not yet run.  A subsequent run() continues the interrupted run and
  /// produces a bit-identical RunResult.
  void restore(const store::Snapshot& snap);

  /// Arrange for run() to snapshot the machine every `every` cycles of
  /// simulated time and hand the snapshot to `on_snapshot`.  When
  /// `self_check` is set (the default) every snapshot is additionally
  /// restored into a fresh scratch machine and re-saved; a byte difference
  /// fails the run — encode/decode drift can then never produce a snapshot
  /// that silently restores into a different machine.
  void set_checkpoint(
      Cycle every,
      std::function<void(const store::Snapshot&, Cycle)> on_snapshot,
      bool self_check = true);

 private:
  class Evictor;

  arch::PolicyEnv env(std::uint32_t proc, Cycle now);

  /// Map a faulting remote page on `proc`'s node; returns kernel cycles
  /// spent, split into (base, overhead).
  ASCOMA_HOT_PATH std::pair<Cycle, Cycle> handle_fault(std::uint32_t proc,
                                                       VPageId page, Cycle now);

  /// CC-NUMA -> S-COMA upgrade attempt; returns kernel overhead cycles.
  ASCOMA_HOT_PATH Cycle handle_relocation(std::uint32_t proc, VPageId page,
                                          Cycle now);

  /// Evict one S-COMA page (flush, downgrade/unmap, release frame).
  /// Returns the kernel cycles the eviction costs.
  ASCOMA_HOT_PATH Cycle evict_scoma_page(std::uint32_t proc, VPageId victim,
                                         Cycle now);

  /// Pick an eviction victim with one second-chance pass (forced: returns a
  /// page even if all are referenced).
  ASCOMA_HOT_PATH VPageId force_select_victim(NodeId node);

  /// Periodic / on-demand pageout daemon; returns kernel cycles spent.
  ASCOMA_HOT_PATH Cycle run_daemon(std::uint32_t proc, Cycle now);

  /// Rate-limited daemon trigger: runs the daemon only if the node's pool is
  /// below free_min and at least one daemon period has elapsed since the
  /// last invocation.  Returns kernel cycles spent (0 if it did not run).
  Cycle maybe_run_daemon(std::uint32_t proc, Cycle now);

  void execute_op(std::uint32_t p, const Op& op);
  void release_barrier(Cycle release);

  /// Emit an event if a sink is attached (no-op otherwise).
  ASCOMA_HOT_PATH void note(obs::EventKind kind, Cycle cycle, NodeId node,
                            VPageId page = kInvalidPage, std::uint64_t a = 0,
                            std::uint64_t b = 0, std::uint64_t c = 0) {
    if (sink_) {
      const selfprof::SelfScope sps(selfprof::HostSite::kObsEmit);
      sink_->emit(kind, cycle, node, page, a, b, c);
    }
  }

  /// Record one gauge sample per node, stamped `cycle`.
  ASCOMA_HOT_PATH void take_samples(Cycle cycle);

  MachineConfig cfg_;
  const workload::Workload& wl_;
  std::uint64_t frames_per_node_ = 0;

  vm::HomeMap homes_;
  IdVector<NodeId, std::unique_ptr<vm::PageTable>> page_tables_;
  IdVector<NodeId, std::unique_ptr<vm::PageCache>> page_caches_;
  IdVector<NodeId, std::unique_ptr<vm::PageoutDaemon>> daemons_;
  IdVector<NodeId, std::unique_ptr<arch::Policy>> policies_;
  std::unique_ptr<proto::CoherentMemory> cmem_;

  sim::Scheduler sched_;
  sim::Barrier barrier_;
  sim::LockTable locks_;

  /// Verify a freshly-taken snapshot round-trips byte-identically through a
  /// scratch machine (the checkpoint self-check).
  void self_check_snapshot(const store::Snapshot& snap) const;

  std::vector<std::unique_ptr<workload::OpStream>> streams_;
  /// next() calls made per processor stream — the restore fast-forward count
  /// (streams are deterministic in the seed, so position = call count).
  std::vector<std::uint64_t> ops_consumed_;
  std::vector<NodeStats> node_stats_;
  /// Per-processor store-buffer entries (completion cycle per slot); only
  /// used when cfg_.blocking_stores is false.
  std::vector<std::vector<Cycle>> store_buffer_;
  IdVector<NodeId, Cycle> daemon_period_;
  IdVector<NodeId, Cycle> next_daemon_;
  std::vector<std::uint8_t> waiting_in_barrier_;
  obs::EventSink* sink_ = nullptr;  ///< non-owning; null = observability off
  obs::Sampler sampler_;
  prof::Profiler* prof_ = nullptr;  ///< non-owning; null = profiling off
  obs::Registry* registry_ = nullptr;  ///< non-owning; null = no live gauges
  /// Registry gauge handles, resolved once at construction (the registry's
  /// find-or-create takes a mutex; sampling must not).
  struct NodeGauges {
    obs::Gauge* free_frames = nullptr;
    obs::Gauge* threshold = nullptr;
    obs::Gauge* cache_active = nullptr;
    obs::Gauge* remote_misses = nullptr;
  };
  std::vector<NodeGauges> node_gauges_;  ///< one row per node; empty when off
  bool ran_ = false;
  bool resumed_ = false;  ///< restore() ran; run() continues mid-stream
  Cycle end_cycle_{0};    ///< max completion cycle seen so far

  Cycle checkpoint_every_{0};  ///< 0 = checkpointing off
  Cycle next_checkpoint_{0};
  std::function<void(const store::Snapshot&, Cycle)> checkpoint_cb_;
  bool checkpoint_self_check_ = true;
};

/// One-shot convenience wrapper.
RunResult simulate(const MachineConfig& cfg, const workload::Workload& wl);

}  // namespace ascoma::core
