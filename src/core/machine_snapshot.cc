#include <cstdint>
#include <utility>

#include "common/check.hh"
#include "core/machine.hh"
#include "core/sweep_store.hh"
#include "store/codec.hh"
#include "store/snapshot.hh"

// Machine checkpoint/restore (ARCHITECTURE.md §15).
//
// A snapshot is a versioned, tagged binary image of every piece of mutable
// machine state: the cooperative scheduler, barrier and lock tables, per-node
// VM tables and page caches, policy state (including AS-COMA's back-off
// kernel), the full coherent-memory hardware image (caches, directory,
// resources, fault-plan RNG), per-processor statistics, and the workload
// stream positions.  Immutable structure (home map, daemons, geometry) is
// reconstructed by the Machine constructor and verified via a config/workload
// fingerprint in the header — a snapshot can only restore into a machine
// built exactly the way the saved one was.
//
// Workload op streams are not serialized: they are deterministic in the seed,
// so the snapshot stores only the number of next() calls made per processor
// and restore() replays them against fresh streams.

namespace ascoma::core {

namespace {

/// Bumped on any layout change below; restore refuses other versions.
constexpr std::uint32_t kSnapshotVersion = 1;

}  // namespace

void Machine::save(store::Snapshot* snap) const {
  store::Encoder e;

  e.begin_section("meta");
  e.u32(kSnapshotVersion);
  const Fingerprint fp = machine_fingerprint(cfg_, wl_.name(),
                                             wl_.total_pages(),
                                             cfg_.total_procs());
  e.u64(fp.hi);
  e.u64(fp.lo);
  e.end_section();

  e.begin_section("sim");
  sched_.encode(e);
  barrier_.encode(e);
  locks_.encode(e);
  e.end_section();

  e.begin_section("vm");
  for (NodeId n{0}; n.value() < cfg_.nodes; ++n) {
    page_tables_[n]->encode(e);
    page_caches_[n]->encode(e);
  }
  e.end_section();

  e.begin_section("policy");
  for (NodeId n{0}; n.value() < cfg_.nodes; ++n) policies_[n]->encode(e);
  e.end_section();

  cmem_->encode(e);  // writes its own "cmem" section

  e.begin_section("mach");
  for (const std::uint64_t k : ops_consumed_) e.u64(k);
  for (const NodeStats& s : node_stats_) encode_node_stats(e, s);
  e.b(!store_buffer_.empty());
  for (const auto& sb : store_buffer_)
    for (const Cycle c : sb) e.u64(c.value());
  for (const Cycle c : daemon_period_) e.u64(c.value());
  for (const Cycle c : next_daemon_) e.u64(c.value());
  for (const std::uint8_t w : waiting_in_barrier_) e.u8(w);
  sampler_.encode(e);
  e.u64(end_cycle_.value());
  e.end_section();

  snap->bytes = e.bytes();
}

void Machine::restore(const store::Snapshot& snap) {
  ASCOMA_CHECK_MSG(!ran_, "restore() requires a machine that has not run");
  store::Decoder d(snap.bytes);

  d.begin_section("meta");
  if (d.u32() != kSnapshotVersion)
    throw store::CodecError("snapshot version mismatch");
  const Fingerprint want = machine_fingerprint(cfg_, wl_.name(),
                                               wl_.total_pages(),
                                               cfg_.total_procs());
  Fingerprint got;
  got.hi = d.u64();
  got.lo = d.u64();
  if (!(got == want))
    throw store::CodecError(
        "snapshot config/workload fingerprint mismatch: the snapshot was "
        "taken on a differently-configured machine");
  d.end_section();

  d.begin_section("sim");
  sched_.decode(d);
  barrier_.decode(d);
  locks_.decode(d);
  d.end_section();

  d.begin_section("vm");
  for (NodeId n{0}; n.value() < cfg_.nodes; ++n) {
    page_tables_[n]->decode(d);
    page_caches_[n]->decode(d);
  }
  d.end_section();

  d.begin_section("policy");
  for (NodeId n{0}; n.value() < cfg_.nodes; ++n) policies_[n]->decode(d);
  d.end_section();

  cmem_->decode(d);

  d.begin_section("mach");
  ops_consumed_.assign(cfg_.total_procs(), 0);
  for (std::uint64_t& k : ops_consumed_) k = d.u64();
  for (NodeStats& s : node_stats_) decode_node_stats(d, &s);
  const bool buffered = d.b();
  if (buffered != !store_buffer_.empty())
    throw store::CodecError("snapshot store-buffer mode mismatch");
  for (auto& sb : store_buffer_)
    for (Cycle& c : sb) c = Cycle{d.u64()};
  for (Cycle& c : daemon_period_) c = Cycle{d.u64()};
  for (Cycle& c : next_daemon_) c = Cycle{d.u64()};
  for (std::uint8_t& w : waiting_in_barrier_) w = d.u8();
  sampler_.decode(d);
  end_cycle_ = Cycle{d.u64()};
  d.end_section();

  if (!d.done()) throw store::CodecError("snapshot has trailing bytes");

  // Rebuild the workload streams and fast-forward each to its saved
  // position.  Streams are deterministic in (proc, seed), so replaying the
  // recorded number of next() calls reproduces the generator state exactly.
  streams_.clear();
  const std::uint64_t wl_seed =
      cfg_.component_seed(MachineConfig::kSeedStreamWorkload);
  for (std::uint32_t p = 0; p < cfg_.total_procs(); ++p) {
    streams_.push_back(wl_.stream(p, wl_seed));
    for (std::uint64_t k = 0; k < ops_consumed_[p]; ++k) streams_[p]->next();
  }
  resumed_ = true;
}

void Machine::set_checkpoint(
    Cycle every, std::function<void(const store::Snapshot&, Cycle)> on_snapshot,
    bool self_check) {
  ASCOMA_CHECK_MSG(every > Cycle{0}, "checkpoint period must be positive");
  checkpoint_every_ = every;
  next_checkpoint_ = every;
  checkpoint_cb_ = std::move(on_snapshot);
  checkpoint_self_check_ = self_check;
}

void Machine::self_check_snapshot(const store::Snapshot& snap) const {
  MachineConfig cfg = cfg_;
  cfg.sink = nullptr;
  cfg.profiler = nullptr;
  Machine scratch(cfg, wl_);
  scratch.restore(snap);
  store::Snapshot again;
  scratch.save(&again);
  ASCOMA_CHECK_MSG(again.bytes == snap.bytes,
                   "checkpoint self-check failed: snapshot does not restore "
                   "byte-identically (encode/decode drift)");
}

}  // namespace ascoma::core
