#pragma once

// Exhaustive state-space exploration for the protocol model.
//
// Explicit-state search in the Murphi tradition: states are canonically
// encoded (check::State::encode) and hashed; the visited set stores only
// encodings, re-materializing states on demand, so memory stays proportional
// to the number of *distinct* states.  BFS is the default because it yields
// minimal-length counterexamples; DFS is available for quick deep probes.
//
// Partial-order reduction: when a state has an "invisible" successor (a
// transition that commutes with every other enabled transition and touches
// no invariant — stray-message discards, non-final invalidation-ack
// deliveries), that single successor is an ample set and the other branches
// are pruned.  --no-por disables the reduction for cross-checking.
//
// Every violation is reported with a minimal counterexample trace (the
// action sequence from the initial state) plus a rendering of the violating
// state.  Deadlocks are detected structurally: a non-quiescent state with no
// successors.
//
// The search loop itself is model-agnostic and lives in explore_core.hh
// (explore_model<ModelT>); this header keeps the protocol-model entry point.

#include "check/explore_core.hh"
#include "check/model.hh"

namespace ascoma::check {

/// Explores every state of `model` reachable from Model::initial().
ExploreResult explore(const Model& model, const ExploreOptions& opts);

}  // namespace ascoma::check
