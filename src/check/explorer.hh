#pragma once

// Exhaustive state-space exploration for the protocol model.
//
// Explicit-state search in the Murphi tradition: states are canonically
// encoded (check::State::encode) and hashed; the visited set stores only
// encodings, re-materializing states on demand, so memory stays proportional
// to the number of *distinct* states.  BFS is the default because it yields
// minimal-length counterexamples; DFS is available for quick deep probes.
//
// Partial-order reduction: when a state has an "invisible" successor (a
// transition that commutes with every other enabled transition and touches
// no invariant — stray-message discards, non-final invalidation-ack
// deliveries), that single successor is an ample set and the other branches
// are pruned.  --no-por disables the reduction for cross-checking.
//
// Every violation is reported with a minimal counterexample trace (the
// action sequence from the initial state) plus a rendering of the violating
// state.  Deadlocks are detected structurally: a non-quiescent state with no
// successors.

#include <cstdint>
#include <string>
#include <vector>

#include "check/model.hh"

namespace ascoma::check {

struct ExploreOptions {
  bool dfs = false;       ///< depth-first instead of breadth-first
  bool por = true;        ///< partial-order reduction on invisible steps
  std::uint64_t max_states = 2'000'000;  ///< visited-set cap (then truncated)
};

struct ExploreResult {
  bool ok = true;          ///< no violation found
  bool truncated = false;  ///< hit max_states before exhausting the space
  std::string violation;   ///< first violation (empty when ok)
  std::vector<std::string> trace;  ///< action sequence reaching the violation
  std::string final_dump;  ///< rendering of the violating state
  std::uint64_t states = 0;       ///< distinct states visited
  std::uint64_t transitions = 0;  ///< edges explored (post-reduction)
  std::uint64_t finals = 0;       ///< quiescent-complete states reached

  /// Multi-line report (verdict, stats, counterexample if any).
  std::string report() const;
};

/// Explores every state of `model` reachable from Model::initial().
ExploreResult explore(const Model& model, const ExploreOptions& opts);

}  // namespace ascoma::check
