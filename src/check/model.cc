#include "check/model.hh"

#include <algorithm>
#include <sstream>

#include "common/check.hh"

namespace ascoma::check {

using proto::DirNext;
using proto::DirState;
using proto::ProtoMsg;
using proto::ReqRel;
using proto::Transition;
using proto::TransitionTable;
namespace act = proto::act;

// ---- names ------------------------------------------------------------------

const char* to_string(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kDropInvalAck: return "drop-inval-ack";
    case Mutation::kStaleOwnerOnDowngrade: return "stale-owner-on-downgrade";
    case Mutation::kNackMutatesDirectory: return "nack-mutates-directory";
    case Mutation::kLostUpgrade: return "lost-upgrade";
    case Mutation::kDoubleDataReply: return "double-data-reply";
  }
  return "?";
}

bool parse_mutation(const std::string& name, Mutation* out) {
  for (int i = 0; i < kNumMutations; ++i) {
    const auto m = static_cast<Mutation>(i);
    if (name == to_string(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

const char* to_string(MsgKind k) {
  switch (k) {
    case MsgKind::kReqS: return "GETS";
    case MsgKind::kReqX: return "GETX";
    case MsgKind::kReqUp: return "UPGRADE";
    case MsgKind::kData: return "DATA";
    case MsgKind::kDataEx: return "DATA_EX";
    case MsgKind::kGrant: return "GRANT";
    case MsgKind::kFwdS: return "FWD_GETS";
    case MsgKind::kFwdX: return "FWD_GETX";
    case MsgKind::kOwnerData: return "OWNER_DATA";
    case MsgKind::kOwnerDataEx: return "OWNER_DATA_EX";
    case MsgKind::kInval: return "INVAL";
    case MsgKind::kInvAck: return "INV_ACK";
    case MsgKind::kNackMsg: return "NACK";
  }
  return "?";
}

namespace {

bool is_request(std::uint8_t kind) {
  const auto k = static_cast<MsgKind>(kind);
  return k == MsgKind::kReqS || k == MsgKind::kReqX || k == MsgKind::kReqUp;
}

bool is_reply(std::uint8_t kind) {
  const auto k = static_cast<MsgKind>(kind);
  return k == MsgKind::kData || k == MsgKind::kDataEx ||
         k == MsgKind::kGrant || k == MsgKind::kOwnerData ||
         k == MsgKind::kOwnerDataEx;
}

std::string format_msg(const Msg& m) {
  std::ostringstream os;
  os << to_string(static_cast<MsgKind>(m.kind)) << " n" << int(m.src) << "->n"
     << int(m.dst) << " b" << int(m.block);
  if (is_request(m.kind)) {
    os << " serial " << int(m.aux);
  } else {
    if (m.version != 0) os << " v" << int(m.version);
    if (m.aux != 0) {
      if (is_reply(m.kind))
        os << " acks " << int(m.aux);
      else
        os << " req n" << int(m.aux);
    }
  }
  return os.str();
}

}  // namespace

std::string Action::format() const {
  std::ostringstream os;
  switch (type) {
    case Type::kIssue:
      os << "n" << int(node) << " issues " << (is_store ? "STORE" : "LOAD")
         << " b" << int(block) << " -> " << format_msg(msg);
      break;
    case Type::kLocal:
      os << "n" << int(node) << " " << (is_store ? "STORE" : "LOAD") << " b"
         << int(block) << " completes locally";
      break;
    case Type::kDeliver:
      os << "deliver " << format_msg(msg);
      break;
    case Type::kProcess:
      os << "home dequeues " << format_msg(msg);
      break;
    case Type::kNack:
      os << "home NACKs " << format_msg(msg);
      break;
    case Type::kFlush:
      os << "n" << int(node) << " flushes b" << int(block)
         << " (notifies home)";
      break;
    case Type::kEvict:
      os << "n" << int(node) << " silently evicts b" << int(block);
      break;
    case Type::kDrop:
      os << "fabric drops a message; transport retransmits (retry counted)";
      break;
    case Type::kDup:
      os << "fabric duplicates " << format_msg(msg);
      break;
  }
  return os.str();
}

// ---- state encoding ---------------------------------------------------------

std::string State::encode() const {
  std::string out;
  out.reserve(64 + net.size() * 6);
  auto put = [&out](std::uint8_t b) { out.push_back(static_cast<char>(b)); };
  auto put_msg = [&](const Msg& m) {
    put(m.kind);
    put(m.src);
    put(m.dst);
    put(m.block);
    put(m.version);
    put(m.aux);
  };
  for (const auto& c : cache) {
    put(c[0]);
    put(c[1]);
  }
  for (std::size_t b = 0; b < dir_owner.size(); ++b) {
    put(dir_owner[b]);
    put(dir_sharers[b]);
    put(home[b].busy);
    put(home[b].busy_req);
    put(home[b].mem_version);
    put(static_cast<std::uint8_t>(home[b].queue.size()));
    for (const Msg& m : home[b].queue) put_msg(m);  // FIFO order matters
  }
  for (const Pending& p : pending) {
    put(p.active);
    put(p.kind);
    put(p.block);
    put(p.serial);
    put(p.have_data);
    put(p.data_version);
    put(p.acks_needed);
    put(p.acks_got);
    put(p.retries);
  }
  for (std::uint8_t v : ops_done) put(v);
  for (std::uint8_t v : committed) put(v);
  for (std::uint8_t v : store_seq) put(v);
  for (std::uint8_t v : req_seq) put(v);
  for (std::uint8_t v : home_served) put(v);
  put(drops_used);
  put(dups_used);
  put(nacks_used);
  put(flushes_used);
  put(evicts_used);
  put(retries_total);
  // The network is a multiset: canonicalize by sorting.
  std::vector<Msg> sorted = net;
  std::sort(sorted.begin(), sorted.end());
  put(static_cast<std::uint8_t>(sorted.size()));
  for (const Msg& m : sorted) put_msg(m);
  return out;
}

State decode_state(const CheckConfig& cfg, const std::string& enc) {
  State s;
  std::size_t at = 0;
  auto get = [&enc, &at]() {
    ASCOMA_CHECK_MSG(at < enc.size(), "truncated state encoding");
    return static_cast<std::uint8_t>(enc[at++]);
  };
  auto get_msg = [&get]() {
    Msg m;
    m.kind = get();
    m.src = get();
    m.dst = get();
    m.block = get();
    m.version = get();
    m.aux = get();
    return m;
  };
  s.cache.resize(cfg.nodes * cfg.blocks);
  for (auto& c : s.cache) {
    c[0] = get();
    c[1] = get();
  }
  s.dir_owner.resize(cfg.blocks);
  s.dir_sharers.resize(cfg.blocks);
  s.home.resize(cfg.blocks);
  for (std::uint32_t b = 0; b < cfg.blocks; ++b) {
    s.dir_owner[b] = get();
    s.dir_sharers[b] = get();
    s.home[b].busy = get();
    s.home[b].busy_req = get();
    s.home[b].mem_version = get();
    const std::uint8_t qn = get();
    s.home[b].queue.resize(qn);
    for (Msg& m : s.home[b].queue) m = get_msg();
  }
  s.pending.resize(cfg.nodes);
  for (Pending& p : s.pending) {
    p.active = get();
    p.kind = get();
    p.block = get();
    p.serial = get();
    p.have_data = get();
    p.data_version = get();
    p.acks_needed = get();
    p.acks_got = get();
    p.retries = get();
  }
  s.ops_done.resize(cfg.nodes);
  for (auto& v : s.ops_done) v = get();
  s.committed.resize(cfg.blocks);
  for (auto& v : s.committed) v = get();
  s.store_seq.resize(cfg.blocks);
  for (auto& v : s.store_seq) v = get();
  s.req_seq.resize(cfg.nodes);
  for (auto& v : s.req_seq) v = get();
  s.home_served.resize(cfg.nodes);
  for (auto& v : s.home_served) v = get();
  s.drops_used = get();
  s.dups_used = get();
  s.nacks_used = get();
  s.flushes_used = get();
  s.evicts_used = get();
  s.retries_total = get();
  const std::uint8_t nn = get();
  s.net.resize(nn);
  for (Msg& m : s.net) m = get_msg();
  ASCOMA_CHECK_MSG(at == enc.size(), "trailing bytes in state encoding");
  return s;
}

std::string describe_state(const CheckConfig& cfg, const State& s) {
  static const char* kCacheNames[] = {"I", "S", "M"};
  std::ostringstream os;
  for (std::uint32_t b = 0; b < cfg.blocks; ++b) {
    os << "  b" << b << ": dir owner="
       << (s.dir_owner[b] == kNoOwner
               ? std::string("-")
               : "n" + std::to_string(int(s.dir_owner[b])))
       << " copyset={";
    bool first = true;
    for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
      if (((s.dir_sharers[b] >> n) & 1u) == 0) continue;
      if (!first) os << ",";
      os << "n" << n;
      first = false;
    }
    os << "} mem v" << int(s.home[b].mem_version) << " committed v"
       << int(s.committed[b]) << (s.home[b].busy ? " BUSY(n" : "")
       << (s.home[b].busy ? std::to_string(int(s.home[b].busy_req)) + ")"
                          : "")
       << " queued " << s.home[b].queue.size() << "\n";
    os << "     caches:";
    for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
      const auto line = s.cache[n * cfg.blocks + b];
      os << " n" << n << "=" << kCacheNames[line[0] <= 2 ? line[0] : 0];
      if (line[0] != 0) os << "(v" << int(line[1]) << ")";
    }
    os << "\n";
  }
  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    const Pending& p = s.pending[n];
    if (!p.active) continue;
    os << "  n" << n << " pending "
       << to_string(static_cast<MsgKind>(p.kind)) << " b" << int(p.block)
       << " data=" << int(p.have_data) << " acks " << int(p.acks_got) << "/"
       << int(p.acks_needed) << " retries " << int(p.retries) << "\n";
  }
  for (const Msg& m : s.net) os << "  in flight: " << format_msg(m) << "\n";
  return os.str();
}

// ---- mutations --------------------------------------------------------------

void apply_mutation(TransitionTable* table, Mutation m) {
  switch (m) {
    case Mutation::kStaleOwnerOnDowngrade: {
      // A read that downgrades the dirty owner forgets to clear the owner
      // field: the directory keeps naming an owner that is now a sharer.
      Transition& t =
          table->row(DirState::kExclusive, ProtoMsg::kGetS, ReqRel::kNone);
      t.actions = act::kForwardOwner | act::kAddSharer;
      t.next = DirNext::kExclusive;
      t.why = "MUTATION: downgrade keeps the stale owner recorded";
      break;
    }
    case Mutation::kNackMutatesDirectory: {
      // A refusal is supposed to be a no-op; here it drops the requester
      // from the copyset, so a NACKed upgrader keeps a copy the directory
      // no longer tracks.
      for (ReqRel rel : {ReqRel::kNone, ReqRel::kSharer}) {
        Transition& t = table->row(DirState::kShared, ProtoMsg::kNack, rel);
        t.actions = act::kRemoveSharer;
        t.next = DirNext::kSharedOrUncached;
        t.why = "MUTATION: NACK removes the requester from the copyset";
      }
      break;
    }
    case Mutation::kNone:
    case Mutation::kDropInvalAck:   // handler flag, table untouched
    case Mutation::kLostUpgrade:    // handler flag, table untouched
    case Mutation::kDoubleDataReply:  // handler flag, table untouched
      break;
  }
}

// ---- model ------------------------------------------------------------------

Model::Model(const CheckConfig& cfg) : cfg_(cfg), table_() {
  ASCOMA_CHECK_MSG(cfg.nodes >= 2 && cfg.nodes <= 4,
                   "model supports 2..4 nodes");
  ASCOMA_CHECK_MSG(cfg.blocks >= 1 && cfg.blocks <= 2,
                   "model supports 1..2 blocks");
  ASCOMA_CHECK_MSG(cfg.ops_per_node >= 1 && cfg.ops_per_node <= 4,
                   "model supports 1..4 ops per node");
  apply_mutation(&table_, cfg.mutation);
}

State Model::initial() const {
  State s;
  s.cache.assign(cfg_.nodes * cfg_.blocks, {0, 0});  // all kI, version 0
  s.dir_owner.assign(cfg_.blocks, kNoOwner);
  s.dir_sharers.assign(cfg_.blocks, 0);
  s.home.assign(cfg_.blocks, HomeBlock{});
  s.pending.assign(cfg_.nodes, Pending{});
  s.ops_done.assign(cfg_.nodes, 0);
  s.committed.assign(cfg_.blocks, 0);
  s.store_seq.assign(cfg_.blocks, 0);
  s.req_seq.assign(cfg_.nodes, 0);
  s.home_served.assign(cfg_.nodes, 0);
  return s;
}

void Model::fail_step(State* s, std::string why) {
  if (s->violation.empty()) s->violation = std::move(why);
}

proto::DirState Model::dir_state(const State& s, std::uint32_t b) const {
  if (s.dir_owner[b] != kNoOwner) return DirState::kExclusive;
  return s.dir_sharers[b] == 0 ? DirState::kUncached : DirState::kShared;
}

proto::ReqRel Model::dir_rel(const State& s, std::uint32_t b,
                             std::uint8_t n) const {
  if (s.dir_owner[b] == n) return ReqRel::kOwner;
  return (s.dir_sharers[b] >> n) & 1u ? ReqRel::kSharer : ReqRel::kNone;
}

const Transition& Model::dir_apply(State* s, std::uint32_t block,
                                   ProtoMsg msg, std::uint8_t requester,
                                   std::uint8_t* dirty_owner,
                                   std::vector<std::uint8_t>* invalidate)
    const {
  const Transition& t =
      table_.lookup(dir_state(*s, block), msg, dir_rel(*s, block, requester));
  if (t.fatal()) {
    std::ostringstream os;
    os << "unreachable protocol row reached: " << to_string(t.state) << " x "
       << to_string(t.msg) << " x " << to_string(t.rel) << " (" << t.why
       << ")";
    fail_step(s, os.str());
    return t;
  }
  // Reads first (mirrors Directory::apply).
  if (t.has(act::kForwardOwner) && dirty_owner != nullptr)
    *dirty_owner = s->dir_owner[block];
  if (t.has(act::kInvalSharers) && invalidate != nullptr) {
    std::uint8_t mask = s->dir_sharers[block];
    mask = static_cast<std::uint8_t>(mask & ~(1u << requester));
    if (s->dir_owner[block] != kNoOwner)
      mask = static_cast<std::uint8_t>(mask & ~(1u << s->dir_owner[block]));
    for (std::uint8_t n = 0; n < cfg_.nodes; ++n)
      if ((mask >> n) & 1u) invalidate->push_back(n);
  }
  // Then the entry rewrite.
  if (t.has(act::kClearOwner)) s->dir_owner[block] = kNoOwner;
  if (t.has(act::kAddSharer))
    s->dir_sharers[block] =
        static_cast<std::uint8_t>(s->dir_sharers[block] | (1u << requester));
  if (t.has(act::kRemoveSharer))
    s->dir_sharers[block] =
        static_cast<std::uint8_t>(s->dir_sharers[block] & ~(1u << requester));
  if (t.has(act::kSetOwner)) {
    s->dir_sharers[block] = static_cast<std::uint8_t>(1u << requester);
    s->dir_owner[block] = requester;
  }
  // Check the promised next state (kSharedOrUncached accepts either).
  const DirState after = dir_state(*s, block);
  const bool next_ok =
      t.next == DirNext::kSharedOrUncached
          ? (after == DirState::kShared || after == DirState::kUncached)
          : after == static_cast<DirState>(t.next);
  if (!next_ok) {
    std::ostringstream os;
    os << "protocol row " << to_string(t.state) << " x " << to_string(t.msg)
       << " x " << to_string(t.rel) << " promised " << to_string(t.next)
       << " but produced " << to_string(after);
    fail_step(s, os.str());
  }
  return t;
}

void Model::apply_request(State* s, const Msg& m) const {
  const std::uint32_t b = m.block;
  const std::uint8_t r = m.src;
  const ReqRel rel_before = dir_rel(*s, b, r);
  const ProtoMsg pm = static_cast<MsgKind>(m.kind) == MsgKind::kReqS
                          ? ProtoMsg::kGetS
                          : ProtoMsg::kGetX;
  std::uint8_t fwd = kNoOwner;
  std::vector<std::uint8_t> inval;
  const Transition& t = dir_apply(s, b, pm, r, &fwd, &inval);
  if (!s->violation.empty()) return;

  s->home_served[r] = std::max(s->home_served[r], m.aux);
  HomeBlock& hb = s->home[b];
  hb.busy = 1;
  hb.busy_req = r;
  const std::uint8_t acks = static_cast<std::uint8_t>(inval.size());
  const std::uint8_t home = home_of(b);

  for (std::uint8_t n : inval)
    s->net.push_back(Msg{std::uint8_t(MsgKind::kInval), home, n, m.block, 0,
                         r});

  if (t.has(act::kForwardOwner)) {
    const MsgKind k =
        pm == ProtoMsg::kGetS ? MsgKind::kFwdS : MsgKind::kFwdX;
    s->net.push_back(Msg{std::uint8_t(k), home, fwd, m.block, acks, r});
    return;
  }

  // Home supplies the data (or just ownership, for a held-copy upgrade).
  switch (static_cast<MsgKind>(m.kind)) {
    case MsgKind::kReqS: {
      const Msg reply{std::uint8_t(MsgKind::kData), home, r, m.block,
                      hb.mem_version, 0};
      s->net.push_back(reply);
      if (cfg_.mutation == Mutation::kDoubleDataReply)
        s->net.push_back(reply);
      break;
    }
    case MsgKind::kReqX:
      s->net.push_back(Msg{std::uint8_t(MsgKind::kDataEx), home, r, m.block,
                           hb.mem_version, acks});
      break;
    case MsgKind::kReqUp:
      if (rel_before == ReqRel::kSharer) {
        if (cfg_.mutation != Mutation::kLostUpgrade)
          s->net.push_back(Msg{std::uint8_t(MsgKind::kGrant), home, r,
                               m.block, 0, acks});
        // kLostUpgrade: ownership recorded, grant never sent.
      } else {
        // Upgrade race: the requester's copy was invalidated while the
        // upgrade was in flight — serve it a full exclusive fill.
        s->net.push_back(Msg{std::uint8_t(MsgKind::kDataEx), home, r,
                             m.block, hb.mem_version, acks});
      }
      break;
    default:
      fail_step(s, "internal: non-request reached apply_request");
  }
}

void Model::complete_if_ready(State* s, std::uint8_t n) const {
  Pending& p = s->pending[n];
  if (!p.active || !p.have_data || p.acks_got < p.acks_needed) return;
  const std::uint32_t b = p.block;
  HomeBlock& hb = s->home[b];
  if (!hb.busy || hb.busy_req != n) {
    fail_step(s, "internal: transaction completed without a home "
                 "transaction in flight");
    return;
  }
  hb.busy = 0;
  auto& line = s->cache[n * cfg_.blocks + b];
  if (static_cast<MsgKind>(p.kind) == MsgKind::kReqS) {
    line = {std::uint8_t(CacheState::kS), p.data_version};
    // A 3-hop read doubles as the owner's writeback: home becomes current.
    hb.mem_version = p.data_version;
  } else {
    const std::uint8_t v = ++s->store_seq[b];
    line = {std::uint8_t(CacheState::kM), v};
    s->committed[b] = v;
  }
  ++s->ops_done[n];
  p = Pending{};
}

void Model::process_request(const State& s, const Msg& m, Action::Type label,
                            std::vector<Successor>* out) const {
  {
    Successor suc;
    suc.state = s;
    apply_request(&suc.state, m);
    suc.action.type = label;
    suc.action.msg = m;
    out->push_back(std::move(suc));
  }
  if (cfg_.faults && s.nacks_used < cfg_.max_nacks) {
    Successor suc;
    suc.state = s;
    ++suc.state.nacks_used;
    dir_apply(&suc.state, m.block, ProtoMsg::kNack, m.src, nullptr, nullptr);
    suc.state.net.push_back(Msg{std::uint8_t(MsgKind::kNackMsg),
                                home_of(m.block), m.src, m.block, 0, 0});
    suc.action.type = Action::Type::kNack;
    suc.action.msg = m;
    out->push_back(std::move(suc));
  }
}

void Model::deliver(const State& base, const Msg& m,
                    std::vector<Successor>* out) const {
  const auto kind = static_cast<MsgKind>(m.kind);
  const std::uint8_t n = m.dst;

  if (is_request(m.kind)) {
    // `m.dst` is the block's home.  The home dedups on the per-node request
    // serial: a fabric-duplicated (or already-served) request is discarded,
    // which is why duplicates cannot corrupt a correct protocol.
    if (m.aux <= base.home_served[m.src]) {
      Successor suc;
      suc.state = base;
      suc.action.type = Action::Type::kDeliver;
      suc.action.msg = m;
      suc.invisible = true;
      out->push_back(std::move(suc));
      return;
    }
    if (base.home[m.block].busy) {
      Successor suc;
      suc.state = base;
      if (suc.state.home[m.block].queue.size() >= kMaxQueuedPerBlock)
        fail_step(&suc.state, "home request queue overflow");
      else
        suc.state.home[m.block].queue.push_back(m);
      suc.action.type = Action::Type::kDeliver;
      suc.action.msg = m;
      out->push_back(std::move(suc));
      return;
    }
    process_request(base, m, Action::Type::kDeliver, out);
    return;
  }

  Successor suc;
  suc.state = base;
  suc.action.type = Action::Type::kDeliver;
  suc.action.msg = m;
  State* s = &suc.state;
  auto& line = s->cache[n * cfg_.blocks + m.block];

  switch (kind) {
    case MsgKind::kData:
    case MsgKind::kDataEx:
    case MsgKind::kGrant:
    case MsgKind::kOwnerData:
    case MsgKind::kOwnerDataEx: {
      Pending& p = s->pending[n];
      const bool wants_shared =
          static_cast<MsgKind>(p.kind) == MsgKind::kReqS;
      const bool shared_reply =
          kind == MsgKind::kData || kind == MsgKind::kOwnerData;
      const bool matches = p.active && p.block == m.block && !p.have_data &&
                           wants_shared == shared_reply;
      if (matches) {
        p.have_data = 1;
        p.data_version =
            kind == MsgKind::kGrant ? line[1] : m.version;
        p.acks_needed = m.aux;
        complete_if_ready(s, n);
      } else if (cfg_.mutation == Mutation::kDoubleDataReply &&
                 shared_reply &&
                 line[0] != std::uint8_t(CacheState::kM)) {
        // The buggy NI installs whatever data arrives: a stale late reply
        // resurrects a copy the protocol already invalidated.
        line = {std::uint8_t(CacheState::kS), m.version};
      } else {
        suc.invisible = true;  // stray reply discarded
      }
      break;
    }
    case MsgKind::kFwdS:
    case MsgKind::kFwdX: {
      if (line[0] != std::uint8_t(CacheState::kM)) {
        std::ostringstream os;
        os << "3-hop forward " << format_msg(m) << " reached n" << n
           << " which does not hold b" << int(m.block) << " exclusive";
        fail_step(s, os.str());
        break;
      }
      const std::uint8_t v = line[1];
      if (kind == MsgKind::kFwdS) {
        line[0] = std::uint8_t(CacheState::kS);  // downgrade, keep data
        s->net.push_back(Msg{std::uint8_t(MsgKind::kOwnerData), n, m.aux,
                             m.block, v, 0});
      } else {
        line = {std::uint8_t(CacheState::kI), 0};
        s->net.push_back(Msg{std::uint8_t(MsgKind::kOwnerDataEx), n, m.aux,
                             m.block, v,
                             m.version /* acks piggybacked on the fwd */});
      }
      break;
    }
    case MsgKind::kInval:
      line = {std::uint8_t(CacheState::kI), 0};
      if (cfg_.mutation != Mutation::kDropInvalAck)
        s->net.push_back(Msg{std::uint8_t(MsgKind::kInvAck), n, m.aux,
                             m.block, 0, 0});
      break;
    case MsgKind::kInvAck: {
      Pending& p = s->pending[n];
      if (p.active && p.block == m.block) {
        ++p.acks_got;
        if (p.have_data && p.acks_got >= p.acks_needed)
          complete_if_ready(s, n);
        else
          suc.invisible = true;  // private counter bump, commutes
      } else {
        suc.invisible = true;  // stray ack discarded
      }
      break;
    }
    case MsgKind::kNackMsg: {
      Pending& p = s->pending[n];
      if (p.active && p.block == m.block) {
        ++p.retries;
        ++s->retries_total;
        if (s->retries_total > cfg_.retry_max) {
          std::ostringstream os;
          os << "retry budget exhausted: " << int(s->retries_total)
             << " retries > retry_max " << cfg_.retry_max;
          fail_step(s, os.str());
        }
        s->net.push_back(Msg{p.kind, n, home_of(p.block), p.block, 0,
                             p.serial});
      } else {
        suc.invisible = true;
      }
      break;
    }
    default:
      fail_step(s, "internal: request kind reached reply delivery");
  }
  out->push_back(std::move(suc));
}

void Model::issue_ops(const State& s, std::vector<Successor>* out) const {
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    if (s.pending[n].active || s.ops_done[n] >= cfg_.ops_per_node) continue;
    for (std::uint32_t b = 0; b < cfg_.blocks; ++b) {
      const auto line = s.cache[n * cfg_.blocks + b];
      const auto cs = static_cast<CacheState>(line[0]);
      for (int is_store = 0; is_store <= 1; ++is_store) {
        Successor suc;
        suc.action.node = static_cast<std::uint8_t>(n);
        suc.action.block = static_cast<std::uint8_t>(b);
        suc.action.is_store = static_cast<std::uint8_t>(is_store);
        if (cs == CacheState::kM || (cs == CacheState::kS && !is_store)) {
          suc.state = s;
          if (is_store) {
            const std::uint8_t v = ++suc.state.store_seq[b];
            suc.state.cache[n * cfg_.blocks + b][1] = v;
            suc.state.committed[b] = v;
          }
          ++suc.state.ops_done[n];
          suc.action.type = Action::Type::kLocal;
        } else {
          const MsgKind kind = !is_store ? MsgKind::kReqS
                               : cs == CacheState::kS ? MsgKind::kReqUp
                                                      : MsgKind::kReqX;
          suc.state = s;
          const std::uint8_t serial = ++suc.state.req_seq[n];
          Pending& p = suc.state.pending[n];
          p = Pending{};
          p.active = 1;
          p.kind = std::uint8_t(kind);
          p.block = static_cast<std::uint8_t>(b);
          p.serial = serial;
          const Msg req{std::uint8_t(kind), static_cast<std::uint8_t>(n),
                        home_of(b), static_cast<std::uint8_t>(b), 0, serial};
          suc.state.net.push_back(req);
          suc.action.type = Action::Type::kIssue;
          suc.action.msg = req;
        }
        out->push_back(std::move(suc));
      }
    }
  }
}

void Model::kernel_steps(const State& s, std::vector<Successor>* out) const {
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    if (s.pending[n].active) continue;  // the processor is not blocked
    for (std::uint32_t b = 0; b < cfg_.blocks; ++b) {
      const auto line = s.cache[n * cfg_.blocks + b];
      if (static_cast<CacheState>(line[0]) == CacheState::kI) continue;
      // S-COMA style flush: release the copy and tell the home.
      if (cfg_.flush_notify() && !s.home[b].busy &&
          s.flushes_used < cfg_.max_flushes) {
        Successor suc;
        suc.state = s;
        ++suc.state.flushes_used;
        const bool owner =
            dir_rel(s, b, static_cast<std::uint8_t>(n)) == ReqRel::kOwner;
        dir_apply(&suc.state, b, ProtoMsg::kFlush,
                  static_cast<std::uint8_t>(n), nullptr, nullptr);
        if (owner) suc.state.home[b].mem_version = line[1];  // writeback
        suc.state.cache[n * cfg_.blocks + b] = {0, 0};
        suc.action.type = Action::Type::kFlush;
        suc.action.node = static_cast<std::uint8_t>(n);
        suc.action.block = static_cast<std::uint8_t>(b);
        out->push_back(std::move(suc));
      }
      // NUMA-style silent eviction: a clean copy just disappears.
      if (cfg_.silent_evict() &&
          static_cast<CacheState>(line[0]) == CacheState::kS &&
          s.evicts_used < cfg_.max_evicts) {
        Successor suc;
        suc.state = s;
        ++suc.state.evicts_used;
        suc.state.cache[n * cfg_.blocks + b] = {0, 0};
        suc.action.type = Action::Type::kEvict;
        suc.action.node = static_cast<std::uint8_t>(n);
        suc.action.block = static_cast<std::uint8_t>(b);
        out->push_back(std::move(suc));
      }
    }
  }
}

void Model::fault_steps(const State& s, std::vector<Successor>* out) const {
  if (!cfg_.faults) return;
  // A drop is absorbed by the transport's retransmission (the simulator's
  // use_net loop): the message stays in flight, the retry budget pays.
  if (s.drops_used < cfg_.max_drops && !s.net.empty()) {
    Successor suc;
    suc.state = s;
    ++suc.state.drops_used;
    ++suc.state.retries_total;
    if (suc.state.retries_total > cfg_.retry_max)
      fail_step(&suc.state, "retry budget exhausted by fabric drops");
    suc.action.type = Action::Type::kDrop;
    out->push_back(std::move(suc));
  }
  if (s.dups_used < cfg_.max_dups) {
    for (std::size_t i = 0; i < s.net.size(); ++i) {
      if (!is_request(s.net[i].kind)) continue;
      bool seen = false;
      for (std::size_t j = 0; j < i; ++j)
        if (s.net[j] == s.net[i]) { seen = true; break; }
      if (seen) continue;
      Successor suc;
      suc.state = s;
      ++suc.state.dups_used;
      suc.state.net.push_back(s.net[i]);
      suc.action.type = Action::Type::kDup;
      suc.action.msg = s.net[i];
      out->push_back(std::move(suc));
    }
  }
}

void Model::successors(const State& s, std::vector<Successor>* out) const {
  out->clear();
  issue_ops(s, out);
  for (std::size_t i = 0; i < s.net.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j)
      if (s.net[j] == s.net[i]) { seen = true; break; }
    if (seen) continue;  // identical in-flight copies: one delivery suffices
    State base = s;
    base.net.erase(base.net.begin() + static_cast<std::ptrdiff_t>(i));
    deliver(base, s.net[i], out);
  }
  for (std::uint32_t b = 0; b < cfg_.blocks; ++b) {
    if (s.home[b].busy || s.home[b].queue.empty()) continue;
    const Msg m = s.home[b].queue.front();
    State base = s;
    base.home[b].queue.erase(base.home[b].queue.begin());
    if (m.aux <= base.home_served[m.src]) {
      Successor suc;
      suc.state = std::move(base);
      suc.action.type = Action::Type::kProcess;
      suc.action.msg = m;
      suc.invisible = true;  // stale queued duplicate
      out->push_back(std::move(suc));
    } else {
      process_request(base, m, Action::Type::kProcess, out);
    }
  }
  kernel_steps(s, out);
  fault_steps(s, out);
}

std::string Model::check(const State& s) const {
  if (!s.violation.empty()) return s.violation;
  std::ostringstream os;
  for (std::uint32_t b = 0; b < cfg_.blocks; ++b) {
    std::uint32_t writer = kNoOwner;
    for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
      const auto line = s.cache[n * cfg_.blocks + b];
      const auto cs = static_cast<CacheState>(line[0]);
      if (cs == CacheState::kM) {
        if (writer != kNoOwner) {
          os << "SWMR violated on b" << b << ": n" << writer << " and n" << n
             << " both hold it modified";
          return os.str();
        }
        writer = n;
      }
    }
    if (writer != kNoOwner) {
      for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
        if (n == writer) continue;
        if (static_cast<CacheState>(s.cache[n * cfg_.blocks + b][0]) !=
            CacheState::kI) {
          os << "SWMR violated on b" << b << ": n" << writer
             << " holds it modified while n" << n << " holds a readable copy";
          return os.str();
        }
      }
    }
    // Data value: every readable copy carries the last *completed* store.
    for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
      const auto line = s.cache[n * cfg_.blocks + b];
      if (static_cast<CacheState>(line[0]) == CacheState::kI) continue;
      if (line[1] != s.committed[b]) {
        os << "data-value violated on b" << b << ": n" << n << " reads v"
           << int(line[1]) << " but the last completed store wrote v"
           << int(s.committed[b]);
        return os.str();
      }
    }
    // Directory structure: an exclusive entry's copyset is exactly its owner.
    if (s.dir_owner[b] != kNoOwner &&
        s.dir_sharers[b] != (1u << s.dir_owner[b])) {
      os << "directory invariant violated on b" << b
         << ": owner n" << int(s.dir_owner[b])
         << " recorded but copyset is 0x" << std::hex
         << int(s.dir_sharers[b]);
      return os.str();
    }
    // Agreement checks hold between transactions only.
    if (!s.home[b].busy) {
      for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
        const auto line = s.cache[n * cfg_.blocks + b];
        const auto cs = static_cast<CacheState>(line[0]);
        if (cs == CacheState::kM && s.dir_owner[b] != n) {
          os << "directory/owner disagreement on b" << b << ": n" << n
             << " holds it modified but the directory records "
             << (s.dir_owner[b] == kNoOwner
                     ? std::string("no owner")
                     : "owner n" + std::to_string(int(s.dir_owner[b])));
          return os.str();
        }
        if (cs != CacheState::kI && ((s.dir_sharers[b] >> n) & 1u) == 0) {
          os << "directory/owner disagreement on b" << b << ": n" << n
             << " holds a copy the directory does not record";
          return os.str();
        }
      }
      if (s.dir_owner[b] != kNoOwner) {
        const std::uint32_t o = s.dir_owner[b];
        if (static_cast<CacheState>(s.cache[o * cfg_.blocks + b][0]) !=
            CacheState::kM) {
          os << "directory/owner disagreement on b" << b
             << ": directory records owner n" << o
             << " but that node does not hold the block modified";
          return os.str();
        }
      } else if (s.home[b].mem_version != s.committed[b]) {
        os << "memory currency violated on b" << b << ": home holds v"
           << int(s.home[b].mem_version) << " with no dirty owner, but the "
           << "last completed store wrote v" << int(s.committed[b]);
        return os.str();
      }
    }
  }
  if (s.retries_total > cfg_.retry_max) {
    os << "retry budget exhausted: " << int(s.retries_total)
       << " retries > retry_max " << cfg_.retry_max;
    return os.str();
  }
  return "";
}

bool Model::final_state(const State& s) const {
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    if (s.ops_done[n] < cfg_.ops_per_node) return false;
    if (s.pending[n].active) return false;
  }
  if (!s.net.empty()) return false;
  for (const HomeBlock& hb : s.home)
    if (hb.busy || !hb.queue.empty()) return false;
  return true;
}

}  // namespace ascoma::check
