#pragma once

// Message-level protocol model for exhaustive checking.
//
// The timing simulator executes each memory access atomically (a processor
// blocks on its single outstanding miss), so a seed-driven run can only
// sample transaction *orders*, never message *interleavings*.  This model
// re-derives the protocol from the same proto::TransitionTable the simulator
// consults, but places every protocol message (requests, data/grant replies,
// 3-hop forwards, invalidations, acks, NACKs) into an explicitly-modelled
// network where deliveries happen in any order — the asynchronous semantics
// the table promises.  tools/ascoma_modelcheck then explores every reachable
// state of a small configuration (2-3 nodes, 1-2 blocks, a few ops per node)
// and checks:
//
//   * SWMR            — at most one writer, never a writer beside readers;
//   * data value      — any readable cached copy holds the value of the last
//                       *completed* store (version counters stand in for
//                       data, as in Murphi/TLA+ cache-protocol models);
//   * directory/owner agreement — between transactions, the directory entry
//                       and the caches tell the same story;
//   * memory currency — with no dirty owner, home memory is current;
//   * deadlock freedom — every non-quiescent state has a successor;
//   * bounded retries — drop/NACK recovery stays within the retry budget.
//
// Abstractions mirrored from the simulator (see docs/ARCHITECTURE.md §12):
// the home engine serializes transactions per block (a busy block queues
// later requests, exactly as engine occupancy does in the simulator);
// transaction completion at the requester atomically releases the home's
// busy state (the simulator's global atomicity implies this "unblock");
// stores are full-line writes, so an ownership grant needs no data payload.
//
// Known-bad protocol mutations (Mutation) perturb either the transition
// table copy or the message handlers; each must drive at least one
// invariant to a violation, which is what tests/test_check.cc asserts.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "proto/transition_table.hh"

namespace ascoma::check {

// ---- configuration ----------------------------------------------------------

/// Known-bad protocol mutations for checker regression tests.
enum class Mutation : std::uint8_t {
  kNone,
  /// A sharer invalidates but its ack is never sent: the writer waits
  /// forever (deadlock).
  kDropInvalAck,
  /// The table keeps the old owner recorded when a read downgrades it
  /// (Exclusive x GETS drops kClearOwner): a later request is forwarded to
  /// a node that no longer owns the data.
  kStaleOwnerOnDowngrade,
  /// The table's NACK rows stop being no-ops (a NACK removes the requester
  /// from the copyset): a stale readable copy survives later writes.
  kNackMutatesDirectory,
  /// The home applies an ownership upgrade but the grant is never sent.
  kLostUpgrade,
  /// The home sends every shared-data reply twice and the requester installs
  /// whatever arrives: a stale late reply resurrects an invalidated copy.
  kDoubleDataReply,
};
inline constexpr int kNumMutations = 6;

const char* to_string(Mutation m);
bool parse_mutation(const std::string& name, Mutation* out);

struct CheckConfig {
  std::uint32_t nodes = 2;         ///< 2..4
  std::uint32_t blocks = 1;        ///< 1..2 (block b's home is b % nodes)
  std::uint32_t ops_per_node = 2;  ///< load/store budget per node
  ArchModel arch = ArchModel::kAsComa;
  bool faults = false;     ///< enable the drop/dup/NACK budgets below
  std::uint32_t max_drops = 1;  ///< fabric drops (absorbed by retransmission)
  std::uint32_t max_dups = 1;   ///< duplicated requests reaching the home
  std::uint32_t max_nacks = 1;  ///< forced home NACKs
  std::uint32_t retry_max = 8;  ///< bounded-retry liveness budget
  /// Kernel-daemon rule budgets (Murphi-style): flush/evict can fire at any
  /// point up to these totals, which keeps exhaustive search tractable while
  /// still covering every replacement race against in-flight transactions.
  std::uint32_t max_flushes = 2;
  std::uint32_t max_evicts = 2;
  Mutation mutation = Mutation::kNone;

  /// NUMA-style silent eviction (RAC/L1 conflict): a clean shared copy
  /// disappears without telling the directory.
  bool silent_evict() const { return arch != ArchModel::kScoma; }
  /// S-COMA-style page flush: the node releases its copy and notifies the
  /// home (Directory FLUSH row).
  bool flush_notify() const { return arch != ArchModel::kCcNuma; }
};

// ---- model state ------------------------------------------------------------

/// Requester-side cache state (L1 + RAC/S-COMA frame merged per node).
enum class CacheState : std::uint8_t { kI, kS, kM };

enum class MsgKind : std::uint8_t {
  kReqS,         ///< read request, requester -> home
  kReqX,         ///< write request (data needed), requester -> home
  kReqUp,        ///< ownership upgrade (copy held), requester -> home
  kData,         ///< shared fill, home -> requester (version)
  kDataEx,       ///< exclusive fill, home -> requester (version, acks)
  kGrant,        ///< ownership only, home -> requester (acks)
  kFwdS,         ///< 3-hop read forward, home -> owner (aux = requester)
  kFwdX,         ///< 3-hop write forward, home -> owner (aux = requester)
  kOwnerData,    ///< owner supplies shared data, owner -> requester
  kOwnerDataEx,  ///< owner supplies exclusive data, owner -> requester
  kInval,        ///< invalidation, home -> sharer (aux = requester)
  kInvAck,       ///< invalidation ack, sharer -> requester
  kNackMsg,      ///< home refused the request, home -> requester
};

const char* to_string(MsgKind k);

struct Msg {
  std::uint8_t kind = 0;     ///< MsgKind
  std::uint8_t src = 0;
  std::uint8_t dst = 0;
  std::uint8_t block = 0;
  std::uint8_t version = 0;  ///< data payload (version counter)
  std::uint8_t aux = 0;      ///< per-kind: requester id or expected acks

  friend bool operator==(const Msg&, const Msg&) = default;
  friend auto operator<=>(const Msg&, const Msg&) = default;
};

/// One outstanding request of a node (the simulator's single blocking miss).
struct Pending {
  std::uint8_t active = 0;
  std::uint8_t kind = 0;   ///< MsgKind of the request
  std::uint8_t block = 0;
  std::uint8_t serial = 0;  ///< per-node request serial (home dedups on it)
  std::uint8_t have_data = 0;
  std::uint8_t data_version = 0;
  std::uint8_t acks_needed = 0;  ///< valid once have_data
  std::uint8_t acks_got = 0;
  std::uint8_t retries = 0;      ///< NACK-driven re-issues of this request
};

inline constexpr std::uint32_t kMaxQueuedPerBlock = 8;

/// Home-side per-block transaction serialization (the engine's backlog).
struct HomeBlock {
  std::uint8_t busy = 0;      ///< a transaction is in flight
  std::uint8_t busy_req = 0;  ///< its requester
  std::uint8_t mem_version = 0;
  std::vector<Msg> queue;     ///< deferred requests, FIFO
};

struct State {
  // cache[node][block], dir entries and home blocks per block.
  std::vector<std::array<std::uint8_t, 2>> cache;  // {state, version}
  std::vector<std::uint8_t> dir_owner;    ///< kNoOwner when none
  std::vector<std::uint8_t> dir_sharers;  ///< bitmask
  std::vector<HomeBlock> home;
  std::vector<Pending> pending;           ///< per node
  std::vector<std::uint8_t> ops_done;     ///< per node
  std::vector<std::uint8_t> committed;    ///< per block: last completed store
  std::vector<std::uint8_t> store_seq;    ///< per block: store counter
  std::vector<Msg> net;                   ///< in-flight messages (multiset)
  /// Per node: serial of the last request issued / last one the home served.
  /// The home discards a request whose serial it has already served — the
  /// transaction-id dedup a real directory controller performs, and the
  /// reason fabric-duplicated requests cannot corrupt a pristine protocol.
  std::vector<std::uint8_t> req_seq;
  std::vector<std::uint8_t> home_served;
  std::uint8_t drops_used = 0;
  std::uint8_t dups_used = 0;
  std::uint8_t nacks_used = 0;
  std::uint8_t flushes_used = 0;
  std::uint8_t evicts_used = 0;
  std::uint8_t retries_total = 0;

  /// Violation raised while *generating* this state (fatal row reached,
  /// forward to a non-owner, retry budget blown).  Not part of encode():
  /// Model::check() reports it before sweeping the state invariants.
  std::string violation;

  /// Canonical byte encoding (messages sorted) — the hash key.  Lossless
  /// given the configuration: decode_state() inverts it, which lets the
  /// explorer keep only encodings and re-materialize states on demand.
  std::string encode() const;
};

/// Inverse of State::encode() for a given configuration ('violation' is not
/// encoded and decodes empty; violating states are terminal, never stored).
State decode_state(const CheckConfig& cfg, const std::string& enc);

/// Multi-line human-readable rendering (counterexample epilogue).
std::string describe_state(const CheckConfig& cfg, const State& s);

inline constexpr std::uint8_t kNoOwner = 0xff;

// ---- transitions ------------------------------------------------------------

/// A transition label, formatted lazily into counterexample traces.
struct Action {
  enum class Type : std::uint8_t {
    kIssue,    ///< node issues a load/store (node, block, is_store)
    kLocal,    ///< node satisfies a load/store locally (node, block, is_store)
    kDeliver,  ///< a network message is delivered (msg)
    kProcess,  ///< home dequeues a deferred request (msg)
    kNack,     ///< home refuses a request (msg = the refused request)
    kFlush,    ///< node flushes its copy and notifies home (node, block)
    kEvict,    ///< node silently evicts a clean copy (node, block)
    kDrop,     ///< fabric drops a message; sender retransmits
    kDup,      ///< fabric duplicates a request in flight (msg)
  };
  Type type = Type::kIssue;
  Msg msg;
  std::uint8_t node = 0;
  std::uint8_t block = 0;
  std::uint8_t is_store = 0;

  std::string format() const;
};

/// One checker step: the successor state, the label that produced it, and
/// whether the label is "invisible" (commutes with every other enabled
/// transition and touches no invariant — the partial-order-reduction hook).
struct Successor {
  State state;
  Action action;
  bool invisible = false;
};

/// The protocol model: pure functions from a state to its successors and
/// invariant verdicts.  Holds the (possibly mutated) transition table copy.
class Model {
 public:
  explicit Model(const CheckConfig& cfg);

  const CheckConfig& config() const { return cfg_; }
  const proto::TransitionTable& table() const { return table_; }
  /// Mutable table access for bespoke mutation studies (tests).
  proto::TransitionTable& table() { return table_; }

  State initial() const;

  /// All transitions enabled in `s`.  A violation discovered while
  /// *generating* a successor (fatal row reached, forward to a non-owner,
  /// retry budget exceeded, ...) is reported via the successor's state being
  /// flagged by check() afterwards — generation stores the violation text in
  /// the returned Successor's state via `violation`.
  void successors(const State& s, std::vector<Successor>* out) const;

  /// Invariant sweep.  Returns an empty string when `s` is healthy, else a
  /// one-line violation description.
  std::string check(const State& s) const;

  /// True when `s` is quiescent-complete: every node finished its program,
  /// nothing is pending, in flight, queued, or busy.
  bool final_state(const State& s) const;

  /// Model node index of block's home.  The model's node currency is the
  /// packed std::uint8_t index of its abstract state (NodeId belongs to the
  /// simulated machine); conversions happen at the tests' comparison points.
  std::uint8_t home_of(std::uint32_t block) const {
    return static_cast<std::uint8_t>(block % cfg_.nodes);
  }

 private:
  /// Deliver `m` (already removed from `base.net`): appends one successor
  /// per behavior the delivery enables.
  void deliver(const State& base, const Msg& m,
               std::vector<Successor>* out) const;
  /// Home processes request `m` now (block must not be busy).  Appends the
  /// normal-processing successor; with NACK budget left, also the refusal.
  void process_request(const State& s, const Msg& m, Action::Type label,
                       std::vector<Successor>* out) const;
  void apply_request(State* s, const Msg& m) const;
  void complete_if_ready(State* s, std::uint8_t n) const;
  void issue_ops(const State& s, std::vector<Successor>* out) const;
  void fault_steps(const State& s, std::vector<Successor>* out) const;
  void kernel_steps(const State& s, std::vector<Successor>* out) const;

  /// Mirror of Directory::apply over the packed entry; kept in lock-step by
  /// ModelDirectoryAgreement in tests/test_check.cc.
  const proto::Transition& dir_apply(State* s, std::uint32_t block,
                                     proto::ProtoMsg msg,
                                     std::uint8_t requester,
                                     std::uint8_t* dirty_owner,
                                     std::vector<std::uint8_t>* invalidate)
      const;

  proto::DirState dir_state(const State& s, std::uint32_t b) const;
  proto::ReqRel dir_rel(const State& s, std::uint32_t b, std::uint8_t n) const;

  static void fail_step(State* s, std::string why);

  CheckConfig cfg_;
  proto::TransitionTable table_;
};

/// Applies `m` to a pristine-table copy (the table and/or handler flags the
/// Model consults).  Exposed so tests can build mutated tables directly.
void apply_mutation(proto::TransitionTable* table, Mutation m);

}  // namespace ascoma::check
