#pragma once

// Model-agnostic explicit-state exploration core.
//
// The search (BFS for minimal counterexamples, DFS for quick deep probes,
// canonical-encoding visited set, partial-order reduction on invisible
// successors) is independent of *what* is being checked; explore_model()
// below is the template both checkers instantiate:
//
//   * check::Model       — the message-level coherence-protocol model
//                          (explorer.hh keeps the original explore() entry);
//   * check::PolicyModel — the AS-COMA adaptive-policy model
//                          (policy_model.hh).
//
// A model type M must provide:
//
//   using StateT     = ...;   // .encode() -> std::string (canonical, lossless)
//   using ActionT    = ...;   // .format() -> std::string (trace line)
//   using SuccessorT = ...;   // fields: state, action, invisible
//
//   StateT initial() const;
//   StateT decode(const std::string& enc) const;       // inverse of encode()
//   void successors(const StateT&, std::vector<SuccessorT>*) const;
//   std::string check(const StateT&) const;            // "" when healthy
//   bool final_state(const StateT&) const;             // quiescent-complete
//   std::string describe(const StateT&) const;         // counterexample dump
//
// The visited set stores only encodings and re-materializes states through
// decode(), so memory stays proportional to the number of distinct states.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace ascoma::check {

struct ExploreOptions {
  bool dfs = false;       ///< depth-first instead of breadth-first
  bool por = true;        ///< partial-order reduction on invisible steps
  std::uint64_t max_states = 2'000'000;  ///< visited-set cap (then truncated)
};

struct ExploreResult {
  bool ok = true;          ///< no violation found
  bool truncated = false;  ///< hit max_states before exhausting the space
  std::string violation;   ///< first violation (empty when ok)
  std::vector<std::string> trace;  ///< action sequence reaching the violation
  std::string final_dump;  ///< rendering of the violating state
  std::uint64_t states = 0;       ///< distinct states visited
  std::uint64_t transitions = 0;  ///< edges explored (post-reduction)
  std::uint64_t finals = 0;       ///< quiescent-complete states reached

  /// Multi-line report (verdict, stats, counterexample if any).
  std::string report() const;
};

namespace detail {

/// Search bookkeeping plus the generic loop.  One instance per explore call.
template <class ModelT>
struct GenericSearch {
  using StateT = typename ModelT::StateT;
  using ActionT = typename ModelT::ActionT;
  using SuccessorT = typename ModelT::SuccessorT;

  /// How a visited state was reached (counterexample reconstruction).
  struct NodeRec {
    std::uint32_t parent = 0;  ///< index of the predecessor (self for root)
    ActionT action;            ///< label of the edge from the predecessor
  };

  const ModelT& model;
  const ExploreOptions& opts;
  ExploreResult result;

  // encoding -> node index; the key string is stable (node-based map), so
  // `encodings` can point into it instead of duplicating bytes.
  std::unordered_map<std::string, std::uint32_t> visited;
  std::vector<NodeRec> nodes;
  std::vector<const std::string*> encodings;
  std::deque<std::uint32_t> frontier;

  GenericSearch(const ModelT& m, const ExploreOptions& o)
      : model(m), opts(o) {}

  /// Registers `enc` if unseen; returns true when it was new.
  bool insert(std::string enc, std::uint32_t parent, const ActionT& a,
              std::uint32_t* idx) {
    auto [it, fresh] = visited.emplace(
        std::move(enc), static_cast<std::uint32_t>(nodes.size()));
    *idx = it->second;
    if (!fresh) return false;
    nodes.push_back(NodeRec{parent, a});
    encodings.push_back(&it->first);
    return true;
  }

  std::vector<std::string> trace_to(std::uint32_t idx) const {
    std::vector<std::string> steps;
    while (nodes[idx].parent != idx) {
      steps.push_back(nodes[idx].action.format());
      idx = nodes[idx].parent;
    }
    std::reverse(steps.begin(), steps.end());
    return steps;
  }

  void report_violation(std::uint32_t parent_idx, const SuccessorT& suc,
                        const std::string& why) {
    result.ok = false;
    result.violation = why;
    result.trace = trace_to(parent_idx);
    result.trace.push_back(suc.action.format());
    result.final_dump = model.describe(suc.state);
  }

  void run() {
    const StateT init = model.initial();
    {
      const std::string why = model.check(init);
      if (!why.empty()) {
        result.ok = false;
        result.violation = why;
        result.final_dump = model.describe(init);
        return;
      }
    }
    std::uint32_t root = 0;
    insert(init.encode(), 0, ActionT{}, &root);
    frontier.push_back(root);
    result.states = 1;

    std::vector<SuccessorT> sucs;
    while (!frontier.empty()) {
      std::uint32_t idx;
      if (opts.dfs) {
        idx = frontier.back();
        frontier.pop_back();
      } else {
        idx = frontier.front();
        frontier.pop_front();
      }
      const StateT s = model.decode(*encodings[idx]);
      model.successors(s, &sucs);

      if (sucs.empty()) {
        if (model.final_state(s)) {
          ++result.finals;
        } else {
          result.ok = false;
          result.violation =
              "deadlock: no enabled transition in a non-quiescent state";
          result.trace = trace_to(idx);
          result.final_dump = model.describe(s);
          return;
        }
        continue;
      }

      // Partial-order reduction: one invisible successor is an ample set.
      if (opts.por) {
        for (auto& suc : sucs) {
          if (!suc.invisible) continue;
          SuccessorT only = std::move(suc);
          sucs.clear();
          sucs.push_back(std::move(only));
          break;
        }
      }

      for (const SuccessorT& suc : sucs) {
        ++result.transitions;
        const std::string why = model.check(suc.state);
        if (!why.empty()) {
          report_violation(idx, suc, why);
          return;
        }
        std::uint32_t child;
        if (insert(suc.state.encode(), idx, suc.action, &child)) {
          ++result.states;
          if (result.states >= opts.max_states) {
            result.truncated = true;
            return;
          }
          frontier.push_back(child);
        }
      }
    }
  }
};

}  // namespace detail

/// Explores every state of `model` reachable from model.initial().
template <class ModelT>
ExploreResult explore_model(const ModelT& model, const ExploreOptions& opts) {
  detail::GenericSearch<ModelT> search(model, opts);
  search.run();
  return std::move(search.result);
}

}  // namespace ascoma::check
