#include "check/explorer.hh"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>

namespace ascoma::check {

namespace {

/// Search bookkeeping for one visited state: how we got there.
struct NodeRec {
  std::uint32_t parent = 0;  ///< index of the predecessor (self for root)
  Action action;             ///< label of the edge from the predecessor
};

struct Search {
  const Model& model;
  const ExploreOptions& opts;
  ExploreResult result;

  // encoding -> node index; the key string is stable (node-based map), so
  // `encodings` can point into it instead of duplicating bytes.
  std::unordered_map<std::string, std::uint32_t> visited;
  std::vector<NodeRec> nodes;
  std::vector<const std::string*> encodings;
  std::deque<std::uint32_t> frontier;

  explicit Search(const Model& m, const ExploreOptions& o)
      : model(m), opts(o) {}

  /// Registers `enc` if unseen; returns true when it was new.
  bool insert(std::string enc, std::uint32_t parent, const Action& a,
              std::uint32_t* idx) {
    auto [it, fresh] = visited.emplace(std::move(enc),
                                       static_cast<std::uint32_t>(nodes.size()));
    *idx = it->second;
    if (!fresh) return false;
    nodes.push_back(NodeRec{parent, a});
    encodings.push_back(&it->first);
    return true;
  }

  std::vector<std::string> trace_to(std::uint32_t idx) const {
    std::vector<std::string> steps;
    while (nodes[idx].parent != idx) {
      steps.push_back(nodes[idx].action.format());
      idx = nodes[idx].parent;
    }
    std::reverse(steps.begin(), steps.end());
    return steps;
  }

  void report_violation(std::uint32_t parent_idx, const Successor& suc,
                        const std::string& why) {
    result.ok = false;
    result.violation = why;
    result.trace = trace_to(parent_idx);
    result.trace.push_back(suc.action.format());
    result.final_dump = describe_state(model.config(), suc.state);
  }

  void run() {
    const State init = model.initial();
    {
      const std::string why = model.check(init);
      if (!why.empty()) {
        result.ok = false;
        result.violation = why;
        result.final_dump = describe_state(model.config(), init);
        return;
      }
    }
    std::uint32_t root = 0;
    insert(init.encode(), 0, Action{}, &root);
    frontier.push_back(root);
    result.states = 1;

    std::vector<Successor> sucs;
    while (!frontier.empty()) {
      std::uint32_t idx;
      if (opts.dfs) {
        idx = frontier.back();
        frontier.pop_back();
      } else {
        idx = frontier.front();
        frontier.pop_front();
      }
      const State s = decode_state(model.config(), *encodings[idx]);
      model.successors(s, &sucs);

      if (sucs.empty()) {
        if (model.final_state(s)) {
          ++result.finals;
        } else {
          result.ok = false;
          result.violation =
              "deadlock: no enabled transition in a non-quiescent state";
          result.trace = trace_to(idx);
          result.final_dump = describe_state(model.config(), s);
          return;
        }
        continue;
      }

      // Partial-order reduction: one invisible successor is an ample set.
      if (opts.por) {
        for (auto& suc : sucs) {
          if (!suc.invisible) continue;
          Successor only = std::move(suc);
          sucs.clear();
          sucs.push_back(std::move(only));
          break;
        }
      }

      for (const Successor& suc : sucs) {
        ++result.transitions;
        const std::string why = model.check(suc.state);
        if (!why.empty()) {
          report_violation(idx, suc, why);
          return;
        }
        std::uint32_t child;
        if (insert(suc.state.encode(), idx, suc.action, &child)) {
          ++result.states;
          if (result.states >= opts.max_states) {
            result.truncated = true;
            return;
          }
          frontier.push_back(child);
        }
      }
    }
  }
};

}  // namespace

std::string ExploreResult::report() const {
  std::ostringstream os;
  if (ok) {
    os << (truncated ? "INCONCLUSIVE (state cap hit)" : "PASS") << ": "
       << states << " states, " << transitions << " transitions, " << finals
       << " final states\n";
    return os.str();
  }
  os << "VIOLATION: " << violation << "\n";
  os << "counterexample (" << trace.size() << " steps):\n";
  for (std::size_t i = 0; i < trace.size(); ++i)
    os << "  " << (i + 1) << ". " << trace[i] << "\n";
  os << "violating state:\n" << final_dump;
  os << "explored " << states << " states, " << transitions
     << " transitions before the violation\n";
  return os.str();
}

ExploreResult explore(const Model& model, const ExploreOptions& opts) {
  Search search(model, opts);
  search.run();
  return std::move(search.result);
}

}  // namespace ascoma::check
