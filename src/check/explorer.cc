#include "check/explorer.hh"

#include <sstream>
#include <utility>

namespace ascoma::check {

namespace {

/// Adapts check::Model (whose decode/describe are free functions taking the
/// configuration) to the interface explore_model<ModelT> expects.
struct ProtocolModelView {
  using StateT = State;
  using ActionT = Action;
  using SuccessorT = Successor;

  const Model& m;

  State initial() const { return m.initial(); }
  State decode(const std::string& enc) const {
    return decode_state(m.config(), enc);
  }
  void successors(const State& s, std::vector<Successor>* out) const {
    m.successors(s, out);
  }
  std::string check(const State& s) const { return m.check(s); }
  bool final_state(const State& s) const { return m.final_state(s); }
  std::string describe(const State& s) const {
    return describe_state(m.config(), s);
  }
};

}  // namespace

std::string ExploreResult::report() const {
  std::ostringstream os;
  if (ok) {
    os << (truncated ? "INCONCLUSIVE (state cap hit)" : "PASS") << ": "
       << states << " states, " << transitions << " transitions, " << finals
       << " final states\n";
    return os.str();
  }
  os << "VIOLATION: " << violation << "\n";
  os << "counterexample (" << trace.size() << " steps):\n";
  for (std::size_t i = 0; i < trace.size(); ++i)
    os << "  " << (i + 1) << ". " << trace[i] << "\n";
  os << "violating state:\n" << final_dump;
  os << "explored " << states << " states, " << transitions
     << " transitions before the violation\n";
  return os.str();
}

ExploreResult explore(const Model& model, const ExploreOptions& opts) {
  return explore_model(ProtocolModelView{model}, opts);
}

}  // namespace ascoma::check
