#pragma once

// Abstract-state model of the AS-COMA adaptive policy layer for exhaustive
// checking (tools/ascoma_policycheck).
//
// PR 4's protocol checker covers the coherence layer; this model covers the
// paper's actual contribution — the per-node policy state machine: S-COMA-
// first allocation while the free pool lasts, CC-NUMA -> S-COMA upgrade on
// the refetch threshold, and the pageout-daemon back-off that converges to
// pure CC-NUMA behaviour under sustained memory pressure (PAPER.md §1–§2).
// The back-off/relaxation transitions are not re-derived: the model drives
// the very arch::BackoffKernel the simulator's AsComaPolicy executes,
// instantiated with tiny abstract constants (threshold 1 step from max,
// period 4..16 cycles) so the state space stays exhaustively explorable.
//
// State per node: the kernel's BackoffState, the live daemon period, the
// mapping mode and saturating refetch counter of each remote page this node
// may touch, and two environment budgets (touches, daemon runs) that bound
// the exploration.  Free frames are derived: free = pool_frames − #S-COMA
// pages, which keeps frame accounting an invariant rather than a variable.
//
// Nondeterministic environment transitions per node:
//   * touch page p      — first touch maps via the policy's initial-mode
//                         rule; CC-NUMA touches count refetches and attempt
//                         the threshold upgrade; pool-drained upgrades are
//                         suppressed and mark the node thrashing;
//   * daemon run fails  — BackoffKernel::on_pressure, explored both within
//                         the rate-limit period and after it elapses;
//   * daemon run succeeds — BackoffKernel::on_healthy, optionally reclaiming
//                         one S-COMA page (the downgrade victim).
//
// Checked properties (the paper's §2 claims, as transition assertions plus
// state invariants; violations carry BFS-minimal counterexamples):
//   * back-off monotonicity — an accepted pressure step never lowers the
//     threshold and, until fully converged, must raise it or disable
//     remapping; the daemon period must lengthen until saturated;
//   * convergence to CC-NUMA — with the threshold saturated, the next
//     accepted pressure step disables remapping; no S-COMA-first allocation
//     and no upgrades while thrashing/disabled;
//   * recovery — an accepted healthy step never raises the threshold or
//     lengthens the period, must make relaxation progress until full
//     health, and full health clears the thrashing flag (S-COMA mapping
//     resumes);
//   * frame accounting — S-COMA mappings never exceed the pool.
//
// Nodes share no policy state (each node's pool, kernel, and counters are
// private), so by default the model schedules the lowest-indexed node that
// still has an enabled transition — a persistent-set reduction that is
// sound and complete for these per-node properties.  --full-interleaving
// restores the full product for cross-checking on tiny budgets.
//
// Known-bad policy mutations (PolicyMutation) perturb the kernel-step
// results or the upgrade guards; each must drive at least one property to a
// violation, which tests/test_policy_check.cc asserts.

#include <cstdint>
#include <string>
#include <vector>

#include "arch/backoff_kernel.hh"
#include "check/explore_core.hh"
#include "common/types.hh"

namespace ascoma::check {

// ---- configuration ----------------------------------------------------------

/// Known-bad policy mutations for checker regression tests.
enum class PolicyMutation : std::uint8_t {
  kNone,
  /// Back-off forgets to raise the refetch threshold: pressure never
  /// escalates and the node cannot converge to CC-NUMA.
  kThresholdNeverRaised,
  /// Back-off forgets to stretch the daemon period: reclaim attempts keep
  /// firing at full rate under pressure.
  kPeriodNotLengthened,
  /// The upgrade path ignores the remap-enabled bit: pages keep upgrading
  /// to S-COMA after extreme pressure disabled remapping.
  kUpgradeWhileDisabled,
  /// The upgrade path ignores pool occupancy: an upgrade with no free frame
  /// overcommits the page-frame pool.
  kUpgradeIgnoresPool,
  /// Recovery never clears the thrashing flag: S-COMA-first allocation
  /// never resumes after pressure drops.
  kThrashingSticky,
};
inline constexpr int kNumPolicyMutations = 6;

const char* to_string(PolicyMutation m);
bool parse_policy_mutation(const std::string& name, PolicyMutation* out);

struct PolicyCheckConfig {
  std::uint32_t nodes = 2;           ///< 1..4
  std::uint32_t pages_per_node = 2;  ///< remote pages a node may map (1..4)
  std::uint32_t pool_frames = 1;     ///< S-COMA frames per node (1..3)
  std::uint32_t touches = 4;         ///< per-node page-touch budget
  std::uint32_t daemon_runs = 6;     ///< per-node pageout-daemon budget
  /// Persistent-set reduction over independent nodes (see header comment).
  bool ordered = true;
  PolicyMutation mutation = PolicyMutation::kNone;

  /// Abstract kernel constants: threshold 1 (initial) or 2 (max), daemon
  /// period 4 -> 8 -> 16 cycles, two healthy runs per relaxation step.
  arch::BackoffSettings settings() const {
    arch::BackoffSettings s;
    s.initial_threshold = 1;
    s.increment = 1;
    s.threshold_max = 2;
    s.initial_period = Cycle{4};
    s.period_max = Cycle{16};
    s.backoff_factor = 2.0;
    s.relax_streak = 2;
    return s;
  }
};

// ---- model state ------------------------------------------------------------

/// Mapping mode of one remote page on one node.
enum class PageState : std::uint8_t { kUnmapped, kNuma, kScoma };

const char* to_string(PageState p);

struct PolicyState {
  struct Page {
    std::uint8_t mode = 0;       ///< PageState
    std::uint8_t refetches = 0;  ///< saturating; meaningful in kNuma
  };
  struct Node {
    arch::BackoffState backoff;
    Cycle period{0};
    std::vector<Page> pages;
    std::uint8_t touches_left = 0;
    std::uint8_t daemon_left = 0;

    std::uint32_t scoma_count() const;
  };
  std::vector<Node> nodes;

  /// Violation raised while *generating* this state (property assertion
  /// failed on the transition).  Not part of encode(); Model::check()
  /// reports it before sweeping the state invariants.
  std::string violation;

  /// Canonical byte encoding — the hash key.  Lossless given the
  /// configuration: PolicyModel::decode() inverts it.
  std::string encode() const;
};

// ---- transitions ------------------------------------------------------------

/// A transition label, formatted lazily into counterexample traces.  The
/// outcome names what the policy decided, so traces read as policy states
/// ("mapped S-COMA", "upgrade suppressed: pool drained"), not raw ints.
struct PolicyAction {
  enum class Type : std::uint8_t {
    kTouch,       ///< node touches a remote page
    kDaemonFail,  ///< pageout daemon misses its free target
    kDaemonOk,    ///< pageout daemon meets its target (cold pages seen)
  };
  enum class Outcome : std::uint8_t {
    kNone,
    kMapScoma,      ///< first touch -> S-COMA (pool frame consumed)
    kMapNuma,       ///< first touch -> CC-NUMA (pool drained or thrashing)
    kScomaHit,      ///< page-cache hit on an S-COMA mapping
    kRefetch,       ///< CC-NUMA refetch below the threshold
    kUpgrade,       ///< threshold reached -> remapped to S-COMA
    kUpgradeDenied, ///< threshold reached but remapping is disabled
    kSuppressed,    ///< threshold reached but the pool is drained
    kSamePeriod,    ///< failure within the rate-limit period (absorbed)
    kNewPeriod,     ///< failure after the period elapsed (escalates)
    kReclaim,       ///< healthy run downgrades an S-COMA victim
    kNoVictim,      ///< healthy run with no S-COMA page to reclaim
  };

  Type type = Type::kTouch;
  Outcome outcome = Outcome::kNone;
  std::uint8_t node = 0;
  std::uint8_t page = 0;  ///< touched page or reclaim victim

  std::string format() const;
};

/// One checker step (explore_model's SuccessorT).
struct PolicySuccessor {
  PolicyState state;
  PolicyAction action;
  bool invisible = false;  ///< never set: every policy step is observable
};

/// The policy model: pure functions from a state to its successors and
/// property verdicts, instantiating explore_core.hh's model interface.
class PolicyModel {
 public:
  using StateT = PolicyState;
  using ActionT = PolicyAction;
  using SuccessorT = PolicySuccessor;

  explicit PolicyModel(const PolicyCheckConfig& cfg);

  const PolicyCheckConfig& config() const { return cfg_; }

  PolicyState initial() const;
  PolicyState decode(const std::string& enc) const;
  void successors(const PolicyState& s, std::vector<PolicySuccessor>* out) const;
  std::string check(const PolicyState& s) const;
  bool final_state(const PolicyState& s) const;
  std::string describe(const PolicyState& s) const;

 private:
  /// Appends every transition of node `n`; returns whether any was enabled.
  bool node_steps(const PolicyState& s, std::uint32_t n,
                  std::vector<PolicySuccessor>* out) const;
  void apply_touch(const PolicyState& s, std::uint32_t n, std::uint32_t p,
                   std::vector<PolicySuccessor>* out) const;
  void apply_daemon_fail(const PolicyState& s, std::uint32_t n,
                         bool period_elapsed,
                         std::vector<PolicySuccessor>* out) const;
  void apply_daemon_ok(const PolicyState& s, std::uint32_t n, int victim,
                       std::vector<PolicySuccessor>* out) const;

  PolicyCheckConfig cfg_;
  arch::BackoffSettings set_;
};

}  // namespace ascoma::check
