#include "check/policy_model.hh"

#include <sstream>
#include <utility>

#include "common/check.hh"

namespace ascoma::check {

// ---- names ------------------------------------------------------------------

const char* to_string(PolicyMutation m) {
  switch (m) {
    case PolicyMutation::kNone: return "none";
    case PolicyMutation::kThresholdNeverRaised: return "threshold-never-raised";
    case PolicyMutation::kPeriodNotLengthened: return "period-not-lengthened";
    case PolicyMutation::kUpgradeWhileDisabled: return "upgrade-while-disabled";
    case PolicyMutation::kUpgradeIgnoresPool: return "upgrade-ignores-pool";
    case PolicyMutation::kThrashingSticky: return "thrashing-sticky";
  }
  return "?";
}

bool parse_policy_mutation(const std::string& name, PolicyMutation* out) {
  for (int i = 0; i < kNumPolicyMutations; ++i) {
    const auto m = static_cast<PolicyMutation>(i);
    if (name == to_string(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

const char* to_string(PageState p) {
  switch (p) {
    case PageState::kUnmapped: return "unmapped";
    case PageState::kNuma: return "CC-NUMA";
    case PageState::kScoma: return "S-COMA";
  }
  return "?";
}

// ---- state ------------------------------------------------------------------

std::uint32_t PolicyState::Node::scoma_count() const {
  std::uint32_t n = 0;
  for (const Page& p : pages)
    if (static_cast<PageState>(p.mode) == PageState::kScoma) ++n;
  return n;
}

std::string PolicyState::encode() const {
  std::string enc;
  enc.reserve(nodes.size() * (6 + 2 * (nodes.empty() ? 0 : nodes[0].pages.size())));
  for (const Node& n : nodes) {
    enc.push_back(static_cast<char>(n.backoff.threshold));
    enc.push_back(static_cast<char>((n.backoff.relocation_enabled ? 1 : 0) |
                                    (n.backoff.thrashing ? 2 : 0) |
                                    (n.backoff.backed_off_once ? 4 : 0)));
    enc.push_back(static_cast<char>(n.backoff.success_streak));
    ASCOMA_CHECK(n.period.value() <= 0xff);
    enc.push_back(static_cast<char>(n.period.value()));
    enc.push_back(static_cast<char>(n.touches_left));
    enc.push_back(static_cast<char>(n.daemon_left));
    for (const Page& p : n.pages) {
      enc.push_back(static_cast<char>(p.mode));
      enc.push_back(static_cast<char>(p.refetches));
    }
  }
  return enc;
}

PolicyState PolicyModel::decode(const std::string& enc) const {
  PolicyState s;
  s.nodes.resize(cfg_.nodes);
  std::size_t i = 0;
  auto next = [&]() -> std::uint8_t {
    ASCOMA_CHECK(i < enc.size());
    return static_cast<std::uint8_t>(enc[i++]);
  };
  for (PolicyState::Node& n : s.nodes) {
    n.backoff.threshold = next();
    const std::uint8_t flags = next();
    n.backoff.relocation_enabled = (flags & 1) != 0;
    n.backoff.thrashing = (flags & 2) != 0;
    n.backoff.backed_off_once = (flags & 4) != 0;
    n.backoff.success_streak = next();
    n.period = Cycle{next()};
    n.touches_left = next();
    n.daemon_left = next();
    n.pages.resize(cfg_.pages_per_node);
    for (PolicyState::Page& p : n.pages) {
      p.mode = next();
      p.refetches = next();
    }
  }
  ASCOMA_CHECK(i == enc.size());
  return s;
}

std::string PolicyModel::describe(const PolicyState& s) const {
  std::ostringstream os;
  for (std::size_t n = 0; n < s.nodes.size(); ++n) {
    const PolicyState::Node& nd = s.nodes[n];
    os << "  node" << n << ": threshold=" << nd.backoff.threshold
       << (nd.backoff.threshold == set_.initial_threshold ? " (initial)"
           : nd.backoff.threshold >= set_.threshold_max   ? " (max)"
                                                          : " (raised)")
       << " remap=" << (nd.backoff.relocation_enabled ? "enabled" : "DISABLED")
       << (nd.backoff.thrashing ? " thrashing" : " healthy")
       << " period=" << nd.period.value()
       << " streak=" << nd.backoff.success_streak
       << " pool=" << (static_cast<std::int64_t>(cfg_.pool_frames) -
                       static_cast<std::int64_t>(nd.scoma_count()))
       << "/" << cfg_.pool_frames << " free"
       << " budgets(touch=" << static_cast<int>(nd.touches_left)
       << ",daemon=" << static_cast<int>(nd.daemon_left) << ")\n";
    for (std::size_t p = 0; p < nd.pages.size(); ++p) {
      os << "    page" << p << ": "
         << to_string(static_cast<PageState>(nd.pages[p].mode));
      if (static_cast<PageState>(nd.pages[p].mode) == PageState::kNuma)
        os << " (refetches " << static_cast<int>(nd.pages[p].refetches) << "/"
           << nd.backoff.threshold << ")";
      os << "\n";
    }
  }
  return os.str();
}

// ---- actions ----------------------------------------------------------------

std::string PolicyAction::format() const {
  std::ostringstream os;
  os << "node" << static_cast<int>(node);
  switch (type) {
    case Type::kTouch:
      os << " touches page" << static_cast<int>(page) << ": ";
      switch (outcome) {
        case Outcome::kMapScoma: os << "first touch -> mapped S-COMA"; break;
        case Outcome::kMapNuma: os << "first touch -> mapped CC-NUMA"; break;
        case Outcome::kScomaHit: os << "S-COMA page-cache hit"; break;
        case Outcome::kRefetch: os << "CC-NUMA refetch (below threshold)"; break;
        case Outcome::kUpgrade: os << "threshold reached -> upgraded to S-COMA"; break;
        case Outcome::kUpgradeDenied:
          os << "threshold reached, upgrade denied (remapping disabled)";
          break;
        case Outcome::kSuppressed:
          os << "threshold reached, upgrade suppressed (pool drained)";
          break;
        default: os << "?"; break;
      }
      break;
    case Type::kDaemonFail:
      os << ": pageout daemon misses its free target ";
      os << (outcome == Outcome::kSamePeriod
                 ? "(within the back-off period: absorbed)"
                 : "(a full period after the last back-off)");
      break;
    case Type::kDaemonOk:
      os << ": pageout daemon meets its target ";
      if (outcome == Outcome::kReclaim)
        os << "(reclaims S-COMA page" << static_cast<int>(page)
           << " -> CC-NUMA)";
      else
        os << "(cold pages found elsewhere)";
      break;
  }
  return os.str();
}

// ---- model ------------------------------------------------------------------

PolicyModel::PolicyModel(const PolicyCheckConfig& cfg)
    : cfg_(cfg), set_(cfg.settings()) {
  ASCOMA_CHECK(cfg_.nodes >= 1 && cfg_.nodes <= 4);
  ASCOMA_CHECK(cfg_.pages_per_node >= 1 && cfg_.pages_per_node <= 4);
  ASCOMA_CHECK(cfg_.pool_frames >= 1 && cfg_.pool_frames <= 3);
}

PolicyState PolicyModel::initial() const {
  PolicyState s;
  s.nodes.resize(cfg_.nodes);
  for (PolicyState::Node& n : s.nodes) {
    n.backoff.threshold = set_.initial_threshold;
    n.period = set_.initial_period;
    n.pages.resize(cfg_.pages_per_node);
    n.touches_left = static_cast<std::uint8_t>(cfg_.touches);
    n.daemon_left = static_cast<std::uint8_t>(cfg_.daemon_runs);
  }
  return s;
}

bool PolicyModel::final_state(const PolicyState& s) const {
  for (const PolicyState::Node& n : s.nodes)
    if (n.touches_left != 0 || n.daemon_left != 0) return false;
  return true;
}

void PolicyModel::successors(const PolicyState& s,
                             std::vector<PolicySuccessor>* out) const {
  out->clear();
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    const bool any = node_steps(s, n, out);
    // Nodes share no policy state, so exploring them in index order is a
    // sound persistent set for the per-node properties (header comment).
    if (cfg_.ordered && any) return;
  }
}

bool PolicyModel::node_steps(const PolicyState& s, std::uint32_t n,
                             std::vector<PolicySuccessor>* out) const {
  const std::size_t before = out->size();
  const PolicyState::Node& nd = s.nodes[n];
  if (nd.touches_left > 0)
    for (std::uint32_t p = 0; p < cfg_.pages_per_node; ++p)
      apply_touch(s, n, p, out);
  if (nd.daemon_left > 0) {
    apply_daemon_fail(s, n, /*period_elapsed=*/true, out);
    // Within the rate-limit period only matters once a back-off happened.
    if (nd.backoff.backed_off_once)
      apply_daemon_fail(s, n, /*period_elapsed=*/false, out);
    apply_daemon_ok(s, n, /*victim=*/-1, out);
    for (std::uint32_t p = 0; p < cfg_.pages_per_node; ++p)
      if (static_cast<PageState>(nd.pages[p].mode) == PageState::kScoma)
        apply_daemon_ok(s, n, static_cast<int>(p), out);
  }
  return out->size() != before;
}

void PolicyModel::apply_touch(const PolicyState& s, std::uint32_t n,
                              std::uint32_t p,
                              std::vector<PolicySuccessor>* out) const {
  PolicySuccessor suc;
  suc.state = s;
  suc.action.type = PolicyAction::Type::kTouch;
  suc.action.node = static_cast<std::uint8_t>(n);
  suc.action.page = static_cast<std::uint8_t>(p);
  PolicyState::Node& nd = suc.state.nodes[n];
  PolicyState::Page& pg = nd.pages[p];
  --nd.touches_left;

  arch::BackoffKernel kernel(set_);
  kernel.restore(nd.backoff);
  const std::uint32_t free_frames = cfg_.pool_frames - nd.scoma_count();

  switch (static_cast<PageState>(pg.mode)) {
    case PageState::kUnmapped:
      // AsComaPolicy::initial_mode: S-COMA-first while the pool lasts and
      // the node is not in back-off.
      if (!kernel.thrashing() && free_frames > 0) {
        pg.mode = static_cast<std::uint8_t>(PageState::kScoma);
        suc.action.outcome = PolicyAction::Outcome::kMapScoma;
      } else {
        pg.mode = static_cast<std::uint8_t>(PageState::kNuma);
        suc.action.outcome = PolicyAction::Outcome::kMapNuma;
      }
      break;
    case PageState::kScoma:
      suc.action.outcome = PolicyAction::Outcome::kScomaHit;
      break;
    case PageState::kNuma: {
      if (pg.refetches < set_.threshold_max)
        ++pg.refetches;  // saturating: threshold never exceeds the max
      if (pg.refetches < kernel.threshold()) {
        suc.action.outcome = PolicyAction::Outcome::kRefetch;
        break;
      }
      // Threshold reached: the fault handler asks should_relocate.
      const bool allowed =
          kernel.relocation_enabled() ||
          cfg_.mutation == PolicyMutation::kUpgradeWhileDisabled;
      if (!allowed) {
        suc.action.outcome = PolicyAction::Outcome::kUpgradeDenied;
        break;
      }
      const bool need_frame = cfg_.mutation != PolicyMutation::kUpgradeIgnoresPool;
      if (free_frames == 0 && need_frame) {
        // AsComaPolicy::on_remap_suppressed: a direct thrash signal.
        kernel.mark_thrashing();
        nd.backoff = kernel.state();
        suc.action.outcome = PolicyAction::Outcome::kSuppressed;
        break;
      }
      if (!kernel.relocation_enabled())
        suc.state.violation =
            "page upgraded to S-COMA while remapping is disabled";
      pg.mode = static_cast<std::uint8_t>(PageState::kScoma);
      pg.refetches = 0;
      suc.action.outcome = PolicyAction::Outcome::kUpgrade;
      break;
    }
  }
  out->push_back(std::move(suc));
}

void PolicyModel::apply_daemon_fail(const PolicyState& s, std::uint32_t n,
                                    bool period_elapsed,
                                    std::vector<PolicySuccessor>* out) const {
  PolicySuccessor suc;
  suc.state = s;
  suc.action.type = PolicyAction::Type::kDaemonFail;
  suc.action.outcome = period_elapsed ? PolicyAction::Outcome::kNewPeriod
                                      : PolicyAction::Outcome::kSamePeriod;
  suc.action.node = static_cast<std::uint8_t>(n);
  PolicyState::Node& nd = suc.state.nodes[n];
  --nd.daemon_left;

  const arch::BackoffState old = nd.backoff;
  const Cycle old_period = nd.period;
  arch::BackoffKernel kernel(set_);
  kernel.restore(old);
  kernel.clear_streak();  // AsComaPolicy::on_daemon_result, failure path
  const arch::BackoffStep step = kernel.on_pressure(period_elapsed, &nd.period);
  arch::BackoffState now = kernel.state();

  // Seeded bugs: drop one of the escalation's effects.
  if (cfg_.mutation == PolicyMutation::kThresholdNeverRaised)
    now.threshold = old.threshold;
  if (cfg_.mutation == PolicyMutation::kPeriodNotLengthened)
    nd.period = old_period;
  nd.backoff = now;

  auto fail = [&](const char* why) {
    if (suc.state.violation.empty()) suc.state.violation = why;
  };
  if (step.accepted) {
    // Back-off monotonicity: pressure never relaxes anything.
    if (now.threshold < old.threshold)
      fail("back-off lowered the refetch threshold under pressure");
    if (!old.relocation_enabled && now.relocation_enabled)
      fail("back-off re-enabled remapping under pressure");
    if (nd.period < old_period)
      fail("back-off shortened the daemon period under pressure");
    // Escalation progress: until fully converged to CC-NUMA (threshold at
    // max, remapping disabled), an accepted pressure step must raise the
    // threshold or disable remapping.  This is what makes convergence under
    // sustained reclaim failure inevitable.
    const bool was_converged =
        old.threshold >= set_.threshold_max && !old.relocation_enabled;
    const bool raised = now.threshold > old.threshold;
    const bool disabled = old.relocation_enabled && !now.relocation_enabled;
    if (!was_converged && !raised && !disabled)
      fail("accepted back-off neither raised the threshold nor disabled "
           "remapping (no convergence to CC-NUMA)");
    // Period monotonicity until saturation.
    if (old_period < set_.period_max && !(nd.period > old_period))
      fail("accepted back-off did not lengthen the daemon period");
  }
  if (!nd.backoff.thrashing)
    fail("daemon failure did not mark the node thrashing");
  out->push_back(std::move(suc));
}

void PolicyModel::apply_daemon_ok(const PolicyState& s, std::uint32_t n,
                                  int victim,
                                  std::vector<PolicySuccessor>* out) const {
  PolicySuccessor suc;
  suc.state = s;
  suc.action.type = PolicyAction::Type::kDaemonOk;
  suc.action.node = static_cast<std::uint8_t>(n);
  PolicyState::Node& nd = suc.state.nodes[n];
  --nd.daemon_left;
  if (victim >= 0) {
    // The daemon reclaims an S-COMA frame: the page falls back to CC-NUMA
    // (AsComaPolicy::on_replacement) and must re-earn any upgrade.
    PolicyState::Page& pg = nd.pages[static_cast<std::size_t>(victim)];
    pg.mode = static_cast<std::uint8_t>(PageState::kNuma);
    pg.refetches = 0;
    suc.action.outcome = PolicyAction::Outcome::kReclaim;
    suc.action.page = static_cast<std::uint8_t>(victim);
  } else {
    suc.action.outcome = PolicyAction::Outcome::kNoVictim;
  }

  const arch::BackoffState old = nd.backoff;
  const Cycle old_period = nd.period;
  arch::BackoffKernel kernel(set_);
  kernel.restore(old);
  const arch::BackoffStep step =
      kernel.on_healthy(/*cold_evidence=*/true, &nd.period);
  arch::BackoffState now = kernel.state();

  if (cfg_.mutation == PolicyMutation::kThrashingSticky && old.thrashing)
    now.thrashing = true;
  nd.backoff = now;

  auto fail = [&](const char* why) {
    if (suc.state.violation.empty()) suc.state.violation = why;
  };
  if (step.accepted) {
    // Recovery monotonicity: a healthy step never escalates.
    if (now.threshold > old.threshold)
      fail("healthy reclaim raised the refetch threshold");
    if (old.relocation_enabled && !now.relocation_enabled)
      fail("healthy reclaim disabled remapping");
    if (nd.period > old_period)
      fail("healthy reclaim lengthened the daemon period");
    // Relaxation progress: until back at full health, each completed streak
    // must re-enable remapping or lower the threshold.
    const bool was_healthy =
        old.threshold <= set_.initial_threshold && old.relocation_enabled;
    if (!was_healthy && !step.relaxed)
      fail("recovery stalled: a completed healthy streak made no relaxation "
           "progress");
    // Full health must clear the back-off so S-COMA-first mapping resumes.
    if (now.threshold <= set_.initial_threshold && now.relocation_enabled &&
        now.thrashing)
      fail("recovered to the initial threshold with remapping enabled but "
           "still marked thrashing (S-COMA-first never resumes)");
  }
  out->push_back(std::move(suc));
}

std::string PolicyModel::check(const PolicyState& s) const {
  if (!s.violation.empty()) return s.violation;
  for (std::size_t n = 0; n < s.nodes.size(); ++n) {
    const PolicyState::Node& nd = s.nodes[n];
    std::ostringstream os;
    if (nd.scoma_count() > cfg_.pool_frames) {
      os << "node" << n << ": page-frame pool overcommitted ("
         << nd.scoma_count() << " S-COMA pages, " << cfg_.pool_frames
         << " frames)";
      return os.str();
    }
    if (nd.backoff.threshold < set_.initial_threshold ||
        nd.backoff.threshold > set_.threshold_max) {
      os << "node" << n << ": refetch threshold " << nd.backoff.threshold
         << " outside [" << set_.initial_threshold << ", "
         << set_.threshold_max << "]";
      return os.str();
    }
    if (nd.period < set_.initial_period || nd.period > set_.period_max) {
      os << "node" << n << ": daemon period " << nd.period.value()
         << " outside [" << set_.initial_period.value() << ", "
         << set_.period_max.value() << "]";
      return os.str();
    }
    if (!nd.backoff.relocation_enabled && !nd.backoff.thrashing) {
      os << "node" << n
         << ": remapping disabled on a node not marked thrashing";
      return os.str();
    }
  }
  return {};
}

}  // namespace ascoma::check
