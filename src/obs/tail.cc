#include "obs/tail.hh"

#include <algorithm>
#include <sstream>

#include "obs/export.hh"
#include "obs/sink.hh"

namespace ascoma::obs {

EventTail::EventTail(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

std::uint64_t EventTail::push(const Event& e) {
  const LockGuard g(mu_);
  const std::uint64_t seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(Row{seq, e});
  } else {
    ring_[head_] = Row{seq, e};
    head_ = (head_ + 1) % capacity_;
  }
  return seq;
}

void EventTail::push_sink_tail(const EventSink& sink, std::size_t limit) {
  const std::vector<Event> events = sink.sorted_events();
  const std::size_t skip =
      events.size() > limit ? events.size() - limit : 0;
  for (std::size_t i = skip; i < events.size(); ++i) push(events[i]);
}

std::string EventTail::jsonl_tail(std::size_t last) const {
  // Snapshot-under-lock, render-outside (lint_concurrency rule C4): copy
  // the selected rows while holding mu_, then do all JSON formatting after
  // the lock is dropped so concurrent push()ers are never stalled behind
  // string building.
  std::vector<Row> rows;
  {
    const LockGuard g(mu_);
    const std::size_t n = std::min(last, ring_.size());
    rows.reserve(n);
    for (std::size_t i = ring_.size() - n; i < ring_.size(); ++i)
      rows.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  std::ostringstream os;
  for (const Row& r : rows) {
    os << "{\"seq\":" << r.seq << ',';
    // Splice the seq field into the shared row shape: render the event and
    // drop its leading '{'.
    std::ostringstream ev;
    write_event_json(ev, r.event);
    os << ev.str().substr(1) << '\n';
  }
  return os.str();
}

std::size_t EventTail::size() const {
  const LockGuard g(mu_);
  return ring_.size();
}

std::uint64_t EventTail::pushed() const {
  const LockGuard g(mu_);
  return next_seq_;
}

}  // namespace ascoma::obs
