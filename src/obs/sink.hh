#pragma once

// EventSink — the collection point of the observability layer.
//
// A sink owns (1) a fixed-capacity event buffer that drops (and counts) new
// events once full, so a runaway run can never exhaust memory, (2) per-kind
// tallies that keep counting even when the buffer overflows (exact totals
// survive drops), and (3) the time-series samples produced by the gauge
// Sampler.  Emission is a bounds-check and a push_back into pre-reserved
// storage; with no sink installed, producers skip a single null check, so
// the instrumented simulator stays within noise of the bare one.
//
// Sinks are attached per run via MachineConfig::sink (non-owning pointer) or
// passed directly to exporters; they are not thread-safe and must not be
// shared across concurrent core::simulate() calls (sweep runs).

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/annotate.hh"
#include "common/types.hh"
#include "obs/event.hh"
#include "store/codec.hh"

namespace ascoma::obs {

/// One row of the time-series: the value of every per-node gauge at `cycle`.
struct Sample {
  Cycle cycle{0};
  NodeId node{0};
  std::uint64_t free_frames = 0;     ///< node's free page-cache frames
  std::uint64_t threshold = 0;       ///< node's current refetch threshold
  std::uint64_t cache_active = 0;    ///< active S-COMA pages (occupancy)
  std::uint64_t remote_misses = 0;   ///< cumulative remote fetches by node
};

/// Streaming consumer of the event flow.  An observer registered on an
/// EventSink sees every emitted event *before* ring-buffer capacity is
/// applied, so derived aggregates (e.g. the profiler's per-page heat map)
/// stay exact even when the buffer overflows and drops events.
class EventObserver {
 public:
  virtual ~EventObserver() = default;
  virtual void on_event(const Event& e) = 0;
};

class EventSink {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit EventSink(std::size_t capacity = kDefaultCapacity);

  /// Attach a streaming observer (nullptr detaches).  Non-owning; survives
  /// clear().  At most one observer per sink.
  void set_observer(EventObserver* observer) { observer_ = observer; }
  EventObserver* observer() const { return observer_; }

  /// Record one event; O(1), never allocates.  Once the buffer is full the
  /// event is dropped (oldest events are kept — the front of a trace is the
  /// part that explains how the run got where it is) but still tallied.
  void emit(const Event& e) {
    if (observer_) observer_->on_event(e);
    ++tally_[static_cast<int>(e.kind)];
    if (events_.size() == capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  void emit(EventKind kind, Cycle cycle, NodeId node,
            VPageId page = kInvalidPage, std::uint64_t a = 0,
            std::uint64_t b = 0, std::uint64_t c = 0) {
    emit(Event{cycle, kind, node, page, a, b, c});
  }

  void add_sample(const Sample& s) { samples_.push_back(s); }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  /// Total emissions of `k`, including events dropped on overflow.
  std::uint64_t count(EventKind k) const {
    return tally_[static_cast<int>(k)];
  }

  /// Events in emission order (producers emit with non-decreasing per-node
  /// cycles, but nodes interleave).
  const std::vector<Event>& events() const { return events_; }

  /// Events stably sorted by cycle — the order exporters write.
  ASCOMA_DETERMINISM_SENSITIVE std::vector<Event> sorted_events() const;

  const std::vector<Sample>& samples() const { return samples_; }

  /// Forget all events, samples, tallies, and the drop count.
  void clear();

 private:
  std::size_t capacity_;
  EventObserver* observer_ = nullptr;  // non-owning
  std::vector<Event> events_;
  std::vector<Sample> samples_;
  std::array<std::uint64_t, kNumEventKinds> tally_{};
  std::uint64_t dropped_ = 0;
};

/// Fixed-cadence sampling clock: due() fires once the simulated clock
/// reaches the next multiple of `period`; advance() then skips every
/// boundary at or before `now` (a long stall yields one catch-up sample,
/// not a burst).  A period of 0 disables the sampler.
class Sampler {
 public:
  explicit Sampler(Cycle period = Cycle{0}) : period_(period), next_(period) {}

  bool enabled() const { return period_ != Cycle{0}; }
  Cycle period() const { return period_; }

  bool due(Cycle now) const { return enabled() && now >= next_; }

  /// Timestamp the pending sample carries (the boundary that fired).
  Cycle boundary() const { return next_; }

  void advance(Cycle now) {
    while (next_ <= now) next_ += period_;
  }

  // Checkpoint serialization (encode/decode stay adjacent — pairing check).
  void encode(store::Encoder& e) const {
    e.u64(period_.value());
    e.u64(next_.value());
  }
  void decode(store::Decoder& d) {
    if (Cycle{d.u64()} != period_)
      throw store::CodecError("sampler period mismatch");
    next_ = Cycle{d.u64()};
  }

 private:
  Cycle period_;
  Cycle next_;
};

}  // namespace ascoma::obs
