#pragma once

// Exporters for EventSink contents.  Three formats:
//
//   * JSONL        — one JSON object per event, sorted by cycle; the format
//                    scripts grep/jq over.
//   * Perfetto     — Chrome trace-event JSON loadable in ui.perfetto.dev:
//                    one process ("node N") per simulated node, instant
//                    events for policy transitions on an "events" thread
//                    track, and one counter track per gauge.  Cycle stamps
//                    are written as microseconds 1:1.
//   * metrics CSV  — the Sampler's gauge time series, one row per
//                    (sample boundary, node).
//
// The stream overloads are the primitive (tests golden-match them); the
// path overloads open/truncate the file and return false on I/O failure.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/sink.hh"

namespace ascoma::obs {

void write_jsonl(std::ostream& os, const EventSink& sink);
void write_perfetto(std::ostream& os, const EventSink& sink,
                    std::uint32_t nodes);
void write_metrics_csv(std::ostream& os, const EventSink& sink);

/// Header line of the metrics CSV (shared with tests/scripts).
std::string metrics_csv_header();

bool write_jsonl_file(const std::string& path, const EventSink& sink);
bool write_perfetto_file(const std::string& path, const EventSink& sink,
                         std::uint32_t nodes);
bool write_metrics_csv_file(const std::string& path, const EventSink& sink);

}  // namespace ascoma::obs
