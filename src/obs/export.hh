#pragma once

// Exporters for EventSink contents.  Three formats:
//
//   * JSONL        — one JSON object per event, sorted by cycle; the format
//                    scripts grep/jq over.
//   * Perfetto     — Chrome trace-event JSON loadable in ui.perfetto.dev:
//                    one process ("node N") per simulated node, instant
//                    events for policy transitions on an "events" thread
//                    track, and one counter track per gauge.  Cycle stamps
//                    are written as microseconds 1:1.
//   * metrics CSV  — the Sampler's gauge time series, one row per
//                    (sample boundary, node).
//
// The stream overloads are the primitive (tests golden-match them); the
// path overloads open/truncate the file and return false on I/O failure.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/annotate.hh"
#include "obs/sink.hh"

namespace ascoma::obs {

/// Escape `s` for embedding inside a JSON string literal: backslash-escapes
/// quotes and backslashes, \uXXXX-escapes control characters.  Every string
/// an exporter writes into JSON must pass through here — event-kind and
/// gauge names happen to be clean identifiers today, but workload names and
/// labels are caller-supplied.
std::string json_escape(std::string_view s);

/// Quote `s` as an RFC 4180 CSV field: returned verbatim unless it contains
/// a comma, quote, or newline, in which case it is double-quote wrapped with
/// embedded quotes doubled.
std::string csv_field(std::string_view s);

/// One event as a single-line JSON object (no trailing newline) — the JSONL
/// row shape shared by write_jsonl and the obsd `/events` endpoint.
ASCOMA_DETERMINISM_SENSITIVE void write_event_json(std::ostream& os,
                                                   const Event& e);

ASCOMA_DETERMINISM_SENSITIVE void write_jsonl(std::ostream& os,
                                              const EventSink& sink);
ASCOMA_DETERMINISM_SENSITIVE void write_perfetto(std::ostream& os,
                                                 const EventSink& sink,
                                                 std::uint32_t nodes);
ASCOMA_DETERMINISM_SENSITIVE void write_metrics_csv(std::ostream& os,
                                                    const EventSink& sink);

/// Header line of the metrics CSV (shared with tests/scripts).
std::string metrics_csv_header();

bool write_jsonl_file(const std::string& path, const EventSink& sink);
bool write_perfetto_file(const std::string& path, const EventSink& sink,
                         std::uint32_t nodes);
bool write_metrics_csv_file(const std::string& path, const EventSink& sink);

/// Post-mortem flusher: binds a sink to its configured export paths so that
/// an abnormal termination (CheckFailure, WatchdogError) can still persist
/// the trace that explains the failure.  flush() writes every configured
/// path once; later calls are no-ops, so a crash handler may call it
/// unconditionally and a successful run's regular export can take over.
class CrashExporter {
 public:
  CrashExporter() = default;
  CrashExporter(const EventSink* sink, std::string events_path,
                std::string perfetto_path, std::string metrics_path,
                std::uint32_t nodes)
      : sink_(sink),
        events_path_(std::move(events_path)),
        perfetto_path_(std::move(perfetto_path)),
        metrics_path_(std::move(metrics_path)),
        nodes_(nodes) {}

  /// Returns the number of files written (0 when unbound, already flushed,
  /// or no paths are configured).  Never throws.
  std::size_t flush() noexcept;

  bool flushed() const { return flushed_; }

 private:
  const EventSink* sink_ = nullptr;
  std::string events_path_;
  std::string perfetto_path_;
  std::string metrics_path_;
  std::uint32_t nodes_ = 0;
  bool flushed_ = false;
};

}  // namespace ascoma::obs
