#pragma once

// EventTail — a small thread-safe ring of the most recent events, the data
// source behind obsd's `GET /events?last=N` endpoint.
//
// Unlike EventSink (single-threaded, per-run, keeps the *front* of a trace
// for post-mortem analysis), the tail is shared by every sweep worker and
// the serving thread and keeps the *end* of the flow: the newest
// `capacity()` events win, each stamped with a monotonic sequence number so
// a polling consumer can detect the events it missed between scrapes.
// push() takes a mutex — the tail is fed from job boundaries and the serve
// thread, never from the simulator's per-cycle hot path.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.hh"
#include "obs/event.hh"

namespace ascoma::obs {

class EventSink;

class EventTail {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit EventTail(std::size_t capacity = kDefaultCapacity);

  /// Append one event; the oldest event is evicted once full.  Returns the
  /// sequence number assigned to `e` (starting at 0).
  std::uint64_t push(const Event& e) ASCOMA_EXCLUDES(mu_);

  /// Append the newest `limit` events of a finished job's sink (its events
  /// in cycle order; earlier ones are skipped, the tail is a tail).
  void push_sink_tail(const EventSink& sink, std::size_t limit);

  /// The last min(last, size) events as JSONL: one `{"seq":N,...}` object
  /// per line, oldest first, each row the write_event_json shape plus the
  /// leading monotonic `seq` field.
  std::string jsonl_tail(std::size_t last) const ASCOMA_EXCLUDES(mu_);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const ASCOMA_EXCLUDES(mu_);
  /// Total events ever pushed (== the next sequence number).
  std::uint64_t pushed() const ASCOMA_EXCLUDES(mu_);

 private:
  struct Row {
    std::uint64_t seq = 0;
    Event event;
  };

  const std::size_t capacity_;  // immutable after construction: lock-free
  mutable Mutex mu_;
  // ring buffer once size() == capacity_
  std::vector<Row> ring_ ASCOMA_GUARDED_BY(mu_);
  // index of the oldest row when full
  std::size_t head_ ASCOMA_GUARDED_BY(mu_) = 0;
  std::uint64_t next_seq_ ASCOMA_GUARDED_BY(mu_) = 0;
};

}  // namespace ascoma::obs
