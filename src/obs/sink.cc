#include "obs/sink.hh"

#include <algorithm>

namespace ascoma::obs {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kPageFault: return "page_fault";
    case EventKind::kScomaAlloc: return "scoma_alloc";
    case EventKind::kNumaAlloc: return "numa_alloc";
    case EventKind::kRelocInterrupt: return "reloc_interrupt";
    case EventKind::kUpgrade: return "upgrade";
    case EventKind::kDowngrade: return "downgrade";
    case EventKind::kRemapSuppressed: return "remap_suppressed";
    case EventKind::kDaemonRun: return "daemon_run";
    case EventKind::kThresholdRaise: return "threshold_raise";
    case EventKind::kThresholdDrop: return "threshold_drop";
    case EventKind::kDirInvalidation: return "dir_invalidation";
    case EventKind::kDirForward: return "dir_forward";
    case EventKind::kBarrierRelease: return "barrier_release";
    case EventKind::kFaultInjected: return "fault_injected";
    case EventKind::kNack: return "nack";
    case EventKind::kRetry: return "retry";
    case EventKind::kWatchdogTrip: return "watchdog_trip";
    case EventKind::kSweepStraggler: return "sweep_straggler";
    case EventKind::kSweepCacheHit: return "sweep_cache_hit";
    case EventKind::kServeRequest: return "serve_request";
    case EventKind::kServeError: return "serve_error";
  }
  return "?";
}

const char* arg_name(EventKind k, int i) {
  switch (k) {
    case EventKind::kDaemonRun:
      return i == 0 ? "scanned" : i == 1 ? "reclaimed" : "met_target";
    case EventKind::kThresholdRaise:
    case EventKind::kThresholdDrop:
      return i == 0 ? "threshold" : i == 1 ? "relocation_enabled" : nullptr;
    case EventKind::kDirInvalidation:
      return i == 0 ? "block" : i == 1 ? "targets" : nullptr;
    case EventKind::kDirForward:
      return i == 0 ? "block" : i == 1 ? "owner" : nullptr;
    case EventKind::kBarrierRelease:
      return i == 0 ? "episode" : nullptr;
    case EventKind::kFaultInjected:
      return i == 0 ? "kind" : i == 1 ? "dst" : "jitter";
    case EventKind::kNack:
      return i == 0 ? "requester" : i == 1 ? "backlog" : nullptr;
    case EventKind::kRetry:
      return i == 0 ? "dst" : i == 1 ? "attempt" : nullptr;
    case EventKind::kWatchdogTrip:
      return i == 0 ? "elapsed" : i == 1 ? "retries" : "nacks";
    case EventKind::kSweepStraggler:
      return i == 0 ? "wall_ms" : i == 1 ? "median_ms" : "job";
    case EventKind::kSweepCacheHit:
      return i == 0 ? "job" : i == 1 ? "fingerprint_lo" : nullptr;
    case EventKind::kServeRequest:
      return i == 0 ? "status" : i == 1 ? "body_bytes" : "endpoint";
    case EventKind::kServeError:
      return i == 0 ? "status" : i == 2 ? "endpoint" : nullptr;
    default:
      return nullptr;
  }
}

EventSink::EventSink(std::size_t capacity) : capacity_(capacity) {
  events_.reserve(capacity_);
}

std::vector<Event> EventSink::sorted_events() const {
  std::vector<Event> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& x, const Event& y) {
                     return x.cycle < y.cycle;
                   });
  return out;
}

void EventSink::clear() {
  events_.clear();
  samples_.clear();
  tally_.fill(0);
  dropped_ = 0;
}

}  // namespace ascoma::obs
