#include "obs/export.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace ascoma::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string csv_field(std::string_view s) {
  if (s.find_first_of(",\"\n\r") == std::string_view::npos)
    return std::string(s);
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

namespace {

void json_event_args(std::ostream& os, const Event& e, bool lead_comma) {
  const std::uint64_t args[3] = {e.a, e.b, e.c};
  bool comma = lead_comma;
  for (int i = 0; i < 3; ++i) {
    const char* name = arg_name(e.kind, i);
    if (!name) continue;
    if (comma) os << ',';
    os << '"' << name << "\":" << args[i];
    comma = true;
  }
}

}  // namespace

void write_event_json(std::ostream& os, const Event& e) {
  os << "{\"cycle\":" << e.cycle << ",\"kind\":\"" << to_string(e.kind)
     << "\",\"node\":" << e.node;
  if (e.page != kInvalidPage) os << ",\"page\":" << e.page;
  json_event_args(os, e, true);
  os << '}';
}

void write_jsonl(std::ostream& os, const EventSink& sink) {
  for (const Event& e : sink.sorted_events()) {
    write_event_json(os, e);
    os << '\n';
  }
}

void write_perfetto(std::ostream& os, const EventSink& sink,
                    std::uint32_t nodes) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool comma = false;
  auto sep = [&] {
    if (comma) os << ',';
    comma = true;
    os << '\n';
  };

  // Track naming: one "process" per simulated node; instants land on its
  // "events" thread, counters on per-gauge counter tracks.
  for (std::uint32_t n = 0; n < nodes; ++n) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << n
       << ",\"tid\":0,\"args\":{\"name\":\"node " << n << "\"}}";
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << n
       << ",\"tid\":0,\"args\":{\"name\":\"events\"}}";
  }

  for (const Event& e : sink.sorted_events()) {
    sep();
    os << "{\"name\":\"" << to_string(e.kind)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.cycle
       << ",\"pid\":" << e.node << ",\"tid\":0,\"args\":{";
    bool inner = false;
    if (e.page != kInvalidPage) {
      os << "\"page\":" << e.page;
      inner = true;
    }
    json_event_args(os, e, inner);
    os << "}}";
  }

  for (const Sample& s : sink.samples()) {
    const struct {
      const char* name;
      std::uint64_t value;
    } gauges[] = {{"free_frames", s.free_frames},
                  {"threshold", s.threshold},
                  {"page_cache_active", s.cache_active},
                  {"remote_misses", s.remote_misses}};
    for (const auto& g : gauges) {
      sep();
      os << "{\"name\":\"" << g.name << "\",\"ph\":\"C\",\"ts\":" << s.cycle
         << ",\"pid\":" << s.node << ",\"args\":{\"" << g.name
         << "\":" << g.value << "}}";
    }
  }
  os << "\n]}\n";
}

std::string metrics_csv_header() {
  return "cycle,node,free_frames,threshold,page_cache_active,remote_misses";
}

void write_metrics_csv(std::ostream& os, const EventSink& sink) {
  os << metrics_csv_header() << '\n';
  for (const Sample& s : sink.samples()) {
    os << s.cycle << ',' << s.node << ',' << s.free_frames << ','
       << s.threshold << ',' << s.cache_active << ',' << s.remote_misses
       << '\n';
  }
}

namespace {

template <typename Fn>
bool write_file(const std::string& path, Fn&& fn) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  fn(os);
  return os.good();
}

}  // namespace

bool write_jsonl_file(const std::string& path, const EventSink& sink) {
  return write_file(path, [&](std::ostream& os) { write_jsonl(os, sink); });
}

bool write_perfetto_file(const std::string& path, const EventSink& sink,
                         std::uint32_t nodes) {
  return write_file(
      path, [&](std::ostream& os) { write_perfetto(os, sink, nodes); });
}

bool write_metrics_csv_file(const std::string& path, const EventSink& sink) {
  return write_file(path,
                    [&](std::ostream& os) { write_metrics_csv(os, sink); });
}

std::size_t CrashExporter::flush() noexcept {
  if (flushed_ || sink_ == nullptr) return 0;
  flushed_ = true;
  std::size_t written = 0;
  try {
    if (!events_path_.empty() && write_jsonl_file(events_path_, *sink_))
      ++written;
    if (!perfetto_path_.empty() &&
        write_perfetto_file(perfetto_path_, *sink_, nodes_))
      ++written;
    if (!metrics_path_.empty() &&
        write_metrics_csv_file(metrics_path_, *sink_))
      ++written;
  } catch (...) {
    // A crash-path flush must never mask the original failure.
  }
  return written;
}

}  // namespace ascoma::obs
