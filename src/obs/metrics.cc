#include "obs/metrics.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.hh"

namespace ascoma::obs {

unsigned this_thread_shard() {
  static std::atomic<unsigned> next{0};
  // order: relaxed — a round-robin ticket draw; only the RMW's atomicity
  // matters (each thread gets a distinct ticket), no cross-thread data is
  // published through it, and shard spread is best-effort by design.
  thread_local const unsigned shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

// ---- Gauge ------------------------------------------------------------------

std::uint64_t Gauge::encode(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::decode(std::uint64_t bits) { return std::bit_cast<double>(bits); }

// ---- Histogram --------------------------------------------------------------

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  for (const Shard& s : shards_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      // order: relaxed — monotonic per-shard tallies (same contract as
      // Counter::value); mid-run a bucket may be visible before its sum
      // increment, so count and sum can be mutually skewed by in-flight
      // observes — exact once writers are joined, acceptable while live.
      const std::uint64_t n =
          s.buckets[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
      out.buckets[static_cast<std::size_t>(i)] += n;
      out.count += n;
    }
    // order: relaxed — see the bucket loads above.
    out.sum += s.sum.load(std::memory_order_relaxed);
  }
  return out;
}

// ---- names and escaping -----------------------------------------------------

bool valid_metric_name(std::string_view s, bool label) {
  if (s.empty()) return false;
  auto ok = [label](char c, bool first) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_')
      return true;
    if (c == ':' && !label) return true;
    return !first && c >= '0' && c <= '9';
  };
  if (!ok(s.front(), true)) return false;
  for (std::size_t i = 1; i < s.size(); ++i)
    if (!ok(s[i], false)) return false;
  return true;
}

std::string prometheus_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += ch;
    }
  }
  return out;
}

namespace {

/// `# HELP` text: the exposition format only forbids raw newlines (escaped
/// as \n) and backslashes.
std::string help_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += ch;
    }
  }
  return out;
}

/// Canonical label block `{a="x",b="y"}` (empty string for no labels); the
/// optional extra pair is the histogram's `le`.
std::string label_block(const std::vector<Label>& labels,
                        const std::string* le = nullptr) {
  if (labels.empty() && le == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += prometheus_escape(v);
    out += '"';
  }
  if (le != nullptr) {
    if (!first) out += ',';
    out += "le=\"";
    out += *le;
    out += '"';
  }
  out += '}';
  return out;
}

std::string fmt_gauge(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

// ---- Registry ---------------------------------------------------------------

Registry::Family& Registry::family(std::string_view name,
                                   std::string_view help, Kind kind) {
  ASCOMA_CHECK_MSG(valid_metric_name(name),
                   "invalid metric name: '" << name << "'");
  const auto it = std::lower_bound(
      families_.begin(), families_.end(), name,
      [](const Family& f, std::string_view n) { return f.name < n; });
  if (it != families_.end() && it->name == name) {
    ASCOMA_CHECK_MSG(it->kind == kind,
                     "metric '" << name << "' re-registered as another type");
    return *it;
  }
  Family f;
  f.name = std::string(name);
  f.help = std::string(help);
  f.kind = kind;
  return *families_.insert(it, std::move(f));
}

Registry::Child& Registry::child(Family& f, std::vector<Label> labels) {
  std::sort(labels.begin(), labels.end());
  for (const auto& [k, v] : labels)
    ASCOMA_CHECK_MSG(valid_metric_name(k, /*label=*/true),
                     "invalid label name: '" << k << "'");
  for (Child& c : f.children)
    if (c.labels == labels) return c;
  Child c;
  c.labels = std::move(labels);
  f.children.push_back(std::move(c));
  return f.children.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           std::vector<Label> labels) {
  const LockGuard g(mu_);
  Child& c = child(family(name, help, Kind::kCounter), std::move(labels));
  if (c.counter == nullptr) c.counter = &counters_.emplace_back();
  return *c.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       std::vector<Label> labels) {
  const LockGuard g(mu_);
  Child& c = child(family(name, help, Kind::kGauge), std::move(labels));
  if (c.gauge == nullptr) c.gauge = &gauges_.emplace_back();
  return *c.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<Label> labels) {
  const LockGuard g(mu_);
  Child& c = child(family(name, help, Kind::kHistogram), std::move(labels));
  if (c.histogram == nullptr) c.histogram = &histograms_.emplace_back();
  return *c.histogram;
}

std::size_t Registry::size() const {
  const LockGuard g(mu_);
  std::size_t n = 0;
  for (const Family& f : families_) n += f.children.size();
  return n;
}

void Registry::write_prometheus(std::ostream& os) const {
  // Snapshot-under-lock, render-outside (lint_concurrency rule C4): mu_
  // covers only the copy of the registration plan — names, help, labels,
  // and the stable metric pointers.  All value reads and every `os <<`
  // (which may be a blocking socket write when obsd is the caller) happen
  // after the lock is dropped; the pointers stay valid because metrics
  // live in never-moving deques and are only ever added, never removed.
  struct ChildPlan {
    std::vector<Label> labels;
    const Counter* counter;
    const Gauge* gauge;
    const Histogram* histogram;
  };
  struct FamilyPlan {
    std::string name;
    std::string help;
    Kind kind;
    std::vector<ChildPlan> children;
  };
  std::vector<FamilyPlan> plan;
  {
    const LockGuard g(mu_);
    plan.reserve(families_.size());
    for (const Family& f : families_) {
      FamilyPlan fp{f.name, f.help, f.kind, {}};
      fp.children.reserve(f.children.size());
      for (const Child& c : f.children)
        fp.children.push_back({c.labels, c.counter, c.gauge, c.histogram});
      plan.push_back(std::move(fp));
    }
  }
  for (const FamilyPlan& f : plan) {
    os << "# HELP " << f.name << ' ' << help_escape(f.help) << '\n';
    os << "# TYPE " << f.name << ' '
       << (f.kind == Kind::kCounter    ? "counter"
           : f.kind == Kind::kGauge    ? "gauge"
                                       : "histogram")
       << '\n';
    for (const ChildPlan& c : f.children) {
      switch (f.kind) {
        case Kind::kCounter:
          os << f.name << label_block(c.labels) << ' ' << c.counter->value()
             << '\n';
          break;
        case Kind::kGauge:
          os << f.name << label_block(c.labels) << ' '
             << fmt_gauge(c.gauge->value()) << '\n';
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot snap = c.histogram->snapshot();
          // Cumulative buckets up to the highest non-empty one; the final
          // +Inf bucket always equals _count, as the format requires.
          int top = -1;
          for (int i = 0; i < Histogram::kNumBuckets; ++i)
            if (snap.buckets[static_cast<std::size_t>(i)] > 0) top = i;
          std::uint64_t cum = 0;
          for (int i = 0; i <= top; ++i) {
            cum += snap.buckets[static_cast<std::size_t>(i)];
            const std::string le = std::to_string(
                prof::LatencyHistogram::bucket_upper_bound(i));
            os << f.name << "_bucket" << label_block(c.labels, &le) << ' '
               << cum << '\n';
          }
          const std::string inf = "+Inf";
          os << f.name << "_bucket" << label_block(c.labels, &inf) << ' '
             << snap.count << '\n';
          os << f.name << "_sum" << label_block(c.labels) << ' ' << snap.sum
             << '\n';
          os << f.name << "_count" << label_block(c.labels) << ' '
             << snap.count << '\n';
          break;
        }
      }
    }
  }
}

}  // namespace ascoma::obs
