#pragma once

// Typed, cycle-timestamped simulator events (the observability taxonomy).
//
// Every policy-relevant transition the paper's narrative depends on — page
// faults, allocation mode choices, CC-NUMA<->S-COMA remaps, pageout-daemon
// runs, back-off threshold moves, relocation suppression, directory
// invalidations/forwards, and barrier episodes — is describable as one
// fixed-size Event.  Producers call obs::EventSink::emit(); nothing in the
// simulator ever blocks or allocates on the emission path.

#include <cstdint>

#include "common/types.hh"

namespace ascoma::obs {

enum class EventKind : std::uint8_t {
  kPageFault,        ///< first-touch fault on a remote page (page)
  kScomaAlloc,       ///< fault mapped the page S-COMA (page)
  kNumaAlloc,        ///< fault mapped the page CC-NUMA (page)
  kRelocInterrupt,   ///< relocation interrupt delivered (page)
  kUpgrade,          ///< CC-NUMA -> S-COMA remap completed (page)
  kDowngrade,        ///< S-COMA page evicted/downgraded (page)
  kRemapSuppressed,  ///< relocation interrupt fired, remap suppressed (page)
  kDaemonRun,        ///< pageout daemon ran (a=scanned, b=reclaimed, c=met)
  kThresholdRaise,   ///< back-off escalation (a=new threshold, b=reloc on)
  kThresholdDrop,    ///< back-off relaxation (a=new threshold, b=reloc on)
  kDirInvalidation,  ///< directory invalidated sharers (page, a=blk, b=#tgt)
  kDirForward,       ///< 3-hop forward to a dirty owner (page, a=blk, b=own)
  kBarrierRelease,   ///< all processors arrived; barrier released (a=episode)
  kFaultInjected,    ///< fault plan hit a message (a=kind, b=dst, c=jitter)
  kNack,             ///< overloaded home NACKed a request (a=req, b=backlog)
  kRetry,            ///< requester retransmitted after loss (a=dst, b=attempt)
  kWatchdogTrip,     ///< forward-progress bound exceeded (a=elapsed,
                     ///<  b=retries, c=nacks); the run aborts after this
  kSweepStraggler,   ///< sweep job's host wall time exceeded the straggler
                     ///<  multiple of the sweep median (a=wall_ms,
                     ///<  b=median_ms, c=job index); cycle = job end cycle
  kSweepCacheHit,    ///< sweep job satisfied from the result store without
                     ///<  re-simulating (a=job index, b=fingerprint low
                     ///<   64 bits); cycle = cached job's end cycle
  kServeRequest,     ///< obsd served an HTTP request (a=status, b=body
                     ///<  bytes, c=endpoint id); cycle = 0 (host-side event)
  kServeError,       ///< obsd answered with an error status (a=status,
                     ///<  c=endpoint id); cycle = 0 (host-side event)
};
inline constexpr int kNumEventKinds = 21;

/// Short stable identifier ("page_fault", "upgrade", ...) used by exporters.
const char* to_string(EventKind k);

/// Exporter-facing name of Event argument slot `i` (0 = a, 1 = b, 2 = c) for
/// events of kind `k`, or nullptr when the slot is unused by that kind.
const char* arg_name(EventKind k, int i);

/// One observed transition.  `page` is kInvalidPage for events without a
/// page subject; the meaning of a/b/c is per-kind (see EventKind comments).
struct Event {
  Cycle cycle{0};
  EventKind kind = EventKind::kPageFault;
  NodeId node{0};
  VPageId page = kInvalidPage;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

}  // namespace ascoma::obs
