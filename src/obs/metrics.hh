#pragma once

// Unified live-metrics registry (ARCHITECTURE.md §16).
//
// Everything the repo previously counted in ad-hoc per-subsystem structs
// (sweep progress, protocol/fault event tallies, store hits, selfprof wall
// time, the adaptive policy's back-off level and pool occupancy) can be
// published here under one name+label scheme and scraped while the sweep is
// still running — this registry is the data source behind obsd's
// `GET /metrics` Prometheus endpoint.
//
// Concurrency model: registration (find-or-create of a metric) takes a
// mutex, so producers resolve their handles once, up front.  The hot path —
// Counter::inc / Gauge::set / Histogram::observe — is lock-free: every
// metric keeps kMetricShards cacheline-padded atomic slots and a producer
// thread only ever touches its own slot with relaxed operations.  A scrape
// aggregates across shards, so readers never block writers and concurrent
// scrapes are race-free (the TSan acceptance gate of the obsd PR).
//
// Dimensions: the histogram buckets are exactly prof::LatencyHistogram's
// log2 buckets (bucket i holds values of bit width i), so `/metrics`
// percentile math lines up with the `--profile` dumps; the typed observe()/
// inc()/set() overloads accept any strong quantity with a .value() accessor
// (Cycle, ByteCount, selfprof::HostNs) without a cast at the call site.
//
// Cost when unused: nothing in the simulator references a Registry unless
// one is attached (MachineConfig::registry / SweepOptions::serve_port), so
// the default run allocates no metric and takes no branch — observability
// stays free when off.

#include <array>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sync.hh"
#include "prof/histogram.hh"

namespace ascoma::obs {

/// Shard count of every metric: enough to keep a 16-thread sweep's workers
/// off each other's cachelines, small enough that scraping stays trivial.
inline constexpr unsigned kMetricShards = 16;

/// The shard index of the calling thread (stable for the thread's lifetime,
/// assigned round-robin on first use).
unsigned this_thread_shard();

namespace detail {
struct alignas(64) ShardSlot {
  std::atomic<std::uint64_t> v{0};
};

/// True for the strong quantity types (Cycle, ByteCount, HostNs, ...) whose
/// raw magnitude a metric can carry.
template <typename Q>
concept StrongQuantity = requires(const Q q) {
  { q.value() } -> std::convertible_to<std::uint64_t>;
};
}  // namespace detail

/// Monotonically increasing 64-bit counter (Prometheus `counter`).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    // order: relaxed — per-thread shard of a monotonic sum; only this
    // thread writes the slot, and scrapes tolerate lag (see value()).
    shards_[this_thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  template <detail::StrongQuantity Q>
  void inc(Q q) {
    inc(std::uint64_t{q.value()});
  }

  /// Sum over all shards — the scrape-side read.  Relaxed is sufficient
  /// (not just tolerable) because each shard is monotonic: a scrape can
  /// observe a slightly stale sum, never a decreasing or invented one, and
  /// the final value is exact once the writer threads have been joined
  /// (thread join is a full happens-before edge).  Pinned by
  /// MetricsOrdering.RelaxedScrapeNeverOvercounts in tests/test_metrics.cc.
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    // order: relaxed — monotonic per-shard sums; see the contract above.
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  std::array<detail::ShardSlot, kMetricShards> shards_;
};

/// Last-writer-wins gauge (Prometheus `gauge`).  Stored as a double so
/// ratios (sim-rate, pressure) and raw counts share one type; set() is a
/// single relaxed store, add() a CAS loop for the rare read-modify-write
/// user (in-flight job tracking).
class Gauge {
 public:
  // order: relaxed — last-writer-wins scalar; no other data is published
  // through this store, so no release edge is needed.
  void set(double v) { bits_.store(encode(v), std::memory_order_relaxed); }
  void set(std::uint64_t v) { set(static_cast<double>(v)); }
  template <detail::StrongQuantity Q>
  void set(Q q) {
    set(std::uint64_t{q.value()});
  }

  void add(double delta) {
    // order: relaxed — the CAS needs atomicity of the read-modify-write
    // only; bits_ is the sole shared datum (nothing else is published via
    // this location), and on failure the loop re-reads the fresh value the
    // CAS itself returned, so no acquire edge is needed either.
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, encode(decode(cur) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  void sub(double delta) { add(-delta); }

  // order: relaxed — last-writer-wins read; staleness is acceptable for a
  // scrape and there is no dependent data to order against.
  double value() const { return decode(bits_.load(std::memory_order_relaxed)); }

 private:
  static std::uint64_t encode(double v);
  static double decode(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};
};

/// Sharded log2 histogram (Prometheus `histogram`): the bucket boundaries
/// are prof::LatencyHistogram::bucket_upper_bound(i), one bucket per bit
/// width, so there is no configuration and no value can overflow.
class Histogram {
 public:
  static constexpr int kNumBuckets = prof::LatencyHistogram::kNumBuckets;

  void observe(std::uint64_t v) {
    Shard& s = shards_[this_thread_shard()];
    // order: relaxed — per-thread shard, monotonic bucket/sum tallies; a
    // concurrent scrape may see the bucket without the sum (or vice versa),
    // which snapshot() documents as acceptable mid-run skew.
    s.buckets[static_cast<std::size_t>(prof::LatencyHistogram::bucket_of(v))]
        .fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }
  template <detail::StrongQuantity Q>
  void observe(Q q) {
    observe(std::uint64_t{q.value()});
  }

  /// Scrape-side aggregate.
  struct Snapshot {
    std::array<std::uint64_t, kNumBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  Snapshot snapshot() const;

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
    // Cacheline-pad the tail so neighbouring shards never share a line.
    char pad[64];
  };
  std::array<Shard, kMetricShards> shards_;
};

/// One `name=value` label pair; values may be arbitrary strings (escaped on
/// exposition), names must match the Prometheus label charset.
using Label = std::pair<std::string, std::string>;

/// True when `s` is a legal Prometheus metric name ([a-zA-Z_:][a-zA-Z0-9_:]*)
/// or, with `label` set, a legal label name (no ':').
bool valid_metric_name(std::string_view s, bool label = false);

/// Escape a label value for the text exposition format (\\, \", \n).
std::string prometheus_escape(std::string_view s);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create.  The returned reference is stable for the registry's
  /// lifetime (metrics live in deques); resolving the same (name, labels)
  /// twice yields the same object, so producers may re-resolve instead of
  /// caching when convenient.  `help` is recorded on first registration.
  /// Metric and label names are validated with ASCOMA_CHECK — a bad name is
  /// a programming error, not input.
  Counter& counter(std::string_view name, std::string_view help,
                   std::vector<Label> labels = {}) ASCOMA_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name, std::string_view help,
               std::vector<Label> labels = {}) ASCOMA_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<Label> labels = {}) ASCOMA_EXCLUDES(mu_);

  /// Number of registered (name, labels) children across all families.
  std::size_t size() const ASCOMA_EXCLUDES(mu_);

  /// Prometheus text exposition format, version 0.0.4: families sorted by
  /// name, each emitting `# HELP` / `# TYPE` once followed by its children
  /// in registration order; histograms emit cumulative `_bucket{le=...}`
  /// rows (only up to the highest non-empty bucket, then `+Inf`), `_sum`
  /// and `_count`.  tools/lint_metrics.py validates this output in CI.
  void write_prometheus(std::ostream& os) const ASCOMA_EXCLUDES(mu_);

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Child {
    std::vector<Label> labels;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };
  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<Child> children;
  };

  Family& family(std::string_view name, std::string_view help, Kind kind)
      ASCOMA_REQUIRES(mu_);
  Child& child(Family& f, std::vector<Label> labels) ASCOMA_REQUIRES(mu_);

  // mu_ guards the registration structures only; the metric values behind
  // the Child pointers are lock-free atomics, read and written without it.
  mutable Mutex mu_;
  std::vector<Family> families_ ASCOMA_GUARDED_BY(mu_);  // sorted by name
  // Stable storage behind Child pointers: a deque never moves elements, so
  // a reference handed out under a past mu_ hold stays valid forever.
  std::deque<Counter> counters_ ASCOMA_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ ASCOMA_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ ASCOMA_GUARDED_BY(mu_);
};

}  // namespace ascoma::obs
