#include "selfprof/collector.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/export.hh"
#include "selfprof/host.hh"

namespace ascoma::selfprof {

namespace detail {
constinit thread_local Collector* t_current = nullptr;
}  // namespace detail

namespace {

/// Shortest round-trippable representation of a double (JSON number).
std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

double rate_hz(std::uint64_t events, HostNs wall) {
  if (wall.value() == 0) return 0.0;
  return static_cast<double>(events) /
         (static_cast<double>(wall.value()) * 1e-9);
}

}  // namespace

const char* to_string(HostSite s) {
  switch (s) {
    case HostSite::kRun: return "run";
    case HostSite::kSchedPick: return "sched_pick";
    case HostSite::kProtoAccess: return "proto_access";
    case HostSite::kDirLookup: return "dir_lookup";
    case HostSite::kNetDeliver: return "net_deliver";
    case HostSite::kObsEmit: return "obs_emit";
    case HostSite::kVmFault: return "vm_fault";
    case HostSite::kVmKernel: return "vm_kernel";
    case HostSite::kTableWalk: return "table_walk";
  }
  return "?";
}

bool runtime_enabled() {
  if (!compiled_in()) return false;
  static const bool enabled = [] {
    const char* v = std::getenv("ASCOMA_SELFPROF");
    return !(v != nullptr && v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

Collector::Collector(HostClock* clock)
    : clock_(clock != nullptr ? clock : default_clock()) {
  nodes_.push_back(TimerNode{});  // node 0: the kRun root
  first_child_.push_back(-1);
  next_sibling_.push_back(-1);
}

void Collector::set_meta(std::string workload, std::string arch,
                         double pressure) {
  workload_ = std::move(workload);
  arch_ = std::move(arch);
  pressure_ = pressure;
}

void Collector::set_sim(Cycle cycles, std::uint64_t accesses) {
  sim_cycles_ = cycles;
  accesses_ = accesses;
}

int Collector::push(HostSite site) {
  for (int c = first_child_[static_cast<std::size_t>(cur_)]; c != -1;
       c = next_sibling_[static_cast<std::size_t>(c)]) {
    if (nodes_[static_cast<std::size_t>(c)].site == site) {
      ++nodes_[static_cast<std::size_t>(c)].count;
      cur_ = c;
      return c;
    }
  }
  const int n = static_cast<int>(nodes_.size());
  TimerNode node;
  node.site = site;
  node.parent = cur_;
  node.count = 1;
  nodes_.push_back(node);
  first_child_.push_back(-1);
  next_sibling_.push_back(first_child_[static_cast<std::size_t>(cur_)]);
  first_child_[static_cast<std::size_t>(cur_)] = n;
  cur_ = n;
  return n;
}

void Collector::pop(int node, HostNs elapsed) {
  nodes_[static_cast<std::size_t>(node)].total += elapsed;
  cur_ = nodes_[static_cast<std::size_t>(node)].parent;
}

HostNs Collector::total(HostSite site) const {
  HostNs sum{0};
  for (const TimerNode& n : nodes_)
    if (n.site == site) sum += n.total;
  return sum;
}

std::uint64_t Collector::count(HostSite site) const {
  std::uint64_t sum = 0;
  for (const TimerNode& n : nodes_)
    if (n.site == site) sum += n.count;
  return sum;
}

HostNs Collector::self_time(int node) const {
  HostNs kids{0};
  for (int c = first_child_[static_cast<std::size_t>(node)]; c != -1;
       c = next_sibling_[static_cast<std::size_t>(c)])
    kids += nodes_[static_cast<std::size_t>(c)].total;
  const HostNs total = nodes_[static_cast<std::size_t>(node)].total;
  return kids > total ? HostNs(0) : total - kids;
}

bool Collector::children_within_parent() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    HostNs kids{0};
    for (int c = first_child_[i]; c != -1;
         c = next_sibling_[static_cast<std::size_t>(c)])
      kids += nodes_[static_cast<std::size_t>(c)].total;
    if (kids > nodes_[i].total) return false;
  }
  return true;
}

void Collector::write_json(std::ostream& os) const {
  const HostNs w = wall();
  os << "{\"schema\":\"ascoma.selfprof/1\""
     << ",\"workload\":\"" << obs::json_escape(workload_) << '"'
     << ",\"arch\":\"" << obs::json_escape(arch_) << '"'
     << ",\"pressure\":" << fmt_double(pressure_)
     << ",\"sim_cycles\":" << sim_cycles_
     << ",\"accesses\":" << accesses_
     << ",\"wall_ns\":" << w
     << ",\"sim_rate_hz\":" << fmt_double(rate_hz(sim_cycles_.value(), w))
     << ",\"access_rate_hz\":" << fmt_double(rate_hz(accesses_, w))
     << ",\"peak_rss_bytes\":" << peak_rss_
     << ",\"allocs\":" << allocs_
     << ",\"tree\":[";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const TimerNode& n = nodes_[i];
    if (i != 0) os << ',';
    os << "{\"site\":\"" << to_string(n.site) << '"'
       << ",\"parent\":" << n.parent
       << ",\"count\":" << n.count
       << ",\"total_ns\":" << n.total
       << ",\"self_ns\":" << self_time(static_cast<int>(i)) << '}';
  }
  os << "]}\n";
}

std::string Collector::csv_header() {
  return "node,site,parent,count,total_ns,self_ns";
}

void Collector::write_csv(std::ostream& os) const {
  os << csv_header() << '\n';
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const TimerNode& n = nodes_[i];
    os << i << ',' << to_string(n.site) << ',' << n.parent << ',' << n.count
       << ',' << n.total << ',' << self_time(static_cast<int>(i)) << '\n';
  }
}

bool Collector::write_dir(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  {
    std::ofstream js(std::filesystem::path(dir) / "selfprof.json");
    if (!js) return false;
    write_json(js);
    if (!js) return false;
  }
  std::ofstream cs(std::filesystem::path(dir) / "selfprof.csv");
  if (!cs) return false;
  write_csv(cs);
  return static_cast<bool>(cs);
}

#if ASCOMA_SELFPROF

ScopedInstall::ScopedInstall(Collector* c)
    : c_(runtime_enabled() ? c : nullptr), prev_(detail::t_current) {
  if (c_ == nullptr) return;
  detail::t_current = c_;
  allocs0_ = thread_alloc_count();
  start_ = c_->clock_->now();
}

ScopedInstall::~ScopedInstall() {
  if (c_ == nullptr) return;
  TimerNode& root = c_->nodes_[0];
  root.total += c_->clock_->now() - start_;
  ++root.count;
  c_->allocs_ = thread_alloc_count() - allocs0_;
  c_->peak_rss_ = peak_rss_bytes();
  c_->cur_ = 0;
  detail::t_current = prev_;
}

#endif

}  // namespace ascoma::selfprof
