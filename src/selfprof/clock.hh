#pragma once

// Host time for the self-profiler (src/selfprof/).
//
// Everything in src/ outside this directory measures *simulated* time in
// `Cycle`s; the self-profiler measures the simulator's own execution in host
// nanoseconds.  `HostNs` is a strong quantity of its own dimension so the two
// clock domains cannot be mixed by accident (`Cycle + HostNs` is a compile
// error), and tools/lint_types.py rejects bare-integer `*_ns` parameters the
// same way it rejects bare `*_cycles`.
//
// The clock itself is an injectable interface: production code uses
// `default_clock()` — std::chrono::steady_clock, or a calibrated rdtsc
// reader on x86-64 when ASCOMA_SELFPROF_TSC=1 is set in the environment —
// while tests install a hand-stepped FakeClock so timer-tree shapes and
// attribution sums are deterministic.

#include <cstdint>

#include "common/types.hh"

namespace ascoma::selfprof {

namespace dim {
struct HostNsTag {
  using rep = std::uint64_t;
};
}  // namespace dim

/// Host wall-clock nanoseconds (the self-profiler's time dimension).
using HostNs = StrongQuantity<dim::HostNsTag>;

class HostClock {
 public:
  virtual ~HostClock() = default;
  /// Monotonic host time.  Only differences are meaningful.
  virtual HostNs now() = 0;
};

/// std::chrono::steady_clock-backed production clock.
class SteadyClock final : public HostClock {
 public:
  HostNs now() override;
};

/// rdtsc-backed clock (x86-64 only): one `rdtsc` instead of a vDSO call per
/// reading, calibrated against steady_clock at construction.  Falls back to
/// SteadyClock behaviour on other architectures.
class TscClock final : public HostClock {
 public:
  TscClock();
  HostNs now() override;

 private:
  std::uint64_t base_tsc_ = 0;
  double ns_per_tick_ = 1.0;
  SteadyClock fallback_;
};

/// The process-wide production clock: a TscClock when ASCOMA_SELFPROF_TSC=1
/// and the architecture supports it, else a SteadyClock.  Never null.
HostClock* default_clock();

}  // namespace ascoma::selfprof
