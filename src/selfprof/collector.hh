#pragma once

// Host-execution self-profiler: scoped wall-time attribution for the
// simulator's own hot paths (ARCHITECTURE.md §14).
//
// src/prof/ attributes *simulated* cycles of the modeled machine;
// this layer attributes *host* nanoseconds of the simulator process.  The
// named hot paths (scheduler pick loop, protocol dispatch, directory
// lookups, network delivery, event-sink writes, VM fault handling, table
// walks) are bracketed with the RAII `SelfScope`, which builds a
// hierarchical timer tree keyed by dynamic nesting: a directory lookup
// performed inside a protocol access is a child of that access's node, one
// performed inside a page flush lands under the kernel path instead.
//
// Cost model:
//   * no Collector installed (the default)  — one thread_local load and a
//     branch per scope; simulated behaviour and the golden baselines are
//     untouched (the profiler only ever reads the host clock);
//   * compiled out (cmake -DASCOMA_SELFPROF=0, i.e. the ASCOMA_SELFPROF=0
//     macro) — SelfScope/ScopedInstall are empty structs, zero code;
//   * ASCOMA_SELFPROF=0 in the *environment* — runtime_enabled() is false
//     and installation sites (CLI, run_sweep) skip the whole layer.
//
// Collectors are single-threaded like prof::Profiler: one Collector per
// concurrently-running simulation, installed on the thread that runs it via
// ScopedInstall (thread_local current-collector pointer).
//
// Concurrency contract (lint_concurrency / ARCHITECTURE.md §18): the whole
// layer is thread-confined, not thread-safe — by design it holds no mutex
// and no atomics.  A Collector is owned by exactly one thread between
// ScopedInstall construction and destruction (t_current is thread_local,
// so installation cannot leak across threads), and the sweep only reads a
// worker's Collector after joining that worker, which is a full
// happens-before edge.  No field here is ASCOMA_GUARDED_BY because no
// field is ever shared while mutable.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "selfprof/clock.hh"

#if !defined(ASCOMA_SELFPROF)
#define ASCOMA_SELFPROF 1
#endif

namespace ascoma::selfprof {

/// The instrumented host-side hot paths.  kRun is the implicit tree root
/// covering the whole installed region.
enum class HostSite : std::uint8_t {
  kRun,         ///< root: everything between install and uninstall
  kSchedPick,   ///< sim::Scheduler::pick() calls in the machine loop
  kProtoAccess, ///< proto::CoherentMemory::access() — per-access dispatch
  kDirLookup,   ///< proto::Directory::apply() — transition-table lookups
  kNetDeliver,  ///< net::Network::try_deliver() — fabric traversal math
  kObsEmit,     ///< obs event emission and gauge sampling
  kVmFault,     ///< core::Machine::handle_fault() — mapping faults
  kVmKernel,    ///< relocation / eviction / pageout-daemon kernel paths
  kTableWalk,   ///< IdVector/second-chance table walks (victim scan,
                ///< post-run invariant sweep)
};
inline constexpr int kNumHostSites = 9;

/// Short stable identifier ("run", "sched_pick", ...) used by exporters.
const char* to_string(HostSite s);

/// True when the self-profiler was compiled in (ASCOMA_SELFPROF != 0 at
/// build time).
constexpr bool compiled_in() { return ASCOMA_SELFPROF != 0; }

/// Runtime kill switch: false when the environment sets ASCOMA_SELFPROF=0
/// (or the layer is compiled out).  Installation sites honour this; the
/// scopes themselves only check for an installed collector.
bool runtime_enabled();

/// One node of the hierarchical timer tree.
struct TimerNode {
  HostSite site = HostSite::kRun;
  int parent = -1;        ///< index into Collector::nodes(), -1 for the root
  std::uint64_t count = 0;
  HostNs total{0};        ///< inclusive wall time (children included)
};

class Collector {
 public:
  /// `clock` is non-owning; nullptr selects default_clock().
  explicit Collector(HostClock* clock = nullptr);

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  // ---- run metadata / telemetry (stamped by the caller) --------------------
  void set_meta(std::string workload, std::string arch, double pressure);
  void set_sim(Cycle cycles, std::uint64_t accesses);

  // ---- results -------------------------------------------------------------
  /// Timer tree in creation (DFS-encounter) order; node 0 is the kRun root.
  const std::vector<TimerNode>& nodes() const { return nodes_; }
  /// Inclusive time / entry count summed over every node of `site`.
  HostNs total(HostSite site) const;
  std::uint64_t count(HostSite site) const;
  /// Inclusive time minus the children's inclusive time (never negative —
  /// clamped; a monotonic clock keeps it exact).
  HostNs self_time(int node) const;
  /// Invariant the tests and the JSON dump assert: for every node the
  /// children's inclusive totals sum to at most the parent's.
  bool children_within_parent() const;

  HostNs wall() const { return nodes_[0].total; }
  Cycle sim_cycles() const { return sim_cycles_; }
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t peak_rss() const { return peak_rss_; }
  std::uint64_t allocs() const { return allocs_; }

  // ---- export --------------------------------------------------------------
  void write_json(std::ostream& os) const;
  void write_csv(std::ostream& os) const;
  /// Header line of selfprof.csv (shared with tests).
  static std::string csv_header();
  /// Write selfprof.json + selfprof.csv into `dir` (created if missing).
  /// Returns false on any I/O failure.
  bool write_dir(const std::string& dir) const;

 private:
  friend class SelfScope;
  friend class ScopedInstall;

  /// Find-or-create the child of the current node with `site`, make it
  /// current, and return its index.
  int push(HostSite site);
  void pop(int node, HostNs elapsed);

  HostClock* clock_;
  std::vector<TimerNode> nodes_;
  std::vector<int> first_child_;   // parallel to nodes_
  std::vector<int> next_sibling_;  // parallel to nodes_
  int cur_ = 0;

  std::string workload_;
  std::string arch_;
  double pressure_ = 0.0;
  Cycle sim_cycles_{0};
  std::uint64_t accesses_ = 0;
  std::uint64_t peak_rss_ = 0;  // process high-water RSS bytes at uninstall
  std::uint64_t allocs_ = 0;    // heap allocations on the installed thread
};

namespace detail {
/// The collector installed on this thread.  constinit so the cross-TU read
/// in SelfScope compiles to one direct TLS load instead of a thread-wrapper
/// call — the whole disabled-cost budget of the layer hinges on this.
extern constinit thread_local Collector* t_current;
}  // namespace detail

/// The collector installed on this thread (nullptr = profiling off).
inline Collector* current() { return detail::t_current; }

#if ASCOMA_SELFPROF

/// RAII attribution scope.  Near-free when no collector is installed.
class SelfScope {
 public:
  explicit SelfScope(HostSite site) : c_(current()) {
    if (c_ == nullptr) return;
    node_ = c_->push(site);
    start_ = c_->clock_->now();
  }
  ~SelfScope() {
    if (c_ != nullptr) c_->pop(node_, c_->clock_->now() - start_);
  }
  SelfScope(const SelfScope&) = delete;
  SelfScope& operator=(const SelfScope&) = delete;

 private:
  Collector* c_;
  int node_ = 0;
  HostNs start_{0};
};

/// Installs `c` as this thread's current collector, times the whole install
/// region into the kRun root, and snapshots the thread's allocation counter
/// and the process peak RSS on uninstall.  Honours runtime_enabled().
class ScopedInstall {
 public:
  explicit ScopedInstall(Collector* c);
  ~ScopedInstall();
  ScopedInstall(const ScopedInstall&) = delete;
  ScopedInstall& operator=(const ScopedInstall&) = delete;

 private:
  Collector* c_;
  Collector* prev_;
  HostNs start_{0};
  std::uint64_t allocs0_ = 0;
};

#else  // ASCOMA_SELFPROF == 0: compiled to nothing

class SelfScope {
 public:
  explicit SelfScope(HostSite) {}
};

class ScopedInstall {
 public:
  explicit ScopedInstall(Collector*) {}
};

#endif

}  // namespace ascoma::selfprof
