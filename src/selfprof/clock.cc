#include "selfprof/clock.hh"

#include <chrono>
#include <cstdlib>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace ascoma::selfprof {

HostNs SteadyClock::now() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return HostNs(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t).count()));
}

#if defined(__x86_64__)

TscClock::TscClock() {
  // Calibrate tick duration against steady_clock over a short busy window.
  // The self-profiler only ever subtracts readings, so absolute offset is
  // irrelevant; a ~200µs window gives ns_per_tick_ well under 1% error on
  // any invariant-TSC part, which is far below scope-entry jitter.
  const HostNs t0 = fallback_.now();
  base_tsc_ = __rdtsc();
  const HostNs target = t0 + HostNs(200'000);
  while (fallback_.now() < target) {
    // busy-wait: sleeping would let the calibration window stretch under
    // scheduler noise and skew ns_per_tick_
  }
  const HostNs t1 = fallback_.now();
  const std::uint64_t ticks = __rdtsc() - base_tsc_;
  if (ticks > 0 && t1 > t0)
    ns_per_tick_ =
        static_cast<double>((t1 - t0).value()) / static_cast<double>(ticks);
}

HostNs TscClock::now() {
  const std::uint64_t ticks = __rdtsc() - base_tsc_;
  return HostNs(
      static_cast<std::uint64_t>(static_cast<double>(ticks) * ns_per_tick_));
}

#else  // non-x86-64: rdtsc unavailable, behave as SteadyClock

TscClock::TscClock() = default;

HostNs TscClock::now() { return fallback_.now(); }

#endif

HostClock* default_clock() {
  static const bool use_tsc = [] {
    const char* v = std::getenv("ASCOMA_SELFPROF_TSC");
    return v != nullptr && v[0] == '1' && v[1] == '\0';
  }();
  static SteadyClock steady;
  static TscClock tsc;
  return use_tsc ? static_cast<HostClock*>(&tsc)
                 : static_cast<HostClock*>(&steady);
}

}  // namespace ascoma::selfprof
