#include "selfprof/simspeed.hh"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/export.hh"

namespace ascoma::selfprof {

namespace {

double rate(std::uint64_t events, std::uint64_t wall) {
  if (wall == 0) return 0.0;
  return static_cast<double>(events) / (static_cast<double>(wall) * 1e-9);
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

// ---- minimal JSON reader ----------------------------------------------------
// Just enough grammar for the documents write_simspeed emits: one object of
// scalars plus one array of flat objects.  Unknown keys are skipped so the
// schema can grow fields without breaking older diff binaries.

struct Cursor {
  const std::string& s;
  std::size_t i = 0;
  std::string err;

  bool failed() const { return !err.empty(); }
  void fail(const std::string& what) {
    if (err.empty()) err = what + " at offset " + std::to_string(i);
  }
  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    fail(std::string("expected '") + c + "'");
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }

  bool parse_string(std::string& out) {
    out.clear();
    if (!eat('"')) return false;
    while (i < s.size() && s[i] != '"') {
      char ch = s[i];
      if (ch == '\\') {
        if (i + 1 >= s.size()) break;
        const char esc = s[i + 1];
        i += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i + 4 > s.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = s[i + static_cast<std::size_t>(k)];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return false;
              }
            }
            i += 4;
            // json_escape only \u-escapes control characters (< 0x20), so a
            // single byte suffices; anything wider is replaced.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            fail("unknown escape");
            return false;
        }
        continue;
      }
      out += ch;
      ++i;
    }
    return eat('"');
  }

  bool parse_number(double& out) {
    skip_ws();
    const std::size_t start = i;
    while (i < s.size() &&
           (s[i] == '-' || s[i] == '+' || s[i] == '.' || s[i] == 'e' ||
            s[i] == 'E' || (s[i] >= '0' && s[i] <= '9')))
      ++i;
    if (i == start) {
      fail("expected number");
      return false;
    }
    try {
      out = std::stod(s.substr(start, i - start));
    } catch (...) {
      fail("bad number");
      return false;
    }
    return true;
  }

  /// Skip any scalar value (string, number, literal).  Containers are not
  /// expected in unknown positions.
  bool skip_value() {
    skip_ws();
    if (peek('"')) {
      std::string ignored;
      return parse_string(ignored);
    }
    if (i < s.size() && (s[i] == 't' || s[i] == 'f' || s[i] == 'n')) {
      while (i < s.size() && s[i] >= 'a' && s[i] <= 'z') ++i;
      return true;
    }
    double ignored = 0;
    return parse_number(ignored);
  }
};

std::uint64_t to_u64(double v) {
  if (v <= 0 || std::isnan(v)) return 0;
  return static_cast<std::uint64_t>(v);
}

bool parse_row(Cursor& c, SimspeedRow& row) {
  if (!c.eat('{')) return false;
  if (c.peek('}')) return c.eat('}');
  do {
    std::string key;
    if (!c.parse_string(key) || !c.eat(':')) return false;
    double num = 0;
    if (key == "label") {
      if (!c.parse_string(row.label)) return false;
    } else if (key == "workload") {
      if (!c.parse_string(row.workload)) return false;
    } else if (key == "arch") {
      if (!c.parse_string(row.arch)) return false;
    } else if (key == "cycles") {
      if (!c.parse_number(num)) return false;
      row.cycles = to_u64(num);
    } else if (key == "accesses") {
      if (!c.parse_number(num)) return false;
      row.accesses = to_u64(num);
    } else if (key == "wall_ns") {
      if (!c.parse_number(num)) return false;
      row.wall_ns = to_u64(num);
    } else if (key == "peak_rss_bytes") {
      if (!c.parse_number(num)) return false;
      row.peak_rss_bytes = to_u64(num);
    } else if (key == "allocs") {
      if (!c.parse_number(num)) return false;
      row.allocs = to_u64(num);
    } else if (key == "store_ns") {
      if (!c.parse_number(num)) return false;
      row.store_ns = to_u64(num);
    } else if (key == "serve_ns") {
      if (!c.parse_number(num)) return false;
      row.serve_ns = to_u64(num);
    } else {
      if (!c.skip_value()) return false;  // e.g. the derived sim_rate_hz
    }
  } while (c.peek(',') && c.eat(','));
  return c.eat('}');
}

std::string join_key(const SimspeedRow& r) {
  return r.label + '\x1f' + r.workload + '\x1f' + r.arch;
}

}  // namespace

double SimspeedRow::sim_rate_hz() const { return rate(cycles, wall_ns); }
double SimspeedRow::access_rate_hz() const { return rate(accesses, wall_ns); }

void write_simspeed(std::ostream& os, const SimspeedDoc& doc) {
  os << "{\"schema\":\"" << kSimspeedSchema << "\",\"bench\":\""
     << obs::json_escape(doc.bench) << "\",\"rows\":[";
  bool first = true;
  for (const SimspeedRow& r : doc.rows) {
    if (!first) os << ',';
    first = false;
    os << "{\"label\":\"" << obs::json_escape(r.label) << '"'
       << ",\"workload\":\"" << obs::json_escape(r.workload) << '"'
       << ",\"arch\":\"" << obs::json_escape(r.arch) << '"'
       << ",\"cycles\":" << r.cycles
       << ",\"accesses\":" << r.accesses
       << ",\"wall_ns\":" << r.wall_ns
       << ",\"sim_rate_hz\":" << fmt_double(r.sim_rate_hz())
       << ",\"peak_rss_bytes\":" << r.peak_rss_bytes
       << ",\"allocs\":" << r.allocs
       << ",\"store_ns\":" << r.store_ns
       << ",\"serve_ns\":" << r.serve_ns << '}';
  }
  os << "]}\n";
}

bool parse_simspeed(const std::string& text, SimspeedDoc& doc,
                    std::string& error) {
  doc = SimspeedDoc{};
  Cursor c{text, 0, {}};
  bool schema_seen = false;
  if (!c.eat('{')) {
    error = c.err;
    return false;
  }
  do {
    std::string key;
    if (!c.parse_string(key) || !c.eat(':')) {
      error = c.err;
      return false;
    }
    if (key == "schema") {
      std::string schema;
      if (!c.parse_string(schema)) {
        error = c.err;
        return false;
      }
      if (schema != kSimspeedSchema) {
        error = "unsupported schema '" + schema + "'";
        return false;
      }
      schema_seen = true;
    } else if (key == "bench") {
      if (!c.parse_string(doc.bench)) {
        error = c.err;
        return false;
      }
    } else if (key == "rows") {
      if (!c.eat('[')) {
        error = c.err;
        return false;
      }
      if (!c.peek(']')) {
        do {
          SimspeedRow row;
          if (!parse_row(c, row)) {
            error = c.err.empty() ? "malformed row" : c.err;
            return false;
          }
          doc.rows.push_back(std::move(row));
        } while (c.peek(',') && c.eat(','));
      }
      if (!c.eat(']')) {
        error = c.err;
        return false;
      }
    } else {
      if (!c.skip_value()) {
        error = c.err;
        return false;
      }
    }
  } while (c.peek(',') && c.eat(','));
  if (!c.eat('}')) {
    error = c.err;
    return false;
  }
  if (!schema_seen) {
    error = "missing schema field";
    return false;
  }
  return true;
}

std::size_t SpeedDiffReport::regressions() const {
  std::size_t n = 0;
  for (const SpeedFinding& f : findings)
    if (f.is_regression()) ++n;
  return n;
}

SpeedDiffReport diff_simspeed(const SimspeedDoc& baseline,
                              const SimspeedDoc& candidate,
                              const SpeedDiffOptions& opts) {
  SpeedDiffReport rep;
  auto emit = [&](SpeedFinding::Kind kind, const SimspeedRow& r, double base,
                  double cand) {
    SpeedFinding f;
    f.kind = kind;
    f.label = r.label;
    f.workload = r.workload;
    f.arch = r.arch;
    f.base_value = base;
    f.cand_value = cand;
    f.ratio = base != 0.0 ? cand / base : 0.0;
    rep.findings.push_back(std::move(f));
  };

  const std::uint64_t min_wall_ns = opts.min_wall_ms * 1'000'000;
  for (const SimspeedRow& base : baseline.rows) {
    const SimspeedRow* cand = nullptr;
    for (const SimspeedRow& c : candidate.rows)
      if (join_key(c) == join_key(base)) {
        cand = &c;
        break;
      }
    if (cand == nullptr) {
      emit(SpeedFinding::Kind::kRowVanished, base, base.sim_rate_hz(), 0.0);
      continue;
    }
    ++rep.rows_compared;
    if (base.cycles != cand->cycles)
      emit(SpeedFinding::Kind::kCyclesChanged, base,
           static_cast<double>(base.cycles),
           static_cast<double>(cand->cycles));
    const bool long_enough =
        base.wall_ns >= min_wall_ns && cand->wall_ns >= min_wall_ns;
    if (long_enough && base.sim_rate_hz() > 0.0 &&
        cand->sim_rate_hz() < base.sim_rate_hz() * (1.0 - opts.rate_tol))
      emit(SpeedFinding::Kind::kRateRegression, base, base.sim_rate_hz(),
           cand->sim_rate_hz());
    if (base.peak_rss_bytes > 0 &&
        static_cast<double>(cand->peak_rss_bytes) >
            static_cast<double>(base.peak_rss_bytes) * (1.0 + opts.rss_tol))
      emit(SpeedFinding::Kind::kRssRegression, base,
           static_cast<double>(base.peak_rss_bytes),
           static_cast<double>(cand->peak_rss_bytes));
    if (base.allocs > 0 &&
        static_cast<double>(cand->allocs) >
            static_cast<double>(base.allocs) * (1.0 + opts.allocs_tol))
      emit(SpeedFinding::Kind::kAllocRegression, base,
           static_cast<double>(base.allocs),
           static_cast<double>(cand->allocs));
  }
  for (const SimspeedRow& cand : candidate.rows) {
    bool in_base = false;
    for (const SimspeedRow& b : baseline.rows)
      if (join_key(b) == join_key(cand)) {
        in_base = true;
        break;
      }
    if (!in_base)
      emit(SpeedFinding::Kind::kRowAppeared, cand, 0.0, cand.sim_rate_hz());
  }
  return rep;
}

SpeedDiffReport diff_simspeed_files(const std::string& baseline_path,
                                    const std::string& candidate_path,
                                    const SpeedDiffOptions& opts) {
  SpeedDiffReport rep;
  auto load = [&](const std::string& path, SimspeedDoc& doc) {
    std::ifstream in(path);
    if (!in) {
      rep.error = "cannot open " + path;
      return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string err;
    if (!parse_simspeed(text.str(), doc, err)) {
      rep.error = path + ": " + err;
      return false;
    }
    return true;
  };
  SimspeedDoc base, cand;
  if (!load(baseline_path, base) || !load(candidate_path, cand)) return rep;
  return diff_simspeed(base, cand, opts);
}

void write_speed_report(std::ostream& os, const SpeedDiffReport& report,
                        const SpeedDiffOptions& opts) {
  if (!report.ok()) {
    os << "error: " << report.error << '\n';
    return;
  }
  for (const SpeedFinding& f : report.findings) {
    const char* what = "?";
    switch (f.kind) {
      case SpeedFinding::Kind::kRateRegression: what = "SIM-RATE"; break;
      case SpeedFinding::Kind::kRssRegression: what = "PEAK-RSS"; break;
      case SpeedFinding::Kind::kAllocRegression: what = "ALLOCS"; break;
      case SpeedFinding::Kind::kCyclesChanged: what = "cycles-changed"; break;
      case SpeedFinding::Kind::kRowVanished: what = "row-vanished"; break;
      case SpeedFinding::Kind::kRowAppeared: what = "row-appeared"; break;
    }
    os << (f.is_regression() ? "REGRESSION " : "info       ") << what << ' '
       << f.label << '/' << f.workload << '/' << f.arch << ' ' << f.base_value
       << " -> " << f.cand_value;
    if (f.ratio != 0.0) os << " (x" << f.ratio << ')';
    os << '\n';
  }
  os << report.rows_compared << " rows compared, " << report.regressions()
     << " regressions (rate_tol " << opts.rate_tol << ", rss_tol "
     << opts.rss_tol << ", allocs_tol " << opts.allocs_tol << ", min_wall "
     << opts.min_wall_ms << "ms)\n";
}

}  // namespace ascoma::selfprof
