#include "selfprof/host.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include <sys/resource.h>

#if !defined(ASCOMA_SELFPROF)
#define ASCOMA_SELFPROF 1
#endif

// The counting hook replaces global operator new/delete; sanitizer runtimes
// install their own allocator interceptors, so the hook steps aside there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ASCOMA_SELFPROF_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define ASCOMA_SELFPROF_ALLOC_HOOK 0
#endif
#endif
#if !defined(ASCOMA_SELFPROF_ALLOC_HOOK)
#define ASCOMA_SELFPROF_ALLOC_HOOK ASCOMA_SELFPROF
#endif

namespace ascoma::selfprof {

namespace {
thread_local std::uint64_t t_alloc_count = 0;
}  // namespace

std::uint64_t thread_alloc_count() { return t_alloc_count; }

bool alloc_hook_active() { return ASCOMA_SELFPROF_ALLOC_HOOK != 0; }

std::uint64_t peak_rss_bytes() {
  // Prefer VmHWM (bytes-accurate-to-a-page, resets never): Linux only.
  if (std::FILE* f = std::fopen("/proc/self/status", "re")) {
    char line[256];
    std::uint64_t kb = 0;
    bool found = false;
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        char* end = nullptr;
        kb = std::strtoull(line + 6, &end, 10);
        found = end != line + 6;
        break;
      }
    }
    std::fclose(f);
    if (found) return kb * 1024;
  }
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0)
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // ru_maxrss is KiB
  return 0;
}

#if ASCOMA_SELFPROF_ALLOC_HOOK

namespace {

void* counted_alloc(std::size_t size) {
  ++t_alloc_count;
  if (size == 0) size = 1;
  for (;;) {
    if (void* p = std::malloc(size)) return p;
    if (std::new_handler h = std::get_new_handler())
      h();
    else
      return nullptr;
  }
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  ++t_alloc_count;
  if (size == 0) size = 1;
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                       size) == 0)
      return p;
    if (std::new_handler h = std::get_new_handler())
      h();
    else
      return nullptr;
  }
}

}  // namespace

#endif  // ASCOMA_SELFPROF_ALLOC_HOOK

}  // namespace ascoma::selfprof

#if ASCOMA_SELFPROF_ALLOC_HOOK

// Replacement global allocation functions (the full C++17 set).  Everything
// funnels through malloc/posix_memalign so any operator delete may free any
// operator new's memory, exactly as the default implementations guarantee.

using ascoma::selfprof::counted_alloc;
using ascoma::selfprof::counted_alloc_aligned;

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // ASCOMA_SELFPROF_ALLOC_HOOK
