#pragma once

// Process-level host telemetry for the self-profiler: peak resident set and
// a per-thread heap-allocation counter.
//
// The allocation counter is fed by replacement `operator new/delete`
// implementations in host.cc (compiled in together with the rest of
// src/selfprof/ and disabled automatically under ASan/TSan, whose runtimes
// own the allocator).  Each allocation costs one thread_local increment on
// top of malloc, so the hook stays resident even in default builds.

#include <cstdint>

namespace ascoma::selfprof {

/// Process high-water resident set size in bytes (VmHWM from
/// /proc/self/status, getrusage(RUSAGE_SELF) otherwise).  0 when neither
/// source is available.
std::uint64_t peak_rss_bytes();

/// Number of heap allocations performed by the calling thread since it
/// started.  Monotonic; callers diff two readings to attribute allocations
/// to a region.  Always 0 when the counting hook is compiled out
/// (ASCOMA_SELFPROF=0 or a sanitizer build).
std::uint64_t thread_alloc_count();

/// True when the operator-new counting hook is active in this build.
bool alloc_hook_active();

}  // namespace ascoma::selfprof
