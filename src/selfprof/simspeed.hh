#pragma once

// Sim-rate telemetry documents: the `BENCH_simspeed.json` format emitted by
// the sweep benches and the CLI, plus the comparison logic behind
// tools/ascoma_simspeed_diff (same exit-code contract as ascoma_prof_diff:
// 0 ok, 1 regression, 2 unreadable/malformed — CI gates on it directly).
//
// A row captures one sweep job's simulation-speed envelope: simulated cycles
// and shared-memory accesses, host wall nanoseconds, the derived sim-rate
// (simulated cycles per wall second), process peak RSS, and the number of
// heap allocations attributed to the job.  Rows are joined on
// (label, workload, arch).
//
// Wall time is the one cross-machine-noisy axis, so the gate is deliberately
// generous where prof's latency gate is tight: a row only regresses when its
// sim-rate *dropped* by more than `rate_tol` (relative) AND the row ran for
// at least `min_wall_ms` on both sides (sub-threshold rows are noise).  RSS
// and allocation-count growth use their own tolerances; allocation counts
// are deterministic per build, RSS nearly so.  Simulated-cycle mismatches
// are reported as informational only — bit-identity is golden_default_run's
// job, not this gate's.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "selfprof/clock.hh"

namespace ascoma::selfprof {

inline constexpr const char* kSimspeedSchema = "ascoma.simspeed/1";

/// One sweep job's speed envelope.
struct SimspeedRow {
  std::string label;
  std::string workload;
  std::string arch;
  std::uint64_t cycles = 0;    ///< simulated cycles
  std::uint64_t accesses = 0;  ///< simulated shared-memory accesses
  std::uint64_t wall_ns = 0;   ///< host wall time for the job
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t allocs = 0;
  /// Host ns the job spent in the durability layer (fingerprinting, record
  /// I/O, manifest appends).  Informational only — never gated, and 0 when
  /// the sweep runs without a store, which the rate gate implicitly checks:
  /// store-off runs must not pay for the feature.
  std::uint64_t store_ns = 0;
  /// Host ns the job spent publishing to the live observability plane
  /// (status board, metrics registry, event tail).  Informational only —
  /// never gated, and 0 when the sweep runs without --serve, which the rate
  /// gate implicitly checks: serve-off runs must not pay for the feature.
  std::uint64_t serve_ns = 0;

  /// Simulated cycles per host wall second (0 when wall_ns is 0).
  double sim_rate_hz() const;
  /// Simulated accesses per host wall second (0 when wall_ns is 0).
  double access_rate_hz() const;
};

/// A whole BENCH_simspeed.json document.
struct SimspeedDoc {
  std::string bench;  ///< producing bench/CLI name, e.g. "table1_overhead"
  std::vector<SimspeedRow> rows;
};

/// Serialize `doc` as single-line JSON (schema ascoma.simspeed/1).  All
/// caller-supplied strings pass through obs::json_escape.
void write_simspeed(std::ostream& os, const SimspeedDoc& doc);

/// Parse a document produced by write_simspeed (tolerant of whitespace and
/// key order).  Returns false and sets `error` on malformed input.
bool parse_simspeed(const std::string& text, SimspeedDoc& doc,
                    std::string& error);

struct SpeedDiffOptions {
  double rate_tol = 0.25;        ///< relative sim-rate drop that fails
  double rss_tol = 0.50;         ///< relative peak-RSS growth that fails
  double allocs_tol = 0.25;      ///< relative allocation-count growth
  std::uint64_t min_wall_ms = 50;///< both sides must run at least this long
};

struct SpeedFinding {
  enum class Kind : std::uint8_t {
    kRateRegression,   ///< sim-rate dropped beyond rate_tol
    kRssRegression,    ///< peak RSS grew beyond rss_tol
    kAllocRegression,  ///< allocation count grew beyond allocs_tol
    kCyclesChanged,    ///< informational: simulated work itself changed
    kRowVanished,      ///< informational: row in baseline only
    kRowAppeared,      ///< informational: row in candidate only
  };
  Kind kind;
  std::string label;
  std::string workload;
  std::string arch;
  double base_value = 0.0;
  double cand_value = 0.0;
  double ratio = 0.0;  ///< cand / base

  bool is_regression() const {
    return kind == Kind::kRateRegression || kind == Kind::kRssRegression ||
           kind == Kind::kAllocRegression;
  }
};

struct SpeedDiffReport {
  std::vector<SpeedFinding> findings;
  std::size_t rows_compared = 0;
  std::string error;  ///< non-empty when a document could not be parsed

  bool ok() const { return error.empty(); }
  std::size_t regressions() const;
};

/// Load both JSON files and compare.
SpeedDiffReport diff_simspeed_files(const std::string& baseline_path,
                                    const std::string& candidate_path,
                                    const SpeedDiffOptions& opts = {});

/// Compare already-parsed documents (unit-test entry point).
SpeedDiffReport diff_simspeed(const SimspeedDoc& baseline,
                              const SimspeedDoc& candidate,
                              const SpeedDiffOptions& opts = {});

/// Human-readable report; one line per finding plus a verdict line.
void write_speed_report(std::ostream& os, const SpeedDiffReport& report,
                        const SpeedDiffOptions& opts);

}  // namespace ascoma::selfprof
