#include "common/rng.hh"
#include "workload/splash.hh"

namespace ascoma::workload {

// barnes: compute-intensive N-body (8 nodes).  Each iteration a process
// (1) rebuilds its local tree (local reads/writes with locks guarding cell
// updates) and (2) computes forces, reading a dense 40% region of every
// other node's bodies twice, with high spatial locality.  The remote region
// is identical across iterations, so remote pages stay hot for the whole
// run — the behaviour that rewards S-COMA-style replication and punishes
// page-cache churn at high memory pressure.
std::unique_ptr<OpStream> BarnesWorkload::stream(std::uint32_t proc,
                                                 std::uint64_t seed) const {
  StreamBuilder b(page_bytes(), line_bytes());
  Rng rng(seed, mix64(0xBA27E5, proc));

  const std::uint64_t H = home_pages_;
  const VPageId my_base = partition_base(NodeId{proc});
  const std::uint64_t remote_pages = (H * 2) / 5;  // 40% of each partition
  const std::uint32_t iters = scaled(4);

  for (std::uint32_t it = 0; it < iters; ++it) {
    // --- tree build: local partition, read-modify-write with cell locks ---
    for (std::uint64_t p = 0; p < H; ++p) {
      const VPageId page = my_base + p;
      b.compute(Cycle{20});
      for (std::uint32_t l = 0; l < 16; ++l) b.load(page, l * 8);
      const std::uint64_t lock_id = (proc * 37 + p) % 32;
      b.lock(lock_id);
      b.store(page, (p * 8) % 128);
      b.store(page, (p * 8 + 4) % 128);
      b.unlock(lock_id);
      b.private_ops(8);
    }
    b.barrier();

    // --- force computation: dense remote regions, two passes -------------
    for (std::uint32_t pass = 0; pass < 2; ++pass) {
      for (std::uint32_t q = 0; q < nodes_; ++q) {
        if (q == proc) continue;
        const VPageId q_base = partition_base(NodeId{q});
        // The dense region starts at a per-(proc,q) deterministic offset so
        // partitions overlap differently per reader.
        const std::uint64_t off = mix64(proc, q) % (H - remote_pages);
        for (std::uint64_t p = 0; p < remote_pages; ++p) {
          const VPageId page = q_base + off + p;
          b.compute(Cycle{30});  // barnes is compute-heavy
          for (std::uint32_t l = 0; l < 32; ++l) b.load(page, l * 4);
          b.private_ops(12);
        }
      }
      b.barrier();
    }

    // --- body update: local stores ---------------------------------------
    for (std::uint64_t p = 0; p < H; ++p) {
      const VPageId page = my_base + p;
      for (std::uint32_t l = 0; l < 8; ++l) b.store(page, l * 16);
      b.compute(Cycle{10});
    }
    b.barrier();
    (void)rng;
  }
  return std::make_unique<VectorStream>(b.take());
}

}  // namespace ascoma::workload
