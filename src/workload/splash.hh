#pragma once

// The six paper workloads (SPLASH-2 barnes/fft/lu/ocean/radix + Split-C
// em3d), scaled to simulator-friendly page counts while preserving each
// program's sharing signature (Table 5/6 structure and the Section 5
// analysis).  All run on 8 nodes except lu (4 nodes), as in the paper.

#include "workload/workload.hh"

namespace ascoma::workload {

/// Base for the partitioned SPMD generators: node p is home to the
/// contiguous page range [p*H, (p+1)*H).
class SplashWorkload : public Workload {
 public:
  SplashWorkload(std::uint32_t nodes, std::uint64_t home_pages, double scale)
      : nodes_(nodes), home_pages_(home_pages), scale_(scale) {}

  std::uint32_t nodes() const override { return nodes_; }
  std::uint64_t total_pages() const override { return nodes_ * home_pages_; }

  std::uint64_t home_pages_per_node() const { return home_pages_; }
  VPageId partition_base(NodeId n) const {
    return VPageId{n.value() * home_pages_};
  }

 protected:
  std::uint32_t scaled(std::uint32_t iters) const {
    const auto s = static_cast<std::uint32_t>(iters * scale_);
    return s == 0 ? 1 : s;
  }

  std::uint32_t nodes_;
  std::uint64_t home_pages_;
  double scale_;
};

/// barnes: compute-intensive N-body.  High spatial locality; every process
/// repeatedly reads large dense regions of the other nodes' bodies, so most
/// remote pages stay hot across iterations.
class BarnesWorkload final : public SplashWorkload {
 public:
  explicit BarnesWorkload(double scale = 1.0)
      : SplashWorkload(8, 256, scale) {}
  std::string name() const override { return "barnes"; }
  std::unique_ptr<OpStream> stream(std::uint32_t proc,
                                   std::uint64_t seed) const override;
};

/// em3d: bipartite graph relaxation.  Each process owns its nodes and reads
/// a fixed, randomly-chosen ~30% remote neighbour set every iteration — the
/// whole remote set is hot, which makes thrash handling decisive above the
/// ideal pressure.
class Em3dWorkload final : public SplashWorkload {
 public:
  explicit Em3dWorkload(double scale = 1.0)
      : SplashWorkload(8, 512, scale) {}
  std::string name() const override { return "em3d"; }
  std::unique_ptr<OpStream> stream(std::uint32_t proc,
                                   std::uint64_t seed) const override;
};

/// fft: all-to-all transpose.  Remote data is streamed sequentially with
/// very high spatial locality and almost no block reuse, so nearly no page
/// earns relocation and the one-block RAC satisfies most remote line misses.
class FftWorkload final : public SplashWorkload {
 public:
  explicit FftWorkload(double scale = 1.0) : SplashWorkload(8, 352, scale) {}
  std::string name() const override { return "fft"; }
  std::unique_ptr<OpStream> stream(std::uint32_t proc,
                                   std::uint64_t seed) const override;
};

/// lu: blocked dense factorization (4 nodes, as in the paper).  Every
/// process eventually touches every remote page hard enough to relocate it,
/// but only a small moving window is active at any time, so even a small
/// page cache captures the active set.
class LuWorkload final : public SplashWorkload {
 public:
  explicit LuWorkload(double scale = 1.0) : SplashWorkload(4, 480, scale) {}
  std::string name() const override { return "lu"; }
  std::unique_ptr<OpStream> stream(std::uint32_t proc,
                                   std::uint64_t seed) const override;
};

/// ocean: nearest-neighbour grid relaxation.  Overwhelmingly local; only
/// partition-boundary pages are shared with the two neighbouring processes,
/// so remote misses are a tiny fraction at every memory pressure.
class OceanWorkload final : public SplashWorkload {
 public:
  explicit OceanWorkload(double scale = 1.0)
      : SplashWorkload(8, 512, scale) {}
  std::string name() const override { return "ocean"; }
  std::unique_ptr<OpStream> stream(std::uint32_t proc,
                                   std::uint64_t seed) const override;
};

/// radix: radix sort scatter.  Almost no spatial locality — every node
/// writes keys into every page of every other node — the extreme case where
/// fine-tuning the page cache backfires and back-off is essential.
class RadixWorkload final : public SplashWorkload {
 public:
  explicit RadixWorkload(double scale = 1.0)
      : SplashWorkload(8, 256, scale) {}
  std::string name() const override { return "radix"; }
  std::unique_ptr<OpStream> stream(std::uint32_t proc,
                                   std::uint64_t seed) const override;
};

}  // namespace ascoma::workload
