#pragma once

// Fully parameterisable synthetic workload: the knobs are exactly the
// signature properties the paper's analysis attributes performance to
// (remote working-set size, spatial locality, write fraction, reuse).  Used
// by the custom_workload example, the property-test sweeps, and ablations.

#include "common/rng.hh"
#include "workload/workload.hh"

namespace ascoma::workload {

struct SyntheticParams {
  std::string name = "synthetic";
  std::uint32_t nodes = 8;
  std::uint32_t procs_per_node = 1;    ///< SMP-node extension
  std::uint64_t home_pages = 128;      ///< per node
  std::uint64_t remote_pages = 256;    ///< hot remote set per node
  std::uint32_t iterations = 4;
  std::uint32_t sweeps_per_iteration = 2;
  std::uint32_t loads_per_page = 16;   ///< per sweep, stride-spread
  double write_fraction = 0.1;         ///< fraction of accesses that store
  double random_fraction = 0.0;        ///< accesses to uniform random pages
  Cycle compute_per_page{10};          ///< cycles between page visits
  std::uint64_t private_per_page = 4;
  bool barriers = true;
  std::uint32_t locks = 0;             ///< lock ids used (0 = none)
};

class SyntheticWorkload final : public Workload {
 public:
  explicit SyntheticWorkload(SyntheticParams params);

  std::string name() const override { return params_.name; }
  std::uint32_t nodes() const override { return params_.nodes; }
  std::uint32_t processes() const override {
    return params_.nodes * params_.procs_per_node;
  }
  std::uint64_t total_pages() const override {
    return static_cast<std::uint64_t>(params_.nodes) * params_.home_pages;
  }
  std::unique_ptr<OpStream> stream(std::uint32_t proc,
                                   std::uint64_t seed) const override;

  const SyntheticParams& params() const { return params_; }

 private:
  SyntheticParams params_;
};

}  // namespace ascoma::workload
