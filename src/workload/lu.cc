#include "workload/splash.hh"

namespace ascoma::workload {

// lu: blocked dense LU factorization (4 nodes, as in the paper).  Phase k
// broadcasts the pivot block column owned by node k%4: every process sweeps
// the 48-page window ten times (crossing the relocation threshold early in
// the phase, so most of the phase benefits from an upgrade) and then never
// touches it again.  Over the run every remote page becomes hot exactly
// once, but the *active* remote set is always one window — a small page
// cache suffices at any memory pressure, which is why all the hybrids beat
// CC-NUMA by a wide, pressure-independent margin here.  Phases are long
// relative to the pageout-daemon period, so dead windows are reclaimed in
// time to serve the next one.
std::unique_ptr<OpStream> LuWorkload::stream(std::uint32_t proc,
                                             std::uint64_t seed) const {
  (void)seed;  // deterministic blocked access pattern
  StreamBuilder b(page_bytes(), line_bytes());

  const std::uint64_t H = home_pages_;
  constexpr std::uint64_t kWindow = 48;  // pages per pivot block column
  constexpr std::uint32_t kSweeps = 10;
  const std::uint64_t windows_per_node = H / kWindow;
  const std::uint32_t phases =
      scaled(static_cast<std::uint32_t>(nodes_ * windows_per_node));
  const VPageId my_base = partition_base(NodeId{proc});

  for (std::uint32_t k = 0; k < phases; ++k) {
    const NodeId pivot{k % nodes_};
    const std::uint64_t w = (k / nodes_) % windows_per_node;
    const VPageId win_base = partition_base(NodeId{pivot}) + w * kWindow;

    // Repeated sweeps of the pivot window (reads; local for the pivot node).
    // Stride 4 lines = one line per coherence block: every sweep refetches
    // every block, so the refetch counter crosses the threshold by sweep 3.
    for (std::uint32_t sweep = 0; sweep < kSweeps; ++sweep) {
      for (std::uint64_t p = 0; p < kWindow; ++p) {
        for (std::uint32_t l = 0; l < 32; ++l) b.load(win_base + p, l * 4);
        b.compute(Cycle{12});
      }
    }

    // Trailing-matrix update: write into the owned partition.
    for (std::uint64_t p = 0; p < H / 8; ++p) {
      const VPageId page = my_base + (k * (H / 8) + p) % H;
      for (std::uint32_t l = 0; l < 8; ++l) {
        b.load(page, l * 16);
        b.store(page, l * 16 + 2);
      }
      b.compute(Cycle{10});
      b.private_ops(4);
    }
    b.barrier();
  }
  return std::make_unique<VectorStream>(b.take());
}

}  // namespace ascoma::workload
