#include "workload/splash.hh"

namespace ascoma::workload {

// ocean: nearest-neighbour grid relaxation (8 nodes).  Each iteration
// updates the owned 512-page sub-grid and exchanges 32 boundary pages with
// each ring neighbour.  Remote traffic is a small, fixed, hot set: the
// architectures only differ at extreme pressure, and even then only
// slightly — the paper's "everything within a few % of each other" case
// (pure S-COMA excepted, since its mandatory replication thrashes at 90%).
std::unique_ptr<OpStream> OceanWorkload::stream(std::uint32_t proc,
                                                std::uint64_t seed) const {
  (void)seed;  // deterministic stencil pattern
  StreamBuilder b(page_bytes(), line_bytes());

  const std::uint64_t H = home_pages_;
  constexpr std::uint64_t kBoundary = 32;  // pages shared with each neighbour
  const VPageId my_base = partition_base(NodeId{proc});
  const NodeId prev{(proc + nodes_ - 1) % nodes_};
  const NodeId next{(proc + 1) % nodes_};
  const std::uint32_t iters = scaled(10);

  for (std::uint32_t it = 0; it < iters; ++it) {
    // Interior update: read the 5-point stencil, write the new value.
    for (std::uint64_t p = 0; p < H; ++p) {
      const VPageId page = my_base + p;
      for (std::uint32_t l = 0; l < 8; ++l) b.load(page, l * 16);
      for (std::uint32_t l = 0; l < 4; ++l) b.store(page, l * 32 + 3);
      b.compute(Cycle{8});
      b.private_ops(3);
    }
    b.barrier();

    // Boundary exchange: read the neighbours' edge pages (two sweeps — the
    // stencil touches each halo row twice), which the neighbours rewrote
    // last iteration (coherence traffic).
    for (std::uint32_t sweep = 0; sweep < 2; ++sweep) {
      for (std::uint64_t p = 0; p < kBoundary; ++p) {
        // prev's last pages and next's first pages form the halo.
        const VPageId from_prev = partition_base(NodeId{prev}) + (H - kBoundary + p);
        const VPageId from_next = partition_base(NodeId{next}) + p;
        for (std::uint32_t l = 0; l < 16; ++l) {
          b.load(from_prev, l * 8);
          b.load(from_next, l * 8);
        }
        b.compute(Cycle{6});
      }
    }
    b.barrier();
  }
  return std::make_unique<VectorStream>(b.take());
}

}  // namespace ascoma::workload
