#include "workload/splash.hh"

namespace ascoma::workload {

// fft: all-to-all transpose (8 nodes).  Each iteration performs a local
// butterfly pass and then reads its chunk of every other node's partition
// exactly once, strictly sequentially.  Remote blocks are fetched once and
// never refetched within a pass, so (a) almost no page accumulates enough
// refetches to relocate (Table 6: <1%) and (b) the one-block RAC satisfies
// three of every four remote line misses ("the RAC plays a major role").
std::unique_ptr<OpStream> FftWorkload::stream(std::uint32_t proc,
                                              std::uint64_t seed) const {
  (void)seed;  // fft's access pattern is fully deterministic
  StreamBuilder b(page_bytes(), line_bytes());

  const std::uint64_t H = home_pages_;
  const std::uint64_t chunk = H / nodes_;  // pages each peer reads from me
  const VPageId my_base = partition_base(NodeId{proc});
  const std::uint32_t iters = scaled(2);

  for (std::uint32_t it = 0; it < iters; ++it) {
    // Local butterfly pass over the owned partition.
    for (std::uint64_t p = 0; p < H; ++p) {
      const VPageId page = my_base + p;
      for (std::uint32_t l = 0; l < 32; ++l) b.load(page, l * 4);
      for (std::uint32_t l = 0; l < 8; ++l) b.store(page, l * 16 + 1);
      b.compute(Cycle{15});
      b.private_ops(6);
    }
    b.barrier();

    // Transpose: stream my chunk out of every peer, fully sequentially.
    for (std::uint32_t q = 0; q < nodes_; ++q) {
      if (q == proc) continue;
      const VPageId src_base = partition_base(NodeId{q}) + proc * chunk;
      for (std::uint64_t p = 0; p < chunk; ++p) {
        const VPageId src = src_base + p;
        const VPageId dst = my_base + (q * chunk + p) % H;
        for (std::uint32_t l = 0; l < 128; ++l) {
          b.load(src, l);
          if (l % 4 == 3) b.store(dst, l);
        }
        b.compute(Cycle{8});
      }
    }
    b.barrier();
  }
  return std::make_unique<VectorStream>(b.take());
}

}  // namespace ascoma::workload
