#include "workload/synthetic.hh"

#include <vector>

#include "common/check.hh"

namespace ascoma::workload {

SyntheticWorkload::SyntheticWorkload(SyntheticParams params)
    : params_(std::move(params)) {
  ASCOMA_CHECK(params_.nodes > 0);
  ASCOMA_CHECK(params_.home_pages > 0);
  ASCOMA_CHECK_MSG(
      params_.remote_pages <=
          (params_.nodes - 1) * params_.home_pages || params_.nodes == 1,
      "remote working set larger than the rest of the machine");
  ASCOMA_CHECK(params_.write_fraction >= 0.0 && params_.write_fraction <= 1.0);
  ASCOMA_CHECK(params_.random_fraction >= 0.0 &&
               params_.random_fraction <= 1.0);
}

std::unique_ptr<OpStream> SyntheticWorkload::stream(std::uint32_t proc,
                                                    std::uint64_t seed) const {
  const SyntheticParams& p = params_;
  StreamBuilder b(page_bytes(), line_bytes());
  Rng rng(seed, mix64(0x5D17, proc));

  const std::uint64_t H = p.home_pages;
  // Processes on the same node share the node's partition (SMP extension);
  // each process still has its own hot remote set.
  const std::uint32_t node = proc / p.procs_per_node;
  const VPageId my_base{node * H};
  const std::uint64_t all = total_pages();

  // Fixed hot remote set, sampled deterministically outside our partition.
  std::vector<VPageId> hot;
  if (p.nodes > 1) {
    hot.reserve(p.remote_pages);
    std::vector<std::uint8_t> chosen(all, 0);
    while (hot.size() < p.remote_pages) {
      const VPageId cand{rng.below(all)};
      if (cand >= my_base && cand < my_base + H) continue;
      if (chosen[cand.value()]) continue;
      chosen[cand.value()] = 1;
      hot.push_back(cand);
    }
  }

  const std::uint64_t lines = b.lines_per_page();
  const std::uint64_t stride = lines / std::max(1u, p.loads_per_page);

  auto visit = [&](VPageId page) {
    for (std::uint32_t l = 0; l < p.loads_per_page; ++l) {
      const std::uint64_t line = static_cast<std::uint64_t>(l) *
                                 std::max<std::uint64_t>(1, stride);
      if (rng.chance(p.write_fraction))
        b.store(page, line);
      else
        b.load(page, line);
    }
    b.compute(p.compute_per_page);
    b.private_ops(p.private_per_page);
  };

  for (std::uint32_t it = 0; it < p.iterations; ++it) {
    // Local phase.
    for (std::uint64_t pg = 0; pg < H; ++pg) visit(my_base + pg);
    if (p.locks > 0) {
      const std::uint64_t id = rng.below(p.locks);
      b.lock(id);
      b.store(VPageId{id % all}, id % lines);
      b.unlock(id);
    }
    if (p.barriers) b.barrier();

    // Remote phase: sweeps over the hot set plus optional random traffic.
    for (std::uint32_t s = 0; s < p.sweeps_per_iteration; ++s) {
      for (const VPageId page : hot) {
        if (rng.chance(p.random_fraction))
          visit(VPageId{rng.below(all)});
        else
          visit(page);
      }
    }
    if (p.barriers) b.barrier();
  }
  return std::make_unique<VectorStream>(b.take());
}

}  // namespace ascoma::workload
