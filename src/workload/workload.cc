#include "workload/workload.hh"

#include <algorithm>

#include "common/check.hh"
#include "workload/splash.hh"

namespace ascoma::workload {

NodeId Workload::home_of(VPageId page) const {
  const std::uint64_t per = pages_per_node();
  ASCOMA_CHECK(page.value() < total_pages());
  return NodeId(static_cast<std::uint32_t>(
      std::min<std::uint64_t>(page.value() / per, nodes() - 1)));
}

std::unique_ptr<Workload> make_workload(const std::string& name,
                                        double scale) {
  if (name == "barnes") return std::make_unique<BarnesWorkload>(scale);
  if (name == "em3d") return std::make_unique<Em3dWorkload>(scale);
  if (name == "fft") return std::make_unique<FftWorkload>(scale);
  if (name == "lu") return std::make_unique<LuWorkload>(scale);
  if (name == "ocean") return std::make_unique<OceanWorkload>(scale);
  if (name == "radix") return std::make_unique<RadixWorkload>(scale);
  return nullptr;
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> kNames = {"barnes", "em3d", "fft",
                                                  "lu",     "ocean", "radix"};
  return kNames;
}

}  // namespace ascoma::workload
