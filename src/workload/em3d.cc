#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "workload/splash.hh"

namespace ascoma::workload {

// em3d: bipartite-graph relaxation (8 nodes).  Each process owns 512 pages
// of graph nodes and holds edges to a fixed, randomly chosen set of ~160
// remote pages (~24% of the per-node footprint).  Every iteration reads the
// whole remote neighbour set — all remote pages are hot all the time, so
// above the ideal pressure (~76%) the page cache cannot hold the working set
// and thrash handling dominates (the paper's flagship high-pressure case).
std::unique_ptr<OpStream> Em3dWorkload::stream(std::uint32_t proc,
                                               std::uint64_t seed) const {
  StreamBuilder b(page_bytes(), line_bytes());
  Rng rng(seed, mix64(0xE3D, proc));

  const std::uint64_t H = home_pages_;
  const VPageId my_base = partition_base(NodeId{proc});
  const std::uint64_t remote_count = 160;

  // Fixed remote neighbour set: sampled without replacement from the other
  // nodes' partitions (deterministic per (seed, proc)).
  std::vector<VPageId> neighbours;
  neighbours.reserve(remote_count);
  std::vector<std::uint8_t> chosen(total_pages(), 0);
  while (neighbours.size() < remote_count) {
    const VPageId cand{rng.below(total_pages())};
    if (cand >= my_base && cand < my_base + H) continue;
    if (chosen[cand.value()]) continue;
    chosen[cand.value()] = 1;
    neighbours.push_back(cand);
  }
  std::sort(neighbours.begin(), neighbours.end());

  const std::uint32_t iters = scaled(10);
  for (std::uint32_t it = 0; it < iters; ++it) {
    // Local half-step: update owned nodes.
    for (std::uint64_t p = 0; p < H; ++p) {
      const VPageId page = my_base + p;
      for (std::uint32_t l = 0; l < 8; ++l) b.load(page, l * 16);
      b.store(page, (it * 4 + p) % 128);
      b.store(page, (it * 4 + p + 64) % 128);
      b.compute(Cycle{10});
      b.private_ops(4);
    }
    b.barrier();
    // Remote gather: read every neighbour page, two sweeps over 16 blocks.
    for (std::uint32_t sweep = 0; sweep < 2; ++sweep) {
      for (const VPageId page : neighbours) {
        for (std::uint32_t l = 0; l < 16; ++l) b.load(page, l * 8);
        b.compute(Cycle{6});
      }
    }
    b.barrier();
  }
  return std::make_unique<VectorStream>(b.take());
}

}  // namespace ascoma::workload
