#pragma once

// Workload abstraction: a workload describes the shared-memory footprint of
// one program (how many pages, who is home to what) and produces, for each
// process, the deterministic operation stream the simulated processor
// executes.  The same streams drive every architecture under test — the
// paper's controlled-variable methodology.
//
// The six paper workloads are synthetic generators shaped by each program's
// published sharing signature (see DESIGN.md section 2): partition sizes,
// remote-working-set size, spatial locality, phase structure and hot-page
// fraction reproduce the SPLASH-2 / Split-C behaviours the paper's analysis
// attributes its results to.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace ascoma::workload {

/// A lazily-consumed operation stream (kEnd-terminated).
class OpStream {
 public:
  virtual ~OpStream() = default;
  virtual Op next() = 0;
};

/// Materialized stream over a pre-built op vector.
class VectorStream final : public OpStream {
 public:
  explicit VectorStream(std::vector<Op> ops) : ops_(std::move(ops)) {}
  Op next() override {
    if (pos_ >= ops_.size()) return Op{OpKind::kEnd, 0};
    return ops_[pos_++];
  }

 private:
  std::vector<Op> ops_;
  std::size_t pos_ = 0;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual std::uint32_t nodes() const = 0;
  /// Number of processes (= processors).  Default: one per node; SMP-node
  /// workloads return nodes() * procs_per_node.  Must be a multiple of
  /// nodes(); process p runs on node p / (processes()/nodes()).
  virtual std::uint32_t processes() const { return nodes(); }
  /// Total shared pages across the machine.
  virtual std::uint64_t total_pages() const = 0;
  /// Home node of a page.  Default: contiguous equal partitions (the layout
  /// the paper's capped first-touch produces for these SPMD programs).
  virtual NodeId home_of(VPageId page) const;
  /// Build process `proc`'s operation stream (deterministic in `seed`).
  virtual std::unique_ptr<OpStream> stream(std::uint32_t proc,
                                           std::uint64_t seed) const = 0;

  /// Granularities the generated addresses assume; the machine validates its
  /// MachineConfig against these.
  virtual ByteCount page_bytes() const { return ByteCount{4096}; }
  virtual ByteCount line_bytes() const { return ByteCount{32}; }

  std::uint64_t pages_per_node() const { return total_pages() / nodes(); }
};

/// Helper used by the concrete generators: ops appended into a vector with
/// address arithmetic over a given page size.
class StreamBuilder {
 public:
  explicit StreamBuilder(ByteCount page_bytes, ByteCount line_bytes)
      : page_bytes_(page_bytes), line_bytes_(line_bytes) {}

  void compute(Cycle cycles) {
    if (cycles == Cycle{0}) return;
    if (!ops_.empty() && ops_.back().kind == OpKind::kCompute)
      ops_.back().arg += cycles.value();
    else
      ops_.push_back({OpKind::kCompute, cycles.value()});
  }
  void private_ops(std::uint64_t count) {
    if (count == 0) return;
    if (!ops_.empty() && ops_.back().kind == OpKind::kPrivate)
      ops_.back().arg += count;
    else
      ops_.push_back({OpKind::kPrivate, count});
  }
  void load(VPageId page, std::uint64_t line_idx) {
    ops_.push_back({OpKind::kLoad, addr(page, line_idx).value()});
  }
  void store(VPageId page, std::uint64_t line_idx) {
    ops_.push_back({OpKind::kStore, addr(page, line_idx).value()});
  }
  void barrier() { ops_.push_back({OpKind::kBarrier, barrier_seq_++}); }
  void lock(std::uint64_t id) { ops_.push_back({OpKind::kLock, id}); }
  void unlock(std::uint64_t id) { ops_.push_back({OpKind::kUnlock, id}); }

  std::uint64_t lines_per_page() const { return page_bytes_ / line_bytes_; }

  std::vector<Op> take() {
    ops_.push_back({OpKind::kEnd, 0});
    return std::move(ops_);
  }

 private:
  Addr addr(VPageId page, std::uint64_t line_idx) const {
    return Addr{page.value() * page_bytes_.value() +
                (line_idx % lines_per_page()) * line_bytes_.value()};
  }

  ByteCount page_bytes_;
  ByteCount line_bytes_;
  std::vector<Op> ops_;
  std::uint64_t barrier_seq_ = 0;
};

/// Factory over the six paper workloads: "barnes", "em3d", "fft", "lu",
/// "ocean", "radix".  `scale` multiplies iteration counts (1.0 = default).
/// Returns nullptr for an unknown name.
std::unique_ptr<Workload> make_workload(const std::string& name,
                                        double scale = 1.0);

/// Names accepted by make_workload, in the paper's order.
const std::vector<std::string>& workload_names();

}  // namespace ascoma::workload
