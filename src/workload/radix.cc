#include "common/rng.hh"
#include "workload/splash.hh"

namespace ascoma::workload {

// radix: parallel radix sort (8 nodes).  The scatter phase writes keys to
// uniformly random lines of uniformly random pages across the whole machine:
// no spatial locality, every node touches every page, and every page is
// roughly as hot as any other.  This is the paper's extreme case where
// fine-tuning the page-cache contents backfires — pure S-COMA collapses even
// at 30% pressure, R-NUMA/VC-NUMA thrash by 70%, and only a back-off that
// parks a "reasonable subset" of pages in the cache stays near CC-NUMA.
std::unique_ptr<OpStream> RadixWorkload::stream(std::uint32_t proc,
                                                std::uint64_t seed) const {
  StreamBuilder b(page_bytes(), line_bytes());
  Rng rng(seed, mix64(0x2AD1C5, proc));

  const std::uint64_t H = home_pages_;
  const std::uint64_t all_pages = total_pages();
  const VPageId my_base = partition_base(NodeId{proc});
  const std::uint32_t iters = scaled(4);
  const std::uint64_t scatter_per_iter = 30'000;

  for (std::uint32_t it = 0; it < iters; ++it) {
    // Local pass: rank the owned keys (sequential reads).
    for (std::uint64_t p = 0; p < H; ++p) {
      const VPageId page = my_base + p;
      for (std::uint32_t l = 0; l < 64; ++l) b.load(page, l * 2);
      b.compute(Cycle{6});
    }
    b.barrier();

    // Global rank/offset read: every node sweeps the machine-wide rank
    // structure twice.  Reads do not invalidate each other, so this is the
    // source of radix's uniform, machine-wide conflict refetch pressure —
    // every page ends up roughly as hot as any other.
    for (std::uint32_t pass = 0; pass < 3; ++pass) {
      for (VPageId page{0}; page.value() < all_pages; ++page) {
        if (page >= my_base && page < my_base + H) continue;  // local copy
        for (std::uint32_t l = 0; l < 16; ++l) b.load(page, l * 8);
      }
      b.compute(Cycle{200});
    }
    b.barrier();

    // Histogram merge: short critical sections on shared counters.
    for (std::uint32_t h = 0; h < 64; ++h) {
      const std::uint64_t lock_id = h;
      b.lock(lock_id);
      const VPageId page{h % all_pages};
      b.load(page, h * 2);
      b.store(page, h * 2);
      b.unlock(lock_id);
      b.private_ops(2);
    }
    b.barrier();

    // Scatter: write each key to its destination bucket — uniformly random
    // page and line, machine-wide.
    for (std::uint64_t s = 0; s < scatter_per_iter; ++s) {
      const VPageId page{rng.below(all_pages)};
      const std::uint64_t line = rng.below(128);
      b.store(page, line);
      if ((s & 7) == 0) b.compute(Cycle{4});
    }
    b.barrier();
  }
  return std::make_unique<VectorStream>(b.take());
}

}  // namespace ascoma::workload
