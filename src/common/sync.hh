// Annotated concurrency primitives — the static half of the concurrency
// fence (ARCHITECTURE.md §18; companion linter: tools/lint_concurrency.py).
//
// Everything cross-thread in this repo locks through ascoma::Mutex /
// ascoma::LockGuard / ascoma::CondVar, never raw std::mutex (linter rule
// C2).  The wrappers are zero-cost overlays over the std types — same
// size, same codegen — whose only addition is clang's thread-safety
// capability attributes, so `clang++ -Wthread-safety -Werror` proves at
// compile time that every ASCOMA_GUARDED_BY field is only touched with
// its mutex held.  Under gcc (and under clang without the flag) the
// attributes vanish and the wrappers are plain forwarding shims; the
// tree must build identically either way (tests/test_sync.cc pins this).
//
// Usage pattern for new shared state (annotate FIRST, then implement):
//
//   class Board {
//    public:
//     void set(int v) ASCOMA_EXCLUDES(mu_) { LockGuard lk(mu_); v_ = v; }
//    private:
//     mutable ascoma::Mutex mu_;
//     int v_ ASCOMA_GUARDED_BY(mu_) = 0;
//   };
//
// Lock-free state stays std::atomic and is exempt from GUARDED_BY, but
// every load/store/RMW must name an explicit memory_order and carry a
// one-line `// order:` rationale (linter rule C1).

#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

// ---------------------------------------------------------------------------
// The attribute spellings.  Clang-only: gcc has no thread-safety analysis
// and warns on the unknown attributes, so they compile away entirely —
// the same shape as ASCOMA_ANNOTATE in annotate.hh.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define ASCOMA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ASCOMA_THREAD_ANNOTATION(x)
#endif

// On types: this class is a lockable capability / a scoped lock holder.
#define ASCOMA_CAPABILITY(x) ASCOMA_THREAD_ANNOTATION(capability(x))
#define ASCOMA_SCOPED_CAPABILITY ASCOMA_THREAD_ANNOTATION(scoped_lockable)

// On data members: may only be read/written with the named mutex held
// (PT_ variant: the pointee, for pointers into guarded storage).
#define ASCOMA_GUARDED_BY(x) ASCOMA_THREAD_ANNOTATION(guarded_by(x))
#define ASCOMA_PT_GUARDED_BY(x) ASCOMA_THREAD_ANNOTATION(pt_guarded_by(x))

// On mutex members: declared acquisition order (lint rule C3 enforces the
// repo-wide hierarchy; these make it compiler-visible too).
#define ASCOMA_ACQUIRED_BEFORE(...) \
  ASCOMA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ASCOMA_ACQUIRED_AFTER(...) \
  ASCOMA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// On functions: caller must hold / must not hold the named mutexes.
#define ASCOMA_REQUIRES(...) \
  ASCOMA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ASCOMA_EXCLUDES(...) \
  ASCOMA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On functions: this function takes / drops the named mutexes itself.
#define ASCOMA_ACQUIRE(...) \
  ASCOMA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ASCOMA_RELEASE(...) \
  ASCOMA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Escape hatch for code the analysis cannot follow (e.g. adopting a lock
// across an ABI boundary).  Every use needs a comment saying why.
#define ASCOMA_NO_THREAD_SAFETY_ANALYSIS \
  ASCOMA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ascoma {

class CondVar;

// std::mutex with a capability attribute, so ASCOMA_GUARDED_BY(mu_) means
// something to the compiler.  Non-copyable, non-movable, same as std.
class ASCOMA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ASCOMA_ACQUIRE() { mu_.lock(); }
  void unlock() ASCOMA_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;  // wait() re-locks through the wrapped mutex
  std::mutex mu_;
};

// RAII lock for a Mutex; the scoped_capability attribute lets the analysis
// treat construction as acquire and scope exit as release.
class ASCOMA_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) ASCOMA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() ASCOMA_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to ascoma::Mutex.  The caller holds the mutex
// via LockGuard; wait()/wait_for() adopt the held lock into a
// std::unique_lock for the std wait protocol and release ownership back
// before returning, so the LockGuard's eventual unlock stays balanced.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  // Blocks until notified (or spuriously woken); mu held on entry/return.
  // Prefer this plain form in src/: the wait loop then lives in the caller,
  // where -Wthread-safety can see that guarded fields are read under mu
  // (a predicate lambda is analyzed as a separate function and cannot).
  void wait(Mutex& mu) ASCOMA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership returns to the caller's LockGuard
  }

  // Timed plain wait; std::cv_status::timeout when dur elapsed unnotified.
  template <class Duration>
  std::cv_status wait_for(Mutex& mu, const Duration& dur)
      ASCOMA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lk, dur);
    lk.release();  // ownership returns to the caller's LockGuard
    return status;
  }

  // Blocks until pred() is true; mu is held on entry and on return.
  template <class Pred>
  void wait(Mutex& mu, Pred pred) ASCOMA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk, std::move(pred));
    lk.release();  // ownership returns to the caller's LockGuard
  }

  // Blocks until pred() is true or dur elapsed; returns pred()'s value.
  // Duration is any std::chrono duration (templated so this header stays
  // outside the host-time lint boundary).
  template <class Duration, class Pred>
  bool wait_for(Mutex& mu, const Duration& dur, Pred pred)
      ASCOMA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lk, dur, std::move(pred));
    lk.release();  // ownership returns to the caller's LockGuard
    return satisfied;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace ascoma
