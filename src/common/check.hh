#pragma once

// Always-on invariant checking.  Protocol and VM invariants are cheap
// relative to simulation work and catching a violated invariant immediately
// is worth far more than the cycles, so ASCOMA_CHECK is active in all build
// types (the simulator is the product; it must never silently produce wrong
// state).  Failures throw so tests can assert on them.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ascoma {

class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "ASCOMA_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace ascoma

#define ASCOMA_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) ::ascoma::check_fail(#cond, __FILE__, __LINE__, "");   \
  } while (0)

#define ASCOMA_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream ascoma_check_os;                               \
      ascoma_check_os << msg;                                           \
      ::ascoma::check_fail(#cond, __FILE__, __LINE__,                   \
                           ascoma_check_os.str());                      \
    }                                                                   \
  } while (0)
