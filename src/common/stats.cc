#include "common/stats.hh"

#include <numeric>

namespace ascoma {

Cycle TimeBreakdown::total() const {
  return std::accumulate(cycles.begin(), cycles.end(), Cycle{0});
}

void TimeBreakdown::add(const TimeBreakdown& other) {
  for (int i = 0; i < kNumTimeBuckets; ++i) cycles[i] += other.cycles[i];
}

double TimeBreakdown::frac(TimeBucket b) const {
  const Cycle t = total();
  if (t == Cycle{0}) return 0.0;
  return static_cast<double>((*this)[b].value()) /
         static_cast<double>(t.value());
}

const char* to_string(TimeBucket b) {
  switch (b) {
    case TimeBucket::kUserInstr: return "U-INSTR";
    case TimeBucket::kUserLocal: return "U-LC-MEM";
    case TimeBucket::kUserShared: return "U-SH-MEM";
    case TimeBucket::kKernelBase: return "K-BASE";
    case TimeBucket::kKernelOvhd: return "K-OVERHD";
    case TimeBucket::kSync: return "SYNC";
  }
  return "?";
}

std::uint64_t MissBreakdown::total() const {
  return std::accumulate(count.begin(), count.end(), std::uint64_t{0});
}

std::uint64_t MissBreakdown::local() const {
  return (*this)[MissSource::kHome] + (*this)[MissSource::kScoma] +
         (*this)[MissSource::kRac];
}

std::uint64_t MissBreakdown::remote() const { return total() - local(); }

void MissBreakdown::add(const MissBreakdown& other) {
  for (int i = 0; i < kNumMissSources; ++i) count[i] += other.count[i];
}

const char* to_string(MissSource s) {
  switch (s) {
    case MissSource::kHome: return "HOME";
    case MissSource::kScoma: return "SCOMA";
    case MissSource::kRac: return "RAC";
    case MissSource::kCold: return "COLD";
    case MissSource::kConfCapc: return "CONF/CAPC";
    case MissSource::kCoherence: return "COHERENCE";
  }
  return "?";
}

void KernelStats::add(const KernelStats& o) {
  page_faults += o.page_faults;
  scoma_allocs += o.scoma_allocs;
  numa_allocs += o.numa_allocs;
  upgrades += o.upgrades;
  downgrades += o.downgrades;
  relocation_interrupts += o.relocation_interrupts;
  lines_flushed += o.lines_flushed;
  daemon_runs += o.daemon_runs;
  daemon_pages_scanned += o.daemon_pages_scanned;
  daemon_pages_reclaimed += o.daemon_pages_reclaimed;
  daemon_reclaim_failures += o.daemon_reclaim_failures;
  threshold_raises += o.threshold_raises;
  threshold_drops += o.threshold_drops;
  remap_suppressed += o.remap_suppressed;
  refetch_notifications += o.refetch_notifications;
  net_retries += o.net_retries;
  nacks += o.nacks;
}

void NodeStats::add(const NodeStats& o) {
  time.add(o.time);
  misses.add(o.misses);
  kernel.add(o.kernel);
  shared_loads += o.shared_loads;
  shared_stores += o.shared_stores;
  l1_hits += o.l1_hits;
  upgrades_issued += o.upgrades_issued;
  induced_cold_misses += o.induced_cold_misses;
  remote_pages_touched += o.remote_pages_touched;
}

double RunStats::remote_overhead_cycles() const {
  // (N_pagecache * T_pagecache) + (N_remote * T_remote) + (N_cold * T_remote)
  // + T_overhead, per Section 2.1.  T terms are reported by the simulator via
  // the time buckets, so here we return the shared-stall + kernel-overhead sum
  // which is the realized value of the formula.
  return static_cast<double>((totals.time[TimeBucket::kUserShared] +
                              totals.time[TimeBucket::kKernelOvhd])
                                 .value());
}

}  // namespace ascoma
