#pragma once

// Hot-path / determinism annotations (ARCHITECTURE.md §17).
//
// These macros mark the functions whose behaviour the static fence in
// tools/lint_hotpath.py guards.  They expand to [[clang::annotate]] under
// clang — so an AST tool can find them — and to nothing everywhere else;
// either way they cost zero code and zero data (tests/test_annotate.cc
// asserts both properties compile-time).  The regex front end of the linter
// matches the macro tokens textually, so annotations work identically on a
// tree that has never been compiled.
//
// Placement: annotate the *declaration* a reader sees first (the one in the
// header, or the definition for file-local functions), before the return
// type:
//
//   ASCOMA_HOT_PATH ProcId pick() const;
//
// What each annotation promises — and what the linter enforces transitively
// over everything the function calls:
//
// ASCOMA_HOT_PATH
//   Runs once per simulated operation (the selfprof host sites: sched_pick,
//   proto_access, dir_lookup, net_deliver, obs_emit, vm_fault, vm_kernel,
//   table_walk).  No heap allocation may be reachable: no new/malloc, no
//   allocating-container growth, no string building.  Reasoned exemptions
//   live in HOT_ALLOC_BOUNDARY in tools/lint_hotpath.py; [[noreturn]]
//   functions are cold by declaration and exempt.
//
// ASCOMA_SIGNAL_SAFE
//   Runs in async-signal context (the PR 7 shutdown handler).  Only
//   lock-free atomics and std::signal are reachable: no mutexes, no I/O,
//   no throw, no allocation.
//
// ASCOMA_DETERMINISM_SENSITIVE
//   Feeds a bit-reproducible artifact (the golden CSV, the event stream,
//   the checkpoint codec).  No iteration over unordered containers and no
//   pointer-keyed ordering may be reachable, except through
//   DETERMINISM_BOUNDARY functions that sort before emitting.

#if defined(__clang__)
#define ASCOMA_ANNOTATE(tag) [[clang::annotate(tag)]]
#else
#define ASCOMA_ANNOTATE(tag)
#endif

#define ASCOMA_HOT_PATH ASCOMA_ANNOTATE("ascoma::hot_path")
#define ASCOMA_SIGNAL_SAFE ASCOMA_ANNOTATE("ascoma::signal_safe")
#define ASCOMA_DETERMINISM_SENSITIVE ASCOMA_ANNOTATE("ascoma::determinism_sensitive")
