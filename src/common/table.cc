#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ascoma {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << s << std::string(widths[c] - s.size(), ' ') << " |";
    }
    os << '\n';
  };

  emit(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace ascoma
