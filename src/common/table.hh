#pragma once

// Minimal fixed-width table printer used by the benchmark harnesses to emit
// paper-style rows (Tables 1-6, Figures 2-3 series) on stdout.

#include <iosfwd>
#include <string>
#include <vector>

namespace ascoma {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; missing cells print empty, extras are dropped.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ascoma
