#pragma once

// Statistics collected by the simulator.  The structures mirror the paper's
// reporting: TimeBreakdown is the left column of Figures 2/3 (relative
// execution time by bucket) and MissBreakdown is the right column (where
// cache misses to shared data were satisfied).

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ascoma {

/// Cycles spent per execution-time bucket (Figures 2/3 left columns).
struct TimeBreakdown {
  std::array<Cycle, kNumTimeBuckets> cycles{};

  Cycle& operator[](TimeBucket b) { return cycles[static_cast<int>(b)]; }
  Cycle operator[](TimeBucket b) const { return cycles[static_cast<int>(b)]; }

  Cycle total() const;
  void add(const TimeBreakdown& other);
  /// Fraction of total time in bucket b (0 if total is 0).
  double frac(TimeBucket b) const;
};

const char* to_string(TimeBucket b);

/// Counts of shared-data cache misses by satisfaction point (Figures 2/3
/// right columns).  kCoherence is folded into CONF/CAPC when printing
/// paper-style tables (the paper does not break it out) but is tracked
/// separately because invalidation misses are not refetches.
struct MissBreakdown {
  std::array<std::uint64_t, kNumMissSources> count{};

  std::uint64_t& operator[](MissSource s) { return count[static_cast<int>(s)]; }
  std::uint64_t operator[](MissSource s) const {
    return count[static_cast<int>(s)];
  }

  std::uint64_t total() const;
  /// Misses satisfied locally (home DRAM, S-COMA page cache, or RAC).
  std::uint64_t local() const;
  /// Misses requiring a remote fetch.
  std::uint64_t remote() const;
  void add(const MissBreakdown& other);
};

const char* to_string(MissSource s);

/// Kernel / VM activity counters (drivers of K-BASE and K-OVERHD).
struct KernelStats {
  std::uint64_t page_faults = 0;       ///< first-touch mapping faults
  std::uint64_t scoma_allocs = 0;      ///< pages initially mapped S-COMA
  std::uint64_t numa_allocs = 0;       ///< pages initially mapped CC-NUMA
  std::uint64_t upgrades = 0;          ///< CC-NUMA -> S-COMA remaps
  std::uint64_t downgrades = 0;        ///< S-COMA -> CC-NUMA evictions
  std::uint64_t relocation_interrupts = 0;
  std::uint64_t lines_flushed = 0;     ///< valid L1 lines flushed by remaps
  std::uint64_t daemon_runs = 0;
  std::uint64_t daemon_pages_scanned = 0;
  std::uint64_t daemon_pages_reclaimed = 0;
  std::uint64_t daemon_reclaim_failures = 0;  ///< runs that missed free_target
  std::uint64_t threshold_raises = 0;  ///< back-off escalations
  std::uint64_t threshold_drops = 0;   ///< back-off relaxations
  std::uint64_t remap_suppressed = 0;  ///< relocation requests ignored
  std::uint64_t refetch_notifications = 0;  ///< threshold crossings signalled
  std::uint64_t net_retries = 0;       ///< request retransmissions after drops
  std::uint64_t nacks = 0;             ///< NACKs received from overloaded homes

  void add(const KernelStats& other);
};

/// Per-node statistics rolled up into a machine-wide RunStats by core::Machine.
struct NodeStats {
  TimeBreakdown time;
  MissBreakdown misses;
  KernelStats kernel;
  std::uint64_t shared_loads = 0;
  std::uint64_t shared_stores = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t upgrades_issued = 0;       ///< ownership-only transactions
  std::uint64_t induced_cold_misses = 0;   ///< cold misses re-created by flushes
  std::uint64_t remote_pages_touched = 0;  ///< distinct remote pages accessed

  void add(const NodeStats& other);
};

/// Whole-run result (sum over nodes plus machine-level facts).
struct RunStats {
  NodeStats totals;
  Cycle parallel_cycles{0};      ///< makespan of the parallel phase
  std::uint32_t nodes = 0;
  std::uint64_t frames_per_node = 0;
  std::uint64_t home_pages_per_node = 0;  ///< max over nodes
  double memory_pressure = 0.0;

  /// Remote-overhead estimate per the paper's cost model of Section 2.1.
  double remote_overhead_cycles() const;
};

}  // namespace ascoma
