#pragma once

// Fundamental identifier and quantity types shared by every AS-COMA module.
//
// The simulated machine exposes a single global *shared* virtual address
// space (SPLASH-2 style).  Addresses decompose as
//
//   virtual page (VPageId)  ->  coherence block (BlockId)  ->  L1 line (LineId)
//
// where block and line numbers are global (page-relative offsets are derived
// via MachineConfig).  Each node additionally has private physical *frames*
// (FrameId) into which virtual pages are mapped either as home pages or as
// S-COMA page-cache replicas.

#include <cstdint>
#include <limits>

namespace ascoma {

/// Simulated clock cycle count (processor and bus share one clock domain).
using Cycle = std::uint64_t;

/// Node (cluster) index within the machine, 0-based.
using NodeId = std::uint32_t;

/// Byte address in the global shared virtual address space.
using Addr = std::uint64_t;

/// Global virtual page number (Addr / page_bytes).
using VPageId = std::uint64_t;

/// Global coherence-block number (Addr / block_bytes).
using BlockId = std::uint64_t;

/// Global L1-line number (Addr / line_bytes).
using LineId = std::uint64_t;

/// Physical frame index local to one node.
using FrameId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr FrameId kInvalidFrame = std::numeric_limits<FrameId>::max();
inline constexpr VPageId kInvalidPage = std::numeric_limits<VPageId>::max();
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// How a virtual page is mapped on a particular node.
enum class PageMode : std::uint8_t {
  kUnmapped,  ///< never touched by this node
  kHome,      ///< this node is the page's home; backed by local DRAM
  kNuma,      ///< mapped in CC-NUMA mode: accesses go to the remote home
  kScoma,     ///< mapped to a local page-cache frame (S-COMA replica)
};

/// Memory operation kind issued by a simulated processor.
enum class OpKind : std::uint8_t {
  kCompute,  ///< burst of user instructions (arg = cycles)
  kPrivate,  ///< burst of private (non-shared) memory ops (arg = count)
  kLoad,     ///< shared-memory load  (arg = byte address)
  kStore,    ///< shared-memory store (arg = byte address)
  kBarrier,  ///< global barrier      (arg = barrier id)
  kLock,     ///< acquire lock        (arg = lock id)
  kUnlock,   ///< release lock        (arg = lock id)
  kEnd,      ///< end of this process's stream
};

/// One element of a workload-generated instruction stream.
struct Op {
  OpKind kind = OpKind::kEnd;
  std::uint64_t arg = 0;
};

/// Where a shared-memory cache miss was ultimately satisfied.  These are the
/// categories of the right-hand charts of the paper's Figures 2 and 3.
enum class MissSource : std::uint8_t {
  kHome,      ///< local DRAM, this node is home
  kScoma,     ///< local DRAM, S-COMA page-cache replica
  kRac,       ///< remote access cache on the local DSM engine
  kCold,      ///< remote fetch, first touch of the block (incl. remap-induced)
  kConfCapc,  ///< remote fetch caused by a conflict/capacity refetch
  kCoherence, ///< remote fetch caused by an invalidation (write sharing)
};
inline constexpr int kNumMissSources = 6;

/// Execution-time buckets of the left-hand charts of Figures 2 and 3.
enum class TimeBucket : std::uint8_t {
  kUserInstr,   ///< U-INSTR: user-level instruction execution
  kUserLocal,   ///< U-LC-MEM: private / non-shared memory time
  kUserShared,  ///< U-SH-MEM: stalled on shared memory
  kKernelBase,  ///< K-BASE: kernel work every architecture performs
  kKernelOvhd,  ///< K-OVERHD: architecture-specific remapping machinery
  kSync,        ///< SYNC: barriers and locks
};
inline constexpr int kNumTimeBuckets = 6;

}  // namespace ascoma
