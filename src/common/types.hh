#pragma once

// Fundamental identifier and quantity types shared by every AS-COMA module.
//
// The simulated machine exposes a single global *shared* virtual address
// space (SPLASH-2 style).  Addresses decompose as
//
//   virtual page (PageId)  ->  coherence block (BlockId)  ->  L1 line (LineAddr)
//
// where block and line numbers are global (page-relative offsets are derived
// via MachineConfig).  Each node additionally has private physical *frames*
// (FrameId) into which virtual pages are mapped either as home pages or as
// S-COMA page-cache replicas.
//
// Every one of these quantities is a *strong* typedef (ARCHITECTURE.md §13):
// explicit construction only, no implicit conversion back to the raw
// representation, and only dimension-correct arithmetic.  `Cycles + Cycles`
// compiles; `Cycles + PageId` does not; an `Addr` becomes a `PageId` only
// through a named conversion (MachineConfig::page_of).  The wrappers compile
// to the same machine code as the raw integers they replace — construction,
// value(), and every operator are constexpr pass-throughs — so the golden
// baselines are bit-identical to the weak-alias era.
//
// Adding a new dimension: define a tag struct carrying `rep`, alias either
// StrongId (identifiers: compare/hash/print/++) or StrongQuantity
// (measures: identifiers' ops plus +, -, scalar *, scalar /, ratio /, %),
// and extend tools/lint_types.py's DIMENSIONS table so bare-integer
// parameters of that dimension are rejected at lint time.

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <type_traits>
#include <vector>

namespace ascoma {

/// Identifier-like strong typedef: ordered, hashable, printable, and
/// incrementable (for dense id loops), but with no arithmetic — ids name
/// things, they do not measure them.
template <class Tag>
class StrongId {
 public:
  using rep = typename Tag::rep;
  static_assert(std::is_unsigned_v<rep>, "dimension reps are unsigned");

  constexpr StrongId() = default;
  explicit constexpr StrongId(rep v) : v_(v) {}

  /// The raw representation.  This is the *only* way out of the type; new
  /// call sites outside the whitelisted boundary files should prefer a named
  /// conversion (see tools/lint_types.py).
  [[nodiscard]] constexpr rep value() const { return v_; }

  static constexpr StrongId invalid() {
    return StrongId(std::numeric_limits<rep>::max());
  }

  friend constexpr auto operator<=>(const StrongId&, const StrongId&) = default;

  constexpr StrongId& operator++() {
    ++v_;
    return *this;
  }

  /// Ids are address-like: offsetting by a dimensionless count yields the
  /// i-th successor (line i of a block, node n+1 round-robin).  Id + Id has
  /// no meaning and stays a compile error.
  template <class I>
    requires std::is_integral_v<I>
  friend constexpr StrongId operator+(StrongId a, I n) {
    return StrongId(a.v_ + static_cast<rep>(n));
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId x) {
    return os << +x.v_;
  }

 private:
  rep v_ = 0;
};

/// Measure-like strong typedef: everything StrongId offers plus the
/// dimension-correct arithmetic of a physical quantity — sums/differences of
/// the same dimension, scaling by dimensionless integers, and
/// dimension-cancelling ratio/modulus.
template <class Tag>
class StrongQuantity {
 public:
  using rep = typename Tag::rep;
  static_assert(std::is_unsigned_v<rep>, "dimension reps are unsigned");

  constexpr StrongQuantity() = default;
  explicit constexpr StrongQuantity(rep v) : v_(v) {}

  [[nodiscard]] constexpr rep value() const { return v_; }

  static constexpr StrongQuantity max() {
    return StrongQuantity(std::numeric_limits<rep>::max());
  }

  friend constexpr auto operator<=>(const StrongQuantity&,
                                    const StrongQuantity&) = default;

  // -- same-dimension sums ----------------------------------------------------
  friend constexpr StrongQuantity operator+(StrongQuantity a,
                                            StrongQuantity b) {
    return StrongQuantity(a.v_ + b.v_);
  }
  friend constexpr StrongQuantity operator-(StrongQuantity a,
                                            StrongQuantity b) {
    return StrongQuantity(a.v_ - b.v_);
  }
  constexpr StrongQuantity& operator+=(StrongQuantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr StrongQuantity& operator-=(StrongQuantity o) {
    v_ -= o.v_;
    return *this;
  }

  // -- scaling by a dimensionless count --------------------------------------
  template <class I>
    requires std::is_integral_v<I>
  friend constexpr StrongQuantity operator*(StrongQuantity a, I n) {
    return StrongQuantity(a.v_ * static_cast<rep>(n));
  }
  template <class I>
    requires std::is_integral_v<I>
  friend constexpr StrongQuantity operator*(I n, StrongQuantity a) {
    return StrongQuantity(static_cast<rep>(n) * a.v_);
  }
  template <class I>
    requires std::is_integral_v<I>
  friend constexpr StrongQuantity operator/(StrongQuantity a, I n) {
    return StrongQuantity(a.v_ / static_cast<rep>(n));
  }

  // -- dimension-cancelling ---------------------------------------------------
  friend constexpr rep operator/(StrongQuantity a, StrongQuantity b) {
    return a.v_ / b.v_;
  }
  friend constexpr StrongQuantity operator%(StrongQuantity a,
                                            StrongQuantity b) {
    return StrongQuantity(a.v_ % b.v_);
  }

  friend std::ostream& operator<<(std::ostream& os, StrongQuantity x) {
    return os << +x.v_;
  }

 private:
  rep v_ = 0;
};

namespace dim {
struct CyclesTag {
  using rep = std::uint64_t;
};
struct ByteCountTag {
  using rep = std::uint64_t;
};
struct NodeTag {
  using rep = std::uint32_t;
};
struct AddrTag {
  using rep = std::uint64_t;
};
struct PageTag {
  using rep = std::uint64_t;
};
struct BlockTag {
  using rep = std::uint64_t;
};
struct LineTag {
  using rep = std::uint64_t;
};
struct FrameTag {
  using rep = std::uint32_t;
};
}  // namespace dim

/// Simulated clock cycle count (processor and bus share one clock domain).
using Cycles = StrongQuantity<dim::CyclesTag>;
using Cycle = Cycles;  // historical spelling, same strong type

/// A size or span measured in bytes (page/block/line granularities).
using ByteCount = StrongQuantity<dim::ByteCountTag>;

/// Node (cluster) index within the machine, 0-based.
using NodeId = StrongId<dim::NodeTag>;

/// Byte address in the global shared virtual address space.
using Addr = StrongId<dim::AddrTag>;

/// Global virtual page number (Addr / page_bytes).
using PageId = StrongId<dim::PageTag>;
using VPageId = PageId;  // historical spelling, same strong type

/// Global coherence-block number (Addr / block_bytes).
using BlockId = StrongId<dim::BlockTag>;

/// Global L1-line number (Addr / line_bytes).
using LineAddr = StrongId<dim::LineTag>;
using LineId = LineAddr;  // historical spelling, same strong type

/// Physical frame index local to one node.
using FrameId = StrongId<dim::FrameTag>;

// Address arithmetic: an address offset by a byte span is an address, and
// the difference of two addresses is a byte span.  This is the entire
// cross-dimension algebra — everything else goes through the named
// conversions on MachineConfig (page_of/block_of/line_of/page_base).
constexpr Addr operator+(Addr a, ByteCount b) {
  return Addr(a.value() + b.value());
}
constexpr ByteCount operator-(Addr a, Addr b) {
  return ByteCount(a.value() - b.value());
}

/// A std::vector whose primary index is a strong id: a per-node table is an
/// IdVector<NodeId, T>, a per-block bitmap an IdVector<BlockId, uint8_t>.
/// The element axis is part of the type, so indexing a per-node table with a
/// FrameId is a compile error.  Raw size_t indexing stays available for
/// dimension-free loops (the base-class operator[] is re-exported).
template <class Id, class T>
class IdVector : public std::vector<T> {
 public:
  using std::vector<T>::vector;
  using std::vector<T>::operator[];

  constexpr T& operator[](Id i) {
    return std::vector<T>::operator[](static_cast<std::size_t>(i.value()));
  }
  constexpr const T& operator[](Id i) const {
    return std::vector<T>::operator[](static_cast<std::size_t>(i.value()));
  }
};

inline constexpr NodeId kInvalidNode = NodeId::invalid();
inline constexpr FrameId kInvalidFrame = FrameId::invalid();
inline constexpr VPageId kInvalidPage = PageId::invalid();
inline constexpr Cycle kNeverCycle = Cycles::max();

/// How a virtual page is mapped on a particular node.
enum class PageMode : std::uint8_t {
  kUnmapped,  ///< never touched by this node
  kHome,      ///< this node is the page's home; backed by local DRAM
  kNuma,      ///< mapped in CC-NUMA mode: accesses go to the remote home
  kScoma,     ///< mapped to a local page-cache frame (S-COMA replica)
};

/// Memory operation kind issued by a simulated processor.
enum class OpKind : std::uint8_t {
  kCompute,  ///< burst of user instructions (arg = cycles)
  kPrivate,  ///< burst of private (non-shared) memory ops (arg = count)
  kLoad,     ///< shared-memory load  (arg = byte address)
  kStore,    ///< shared-memory store (arg = byte address)
  kBarrier,  ///< global barrier      (arg = barrier id)
  kLock,     ///< acquire lock        (arg = lock id)
  kUnlock,   ///< release lock        (arg = lock id)
  kEnd,      ///< end of this process's stream
};

/// One element of a workload-generated instruction stream.  `arg` is a
/// deliberate dimensional boundary: its meaning depends on `kind` (cycles,
/// count, byte address, or id), so it stays a raw integer and is wrapped at
/// the point of interpretation (core::Machine::execute_op).
struct Op {
  OpKind kind = OpKind::kEnd;
  std::uint64_t arg = 0;
};

/// Where a shared-memory cache miss was ultimately satisfied.  These are the
/// categories of the right-hand charts of the paper's Figures 2 and 3.
enum class MissSource : std::uint8_t {
  kHome,      ///< local DRAM, this node is home
  kScoma,     ///< local DRAM, S-COMA page-cache replica
  kRac,       ///< remote access cache on the local DSM engine
  kCold,      ///< remote fetch, first touch of the block (incl. remap-induced)
  kConfCapc,  ///< remote fetch caused by a conflict/capacity refetch
  kCoherence, ///< remote fetch caused by an invalidation (write sharing)
};
inline constexpr int kNumMissSources = 6;

/// Execution-time buckets of the left-hand charts of Figures 2 and 3.
enum class TimeBucket : std::uint8_t {
  kUserInstr,   ///< U-INSTR: user-level instruction execution
  kUserLocal,   ///< U-LC-MEM: private / non-shared memory time
  kUserShared,  ///< U-SH-MEM: stalled on shared memory
  kKernelBase,  ///< K-BASE: kernel work every architecture performs
  kKernelOvhd,  ///< K-OVERHD: architecture-specific remapping machinery
  kSync,        ///< SYNC: barriers and locks
};
inline constexpr int kNumTimeBuckets = 6;

}  // namespace ascoma

// Strong ids and quantities hash as their representation so they drop into
// unordered containers wherever the weak aliases were used as keys.
template <class Tag>
struct std::hash<ascoma::StrongId<Tag>> {
  std::size_t operator()(ascoma::StrongId<Tag> x) const noexcept {
    return std::hash<typename Tag::rep>{}(x.value());
  }
};
template <class Tag>
struct std::hash<ascoma::StrongQuantity<Tag>> {
  std::size_t operator()(ascoma::StrongQuantity<Tag> x) const noexcept {
    return std::hash<typename Tag::rep>{}(x.value());
  }
};
