#include "common/config.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/rng.hh"

namespace ascoma {

const char* to_string(ArchModel m) {
  switch (m) {
    case ArchModel::kCcNuma: return "CCNUMA";
    case ArchModel::kScoma: return "SCOMA";
    case ArchModel::kRNuma: return "RNUMA";
    case ArchModel::kVcNuma: return "VCNUMA";
    case ArchModel::kAsComa: return "ASCOMA";
  }
  return "?";
}

bool parse_arch_model(const std::string& name, ArchModel* out) {
  std::string s;
  s.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == '_') continue;
    s.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (s == "ccnuma" || s == "numa") *out = ArchModel::kCcNuma;
  else if (s == "scoma" || s == "coma") *out = ArchModel::kScoma;
  else if (s == "rnuma") *out = ArchModel::kRNuma;
  else if (s == "vcnuma") *out = ArchModel::kVcNuma;
  else if (s == "ascoma") *out = ArchModel::kAsComa;
  else return false;
  return true;
}

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

std::uint32_t MachineConfig::net_stages() const {
  std::uint32_t stages = 1;
  std::uint64_t reach = switch_arity;
  while (reach < nodes) {
    reach *= switch_arity;
    ++stages;
  }
  return stages;
}

Cycle MachineConfig::net_one_way_latency() const {
  const std::uint32_t s = net_stages();
  return net_interface_cycles + s * net_fall_through +
         (s + 1) * net_propagation + net_port_occupancy +
         net_interface_cycles;
}

std::uint64_t MachineConfig::component_seed(std::uint64_t tag) const {
  return tag == kSeedStreamWorkload ? seed : mix64(seed, tag);
}

std::uint64_t MachineConfig::effective_fault_seed() const {
  return fault_seed != 0 ? fault_seed : component_seed(kSeedStreamFault);
}

std::string MachineConfig::validate() const {
  std::ostringstream err;
  if (nodes == 0) err << "nodes must be > 0; ";
  if (procs_per_node == 0 || procs_per_node > 16)
    err << "procs_per_node must be in [1, 16]; ";
  if (!is_pow2(page_bytes.value())) err << "page_bytes must be a power of two; ";
  if (!is_pow2(block_bytes.value())) err << "block_bytes must be a power of two; ";
  if (!is_pow2(line_bytes.value())) err << "line_bytes must be a power of two; ";
  if ((block_bytes % line_bytes) != ByteCount{0}) err << "block_bytes % line_bytes != 0; ";
  if ((page_bytes % block_bytes) != ByteCount{0}) err << "page_bytes % block_bytes != 0; ";
  if ((l1_bytes % line_bytes) != ByteCount{0}) err << "l1_bytes % line_bytes != 0; ";
  if (!is_pow2(l1_lines())) err << "L1 line count must be a power of two; ";
  if ((rac_bytes % block_bytes) != ByteCount{0}) err << "rac_bytes % block_bytes != 0; ";
  if (dram_banks == 0) err << "dram_banks must be > 0; ";
  if (switch_arity < 2) err << "switch_arity must be >= 2; ";
  if (memory_pressure <= 0.0 || memory_pressure > 1.0)
    err << "memory_pressure must be in (0, 1]; ";
  if (free_min_frac < 0.0 || free_min_frac >= 1.0)
    err << "free_min_frac must be in [0, 1); ";
  if (free_target_frac < free_min_frac)
    err << "free_target_frac must be >= free_min_frac; ";
  if (free_target_frac >= 1.0) err << "free_target_frac must be < 1; ";
  if (refetch_threshold == 0) err << "refetch_threshold must be > 0; ";
  if (threshold_max < refetch_threshold)
    err << "threshold_max must be >= refetch_threshold; ";
  if (daemon_backoff_factor < 1.0)
    err << "daemon_backoff_factor must be >= 1; ";
  if (vcnuma_break_even == 0) err << "vcnuma_break_even must be > 0; ";
  if (vcnuma_eval_replacements <= 0.0)
    err << "vcnuma_eval_replacements must be > 0; ";
  if (!blocking_stores && store_buffer_entries == 0)
    err << "store buffer needs at least one entry; ";
  auto prob_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!prob_ok(fault_drop)) err << "fault_drop must be in [0, 1]; ";
  if (!prob_ok(fault_dup)) err << "fault_dup must be in [0, 1]; ";
  if (!prob_ok(fault_jitter)) err << "fault_jitter must be in [0, 1]; ";
  if (fault_jitter > 0.0 && fault_jitter_cycles == Cycles{0})
    err << "fault_jitter_cycles must be > 0 when jitter is enabled; ";
  if (retry_timeout == Cycles{0}) err << "retry_timeout must be > 0; ";
  if (retry_backoff_base == Cycles{0}) err << "retry_backoff_base must be > 0; ";
  if (retry_backoff_max < retry_backoff_base)
    err << "retry_backoff_max must be >= retry_backoff_base; ";
  if (retry_max_attempts == 0) err << "retry_max_attempts must be > 0; ";
  return err.str();
}

}  // namespace ascoma
