#pragma once

// MachineConfig gathers every architectural and policy parameter of the
// simulated machine in one place.  Defaults reproduce the paper's setup
// (Section 4.1, Tables 3 and 4); where the OCR of the paper lost a digit the
// recovered/chosen value is documented in DESIGN.md section 6.

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ascoma::obs {
class EventSink;  // observability collection point (src/obs/sink.hh)
class Registry;   // live-metrics registry (src/obs/metrics.hh)
}
namespace ascoma::prof {
class Profiler;  // latency-attribution profiler (src/prof/profiler.hh)
}

namespace ascoma {

/// Which of the five studied memory architectures a machine instance runs.
enum class ArchModel : std::uint8_t {
  kCcNuma,   ///< plain CC-NUMA (+ small RAC), never remaps
  kScoma,    ///< pure S-COMA: every remote page must occupy a local frame
  kRNuma,    ///< reactive NUMA: CC-NUMA-first + refetch-threshold upgrades
  kVcNuma,   ///< VC-NUMA relocation strategy + hardware thrash detection
  kAsComa,   ///< this paper: S-COMA-first + adaptive replacement back-off
};

const char* to_string(ArchModel m);

/// Parse "ccnuma" / "scoma" / "rnuma" / "vcnuma" / "ascoma" (case-insensitive).
/// Returns true on success.
bool parse_arch_model(const std::string& name, ArchModel* out);

struct MachineConfig {
  // ---- machine shape ------------------------------------------------------
  std::uint32_t nodes = 8;              ///< paper: 8 nodes (lu: 4)
  /// Processors per node (SMP-node extension; Figure 1 shows "one or more
  /// commodity microprocessors" per node).  Each processor has a private L1;
  /// the bus, RAC, DRAM, and DSM engine are shared per node, and the
  /// coherent bus snoop supplies/invalidates sibling caches.  Derived from
  /// the workload's process count by core::Machine.
  std::uint32_t procs_per_node = 1;

  std::uint32_t total_procs() const { return nodes * procs_per_node; }
  Cycles sibling_transfer_cycles{20};   ///< cache-to-cache supply over the bus

  // ---- granularities ------------------------------------------------------
  ByteCount page_bytes{4096};      ///< 4 KB pages
  ByteCount block_bytes{128};      ///< coherence/transfer unit (4 lines)
  ByteCount line_bytes{32};        ///< L1 line

  // ---- L1 cache (Table 3) -------------------------------------------------
  ByteCount l1_bytes{16 * 1024};   ///< direct-mapped, write-back
  Cycles l1_hit_cycles{1};

  // ---- RAC (Table 3): 128 B total for CC-NUMA & hybrids ------------------
  ByteCount rac_bytes{128};        ///< direct-mapped, 128 B lines;
                                        ///< 0 disables the RAC (ablation)
  Cycles rac_array_cycles{21};          ///< RAC data-array access time
                                        ///< (total RAC hit = bus+engine+array
                                        ///<  = 10+5+21 = 36, Table 4)

  // ---- buses / memory (Table 4 shape: local 50, remote 150) --------------
  Cycles bus_occupancy{10};             ///< split-transaction request+data
  std::uint32_t dram_banks = 4;
  Cycles dram_access_cycles{30};        ///< per-bank service time
  Cycles dsm_engine_cycles{5};          ///< controller occupancy per request
  Cycles dir_lookup_cycles{11};         ///< home directory state access
                                        ///< (min remote = 55+2*net+11 = 150)

  // ---- network (Table 3) --------------------------------------------------
  std::uint32_t switch_arity = 4;       ///< 4x4 switches
  Cycles net_fall_through{4};           ///< per-hop fall-through delay
  Cycles net_propagation{2};            ///< wire propagation per hop
  Cycles net_interface_cycles{10};      ///< NI packetize/depacketize
  Cycles net_port_occupancy{8};         ///< input-port busy time per message
                                        ///< ("port contention (only) modeled")

  // ---- kernel costs (Section 5.1: "highly optimized") ---------------------
  Cycles cost_page_fault{500};          ///< map a page (K-BASE on first touch)
  Cycles cost_interrupt{500};           ///< relocation interrupt delivery
  Cycles cost_remap{2000};              ///< unmap+flush bookkeeping+remap+TLB
  Cycles cost_flush_line{10};           ///< per valid line flushed from L1
  Cycles cost_daemon_wakeup{1000};      ///< pageout daemon context switch+setup
  Cycles cost_daemon_scan_page{20};     ///< second-chance examination per page

  // ---- processor-side costs -------------------------------------------------
  Cycles private_op_cycles{3};          ///< average private-memory op cost
  Cycles lock_op_cycles{50};            ///< lock acquire/release service time
  Cycles barrier_cycles{100};           ///< barrier release broadcast cost

  // ---- consistency model (extension) ----------------------------------------
  // The paper models sequentially-consistent blocking processors.  Setting
  // blocking_stores = false adds a store buffer (processor-consistency
  // style): store misses retire into the buffer and the processor continues;
  // it stalls only when the buffer is full.  Loads still block, and the
  // memory system's state transitions are unchanged — only the processor's
  // observed stall time differs.  This models the "latency-tolerating
  // features" direction the paper's introduction contrasts against.
  bool blocking_stores = true;
  std::uint32_t store_buffer_entries = 8;

  // ---- VM policy (Section 4.1) --------------------------------------------
  double free_min_frac = 0.01;          ///< pageout daemon low-water mark
  double free_target_frac = 0.07;       ///< pageout daemon refill target
  /// Minimum cycles between pageout-daemon invocations.  The daemon is
  /// demand-driven (free pool below free_min) but rate-limited to this
  /// period so its second-chance window is comparable to page reuse
  /// distances (a real BSD daemon runs a few times per second; at 120 MHz
  /// that is millions of cycles).
  Cycles daemon_period{2'000'000};

  // ---- hybrid relocation policy (Section 4.1) -----------------------------
  std::uint32_t refetch_threshold = 64;   ///< initial relocation threshold
  std::uint32_t threshold_increment = 32; ///< added when thrashing detected
  std::uint32_t threshold_max = 4096;     ///< beyond this remapping is disabled
  std::uint32_t vcnuma_break_even = 32;   ///< VC-NUMA break-even refetch count
  double vcnuma_eval_replacements = 2.0;  ///< evaluate after this many
                                          ///< replacements per cached page
  double daemon_backoff_factor = 2.0;     ///< AS-COMA daemon period stretch
  Cycles daemon_period_max{32'000'000};
  // Ablation switches for AS-COMA's two contributions (both on = the paper's
  // design; turning one off isolates the other's benefit).
  bool ascoma_scoma_first = true;         ///< S-COMA-preferred allocation
  bool ascoma_backoff = true;             ///< adaptive replacement back-off

  // ---- memory pressure -----------------------------------------------------
  // Fraction of each node's frames holding home pages; the page-cache size is
  // derived from it:  frames_per_node = ceil(home_pages / memory_pressure).
  double memory_pressure = 0.50;

  // ---- architecture under test --------------------------------------------
  ArchModel arch = ArchModel::kAsComa;

  // ---- observability (src/obs) ---------------------------------------------
  // Non-owning: when set, the machine emits typed, cycle-stamped events
  // (faults, remaps, daemon runs, back-off moves, directory traffic,
  // barriers) into the sink and samples per-node gauges every
  // `sample_every` cycles (0 disables sampling).  Attaching a sink never
  // changes simulated behaviour, only records it.  Sinks are not
  // thread-safe: do not share one across concurrent simulate() calls.
  obs::EventSink* sink = nullptr;
  Cycles sample_every{0};
  /// Non-owning: when set, the machine publishes per-node live gauges (free
  /// frames, back-off threshold, page-cache occupancy, remote misses) into
  /// the registry at every sample boundary — the mid-run feed behind obsd's
  /// `GET /metrics`.  Gauges are last-writer-wins: concurrent sweep jobs
  /// sharing one registry overwrite each other's node rows, which is the
  /// intended "live tap" semantic (per-job archives live on the status
  /// board).  Unlike `sink`, a Registry is thread-safe.  Attaching one never
  /// changes simulated behaviour.
  obs::Registry* registry = nullptr;

  // ---- profiling (src/prof) -------------------------------------------------
  // Non-owning: when set, every blocking demand access is bracketed and its
  // latency attributed to per-component histograms, and (via the sink's
  // EventObserver slot, wired by core::Machine) the event stream is folded
  // into per-page heat counters.  Like `sink`, attaching a profiler never
  // changes simulated behaviour; with it null the timing helpers skip one
  // predictable branch.  Not thread-safe across concurrent simulate() calls.
  prof::Profiler* profiler = nullptr;

  // ---- robustness / fault injection (src/fault) ----------------------------
  // All fault knobs default *off*; the zero-fault configuration is
  // bit-identical to a build without the fault layer.  Probabilities apply
  // per network message; decisions are drawn from a dedicated RNG stream
  // derived from the top-level `seed` (or `fault_seed` when nonzero), so a
  // faulted run replays exactly.
  double fault_drop = 0.0;        ///< P(message lost in the fabric)
  double fault_dup = 0.0;         ///< P(message delivered twice)
  double fault_jitter = 0.0;      ///< P(message delayed by random jitter)
  Cycles fault_jitter_cycles{64}; ///< max injected jitter per message
  std::uint64_t fault_seed = 0;   ///< 0 = derive from `seed` (component_seed)

  // Loss recovery: a sender that hears nothing for `retry_timeout` cycles
  // retransmits.  Protocol-level retries (request paths) additionally back
  // off exponentially from `retry_backoff_base`, doubling per attempt and
  // capping at `retry_backoff_max`; `retry_max_attempts` is a hard backstop
  // that fails the run rather than spinning forever.
  Cycles retry_timeout{128};
  Cycles retry_backoff_base{32};
  Cycles retry_backoff_max{4096};
  std::uint32_t retry_max_attempts = 4096;

  /// A home whose DSM engine is backlogged more than this many cycles past a
  /// request's arrival NACKs the request instead of queueing it; the
  /// requester retries with capped exponential backoff.  0 disables
  /// overload NACKs (the paper's infinite-queue model).
  Cycles nack_busy_cycles{0};

  /// Forward-progress watchdog: a single memory transaction outstanding for
  /// more than this many cycles (retry/NACK livelock, fault storm) fails the
  /// run with a fault::WatchdogError carrying a dump of in-flight protocol
  /// state.  0 disables the watchdog.
  Cycles watchdog_cycles{0};

  // ---- misc ----------------------------------------------------------------
  /// Top-level RNG seed.  Every stochastic component derives its own stream
  /// from this one number: workload op streams consume it directly (each
  /// generator splits per-process streams via rng.hh's mix64), and fault
  /// injection uses component_seed(kSeedStreamFault).  One seed reproduces
  /// the whole run.
  std::uint64_t seed = 0xA5C0'0A15ull;
  bool check_invariants = true;         ///< enable protocol invariant checks

  // Stream tags for component_seed().  kSeedStreamWorkload is documentary:
  // workload streams consume `seed` unmixed (the original scheme, kept so
  // recorded baselines stay valid); new stochastic components must claim a
  // tag here and derive through component_seed().
  static constexpr std::uint64_t kSeedStreamWorkload = 0;
  static constexpr std::uint64_t kSeedStreamFault = 0x464C54;  // "FLT"

  /// Seed for the component stream `tag`, derived from the top-level seed.
  std::uint64_t component_seed(std::uint64_t tag) const;

  /// The seed the fault layer actually uses (`fault_seed`, or the derived
  /// fault stream of the top-level seed when unset).
  std::uint64_t effective_fault_seed() const;

  /// True when any fault-injection probability is nonzero (targeted rules
  /// added directly to a fault::FaultPlan count separately).
  bool faults_configured() const {
    return fault_drop > 0.0 || fault_dup > 0.0 || fault_jitter > 0.0;
  }

  // ---- derived quantities ---------------------------------------------------
  std::uint32_t lines_per_block() const {
    return static_cast<std::uint32_t>(block_bytes / line_bytes);
  }
  std::uint32_t blocks_per_page() const {
    return static_cast<std::uint32_t>(page_bytes / block_bytes);
  }
  std::uint32_t lines_per_page() const {
    return static_cast<std::uint32_t>(page_bytes / line_bytes);
  }
  std::uint32_t l1_lines() const {
    return static_cast<std::uint32_t>(l1_bytes / line_bytes);
  }
  std::uint32_t rac_entries() const {
    return static_cast<std::uint32_t>(rac_bytes / block_bytes);
  }

  // ---- named dimension conversions ------------------------------------------
  // The *only* sanctioned paths between the address-like dimensions; new
  // conversions belong here, next to the granularities that define them.
  PageId page_of(Addr a) const { return PageId{a.value() / page_bytes.value()}; }
  BlockId block_of(Addr a) const {
    return BlockId{a.value() / block_bytes.value()};
  }
  LineAddr line_of(Addr a) const {
    return LineAddr{a.value() / line_bytes.value()};
  }
  PageId page_of_block(BlockId b) const {
    return PageId{b.value() / blocks_per_page()};
  }
  PageId page_of_line(LineAddr l) const {
    return PageId{l.value() / lines_per_page()};
  }
  BlockId block_of_line(LineAddr l) const {
    return BlockId{l.value() / lines_per_block()};
  }
  BlockId first_block_of_page(PageId p) const {
    return BlockId{p.value() * blocks_per_page()};
  }
  LineAddr first_line_of_block(BlockId b) const {
    return LineAddr{b.value() * lines_per_block()};
  }
  Addr page_base(PageId p) const { return Addr{p.value() * page_bytes.value()}; }
  Addr block_base(BlockId b) const {
    return Addr{b.value() * block_bytes.value()};
  }
  Addr line_base(LineAddr l) const {
    return Addr{l.value() * line_bytes.value()};
  }

  // ---- derived minimum latencies (Table 4) ---------------------------------
  /// Switch stages a message traverses (ceil(log_arity(nodes))).
  std::uint32_t net_stages() const;
  /// Uncontended one-way network latency between distinct nodes.
  Cycle net_one_way_latency() const;
  /// Minimum L1-miss latency satisfied by local DRAM (home or S-COMA page).
  Cycle min_local_latency() const {
    return bus_occupancy + 2 * dsm_engine_cycles + dram_access_cycles;
  }
  /// Minimum L1-miss latency satisfied by the RAC.
  Cycle min_rac_latency() const {
    return bus_occupancy + dsm_engine_cycles + rac_array_cycles;
  }
  /// Minimum L1-miss latency satisfied by a clean remote home (2-hop).
  Cycle min_remote_latency() const {
    return bus_occupancy + 3 * dsm_engine_cycles + dir_lookup_cycles +
           dram_access_cycles + 2 * net_one_way_latency();
  }

  /// Validates internal consistency (power-of-two granularities, divisibility,
  /// sane fractions).  Returns an empty string if OK, else a diagnostic.
  std::string validate() const;
};

}  // namespace ascoma
