#pragma once

// Deterministic, stream-splittable pseudo-random number generation.
//
// Workload generators must produce identical reference streams for every
// architecture under test (the paper's methodology: same program, different
// memory system), so all randomness flows through SplitMix64/Xoshiro256**
// seeded from the MachineConfig.  Splitting by (seed, stream-id) gives each
// simulated process an independent, reproducible stream.

#include <cstdint>

namespace ascoma {

/// SplitMix64 step; used for seeding and cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two values (for per-(seed,stream) derivation).
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b * 0x9E3779B97F4A7C15ull);
  return splitmix64(s);
}

/// Xoshiro256** — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0, std::uint64_t stream = 0) {
    std::uint64_t sm = mix64(seed, stream);
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (bound > 0).
  std::uint64_t below(std::uint64_t bound) {
    // 128-bit multiply keeps the bias negligible for simulation purposes.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Generator state, exposed for checkpoint/restore (store layer): a
  /// restored Rng continues the exact sequence the saved one would have.
  struct State {
    std::uint64_t s[4];
  };
  State state() const { return State{{s_[0], s_[1], s_[2], s_[3]}}; }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ascoma
