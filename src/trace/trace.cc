#include "trace/trace.hh"

#include <cstring>
#include <fstream>

#include "common/check.hh"

namespace ascoma::trace {

namespace {

constexpr char kMagic[4] = {'A', 'S', 'C', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ofstream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T get(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  ASCOMA_CHECK_MSG(is.good(), "truncated trace file");
  return v;
}

}  // namespace

std::uint64_t record(const workload::Workload& wl, std::uint64_t seed,
                     const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASCOMA_CHECK_MSG(os.is_open(), "cannot open trace file for writing");
  os.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(os, kVersion);
  put<std::uint32_t>(os, wl.nodes());
  put<std::uint64_t>(os, wl.total_pages());
  put<std::uint32_t>(os, static_cast<std::uint32_t>(wl.page_bytes().value()));
  put<std::uint32_t>(os, static_cast<std::uint32_t>(wl.line_bytes().value()));

  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < wl.nodes(); ++p) {
    auto stream = wl.stream(p, seed);
    std::vector<Op> ops;
    for (Op op = stream->next(); op.kind != OpKind::kEnd; op = stream->next())
      ops.push_back(op);
    put<std::uint32_t>(os, p);
    put<std::uint64_t>(os, ops.size());
    for (const Op& op : ops) {
      put<std::uint8_t>(os, static_cast<std::uint8_t>(op.kind));
      put<std::uint64_t>(os, op.arg);
    }
    total += ops.size();
  }
  ASCOMA_CHECK_MSG(os.good(), "trace write failed");
  return total;
}

TraceWorkload::TraceWorkload(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ASCOMA_CHECK_MSG(is.is_open(), "cannot open trace file");
  char magic[4];
  is.read(magic, sizeof(magic));
  ASCOMA_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, 4) == 0,
                   "bad trace magic");
  const auto version = get<std::uint32_t>(is);
  ASCOMA_CHECK_MSG(version == kVersion, "unsupported trace version");
  nodes_ = get<std::uint32_t>(is);
  total_pages_ = get<std::uint64_t>(is);
  page_bytes_ = ByteCount{get<std::uint32_t>(is)};
  line_bytes_ = ByteCount{get<std::uint32_t>(is)};
  ASCOMA_CHECK_MSG(nodes_ > 0 && nodes_ <= 64, "bad node count in trace");
  ASCOMA_CHECK_MSG(total_pages_ > 0, "empty address space in trace");

  name_ = "trace:" + path;
  streams_.resize(nodes_);
  for (std::uint32_t i = 0; i < nodes_; ++i) {
    const auto proc = get<std::uint32_t>(is);
    ASCOMA_CHECK_MSG(proc < nodes_, "bad proc id in trace");
    const auto count = get<std::uint64_t>(is);
    auto& ops = streams_[proc];
    ops.reserve(count + 1);
    for (std::uint64_t k = 0; k < count; ++k) {
      Op op;
      op.kind = static_cast<OpKind>(get<std::uint8_t>(is));
      op.arg = get<std::uint64_t>(is);
      ASCOMA_CHECK_MSG(op.kind < OpKind::kEnd, "bad op kind in trace");
      if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore) {
        ASCOMA_CHECK_MSG(op.arg / page_bytes_.value() < total_pages_,
                         "trace address outside the shared space");
      }
      ops.push_back(op);
    }
    ops.push_back({OpKind::kEnd, 0});
  }
}

std::unique_ptr<workload::OpStream> TraceWorkload::stream(
    std::uint32_t proc, std::uint64_t /*seed*/) const {
  ASCOMA_CHECK(proc < streams_.size());
  return std::make_unique<workload::VectorStream>(streams_[proc]);
}

std::uint64_t TraceWorkload::total_ops() const {
  std::uint64_t n = 0;
  for (const auto& s : streams_) n += s.size() - 1;  // exclude kEnd
  return n;
}

}  // namespace ascoma::trace
