#pragma once

// Binary trace record/replay.  A trace file captures a workload's per-process
// operation streams so external traces (or expensive generated ones) can
// drive the machine reproducibly.
//
// Format (little-endian):
//   header:  magic "ASCT" | u32 version | u32 nodes | u64 total_pages
//            | u32 page_bytes | u32 line_bytes
//   then per process: u32 proc | u64 op_count | op_count * (u8 kind, u64 arg)

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace ascoma::trace {

/// Serialize every process stream of `wl` (seeded with `seed`) to `path`.
/// Returns the total number of ops written.  Throws on I/O failure.
std::uint64_t record(const workload::Workload& wl, std::uint64_t seed,
                     const std::string& path);

/// A workload backed by a trace file previously produced by record().
class TraceWorkload final : public workload::Workload {
 public:
  /// Loads and validates the trace; throws CheckFailure on malformed input.
  explicit TraceWorkload(const std::string& path);

  std::string name() const override { return name_; }
  std::uint32_t nodes() const override { return nodes_; }
  std::uint64_t total_pages() const override { return total_pages_; }
  ByteCount page_bytes() const override { return page_bytes_; }
  ByteCount line_bytes() const override { return line_bytes_; }

  std::unique_ptr<workload::OpStream> stream(
      std::uint32_t proc, std::uint64_t seed) const override;

  std::uint64_t total_ops() const;

 private:
  std::string name_;
  std::uint32_t nodes_ = 0;
  std::uint64_t total_pages_ = 0;
  ByteCount page_bytes_{4096};
  ByteCount line_bytes_{32};
  std::vector<std::vector<Op>> streams_;
};

}  // namespace ascoma::trace
