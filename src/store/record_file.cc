#include "store/record_file.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace ascoma::store {

namespace {

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " failed for " + path + ": " +
                           std::strerror(errno));
}

/// Directory part of `path` ("." when there is none) — for directory fsync.
std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash + 1);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse directory fds
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void write_record(const std::string& path,
                  const std::vector<std::uint8_t>& payload,
                  std::uint64_t nonce) {
  Encoder header;
  header.u64(kRecordMagic);
  header.u32(kRecordVersion);
  header.u64(payload.size());
  header.u64(fnv1a64(payload.data(), payload.size()));

  const std::string tmp = path + ".tmp" + std::to_string(nonce);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) io_fail("open", tmp);

  auto write_all = [&](const std::uint8_t* data, std::size_t size) {
    std::size_t off = 0;
    while (off < size) {
      const ::ssize_t n = ::write(fd, data + off, size - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        ::unlink(tmp.c_str());
        io_fail("write", tmp);
      }
      off += static_cast<std::size_t>(n);
    }
  };
  write_all(header.bytes().data(), header.bytes().size());
  write_all(payload.data(), payload.size());

  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    io_fail("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    io_fail("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    io_fail("rename", path);
  }
  // Make the rename itself durable (the record was already fsync'd).
  fsync_dir(dir_of(path));
}

std::vector<std::uint8_t> read_record(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) io_fail("open", path);

  std::vector<std::uint8_t> raw;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const ::ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_fail("read", path);
    }
    if (n == 0) break;
    raw.insert(raw.end(), chunk, chunk + n);
  }
  ::close(fd);

  Decoder d(raw);
  if (raw.size() < 28) throw CodecError("record shorter than its header");
  if (d.u64() != kRecordMagic) throw CodecError("bad record magic");
  if (d.u32() != kRecordVersion) throw CodecError("unknown record version");
  const std::uint64_t len = d.u64();
  const std::uint64_t sum = d.u64();
  if (len != d.remaining())
    throw CodecError("record length mismatch (torn write)");
  std::vector<std::uint8_t> payload(raw.begin() + 28, raw.end());
  if (fnv1a64(payload.data(), payload.size()) != sum)
    throw CodecError("record checksum mismatch");
  return payload;
}

std::optional<std::vector<std::uint8_t>> try_read_record(
    const std::string& path, bool* corrupt) {
  if (corrupt != nullptr) *corrupt = false;
  if (::access(path.c_str(), R_OK) != 0) return std::nullopt;
  try {
    return read_record(path);
  } catch (const CodecError&) {
    if (corrupt != nullptr) *corrupt = true;
    return std::nullopt;
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

}  // namespace ascoma::store
