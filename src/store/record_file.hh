#pragma once

// Crash-safe record files: the single on-disk framing used by every
// durability artifact (store/<hash>.result caches, *.ckpt machine
// checkpoints).  A record is
//
//   magic u64 | format version u32 | payload length u64 | FNV-1a checksum u64
//   | payload bytes
//
// written atomically: the bytes land in a temp file in the same directory,
// are fsync'd, and only then renamed over the final path — so a reader can
// never observe a half-written record under POSIX rename semantics, and a
// torn write (power loss mid-fsync) leaves a file whose length or checksum
// disagrees with its header.  read_record() verifies all three and throws
// CodecError on any disagreement: corrupt records are detected and
// quarantined by the caller, never trusted.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "store/codec.hh"

namespace ascoma::store {

inline constexpr std::uint64_t kRecordMagic = 0x41'53'43'4F'4D'41'52'31ull;
inline constexpr std::uint32_t kRecordVersion = 1;

/// Atomically write `payload` (with header) to `path` via a temp file +
/// fsync + rename.  `nonce` disambiguates concurrent writers' temp names
/// (sweep workers use their job index).  Throws std::runtime_error on I/O
/// failure.
void write_record(const std::string& path,
                  const std::vector<std::uint8_t>& payload,
                  std::uint64_t nonce = 0);

/// Read and verify a record.  Throws CodecError when the file is truncated,
/// has a bad magic/version, or fails the checksum; throws std::runtime_error
/// when the file cannot be opened.
std::vector<std::uint8_t> read_record(const std::string& path);

/// Non-throwing probe used by store scans: nullopt when `path` is missing or
/// unreadable, the payload when the record verifies, and sets *corrupt when
/// the file exists but fails verification.
std::optional<std::vector<std::uint8_t>> try_read_record(
    const std::string& path, bool* corrupt);

}  // namespace ascoma::store
