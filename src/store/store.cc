#include "store/store.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "common/sync.hh"
#include "store/record_file.hh"

namespace ascoma::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kResultSuffix = ".result";
constexpr const char* kCorruptSuffix = ".corrupt";
constexpr const char* kManifestName = "sweep.manifest.jsonl";

/// One process-wide lock serializes manifest appends across sweep workers.
/// It is a leaf in the lock hierarchy (tools/lint_concurrency.py C3) and —
/// uniquely — holds across the open/write/fsync sequence by design: the
/// manifest's durability contract is "one fully fsync'd line at a time",
/// so the I/O *is* the critical section (C4 boundary entry
/// `append_manifest_line`).
ascoma::Mutex manifest_mu;

/// Append one fsync'd line to `path` under the process-wide manifest lock.
void append_manifest_line(const std::string& path,
                          const std::string& json_line) {
  const ascoma::LockGuard g(manifest_mu);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0)
    throw std::runtime_error("cannot open manifest " + path + ": " +
                             std::strerror(errno));
  const std::string line = json_line + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ::ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("manifest write failed: " +
                               std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
}

/// The campaign-identity line write_campaign journals.
std::string campaign_line(const std::vector<std::string>& argv) {
  std::ostringstream os;
  os << "{\"sweep\":\"campaign\",\"argv\":[";
  for (std::size_t i = 0; i < argv.size(); ++i)
    os << (i ? "," : "") << '"' << json_escape_min(argv[i]) << '"';
  os << "]}";
  return os.str();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string json_escape_min(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string StoreReport::to_string() const {
  std::ostringstream os;
  os << "store: " << records << " cached result"
     << (records == 1 ? "" : "s");
  if (quarantined > 0) {
    os << ", " << quarantined << " corrupt record"
       << (quarantined == 1 ? "" : "s") << " quarantined (";
    for (std::size_t i = 0; i < quarantined_names.size(); ++i)
      os << (i ? ", " : "") << quarantined_names[i] << kCorruptSuffix;
    os << ')';
  }
  if (prior_corrupt > 0)
    os << ", " << prior_corrupt << " previously quarantined";
  return os.str();
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec)
    throw std::runtime_error("cannot create store directory " + dir_ + ": " +
                             ec.message());

  // Open scan: checksum every record once so corruption is reported at
  // sweep start (and quarantined exactly once), not rediscovered per job.
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir_))
    names.push_back(entry.path().filename().string());
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    if (ends_with(name, kCorruptSuffix)) {
      ++report_.prior_corrupt;
      continue;
    }
    if (!ends_with(name, kResultSuffix)) continue;  // manifest, stray .tmp
    const std::string path = dir_ + "/" + name;
    bool corrupt = false;
    const auto payload = try_read_record(path, &corrupt);
    if (payload) {
      ++report_.records;
      keys_.push_back(
          name.substr(0, name.size() - std::strlen(kResultSuffix)));
      continue;
    }
    if (corrupt) {
      std::error_code rec;
      fs::rename(path, path + kCorruptSuffix, rec);
      ++report_.quarantined;
      report_.quarantined_names.push_back(name);
    }
  }
  std::sort(keys_.begin(), keys_.end());
}

std::string ResultStore::record_path(const std::string& key) const {
  return dir_ + "/" + key + kResultSuffix;
}

std::string ResultStore::manifest_path() const {
  return dir_ + "/" + kManifestName;
}

bool ResultStore::contains(const std::string& key) const {
  return std::binary_search(keys_.begin(), keys_.end(), key);
}

std::optional<std::vector<std::uint8_t>> ResultStore::load(
    const std::string& key) {
  if (!contains(key)) return std::nullopt;
  const std::string path = record_path(key);
  bool corrupt = false;
  auto payload = try_read_record(path, &corrupt);
  if (!payload && corrupt) {
    std::error_code rec;
    fs::rename(path, path + kCorruptSuffix, rec);
  }
  return payload;
}

void ResultStore::save(const std::string& key,
                       const std::vector<std::uint8_t>& payload,
                       std::uint64_t nonce) {
  write_record(record_path(key), payload, nonce);
}

void ResultStore::append_manifest(const std::string& json_line) {
  append_manifest_line(manifest_path(), json_line);
}

void ResultStore::write_campaign(const std::vector<std::string>& argv) {
  std::error_code ec;
  if (fs::exists(manifest_path(), ec)) return;  // resume keeps the original
  append_manifest(campaign_line(argv));
}

void ResultStore::write_campaign(const std::string& dir,
                                 const std::vector<std::string>& argv) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    throw std::runtime_error("cannot create store directory " + dir + ": " +
                             ec.message());
  const std::string path = dir + "/" + kManifestName;
  if (fs::exists(path, ec)) return;  // resume keeps the original
  append_manifest_line(path, campaign_line(argv));
}

std::optional<std::vector<std::string>> ResultStore::read_campaign(
    const std::string& dir) {
  std::string line;
  {
    std::FILE* f = std::fopen((dir + "/" + kManifestName).c_str(), "r");
    if (f == nullptr) return std::nullopt;
    char buf[1 << 16];
    if (std::fgets(buf, sizeof buf, f) == nullptr) {
      std::fclose(f);
      return std::nullopt;
    }
    std::fclose(f);
    line = buf;
  }
  const std::string marker = "\"argv\":[";
  const auto at = line.find(marker);
  if (line.find("\"campaign\"") == std::string::npos ||
      at == std::string::npos)
    return std::nullopt;

  // Minimal JSON string-array scanner (we wrote this line ourselves; the
  // escapes used are exactly those json_escape_min produces).
  std::vector<std::string> argv;
  std::size_t i = at + marker.size();
  while (i < line.size() && line[i] != ']') {
    if (line[i] == ',' || line[i] == ' ') {
      ++i;
      continue;
    }
    if (line[i] != '"') return std::nullopt;
    ++i;
    std::string arg;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;
        switch (line[i]) {
          case 'n':
            arg += '\n';
            break;
          case 't':
            arg += '\t';
            break;
          case 'u': {
            if (i + 4 >= line.size()) return std::nullopt;
            const unsigned code = static_cast<unsigned>(
                std::strtoul(line.substr(i + 1, 4).c_str(), nullptr, 16));
            arg += static_cast<char>(code);
            i += 4;
            break;
          }
          default:
            arg += line[i];
        }
      } else {
        arg += line[i];
      }
      ++i;
    }
    if (i >= line.size()) return std::nullopt;
    ++i;  // closing quote
    argv.push_back(std::move(arg));
  }
  if (i >= line.size()) return std::nullopt;
  return argv;
}

StoreReport ResultStore::verify(const std::string& dir) {
  StoreReport r;
  std::vector<std::string> names;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end; ++it)
    names.push_back(it->path().filename().string());
  if (ec) throw std::runtime_error("cannot scan " + dir + ": " + ec.message());
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    if (ends_with(name, kCorruptSuffix)) {
      ++r.prior_corrupt;
      continue;
    }
    if (!ends_with(name, kResultSuffix)) continue;
    bool corrupt = false;
    if (try_read_record(dir + "/" + name, &corrupt)) {
      ++r.records;
    } else if (corrupt) {
      ++r.quarantined;
      r.quarantined_names.push_back(name);
    }
  }
  return r;
}

}  // namespace ascoma::store
