#pragma once

// Machine checkpoint container (`*.ckpt`).  A Snapshot is the byte image a
// Machine::save() produced — a versioned, tagged, sectioned buffer (see
// store/codec.hh) — plus the file I/O to persist it with the same
// atomic-write + checksum framing as store records.  Snapshot compatibility
// rules live in ARCHITECTURE.md §15: the snapshot format version is bumped
// whenever any subsystem's encode/decode pair changes shape, and restore
// refuses anything but an exact version + config-fingerprint match (a
// checkpoint is a resume token for one exact machine, not an interchange
// format).

#include <cstdint>
#include <string>
#include <vector>

namespace ascoma::store {

struct Snapshot {
  std::vector<std::uint8_t> bytes;

  bool empty() const { return bytes.empty(); }

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// Atomically write `snap` to `path` (temp + fsync + rename, checksummed
/// header).  Throws std::runtime_error on I/O failure.
void write_snapshot_file(const std::string& path, const Snapshot& snap);

/// Read and verify a snapshot file.  Throws CodecError when the file is
/// torn or corrupt, std::runtime_error when it cannot be opened.
Snapshot read_snapshot_file(const std::string& path);

}  // namespace ascoma::store
