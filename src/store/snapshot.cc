#include "store/snapshot.hh"

#include "store/record_file.hh"

namespace ascoma::store {

void write_snapshot_file(const std::string& path, const Snapshot& snap) {
  write_record(path, snap.bytes);
}

Snapshot read_snapshot_file(const std::string& path) {
  return Snapshot{read_record(path)};
}

}  // namespace ascoma::store
