#pragma once

// Content-addressed result store + append-only manifest journal — the
// campaign-durability half of ARCHITECTURE.md §15.
//
// A store directory holds one `<key>.result` record per completed sweep job,
// where `key` is the job's canonical content hash (core::job_fingerprint).
// Records are written atomically (store/record_file.hh), so after a kill -9
// the directory contains only complete, verified results plus at most one
// abandoned `.tmp` file; anything that fails verification is renamed to
// `<name>.corrupt` (quarantined — reported once at open, never re-trusted,
// never silently re-run on every resume).
//
// The manifest `sweep.manifest.jsonl` is the campaign journal: line one
// records the campaign identity (the exact argv of the launching command),
// then one fsync'd JSON line per job completion.  `ascoma_sim --resume DIR`
// replays the campaign argv against the same store, so finished jobs are
// cache hits and the final result vector — and CSV — is byte-identical to
// an uninterrupted run.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ascoma::store {

/// Escape `s` for a JSON string literal (manifest lines).
std::string json_escape_min(const std::string& s);

/// Health census of one store directory.
struct StoreReport {
  std::uint64_t records = 0;        ///< verified `.result` records
  std::uint64_t quarantined = 0;    ///< corrupt records renamed this scan
  std::uint64_t prior_corrupt = 0;  ///< `.corrupt` files from earlier scans
  std::vector<std::string> quarantined_names;

  bool clean() const { return quarantined == 0 && prior_corrupt == 0; }
  /// One-line summary for the sweep-start report.
  std::string to_string() const;
};

class ResultStore {
 public:
  /// Opens (creating if needed) `dir`, scans and checksums every record,
  /// and quarantines corrupt ones.  Throws std::runtime_error when the
  /// directory cannot be created or scanned.
  explicit ResultStore(std::string dir);

  const std::string& dir() const { return dir_; }
  const StoreReport& report() const { return report_; }

  /// Payload of record `key`, or nullopt on miss.  A record that turned
  /// corrupt since the open scan is quarantined on the spot.
  std::optional<std::vector<std::uint8_t>> load(const std::string& key);

  /// Atomically persist `payload` as `<key>.result`.  `nonce` keeps
  /// concurrent writers' temp files distinct (callers pass the job index).
  void save(const std::string& key, const std::vector<std::uint8_t>& payload,
            std::uint64_t nonce);

  bool contains(const std::string& key) const;

  /// Append one fsync'd line to the manifest journal (thread-safe).
  void append_manifest(const std::string& json_line);

  /// Record the campaign identity as the manifest's first line (no-op when
  /// a manifest already exists — a resume keeps the original identity).
  void write_campaign(const std::vector<std::string>& argv);

  /// Same, without opening/scanning the store: creates `dir` if missing and
  /// writes the campaign line.  The CLI journals the campaign *before* the
  /// sweep starts so a kill during the very first job is still resumable.
  static void write_campaign(const std::string& dir,
                             const std::vector<std::string>& argv);

  /// The campaign argv recorded in `dir`'s manifest, or nullopt when the
  /// manifest is missing or malformed.
  static std::optional<std::vector<std::string>> read_campaign(
      const std::string& dir);

  /// Checksum every record in `dir` without mutating anything
  /// (`--store-verify`): returns the census; `quarantined_names` lists the
  /// records that failed.
  static StoreReport verify(const std::string& dir);

  std::string manifest_path() const;

 private:
  std::string record_path(const std::string& key) const;

  std::string dir_;
  StoreReport report_;
  std::vector<std::string> keys_;  ///< verified keys from the open scan
};

}  // namespace ascoma::store
