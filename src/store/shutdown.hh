#pragma once

// Graceful-shutdown flag shared by the CLI, the sweep runner, and
// obs::CrashExporter.  install_shutdown_handler() routes SIGINT and SIGTERM
// to an async-signal-safe flag; nothing else happens in the handler.  The
// main thread polls shutdown_requested() between jobs, drains in-flight
// work, flushes the manifest and any registered crash exporters, and prints
// the resume command — so an operator Ctrl-C costs at most the jobs already
// running, exactly like a kill -9 but with a tidy report.

#include <atomic>
#include <csignal>

namespace ascoma::store {

/// Install the SIGINT/SIGTERM handler (idempotent).  A second delivery of
/// either signal restores the default disposition, so a stuck drain can
/// still be killed by pressing Ctrl-C twice.
void install_shutdown_handler();

/// True once SIGINT or SIGTERM was delivered.
bool shutdown_requested();

/// The flag itself, for code that polls it from worker threads
/// (core::SweepOptions::stop).  Never null; lock-free.
const std::atomic<bool>* shutdown_flag();

/// The signal that triggered shutdown (0 when none yet).
int shutdown_signal();

/// Test hook: simulate or clear a delivery without raising a real signal.
void set_shutdown_requested(int signal);

}  // namespace ascoma::store
