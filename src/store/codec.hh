#pragma once

// Versioned tagged binary codec for the durability layer (ARCHITECTURE.md
// §15).  Every persisted artifact — cached sweep results, machine
// checkpoints — is a flat byte buffer produced by an Encoder and consumed by
// a Decoder.  The format is deliberately minimal and explicit:
//
//   * primitives are fixed-width little-endian (u8/u32/u64, doubles via
//     bit_cast), so buffers are portable across hosts and canonical — the
//     same logical state always encodes to the same bytes, which is what
//     makes content-addressed hashing and the snapshot self-check possible;
//   * named, length-prefixed sections bracket each subsystem's fields.  A
//     section records its byte length at end_section(); the decoder verifies
//     the tag on entry and the consumed length on exit, so adding a field to
//     the encode side but not the decode side (or vice versa) fails loudly
//     instead of silently shearing every later field.
//
// Decode failures throw CodecError, never ASCOMA_CHECK: a torn or stale
// record on disk is an expected runtime condition the store must quarantine,
// not a programming error that should abort the process.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ascoma::store {

/// Thrown on any malformed, truncated, or mismatched buffer.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a over a byte range.  Used both as the record checksum and (salted)
/// as the content-address hash; it is stable across builds by construction.
inline constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x00000100000001B3ull;

inline std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size,
                             std::uint64_t basis = kFnvBasis) {
  std::uint64_t h = basis;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }

  void b(bool v) { u8(v ? 1 : 0); }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Open a named section; its byte length is patched in by end_section().
  void begin_section(std::string_view tag) {
    str(tag);
    patch_.push_back(buf_.size());
    u64(0);  // length placeholder
  }

  void end_section() {
    if (patch_.empty()) throw CodecError("end_section without begin_section");
    const std::size_t at = patch_.back();
    patch_.pop_back();
    const std::uint64_t len = buf_.size() - (at + 8);
    for (int i = 0; i < 8; ++i)
      buf_[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((len >> (8 * i)) & 0xFF);
  }

  const std::vector<std::uint8_t>& bytes() const {
    if (!patch_.empty()) throw CodecError("unclosed section");
    return buf_;
  }

  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
  std::vector<std::size_t> patch_;
};

class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Decoder(const std::vector<std::uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  bool b() { return u8() != 0; }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Enter a section, verifying its tag; end_section() verifies that the
  /// declared length was consumed exactly.
  void begin_section(std::string_view tag) {
    const std::string got = str();
    if (got != tag) {
      std::ostringstream os;
      os << "section tag mismatch: expected '" << tag << "', found '" << got
         << "'";
      throw CodecError(os.str());
    }
    const std::uint64_t len = u64();
    need(len);
    ends_.push_back(pos_ + static_cast<std::size_t>(len));
  }

  void end_section() {
    if (ends_.empty()) throw CodecError("end_section without begin_section");
    if (pos_ != ends_.back())
      throw CodecError("section length mismatch (encode/decode drift)");
    ends_.pop_back();
  }

  bool done() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  void need(std::uint64_t n) const {
    if (n > size_ - pos_) throw CodecError("buffer truncated");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::vector<std::size_t> ends_;
};

}  // namespace ascoma::store
