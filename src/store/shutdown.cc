#include "store/shutdown.hh"

#include <atomic>

#include "common/annotate.hh"

namespace ascoma::store {

namespace {

// Lock-free atomics are async-signal-safe, and unlike sig_atomic_t they are
// also safe to poll from the sweep's worker threads.
std::atomic<int> g_signal{0};
std::atomic<bool> g_requested{false};

extern "C" ASCOMA_SIGNAL_SAFE void on_shutdown_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  g_requested.store(true, std::memory_order_release);
  // Second delivery: fall back to the default disposition so a wedged drain
  // can still be interrupted.
  std::signal(sig, SIG_DFL);
}

}  // namespace

void install_shutdown_handler() {
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
}

bool shutdown_requested() {
  return g_requested.load(std::memory_order_acquire);
}

int shutdown_signal() { return g_signal.load(std::memory_order_relaxed); }

const std::atomic<bool>* shutdown_flag() { return &g_requested; }

void set_shutdown_requested(int signal) {
  g_signal.store(signal, std::memory_order_relaxed);
  g_requested.store(signal != 0, std::memory_order_release);
}

}  // namespace ascoma::store
