#include "store/shutdown.hh"

#include <atomic>

#include "common/annotate.hh"

namespace ascoma::store {

namespace {

// Lock-free atomics are async-signal-safe, and unlike sig_atomic_t they are
// also safe to poll from the sweep's worker threads.
std::atomic<int> g_signal{0};
std::atomic<bool> g_requested{false};

extern "C" ASCOMA_SIGNAL_SAFE void on_shutdown_signal(int sig) {
  // order: relaxed — g_signal is published by the release store of
  // g_requested below; any reader that saw g_requested with acquire also
  // sees this signal number.
  g_signal.store(sig, std::memory_order_relaxed);
  // order: release — pairs with the acquire load in shutdown_requested():
  // observing true guarantees g_signal (and anything else the interrupted
  // thread wrote before the signal) is visible to the drainer.
  g_requested.store(true, std::memory_order_release);
  // Second delivery: fall back to the default disposition so a wedged drain
  // can still be interrupted.
  std::signal(sig, SIG_DFL);
}

}  // namespace

void install_shutdown_handler() {
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
}

bool shutdown_requested() {
  // order: acquire — pairs with the handler's release store; see there.
  return g_requested.load(std::memory_order_acquire);
}

// order: relaxed — only meaningful after shutdown_requested() returned
// true, whose acquire already ordered this value; read in isolation it is
// advisory (0 until a delivery).
int shutdown_signal() { return g_signal.load(std::memory_order_relaxed); }

const std::atomic<bool>* shutdown_flag() { return &g_requested; }

void set_shutdown_requested(int signal) {
  // order: relaxed/release — same pairing as the real handler above.
  g_signal.store(signal, std::memory_order_relaxed);
  g_requested.store(signal != 0, std::memory_order_release);
}

}  // namespace ascoma::store
