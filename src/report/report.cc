#include "report/report.hh"

#include <algorithm>
#include <sstream>

#include "common/check.hh"

namespace ascoma::report {

double baseline_cycles(const std::vector<LabeledResult>& results) {
  ASCOMA_CHECK_MSG(!results.empty(), "no results to report");
  for (const auto& r : results) {
    ASCOMA_CHECK(r.result != nullptr);
    if (r.result->config.arch == ArchModel::kCcNuma)
      return static_cast<double>(r.result->cycles().value());
  }
  return static_cast<double>(results.front().result->cycles().value());
}

Table time_breakdown_table(const std::vector<LabeledResult>& results,
                           double baseline) {
  ASCOMA_CHECK(baseline > 0.0);
  Table t({"config", "rel.time", "U-SH-MEM", "K-BASE", "K-OVERHD", "U-INSTR",
           "U-LC-MEM", "SYNC"});
  for (const auto& lr : results) {
    const auto& time = lr.result->stats.totals.time;
    const double total = static_cast<double>(time.total().value());
    const double rel =
        static_cast<double>(lr.result->cycles().value()) / baseline;
    auto share = [&](TimeBucket b) {
      return Table::num(
          total > 0 ? rel * static_cast<double>(time[b].value()) / total : 0.0,
          3);
    };
    t.add_row({lr.label, Table::num(rel, 3), share(TimeBucket::kUserShared),
               share(TimeBucket::kKernelBase), share(TimeBucket::kKernelOvhd),
               share(TimeBucket::kUserInstr), share(TimeBucket::kUserLocal),
               share(TimeBucket::kSync)});
  }
  return t;
}

Table miss_breakdown_table(const std::vector<LabeledResult>& results) {
  Table t({"config", "HOME", "SCOMA", "RAC", "COLD", "CONF/CAPC", "total",
           "remote%"});
  for (const auto& lr : results) {
    const auto& m = lr.result->stats.totals.misses;
    const std::uint64_t conf =
        m[MissSource::kConfCapc] + m[MissSource::kCoherence];
    t.add_row({lr.label, std::to_string(m[MissSource::kHome]),
               std::to_string(m[MissSource::kScoma]),
               std::to_string(m[MissSource::kRac]),
               std::to_string(m[MissSource::kCold]), std::to_string(conf),
               std::to_string(m.total()),
               Table::pct(m.total() ? static_cast<double>(m.remote()) /
                                          static_cast<double>(m.total())
                                    : 0.0)});
  }
  return t;
}

std::string summary_line(const core::RunResult& r) {
  const auto& time = r.stats.totals.time;
  const auto& m = r.stats.totals.misses;
  std::ostringstream os;
  os << to_string(r.config.arch) << '('
     << Table::pct(r.stats.memory_pressure, 0) << "): " << r.cycles()
     << " cycles, U-SH-MEM " << Table::pct(time.frac(TimeBucket::kUserShared))
     << ", K-OVERHD " << Table::pct(time.frac(TimeBucket::kKernelOvhd))
     << ", local misses "
     << Table::pct(m.total() ? static_cast<double>(m.local()) /
                                   static_cast<double>(m.total())
                             : 0.0);
  return os.str();
}

std::string summary_line(const core::RunResult& r,
                         const obs::EventSink* sink) {
  std::string line = summary_line(r);
  if (sink) line += ", " + backoff_trajectory(r, sink);
  return line;
}

std::string backoff_trajectory(const core::RunResult& r,
                               const obs::EventSink* sink) {
  const auto& k = r.stats.totals.kernel;
  const std::uint64_t raises =
      sink ? sink->count(obs::EventKind::kThresholdRaise)
           : k.threshold_raises;
  const std::uint64_t drops = sink
                                  ? sink->count(obs::EventKind::kThresholdDrop)
                                  : k.threshold_drops;
  const std::uint32_t final_max =
      r.final_threshold.empty()
          ? r.config.refetch_threshold
          : *std::max_element(r.final_threshold.begin(),
                              r.final_threshold.end());
  const std::uint64_t reloc_on =
      static_cast<std::uint64_t>(std::count(r.relocation_enabled.begin(),
                                            r.relocation_enabled.end(), 1));
  std::ostringstream os;
  os << "back-off: threshold " << r.config.refetch_threshold << "->"
     << final_max << " (" << raises << (raises == 1 ? " raise, " : " raises, ")
     << drops << (drops == 1 ? " drop)" : " drops)") << ", relocation on "
     << reloc_on << "/" << r.relocation_enabled.size() << " nodes, "
     << k.remap_suppressed << " suppressed remaps";
  return os.str();
}

Table latency_table(const prof::Profiler& prof) {
  Table t({"class", "count", "min", "p50", "p90", "p99", "max"});
  auto row = [&](const std::string& name, const prof::LatencyHistogram& h) {
    if (!h.count()) return;
    t.add_row({name, std::to_string(h.count()), std::to_string(h.min()),
               std::to_string(h.p50()), std::to_string(h.p90()),
               std::to_string(h.p99()), std::to_string(h.max())});
  };
  row("all", prof.merged_end_to_end());
  for (int c = 0; c < prof::kNumAccessClasses; ++c) {
    const auto cls = static_cast<prof::AccessClass>(c);
    row(prof::to_string(cls), prof.end_to_end(cls));
  }
  return t;
}

std::string csv_header() {
  return "workload,arch,pressure,cycles,ush_mem,k_base,k_overhd,u_instr,"
         "u_lc_mem,sync,home,scoma,rac,cold,conf_capc,coherence,upgrades,"
         "downgrades,suppressed";
}

std::string csv_header(bool with_latency) {
  std::string h = csv_header();
  if (with_latency) h += ",lat_min,lat_p50,lat_p99,lat_max";
  return h;
}

std::string csv_row(const std::string& workload, const std::string& arch,
                    const core::RunResult& r) {
  const auto& time = r.stats.totals.time;
  const auto& m = r.stats.totals.misses;
  const auto& k = r.stats.totals.kernel;
  std::ostringstream os;
  os << workload << ',' << arch << ',' << r.stats.memory_pressure << ','
     << r.cycles() << ',' << time[TimeBucket::kUserShared] << ','
     << time[TimeBucket::kKernelBase] << ',' << time[TimeBucket::kKernelOvhd]
     << ',' << time[TimeBucket::kUserInstr] << ','
     << time[TimeBucket::kUserLocal] << ',' << time[TimeBucket::kSync] << ','
     << m[MissSource::kHome] << ',' << m[MissSource::kScoma] << ','
     << m[MissSource::kRac] << ',' << m[MissSource::kCold] << ','
     << m[MissSource::kConfCapc] << ',' << m[MissSource::kCoherence] << ','
     << k.upgrades << ',' << k.downgrades << ',' << k.remap_suppressed;
  return os.str();
}

std::string csv_row(const std::string& workload, const std::string& arch,
                    const core::RunResult& r, const prof::Profiler& prof) {
  const prof::LatencyHistogram h = prof.merged_end_to_end();
  std::ostringstream os;
  os << csv_row(workload, arch, r) << ',' << h.min() << ',' << h.p50() << ','
     << h.p99() << ',' << h.max();
  return os.str();
}

std::string csv_header_walltime(bool with_latency) {
  return csv_header(with_latency) + ",wall_ms,sim_rate";
}

std::string csv_row(const std::string& workload, const std::string& arch,
                    const core::SweepResult& sr) {
  std::ostringstream os;
  os << csv_row(workload, arch, sr.result) << ','
     << sr.timing.wall.value() / 1'000'000 << ','
     << static_cast<std::uint64_t>(sr.sim_rate_hz());
  return os.str();
}

}  // namespace ascoma::report
