#pragma once

// Paper-style result rendering: the left (execution-time breakdown) and
// right (miss-satisfaction breakdown) charts of Figures 2/3 as text tables,
// plus CSV export.  Used by the benchmark binaries and the ascoma CLI; kept
// in the library so downstream users can emit the same reports for their
// own workloads.

#include <string>
#include <vector>

#include "common/table.hh"
#include "core/machine.hh"

namespace ascoma::report {

struct LabeledResult {
  std::string label;  ///< e.g. "ASCOMA(70%)"
  const core::RunResult* result = nullptr;
};

/// Cycles of the first result whose architecture is CC-NUMA (the paper's
/// normalization baseline); falls back to the first result if none.
double baseline_cycles(const std::vector<LabeledResult>& results);

/// Left chart: execution time relative to `baseline` stacked by bucket.
/// Each bucket cell is that bucket's share of the *relative* bar height, so
/// a row's bucket columns sum to its rel.time column.
Table time_breakdown_table(const std::vector<LabeledResult>& results,
                           double baseline);

/// Right chart: where shared-data misses were satisfied.  COHERENCE folds
/// into CONF/CAPC as the paper's figures do.
Table miss_breakdown_table(const std::vector<LabeledResult>& results);

/// One-line human summary of a run (cycles, top buckets, miss locality).
std::string summary_line(const core::RunResult& r);

/// CSV schema shared by the CLI and any scripting around the benches.
std::string csv_header();
std::string csv_row(const std::string& workload, const std::string& arch,
                    const core::RunResult& r);

}  // namespace ascoma::report
