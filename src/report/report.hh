#pragma once

// Paper-style result rendering: the left (execution-time breakdown) and
// right (miss-satisfaction breakdown) charts of Figures 2/3 as text tables,
// plus CSV export.  Used by the benchmark binaries and the ascoma CLI; kept
// in the library so downstream users can emit the same reports for their
// own workloads.

#include <string>
#include <vector>

#include "common/annotate.hh"
#include "common/table.hh"
#include "core/machine.hh"
#include "core/sweep.hh"
#include "obs/sink.hh"
#include "prof/profiler.hh"

namespace ascoma::report {

struct LabeledResult {
  std::string label;  ///< e.g. "ASCOMA(70%)"
  const core::RunResult* result = nullptr;
};

/// Cycles of the first result whose architecture is CC-NUMA (the paper's
/// normalization baseline); falls back to the first result if none.
double baseline_cycles(const std::vector<LabeledResult>& results);

/// Left chart: execution time relative to `baseline` stacked by bucket.
/// Each bucket cell is that bucket's share of the *relative* bar height, so
/// a row's bucket columns sum to its rel.time column.
Table time_breakdown_table(const std::vector<LabeledResult>& results,
                           double baseline);

/// Right chart: where shared-data misses were satisfied.  COHERENCE folds
/// into CONF/CAPC as the paper's figures do.
Table miss_breakdown_table(const std::vector<LabeledResult>& results);

/// One-line human summary of a run (cycles, top buckets, miss locality).
std::string summary_line(const core::RunResult& r);

/// summary_line plus the back-off trajectory when an event sink recorded
/// the run (threshold raises/drops are read from the event stream).
std::string summary_line(const core::RunResult& r,
                         const obs::EventSink* sink);

/// The back-off trajectory of a run: initial -> final refetch threshold
/// with escalation/relaxation counts, e.g.
/// "back-off: threshold 64->128 (2 raises, 1 drop), relocation on 8/8
///  nodes, 5 suppressed remaps".  Raise/drop counts come from the event
/// stream when `sink` is attached (exact even under buffer overflow),
/// otherwise from the aggregated KernelStats.
std::string backoff_trajectory(const core::RunResult& r,
                               const obs::EventSink* sink = nullptr);

/// Per-access-class latency table sourced from a run's Profiler: a merged
/// "all" headline row plus one row per access class with recorded samples.
/// Requires a profiler attached to the run (MachineConfig::profiler).
Table latency_table(const prof::Profiler& prof);

/// CSV schema shared by the CLI and any scripting around the benches.  The
/// profiler overloads append min/p50/p99/max end-to-end latency columns
/// after the existing ones, so the base schema stays a strict prefix.
ASCOMA_DETERMINISM_SENSITIVE std::string csv_header();
ASCOMA_DETERMINISM_SENSITIVE std::string csv_header(bool with_latency);
ASCOMA_DETERMINISM_SENSITIVE std::string csv_row(const std::string& workload,
                                                 const std::string& arch,
                                                 const core::RunResult& r);
ASCOMA_DETERMINISM_SENSITIVE std::string csv_row(const std::string& workload,
                                                 const std::string& arch,
                                                 const core::RunResult& r,
                                                 const prof::Profiler& prof);

/// Telemetry variants: the base (or latency) schema plus integer `wall_ms`
/// and `sim_rate` (simulated cycles per host wall second, rounded down)
/// columns.  Only the sweep-driven exports use these — the CLI's default
/// schema stays byte-stable without them (the golden gate depends on it).
std::string csv_header_walltime(bool with_latency = false);
std::string csv_row(const std::string& workload, const std::string& arch,
                    const core::SweepResult& sr);

}  // namespace ascoma::report
