#include "mem/dram.hh"

#include "common/check.hh"

namespace ascoma::mem {

Dram::Dram(const MachineConfig& cfg) : access_cycles_(cfg.dram_access_cycles) {
  ASCOMA_CHECK(cfg.dram_banks > 0);
  banks_.reserve(cfg.dram_banks);
  for (std::uint32_t i = 0; i < cfg.dram_banks; ++i)
    banks_.emplace_back("dram.bank" + std::to_string(i));
}

Cycle Dram::access(Cycle now, BlockId block) {
  ++accesses_;
  sim::Resource& bank = banks_[block.value() % banks_.size()];
  return bank.acquire_until(now, access_cycles_);
}

void Dram::reset() {
  for (auto& b : banks_) b.reset();
  accesses_ = 0;
}

}  // namespace ascoma::mem
