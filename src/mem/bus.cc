#include "mem/bus.hh"

// Bus is header-only today; this TU anchors the library target and keeps a
// home for future multi-master arbitration logic.
namespace ascoma::mem {}
