#include "mem/cache.hh"

namespace ascoma::mem {

L1Cache::L1Cache(const MachineConfig& cfg)
    : lines_per_block_(cfg.lines_per_block()),
      lines_per_page_(cfg.lines_per_page()),
      index_mask_(cfg.l1_lines() - 1),
      lines_(cfg.l1_lines()) {
  ASCOMA_CHECK((cfg.l1_lines() & (cfg.l1_lines() - 1)) == 0);
}

bool L1Cache::probe(LineId line) const {
  const Slot& s = lines_[index_of(line)];
  return s.valid && s.tag == line;
}

L1Cache::AccessResult L1Cache::fill(LineId line, bool dirty) {
  Slot& s = lines_[index_of(line)];
  AccessResult r;
  if (s.valid && s.tag != line) {
    r.evicted = true;
    r.victim = s.tag;
    r.writeback = s.dirty;
    --valid_count_;
  } else if (s.valid && s.tag == line) {
    // Refill of a present line (e.g. upgrade fill): keep dirty sticky.
    s.dirty = s.dirty || dirty;
    return r;
  }
  s.tag = line;
  s.valid = true;
  s.dirty = dirty;
  ++valid_count_;
  return r;
}

void L1Cache::touch_store(LineId line) {
  Slot& s = lines_[index_of(line)];
  ASCOMA_CHECK_MSG(s.valid && s.tag == line, "store touch on absent line");
  s.dirty = true;
}

bool L1Cache::invalidate_line(LineId line) {
  Slot& s = lines_[index_of(line)];
  if (!s.valid || s.tag != line) return false;
  s.valid = false;
  s.dirty = false;
  --valid_count_;
  return true;
}

std::uint32_t L1Cache::invalidate_block(BlockId block) {
  const LineId first{block.value() * lines_per_block_};
  std::uint32_t n = 0;
  for (std::uint32_t i = 0; i < lines_per_block_; ++i)
    n += invalidate_line(first + i) ? 1 : 0;
  return n;
}

L1Cache::FlushResult L1Cache::flush_page(VPageId page) {
  const LineId first{page.value() * lines_per_page_};
  FlushResult r;
  for (std::uint32_t i = 0; i < lines_per_page_; ++i) {
    Slot& s = lines_[index_of(first + i)];
    if (s.valid && s.tag == first + i) {
      ++r.valid_lines;
      if (s.dirty) ++r.dirty_lines;
      s.valid = false;
      s.dirty = false;
      --valid_count_;
    }
  }
  return r;
}

bool L1Cache::line_dirty(LineId line) const {
  const Slot& s = lines_[index_of(line)];
  return s.valid && s.tag == line && s.dirty;
}

void L1Cache::reset() {
  for (Slot& s : lines_) s = Slot{};
  valid_count_ = 0;
}

}  // namespace ascoma::mem
