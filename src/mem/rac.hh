#pragma once

// Remote Access Cache on the DSM engine.  Direct-mapped over 128 B blocks,
// non-inclusive with respect to the L1.  The paper's CC-NUMA and hybrid
// models use a minimal 128 B RAC "containing the last remote data received
// as part of performing a 4-line fetch"; the size is configurable so the
// ablation bench can grow or remove it.

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "store/codec.hh"

namespace ascoma::mem {

class Rac {
 public:
  explicit Rac(const MachineConfig& cfg);

  bool probe(BlockId block) const;

  /// Insert a remote block (typically the one just fetched).
  void fill(BlockId block);

  /// Invalidate a block if present; true if it was present.
  bool invalidate(BlockId block);

  /// Invalidate every cached block belonging to a virtual page (performed on
  /// page remap); returns the number invalidated.
  std::uint32_t invalidate_page(VPageId page);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t fills() const { return fills_; }
  std::uint32_t entries() const { return static_cast<std::uint32_t>(slots_.size()); }
  void note_hit() { ++hits_; }

  /// Snapshot of the resident block ids (invariant checker, tests).
  std::vector<BlockId> valid_block_ids() const {
    std::vector<BlockId> out;
    for (const Slot& s : slots_)
      if (s.valid) out.push_back(s.tag);
    return out;
  }


  // Checkpoint serialization (encode/decode stay adjacent — pairing check).
  void encode(store::Encoder& e) const {
    e.u64(slots_.size());
    for (const Slot& s : slots_) {
      e.u64(s.tag.value());
      e.b(s.valid);
    }
    e.u64(hits_);
    e.u64(fills_);
  }
  void decode(store::Decoder& d) {
    if (d.u64() != slots_.size())
      throw store::CodecError("RAC geometry mismatch");
    for (Slot& s : slots_) {
      s.tag = BlockId{d.u64()};
      s.valid = d.b();
    }
    hits_ = d.u64();
    fills_ = d.u64();
  }

  void reset();

 private:
  struct Slot {
    BlockId tag{0};
    bool valid = false;
  };

  std::uint32_t index_of(BlockId b) const {
    return slots_.empty() ? 0 : static_cast<std::uint32_t>(b.value() % slots_.size());
  }

  std::uint32_t blocks_per_page_;
  std::vector<Slot> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t fills_ = 0;
};

}  // namespace ascoma::mem
