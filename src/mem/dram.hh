#pragma once

// Banked main-memory controller ("4-bank main memory controller that can
// supply data from local memory in ~30 cycles").  Blocks are interleaved
// across banks; concurrent requests to the same bank queue behind each other
// via the bank's Resource.

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "sim/resource.hh"

namespace ascoma::mem {

class Dram {
 public:
  explicit Dram(const MachineConfig& cfg);

  /// Issue a block access at `now`; returns the completion cycle.
  Cycle access(Cycle now, BlockId block);

  std::uint32_t banks() const { return static_cast<std::uint32_t>(banks_.size()); }
  const sim::Resource& bank(std::uint32_t i) const { return banks_[i]; }
  std::uint64_t accesses() const { return accesses_; }

  void reset();

 private:
  Cycle access_cycles_;
  std::vector<sim::Resource> banks_;
  std::uint64_t accesses_ = 0;
};

}  // namespace ascoma::mem
