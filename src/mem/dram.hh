#pragma once

// Banked main-memory controller ("4-bank main memory controller that can
// supply data from local memory in ~30 cycles").  Blocks are interleaved
// across banks; concurrent requests to the same bank queue behind each other
// via the bank's Resource.

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "sim/resource.hh"
#include "store/codec.hh"

namespace ascoma::mem {

class Dram {
 public:
  explicit Dram(const MachineConfig& cfg);

  /// Issue a block access at `now`; returns the completion cycle.
  Cycle access(Cycle now, BlockId block);

  std::uint32_t banks() const { return static_cast<std::uint32_t>(banks_.size()); }
  const sim::Resource& bank(std::uint32_t i) const { return banks_[i]; }
  std::uint64_t accesses() const { return accesses_; }

  // Checkpoint serialization (encode/decode stay adjacent — pairing check).
  void encode(store::Encoder& e) const {
    e.u64(banks_.size());
    for (const sim::Resource& b : banks_) b.encode(e);
    e.u64(accesses_);
  }
  void decode(store::Decoder& d) {
    if (d.u64() != banks_.size())
      throw store::CodecError("DRAM geometry mismatch");
    for (sim::Resource& b : banks_) b.decode(d);
    accesses_ = d.u64();
  }

  void reset();

 private:
  Cycle access_cycles_;
  std::vector<sim::Resource> banks_;
  std::uint64_t accesses_ = 0;
};

}  // namespace ascoma::mem
