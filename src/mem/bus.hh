#pragma once

// Split-transaction coherent memory bus (Runway-style).  Modeled as a single
// occupancy resource: each bus transaction (request + data return) holds the
// bus for `bus_occupancy` cycles; the split-transaction property is captured
// by *not* holding the bus while DRAM or the network service the request.

#include <cstdint>

#include "common/config.hh"
#include "common/types.hh"
#include "sim/resource.hh"
#include "store/codec.hh"

namespace ascoma::mem {

class Bus {
 public:
  explicit Bus(const MachineConfig& cfg)
      : occupancy_(cfg.bus_occupancy), res_("bus") {}

  /// One bus transaction starting at or after `now`; returns completion.
  Cycle transact(Cycle now) { return res_.acquire_until(now, occupancy_); }

  /// A shorter address-only transaction (coherence responses, invalidates).
  Cycle transact_short(Cycle now) {
    return res_.acquire_until(now, (occupancy_ + Cycle{1}) / 2);
  }

  const sim::Resource& resource() const { return res_; }
  std::uint64_t transactions() const { return res_.transactions(); }
  void reset() { res_.reset(); }

  // Checkpoint serialization (encode/decode stay adjacent — pairing check).
  void encode(store::Encoder& e) const { res_.encode(e); }
  void decode(store::Decoder& d) { res_.decode(d); }

 private:
  Cycle occupancy_;
  sim::Resource res_;
};

}  // namespace ascoma::mem
