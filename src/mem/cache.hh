#pragma once

// L1 processor cache model: direct-mapped, write-back, virtually indexed,
// physically tagged (we index and tag by global virtual line id, which is
// equivalent because the global virtual space is shared and 1:1 within a
// page).  Matches Table 3: 16 KB, 32 B lines, 1-cycle hit, one outstanding
// miss (blocking — enforced by the machine loop, not here).
//
// The cache tracks per-line valid/dirty state only; simulated data values
// live in the functional memory shadow used by the coherence tests.

#include <cstdint>
#include <vector>

#include "common/check.hh"
#include "common/config.hh"
#include "common/types.hh"
#include "store/codec.hh"

namespace ascoma::mem {

class L1Cache {
 public:
  explicit L1Cache(const MachineConfig& cfg);

  struct AccessResult {
    bool hit = false;
    bool writeback = false;  ///< a dirty victim line was evicted
    LineId victim{0};       ///< valid when a (clean or dirty) line was evicted
    bool evicted = false;
  };

  /// Probe for `line`; on a miss the line is *not* filled (call fill() after
  /// the memory system supplies the data).
  bool probe(LineId line) const;

  /// Fill `line`, evicting whatever direct-mapped slot it occupies.
  AccessResult fill(LineId line, bool dirty);

  /// Marks an already-present line dirty (store hit).
  void touch_store(LineId line);

  /// Invalidate one line if present; returns true if it was present.
  bool invalidate_line(LineId line);

  /// Invalidate all lines of a coherence block; returns count invalidated.
  std::uint32_t invalidate_block(BlockId block);

  struct FlushResult {
    std::uint32_t valid_lines = 0;
    std::uint32_t dirty_lines = 0;
  };

  /// Flush (invalidate, counting dirty writebacks) every line of a virtual
  /// page — the operation performed when a page is remapped.
  FlushResult flush_page(VPageId page);

  bool line_dirty(LineId line) const;
  std::uint32_t valid_lines() const { return valid_count_; }

  /// Snapshot of the resident line ids (invariant checker, tests).
  std::vector<LineId> valid_line_ids() const {
    std::vector<LineId> out;
    out.reserve(valid_count_);
    for (const Slot& s : lines_)
      if (s.valid) out.push_back(s.tag);
    return out;
  }

  std::uint32_t num_lines() const { return static_cast<std::uint32_t>(lines_.size()); }

  // Checkpoint serialization (encode/decode stay adjacent — pairing check).
  void encode(store::Encoder& e) const {
    e.u64(lines_.size());
    for (const Slot& s : lines_) {
      e.u64(s.tag.value());
      e.b(s.valid);
      e.b(s.dirty);
    }
    e.u32(valid_count_);
  }
  void decode(store::Decoder& d) {
    if (d.u64() != lines_.size())
      throw store::CodecError("L1 geometry mismatch");
    for (Slot& s : lines_) {
      s.tag = LineId{d.u64()};
      s.valid = d.b();
      s.dirty = d.b();
    }
    valid_count_ = d.u32();
  }

  void reset();

 private:
  struct Slot {
    LineId tag{0};
    bool valid = false;
    bool dirty = false;
  };

  std::uint32_t index_of(LineId line) const {
    return static_cast<std::uint32_t>(line.value()) & index_mask_;
  }

  std::uint32_t lines_per_block_;
  std::uint32_t lines_per_page_;
  std::uint32_t index_mask_;
  std::vector<Slot> lines_;
  std::uint32_t valid_count_ = 0;
};

}  // namespace ascoma::mem
