#include "mem/rac.hh"

namespace ascoma::mem {

Rac::Rac(const MachineConfig& cfg)
    : blocks_per_page_(cfg.blocks_per_page()), slots_(cfg.rac_entries()) {
  // Zero entries = RAC disabled (ablation configuration): probes always
  // miss and fills/invalidations are no-ops.
}

bool Rac::probe(BlockId block) const {
  if (slots_.empty()) return false;
  const Slot& s = slots_[index_of(block)];
  return s.valid && s.tag == block;
}

void Rac::fill(BlockId block) {
  if (slots_.empty()) return;
  Slot& s = slots_[index_of(block)];
  s.tag = block;
  s.valid = true;
  ++fills_;
}

bool Rac::invalidate(BlockId block) {
  if (slots_.empty()) return false;
  Slot& s = slots_[index_of(block)];
  if (!s.valid || s.tag != block) return false;
  s.valid = false;
  return true;
}

std::uint32_t Rac::invalidate_page(VPageId page) {
  const BlockId first{page.value() * blocks_per_page_};
  std::uint32_t n = 0;
  for (std::uint32_t i = 0; i < blocks_per_page_; ++i)
    n += invalidate(first + i) ? 1 : 0;
  return n;
}

void Rac::reset() {
  for (Slot& s : slots_) s = Slot{};
  hits_ = 0;
  fills_ = 0;
}

}  // namespace ascoma::mem
