// Durability-layer tests (ARCHITECTURE.md §15): the tagged binary codec,
// atomic checksummed record files and their quarantine path, the
// content-addressed ResultStore + manifest journal, job fingerprints, and
// the sweep runner's cache-hit / graceful-stop plumbing.

#include "store/store.hh"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "core/sweep_store.hh"
#include "obs/sink.hh"
#include "store/codec.hh"
#include "store/record_file.hh"
#include "store/shutdown.hh"

namespace ascoma::store {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("ascoma_store_test_" + tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

TEST(Codec, ScalarsRoundTrip) {
  Encoder e;
  e.u8(0xAB);
  e.u32(0xDEADBEEFu);
  e.u64(0x0123456789ABCDEFull);
  e.b(true);
  e.b(false);
  e.f64(0.25);
  e.str("hello");
  Decoder d(e.bytes().data(), e.bytes().size());
  EXPECT_EQ(d.u8(), 0xAB);
  EXPECT_EQ(d.u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(d.b());
  EXPECT_FALSE(d.b());
  EXPECT_EQ(d.f64(), 0.25);
  EXPECT_EQ(d.str(), "hello");
  EXPECT_TRUE(d.done());
}

TEST(Codec, SectionLengthCatchesDrift) {
  Encoder e;
  e.begin_section("sect");
  e.u32(7);
  e.u32(8);
  e.end_section();
  // A decoder that reads too little trips the section length check — the
  // runtime half of the encode/decode pairing rule.
  Decoder d(e.bytes().data(), e.bytes().size());
  d.begin_section("sect");
  d.u32();
  EXPECT_THROW(d.end_section(), CodecError);
}

TEST(Codec, SectionTagMismatchThrows) {
  Encoder e;
  e.begin_section("aaaa");
  e.end_section();
  Decoder d(e.bytes().data(), e.bytes().size());
  EXPECT_THROW(d.begin_section("bbbb"), CodecError);
}

TEST(RecordFile, RoundTripAndTornWriteDetection) {
  TempDir td("record");
  const std::string path = td.str() + "/r.result";
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
  write_record(path, payload);
  EXPECT_EQ(read_record(path), payload);
  // No abandoned temp file after a successful atomic write.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& p : fs::directory_iterator(td.str()))
    ++entries;
  EXPECT_EQ(entries, 1u);

  // Flip one payload byte: the checksum must reject the record.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    f.put('\x7F');
  }
  bool corrupt = false;
  EXPECT_FALSE(try_read_record(path, &corrupt).has_value());
  EXPECT_TRUE(corrupt);

  // Truncation (a torn write) must also be detected, not trusted.
  write_record(path, payload);
  fs::resize_file(path, fs::file_size(path) - 3);
  corrupt = false;
  EXPECT_FALSE(try_read_record(path, &corrupt).has_value());
  EXPECT_TRUE(corrupt);
}

TEST(ResultStore, SaveLoadAndQuarantine) {
  TempDir td("store");
  const std::vector<std::uint8_t> payload = {9, 9, 9};
  {
    ResultStore rs(td.str());
    EXPECT_TRUE(rs.report().clean());
    rs.save("aaaa", payload, 0);
    rs.save("bbbb", payload, 1);
  }
  // Corrupt one record on disk; reopening quarantines and reports it.
  {
    std::fstream f(td.str() + "/aaaa.result",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(28);
    f.put('\x00');
    f.put('\x01');
  }
  ResultStore rs(td.str());
  EXPECT_EQ(rs.report().records, 1u);
  EXPECT_EQ(rs.report().quarantined, 1u);
  EXPECT_FALSE(rs.report().clean());
  EXPECT_FALSE(rs.contains("aaaa"));
  EXPECT_TRUE(rs.contains("bbbb"));
  EXPECT_FALSE(rs.load("aaaa").has_value());
  ASSERT_TRUE(rs.load("bbbb").has_value());
  EXPECT_EQ(*rs.load("bbbb"), payload);
  EXPECT_TRUE(fs::exists(td.str() + "/aaaa.result.corrupt"));

  // verify() is the non-mutating census --store-verify exposes.
  const StoreReport v = ResultStore::verify(td.str());
  EXPECT_EQ(v.records, 1u);
  EXPECT_EQ(v.prior_corrupt, 1u);
  EXPECT_FALSE(v.clean());
}

TEST(ResultStore, ManifestAndCampaignRoundTrip) {
  TempDir td("manifest");
  const std::vector<std::string> argv = {"ascoma", "--workload", "fft",
                                         "--store", "a b\"c"};
  ResultStore::write_campaign(td.str(), argv);
  // A second write (the resume) must keep the original identity.
  ResultStore::write_campaign(td.str(), {"other"});
  const auto back = ResultStore::read_campaign(td.str());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, argv);

  ResultStore rs(td.str());
  rs.append_manifest("{\"sweep\":\"done\",\"job\":0}");
  std::ifstream in(rs.manifest_path());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2u);
}

TEST(ResultStore, ReadCampaignMissingOrMalformed) {
  TempDir td("badcampaign");
  EXPECT_FALSE(ResultStore::read_campaign(td.str()).has_value());
  std::ofstream(td.str() + "/sweep.manifest.jsonl") << "not json\n";
  EXPECT_FALSE(ResultStore::read_campaign(td.str()).has_value());
}

TEST(Fingerprint, StableAndSensitive) {
  core::SweepJob j;
  j.label = "ASCOMA(50%)";
  j.config.arch = ArchModel::kAsComa;
  j.config.memory_pressure = 0.5;
  j.workload = "fft";
  j.workload_scale = 0.2;

  const core::Fingerprint a = core::job_fingerprint(j);
  EXPECT_EQ(a, core::job_fingerprint(j));  // deterministic
  EXPECT_EQ(a.hex().size(), 32u);

  core::SweepJob k = j;
  k.config.memory_pressure = 0.7;
  EXPECT_FALSE(a == core::job_fingerprint(k));
  k = j;
  k.workload = "radix";
  EXPECT_FALSE(a == core::job_fingerprint(k));
  k = j;
  k.config.seed += 1;
  EXPECT_FALSE(a == core::job_fingerprint(k));
  // The non-owning observability pointers never change results and must not
  // change the fingerprint.
  k = j;
  obs::EventSink sink;
  k.config.sink = &sink;
  EXPECT_TRUE(a == core::job_fingerprint(k));
}

core::SweepJob tiny_job(const std::string& label) {
  core::SweepJob j;
  j.label = label;
  j.config.arch = ArchModel::kAsComa;
  j.config.memory_pressure = 0.5;
  j.workload = "fft";
  j.workload_scale = 0.2;
  return j;
}

TEST(DurableSweep, SecondRunIsServedFromTheStore) {
  TempDir td("sweep");
  core::SweepOptions opts;
  opts.threads = 2;
  opts.store_dir = td.str();

  const auto first = core::run_sweep({tiny_job("a"), tiny_job("b")}, opts);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_FALSE(first[0].timing.cached);
  EXPECT_FALSE(first[1].timing.cached);
  EXPECT_GT(first[0].timing.store.value(), 0u);

  obs::EventSink sink;
  opts.sink = &sink;
  const auto second = core::run_sweep({tiny_job("a"), tiny_job("b")}, opts);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_TRUE(second[0].timing.cached);
  EXPECT_TRUE(second[1].timing.cached);
  EXPECT_EQ(sink.count(obs::EventKind::kSweepCacheHit), 2u);

  // The cached result vector is exactly the computed one: canonical bytes
  // of every RunResult must match.
  for (std::size_t i = 0; i < first.size(); ++i) {
    Encoder ea, eb;
    core::encode_run_result(ea, first[i].result);
    core::encode_run_result(eb, second[i].result);
    EXPECT_EQ(ea.bytes(), eb.bytes()) << "job " << i;
  }

  // Manifest: one line per completion across both sweeps.
  std::ifstream in(td.str() + "/sweep.manifest.jsonl");
  std::string line;
  std::size_t done = 0, cached = 0;
  while (std::getline(in, line)) {
    if (line.find("\"sweep\":\"done\"") != std::string::npos) ++done;
    if (line.find("\"cached\":true") != std::string::npos) ++cached;
  }
  EXPECT_EQ(done, 4u);
  EXPECT_EQ(cached, 2u);
}

TEST(DurableSweep, CorruptRecordIsRecomputedAndRequarantined) {
  TempDir td("corrupt");
  core::SweepOptions opts;
  opts.threads = 1;
  opts.store_dir = td.str();
  const auto first = core::run_sweep({tiny_job("a")}, opts);
  ASSERT_EQ(first.size(), 1u);

  // Damage the one record: the next sweep must quarantine it, re-simulate,
  // and persist a fresh verified record.
  std::string victim;
  for (const auto& p : fs::directory_iterator(td.str()))
    if (p.path().extension() == ".result") victim = p.path().string();
  ASSERT_FALSE(victim.empty());
  fs::resize_file(victim, fs::file_size(victim) - 1);

  const auto second = core::run_sweep({tiny_job("a")}, opts);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_FALSE(second[0].timing.cached);
  EXPECT_TRUE(fs::exists(victim + ".corrupt"));
  EXPECT_TRUE(fs::exists(victim));  // recomputed record back in place

  const auto third = core::run_sweep({tiny_job("a")}, opts);
  EXPECT_TRUE(third[0].timing.cached);
}

TEST(DurableSweep, StopFlagDrainsInsteadOfStarting) {
  core::SweepOptions opts;
  opts.threads = 1;
  std::atomic<bool> stop{true};
  opts.stop = &stop;
  // Stop raised before the sweep: no job is claimed, results stay empty.
  const auto res = core::run_sweep({tiny_job("a"), tiny_job("b")}, opts);
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].result.stats.parallel_cycles, Cycle{0});
  EXPECT_EQ(res[1].result.stats.parallel_cycles, Cycle{0});
}

TEST(DurableSweep, StorelessSweepChargesZeroStoreTime) {
  // Zero-cost when off: without a store_dir no job touches the durability
  // layer, so the store wall-time attribution must stay exactly zero (the
  // sim-rate bench gate then covers the wall-clock side of the claim).
  core::SweepOptions opts;
  opts.threads = 1;
  const auto res = core::run_sweep({tiny_job("a")}, opts);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_FALSE(res[0].timing.cached);
  EXPECT_EQ(res[0].timing.store, selfprof::HostNs{0});
}

TEST(Shutdown, TestHookSetsAndClearsTheFlag) {
  set_shutdown_requested(0);
  EXPECT_FALSE(shutdown_requested());
  EXPECT_FALSE(shutdown_flag()->load());
  set_shutdown_requested(SIGTERM);
  EXPECT_TRUE(shutdown_requested());
  EXPECT_TRUE(shutdown_flag()->load());
  EXPECT_EQ(shutdown_signal(), SIGTERM);
  set_shutdown_requested(0);
  EXPECT_FALSE(shutdown_requested());
}

}  // namespace
}  // namespace ascoma::store
