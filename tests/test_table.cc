#include "common/table.hh"

#include <gtest/gtest.h>

#include <sstream>

namespace ascoma {
namespace {

TEST(Table, FormatsHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22    |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PadsShortRowsDropsExtras) {
  Table t({"a", "b"});
  t.add_row({"x"});
  t.add_row({"1", "2", "3"});
  const std::string s = t.to_string();
  EXPECT_EQ(s.find("3"), std::string::npos);  // extra cell dropped
  EXPECT_NE(s.find("| x | "), std::string::npos);
}

TEST(Table, ColumnWidthTracksWidestCell) {
  Table t({"h"});
  t.add_row({"wide-cell-content"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| wide-cell-content |"), std::string::npos);
  EXPECT_NE(s.find("| h                 |"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(1234.5, 1), "1234.5");
}

TEST(Table, PctFormatsFractions) {
  EXPECT_EQ(Table::pct(0.5), "50.0%");
  EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, PrintToStream) {
  Table t({"only"});
  t.add_row({"row"});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
  EXPECT_EQ(os.str(), t.to_string());
}

}  // namespace
}  // namespace ascoma
