// Latency-attribution profiler: histogram bucketing edge cases, the
// attribution-sums-to-end-to-end invariant on real runs, heat-map counts
// against the aggregated kernel statistics (exact even under event-buffer
// overflow), profile-dump round trips, regression detection in the diff
// gate, and the obs exporter escaping audit the profiler's labels rely on.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "obs/export.hh"
#include "obs/sink.hh"
#include "prof/diff.hh"
#include "prof/histogram.hh"
#include "prof/profiler.hh"
#include "report/report.hh"
#include "workload/synthetic.hh"

namespace ascoma::prof {
namespace {

// Same hot-remote-set shape the machine tests use: enough refetch reuse to
// cross the relocation threshold so upgrades/downgrades/backoff all fire.
workload::SyntheticWorkload hot_workload(std::uint32_t iterations = 6) {
  workload::SyntheticParams p;
  p.nodes = 4;
  p.home_pages = 32;
  p.remote_pages = 24;
  p.iterations = iterations;
  p.sweeps_per_iteration = 3;
  p.loads_per_page = 32;
  p.write_fraction = 0.05;
  p.compute_per_page = Cycle{5};
  return workload::SyntheticWorkload(p);
}

MachineConfig config(ArchModel arch, double pressure) {
  MachineConfig cfg;
  cfg.arch = arch;
  cfg.memory_pressure = pressure;
  return cfg;
}

// ---- histogram bucketing ---------------------------------------------------

TEST(LatencyHistogram, BucketOfEdgeValues) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3);
  EXPECT_EQ(LatencyHistogram::bucket_of((1ull << 63) - 1), 63);
  EXPECT_EQ(LatencyHistogram::bucket_of(1ull << 63), 64);
  EXPECT_EQ(LatencyHistogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            64);
}

TEST(LatencyHistogram, BucketUpperBounds) {
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(64),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(LatencyHistogram, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, RecordsZeroWithoutUnderflow) {
  LatencyHistogram h;
  h.record(0);
  h.record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.p50(), 0u);
}

TEST(LatencyHistogram, MaxValueLandsInTopBucketNotOverflow) {
  LatencyHistogram h;
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  h.record(big);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(h.max(), big);
  // percentile(1.0) clamps to the exact observed max, not the bucket bound.
  EXPECT_EQ(h.percentile(1.0), big);
}

TEST(LatencyHistogram, PercentileIsBucketUpperBoundClampedToMax) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(10);  // bucket 4, bound 15
  h.record(1000);                             // bucket 10, bound 1023
  EXPECT_EQ(h.p50(), 15u);
  EXPECT_EQ(h.p90(), 15u);
  // The top 1% is the single 1000-cycle sample: clamped to max, not 1023.
  EXPECT_EQ(h.percentile(1.0), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.sum(), 99u * 10u + 1000u);
}

TEST(LatencyHistogram, MergeAddsCountsAndExtrema) {
  LatencyHistogram a, b;
  a.record(2);
  a.record(100);
  b.record(1);
  b.record(50000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 50000u);
  EXPECT_EQ(a.sum(), 2u + 100u + 1u + 50000u);
}

// ---- attribution on real runs ----------------------------------------------

TEST(Profiler, AttributionSumsMatchEndToEnd) {
  auto wl = hot_workload();
  Profiler prof;
  MachineConfig cfg = config(ArchModel::kAsComa, 0.7);
  cfg.profiler = &prof;
  const core::RunResult r = core::simulate(cfg, wl);
  EXPECT_GT(r.cycles(), Cycle{0});
  EXPECT_GT(prof.accesses(), 0u);
  // Every access's recorded segments summed exactly to its measured latency.
  EXPECT_EQ(prof.attribution_mismatches(), 0u);
  // Consequently the totals balance too: all component cycles == all
  // end-to-end cycles.
  std::uint64_t component_total = 0;
  for (int c = 0; c < kNumComponents; ++c)
    component_total += prof.component_cycles(static_cast<Component>(c));
  EXPECT_EQ(component_total, prof.merged_end_to_end().sum());
}

TEST(Profiler, AttributionHoldsPerArchitecture) {
  auto wl = hot_workload(4);
  for (ArchModel arch : {ArchModel::kCcNuma, ArchModel::kScoma,
                         ArchModel::kRNuma, ArchModel::kVcNuma,
                         ArchModel::kAsComa}) {
    Profiler prof;
    MachineConfig cfg = config(arch, 0.6);
    cfg.profiler = &prof;
    core::simulate(cfg, wl);
    EXPECT_EQ(prof.attribution_mismatches(), 0u) << to_string(arch);
    EXPECT_GT(prof.accesses(), 0u) << to_string(arch);
  }
}

TEST(Profiler, AttachedProfilerDoesNotPerturbTheRun) {
  auto wl = hot_workload();
  const MachineConfig plain = config(ArchModel::kAsComa, 0.7);
  const core::RunResult a = core::simulate(plain, wl);
  Profiler prof;
  MachineConfig cfg = plain;
  cfg.profiler = &prof;
  const core::RunResult b = core::simulate(cfg, wl);
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_EQ(a.stats.totals.misses.total(), b.stats.totals.misses.total());
  EXPECT_EQ(a.stats.totals.kernel.upgrades, b.stats.totals.kernel.upgrades);
  EXPECT_EQ(a.stats.totals.time.total(), b.stats.totals.time.total());
}

// ---- heat map vs aggregated statistics -------------------------------------

// The per-page heat rows are folded from the event stream; their totals must
// reproduce the aggregated kernel statistics exactly (the same invariant the
// fault tests sweep), including when the sink's ring buffer overflows —
// observers run on every emit, before the capacity drop.
TEST(Profiler, HeatCountsMatchKernelStats) {
  auto wl = hot_workload();
  for (std::size_t capacity : {std::size_t{1} << 20, std::size_t{8}}) {
    obs::EventSink sink(capacity);
    Profiler prof;
    MachineConfig cfg = config(ArchModel::kAsComa, 0.8);
    cfg.sink = &sink;
    cfg.profiler = &prof;
    const core::RunResult r = core::simulate(cfg, wl);
    if (capacity == 8) {
      EXPECT_GT(sink.dropped(), 0u);
    }

    std::uint64_t upgrades = 0, downgrades = 0, suppressed = 0, faults = 0;
    for (const PageHeat& p : prof.page_heat()) {
      upgrades += p.upgrades;
      downgrades += p.downgrades;
      suppressed += p.suppressed;
      faults += p.faults;
    }
    const auto& k = r.stats.totals.kernel;
    EXPECT_EQ(upgrades, k.upgrades);
    EXPECT_EQ(downgrades, k.downgrades);
    EXPECT_EQ(suppressed, k.remap_suppressed);
    EXPECT_GT(faults, 0u);

    std::uint64_t raises = 0, drops = 0;
    for (const NodeHeat& n : prof.node_heat()) {
      raises += n.threshold_raises;
      drops += n.threshold_drops;
    }
    EXPECT_EQ(raises, k.threshold_raises);
    EXPECT_EQ(drops, k.threshold_drops);
  }
}

// ---- profile dump round trip -----------------------------------------------

TEST(Profiler, LatencyCsvRoundTripsThroughTheDiffParser) {
  auto wl = hot_workload(4);
  Profiler prof;
  MachineConfig cfg = config(ArchModel::kAsComa, 0.7);
  cfg.profiler = &prof;
  core::simulate(cfg, wl);

  std::ostringstream os;
  prof.write_latency_csv(os);
  std::vector<LatencyRow> rows;
  std::string error;
  ASSERT_TRUE(parse_latency_csv(os.str(), rows, error)) << error;
  ASSERT_FALSE(rows.empty());
  // The merged headline row leads and matches the merged histogram.
  EXPECT_EQ(rows.front().cls, "all");
  EXPECT_EQ(rows.front().component, "total");
  const LatencyHistogram all = prof.merged_end_to_end();
  EXPECT_EQ(rows.front().count, all.count());
  EXPECT_EQ(rows.front().sum, all.sum());
  EXPECT_EQ(rows.front().p99, all.p99());
}

TEST(Profiler, WriteProfileEmitsAllArtifacts) {
  auto wl = hot_workload(4);
  Profiler prof;
  MachineConfig cfg = config(ArchModel::kAsComa, 0.7);
  cfg.profiler = &prof;
  core::simulate(cfg, wl);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ascoma_prof_test_dump";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(prof.write_profile(dir.string()));
  for (const char* name : {"latency.csv", "latency.json", "heat.csv",
                           "heat.json", "summary.json"})
    EXPECT_TRUE(std::filesystem::exists(dir / name)) << name;
  std::filesystem::remove_all(dir);
}

// ---- regression gate -------------------------------------------------------

LatencyRow row(const std::string& cls, const std::string& component,
               std::uint64_t count, std::uint64_t mean, std::uint64_t p99) {
  LatencyRow r;
  r.cls = cls;
  r.component = component;
  r.count = count;
  r.sum = mean * count;
  r.p99 = p99;
  r.max = p99;
  return r;
}

TEST(ProfDiff, FlagsSeededP99Regression) {
  const std::vector<LatencyRow> base = {row("all", "total", 1000, 80, 200)};
  // +25% p99 (and +50 cycles absolute): both gates trip.
  const std::vector<LatencyRow> cand = {row("all", "total", 1000, 80, 250)};
  const DiffReport rep = diff_rows(base, cand, {});
  EXPECT_EQ(rep.regressions(), 1u);
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_EQ(rep.findings[0].kind, DiffFinding::Kind::kP99Regression);
  EXPECT_EQ(rep.findings[0].base_value, 200u);
  EXPECT_EQ(rep.findings[0].cand_value, 250u);
}

TEST(ProfDiff, SmallRelativeGrowthPasses) {
  const std::vector<LatencyRow> base = {row("all", "total", 1000, 80, 200)};
  const std::vector<LatencyRow> cand = {row("all", "total", 1000, 80, 210)};
  EXPECT_EQ(diff_rows(base, cand, {}).regressions(), 0u);  // +5% < 10% tol
}

TEST(ProfDiff, AbsoluteFloorShieldsTinyHistograms) {
  // 2 -> 4 cycles is +100% but only +2 absolute: under the 16-cycle floor.
  const std::vector<LatencyRow> base = {row("l1_hit", "l1", 5000, 2, 2)};
  const std::vector<LatencyRow> cand = {row("l1_hit", "l1", 5000, 4, 4)};
  EXPECT_EQ(diff_rows(base, cand, {}).regressions(), 0u);
}

TEST(ProfDiff, UnderMinCountRowsAreSkipped) {
  const std::vector<LatencyRow> base = {row("rac_hit", "total", 8, 50, 100)};
  const std::vector<LatencyRow> cand = {row("rac_hit", "total", 8, 500, 1000)};
  const DiffReport rep = diff_rows(base, cand, {});
  EXPECT_EQ(rep.regressions(), 0u);
  EXPECT_EQ(rep.rows_compared, 0u);
}

TEST(ProfDiff, MeanRegressionIsCaughtIndependently) {
  // p99 steady, mean up 50%: the mean gate alone must fire.
  const std::vector<LatencyRow> base = {row("all", "total", 1000, 100, 400)};
  const std::vector<LatencyRow> cand = {row("all", "total", 1000, 150, 400)};
  const DiffReport rep = diff_rows(base, cand, {});
  EXPECT_EQ(rep.regressions(), 1u);
  EXPECT_EQ(rep.findings[0].kind, DiffFinding::Kind::kMeanRegression);
}

TEST(ProfDiff, NewAndVanishedRowsAreInformational) {
  const std::vector<LatencyRow> base = {row("all", "total", 1000, 80, 200),
                                        row("scoma_hit", "dram", 500, 30, 60)};
  const std::vector<LatencyRow> cand = {row("all", "total", 1000, 80, 200),
                                        row("rac_hit", "rac", 500, 10, 20)};
  const DiffReport rep = diff_rows(base, cand, {});
  EXPECT_EQ(rep.regressions(), 0u);
  ASSERT_EQ(rep.findings.size(), 2u);
  EXPECT_FALSE(rep.findings[0].is_regression());
  EXPECT_FALSE(rep.findings[1].is_regression());
}

TEST(ProfDiff, EndToEndDirectoryComparisonDetectsRegression) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "ascoma_prof_diff_test";
  fs::remove_all(root);
  fs::create_directories(root / "base");
  fs::create_directories(root / "cand");
  const std::string header = Profiler::latency_csv_header();
  {
    std::ofstream os(root / "base" / "latency.csv");
    os << header << "\nall,total,1000,80000,10,60,120,200,400\n";
  }
  {
    std::ofstream os(root / "cand" / "latency.csv");
    os << header << "\nall,total,1000,80000,10,60,120,300,600\n";
  }
  const DiffReport rep = diff_profiles((root / "base").string(),
                                       (root / "cand").string(), {});
  EXPECT_TRUE(rep.ok()) << rep.error;
  EXPECT_EQ(rep.regressions(), 1u);

  const DiffReport missing =
      diff_profiles((root / "base").string(), (root / "nope").string(), {});
  EXPECT_FALSE(missing.ok());
  fs::remove_all(root);
}

TEST(ProfDiff, MalformedCsvIsRejected) {
  std::vector<LatencyRow> rows;
  std::string error;
  EXPECT_FALSE(parse_latency_csv("not,a,header\n1,2,3\n", rows, error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(parse_latency_csv(
      Profiler::latency_csv_header() + "\nall,total,1,2,3\n", rows, error));
  EXPECT_FALSE(error.empty());
}

// ---- report latency columns ------------------------------------------------

TEST(Report, CsvLatencyColumnsExtendTheBaseSchema) {
  const std::string base = report::csv_header();
  const std::string ext = report::csv_header(true);
  ASSERT_GT(ext.size(), base.size());
  EXPECT_EQ(ext.substr(0, base.size()), base);  // strict prefix
  EXPECT_EQ(ext.substr(base.size()), ",lat_min,lat_p50,lat_p99,lat_max");
  EXPECT_EQ(report::csv_header(false), base);
}

TEST(Report, CsvRowWithProfilerAppendsHistogramValues) {
  auto wl = hot_workload(4);
  Profiler prof;
  MachineConfig cfg = config(ArchModel::kAsComa, 0.7);
  cfg.profiler = &prof;
  const core::RunResult r = core::simulate(cfg, wl);
  const std::string plain = report::csv_row("synthetic", "ASCOMA", r);
  const std::string with = report::csv_row("synthetic", "ASCOMA", r, prof);
  ASSERT_GT(with.size(), plain.size());
  EXPECT_EQ(with.substr(0, plain.size()), plain);
  const LatencyHistogram all = prof.merged_end_to_end();
  std::ostringstream want;
  want << ',' << all.min() << ',' << all.p50() << ',' << all.p99() << ','
       << all.max();
  EXPECT_EQ(with.substr(plain.size()), want.str());
}

// ---- obs exporter escaping audit -------------------------------------------

TEST(ObsEscaping, JsonEscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape(std::string("a\nb")), "a\\nb");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(ObsEscaping, CsvFieldQuotesCommasQuotesAndNewlines) {
  EXPECT_EQ(obs::csv_field("plain"), "plain");
  EXPECT_EQ(obs::csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(obs::csv_field("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(obs::csv_field("a\nb"), "\"a\nb\"");
}

}  // namespace
}  // namespace ascoma::prof
