#include "vm/page_cache.hh"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hh"

namespace ascoma::vm {
namespace {

TEST(PageCache, AllocHandsOutDistinctFrames) {
  PageCache c(3);
  std::set<FrameId> seen;
  for (int i = 0; i < 3; ++i) {
    auto f = c.alloc();
    ASSERT_TRUE(f.has_value());
    EXPECT_TRUE(seen.insert(*f).second);
    EXPECT_LT(*f, 3u);
  }
  EXPECT_FALSE(c.alloc().has_value());  // drained
  EXPECT_EQ(c.free_frames(), 0u);
}

TEST(PageCache, AllocIsDeterministicLowestFirst) {
  PageCache c(3);
  EXPECT_EQ(*c.alloc(), 0u);
  EXPECT_EQ(*c.alloc(), 1u);
  EXPECT_EQ(*c.alloc(), 2u);
}

TEST(PageCache, ReleaseRecycles) {
  PageCache c(2);
  const FrameId a = *c.alloc();
  c.alloc();
  c.release(a);
  EXPECT_EQ(c.free_frames(), 1u);
  EXPECT_EQ(*c.alloc(), a);
}

TEST(PageCache, OverReleaseThrows) {
  PageCache c(1);
  const FrameId f = *c.alloc();
  c.release(f);
  EXPECT_THROW(c.release(f), ascoma::CheckFailure);
}

TEST(PageCache, ReleaseOutOfRangeThrows) {
  PageCache c(2);
  EXPECT_THROW(c.release(5), ascoma::CheckFailure);
}

TEST(PageCache, ActiveListAndRotation) {
  PageCache c(4);
  c.add_active(10);
  c.add_active(20);
  c.add_active(30);
  EXPECT_EQ(c.active_pages(), 3u);
  EXPECT_EQ(*c.rotate(), 10u);
  EXPECT_EQ(*c.rotate(), 20u);
  EXPECT_EQ(*c.rotate(), 30u);
  EXPECT_EQ(*c.rotate(), 10u);  // wraps (clock)
}

TEST(PageCache, RemoveActiveSkipsStaleClockEntries) {
  PageCache c(4);
  c.add_active(10);
  c.add_active(20);
  c.remove_active(10);
  EXPECT_EQ(c.active_pages(), 1u);
  EXPECT_FALSE(c.is_active(10));
  EXPECT_EQ(*c.rotate(), 20u);
  EXPECT_EQ(*c.rotate(), 20u);  // 10 never reappears
}

TEST(PageCache, RotateEmptyReturnsNothing) {
  PageCache c(4);
  EXPECT_FALSE(c.rotate().has_value());
  c.add_active(1);
  c.remove_active(1);
  EXPECT_FALSE(c.rotate().has_value());
}

TEST(PageCache, DoubleAddThrows) {
  PageCache c(2);
  c.add_active(5);
  EXPECT_THROW(c.add_active(5), ascoma::CheckFailure);
}

TEST(PageCache, RemoveInactiveThrows) {
  PageCache c(2);
  EXPECT_THROW(c.remove_active(5), ascoma::CheckFailure);
}

TEST(PageCache, ReAddAfterRemoveWorks) {
  PageCache c(2);
  c.add_active(5);
  c.remove_active(5);
  c.add_active(5);
  EXPECT_TRUE(c.is_active(5));
  EXPECT_EQ(*c.rotate(), 5u);
}

TEST(PageCache, ZeroCapacity) {
  PageCache c(0);
  EXPECT_EQ(c.capacity(), 0u);
  EXPECT_FALSE(c.alloc().has_value());
}

}  // namespace
}  // namespace ascoma::vm
