#include "vm/page_cache.hh"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hh"

namespace ascoma::vm {
namespace {

TEST(PageCache, AllocHandsOutDistinctFrames) {
  PageCache c(3);
  std::set<FrameId> seen;
  for (int i = 0; i < 3; ++i) {
    auto f = c.alloc();
    ASSERT_TRUE(f.has_value());
    EXPECT_TRUE(seen.insert(*f).second);
    EXPECT_LT(*f, FrameId{3});
  }
  EXPECT_FALSE(c.alloc().has_value());  // drained
  EXPECT_EQ(c.free_frames(), 0u);
}

TEST(PageCache, AllocIsDeterministicLowestFirst) {
  PageCache c(3);
  EXPECT_EQ(*c.alloc(), FrameId{0});
  EXPECT_EQ(*c.alloc(), FrameId{1});
  EXPECT_EQ(*c.alloc(), FrameId{2});
}

TEST(PageCache, ReleaseRecycles) {
  PageCache c(2);
  const FrameId a = *c.alloc();
  c.alloc();
  c.release(a);
  EXPECT_EQ(c.free_frames(), 1u);
  EXPECT_EQ(*c.alloc(), a);
}

TEST(PageCache, OverReleaseThrows) {
  PageCache c(1);
  const FrameId f = *c.alloc();
  c.release(f);
  EXPECT_THROW(c.release(f), ascoma::CheckFailure);
}

TEST(PageCache, ReleaseOutOfRangeThrows) {
  PageCache c(2);
  EXPECT_THROW(c.release(FrameId{5}), ascoma::CheckFailure);
}

TEST(PageCache, ActiveListAndRotation) {
  PageCache c(4);
  c.add_active(VPageId{10});
  c.add_active(VPageId{20});
  c.add_active(VPageId{30});
  EXPECT_EQ(c.active_pages(), 3u);
  EXPECT_EQ(*c.rotate(), VPageId{10});
  EXPECT_EQ(*c.rotate(), VPageId{20});
  EXPECT_EQ(*c.rotate(), VPageId{30});
  EXPECT_EQ(*c.rotate(), VPageId{10});  // wraps (clock)
}

TEST(PageCache, RemoveActiveSkipsStaleClockEntries) {
  PageCache c(4);
  c.add_active(VPageId{10});
  c.add_active(VPageId{20});
  c.remove_active(VPageId{10});
  EXPECT_EQ(c.active_pages(), 1u);
  EXPECT_FALSE(c.is_active(VPageId{10}));
  EXPECT_EQ(*c.rotate(), VPageId{20});
  EXPECT_EQ(*c.rotate(), VPageId{20});  // 10 never reappears
}

TEST(PageCache, RotateEmptyReturnsNothing) {
  PageCache c(4);
  EXPECT_FALSE(c.rotate().has_value());
  c.add_active(VPageId{1});
  c.remove_active(VPageId{1});
  EXPECT_FALSE(c.rotate().has_value());
}

TEST(PageCache, DoubleAddThrows) {
  PageCache c(2);
  c.add_active(VPageId{5});
  EXPECT_THROW(c.add_active(VPageId{5}), ascoma::CheckFailure);
}

TEST(PageCache, RemoveInactiveThrows) {
  PageCache c(2);
  EXPECT_THROW(c.remove_active(VPageId{5}), ascoma::CheckFailure);
}

TEST(PageCache, ReAddAfterRemoveWorks) {
  PageCache c(2);
  c.add_active(VPageId{5});
  c.remove_active(VPageId{5});
  c.add_active(VPageId{5});
  EXPECT_TRUE(c.is_active(VPageId{5}));
  EXPECT_EQ(*c.rotate(), VPageId{5});
}

TEST(PageCache, ZeroCapacity) {
  PageCache c(0);
  EXPECT_EQ(c.capacity(), 0u);
  EXPECT_FALSE(c.alloc().has_value());
}

}  // namespace
}  // namespace ascoma::vm
