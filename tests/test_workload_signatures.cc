// The reproduction's validity rests on each generator exhibiting the
// sharing signature the paper attributes its results to (Section 5's
// program-by-program analysis).  These tests measure those signatures
// directly from the generated streams and from instrumented runs.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/machine.hh"
#include "workload/workload.hh"

namespace ascoma::workload {
namespace {

std::vector<Op> drain(OpStream& s) {
  std::vector<Op> ops;
  for (Op op = s.next(); op.kind != OpKind::kEnd; op = s.next())
    ops.push_back(op);
  return ops;
}

constexpr std::uint32_t kPage = 4096;
constexpr std::uint32_t kLine = 32;

// "fft ... only access a small number of remote pages enough times to
// warrant remapping" — streamed sequentially, (almost) no block reuse.
TEST(Signature, FftStreamsRemoteBlocksWithoutReuseWithinAPass) {
  auto wl = make_workload("fft");
  const auto per = wl->pages_per_node();
  std::map<std::uint64_t, int> block_touches_this_pass;
  int max_reuse = 0;
  VPageId last_page = ascoma::kInvalidPage;
  for (const Op& op : drain(*wl->stream(2, 7))) {
    if (op.kind != OpKind::kLoad) continue;
    const VPageId page{op.arg / kPage};
    if (page.value() / per == 2) continue;  // local
    if (page != last_page) {
      // New remote page: within a transpose pass each page is visited once.
      block_touches_this_pass.clear();
      last_page = page;
    }
    const std::uint64_t block = op.arg / 128;
    max_reuse = std::max(max_reuse, ++block_touches_this_pass[block]);
  }
  // 4 lines per block: sequential streaming touches each block's lines
  // consecutively — never more than lines-per-block times.
  EXPECT_LE(max_reuse, 4);
}

// "In em3d ... most of the remote pages ever accessed are in the node's
// working set" — a fixed hot set, identical every iteration.
TEST(Signature, Em3dRemoteSetIsIdenticalAcrossIterations) {
  auto wl = make_workload("em3d");
  const auto per = wl->pages_per_node();
  // Split the stream at barriers; collect remote pages per remote phase.
  std::vector<std::set<VPageId>> phases(1);
  for (const Op& op : drain(*wl->stream(1, 7))) {
    if (op.kind == OpKind::kBarrier) {
      if (!phases.back().empty()) phases.emplace_back();
      continue;
    }
    if (op.kind != OpKind::kLoad && op.kind != OpKind::kStore) continue;
    const VPageId page{op.arg / kPage};
    if (page.value() / per != 1) phases.back().insert(page);
  }
  phases.erase(std::remove_if(phases.begin(), phases.end(),
                              [](const auto& s) { return s.empty(); }),
               phases.end());
  ASSERT_GE(phases.size(), 3u);
  for (std::size_t i = 1; i < phases.size(); ++i)
    EXPECT_EQ(phases[i], phases[0]) << "remote phase " << i << " differs";
  EXPECT_EQ(phases[0].size(), 160u);  // the declared hot-set size
}

// "lu ... every process uses each set of shared pages for only a short time
// before moving to another set" — a small moving window.
TEST(Signature, LuActiveRemoteSetIsOneWindowPerPhase) {
  auto wl = make_workload("lu");
  const auto per = wl->pages_per_node();
  std::set<VPageId> window;
  std::set<std::set<VPageId>> distinct_windows;
  for (const Op& op : drain(*wl->stream(1, 7))) {
    if (op.kind == OpKind::kBarrier) {
      if (!window.empty()) distinct_windows.insert(window);
      window.clear();
      continue;
    }
    if (op.kind != OpKind::kLoad) continue;
    const VPageId page{op.arg / kPage};
    if (page.value() / per != 1) window.insert(page);
  }
  // Every phase's remote set is at most one 48-page window.
  for (const auto& w : distinct_windows) EXPECT_LE(w.size(), 48u);
  // And the windows tile the remote space: many distinct ones.
  EXPECT_GE(distinct_windows.size(), 20u);
}

// "radix exhibits almost no spatial locality.  Every node accesses every
// page of shared data" — scatter addresses are near-uniform over pages.
TEST(Signature, RadixScatterIsNearUniform) {
  auto wl = make_workload("radix");
  std::map<VPageId, std::uint64_t> writes;
  for (const Op& op : drain(*wl->stream(0, 7))) {
    if (op.kind == OpKind::kStore) ++writes[VPageId{op.arg / kPage}];
  }
  ASSERT_EQ(writes.size(), wl->total_pages());
  std::uint64_t total = 0, max_w = 0;
  for (const auto& [page, n] : writes) {
    total += n;
    max_w = std::max(max_w, n);
  }
  const double mean = static_cast<double>(total) /
                      static_cast<double>(writes.size());
  EXPECT_LT(static_cast<double>(max_w), mean * 2.5);  // no hot spots
}

// "barnes exhibits very high spatial locality.  It accesses large dense
// regions of remote memory" — remote pages come in contiguous runs.
TEST(Signature, BarnesRemoteRegionsAreDense) {
  auto wl = make_workload("barnes");
  const auto per = wl->pages_per_node();
  std::set<VPageId> remote;
  for (const Op& op : drain(*wl->stream(0, 7))) {
    if (op.kind != OpKind::kLoad) continue;
    const VPageId page{op.arg / kPage};
    if (page.value() / per != 0) remote.insert(page);
  }
  // Count contiguous runs: dense regions mean few runs relative to pages.
  std::uint64_t runs = 0;
  VPageId prev = kInvalidPage;
  for (VPageId p : remote) {
    if (prev == kInvalidPage || p != prev + 1) ++runs;
    prev = p;
  }
  ASSERT_GT(remote.size(), 100u);
  EXPECT_LE(runs, remote.size() / 50);  // >=50 consecutive pages per run
}

// "ocean" — remote traffic is only the fixed boundary exchange with the two
// ring neighbours.
TEST(Signature, OceanRemotePagesAreNeighbourBoundaries) {
  auto wl = make_workload("ocean");
  const auto per = wl->pages_per_node();
  const std::uint32_t me = 3;
  for (const Op& op : drain(*wl->stream(me, 7))) {
    if (op.kind != OpKind::kLoad && op.kind != OpKind::kStore) continue;
    const VPageId page{op.arg / kPage};
    const auto owner = static_cast<std::uint32_t>(page.value() / per);
    if (owner == me) continue;
    EXPECT_TRUE(owner == (me + 1) % 8 || owner == (me + 7) % 8)
        << "page " << page << " owned by non-neighbour " << owner;
  }
}

// End-to-end signature: the ideal-pressure ordering of Table 5 must follow
// from the footprints (em3d and ocean high, radix lowest).
TEST(Signature, IdealPressureOrdering) {
  std::map<std::string, double> ideal;
  for (const std::string name : {"em3d", "ocean", "radix", "lu"}) {
    auto wl = make_workload(name, 0.25);
    MachineConfig cfg;
    cfg.arch = ArchModel::kCcNuma;
    cfg.memory_pressure = 0.5;
    const auto r = core::simulate(cfg, *wl);
    std::uint64_t max_remote = 0;
    for (const auto& n : r.per_node)
      max_remote = std::max(max_remote, n.remote_pages_touched);
    const double home = static_cast<double>(r.stats.home_pages_per_node);
    ideal[name] = home / (home + static_cast<double>(max_remote));
  }
  EXPECT_GT(ideal["ocean"], ideal["em3d"]);
  EXPECT_GT(ideal["em3d"], ideal["lu"]);
  EXPECT_GT(ideal["lu"], ideal["radix"]);
}

}  // namespace
}  // namespace ascoma::workload
