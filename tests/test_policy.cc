#include "arch/policy.hh"

#include <gtest/gtest.h>

#include "arch/ascoma.hh"
#include "arch/ccnuma.hh"
#include "arch/rnuma.hh"
#include "arch/scoma.hh"
#include "arch/vcnuma.hh"

namespace ascoma::arch {
namespace {

struct PolicyFixture {
  explicit PolicyFixture(std::uint32_t capacity = 8)
      : cache(capacity), period(cfg.daemon_period) {}

  PolicyEnv env(Cycle now = Cycle{0}) {
    return PolicyEnv{cfg, NodeId{0}, cache, kernel, period, now};
  }

  MachineConfig cfg;
  vm::PageCache cache;
  KernelStats kernel;
  Cycle period;
};

TEST(MakePolicy, ProducesRequestedModel) {
  MachineConfig cfg;
  for (ArchModel m : {ArchModel::kCcNuma, ArchModel::kScoma, ArchModel::kRNuma,
                      ArchModel::kVcNuma, ArchModel::kAsComa}) {
    cfg.arch = m;
    EXPECT_EQ(make_policy(cfg)->model(), m);
  }
}

// ---- CC-NUMA ----------------------------------------------------------------

TEST(CcNuma, NeverRelocatesNeverRunsDaemon) {
  PolicyFixture f;
  CcNumaPolicy p(f.cfg);
  auto e = f.env();
  EXPECT_EQ(p.initial_mode(e), PageMode::kNuma);
  EXPECT_FALSE(p.should_relocate(e, VPageId{0}, 1'000'000));
  EXPECT_FALSE(p.runs_daemon());
  EXPECT_FALSE(p.relocation_enabled());
}

// ---- S-COMA -----------------------------------------------------------------

TEST(Scoma, AlwaysMapsScomaEvenWithEmptyPool) {
  PolicyFixture f(0);
  ScomaPolicy p(f.cfg);
  auto e = f.env();
  EXPECT_EQ(p.initial_mode(e), PageMode::kScoma);
  EXPECT_FALSE(p.should_relocate(e, VPageId{0}, 1'000'000));
  EXPECT_TRUE(p.runs_daemon());
}

// ---- R-NUMA -----------------------------------------------------------------

TEST(RNuma, FixedThresholdRelocation) {
  PolicyFixture f;
  RNumaPolicy p(f.cfg);
  auto e = f.env();
  EXPECT_EQ(p.initial_mode(e), PageMode::kNuma);
  EXPECT_FALSE(p.should_relocate(e, VPageId{0}, f.cfg.refetch_threshold - 1));
  EXPECT_TRUE(p.should_relocate(e, VPageId{0}, f.cfg.refetch_threshold));
  EXPECT_TRUE(p.force_eviction_on_upgrade());
}

TEST(RNuma, IgnoresDaemonFailures) {
  PolicyFixture f;
  RNumaPolicy p(f.cfg);
  auto e = f.env();
  vm::DaemonResult fail;
  fail.met_target = false;
  for (int i = 0; i < 10; ++i) p.on_daemon_result(e, fail);
  EXPECT_EQ(p.threshold(), f.cfg.refetch_threshold);  // no back-off
  EXPECT_EQ(f.kernel.threshold_raises, 0u);
}

// ---- VC-NUMA ----------------------------------------------------------------

TEST(VcNuma, RaisesThresholdWhenEvictionsDoNotEarnBreakEven) {
  PolicyFixture f(4);  // small cache: evaluation after 8 replacements
  VcNumaPolicy p(f.cfg);
  auto e = f.env();
  // 8 replacements of pages that never supplied a hit.
  for (VPageId v{0}; v.value() < 8; ++v) p.on_replacement(e, VPageId{100 + v.value()});
  EXPECT_EQ(p.evaluations(), 1u);
  EXPECT_EQ(p.threshold(), f.cfg.refetch_threshold + f.cfg.threshold_increment);
  EXPECT_EQ(f.kernel.threshold_raises, 1u);
}

TEST(VcNuma, KeepsThresholdWhenEvictionsEarned) {
  PolicyFixture f(4);
  VcNumaPolicy p(f.cfg);
  auto e = f.env();
  for (VPageId v{0}; v.value() < 8; ++v) {
    for (std::uint32_t h = 0; h < f.cfg.vcnuma_break_even; ++h)
      p.on_page_cache_hit(VPageId{200 + v.value()});
    p.on_replacement(e, VPageId{200 + v.value()});
  }
  EXPECT_EQ(p.evaluations(), 1u);
  EXPECT_EQ(p.threshold(), f.cfg.refetch_threshold);
}

TEST(VcNuma, RecoversThresholdAfterGoodWindow) {
  PolicyFixture f(4);
  VcNumaPolicy p(f.cfg);
  auto e = f.env();
  for (VPageId v{0}; v.value() < 8; ++v) p.on_replacement(e, v);  // bad window
  const auto raised = p.threshold();
  for (VPageId v{0}; v.value() < 8; ++v) {
    for (std::uint32_t h = 0; h < f.cfg.vcnuma_break_even; ++h)
      p.on_page_cache_hit(VPageId{300 + v.value()});
    p.on_replacement(e, VPageId{300 + v.value()});  // good window
  }
  EXPECT_LT(p.threshold(), raised);
  EXPECT_EQ(f.kernel.threshold_drops, 1u);
}

TEST(VcNuma, EvaluationCadenceScalesWithCacheSize) {
  PolicyFixture f(100);
  VcNumaPolicy p(f.cfg);
  auto e = f.env();
  for (std::uint64_t i = 0; i < 199; ++i)
    p.on_replacement(e, VPageId{1000 + i});
  EXPECT_EQ(p.evaluations(), 0u);  // needs 2 * capacity = 200
  p.on_replacement(e, VPageId{5000});
  EXPECT_EQ(p.evaluations(), 1u);
}

// ---- AS-COMA ----------------------------------------------------------------

TEST(AsComa, ScomaFirstWhilePoolLasts) {
  PolicyFixture f(2);
  AsComaPolicy p(f.cfg);
  auto e = f.env();
  EXPECT_EQ(p.initial_mode(e), PageMode::kScoma);
  f.cache.alloc();
  f.cache.alloc();  // pool drained
  EXPECT_EQ(p.initial_mode(e), PageMode::kNuma);
}

TEST(AsComa, DaemonFailureRaisesThresholdAndStretchesPeriod) {
  PolicyFixture f;
  AsComaPolicy p(f.cfg);
  auto e = f.env(Cycle{0});
  vm::DaemonResult fail;
  fail.met_target = false;
  const Cycle period0 = f.period;
  p.on_daemon_result(e, fail);
  EXPECT_EQ(p.threshold(), f.cfg.refetch_threshold + f.cfg.threshold_increment);
  EXPECT_GT(f.period, period0);
  EXPECT_TRUE(p.thrashing());
  EXPECT_EQ(f.kernel.threshold_raises, 1u);
}

TEST(AsComa, BackOffIsRateLimitedPerDaemonPeriod) {
  PolicyFixture f;
  AsComaPolicy p(f.cfg);
  vm::DaemonResult fail;
  fail.met_target = false;
  auto e = f.env(Cycle{0});
  p.on_daemon_result(e, fail);
  const auto t1 = p.threshold();
  EXPECT_GT(t1, f.cfg.refetch_threshold);
  // Burst of thrash signals within the same period: one escalation only.
  for (int i = 0; i < 50; ++i) p.on_daemon_result(e, fail);
  EXPECT_EQ(p.threshold(), t1);
  // After a period elapses, the next signal escalates again.
  auto later = f.env(f.period + Cycle{1});
  p.on_daemon_result(later, fail);
  EXPECT_GT(p.threshold(), t1);
}

TEST(AsComa, SuppressionMarksThrashingWithoutEscalating) {
  PolicyFixture f;
  AsComaPolicy p(f.cfg);
  auto e = f.env(Cycle{0});
  p.on_remap_suppressed(e);
  EXPECT_TRUE(p.thrashing());
  EXPECT_EQ(p.threshold(), f.cfg.refetch_threshold);  // unchanged
  EXPECT_TRUE(p.relocation_enabled());
  // Thrashing stops S-COMA-first allocation even with frames free.
  EXPECT_EQ(p.initial_mode(e), PageMode::kNuma);
}

TEST(AsComa, ExtremePressureDisablesRelocationEntirely) {
  PolicyFixture f;
  f.cfg.threshold_max = f.cfg.refetch_threshold + 2 * f.cfg.threshold_increment;
  AsComaPolicy p(f.cfg);
  vm::DaemonResult fail;
  fail.met_target = false;
  Cycle now{0};
  for (int i = 0; i < 10 && p.relocation_enabled(); ++i) {
    auto e = f.env(now);
    p.on_daemon_result(e, fail);
    now += f.period + Cycle{1};
  }
  EXPECT_FALSE(p.relocation_enabled());
  auto e = f.env(now);
  EXPECT_FALSE(p.should_relocate(e, VPageId{0}, 1'000'000));
}

TEST(AsComa, ThrashingStopsScomaFirstAllocation) {
  PolicyFixture f(8);
  AsComaPolicy p(f.cfg);
  auto e = f.env(Cycle{0});
  vm::DaemonResult fail;
  fail.met_target = false;
  p.on_daemon_result(e, fail);
  // Pool still has frames, but the node has concluded memory is tight.
  EXPECT_EQ(p.initial_mode(e), PageMode::kNuma);
}

TEST(AsComa, RecoversWhenColdPagesReappear) {
  PolicyFixture f;
  AsComaPolicy p(f.cfg);
  vm::DaemonResult fail;
  fail.met_target = false;
  Cycle now{0};
  for (int i = 0; i < 3; ++i) {
    auto e = f.env(now);
    p.on_daemon_result(e, fail);
    now += f.period + Cycle{1};
  }
  const auto raised = p.threshold();
  EXPECT_GT(raised, f.cfg.refetch_threshold);

  vm::DaemonResult ok;
  ok.met_target = true;
  ok.reclaimed = 10;
  ok.cold_pages_seen = 20;
  for (int i = 0; i < 20 && p.threshold() > f.cfg.refetch_threshold; ++i) {
    auto e = f.env(now);
    p.on_daemon_result(e, ok);
    now += f.period + Cycle{1};
  }
  EXPECT_EQ(p.threshold(), f.cfg.refetch_threshold);
  EXPECT_FALSE(p.thrashing());
  EXPECT_GT(f.kernel.threshold_drops, 0u);
}

TEST(AsComa, DoesNotForceEvictions) {
  MachineConfig cfg;
  AsComaPolicy p(cfg);
  EXPECT_FALSE(p.force_eviction_on_upgrade());
}

}  // namespace
}  // namespace ascoma::arch
