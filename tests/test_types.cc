// Compile-time and runtime coverage for the strong dimension types
// (src/common/types.hh, ARCHITECTURE.md §13).  The compile-time half uses
// static_assert over detection probes: every *forbidden* operation must fail
// substitution, every allowed one must succeed — so a loosened operator set
// breaks this file's build, not just a runtime expectation.

#include "common/types.hh"

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "common/config.hh"

namespace ascoma {
namespace {

// ---- detection probes -------------------------------------------------------

template <class A, class B, class = void>
struct CanAdd : std::false_type {};
template <class A, class B>
struct CanAdd<A, B, std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct CanSub : std::false_type {};
template <class A, class B>
struct CanSub<A, B, std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct CanMul : std::false_type {};
template <class A, class B>
struct CanMul<A, B, std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct CanDiv : std::false_type {};
template <class A, class B>
struct CanDiv<A, B, std::void_t<decltype(std::declval<A>() / std::declval<B>())>>
    : std::true_type {};

template <class A, class B, class = void>
struct CanEq : std::false_type {};
template <class A, class B>
struct CanEq<A, B, std::void_t<decltype(std::declval<A>() == std::declval<B>())>>
    : std::true_type {};

template <class A, class = void>
struct CanPreInc : std::false_type {};
template <class A>
struct CanPreInc<A, std::void_t<decltype(++std::declval<A&>())>>
    : std::true_type {};

// ---- construction is explicit, conversion out is named ----------------------

static_assert(std::is_constructible_v<Cycle, std::uint64_t>);
static_assert(!std::is_convertible_v<std::uint64_t, Cycle>,
              "bare integers must not silently become cycles");
static_assert(!std::is_convertible_v<Cycle, std::uint64_t>,
              "cycles must not silently decay to bare integers");
static_assert(!std::is_convertible_v<int, NodeId>);
static_assert(!std::is_convertible_v<PageId, std::uint64_t>);

// Distinct dimensions never interconvert, even with identical reps.
static_assert(!std::is_constructible_v<PageId, BlockId>);
static_assert(!std::is_constructible_v<Cycle, ByteCount>);
static_assert(!std::is_assignable_v<Cycle&, ByteCount>);

// ---- quantities: dimension-correct arithmetic only --------------------------

static_assert(CanAdd<Cycle, Cycle>::value);
static_assert(CanSub<Cycle, Cycle>::value);
static_assert(CanMul<Cycle, int>::value);
static_assert(CanMul<int, Cycle>::value);
static_assert(CanDiv<Cycle, int>::value);
static_assert(std::is_same_v<decltype(Cycle{6} / Cycle{2}), Cycle::rep>,
              "a ratio of like quantities is dimensionless");
static_assert(std::is_same_v<decltype(Cycle{6} % Cycle{4}), Cycle>);

static_assert(!CanAdd<Cycle, ByteCount>::value,
              "cross-dimension sums must not compile");
static_assert(!CanAdd<Cycle, int>::value,
              "quantity + bare integer must not compile");
static_assert(!CanMul<Cycle, Cycle>::value,
              "cycles^2 is not a modelled dimension");
static_assert(!CanEq<Cycle, std::uint64_t>::value,
              "quantities compare only against their own dimension");
static_assert(!CanPreInc<Cycle>::value,
              "quantities are measures, not counters");

// ---- ids: naming, ordering, offsetting — no arithmetic ----------------------

static_assert(CanPreInc<NodeId>::value, "dense id loops stay ergonomic");
static_assert(CanAdd<PageId, int>::value, "id + count = the i-th successor");
static_assert(!CanAdd<PageId, PageId>::value, "id + id has no meaning");
static_assert(!CanSub<PageId, PageId>::value);
static_assert(!CanSub<PageId, int>::value);
static_assert(!CanMul<NodeId, int>::value);
static_assert(!CanEq<NodeId, int>::value);

// Aliases share one strong type per dimension.
static_assert(std::is_same_v<Cycle, Cycles>);
static_assert(std::is_same_v<VPageId, PageId>);
static_assert(std::is_same_v<LineId, LineAddr>);

// Address algebra: exactly Addr + ByteCount -> Addr, Addr - Addr -> ByteCount.
static_assert(std::is_same_v<decltype(Addr{4096} + ByteCount{32}), Addr>);
static_assert(std::is_same_v<decltype(Addr{4128} - Addr{4096}), ByteCount>);
static_assert(!CanAdd<Addr, Addr>::value);
static_assert(!CanAdd<Addr, Cycle>::value);

// Zero-overhead claim: the wrappers stay trivially copyable register types.
static_assert(std::is_trivially_copyable_v<Cycle>);
static_assert(std::is_trivially_copyable_v<PageId>);
static_assert(sizeof(Cycle) == sizeof(std::uint64_t));
static_assert(sizeof(NodeId) == sizeof(std::uint32_t));

// Everything above is constexpr-evaluable.
static_assert((Cycle{2} + Cycle{3}).value() == 5);
static_assert((Addr{4096} + ByteCount{32}).value() == 4128);
static_assert(PageId{7} < PageId{8});

// ---- runtime behaviour ------------------------------------------------------

TEST(StrongQuantity, ArithmeticMatchesRawIntegers) {
  Cycle c{100};
  c += Cycle{20};
  c -= Cycle{10};
  EXPECT_EQ(c, Cycle{110});
  EXPECT_EQ(c * 2, Cycle{220});
  EXPECT_EQ(3 * Cycle{5}, Cycle{15});
  EXPECT_EQ(Cycle{220} / 2, Cycle{110});
  EXPECT_EQ(Cycle{220} / Cycle{110}, 2u);
  EXPECT_EQ(Cycle{7} % Cycle{4}, Cycle{3});
  EXPECT_EQ(Cycles::max().value(),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(StrongId, OrderingOffsetsAndSentinels) {
  NodeId n{3};
  ++n;
  EXPECT_EQ(n, NodeId{4});
  EXPECT_EQ(n + 2, NodeId{6});
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_EQ(kInvalidNode, NodeId::invalid());
  EXPECT_EQ(kInvalidPage.value(),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(kNeverCycle, Cycles::max());
}

TEST(StrongTypes, StreamFormattingPrintsRawValue) {
  // The obs/prof exporters format ids and quantities straight into CSV/JSON
  // columns; the wrappers must print exactly like the integers they replace.
  std::ostringstream os;
  os << Cycle{1234} << "," << NodeId{7} << "," << VPageId{42} << ","
     << ByteCount{4096};
  EXPECT_EQ(os.str(), "1234,7,42,4096");
}

TEST(StrongTypes, HashDropsIntoUnorderedContainers) {
  std::unordered_map<VPageId, int> seen;
  seen[VPageId{10}] = 1;
  seen[VPageId{20}] = 2;
  EXPECT_EQ(seen.at(VPageId{10}), 1);
  EXPECT_EQ(seen.count(VPageId{30}), 0u);
}

template <class V, class I, class = void>
struct CanIndex : std::false_type {};
template <class V, class I>
struct CanIndex<V, I,
                std::void_t<decltype(std::declval<V&>()[std::declval<I>()])>>
    : std::true_type {};

TEST(IdVector, TypedIndexingMatchesRaw) {
  IdVector<NodeId, int> table(4, 0);
  table[NodeId{2}] = 7;
  EXPECT_EQ(table[NodeId{2}], 7);
  EXPECT_EQ(table[std::size_t{2}], 7);  // dimension-free loops still work
  static_assert(CanIndex<IdVector<NodeId, int>, NodeId>::value);
  static_assert(!CanIndex<IdVector<NodeId, int>, FrameId>::value,
                "indexing a per-node table with a FrameId must not compile");
}

TEST(NamedConversions, AddressDecomposition) {
  MachineConfig cfg;  // 4 KiB pages, 128 B blocks, 32 B lines
  const Addr a{3 * 4096 + 5 * 128 + 2 * 32 + 7};
  EXPECT_EQ(cfg.page_of(a), PageId{3});
  EXPECT_EQ(cfg.block_of(a), BlockId{3u * 32 + 5});
  EXPECT_EQ(cfg.page_base(PageId{3}), Addr{3u * 4096});
  EXPECT_EQ(cfg.block_of_line(cfg.line_of(a)), cfg.block_of(a));
  EXPECT_EQ(cfg.page_of(cfg.page_base(PageId{9})), PageId{9});
}

}  // namespace
}  // namespace ascoma
