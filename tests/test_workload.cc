#include "workload/workload.hh"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/splash.hh"

namespace ascoma::workload {
namespace {

std::vector<Op> drain(OpStream& s) {
  std::vector<Op> ops;
  for (Op op = s.next(); op.kind != OpKind::kEnd; op = s.next())
    ops.push_back(op);
  return ops;
}

TEST(WorkloadFactory, KnowsAllSixPrograms) {
  EXPECT_EQ(workload_names().size(), 6u);
  for (const auto& name : workload_names()) {
    auto wl = make_workload(name);
    ASSERT_NE(wl, nullptr) << name;
    EXPECT_EQ(wl->name(), name);
  }
  EXPECT_EQ(make_workload("unknown"), nullptr);
}

TEST(WorkloadFactory, PaperNodeCounts) {
  EXPECT_EQ(make_workload("lu")->nodes(), 4u);  // paper: lu on 4 nodes
  for (const auto& name : {"barnes", "em3d", "fft", "ocean", "radix"})
    EXPECT_EQ(make_workload(name)->nodes(), 8u) << name;
}

TEST(Workload, ContiguousHomeLayout) {
  auto wl = make_workload("em3d");
  const auto per = wl->pages_per_node();
  for (std::uint32_t n = 0; n < wl->nodes(); ++n) {
    EXPECT_EQ(wl->home_of(VPageId{n * per}), NodeId{n});
    EXPECT_EQ(wl->home_of(VPageId{(n + 1) * per - 1}), NodeId{n});
  }
}

TEST(Workload, StreamsAreDeterministic) {
  for (const auto& name : workload_names()) {
    auto wl = make_workload(name, 0.25);
    auto a = drain(*wl->stream(1, 42));
    auto b = drain(*wl->stream(1, 42));
    ASSERT_EQ(a.size(), b.size()) << name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].kind, b[i].kind) << name << " op " << i;
      ASSERT_EQ(a[i].arg, b[i].arg) << name << " op " << i;
    }
  }
}

TEST(Workload, SeedChangesRandomizedStreams) {
  auto wl = make_workload("radix", 0.25);
  auto a = drain(*wl->stream(0, 1));
  auto b = drain(*wl->stream(0, 2));
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].arg != b[i].arg;
  EXPECT_TRUE(differs);
}

TEST(Workload, AddressesStayInSharedSpace) {
  for (const auto& name : workload_names()) {
    auto wl = make_workload(name, 0.25);
    const Addr limit{wl->total_pages() * wl->page_bytes().value()};
    for (std::uint32_t p = 0; p < wl->nodes(); ++p) {
      for (const Op& op : drain(*wl->stream(p, 7))) {
        if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore) {
          ASSERT_LT(op.arg, limit.value()) << name;
        }
      }
    }
  }
}

TEST(Workload, AllProcessesAgreeOnBarrierCount) {
  for (const auto& name : workload_names()) {
    auto wl = make_workload(name, 0.25);
    std::set<std::uint64_t> counts;
    for (std::uint32_t p = 0; p < wl->nodes(); ++p) {
      std::uint64_t barriers = 0;
      for (const Op& op : drain(*wl->stream(p, 7)))
        if (op.kind == OpKind::kBarrier) ++barriers;
      counts.insert(barriers);
    }
    EXPECT_EQ(counts.size(), 1u) << name << " has asymmetric barriers";
    EXPECT_GT(*counts.begin(), 0u) << name;
  }
}

TEST(Workload, LocksAreBalanced) {
  for (const auto& name : workload_names()) {
    auto wl = make_workload(name, 0.25);
    for (std::uint32_t p = 0; p < wl->nodes(); ++p) {
      std::map<std::uint64_t, int> held;
      for (const Op& op : drain(*wl->stream(p, 7))) {
        if (op.kind == OpKind::kLock) {
          ASSERT_EQ(held[op.arg], 0) << name << " double lock";
          held[op.arg] = 1;
        } else if (op.kind == OpKind::kUnlock) {
          ASSERT_EQ(held[op.arg], 1) << name << " unlock without lock";
          held[op.arg] = 0;
        }
      }
      for (const auto& [id, h] : held)
        ASSERT_EQ(h, 0) << name << " lock " << id << " left held";
    }
  }
}

TEST(Workload, EveryProcessTouchesRemotePages) {
  for (const auto& name : workload_names()) {
    auto wl = make_workload(name, 0.25);
    const auto per = wl->pages_per_node();
    for (std::uint32_t p = 0; p < wl->nodes(); ++p) {
      bool remote = false;
      for (const Op& op : drain(*wl->stream(p, 7))) {
        if (op.kind != OpKind::kLoad && op.kind != OpKind::kStore) continue;
        const VPageId page{op.arg / wl->page_bytes().value()};
        if (page.value() / per != p) {
          remote = true;
          break;
        }
      }
      EXPECT_TRUE(remote) << name << " proc " << p;
    }
  }
}

TEST(Workload, RadixTouchesEveryPage) {
  auto wl = make_workload("radix");
  std::set<VPageId> touched;
  for (const Op& op : drain(*wl->stream(0, 7))) {
    if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore)
      touched.insert(VPageId{op.arg / wl->page_bytes().value()});
  }
  // "Every node accesses every page of shared data at some time."
  EXPECT_EQ(touched.size(), wl->total_pages());
}

TEST(Workload, OceanRemoteSetIsSmall) {
  auto wl = make_workload("ocean", 0.5);
  const auto per = wl->pages_per_node();
  std::set<VPageId> remote;
  for (const Op& op : drain(*wl->stream(3, 7))) {
    if (op.kind != OpKind::kLoad && op.kind != OpKind::kStore) continue;
    const VPageId page{op.arg / wl->page_bytes().value()};
    if (page.value() / per != 3) remote.insert(page);
  }
  // Only boundary pages with the two ring neighbours.
  EXPECT_LE(remote.size(), 64u);
  EXPECT_GT(remote.size(), 0u);
}

TEST(Workload, ScaleShrinksStreams) {
  auto big = make_workload("em3d", 1.0);
  auto small = make_workload("em3d", 0.2);
  const auto nb = drain(*big->stream(0, 7)).size();
  const auto ns = drain(*small->stream(0, 7)).size();
  EXPECT_LT(ns, nb);
  EXPECT_GT(ns, 0u);
}

TEST(StreamBuilder, CoalescesComputeAndPrivate) {
  StreamBuilder b(ByteCount{4096}, ByteCount{32});
  b.compute(Cycle{10});
  b.compute(Cycle{20});
  b.private_ops(3);
  b.private_ops(4);
  b.load(VPageId{0}, 0);
  const auto ops = b.take();
  ASSERT_EQ(ops.size(), 4u);  // compute, private, load, end
  EXPECT_EQ(ops[0].kind, OpKind::kCompute);
  EXPECT_EQ(ops[0].arg, 30u);
  EXPECT_EQ(ops[1].kind, OpKind::kPrivate);
  EXPECT_EQ(ops[1].arg, 7u);
  EXPECT_EQ(ops[3].kind, OpKind::kEnd);
}

TEST(StreamBuilder, LineWrapsWithinPage) {
  StreamBuilder b(ByteCount{4096}, ByteCount{32});
  b.load(VPageId{2}, 130);  // 130 % 128 = line 2 of page 2
  const auto ops = b.take();
  EXPECT_EQ(ops[0].arg, 2u * 4096 + 2 * 32);
}

TEST(VectorStream, ReturnsEndForever) {
  VectorStream s({{OpKind::kCompute, 5}, {OpKind::kEnd, 0}});
  EXPECT_EQ(s.next().kind, OpKind::kCompute);
  EXPECT_EQ(s.next().kind, OpKind::kEnd);
  EXPECT_EQ(s.next().kind, OpKind::kEnd);
}

}  // namespace
}  // namespace ascoma::workload
