#include "trace/trace.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/check.hh"
#include "workload/synthetic.hh"

namespace ascoma::trace {
namespace {

std::vector<Op> drain(workload::OpStream& s) {
  std::vector<Op> ops;
  for (Op op = s.next(); op.kind != OpKind::kEnd; op = s.next())
    ops.push_back(op);
  return ops;
}

workload::SyntheticWorkload tiny_workload() {
  workload::SyntheticParams p;
  p.nodes = 2;
  p.home_pages = 8;
  p.remote_pages = 4;
  p.iterations = 2;
  p.locks = 2;
  return workload::SyntheticWorkload(p);
}

struct TempFile {
  TempFile() {
    path = ::testing::TempDir() + "/ascoma_trace_test_" +
           std::to_string(counter++) + ".bin";
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
  static int counter;
};
int TempFile::counter = 0;

TEST(Trace, RoundTripPreservesStreams) {
  TempFile f;
  auto wl = tiny_workload();
  const std::uint64_t written = record(wl, 42, f.path);
  EXPECT_GT(written, 0u);

  TraceWorkload replay(f.path);
  EXPECT_EQ(replay.nodes(), wl.nodes());
  EXPECT_EQ(replay.total_pages(), wl.total_pages());
  EXPECT_EQ(replay.page_bytes(), wl.page_bytes());
  EXPECT_EQ(replay.total_ops(), written);

  for (std::uint32_t p = 0; p < wl.nodes(); ++p) {
    const auto orig = drain(*wl.stream(p, 42));
    const auto back = drain(*replay.stream(p, 999));  // seed irrelevant
    ASSERT_EQ(orig.size(), back.size());
    for (std::size_t i = 0; i < orig.size(); ++i) {
      ASSERT_EQ(orig[i].kind, back[i].kind);
      ASSERT_EQ(orig[i].arg, back[i].arg);
    }
  }
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW(TraceWorkload("/nonexistent/path/trace.bin"),
               ascoma::CheckFailure);
}

TEST(Trace, BadMagicRejected) {
  TempFile f;
  std::ofstream os(f.path, std::ios::binary);
  os << "NOPE and some garbage bytes";
  os.close();
  EXPECT_THROW(TraceWorkload{f.path}, ascoma::CheckFailure);
}

TEST(Trace, TruncatedFileRejected) {
  TempFile f;
  auto wl = tiny_workload();
  record(wl, 42, f.path);
  // Truncate to half.
  std::ifstream is(f.path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(is)), {});
  is.close();
  std::ofstream os(f.path, std::ios::binary | std::ios::trunc);
  os.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  os.close();
  EXPECT_THROW(TraceWorkload{f.path}, ascoma::CheckFailure);
}

TEST(Trace, RecordToUnwritablePathThrows) {
  auto wl = tiny_workload();
  EXPECT_THROW(record(wl, 1, "/nonexistent/dir/trace.bin"),
               ascoma::CheckFailure);
}

TEST(Trace, HomeLayoutSurvivesReplay) {
  TempFile f;
  auto wl = tiny_workload();
  record(wl, 42, f.path);
  TraceWorkload replay(f.path);
  for (VPageId p{0}; p.value() < wl.total_pages(); ++p)
    EXPECT_EQ(replay.home_of(p), wl.home_of(p));
}

}  // namespace
}  // namespace ascoma::trace
