// Host-side self-profiler tests (ARCHITECTURE.md §14): timer-tree shape and
// attribution under a deterministic fake clock, the disabled/no-op paths,
// the BENCH_simspeed.json schema round trip, the ascoma_simspeed_diff
// comparison semantics behind the tool's 0/1/2 exit-code contract, and the
// sweep runner's timing / progress / straggler telemetry.

#include "selfprof/collector.hh"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "obs/sink.hh"
#include "selfprof/host.hh"
#include "selfprof/simspeed.hh"

namespace ascoma::selfprof {
namespace {

/// Manually-advanced clock: now() returns the current value without side
/// effects, so every scope's elapsed time is exactly what the test advanced.
class ManualClock final : public HostClock {
 public:
  HostNs now() override { return t_; }
  void advance(std::uint64_t ns) { t_ += HostNs{ns}; }

 private:
  HostNs t_{0};
};

/// Scripted clock: now() replays a fixed value sequence (sticky on the last
/// entry), making multi-call consumers like run_sweep deterministic.
class ScriptedClock final : public HostClock {
 public:
  explicit ScriptedClock(std::vector<std::uint64_t> values)
      : values_(std::move(values)) {}
  HostNs now() override {
    const std::size_t i = pos_ < values_.size() ? pos_++ : values_.size() - 1;
    return HostNs{values_[i]};
  }

 private:
  std::vector<std::uint64_t> values_;
  std::size_t pos_ = 0;
};

bool tree_has(const Collector& col, HostSite site, int parent) {
  for (const TimerNode& n : col.nodes())
    if (n.site == site && n.parent == parent) return true;
  return false;
}

int node_index(const Collector& col, HostSite site) {
  for (std::size_t i = 0; i < col.nodes().size(); ++i)
    if (col.nodes()[i].site == site) return static_cast<int>(i);
  return -1;
}

TEST(SelfProf, ToStringCoversAllSites) {
  for (int s = 0; s < kNumHostSites; ++s) {
    const char* name = to_string(static_cast<HostSite>(s));
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::string(name), "");
  }
}

TEST(SelfProf, TreeShapeAndAttribution) {
  if (!runtime_enabled()) GTEST_SKIP() << "selfprof disabled";
  ManualClock clk;
  Collector col(&clk);
  {
    const ScopedInstall install(&col);
    {
      const SelfScope proto(HostSite::kProtoAccess);
      clk.advance(10);
      {
        const SelfScope dir(HostSite::kDirLookup);
        clk.advance(5);
      }
    }
    {
      const SelfScope proto(HostSite::kProtoAccess);
      clk.advance(3);
    }
    {
      const SelfScope net(HostSite::kNetDeliver);
      clk.advance(7);
    }
  }
  // Root covers the whole installed region.
  EXPECT_EQ(col.wall(), HostNs{25});
  EXPECT_EQ(col.nodes()[0].site, HostSite::kRun);
  EXPECT_EQ(col.nodes()[0].count, 1u);
  // Same site re-entered under the same parent reuses its node.
  EXPECT_EQ(col.count(HostSite::kProtoAccess), 2u);
  EXPECT_EQ(col.total(HostSite::kProtoAccess), HostNs{18});
  // The directory lookup nests under the protocol access, not the root.
  EXPECT_TRUE(tree_has(col, HostSite::kDirLookup,
                       node_index(col, HostSite::kProtoAccess)));
  EXPECT_EQ(col.total(HostSite::kDirLookup), HostNs{5});
  EXPECT_EQ(col.total(HostSite::kNetDeliver), HostNs{7});
  // Self time excludes children.
  EXPECT_EQ(col.self_time(node_index(col, HostSite::kProtoAccess)),
            HostNs{13});
  // Attribution invariant: children sum within every parent.
  EXPECT_TRUE(col.children_within_parent());
}

TEST(SelfProf, SameSiteUnderDifferentParentsGetsDistinctNodes) {
  if (!runtime_enabled()) GTEST_SKIP() << "selfprof disabled";
  ManualClock clk;
  Collector col(&clk);
  {
    const ScopedInstall install(&col);
    {
      const SelfScope kernel(HostSite::kVmKernel);
      const SelfScope walk(HostSite::kTableWalk);
      clk.advance(4);
    }
    {
      const SelfScope walk(HostSite::kTableWalk);
      clk.advance(2);
    }
  }
  // One table-walk node under the kernel path, one under the root.
  EXPECT_TRUE(tree_has(col, HostSite::kTableWalk,
                       node_index(col, HostSite::kVmKernel)));
  EXPECT_TRUE(tree_has(col, HostSite::kTableWalk, 0));
  EXPECT_EQ(col.count(HostSite::kTableWalk), 2u);
  EXPECT_EQ(col.total(HostSite::kTableWalk), HostNs{6});
  EXPECT_TRUE(col.children_within_parent());
}

TEST(SelfProf, NoCollectorScopesAreNoOps) {
  EXPECT_EQ(current(), nullptr);
  {
    const SelfScope s(HostSite::kProtoAccess);
    EXPECT_EQ(current(), nullptr);
  }
  // Installing a null collector is equally inert.
  const ScopedInstall install(nullptr);
  EXPECT_EQ(current(), nullptr);
}

TEST(SelfProf, UninstallRestoresPreviousCollector) {
  if (!runtime_enabled()) GTEST_SKIP() << "selfprof disabled";
  ManualClock clk;
  Collector outer(&clk);
  Collector inner(&clk);
  {
    const ScopedInstall a(&outer);
    EXPECT_EQ(current(), &outer);
    {
      const ScopedInstall b(&inner);
      EXPECT_EQ(current(), &inner);
    }
    EXPECT_EQ(current(), &outer);
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(SelfProf, JsonAndCsvDumps) {
  if (!runtime_enabled()) GTEST_SKIP() << "selfprof disabled";
  ManualClock clk;
  Collector col(&clk);
  {
    const ScopedInstall install(&col);
    const SelfScope s(HostSite::kSchedPick);
    clk.advance(3);
  }
  col.set_meta("em3d", "ASCOMA", 0.7);
  col.set_sim(Cycle{1000}, 50);
  std::ostringstream js;
  col.write_json(js);
  EXPECT_NE(js.str().find("\"schema\":\"ascoma.selfprof/1\""),
            std::string::npos);
  EXPECT_NE(js.str().find("\"workload\":\"em3d\""), std::string::npos);
  EXPECT_NE(js.str().find("\"sched_pick\""), std::string::npos);
  std::ostringstream cs;
  col.write_csv(cs);
  EXPECT_EQ(cs.str().substr(0, Collector::csv_header().size()),
            Collector::csv_header());

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ascoma_selfprof_test";
  std::filesystem::remove_all(dir);
  EXPECT_TRUE(col.write_dir(dir.string()));
  EXPECT_TRUE(std::filesystem::exists(dir / "selfprof.json"));
  EXPECT_TRUE(std::filesystem::exists(dir / "selfprof.csv"));
  std::filesystem::remove_all(dir);
}

TEST(SelfProfHost, AllocCounterAndPeakRss) {
  EXPECT_GT(peak_rss_bytes(), 0u);
  if (!alloc_hook_active()) GTEST_SKIP() << "alloc hook compiled out";
  // A plain new-expression here could legally be elided at -O2; the direct
  // operator-new call cannot, so it reliably reaches the counting hook.
  const std::uint64_t before = thread_alloc_count();
  void* p = ::operator new(64);
  const std::uint64_t after = thread_alloc_count();
  ::operator delete(p);
  EXPECT_GT(after, before);
}

// ---- BENCH_simspeed.json schema ---------------------------------------------

SimspeedDoc sample_doc() {
  SimspeedDoc doc;
  doc.bench = "table1_overhead";
  SimspeedRow a;
  a.label = "ASCOMA(70%)";
  a.workload = "em3d";
  a.arch = "ASCOMA";
  a.cycles = 1'000'000;
  a.accesses = 80'000;
  a.wall_ns = 200'000'000;  // 200 ms
  a.peak_rss_bytes = 16 << 20;
  a.allocs = 1000;
  a.store_ns = 12'345;
  SimspeedRow b = a;
  b.label = "CCNUMA";
  b.arch = "CCNUMA";
  b.cycles = 1'600'000;
  doc.rows = {a, b};
  return doc;
}

TEST(Simspeed, WriteParseRoundTrip) {
  const SimspeedDoc doc = sample_doc();
  std::ostringstream os;
  write_simspeed(os, doc);
  EXPECT_NE(os.str().find("\"schema\":\"ascoma.simspeed/1\""),
            std::string::npos);

  SimspeedDoc back;
  std::string error;
  ASSERT_TRUE(parse_simspeed(os.str(), back, error)) << error;
  EXPECT_EQ(back.bench, doc.bench);
  ASSERT_EQ(back.rows.size(), doc.rows.size());
  for (std::size_t i = 0; i < doc.rows.size(); ++i) {
    EXPECT_EQ(back.rows[i].label, doc.rows[i].label);
    EXPECT_EQ(back.rows[i].workload, doc.rows[i].workload);
    EXPECT_EQ(back.rows[i].arch, doc.rows[i].arch);
    EXPECT_EQ(back.rows[i].cycles, doc.rows[i].cycles);
    EXPECT_EQ(back.rows[i].accesses, doc.rows[i].accesses);
    EXPECT_EQ(back.rows[i].wall_ns, doc.rows[i].wall_ns);
    EXPECT_EQ(back.rows[i].peak_rss_bytes, doc.rows[i].peak_rss_bytes);
    EXPECT_EQ(back.rows[i].allocs, doc.rows[i].allocs);
    EXPECT_EQ(back.rows[i].store_ns, doc.rows[i].store_ns);
  }
}

TEST(Simspeed, EscapedStringsRoundTrip) {
  SimspeedDoc doc = sample_doc();
  doc.bench = "quote\"back\\slash";
  doc.rows[0].label = "line\nbreak\ttab";
  std::ostringstream os;
  write_simspeed(os, doc);
  SimspeedDoc back;
  std::string error;
  ASSERT_TRUE(parse_simspeed(os.str(), back, error)) << error;
  EXPECT_EQ(back.bench, doc.bench);
  EXPECT_EQ(back.rows[0].label, doc.rows[0].label);
}

TEST(Simspeed, ParseRejectsGarbage) {
  SimspeedDoc doc;
  std::string error;
  EXPECT_FALSE(parse_simspeed("garbage{", doc, error));
  EXPECT_NE(error, "");
  EXPECT_FALSE(parse_simspeed("{\"schema\":\"ascoma.simspeed/1\"", doc,
                              error));
}

// ---- ascoma_simspeed_diff semantics (exit 0 / 1 / 2 in the tool) ------------

TEST(SimspeedDiff, IdenticalDocsPass) {
  const SimspeedDoc doc = sample_doc();
  const SpeedDiffReport rep = diff_simspeed(doc, doc, {});
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.regressions(), 0u);  // -> tool exit 0
  EXPECT_EQ(rep.rows_compared, 2u);
}

TEST(SimspeedDiff, RateDropRegresses) {
  const SimspeedDoc base = sample_doc();
  SimspeedDoc cand = base;
  cand.rows[0].wall_ns *= 2;  // sim-rate halves: beyond the 25% tolerance
  const SpeedDiffReport rep = diff_simspeed(base, cand, {});
  EXPECT_TRUE(rep.ok());
  ASSERT_EQ(rep.regressions(), 1u);  // -> tool exit 1
  const SpeedFinding* f = nullptr;
  for (const SpeedFinding& x : rep.findings)
    if (x.is_regression()) f = &x;
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind, SpeedFinding::Kind::kRateRegression);
  EXPECT_EQ(f->label, "ASCOMA(70%)");
  EXPECT_NEAR(f->ratio, 0.5, 1e-9);
}

TEST(SimspeedDiff, RateGrowthNeverFails) {
  const SimspeedDoc base = sample_doc();
  SimspeedDoc cand = base;
  cand.rows[0].wall_ns /= 10;  // 10x faster
  const SpeedDiffReport rep = diff_simspeed(base, cand, {});
  EXPECT_EQ(rep.regressions(), 0u);
}

TEST(SimspeedDiff, ShortRowsAreSkippedAsNoise) {
  SimspeedDoc base = sample_doc();
  base.rows[0].wall_ns = 1'000'000;  // 1 ms: below the 50 ms floor
  SimspeedDoc cand = base;
  cand.rows[0].wall_ns = 10'000'000;  // 10x slower but still sub-threshold
  const SpeedDiffReport rep = diff_simspeed(base, cand, {});
  EXPECT_EQ(rep.regressions(), 0u);
}

TEST(SimspeedDiff, RssAndAllocGrowthRegress) {
  const SimspeedDoc base = sample_doc();
  SimspeedDoc cand = base;
  cand.rows[0].peak_rss_bytes *= 2;  // +100% > 50% tolerance
  cand.rows[1].allocs *= 2;          // +100% > 25% tolerance
  const SpeedDiffReport rep = diff_simspeed(base, cand, {});
  EXPECT_EQ(rep.regressions(), 2u);
  bool saw_rss = false, saw_allocs = false;
  for (const SpeedFinding& f : rep.findings) {
    saw_rss |= f.kind == SpeedFinding::Kind::kRssRegression;
    saw_allocs |= f.kind == SpeedFinding::Kind::kAllocRegression;
  }
  EXPECT_TRUE(saw_rss);
  EXPECT_TRUE(saw_allocs);
}

TEST(SimspeedDiff, CyclesChangeIsInformationalOnly) {
  const SimspeedDoc base = sample_doc();
  SimspeedDoc cand = base;
  cand.rows[0].cycles += 12345;
  const SpeedDiffReport rep = diff_simspeed(base, cand, {});
  EXPECT_EQ(rep.regressions(), 0u);
  bool saw = false;
  for (const SpeedFinding& f : rep.findings)
    saw |= f.kind == SpeedFinding::Kind::kCyclesChanged;
  EXPECT_TRUE(saw);
}

TEST(SimspeedDiff, VanishedAndAppearedRowsAreReported) {
  const SimspeedDoc base = sample_doc();
  SimspeedDoc cand = base;
  cand.rows[0].label = "renamed";  // old key vanishes, new key appears
  const SpeedDiffReport rep = diff_simspeed(base, cand, {});
  EXPECT_EQ(rep.regressions(), 0u);
  EXPECT_EQ(rep.rows_compared, 1u);
  bool vanished = false, appeared = false;
  for (const SpeedFinding& f : rep.findings) {
    vanished |= f.kind == SpeedFinding::Kind::kRowVanished;
    appeared |= f.kind == SpeedFinding::Kind::kRowAppeared;
  }
  EXPECT_TRUE(vanished);
  EXPECT_TRUE(appeared);
}

TEST(SimspeedDiff, UnreadableFileFailsTheGate) {
  const SpeedDiffReport rep = diff_simspeed_files(
      "/nonexistent/base.json", "/nonexistent/cand.json", {});
  EXPECT_FALSE(rep.ok());  // -> tool exit 2
  EXPECT_NE(rep.error, "");
}

TEST(SimspeedDiff, FileRoundTrip) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ascoma_simspeed_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "base.json").string();
  {
    std::ofstream os(path);
    write_simspeed(os, sample_doc());
  }
  const SpeedDiffReport rep = diff_simspeed_files(path, path, {});
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.regressions(), 0u);
  EXPECT_EQ(rep.rows_compared, 2u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ascoma::selfprof

// ---- sweep telemetry --------------------------------------------------------

namespace ascoma::core {
namespace {

std::vector<SweepJob> tiny_jobs(std::size_t n) {
  std::vector<SweepJob> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    SweepJob j;
    j.config.arch = ArchModel::kAsComa;
    j.config.memory_pressure = 0.5;
    j.workload = "fft";
    j.workload_scale = 0.2;
    j.label = "job" + std::to_string(i);
    jobs.push_back(j);
  }
  return jobs;
}

TEST(SweepTelemetry, RecordsWallTimeAndRss) {
  const auto res = run_sweep(tiny_jobs(2), 1);
  ASSERT_EQ(res.size(), 2u);
  for (const SweepResult& r : res) {
    EXPECT_GT(r.timing.wall.value(), 0u);
    EXPECT_GT(r.timing.peak_rss_bytes, 0u);
    EXPECT_FALSE(r.timing.straggler);  // legacy overload disables the check
    EXPECT_GT(r.accesses(), 0u);
    EXPECT_GT(r.sim_rate_hz(), 0.0);
    if (selfprof::alloc_hook_active()) {
      EXPECT_GT(r.timing.allocs, 0u);
    }
    EXPECT_EQ(r.selfprof, nullptr);  // legacy overload never collects
  }
}

TEST(SweepTelemetry, CollectAttachesPerJobCollectors) {
  if (!selfprof::runtime_enabled())
    GTEST_SKIP() << "selfprof disabled";
  SweepOptions opts;
  opts.threads = 2;
  opts.collect = true;
  const auto res = run_sweep(tiny_jobs(2), opts);
  ASSERT_EQ(res.size(), 2u);
  for (const SweepResult& r : res) {
    ASSERT_NE(r.selfprof, nullptr);
    EXPECT_EQ(r.selfprof->sim_cycles(),
              r.result.stats.parallel_cycles);
    EXPECT_EQ(r.selfprof->accesses(), r.accesses());
    EXPECT_GT(r.selfprof->wall().value(), 0u);
    EXPECT_GT(r.selfprof->count(selfprof::HostSite::kProtoAccess), 0u);
    EXPECT_TRUE(r.selfprof->children_within_parent());
  }
}

TEST(SweepTelemetry, StragglerFlaggedAgainstMedian) {
  // Scripted clock: with one worker and no progress thread the sweep reads
  // the clock exactly once up front and twice per job, so the job walls are
  // 10, 10 and 80 ns -> job 2 exceeds 3x the 10 ns median.
  selfprof::ScriptedClock clk({0, 0, 10, 10, 20, 20, 100});
  obs::EventSink sink;
  SweepOptions opts;
  opts.threads = 1;
  opts.clock = &clk;
  opts.sink = &sink;
  const auto res = run_sweep(tiny_jobs(3), opts);
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].timing.wall, selfprof::HostNs{10});
  EXPECT_EQ(res[1].timing.wall, selfprof::HostNs{10});
  EXPECT_EQ(res[2].timing.wall, selfprof::HostNs{80});
  EXPECT_FALSE(res[0].timing.straggler);
  EXPECT_FALSE(res[1].timing.straggler);
  EXPECT_TRUE(res[2].timing.straggler);
  EXPECT_EQ(sink.count(obs::EventKind::kSweepStraggler), 1u);
}

TEST(SweepTelemetry, ProgressLineFormat) {
  const std::string line =
      progress_line(3, 10, selfprof::HostNs{2'000'000'000}, Cycle{500});
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"sweep\":\"progress\""), std::string::npos);
  // `seq` follows the line tag so pollers can spot a re-read (default 0).
  EXPECT_NE(line.find("\"sweep\":\"progress\",\"seq\":0,"), std::string::npos);
  EXPECT_NE(line.find("\"done\":3"), std::string::npos);
  EXPECT_NE(line.find("\"total\":10"), std::string::npos);
  EXPECT_NE(line.find("\"cached\":0"), std::string::npos);
  EXPECT_NE(line.find("\"wall_ms\":2000"), std::string::npos);
  EXPECT_NE(line.find("\"sim_cycles\":500"), std::string::npos);
  EXPECT_NE(line.find("\"sim_rate_hz\":250"), std::string::npos);
  // Mean-job ETA: 2 s / 3 done * 7 remaining = 4666 ms.
  EXPECT_NE(line.find("\"eta_ms\":4666"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const std::string hit_line =
      progress_line(3, 10, selfprof::HostNs{2'000'000'000}, Cycle{500}, 2);
  EXPECT_NE(hit_line.find("\"cached\":2"), std::string::npos);

  const std::string seq_line =
      progress_line(3, 10, selfprof::HostNs{2'000'000'000}, Cycle{500}, 2, 41);
  EXPECT_NE(seq_line.find("\"seq\":41"), std::string::npos);
}

TEST(SweepTelemetry, ProgressHeartbeatAlwaysEndsComplete) {
  std::ostringstream out;
  SweepOptions opts;
  opts.threads = 2;
  opts.progress = true;
  opts.progress_interval_ms = 1;
  opts.progress_out = &out;
  const auto res = run_sweep(tiny_jobs(2), opts);
  ASSERT_EQ(res.size(), 2u);
  const std::string text = out.str();
  ASSERT_NE(text, "");
  // The final heartbeat (emitted after the pool joins) reports completion.
  const std::size_t last = text.rfind("{\"sweep\"");
  ASSERT_NE(last, std::string::npos);
  EXPECT_NE(text.find("\"done\":2,\"total\":2", last), std::string::npos);
}

}  // namespace
}  // namespace ascoma::core
