#!/usr/bin/env bash
# Bit-identity regression gate: the default deterministic run must produce a
# CSV byte-identical to the committed baseline.  Any change to simulated
# behaviour — protocol, timing, policy — shows up here; refresh the baseline
# (and justify the diff in the PR) only when behaviour is *supposed* to move.
#
# Usage: golden_default_run.sh <ascoma-binary> <baseline-csv>
set -euo pipefail

bin="$1"
baseline="$2"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$bin" --workload em3d --arch all --pressure 30,70 --scale 0.1 \
  --seed 42 --threads 1 --csv "$tmp/run.csv" > /dev/null

if ! diff -u "$baseline" "$tmp/run.csv"; then
  echo "golden_default_run: output diverged from $baseline" >&2
  exit 1
fi
echo "golden_default_run: bit-identical to $(basename "$baseline")"
