// Property-based sweeps: every (architecture x memory pressure) point must
// satisfy the machine's structural invariants on a workload with writes,
// locks, and a hot remote set.  gtest TEST_P drives the grid.

#include <gtest/gtest.h>

#include <tuple>

#include "core/machine.hh"
#include "workload/synthetic.hh"

namespace ascoma::core {
namespace {

workload::SyntheticWorkload property_workload() {
  workload::SyntheticParams p;
  p.nodes = 4;
  p.home_pages = 24;
  p.remote_pages = 20;
  p.iterations = 4;
  p.sweeps_per_iteration = 2;
  p.loads_per_page = 32;
  p.write_fraction = 0.15;
  p.random_fraction = 0.1;
  p.locks = 4;
  return workload::SyntheticWorkload(p);
}

using Point = std::tuple<ArchModel, double>;

std::string point_name(const ::testing::TestParamInfo<Point>& info) {
  return std::string(to_string(std::get<0>(info.param))) + "_" +
         std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
}

class ArchPressureProperty : public ::testing::TestWithParam<Point> {};

TEST_P(ArchPressureProperty, InvariantBattery) {
  const auto [arch, pressure] = GetParam();
  MachineConfig cfg;
  cfg.arch = arch;
  cfg.memory_pressure = pressure;
  cfg.check_invariants = true;  // audit() runs at end of run()

  auto wl = property_workload();
  Machine m(cfg, wl);
  const RunResult r = m.run();

  // P1: progress — the run completed with nonzero time and every access
  // accounted for.
  EXPECT_GT(r.cycles(), Cycle{0});
  for (const NodeStats& n : r.per_node) {
    EXPECT_EQ(n.shared_loads + n.shared_stores,
              n.l1_hits + n.misses.total());
  }

  // P2: the makespan equals the busiest node's accounted time.
  Cycle max_total{0};
  for (const NodeStats& n : r.per_node)
    max_total = std::max(max_total, n.time.total());
  EXPECT_EQ(max_total, r.stats.parallel_cycles);

  // P3: frame conservation — free + active S-COMA pages == capacity.
  for (NodeId n{0}; n.value() < r.stats.nodes; ++n) {
    const auto capacity = m.page_cache(n).capacity();
    EXPECT_EQ(m.page_cache(n).free_frames() + m.page_cache(n).active_pages(),
              capacity);
    EXPECT_EQ(m.page_table(n).scoma_pages(), m.page_cache(n).active_pages());
  }

  // P4: CC-NUMA never uses the page cache; others may.
  if (arch == ArchModel::kCcNuma) {
    EXPECT_EQ(r.stats.totals.misses[MissSource::kScoma], 0u);
    EXPECT_EQ(r.stats.totals.kernel.scoma_allocs, 0u);
  }

  // P5: upgrades and downgrades are hybrid-only.
  if (arch == ArchModel::kCcNuma || arch == ArchModel::kScoma) {
    EXPECT_EQ(r.stats.totals.kernel.upgrades, 0u);
  }

  // P6: miss sources are consistent with the architecture.
  if (arch == ArchModel::kScoma) {
    // Pure S-COMA has no CC-NUMA pages, hence no RAC hits on remote data.
    EXPECT_EQ(r.stats.totals.misses[MissSource::kRac], 0u);
  }

  // P7: kernel activity counters are self-consistent.
  const KernelStats& k = r.stats.totals.kernel;
  EXPECT_EQ(k.scoma_allocs + k.numa_allocs, k.page_faults);
  EXPECT_GE(k.daemon_pages_scanned, k.daemon_pages_reclaimed);
  EXPECT_GE(k.relocation_interrupts, k.upgrades);

  // P8: determinism — a second identical machine reproduces the run.
  auto wl2 = property_workload();
  const RunResult r2 = simulate(cfg, wl2);
  EXPECT_EQ(r2.cycles(), r.cycles());
  EXPECT_EQ(r2.stats.totals.misses.total(), r.stats.totals.misses.total());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ArchPressureProperty,
    ::testing::Combine(
        ::testing::Values(ArchModel::kCcNuma, ArchModel::kScoma,
                          ArchModel::kRNuma, ArchModel::kVcNuma,
                          ArchModel::kAsComa),
        ::testing::Values(0.15, 0.5, 0.8, 0.93)),
    point_name);

// Latency-ordering property: across the grid, the simulator must respect
// the Table 4 hierarchy (L1 < RAC < local < remote) in its realized average
// shared-memory stall per miss.
class LatencyOrdering : public ::testing::TestWithParam<double> {};

TEST_P(LatencyOrdering, RemoteHeavyConfigsStallMore) {
  const double pressure = GetParam();
  auto wl = property_workload();

  MachineConfig lo;
  lo.arch = ArchModel::kScoma;
  lo.memory_pressure = 0.15;  // everything replicated locally
  MachineConfig hi;
  hi.arch = ArchModel::kCcNuma;
  hi.memory_pressure = pressure;  // remote traffic stays remote

  const RunResult a = simulate(lo, wl);
  const RunResult b = simulate(hi, wl);
  const double stall_a =
      static_cast<double>(a.stats.totals.time[TimeBucket::kUserShared].value());
  const double stall_b =
      static_cast<double>(b.stats.totals.time[TimeBucket::kUserShared].value());
  EXPECT_LT(stall_a, stall_b);
}

INSTANTIATE_TEST_SUITE_P(Pressures, LatencyOrdering,
                         ::testing::Values(0.2, 0.5, 0.9));

// The same invariant battery on SMP nodes (2 processors per node) — the
// sibling-snoop paths must preserve every structural property.
class SmpProperty : public ::testing::TestWithParam<Point> {};

TEST_P(SmpProperty, InvariantBattery) {
  const auto [arch, pressure] = GetParam();
  workload::SyntheticParams p;
  p.nodes = 4;
  p.procs_per_node = 2;
  p.home_pages = 24;
  p.remote_pages = 16;
  p.iterations = 3;
  p.loads_per_page = 16;
  p.write_fraction = 0.2;
  p.locks = 4;
  workload::SyntheticWorkload wl(p);

  MachineConfig cfg;
  cfg.arch = arch;
  cfg.memory_pressure = pressure;
  Machine m(cfg, wl);
  const RunResult r = m.run();  // audit() runs at completion

  EXPECT_GT(r.cycles(), Cycle{0});
  EXPECT_EQ(r.per_node.size(), 8u);
  for (const NodeStats& n : r.per_node) {
    EXPECT_EQ(n.shared_loads + n.shared_stores,
              n.l1_hits + n.misses.total());
  }
  for (NodeId n{0}; n.value() < 4; ++n) {
    EXPECT_EQ(m.page_cache(n).free_frames() + m.page_cache(n).active_pages(),
              m.page_cache(n).capacity());
  }
  // Determinism under SMP interleaving.
  const RunResult r2 = simulate(cfg, wl);
  EXPECT_EQ(r2.cycles(), r.cycles());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SmpProperty,
    ::testing::Combine(::testing::Values(ArchModel::kCcNuma,
                                         ArchModel::kScoma,
                                         ArchModel::kAsComa),
                       ::testing::Values(0.2, 0.85)),
    point_name);

}  // namespace
}  // namespace ascoma::core
