#include "vm/pageout_daemon.hh"

#include <gtest/gtest.h>

#include <vector>

#include "vm/page_cache.hh"
#include "vm/page_table.hh"

namespace ascoma::vm {
namespace {

// Test handler that performs the minimal bookkeeping a real eviction does.
class TestEvictor : public EvictionHandler {
 public:
  TestEvictor(PageCache* cache, PageTable* pt) : cache_(cache), pt_(pt) {}
  bool evict(VPageId page) override {
    evicted.push_back(page);
    const FrameId f = pt_->frame(page);
    pt_->unmap(page);
    cache_->remove_active(page);
    cache_->release(f);
    return true;
  }
  std::vector<VPageId> evicted;

 private:
  PageCache* cache_;
  PageTable* pt_;
};

struct Fixture {
  Fixture(std::uint32_t capacity, std::uint32_t mapped)
      : cache(capacity), pt(64), evictor(&cache, &pt) {
    for (VPageId p{0}; p.value() < mapped; ++p) {
      const FrameId f = *cache.alloc();
      pt.map_scoma(p, f);
      cache.add_active(p);
    }
  }
  PageCache cache;
  PageTable pt;
  TestEvictor evictor;
};

TEST(PageoutDaemon, ShouldRunBelowFreeMin) {
  Fixture f(4, 3);  // 1 free frame
  PageoutDaemon d(2, 3);
  EXPECT_TRUE(d.should_run(f.cache));
  f.evictor.evict(VPageId{0});  // 2 free now
  EXPECT_FALSE(d.should_run(f.cache));
}

TEST(PageoutDaemon, EvictsColdPagesToTarget) {
  Fixture f(8, 8);  // 0 free
  PageoutDaemon d(2, 3);
  const auto r = d.run(f.cache, f.pt, f.evictor);
  EXPECT_TRUE(r.met_target);
  EXPECT_EQ(r.reclaimed, 3u);
  EXPECT_EQ(f.cache.free_frames(), 3u);
  // FIFO since everything was cold.
  EXPECT_EQ(f.evictor.evicted, (std::vector<VPageId>{VPageId{0}, VPageId{1}, VPageId{2}}));
}

TEST(PageoutDaemon, SecondChanceSkipsReferencedOnce) {
  Fixture f(4, 4);
  f.pt.set_ref_bit(VPageId{0});
  f.pt.set_ref_bit(VPageId{1});
  PageoutDaemon d(1, 2);
  const auto r = d.run(f.cache, f.pt, f.evictor);
  EXPECT_TRUE(r.met_target);
  // Pages 0 and 1 were referenced: cleared and skipped; 2 and 3 evicted.
  EXPECT_EQ(f.evictor.evicted, (std::vector<VPageId>{VPageId{2}, VPageId{3}}));
  EXPECT_FALSE(f.pt.ref_bit(VPageId{0}));
  EXPECT_FALSE(f.pt.ref_bit(VPageId{1}));
}

TEST(PageoutDaemon, EvictsReferencedPagesOnSecondPass) {
  Fixture f(2, 2);
  f.pt.set_ref_bit(VPageId{0});
  f.pt.set_ref_bit(VPageId{1});
  PageoutDaemon d(1, 1);
  const auto r = d.run(f.cache, f.pt, f.evictor);
  // First pass clears both bits; second pass evicts one.
  EXPECT_TRUE(r.met_target);
  EXPECT_EQ(r.reclaimed, 1u);
  EXPECT_GE(r.scanned, 3u);
}

TEST(PageoutDaemon, ReportsFailureWhenNothingToEvict) {
  PageCache cache(4);
  PageTable pt(8);
  TestEvictor ev(&cache, &pt);
  // Drain the pool without creating S-COMA pages (e.g. all frames wired).
  cache.alloc();
  cache.alloc();
  cache.alloc();
  cache.alloc();
  PageoutDaemon d(1, 2);
  const auto r = d.run(cache, pt, ev);
  EXPECT_FALSE(r.met_target);
  EXPECT_EQ(r.reclaimed, 0u);
}

TEST(PageoutDaemon, CountsColdPagesSeen) {
  Fixture f(8, 8);
  f.pt.set_ref_bit(VPageId{7});
  PageoutDaemon d(1, 2);
  const auto r = d.run(f.cache, f.pt, f.evictor);
  EXPECT_EQ(r.cold_pages_seen, r.reclaimed);  // all evicted were cold
  EXPECT_TRUE(r.met_target);
}

TEST(PageoutDaemon, NoWorkWhenAlreadyAboveTarget) {
  Fixture f(8, 4);  // 4 free
  PageoutDaemon d(1, 3);
  const auto r = d.run(f.cache, f.pt, f.evictor);
  EXPECT_TRUE(r.met_target);
  EXPECT_EQ(r.scanned, 0u);
  EXPECT_EQ(r.reclaimed, 0u);
}

TEST(PageoutDaemon, WatermarkAccessors) {
  PageoutDaemon d(3, 9);
  EXPECT_EQ(d.free_min(), 3u);
  EXPECT_EQ(d.free_target(), 9u);
}

}  // namespace
}  // namespace ascoma::vm
