// Compile-time contract of src/common/annotate.hh: the fence annotations
// are free.  They may change what tools/lint_hotpath.py sees, but never
// what the compiler emits — identical layout, identical signatures,
// usable on every declaration position the simulator uses them in.

#include "common/annotate.hh"

#include <cstdint>
#include <type_traits>

#include "gtest/gtest.h"

namespace {

// The annotations must be valid on free functions, member functions (const,
// static, virtual, inline), and combine with other attributes.
ASCOMA_HOT_PATH int free_fn(int x) { return x + 1; }
ASCOMA_SIGNAL_SAFE void handler_fn(int) {}
[[nodiscard]] ASCOMA_DETERMINISM_SENSITIVE int emitter_fn() { return 7; }

struct Plain {
  std::uint64_t a;
  std::uint32_t b;
  int run(int x) const { return x + static_cast<int>(b); }
  static int pick() { return 3; }
};

struct Annotated {
  std::uint64_t a;
  std::uint32_t b;
  ASCOMA_HOT_PATH int run(int x) const { return x + static_cast<int>(b); }
  ASCOMA_DETERMINISM_SENSITIVE static int pick() { return 3; }
};

// Zero data cost: annotating members changes neither size nor layout.
static_assert(sizeof(Annotated) == sizeof(Plain));
static_assert(alignof(Annotated) == alignof(Plain));
static_assert(std::is_standard_layout_v<Annotated> ==
              std::is_standard_layout_v<Plain>);
static_assert(std::is_trivially_copyable_v<Annotated> ==
              std::is_trivially_copyable_v<Plain>);

// Zero signature cost: an annotated function's type is the unannotated type
// (so function pointers, virtual overrides, and std::function bindings are
// unaffected by adding or removing an annotation).
static_assert(std::is_same_v<decltype(&free_fn), int (*)(int)>);
static_assert(std::is_same_v<decltype(&handler_fn), void (*)(int)>);
static_assert(std::is_same_v<decltype(&Annotated::run),
                             int (Annotated::*)(int) const>);
static_assert(std::is_same_v<decltype(&Annotated::pick), int (*)()>);

// Annotated functions stay constexpr-compatible: the attribute cannot
// introduce runtime machinery.
ASCOMA_HOT_PATH constexpr int twice(int x) { return 2 * x; }
static_assert(twice(21) == 42);

TEST(Annotate, AnnotatedFunctionsBehaveIdentically) {
  EXPECT_EQ(free_fn(1), 2);
  EXPECT_EQ(emitter_fn(), 7);
  Plain p{0, 5};
  Annotated a{0, 5};
  EXPECT_EQ(p.run(10), a.run(10));
  EXPECT_EQ(Plain::pick(), Annotated::pick());
}

TEST(Annotate, SignalHandlerTypeMatchesStdSignal) {
  // The annotated handler must still be installable via std::signal.
  void (*fp)(int) = &handler_fn;
  EXPECT_NE(fp, nullptr);
}

}  // namespace
