#include "report/report.hh"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hh"
#include "core/machine.hh"
#include "workload/synthetic.hh"

namespace ascoma::report {
namespace {

core::RunResult make_run(ArchModel arch, double pressure) {
  workload::SyntheticParams p;
  p.nodes = 4;
  p.home_pages = 16;
  p.remote_pages = 8;
  p.iterations = 2;
  workload::SyntheticWorkload wl(p);
  MachineConfig cfg;
  cfg.arch = arch;
  cfg.memory_pressure = pressure;
  return core::simulate(cfg, wl);
}

TEST(Report, BaselinePrefersCcNuma) {
  const auto cc = make_run(ArchModel::kCcNuma, 0.5);
  const auto as = make_run(ArchModel::kAsComa, 0.5);
  const std::vector<LabeledResult> rs = {{"as", &as}, {"cc", &cc}};
  EXPECT_DOUBLE_EQ(baseline_cycles(rs), static_cast<double>(cc.cycles().value()));
}

TEST(Report, BaselineFallsBackToFirst) {
  const auto as = make_run(ArchModel::kAsComa, 0.5);
  const auto sc = make_run(ArchModel::kScoma, 0.5);
  const std::vector<LabeledResult> rs = {{"as", &as}, {"sc", &sc}};
  EXPECT_DOUBLE_EQ(baseline_cycles(rs), static_cast<double>(as.cycles().value()));
}

TEST(Report, BaselineEmptyThrows) {
  EXPECT_THROW(baseline_cycles({}), CheckFailure);
}

TEST(Report, TimeBreakdownRowsSumToRelativeTime) {
  const auto cc = make_run(ArchModel::kCcNuma, 0.5);
  const auto as = make_run(ArchModel::kAsComa, 0.5);
  const std::vector<LabeledResult> rs = {{"cc", &cc}, {"as", &as}};
  const Table t = time_breakdown_table(rs, baseline_cycles(rs));
  EXPECT_EQ(t.rows(), 2u);
  // Parse the rendered table: for each row, bucket columns sum ~ rel.time.
  std::istringstream is(t.to_string());
  std::string line;
  std::getline(is, line);  // header
  std::getline(is, line);  // separator
  while (std::getline(is, line)) {
    std::vector<double> cells;
    std::istringstream cellstream(line);
    std::string cell;
    while (std::getline(cellstream, cell, '|')) {
      std::istringstream v(cell);
      double d;
      if (v >> d) cells.push_back(d);
    }
    ASSERT_EQ(cells.size(), 7u) << line;
    double sum = 0.0;
    for (std::size_t i = 1; i < cells.size(); ++i) sum += cells[i];
    EXPECT_NEAR(sum, cells[0], 0.01) << line;
  }
}

TEST(Report, MissBreakdownFoldsCoherenceIntoConf) {
  const auto cc = make_run(ArchModel::kCcNuma, 0.5);
  const std::vector<LabeledResult> rs = {{"cc", &cc}};
  const Table t = miss_breakdown_table(rs);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("CONF/CAPC"), std::string::npos);
  EXPECT_EQ(s.find("COHERENCE"), std::string::npos);
  // Rendered total equals the run's total miss count.
  EXPECT_NE(s.find(std::to_string(cc.stats.totals.misses.total())),
            std::string::npos);
}

TEST(Report, SummaryLineNamesArchAndPressure) {
  const auto as = make_run(ArchModel::kAsComa, 0.25);
  const std::string s = summary_line(as);
  EXPECT_NE(s.find("ASCOMA"), std::string::npos);
  EXPECT_NE(s.find("25%"), std::string::npos);
  EXPECT_NE(s.find("cycles"), std::string::npos);
}

TEST(Report, CsvRowMatchesHeaderArity) {
  const auto as = make_run(ArchModel::kAsComa, 0.5);
  const std::string header = csv_header();
  const std::string row = csv_row("synthetic", "ASCOMA", as);
  const auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count(header), count(row));
  EXPECT_EQ(row.find("synthetic,ASCOMA,0.5,"), 0u);
}

TEST(Report, CsvRowContainsCycleCount) {
  const auto cc = make_run(ArchModel::kCcNuma, 0.5);
  const std::string row = csv_row("w", "CCNUMA", cc);
  EXPECT_NE(row.find(std::to_string(cc.cycles().value())), std::string::npos);
}

}  // namespace
}  // namespace ascoma::report
