#include "common/stats.hh"

#include <gtest/gtest.h>

namespace ascoma {
namespace {

TEST(TimeBreakdown, TotalAndFrac) {
  TimeBreakdown t;
  t[TimeBucket::kUserInstr] = Cycle{60};
  t[TimeBucket::kUserShared] = Cycle{30};
  t[TimeBucket::kSync] = Cycle{10};
  EXPECT_EQ(t.total(), Cycle{100});
  EXPECT_DOUBLE_EQ(t.frac(TimeBucket::kUserInstr), 0.6);
  EXPECT_DOUBLE_EQ(t.frac(TimeBucket::kKernelOvhd), 0.0);
}

TEST(TimeBreakdown, FracOfEmptyIsZero) {
  TimeBreakdown t;
  EXPECT_EQ(t.total(), Cycle{0});
  EXPECT_DOUBLE_EQ(t.frac(TimeBucket::kSync), 0.0);
}

TEST(TimeBreakdown, Add) {
  TimeBreakdown a, b;
  a[TimeBucket::kKernelBase] = Cycle{5};
  b[TimeBucket::kKernelBase] = Cycle{7};
  b[TimeBucket::kKernelOvhd] = Cycle{3};
  a.add(b);
  EXPECT_EQ(a[TimeBucket::kKernelBase], Cycle{12});
  EXPECT_EQ(a[TimeBucket::kKernelOvhd], Cycle{3});
}

TEST(TimeBucketNames, MatchPaperLegend) {
  EXPECT_STREQ(to_string(TimeBucket::kUserInstr), "U-INSTR");
  EXPECT_STREQ(to_string(TimeBucket::kUserLocal), "U-LC-MEM");
  EXPECT_STREQ(to_string(TimeBucket::kUserShared), "U-SH-MEM");
  EXPECT_STREQ(to_string(TimeBucket::kKernelBase), "K-BASE");
  EXPECT_STREQ(to_string(TimeBucket::kKernelOvhd), "K-OVERHD");
  EXPECT_STREQ(to_string(TimeBucket::kSync), "SYNC");
}

TEST(MissBreakdown, LocalRemoteSplit) {
  MissBreakdown m;
  m[MissSource::kHome] = 10;
  m[MissSource::kScoma] = 20;
  m[MissSource::kRac] = 5;
  m[MissSource::kCold] = 3;
  m[MissSource::kConfCapc] = 2;
  m[MissSource::kCoherence] = 1;
  EXPECT_EQ(m.total(), 41u);
  EXPECT_EQ(m.local(), 35u);
  EXPECT_EQ(m.remote(), 6u);
}

TEST(MissSourceNames, MatchPaperLegend) {
  EXPECT_STREQ(to_string(MissSource::kHome), "HOME");
  EXPECT_STREQ(to_string(MissSource::kScoma), "SCOMA");
  EXPECT_STREQ(to_string(MissSource::kRac), "RAC");
  EXPECT_STREQ(to_string(MissSource::kCold), "COLD");
  EXPECT_STREQ(to_string(MissSource::kConfCapc), "CONF/CAPC");
}

TEST(KernelStats, AddAccumulatesEverything) {
  KernelStats a, b;
  a.page_faults = 1;
  b.page_faults = 2;
  b.upgrades = 3;
  b.downgrades = 4;
  b.threshold_raises = 5;
  b.remap_suppressed = 6;
  a.add(b);
  EXPECT_EQ(a.page_faults, 3u);
  EXPECT_EQ(a.upgrades, 3u);
  EXPECT_EQ(a.downgrades, 4u);
  EXPECT_EQ(a.threshold_raises, 5u);
  EXPECT_EQ(a.remap_suppressed, 6u);
}

TEST(NodeStats, AddRollsUp) {
  NodeStats a, b;
  a.shared_loads = 10;
  b.shared_loads = 5;
  b.l1_hits = 7;
  b.misses[MissSource::kCold] = 2;
  b.time[TimeBucket::kSync] = Cycle{100};
  a.add(b);
  EXPECT_EQ(a.shared_loads, 15u);
  EXPECT_EQ(a.l1_hits, 7u);
  EXPECT_EQ(a.misses[MissSource::kCold], 2u);
  EXPECT_EQ(a.time[TimeBucket::kSync], Cycle{100});
}

TEST(RunStats, RemoteOverheadUsesStallPlusKernel) {
  RunStats r;
  r.totals.time[TimeBucket::kUserShared] = Cycle{70};
  r.totals.time[TimeBucket::kKernelOvhd] = Cycle{30};
  EXPECT_DOUBLE_EQ(r.remote_overhead_cycles(), 100.0);
}

}  // namespace
}  // namespace ascoma
