#include "mem/cache.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::mem {
namespace {

MachineConfig small_cfg() {
  MachineConfig cfg;  // 16 KB / 32 B lines = 512 lines, direct-mapped
  return cfg;
}

TEST(L1Cache, MissThenFillThenHit) {
  L1Cache c(small_cfg());
  EXPECT_FALSE(c.probe(LineId{100}));
  c.fill(LineId{100}, false);
  EXPECT_TRUE(c.probe(LineId{100}));
  EXPECT_EQ(c.valid_lines(), 1u);
}

TEST(L1Cache, DirectMappedConflictEvicts) {
  L1Cache c(small_cfg());
  const LineId a{7};
  const LineId b{7 + 512};  // same index
  c.fill(a, false);
  const auto r = c.fill(b, false);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim, a);
  EXPECT_FALSE(r.writeback);  // clean victim
  EXPECT_FALSE(c.probe(a));
  EXPECT_TRUE(c.probe(b));
  EXPECT_EQ(c.valid_lines(), 1u);
}

TEST(L1Cache, DirtyVictimSignalsWriteback) {
  L1Cache c(small_cfg());
  c.fill(LineId{7}, true);
  EXPECT_TRUE(c.line_dirty(LineId{7}));
  const auto r = c.fill(LineId{7 + 512}, false);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.victim, LineId{7});
}

TEST(L1Cache, RefillKeepsDirtySticky) {
  L1Cache c(small_cfg());
  c.fill(LineId{9}, true);
  const auto r = c.fill(LineId{9}, false);  // refill same line, clean
  EXPECT_FALSE(r.evicted);
  EXPECT_TRUE(c.line_dirty(LineId{9}));  // dirty bit preserved
}

TEST(L1Cache, TouchStoreMarksDirty) {
  L1Cache c(small_cfg());
  c.fill(LineId{11}, false);
  EXPECT_FALSE(c.line_dirty(LineId{11}));
  c.touch_store(LineId{11});
  EXPECT_TRUE(c.line_dirty(LineId{11}));
}

TEST(L1Cache, TouchStoreOnAbsentLineThrows) {
  L1Cache c(small_cfg());
  EXPECT_THROW(c.touch_store(LineId{13}), ascoma::CheckFailure);
}

TEST(L1Cache, InvalidateLine) {
  L1Cache c(small_cfg());
  c.fill(LineId{5}, true);
  EXPECT_TRUE(c.invalidate_line(LineId{5}));
  EXPECT_FALSE(c.probe(LineId{5}));
  EXPECT_FALSE(c.invalidate_line(LineId{5}));  // already gone
  EXPECT_EQ(c.valid_lines(), 0u);
}

TEST(L1Cache, InvalidateLineChecksTagNotJustIndex) {
  L1Cache c(small_cfg());
  c.fill(LineId{5}, false);
  EXPECT_FALSE(c.invalidate_line(LineId{5 + 512}));  // same slot, different tag
  EXPECT_TRUE(c.probe(LineId{5}));
}

TEST(L1Cache, InvalidateBlockCoversFourLines) {
  MachineConfig cfg = small_cfg();
  L1Cache c(cfg);
  const BlockId block{10};
  const LineId first = cfg.first_line_of_block(block);
  for (std::uint32_t i = 0; i < 4; ++i) c.fill(first + i, false);
  EXPECT_EQ(c.invalidate_block(block), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_FALSE(c.probe(first + i));
}

TEST(L1Cache, FlushPageCountsValidAndDirty) {
  MachineConfig cfg = small_cfg();
  L1Cache c(cfg);
  const VPageId page{2};
  const LineId first{page.value() * cfg.lines_per_page()};
  // 128 lines per page but only 512 L1 lines: fill 10 lines, 3 dirty.
  for (std::uint32_t i = 0; i < 10; ++i) c.fill(first + i, i < 3);
  const auto r = c.flush_page(page);
  EXPECT_EQ(r.valid_lines, 10u);
  EXPECT_EQ(r.dirty_lines, 3u);
  EXPECT_EQ(c.valid_lines(), 0u);
}

TEST(L1Cache, FlushPageIgnoresOtherPagesInSameSlots) {
  MachineConfig cfg = small_cfg();
  L1Cache c(cfg);
  // Page 0 line 0 and page 4 line 0 share an L1 slot (512 lines = 4 pages).
  c.fill(LineId{0 * cfg.lines_per_page()}, false);
  const auto r = c.flush_page(VPageId{4});  // different page, same slots
  EXPECT_EQ(r.valid_lines, 0u);
  EXPECT_TRUE(c.probe(LineId{0}));
}

TEST(L1Cache, ResetClearsEverything) {
  L1Cache c(small_cfg());
  c.fill(LineId{1}, true);
  c.fill(LineId{2}, false);
  c.reset();
  EXPECT_EQ(c.valid_lines(), 0u);
  EXPECT_FALSE(c.probe(LineId{1}));
}

TEST(L1Cache, CapacityMatchesConfig) {
  L1Cache c(small_cfg());
  EXPECT_EQ(c.num_lines(), 512u);
  // Fill more lines than capacity: valid count saturates at capacity.
  for (LineId l{0}; l.value() < 1000; ++l) c.fill(l, false);
  EXPECT_LE(c.valid_lines(), 512u);
}

}  // namespace
}  // namespace ascoma::mem
