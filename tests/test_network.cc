#include "net/network.hh"

#include <gtest/gtest.h>

#include "net/topology.hh"

namespace ascoma::net {
namespace {

TEST(Topology, StageCounts) {
  EXPECT_EQ(Topology(4, 4).stages(), 1u);
  EXPECT_EQ(Topology(8, 4).stages(), 2u);
  EXPECT_EQ(Topology(16, 4).stages(), 2u);
  EXPECT_EQ(Topology(17, 4).stages(), 3u);
  EXPECT_EQ(Topology(64, 4).stages(), 3u);
  EXPECT_EQ(Topology(2, 2).stages(), 1u);
  EXPECT_EQ(Topology(8, 2).stages(), 3u);
}

TEST(Topology, HopsZeroForSelf) {
  Topology t(8, 4);
  EXPECT_EQ(t.hops(3, 3), 0u);
  EXPECT_EQ(t.hops(0, 7), t.stages());
}

TEST(Network, MinLatencyMatchesConfigFormula) {
  MachineConfig cfg;
  Network n(cfg);
  EXPECT_EQ(n.min_one_way_latency(), cfg.net_one_way_latency());
  // With defaults: 10 + 2*4 + 3*2 + 8 + 10 = 42.
  EXPECT_EQ(n.min_one_way_latency(), Cycle{42});
}

TEST(Network, DeliverUncontendedEqualsMinLatency) {
  MachineConfig cfg;
  Network n(cfg);
  EXPECT_EQ(n.deliver(Cycle{100}, NodeId{0}, NodeId{1}), Cycle{100} + n.min_one_way_latency());
}

TEST(Network, LoopbackIsFree) {
  MachineConfig cfg;
  Network n(cfg);
  EXPECT_EQ(n.deliver(Cycle{100}, NodeId{2}, NodeId{2}), Cycle{100});
}

TEST(Network, InputPortContentionSerializes) {
  MachineConfig cfg;
  Network n(cfg);
  const Cycle first = n.deliver(Cycle{0}, NodeId{0}, NodeId{5});
  const Cycle second = n.deliver(Cycle{0}, NodeId{1}, NodeId{5});  // same destination port
  EXPECT_EQ(second, first + cfg.net_port_occupancy);
  // A message to a different destination is unaffected.
  const Cycle other = n.deliver(Cycle{0}, NodeId{2}, NodeId{6});
  EXPECT_EQ(other, Cycle{0} + n.min_one_way_latency());
}

TEST(Network, CountsMessages) {
  MachineConfig cfg;
  Network n(cfg);
  n.deliver(Cycle{0}, NodeId{0}, NodeId{1});
  n.deliver(Cycle{0}, NodeId{1}, NodeId{0});
  n.deliver(Cycle{0}, NodeId{3}, NodeId{3});  // loopback still counted
  EXPECT_EQ(n.messages(), 3u);
  n.reset();
  EXPECT_EQ(n.messages(), 0u);
}

TEST(Network, PortUtilizationTracked) {
  MachineConfig cfg;
  Network n(cfg);
  n.deliver(Cycle{0}, NodeId{0}, NodeId{1});
  EXPECT_EQ(n.input_port(NodeId{1}).transactions(), 1u);
  EXPECT_EQ(n.input_port(NodeId{0}).transactions(), 0u);
}

}  // namespace
}  // namespace ascoma::net
