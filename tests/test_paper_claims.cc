// End-to-end regression net: the paper's headline claims, asserted as
// orderings on the real workload generators (scaled down for test speed).
// If a policy or timing change breaks the reproduction, these tests fail
// before the benchmarks would show it.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/sweep.hh"
#include "workload/workload.hh"

namespace ascoma::core {
namespace {

constexpr double kScale = 0.5;  // half-length runs: same dynamics, faster

class PaperClaims : public ::testing::Test {
 protected:
  static double run(const std::string& wl, ArchModel arch, double pressure) {
    const std::string key =
        wl + "/" + to_string(arch) + "/" + std::to_string(pressure);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    SweepJob j;
    j.config.arch = arch;
    j.config.memory_pressure = pressure;
    j.workload = wl;
    j.workload_scale = kScale;
    const auto rs = run_sweep({j}, 1);
    const double cycles = static_cast<double>(rs[0].result.cycles().value());
    cache_[key] = cycles;
    return cycles;
  }

  static RunResult run_full(const std::string& wl, ArchModel arch,
                            double pressure) {
    SweepJob j;
    j.config.arch = arch;
    j.config.memory_pressure = pressure;
    j.workload = wl;
    j.workload_scale = kScale;
    return run_sweep({j}, 1)[0].result;
  }

  static std::map<std::string, double> cache_;
};
std::map<std::string, double> PaperClaims::cache_;

// §5: "At low memory pressures, AS-COMA acts like S-COMA and outperforms
// other hybrid architectures."
TEST_F(PaperClaims, AsComaActsLikeScomaAtLowPressure) {
  for (const std::string wl : {"em3d", "radix", "lu"}) {
    const double scoma = run(wl, ArchModel::kScoma, 0.10);
    const double ascoma = run(wl, ArchModel::kAsComa, 0.10);
    EXPECT_DOUBLE_EQ(ascoma, scoma) << wl;
  }
}

TEST_F(PaperClaims, AsComaBeatsOtherHybridsAtLowPressure) {
  for (const std::string wl : {"em3d", "radix", "lu", "barnes"}) {
    const double ascoma = run(wl, ArchModel::kAsComa, 0.10);
    EXPECT_LT(ascoma, run(wl, ArchModel::kRNuma, 0.10)) << wl;
    EXPECT_LT(ascoma, run(wl, ArchModel::kVcNuma, 0.10)) << wl;
  }
}

// Abstract: "AS-COMA outperforms CC-NUMA under almost all conditions, and
// at its worst only underperforms CC-NUMA by a few percent."
TEST_F(PaperClaims, AsComaNeverFarBehindCcNuma) {
  for (const std::string wl : {"em3d", "radix", "lu", "ocean", "fft"}) {
    const double cc = run(wl, ArchModel::kCcNuma, 0.5);
    for (double pressure : {0.1, 0.9}) {
      const double as = run(wl, ArchModel::kAsComa, pressure);
      EXPECT_LT(as, cc * 1.12)
          << wl << " @" << pressure * 100 << "%";
    }
  }
}

// §5.2: R-NUMA falls well below CC-NUMA at 90% pressure for the
// hot-working-set programs; AS-COMA stays ahead of R-NUMA.
TEST_F(PaperClaims, RNumaThrashesAtHighPressureAsComaDoesNot) {
  for (const std::string wl : {"em3d", "radix"}) {
    const double cc = run(wl, ArchModel::kCcNuma, 0.5);
    const double rn = run(wl, ArchModel::kRNuma, 0.9);
    const double as = run(wl, ArchModel::kAsComa, 0.9);
    EXPECT_GT(rn, cc * 1.10) << wl << ": R-NUMA should thrash";
    EXPECT_LT(as, rn * 0.92) << wl << ": AS-COMA should beat R-NUMA";
  }
}

// §5.2: VC-NUMA's hardware detector helps over R-NUMA but is less
// effective than AS-COMA's at high pressure.
TEST_F(PaperClaims, VcNumaBetweenRNumaAndAsComaWhenThrashing) {
  const double rn = run("em3d", ArchModel::kRNuma, 0.9);
  const double vc = run("em3d", ArchModel::kVcNuma, 0.9);
  const double as = run("em3d", ArchModel::kAsComa, 0.9);
  // At short scales VC-NUMA's coarse evaluation window may not complete, in
  // which case it behaves exactly like R-NUMA ("not sufficiently often to
  // avoid thrashing") — it must never be *worse*.
  EXPECT_LE(vc, rn);
  EXPECT_LT(as, vc);
}

// §2.3: pure S-COMA's performance "degrades rapidly ... as memory pressure
// increases"; §5: it collapses from kernel overhead.
TEST_F(PaperClaims, ScomaCollapsesAtHighPressure) {
  const double cc = run("radix", ArchModel::kCcNuma, 0.5);
  const double sc30 = run("radix", ArchModel::kScoma, 0.3);
  EXPECT_GT(sc30, cc * 1.5);
  const auto full = run_full("radix", ArchModel::kScoma, 0.3);
  // The collapse must be kernel-overhead-driven, as the paper stresses.
  EXPECT_GT(full.stats.totals.time.frac(TimeBucket::kKernelOvhd), 0.10);
}

// §5.2 (fft/ocean/lu group): hybrids nearly identical; no thrashing.
TEST_F(PaperClaims, QuietProgramsSeeNoHybridSpread) {
  for (const std::string wl : {"fft", "ocean"}) {
    const double rn = run(wl, ArchModel::kRNuma, 0.9);
    const double vc = run(wl, ArchModel::kVcNuma, 0.9);
    EXPECT_NEAR(rn / vc, 1.0, 0.05) << wl;
  }
}

// §5.2: lu — "all of the hybrid architectures outperform CC-NUMA ...
// across all memory pressures."
TEST_F(PaperClaims, EveryHybridBeatsCcNumaOnLu) {
  const double cc = run("lu", ArchModel::kCcNuma, 0.5);
  for (ArchModel arch :
       {ArchModel::kRNuma, ArchModel::kVcNuma, ArchModel::kAsComa}) {
    for (double pressure : {0.1, 0.9}) {
      EXPECT_LT(run("lu", arch, pressure), cc)
          << to_string(arch) << " @" << pressure * 100 << "%";
    }
  }
}

// §5.1/Table 6: fft's remote pages almost never qualify for relocation, so
// R-NUMA and VC-NUMA "effectively become CC-NUMAs" on it.
TEST_F(PaperClaims, FftHybridsDegenerateToCcNuma) {
  const auto rn = run_full("fft", ArchModel::kRNuma, 0.5);
  EXPECT_EQ(rn.stats.totals.kernel.upgrades, 0u);
  EXPECT_EQ(rn.relocated_pairs, 0u);
}

// §5.2: AS-COMA's win comes from *reducing kernel overhead and induced cold
// misses*, accepting more remote conflict misses than R-NUMA.
TEST_F(PaperClaims, AsComaTradesConflictMissesForKernelTime) {
  const auto as = run_full("em3d", ArchModel::kAsComa, 0.9);
  const auto rn = run_full("em3d", ArchModel::kRNuma, 0.9);
  // The win must come from the costs the paper identifies — kernel
  // remapping overhead and flush-induced cold misses — not from somehow
  // finding more page-cache hits than the always-remapping R-NUMA.
  EXPECT_LT(as.stats.totals.time[TimeBucket::kKernelOvhd],
            rn.stats.totals.time[TimeBucket::kKernelOvhd]);
  EXPECT_LT(as.stats.totals.induced_cold_misses,
            rn.stats.totals.induced_cold_misses);
  EXPECT_LT(as.stats.totals.kernel.upgrades,
            rn.stats.totals.kernel.upgrades);
}

}  // namespace
}  // namespace ascoma::core
