#include "sim/lock.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::sim {
namespace {

TEST(LockTable, FreeLockGrantsImmediately) {
  LockTable lt(50);
  const auto g = lt.acquire(1, 0, 100);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*g, 150u);
  EXPECT_TRUE(lt.is_held(1));
}

TEST(LockTable, HeldLockQueues) {
  LockTable lt(50);
  lt.acquire(1, 0, 0);
  EXPECT_FALSE(lt.acquire(1, 1, 10).has_value());
  EXPECT_EQ(lt.contended_acquisitions(), 1u);
}

TEST(LockTable, ReleaseHandsToFifoWaiter) {
  LockTable lt(50);
  lt.acquire(7, 0, 0);
  lt.acquire(7, 1, 10);
  lt.acquire(7, 2, 20);
  const auto g = lt.release(7, 0, 100);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->proc, 1u);
  EXPECT_EQ(g->grant_cycle, 150u);
  EXPECT_EQ(g->enqueue_cycle, 10u);
  const auto g2 = lt.release(7, 1, 200);
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->proc, 2u);
}

TEST(LockTable, ReleaseWithNoWaitersFrees) {
  LockTable lt(50);
  lt.acquire(3, 0, 0);
  EXPECT_FALSE(lt.release(3, 0, 10).has_value());
  EXPECT_FALSE(lt.is_held(3));
  // Re-acquire works.
  EXPECT_TRUE(lt.acquire(3, 1, 20).has_value());
}

TEST(LockTable, DistinctLocksIndependent) {
  LockTable lt(50);
  EXPECT_TRUE(lt.acquire(1, 0, 0).has_value());
  EXPECT_TRUE(lt.acquire(2, 1, 0).has_value());
  EXPECT_TRUE(lt.is_held(1));
  EXPECT_TRUE(lt.is_held(2));
}

TEST(LockTable, RecursiveAcquireThrows) {
  LockTable lt(50);
  lt.acquire(1, 0, 0);
  EXPECT_THROW(lt.acquire(1, 0, 5), CheckFailure);
}

TEST(LockTable, ReleaseByNonHolderThrows) {
  LockTable lt(50);
  lt.acquire(1, 0, 0);
  EXPECT_THROW(lt.release(1, 1, 5), CheckFailure);
}

TEST(LockTable, ReleaseUnknownLockThrows) {
  LockTable lt(50);
  EXPECT_THROW(lt.release(42, 0, 5), CheckFailure);
}

TEST(LockTable, CountsAcquisitions) {
  LockTable lt(10);
  lt.acquire(1, 0, 0);
  lt.acquire(1, 1, 0);  // queued
  lt.release(1, 0, 5);  // grants to 1
  EXPECT_EQ(lt.acquisitions(), 2u);
  EXPECT_EQ(lt.contended_acquisitions(), 1u);
}

TEST(LockTable, IsHeldFalseForUnknown) {
  LockTable lt(10);
  EXPECT_FALSE(lt.is_held(999));
}

}  // namespace
}  // namespace ascoma::sim
