#include "sim/lock.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::sim {
namespace {

TEST(LockTable, FreeLockGrantsImmediately) {
  LockTable lt(Cycle{50});
  const auto g = lt.acquire(1, 0, Cycle{100});
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*g, Cycle{150});
  EXPECT_TRUE(lt.is_held(1));
}

TEST(LockTable, HeldLockQueues) {
  LockTable lt(Cycle{50});
  lt.acquire(1, 0, Cycle{0});
  EXPECT_FALSE(lt.acquire(1, 1, Cycle{10}).has_value());
  EXPECT_EQ(lt.contended_acquisitions(), 1u);
}

TEST(LockTable, ReleaseHandsToFifoWaiter) {
  LockTable lt(Cycle{50});
  lt.acquire(7, 0, Cycle{0});
  lt.acquire(7, 1, Cycle{10});
  lt.acquire(7, 2, Cycle{20});
  const auto g = lt.release(7, 0, Cycle{100});
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->proc, 1u);
  EXPECT_EQ(g->grant_cycle, Cycle{150});
  EXPECT_EQ(g->enqueue_cycle, Cycle{10});
  const auto g2 = lt.release(7, 1, Cycle{200});
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->proc, 2u);
}

TEST(LockTable, ReleaseWithNoWaitersFrees) {
  LockTable lt(Cycle{50});
  lt.acquire(3, 0, Cycle{0});
  EXPECT_FALSE(lt.release(3, 0, Cycle{10}).has_value());
  EXPECT_FALSE(lt.is_held(3));
  // Re-acquire works.
  EXPECT_TRUE(lt.acquire(3, 1, Cycle{20}).has_value());
}

TEST(LockTable, DistinctLocksIndependent) {
  LockTable lt(Cycle{50});
  EXPECT_TRUE(lt.acquire(1, 0, Cycle{0}).has_value());
  EXPECT_TRUE(lt.acquire(2, 1, Cycle{0}).has_value());
  EXPECT_TRUE(lt.is_held(1));
  EXPECT_TRUE(lt.is_held(2));
}

TEST(LockTable, RecursiveAcquireThrows) {
  LockTable lt(Cycle{50});
  lt.acquire(1, 0, Cycle{0});
  EXPECT_THROW(lt.acquire(1, 0, Cycle{5}), CheckFailure);
}

TEST(LockTable, ReleaseByNonHolderThrows) {
  LockTable lt(Cycle{50});
  lt.acquire(1, 0, Cycle{0});
  EXPECT_THROW(lt.release(1, 1, Cycle{5}), CheckFailure);
}

TEST(LockTable, ReleaseUnknownLockThrows) {
  LockTable lt(Cycle{50});
  EXPECT_THROW(lt.release(42, 0, Cycle{5}), CheckFailure);
}

TEST(LockTable, CountsAcquisitions) {
  LockTable lt(Cycle{10});
  lt.acquire(1, 0, Cycle{0});
  lt.acquire(1, 1, Cycle{0});  // queued
  lt.release(1, 0, Cycle{5});  // grants to 1
  EXPECT_EQ(lt.acquisitions(), 2u);
  EXPECT_EQ(lt.contended_acquisitions(), 1u);
}

TEST(LockTable, IsHeldFalseForUnknown) {
  LockTable lt(Cycle{10});
  EXPECT_FALSE(lt.is_held(999));
}

}  // namespace
}  // namespace ascoma::sim
