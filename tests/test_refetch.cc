#include "proto/refetch.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::proto {
namespace {

TEST(RefetchTable, IncrementReturnsNewCount) {
  RefetchTable t(8, 4);
  EXPECT_EQ(t.increment(VPageId{0}, NodeId{1}), 1u);
  EXPECT_EQ(t.increment(VPageId{0}, NodeId{1}), 2u);
  EXPECT_EQ(t.count(VPageId{0}, NodeId{1}), 2u);
  EXPECT_EQ(t.count(VPageId{0}, NodeId{2}), 0u);
  EXPECT_EQ(t.total_refetches(), 2u);
}

TEST(RefetchTable, PerPagePerNodeIsolation) {
  RefetchTable t(8, 4);
  t.increment(VPageId{3}, NodeId{2});
  EXPECT_EQ(t.count(VPageId{3}, NodeId{2}), 1u);
  EXPECT_EQ(t.count(VPageId{3}, NodeId{1}), 0u);
  EXPECT_EQ(t.count(VPageId{2}, NodeId{2}), 0u);
}

TEST(RefetchTable, ResetClearsPolicyCounterOnly) {
  RefetchTable t(8, 4);
  t.increment(VPageId{1}, NodeId{0});
  t.increment(VPageId{1}, NodeId{0});
  t.reset(VPageId{1}, NodeId{0});
  EXPECT_EQ(t.count(VPageId{1}, NodeId{0}), 0u);
  EXPECT_EQ(t.cumulative(VPageId{1}, NodeId{0}), 2u);  // census keeps history
  EXPECT_EQ(t.increment(VPageId{1}, NodeId{0}), 1u);  // counting resumes from zero
  EXPECT_EQ(t.cumulative(VPageId{1}, NodeId{0}), 3u);
}

TEST(RefetchTable, CensusPairsAtLeast) {
  RefetchTable t(4, 2);
  for (int i = 0; i < 5; ++i) t.increment(VPageId{0}, NodeId{0});
  for (int i = 0; i < 3; ++i) t.increment(VPageId{1}, NodeId{1});
  t.increment(VPageId{2}, NodeId{0});
  EXPECT_EQ(t.pairs_at_least(1), 3u);
  EXPECT_EQ(t.pairs_at_least(3), 2u);
  EXPECT_EQ(t.pairs_at_least(5), 1u);
  EXPECT_EQ(t.pairs_at_least(6), 0u);
}

TEST(RefetchTable, CensusPagesAtLeast) {
  RefetchTable t(4, 2);
  t.increment(VPageId{0}, NodeId{0});
  t.increment(VPageId{0}, NodeId{1});  // same page, two nodes -> one page
  t.increment(VPageId{2}, NodeId{0});
  EXPECT_EQ(t.pages_at_least(1), 2u);
  EXPECT_EQ(t.pages_at_least(2), 0u);
}

TEST(RefetchTable, CensusSurvivesResets) {
  RefetchTable t(4, 2);
  for (int i = 0; i < 10; ++i) t.increment(VPageId{0}, NodeId{0});
  t.reset(VPageId{0}, NodeId{0});
  EXPECT_EQ(t.pairs_at_least(10), 1u);
}

TEST(RefetchTable, BoundsChecked) {
  RefetchTable t(4, 2);
  EXPECT_THROW(t.increment(VPageId{4}, NodeId{0}), ascoma::CheckFailure);
  EXPECT_THROW(t.count(VPageId{0}, NodeId{2}), ascoma::CheckFailure);
}

}  // namespace
}  // namespace ascoma::proto
