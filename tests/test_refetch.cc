#include "proto/refetch.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::proto {
namespace {

TEST(RefetchTable, IncrementReturnsNewCount) {
  RefetchTable t(8, 4);
  EXPECT_EQ(t.increment(0, 1), 1u);
  EXPECT_EQ(t.increment(0, 1), 2u);
  EXPECT_EQ(t.count(0, 1), 2u);
  EXPECT_EQ(t.count(0, 2), 0u);
  EXPECT_EQ(t.total_refetches(), 2u);
}

TEST(RefetchTable, PerPagePerNodeIsolation) {
  RefetchTable t(8, 4);
  t.increment(3, 2);
  EXPECT_EQ(t.count(3, 2), 1u);
  EXPECT_EQ(t.count(3, 1), 0u);
  EXPECT_EQ(t.count(2, 2), 0u);
}

TEST(RefetchTable, ResetClearsPolicyCounterOnly) {
  RefetchTable t(8, 4);
  t.increment(1, 0);
  t.increment(1, 0);
  t.reset(1, 0);
  EXPECT_EQ(t.count(1, 0), 0u);
  EXPECT_EQ(t.cumulative(1, 0), 2u);  // census keeps history
  EXPECT_EQ(t.increment(1, 0), 1u);  // counting resumes from zero
  EXPECT_EQ(t.cumulative(1, 0), 3u);
}

TEST(RefetchTable, CensusPairsAtLeast) {
  RefetchTable t(4, 2);
  for (int i = 0; i < 5; ++i) t.increment(0, 0);
  for (int i = 0; i < 3; ++i) t.increment(1, 1);
  t.increment(2, 0);
  EXPECT_EQ(t.pairs_at_least(1), 3u);
  EXPECT_EQ(t.pairs_at_least(3), 2u);
  EXPECT_EQ(t.pairs_at_least(5), 1u);
  EXPECT_EQ(t.pairs_at_least(6), 0u);
}

TEST(RefetchTable, CensusPagesAtLeast) {
  RefetchTable t(4, 2);
  t.increment(0, 0);
  t.increment(0, 1);  // same page, two nodes -> one page
  t.increment(2, 0);
  EXPECT_EQ(t.pages_at_least(1), 2u);
  EXPECT_EQ(t.pages_at_least(2), 0u);
}

TEST(RefetchTable, CensusSurvivesResets) {
  RefetchTable t(4, 2);
  for (int i = 0; i < 10; ++i) t.increment(0, 0);
  t.reset(0, 0);
  EXPECT_EQ(t.pairs_at_least(10), 1u);
}

TEST(RefetchTable, BoundsChecked) {
  RefetchTable t(4, 2);
  EXPECT_THROW(t.increment(4, 0), ascoma::CheckFailure);
  EXPECT_THROW(t.count(0, 2), ascoma::CheckFailure);
}

}  // namespace
}  // namespace ascoma::proto
