// Tests for the protocol model checker (src/check/) and the declarative
// transition table it explores (src/proto/transition_table.*).
//
// The contract under test, per docs/ARCHITECTURE.md §12:
//   * the pristine protocol passes exhaustive exploration for every
//     architecture, with and without fault rules;
//   * each known-bad mutation is caught with a counterexample trace;
//   * the model's directory mirror (Model::dir_apply) agrees with
//     proto::Directory::apply row by row;
//   * state encodings are lossless (the explorer depends on it).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/explorer.hh"
#include "check/model.hh"
#include "common/config.hh"
#include "proto/directory.hh"
#include "proto/transition_table.hh"

namespace check = ascoma::check;
namespace proto = ascoma::proto;
using ascoma::ArchModel;
using ascoma::BlockId;
using ascoma::NodeId;

namespace {

const ArchModel kAllArchs[] = {ArchModel::kCcNuma, ArchModel::kScoma,
                               ArchModel::kRNuma, ArchModel::kVcNuma,
                               ArchModel::kAsComa};

check::ExploreResult run(const check::CheckConfig& cfg,
                         bool por = true) {
  check::Model model(cfg);
  check::ExploreOptions opts;
  opts.por = por;
  return check::explore(model, opts);
}

check::CheckConfig small_config(check::Mutation m,
                                bool faults = false) {
  check::CheckConfig cfg;
  cfg.nodes = 2;
  cfg.blocks = 1;
  cfg.ops_per_node = 2;
  cfg.arch = ArchModel::kAsComa;
  cfg.faults = faults;
  cfg.mutation = m;
  return cfg;
}

}  // namespace

// ---- transition table -------------------------------------------------------

TEST(TransitionTable, TotalAndSelfConsistent) {
  const proto::TransitionTable& t = proto::TransitionTable::pristine();
  int fatal = 0;
  for (int s = 0; s < proto::kNumDirStates; ++s) {
    for (int m = 0; m < proto::kNumProtoMsgs; ++m) {
      for (int r = 0; r < proto::kNumReqRels; ++r) {
        const proto::Transition& row = t.lookup(
            static_cast<proto::DirState>(s), static_cast<proto::ProtoMsg>(m),
            static_cast<proto::ReqRel>(r));
        EXPECT_EQ(static_cast<int>(row.state), s);
        EXPECT_EQ(static_cast<int>(row.msg), m);
        EXPECT_EQ(static_cast<int>(row.rel), r);
        ASSERT_NE(row.why, nullptr);
        if (row.fatal()) {
          ++fatal;
          EXPECT_EQ(row.next, proto::DirNext::kFatal);
          EXPECT_EQ(row.actions, proto::act::kFatal)
              << "a fatal row must carry no other action bits";
        } else {
          EXPECT_NE(row.next, proto::DirNext::kFatal);
        }
      }
    }
  }
  // The describe() dump covers every row (one line each).
  const std::string dump = t.describe();
  int lines = 0;
  for (char c : dump) lines += c == '\n';
  EXPECT_EQ(lines, proto::TransitionTable::kNumRows);
  EXPECT_GT(fatal, 0) << "some triples are unreachable by construction";
}

// The model's packed directory mirror must transition exactly like
// proto::Directory for every legal row: same owner, same copyset, same
// forward target, same invalidation set.
TEST(TransitionTable, ModelDirectoryAgreement) {
  struct Scenario {
    proto::DirState state;
    proto::ReqRel rel;
    NodeId requester;
  };
  // Three nodes; entry setups reaching each (state, rel) pair.  Requester 2
  // gives kNone a distinct id from the nodes inside the entry.
  const Scenario scenarios[] = {
      {proto::DirState::kUncached, proto::ReqRel::kNone, NodeId{2}},
      {proto::DirState::kShared, proto::ReqRel::kNone, NodeId{2}},
      {proto::DirState::kShared, proto::ReqRel::kSharer, NodeId{0}},
      {proto::DirState::kExclusive, proto::ReqRel::kNone, NodeId{2}},
      {proto::DirState::kExclusive, proto::ReqRel::kOwner, NodeId{0}},
  };
  const proto::ProtoMsg msgs[] = {proto::ProtoMsg::kGetS,
                                  proto::ProtoMsg::kGetX,
                                  proto::ProtoMsg::kFlush,
                                  proto::ProtoMsg::kNack};
  for (const Scenario& sc : scenarios) {
    for (proto::ProtoMsg msg : msgs) {
      const proto::Transition& row =
          proto::TransitionTable::pristine().lookup(sc.state, msg, sc.rel);
      if (row.fatal()) continue;

      // Reference: a real Directory, primed into the scenario's entry state.
      proto::Directory dir(1, 3);
      if (sc.state == proto::DirState::kShared) {
        dir.gets(BlockId{0}, NodeId{0});
        dir.gets(BlockId{0}, NodeId{1});
      } else if (sc.state == proto::DirState::kExclusive) {
        dir.getx(BlockId{0}, NodeId{0});
      }
      ASSERT_EQ(dir.state_of(BlockId{0}), sc.state);
      ASSERT_EQ(dir.rel_of(BlockId{0}, sc.requester), sc.rel);

      NodeId dir_fwd = ascoma::kInvalidNode;
      std::vector<NodeId> dir_inval;
      switch (msg) {
        case proto::ProtoMsg::kGetS: {
          const auto r = dir.gets(BlockId{0}, sc.requester);
          dir_fwd = r.dirty_owner;
          break;
        }
        case proto::ProtoMsg::kGetX: {
          auto r = dir.getx(BlockId{0}, sc.requester);
          dir_fwd = r.dirty_owner;
          dir_inval = r.invalidate.to_vector();
          break;
        }
        case proto::ProtoMsg::kFlush:
          dir.flush_node(BlockId{0}, sc.requester);
          break;
        case proto::ProtoMsg::kNack:
          dir.note_nack(BlockId{0}, sc.requester);
          break;
      }

      // Mirror: the model state primed identically, stepped via successors()
      // is impractical here, so prime the packed fields directly and let the
      // model's public pieces (via a tiny Model on the same table) agree.
      check::CheckConfig cfg;
      cfg.nodes = 3;
      cfg.blocks = 1;
      check::Model model(cfg);
      check::State s = model.initial();
      if (sc.state == proto::DirState::kShared) {
        s.dir_sharers[0] = 0b011;
      } else if (sc.state == proto::DirState::kExclusive) {
        s.dir_owner[0] = 0;
        s.dir_sharers[0] = 0b001;
      }
      // Drive the same transition through the model by synthesizing the
      // request delivery path: compare the *resulting* directory image.
      // (dir_apply is private; successors() exercises it, but for a
      // row-level check the packed arithmetic below mirrors it exactly.)
      const proto::Transition& t = model.table().lookup(sc.state, msg, sc.rel);
      std::vector<NodeId> model_inval;
      NodeId model_fwd = ascoma::kInvalidNode;
      if (t.has(proto::act::kForwardOwner)) model_fwd = NodeId{s.dir_owner[0]};
      if (t.has(proto::act::kInvalSharers)) {
        std::uint8_t mask = s.dir_sharers[0];
        mask &= static_cast<std::uint8_t>(~(1u << sc.requester.value()));
        if (s.dir_owner[0] != check::kNoOwner)
          mask &= static_cast<std::uint8_t>(~(1u << s.dir_owner[0]));
        for (NodeId n{0}; n.value() < 3; ++n)
          if ((mask >> n.value()) & 1u) model_inval.push_back(n);
      }
      if (t.has(proto::act::kClearOwner)) s.dir_owner[0] = check::kNoOwner;
      if (t.has(proto::act::kAddSharer))
        s.dir_sharers[0] |= static_cast<std::uint8_t>(1u << sc.requester.value());
      if (t.has(proto::act::kRemoveSharer))
        s.dir_sharers[0] &= static_cast<std::uint8_t>(~(1u << sc.requester.value()));
      if (t.has(proto::act::kSetOwner)) {
        s.dir_sharers[0] = static_cast<std::uint8_t>(1u << sc.requester.value());
        s.dir_owner[0] = static_cast<std::uint8_t>(sc.requester.value());
      }

      const NodeId dir_owner_after = dir.owner(BlockId{0});
      EXPECT_EQ(dir.sharer_mask(BlockId{0}), s.dir_sharers[0])
          << to_string(sc.state) << " x " << to_string(msg);
      EXPECT_EQ(dir_owner_after == ascoma::kInvalidNode,
                s.dir_owner[0] == check::kNoOwner);
      if (dir_owner_after != ascoma::kInvalidNode) {
        EXPECT_EQ(dir_owner_after, NodeId{s.dir_owner[0]});
      }
      EXPECT_EQ(dir_fwd == ascoma::kInvalidNode,
                model_fwd == ascoma::kInvalidNode);
      if (dir_fwd != ascoma::kInvalidNode) {
        EXPECT_EQ(dir_fwd, model_fwd);
      }
      EXPECT_EQ(dir_inval, model_inval);
    }
  }
}

// ---- pristine protocol ------------------------------------------------------

TEST(ModelCheck, PristinePassesAllArchitectures) {
  for (ArchModel arch : kAllArchs) {
    check::CheckConfig cfg = small_config(check::Mutation::kNone);
    cfg.arch = arch;
    const auto res = run(cfg);
    EXPECT_TRUE(res.ok) << ascoma::to_string(arch) << ": " << res.violation;
    EXPECT_FALSE(res.truncated);
    EXPECT_GT(res.finals, 0u);
  }
}

TEST(ModelCheck, PristinePassesWithFaultRules) {
  for (ArchModel arch : kAllArchs) {
    check::CheckConfig cfg = small_config(check::Mutation::kNone,
                                          /*faults=*/true);
    cfg.arch = arch;
    const auto res = run(cfg);
    EXPECT_TRUE(res.ok) << ascoma::to_string(arch) << ": " << res.violation;
    EXPECT_FALSE(res.truncated);
  }
}

TEST(ModelCheck, PartialOrderReductionPreservesVerdict) {
  const check::CheckConfig cfg = small_config(check::Mutation::kNone,
                                              /*faults=*/true);
  const auto with_por = run(cfg, /*por=*/true);
  const auto without = run(cfg, /*por=*/false);
  EXPECT_TRUE(with_por.ok) << with_por.violation;
  EXPECT_TRUE(without.ok) << without.violation;
  // The reduction prunes states, never adds them.
  EXPECT_LE(with_por.states, without.states);
}

TEST(ModelCheck, EncodeDecodeRoundTrip) {
  const check::CheckConfig cfg = small_config(check::Mutation::kNone,
                                              /*faults=*/true);
  check::Model model(cfg);
  // Walk a few levels deep and round-trip every state met.
  std::vector<check::State> layer{model.initial()};
  std::vector<check::Successor> sucs;
  for (int depth = 0; depth < 4; ++depth) {
    std::vector<check::State> next;
    for (const check::State& s : layer) {
      const std::string enc = s.encode();
      EXPECT_EQ(check::decode_state(cfg, enc).encode(), enc);
      model.successors(s, &sucs);
      for (auto& suc : sucs) next.push_back(std::move(suc.state));
    }
    layer = std::move(next);
  }
}

// ---- known-bad mutations ----------------------------------------------------

namespace {

void expect_caught(const check::CheckConfig& cfg,
                   const std::string& expect_substr) {
  const auto res = run(cfg);
  ASSERT_FALSE(res.ok) << "mutation " << to_string(cfg.mutation)
                       << " was not caught";
  EXPECT_NE(res.violation.find(expect_substr), std::string::npos)
      << "mutation " << to_string(cfg.mutation) << " reported: "
      << res.violation;
  // A counterexample exists unless the initial state itself violates.
  EXPECT_FALSE(res.trace.empty());
  EXPECT_FALSE(res.final_dump.empty());
  EXPECT_FALSE(res.report().empty());
}

}  // namespace

TEST(ModelCheckMutations, DroppedInvalidationAckDeadlocks) {
  expect_caught(small_config(check::Mutation::kDropInvalAck), "deadlock");
}

TEST(ModelCheckMutations, StaleOwnerOnDowngradeCaught) {
  expect_caught(small_config(check::Mutation::kStaleOwnerOnDowngrade),
                "owner");
}

TEST(ModelCheckMutations, NackMutatingDirectoryCaught) {
  expect_caught(small_config(check::Mutation::kNackMutatesDirectory,
                             /*faults=*/true),
                "directory");
}

TEST(ModelCheckMutations, LostUpgradeDeadlocks) {
  expect_caught(small_config(check::Mutation::kLostUpgrade), "deadlock");
}

TEST(ModelCheckMutations, DoubleDataReplyCaught) {
  expect_caught(small_config(check::Mutation::kDoubleDataReply), "directory");
}

// BFS counterexamples are minimal: the stale-owner bug needs only one read
// of a dirty block, which is a handful of steps.
TEST(ModelCheckMutations, CounterexamplesAreShort) {
  const auto res = run(small_config(check::Mutation::kStaleOwnerOnDowngrade));
  ASSERT_FALSE(res.ok);
  EXPECT_LE(res.trace.size(), 6u);
}

// Mutation names round-trip through the CLI-facing parser.
TEST(ModelCheckMutations, NamesRoundTrip) {
  for (int i = 0; i < check::kNumMutations; ++i) {
    const auto m = static_cast<check::Mutation>(i);
    check::Mutation parsed;
    ASSERT_TRUE(check::parse_mutation(check::to_string(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
  check::Mutation parsed;
  EXPECT_FALSE(check::parse_mutation("not-a-mutation", &parsed));
}
