#include "common/config.hh"

#include <gtest/gtest.h>

namespace ascoma {
namespace {

TEST(Config, DefaultsAreValid) {
  MachineConfig cfg;
  EXPECT_EQ(cfg.validate(), "");
}

TEST(Config, DerivedGranularities) {
  MachineConfig cfg;
  EXPECT_EQ(cfg.lines_per_block(), 4u);    // 128 / 32
  EXPECT_EQ(cfg.blocks_per_page(), 32u);   // 4096 / 128
  EXPECT_EQ(cfg.lines_per_page(), 128u);   // 4096 / 32
  EXPECT_EQ(cfg.l1_lines(), 512u);         // 16K / 32
  EXPECT_EQ(cfg.rac_entries(), 1u);        // 128 / 128
}

TEST(Config, AddressDecomposition) {
  MachineConfig cfg;
  const Addr a{3 * 4096 + 5 * 128 + 2 * 32 + 7};
  EXPECT_EQ(cfg.page_of(a), PageId{3});
  EXPECT_EQ(cfg.block_of(a), BlockId{3u * 32 + 5});
  EXPECT_EQ(cfg.line_of(a), LineId{(3u * 4096 + 5 * 128 + 2 * 32) / 32});
  EXPECT_EQ(cfg.first_block_of_page(PageId{3}), BlockId{96});
  EXPECT_EQ(cfg.page_base(PageId{3}), Addr{3u * 4096});
}

// Table 4 of the paper: L1 = 1, local = 50, RAC = 36, remote = 150 cycles,
// remote:local ratio about 3:1.
TEST(Config, Table4MinimumLatencies) {
  MachineConfig cfg;
  EXPECT_EQ(cfg.l1_hit_cycles, Cycle{1});
  EXPECT_EQ(cfg.min_local_latency(), Cycle{50});
  EXPECT_EQ(cfg.min_rac_latency(), Cycle{36});
  EXPECT_EQ(cfg.min_remote_latency(), Cycle{150});
  const double ratio = static_cast<double>(cfg.min_remote_latency().value()) /
                       static_cast<double>(cfg.min_local_latency().value());
  EXPECT_NEAR(ratio, 3.0, 0.05);
}

TEST(Config, NetStagesFor8NodesArity4) {
  MachineConfig cfg;  // 8 nodes, 4x4 switches -> 2 stages
  EXPECT_EQ(cfg.net_stages(), 2u);
  cfg.nodes = 4;
  EXPECT_EQ(cfg.net_stages(), 1u);
  cfg.nodes = 64;
  EXPECT_EQ(cfg.net_stages(), 3u);
  cfg.nodes = 65;
  EXPECT_EQ(cfg.net_stages(), 4u);
}

TEST(Config, ValidateCatchesBadGranularity) {
  MachineConfig cfg;
  cfg.block_bytes = ByteCount{96};  // not a power of two
  EXPECT_NE(cfg.validate(), "");
  cfg = MachineConfig{};
  cfg.line_bytes = ByteCount{48};
  EXPECT_NE(cfg.validate(), "");
  cfg = MachineConfig{};
  cfg.l1_bytes = ByteCount{3000};
  EXPECT_NE(cfg.validate(), "");
}

TEST(Config, ValidateCatchesBadPressure) {
  MachineConfig cfg;
  cfg.memory_pressure = 0.0;
  EXPECT_NE(cfg.validate(), "");
  cfg.memory_pressure = 1.5;
  EXPECT_NE(cfg.validate(), "");
  cfg.memory_pressure = 1.0;
  EXPECT_EQ(cfg.validate(), "");
}

TEST(Config, ValidateCatchesBadWatermarks) {
  MachineConfig cfg;
  cfg.free_target_frac = 0.005;  // below free_min_frac
  EXPECT_NE(cfg.validate(), "");
  cfg = MachineConfig{};
  cfg.free_min_frac = -0.1;
  EXPECT_NE(cfg.validate(), "");
}

TEST(Config, ValidateCatchesBadThresholds) {
  MachineConfig cfg;
  cfg.refetch_threshold = 0;
  EXPECT_NE(cfg.validate(), "");
  cfg = MachineConfig{};
  cfg.threshold_max = 1;  // below refetch_threshold
  EXPECT_NE(cfg.validate(), "");
  cfg = MachineConfig{};
  cfg.daemon_backoff_factor = 0.5;
  EXPECT_NE(cfg.validate(), "");
}

TEST(Config, ParseArchModel) {
  ArchModel m;
  EXPECT_TRUE(parse_arch_model("ccnuma", &m));
  EXPECT_EQ(m, ArchModel::kCcNuma);
  EXPECT_TRUE(parse_arch_model("CC-NUMA", &m));
  EXPECT_EQ(m, ArchModel::kCcNuma);
  EXPECT_TRUE(parse_arch_model("S-COMA", &m));
  EXPECT_EQ(m, ArchModel::kScoma);
  EXPECT_TRUE(parse_arch_model("rnuma", &m));
  EXPECT_EQ(m, ArchModel::kRNuma);
  EXPECT_TRUE(parse_arch_model("VC_NUMA", &m));
  EXPECT_EQ(m, ArchModel::kVcNuma);
  EXPECT_TRUE(parse_arch_model("AS-COMA", &m));
  EXPECT_EQ(m, ArchModel::kAsComa);
  EXPECT_FALSE(parse_arch_model("bogus", &m));
}

TEST(Config, ArchModelNames) {
  EXPECT_STREQ(to_string(ArchModel::kCcNuma), "CCNUMA");
  EXPECT_STREQ(to_string(ArchModel::kScoma), "SCOMA");
  EXPECT_STREQ(to_string(ArchModel::kRNuma), "RNUMA");
  EXPECT_STREQ(to_string(ArchModel::kVcNuma), "VCNUMA");
  EXPECT_STREQ(to_string(ArchModel::kAsComa), "ASCOMA");
}

}  // namespace
}  // namespace ascoma
