#include "common/rng.hh"

#include <gtest/gtest.h>

#include <set>

namespace ascoma {
namespace {

TEST(Rng, DeterministicForSameSeedAndStream) {
  Rng a(42, 7), b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, SeedsAreIndependent) {
  Rng a(1, 0), b(2, 0);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsInBounds) {
  Rng r(123);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(r.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(77);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsP) {
  Rng r(31);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(r.chance(0.0));
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(99);
  int buckets[8] = {};
  for (int i = 0; i < 80000; ++i) ++buckets[r.below(8)];
  for (int c : buckets) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, Mix64Deterministic) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
}

TEST(Rng, CoversLargeValueSpace) {
  Rng r(2024);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next());
  EXPECT_EQ(seen.size(), 1000u);  // no collisions in 1000 draws
}

}  // namespace
}  // namespace ascoma
