#include "sim/barrier.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::sim {
namespace {

TEST(Barrier, LastArrivalReleasesAtMaxPlusCost) {
  Barrier b(3, Cycle{100});
  EXPECT_FALSE(b.arrive(0, Cycle{10}).has_value());
  EXPECT_FALSE(b.arrive(1, Cycle{50}).has_value());
  const auto rel = b.arrive(2, Cycle{30});
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, Cycle{150});  // max arrival 50 + cost 100
  EXPECT_EQ(b.episodes(), 1u);
}

TEST(Barrier, ArrivalTimesRecorded) {
  Barrier b(2, Cycle{10});
  b.arrive(0, Cycle{42});
  b.arrive(1, Cycle{99});
  EXPECT_EQ(b.arrival_of(0), Cycle{42});
  EXPECT_EQ(b.arrival_of(1), Cycle{99});
}

TEST(Barrier, EpisodesResetForReuse) {
  Barrier b(2, Cycle{10});
  b.arrive(0, Cycle{0});
  EXPECT_TRUE(b.arrive(1, Cycle{5}).has_value());
  // Second episode works identically.
  EXPECT_FALSE(b.arrive(0, Cycle{100}).has_value());
  const auto rel = b.arrive(1, Cycle{120});
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, Cycle{130});
  EXPECT_EQ(b.episodes(), 2u);
}

TEST(Barrier, DoubleArrivalThrows) {
  Barrier b(2, Cycle{10});
  b.arrive(0, Cycle{0});
  EXPECT_THROW(b.arrive(0, Cycle{1}), CheckFailure);
}

TEST(Barrier, DepartCompletesEpisode) {
  Barrier b(3, Cycle{10});
  b.arrive(0, Cycle{5});
  b.arrive(1, Cycle{8});
  // Processor 2 ends its stream instead of arriving.
  const auto rel = b.depart(2, Cycle{20});
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, Cycle{30});  // max(8, 20) + 10
}

TEST(Barrier, DepartedProcessorNotRequiredLater) {
  Barrier b(3, Cycle{10});
  b.depart(2, Cycle{0});
  b.arrive(0, Cycle{5});
  const auto rel = b.arrive(1, Cycle{7});
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, Cycle{17});
}

TEST(Barrier, DepartWithNoWaitersReleasesNothing) {
  Barrier b(2, Cycle{10});
  EXPECT_FALSE(b.depart(0, Cycle{5}).has_value());
  EXPECT_FALSE(b.depart(1, Cycle{6}).has_value());
  EXPECT_EQ(b.episodes(), 0u);
}

TEST(Barrier, DoubleDepartIsIdempotent) {
  Barrier b(2, Cycle{10});
  EXPECT_FALSE(b.depart(0, Cycle{5}).has_value());
  EXPECT_FALSE(b.depart(0, Cycle{6}).has_value());
}

TEST(Barrier, ArrivalAfterDepartureThrows) {
  Barrier b(2, Cycle{10});
  b.depart(0, Cycle{5});
  EXPECT_THROW(b.arrive(0, Cycle{6}), CheckFailure);
}

TEST(Barrier, SingleParticipantReleasesImmediately) {
  Barrier b(1, Cycle{7});
  const auto rel = b.arrive(0, Cycle{3});
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, Cycle{10});
}

}  // namespace
}  // namespace ascoma::sim
