#include "sim/barrier.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::sim {
namespace {

TEST(Barrier, LastArrivalReleasesAtMaxPlusCost) {
  Barrier b(3, 100);
  EXPECT_FALSE(b.arrive(0, 10).has_value());
  EXPECT_FALSE(b.arrive(1, 50).has_value());
  const auto rel = b.arrive(2, 30);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, 150u);  // max arrival 50 + cost 100
  EXPECT_EQ(b.episodes(), 1u);
}

TEST(Barrier, ArrivalTimesRecorded) {
  Barrier b(2, 10);
  b.arrive(0, 42);
  b.arrive(1, 99);
  EXPECT_EQ(b.arrival_of(0), 42u);
  EXPECT_EQ(b.arrival_of(1), 99u);
}

TEST(Barrier, EpisodesResetForReuse) {
  Barrier b(2, 10);
  b.arrive(0, 0);
  EXPECT_TRUE(b.arrive(1, 5).has_value());
  // Second episode works identically.
  EXPECT_FALSE(b.arrive(0, 100).has_value());
  const auto rel = b.arrive(1, 120);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, 130u);
  EXPECT_EQ(b.episodes(), 2u);
}

TEST(Barrier, DoubleArrivalThrows) {
  Barrier b(2, 10);
  b.arrive(0, 0);
  EXPECT_THROW(b.arrive(0, 1), CheckFailure);
}

TEST(Barrier, DepartCompletesEpisode) {
  Barrier b(3, 10);
  b.arrive(0, 5);
  b.arrive(1, 8);
  // Processor 2 ends its stream instead of arriving.
  const auto rel = b.depart(2, 20);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, 30u);  // max(8, 20) + 10
}

TEST(Barrier, DepartedProcessorNotRequiredLater) {
  Barrier b(3, 10);
  b.depart(2, 0);
  b.arrive(0, 5);
  const auto rel = b.arrive(1, 7);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, 17u);
}

TEST(Barrier, DepartWithNoWaitersReleasesNothing) {
  Barrier b(2, 10);
  EXPECT_FALSE(b.depart(0, 5).has_value());
  EXPECT_FALSE(b.depart(1, 6).has_value());
  EXPECT_EQ(b.episodes(), 0u);
}

TEST(Barrier, DoubleDepartIsIdempotent) {
  Barrier b(2, 10);
  EXPECT_FALSE(b.depart(0, 5).has_value());
  EXPECT_FALSE(b.depart(0, 6).has_value());
}

TEST(Barrier, ArrivalAfterDepartureThrows) {
  Barrier b(2, 10);
  b.depart(0, 5);
  EXPECT_THROW(b.arrive(0, 6), CheckFailure);
}

TEST(Barrier, SingleParticipantReleasesImmediately) {
  Barrier b(1, 7);
  const auto rel = b.arrive(0, 3);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(*rel, 10u);
}

}  // namespace
}  // namespace ascoma::sim
