#include "vm/page_table.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::vm {
namespace {

TEST(PageTable, InitiallyUnmapped) {
  PageTable pt(8);
  for (VPageId p = 0; p < 8; ++p)
    EXPECT_EQ(pt.mode(p), PageMode::kUnmapped);
  EXPECT_EQ(pt.mapped_pages(), 0u);
}

TEST(PageTable, MapHome) {
  PageTable pt(8);
  pt.map_home(3);
  EXPECT_EQ(pt.mode(3), PageMode::kHome);
  EXPECT_EQ(pt.mapped_pages(), 1u);
  EXPECT_EQ(pt.scoma_pages(), 0u);
}

TEST(PageTable, MapScomaTracksFrame) {
  PageTable pt(8);
  pt.map_scoma(2, 5);
  EXPECT_EQ(pt.mode(2), PageMode::kScoma);
  EXPECT_EQ(pt.frame(2), 5u);
  EXPECT_EQ(pt.scoma_pages(), 1u);
}

TEST(PageTable, DoubleMapThrows) {
  PageTable pt(8);
  pt.map_numa(1);
  EXPECT_THROW(pt.map_numa(1), ascoma::CheckFailure);
  EXPECT_THROW(pt.map_home(1), ascoma::CheckFailure);
  EXPECT_THROW(pt.map_scoma(1, 0), ascoma::CheckFailure);
}

TEST(PageTable, UnmapReturnsToUnmapped) {
  PageTable pt(8);
  pt.map_scoma(2, 5);
  pt.unmap(2);
  EXPECT_EQ(pt.mode(2), PageMode::kUnmapped);
  EXPECT_EQ(pt.mapped_pages(), 0u);
  EXPECT_EQ(pt.scoma_pages(), 0u);
  pt.map_numa(2);  // can remap
}

TEST(PageTable, UnmapUnmappedThrows) {
  PageTable pt(8);
  EXPECT_THROW(pt.unmap(0), ascoma::CheckFailure);
}

TEST(PageTable, DowngradeReleasesFrame) {
  PageTable pt(8);
  pt.map_scoma(4, 9);
  pt.set_ref_bit(4);
  EXPECT_EQ(pt.downgrade_to_numa(4), 9u);
  EXPECT_EQ(pt.mode(4), PageMode::kNuma);
  EXPECT_EQ(pt.frame(4), kInvalidFrame);
  EXPECT_FALSE(pt.ref_bit(4));  // ref bit cleared on downgrade
  EXPECT_EQ(pt.scoma_pages(), 0u);
  EXPECT_EQ(pt.mapped_pages(), 1u);
}

TEST(PageTable, DowngradeNonScomaThrows) {
  PageTable pt(8);
  pt.map_numa(1);
  EXPECT_THROW(pt.downgrade_to_numa(1), ascoma::CheckFailure);
}

TEST(PageTable, UpgradeFromNuma) {
  PageTable pt(8);
  pt.map_numa(1);
  pt.upgrade_to_scoma(1, 7);
  EXPECT_EQ(pt.mode(1), PageMode::kScoma);
  EXPECT_EQ(pt.frame(1), 7u);
  EXPECT_EQ(pt.scoma_pages(), 1u);
}

TEST(PageTable, UpgradeNonNumaThrows) {
  PageTable pt(8);
  pt.map_home(1);
  EXPECT_THROW(pt.upgrade_to_scoma(1, 0), ascoma::CheckFailure);
}

TEST(PageTable, RefBits) {
  PageTable pt(8);
  pt.map_scoma(0, 0);
  EXPECT_FALSE(pt.ref_bit(0));
  pt.set_ref_bit(0);
  EXPECT_TRUE(pt.ref_bit(0));
  pt.clear_ref_bit(0);
  EXPECT_FALSE(pt.ref_bit(0));
}

TEST(PageTable, UpgradeDowngradeRoundTrip) {
  PageTable pt(4);
  pt.map_numa(0);
  pt.upgrade_to_scoma(0, 3);
  EXPECT_EQ(pt.downgrade_to_numa(0), 3u);
  pt.upgrade_to_scoma(0, 1);
  EXPECT_EQ(pt.frame(0), 1u);
}

}  // namespace
}  // namespace ascoma::vm
