#include "vm/page_table.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::vm {
namespace {

TEST(PageTable, InitiallyUnmapped) {
  PageTable pt(8);
  for (VPageId p{0}; p.value() < 8; ++p)
    EXPECT_EQ(pt.mode(p), PageMode::kUnmapped);
  EXPECT_EQ(pt.mapped_pages(), 0u);
}

TEST(PageTable, MapHome) {
  PageTable pt(8);
  pt.map_home(VPageId{3});
  EXPECT_EQ(pt.mode(VPageId{3}), PageMode::kHome);
  EXPECT_EQ(pt.mapped_pages(), 1u);
  EXPECT_EQ(pt.scoma_pages(), 0u);
}

TEST(PageTable, MapScomaTracksFrame) {
  PageTable pt(8);
  pt.map_scoma(VPageId{2}, FrameId{5});
  EXPECT_EQ(pt.mode(VPageId{2}), PageMode::kScoma);
  EXPECT_EQ(pt.frame(VPageId{2}), FrameId{5});
  EXPECT_EQ(pt.scoma_pages(), 1u);
}

TEST(PageTable, DoubleMapThrows) {
  PageTable pt(8);
  pt.map_numa(VPageId{1});
  EXPECT_THROW(pt.map_numa(VPageId{1}), ascoma::CheckFailure);
  EXPECT_THROW(pt.map_home(VPageId{1}), ascoma::CheckFailure);
  EXPECT_THROW(pt.map_scoma(VPageId{1}, FrameId{0}), ascoma::CheckFailure);
}

TEST(PageTable, UnmapReturnsToUnmapped) {
  PageTable pt(8);
  pt.map_scoma(VPageId{2}, FrameId{5});
  pt.unmap(VPageId{2});
  EXPECT_EQ(pt.mode(VPageId{2}), PageMode::kUnmapped);
  EXPECT_EQ(pt.mapped_pages(), 0u);
  EXPECT_EQ(pt.scoma_pages(), 0u);
  pt.map_numa(VPageId{2});  // can remap
}

TEST(PageTable, UnmapUnmappedThrows) {
  PageTable pt(8);
  EXPECT_THROW(pt.unmap(VPageId{0}), ascoma::CheckFailure);
}

TEST(PageTable, DowngradeReleasesFrame) {
  PageTable pt(8);
  pt.map_scoma(VPageId{4}, FrameId{9});
  pt.set_ref_bit(VPageId{4});
  EXPECT_EQ(pt.downgrade_to_numa(VPageId{4}), FrameId{9});
  EXPECT_EQ(pt.mode(VPageId{4}), PageMode::kNuma);
  EXPECT_EQ(pt.frame(VPageId{4}), kInvalidFrame);
  EXPECT_FALSE(pt.ref_bit(VPageId{4}));  // ref bit cleared on downgrade
  EXPECT_EQ(pt.scoma_pages(), 0u);
  EXPECT_EQ(pt.mapped_pages(), 1u);
}

TEST(PageTable, DowngradeNonScomaThrows) {
  PageTable pt(8);
  pt.map_numa(VPageId{1});
  EXPECT_THROW(pt.downgrade_to_numa(VPageId{1}), ascoma::CheckFailure);
}

TEST(PageTable, UpgradeFromNuma) {
  PageTable pt(8);
  pt.map_numa(VPageId{1});
  pt.upgrade_to_scoma(VPageId{1}, FrameId{7});
  EXPECT_EQ(pt.mode(VPageId{1}), PageMode::kScoma);
  EXPECT_EQ(pt.frame(VPageId{1}), FrameId{7});
  EXPECT_EQ(pt.scoma_pages(), 1u);
}

TEST(PageTable, UpgradeNonNumaThrows) {
  PageTable pt(8);
  pt.map_home(VPageId{1});
  EXPECT_THROW(pt.upgrade_to_scoma(VPageId{1}, FrameId{0}), ascoma::CheckFailure);
}

TEST(PageTable, RefBits) {
  PageTable pt(8);
  pt.map_scoma(VPageId{0}, FrameId{0});
  EXPECT_FALSE(pt.ref_bit(VPageId{0}));
  pt.set_ref_bit(VPageId{0});
  EXPECT_TRUE(pt.ref_bit(VPageId{0}));
  pt.clear_ref_bit(VPageId{0});
  EXPECT_FALSE(pt.ref_bit(VPageId{0}));
}

TEST(PageTable, UpgradeDowngradeRoundTrip) {
  PageTable pt(4);
  pt.map_numa(VPageId{0});
  pt.upgrade_to_scoma(VPageId{0}, FrameId{3});
  EXPECT_EQ(pt.downgrade_to_numa(VPageId{0}), FrameId{3});
  pt.upgrade_to_scoma(VPageId{0}, FrameId{1});
  EXPECT_EQ(pt.frame(VPageId{0}), FrameId{1});
}

}  // namespace
}  // namespace ascoma::vm
