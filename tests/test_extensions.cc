// Tests for the two modeled extensions beyond the paper's baseline machine:
// SMP nodes (procs_per_node > 1) and the store-buffer consistency option.

#include <gtest/gtest.h>

#include "common/check.hh"
#include "core/machine.hh"
#include "workload/synthetic.hh"

namespace ascoma::core {
namespace {

workload::SyntheticWorkload smp_workload(std::uint32_t ppn,
                                         double write_fraction = 0.1) {
  workload::SyntheticParams p;
  p.nodes = 4;
  p.procs_per_node = ppn;
  p.home_pages = 32;
  p.remote_pages = 16;
  p.iterations = 4;
  p.loads_per_page = 16;
  p.write_fraction = write_fraction;
  return workload::SyntheticWorkload(p);
}

MachineConfig config(ArchModel arch, double pressure) {
  MachineConfig cfg;
  cfg.arch = arch;
  cfg.memory_pressure = pressure;
  return cfg;
}

// ---- SMP nodes ----------------------------------------------------------------

TEST(SmpNodes, RunsAndBalancesAccounting) {
  auto wl = smp_workload(2);
  const RunResult r = simulate(config(ArchModel::kAsComa, 0.5), wl);
  EXPECT_EQ(r.per_node.size(), 8u);  // 4 nodes x 2 processors
  EXPECT_EQ(r.config.procs_per_node, 2u);
  for (const NodeStats& n : r.per_node) {
    EXPECT_EQ(n.shared_loads + n.shared_stores,
              n.l1_hits + n.misses.total());
  }
}

TEST(SmpNodes, DeterministicAndAuditClean) {
  auto wl = smp_workload(2);
  const RunResult a = simulate(config(ArchModel::kRNuma, 0.7), wl);
  const RunResult b = simulate(config(ArchModel::kRNuma, 0.7), wl);
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_EQ(a.stats.totals.misses.total(), b.stats.totals.misses.total());
}

TEST(SmpNodes, SiblingTransfersOccur) {
  // Two processors on a node sweep the same partition: the second finds
  // lines in its sibling's L1 via the bus snoop.
  auto wl = smp_workload(2, /*write_fraction=*/0.0);
  MachineConfig cfg = config(ArchModel::kCcNuma, 0.5);
  Machine m(cfg, wl);
  m.run();
  EXPECT_GT(m.memory().sibling_transfers(), 0u);
}

TEST(SmpNodes, NoSiblingTransfersWithOneProcessor) {
  auto wl = smp_workload(1);
  MachineConfig cfg = config(ArchModel::kCcNuma, 0.5);
  Machine m(cfg, wl);
  m.run();
  EXPECT_EQ(m.memory().sibling_transfers(), 0u);
}

TEST(SmpNodes, TimeBucketsStillSumToMakespan) {
  auto wl = smp_workload(2);
  const RunResult r = simulate(config(ArchModel::kAsComa, 0.5), wl);
  Cycle max_total{0};
  for (const NodeStats& n : r.per_node)
    max_total = std::max(max_total, n.time.total());
  EXPECT_EQ(max_total, r.stats.parallel_cycles);
}

TEST(SmpNodes, FourProcessorsPerNodeWork) {
  auto wl = smp_workload(4);
  const RunResult r = simulate(config(ArchModel::kScoma, 0.3), wl);
  EXPECT_EQ(r.per_node.size(), 16u);
  EXPECT_GT(r.cycles(), Cycle{0});
}

TEST(SmpNodes, MoreProcessorsContendOnNodeResources) {
  // Same total work per processor; more processors per node => bus/DRAM
  // contention makes each node's critical path no faster than 1-proc nodes
  // (identical per-proc streams, shared bus).
  auto wl1 = smp_workload(1);
  auto wl2 = smp_workload(2);
  const RunResult r1 = simulate(config(ArchModel::kCcNuma, 0.5), wl1);
  const RunResult r2 = simulate(config(ArchModel::kCcNuma, 0.5), wl2);
  EXPECT_GE(r2.cycles(), r1.cycles());
}

TEST(SmpNodes, CensusCountsNodesNotProcessors) {
  auto wl = smp_workload(2);
  const RunResult r = simulate(config(ArchModel::kCcNuma, 0.5), wl);
  // Remote page pairs are node-level: with 2 procs/node having independent
  // 16-page hot sets, each node touches at most 32 distinct remote pages.
  EXPECT_LE(r.remote_page_node_pairs, 4u * 32);
  EXPECT_GT(r.remote_page_node_pairs, 0u);
}

// ---- store buffer ---------------------------------------------------------------

workload::SyntheticWorkload store_heavy() {
  workload::SyntheticParams p;
  p.nodes = 4;
  p.home_pages = 32;
  p.remote_pages = 24;
  p.iterations = 4;
  p.loads_per_page = 32;
  p.write_fraction = 0.6;
  return workload::SyntheticWorkload(p);
}

TEST(StoreBuffer, ReducesStallForStoreHeavyWork) {
  auto wl = store_heavy();
  MachineConfig blocking = config(ArchModel::kCcNuma, 0.5);
  MachineConfig buffered = blocking;
  buffered.blocking_stores = false;
  const RunResult rb = simulate(blocking, wl);
  const RunResult rs = simulate(buffered, wl);
  EXPECT_LT(rs.cycles(), rb.cycles());
  // The memory system does identical work either way.
  EXPECT_EQ(rs.stats.totals.misses.total(), rb.stats.totals.misses.total());
}

TEST(StoreBuffer, LoadsStillBlock) {
  workload::SyntheticParams p;
  p.nodes = 4;
  p.home_pages = 32;
  p.remote_pages = 24;
  p.iterations = 4;
  p.write_fraction = 0.0;  // loads only
  workload::SyntheticWorkload wl(p);
  MachineConfig blocking = config(ArchModel::kCcNuma, 0.5);
  MachineConfig buffered = blocking;
  buffered.blocking_stores = false;
  EXPECT_EQ(simulate(blocking, wl).cycles(), simulate(buffered, wl).cycles());
}

TEST(StoreBuffer, MoreEntriesHelpMonotonically) {
  auto wl = store_heavy();
  MachineConfig cfg = config(ArchModel::kCcNuma, 0.5);
  cfg.blocking_stores = false;
  cfg.store_buffer_entries = 1;
  const Cycle one = simulate(cfg, wl).cycles();
  cfg.store_buffer_entries = 16;
  const Cycle sixteen = simulate(cfg, wl).cycles();
  EXPECT_LE(sixteen, one);
}

TEST(StoreBuffer, ZeroEntriesRejected) {
  auto wl = store_heavy();
  MachineConfig cfg = config(ArchModel::kCcNuma, 0.5);
  cfg.blocking_stores = false;
  cfg.store_buffer_entries = 0;
  EXPECT_THROW(Machine(cfg, wl), CheckFailure);
}

TEST(StoreBuffer, DeterministicWithArchitectures) {
  auto wl = store_heavy();
  for (ArchModel arch : {ArchModel::kScoma, ArchModel::kAsComa}) {
    MachineConfig cfg = config(arch, 0.6);
    cfg.blocking_stores = false;
    const RunResult a = simulate(cfg, wl);
    const RunResult b = simulate(cfg, wl);
    EXPECT_EQ(a.cycles(), b.cycles()) << to_string(arch);
  }
}

TEST(StoreBuffer, WorksWithSmpNodes) {
  auto wl = smp_workload(2, 0.4);
  MachineConfig cfg = config(ArchModel::kAsComa, 0.6);
  cfg.blocking_stores = false;
  const RunResult r = simulate(cfg, wl);
  EXPECT_GT(r.cycles(), Cycle{0});
  for (const NodeStats& n : r.per_node) {
    EXPECT_EQ(n.shared_loads + n.shared_stores,
              n.l1_hits + n.misses.total());
  }
}

}  // namespace
}  // namespace ascoma::core
