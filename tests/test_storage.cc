#include "arch/storage.hh"

#include <gtest/gtest.h>

#include <algorithm>

namespace ascoma::arch {
namespace {

// Table 2 of the paper: CC-NUMA needs no extra storage; S-COMA pays page
// cache state; hybrids additionally pay refetch counters per page per node.

TEST(Storage, CcNumaIsFree) {
  MachineConfig cfg;
  const auto c = estimate_storage(ArchModel::kCcNuma, cfg, 1024);
  EXPECT_EQ(c.total_bytes(), 0u);
  EXPECT_TRUE(c.complexity.empty());
}

TEST(Storage, ScomaPaysPageCacheState) {
  MachineConfig cfg;
  const auto c = estimate_storage(ArchModel::kScoma, cfg, 1024);
  // 1024 pages * 32 blocks * 2 bits / 8 = 8192 bytes of block state.
  EXPECT_EQ(c.page_cache_state_bytes, 8192u);
  EXPECT_EQ(c.page_map_bytes, 4096u);  // 32 bits per page
  EXPECT_EQ(c.refetch_counter_bytes, 0u);
  EXPECT_FALSE(c.complexity.empty());
}

TEST(Storage, HybridsAddRefetchCounters) {
  MachineConfig cfg;  // 8 nodes
  for (ArchModel m :
       {ArchModel::kRNuma, ArchModel::kVcNuma, ArchModel::kAsComa}) {
    const auto c = estimate_storage(m, cfg, 1024);
    EXPECT_EQ(c.refetch_counter_bytes, 1024u * 8) << to_string(m);
    EXPECT_GT(c.total_bytes(),
              estimate_storage(ArchModel::kScoma, cfg, 1024).total_bytes());
  }
}

TEST(Storage, HybridComplexityMentionsRefetchMachinery) {
  MachineConfig cfg;
  const auto c = estimate_storage(ArchModel::kRNuma, cfg, 64);
  const bool found = std::any_of(
      c.complexity.begin(), c.complexity.end(), [](const std::string& s) {
        return s.find("refetch counter") != std::string::npos;
      });
  EXPECT_TRUE(found);
}

TEST(Storage, VcNumaFlagsNonCommodityHardware) {
  MachineConfig cfg;
  const auto c = estimate_storage(ArchModel::kVcNuma, cfg, 64);
  const bool found = std::any_of(
      c.complexity.begin(), c.complexity.end(), [](const std::string& s) {
        return s.find("non-commodity") != std::string::npos;
      });
  EXPECT_TRUE(found);
}

TEST(Storage, ScalesLinearlyWithPages) {
  MachineConfig cfg;
  const auto small = estimate_storage(ArchModel::kAsComa, cfg, 100);
  const auto large = estimate_storage(ArchModel::kAsComa, cfg, 200);
  EXPECT_EQ(large.total_bytes(), 2 * small.total_bytes());
}

}  // namespace
}  // namespace ascoma::arch
