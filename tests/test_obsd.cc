// obsd embedded HTTP server tests (ARCHITECTURE.md §16): a real server on a
// kernel-chosen ephemeral port talked to over real sockets — routing, 404 /
// 405 / 400 behaviour, query parsing, clean shutdown while a request is
// mid-flight — plus the served-sweep integration: scraping /metrics,
// /progress, /jobs, /jobs/<fingerprint> and /events while a multi-threaded
// sweep runs, and the zero-cost guarantee that an unserved sweep charges
// zero serve time (mirroring the result store's StorelessSweepCharges...).

#include "obsd/server.hh"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep.hh"
#include "obs/metrics.hh"

namespace ascoma {
namespace {

/// Connect to 127.0.0.1:`port` and return the connected fd, or -1.
int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Send `raw` and read the whole response (Connection: close — until EOF).
/// Empty string when the connection fails.
std::string http_raw(std::uint16_t port, const std::string& raw) {
  const int fd = connect_to(port);
  if (fd < 0) return {};
  std::size_t off = 0;
  while (off < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + off, raw.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    off += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string http_get(std::uint16_t port, const std::string& target) {
  return http_raw(port, "GET " + target + " HTTP/1.0\r\n\r\n");
}

/// Body of a raw response (everything after the blank line).
std::string body_of(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string{} : response.substr(pos + 4);
}

bool contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(ObsdServer, StartsOnEphemeralPortServesAndStops) {
  obsd::Server srv;
  srv.route("/ping", [](const obsd::Request&) {
    return obsd::Response{200, "text/plain; charset=utf-8", "pong\n"};
  });
  ASSERT_TRUE(srv.start(0)) << srv.last_error();
  EXPECT_TRUE(srv.running());
  EXPECT_NE(srv.port(), 0);

  const std::string resp = http_get(srv.port(), "/ping");
  EXPECT_TRUE(contains(resp, "HTTP/1.0 200 OK")) << resp;
  EXPECT_TRUE(contains(resp, "Content-Length: 5")) << resp;
  EXPECT_TRUE(contains(resp, "Connection: close")) << resp;
  EXPECT_EQ(body_of(resp), "pong\n");

  srv.stop();
  EXPECT_FALSE(srv.running());
  srv.stop();  // idempotent
}

TEST(ObsdServer, UnknownPathIs404AndHookObservesIt) {
  obsd::Server srv;
  srv.route("/ping", [](const obsd::Request&) { return obsd::Response{}; });
  int hook_status = 0;
  std::string hook_path;
  srv.set_request_hook(
      [&](int status, std::size_t, const std::string& path) {
        hook_status = status;
        hook_path = path;
      });
  ASSERT_TRUE(srv.start(0)) << srv.last_error();

  const std::string resp = http_get(srv.port(), "/missing");
  EXPECT_TRUE(contains(resp, "HTTP/1.0 404 Not Found")) << resp;
  EXPECT_TRUE(contains(body_of(resp), "not found: /missing")) << resp;
  srv.stop();
  EXPECT_EQ(hook_status, 404);
  EXPECT_EQ(hook_path, "/missing");
}

TEST(ObsdServer, NonGetIs405WithAllowHeader) {
  obsd::Server srv;
  srv.route("/ping", [](const obsd::Request&) { return obsd::Response{}; });
  ASSERT_TRUE(srv.start(0)) << srv.last_error();
  const std::string resp = http_raw(srv.port(), "POST /ping HTTP/1.0\r\n\r\n");
  EXPECT_TRUE(contains(resp, "HTTP/1.0 405 Method Not Allowed")) << resp;
  EXPECT_TRUE(contains(resp, "Allow: GET")) << resp;
  srv.stop();
}

TEST(ObsdServer, MalformedRequestLineIs400) {
  obsd::Server srv;
  ASSERT_TRUE(srv.start(0)) << srv.last_error();
  const std::string resp = http_raw(srv.port(), "NONSENSE\r\n\r\n");
  EXPECT_TRUE(contains(resp, "HTTP/1.0 400 Bad Request")) << resp;
  srv.stop();
}

TEST(ObsdServer, ExactRoutesWinAndLongestPrefixDispatches) {
  obsd::Server srv;
  srv.route("/a/b", [](const obsd::Request&) {
    return obsd::Response{200, "text/plain; charset=utf-8", "exact\n"};
  });
  srv.route_prefix("/a/", [](const obsd::Request&) {
    return obsd::Response{200, "text/plain; charset=utf-8", "short\n"};
  });
  srv.route_prefix("/a/b/", [](const obsd::Request& r) {
    return obsd::Response{200, "text/plain; charset=utf-8",
                          "long:" + r.path + "\n"};
  });
  ASSERT_TRUE(srv.start(0)) << srv.last_error();
  EXPECT_EQ(body_of(http_get(srv.port(), "/a/b")), "exact\n");
  EXPECT_EQ(body_of(http_get(srv.port(), "/a/b/c")), "long:/a/b/c\n");
  EXPECT_EQ(body_of(http_get(srv.port(), "/a/x")), "short\n");
  srv.stop();
}

TEST(ObsdServer, QueryStringIsSplitAndParsed) {
  obsd::Server srv;
  std::string seen_query;
  srv.route("/events", [&](const obsd::Request& r) {
    seen_query = r.query;
    return obsd::Response{};
  });
  ASSERT_TRUE(srv.start(0)) << srv.last_error();
  const std::string resp = http_get(srv.port(), "/events?last=8&x=1");
  EXPECT_TRUE(contains(resp, "HTTP/1.0 200 OK")) << resp;
  srv.stop();
  EXPECT_EQ(seen_query, "last=8&x=1");

  EXPECT_EQ(obsd::query_u64("last=5", "last", 100), 5u);
  EXPECT_EQ(obsd::query_u64("a=1&last=7", "last", 100), 7u);
  EXPECT_EQ(obsd::query_u64("", "last", 100), 100u);
  EXPECT_EQ(obsd::query_u64("last=abc", "last", 100), 100u);
  EXPECT_EQ(obsd::query_u64("last=", "last", 100), 100u);
  EXPECT_EQ(obsd::query_u64("last=99999999999999999999", "last", 100), 100u);
}

// A client that connects, sends half a request line and then goes silent
// must not wedge shutdown: the per-connection read loop polls with a short
// tick and re-checks the stop flag, so stop() returns promptly instead of
// waiting out the 2 s read budget.
TEST(ObsdServer, StopsCleanlyWhileRequestIsMidFlight) {
  obsd::Server srv;
  srv.route("/ping", [](const obsd::Request&) { return obsd::Response{}; });
  ASSERT_TRUE(srv.start(0)) << srv.last_error();

  const int fd = connect_to(srv.port());
  ASSERT_GE(fd, 0);
  const char partial[] = "GET /pi";  // no terminator, never completed
  ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, 0), 0);
  // Give the serve thread a moment to accept and enter the read loop.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = std::chrono::steady_clock::now();
  srv.stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::milliseconds(1000))
      << "stop() waited out the read budget instead of honouring the flag";
  ::close(fd);
}

// Regression for the stop()→worker handshake ordering (lint_concurrency
// C1, ARCHITECTURE.md §18): stop() publishes with a release store and the
// read loop polls with acquire loads, so a stop issued while read_request
// is parked on a half-sent request must complete within a few 50 ms poll
// ticks — never by waiting out the 2 s read budget.  Three rounds so a
// lost-wakeup regression cannot hide behind one lucky tick.
TEST(ObsdServer, StopMidRequestCompletesWithinPollTicks) {
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(round);
    obsd::Server srv;
    srv.route("/ping", [](const obsd::Request&) { return obsd::Response{}; });
    ASSERT_TRUE(srv.start(0)) << srv.last_error();

    const int fd = connect_to(srv.port());
    ASSERT_GE(fd, 0);
    const char partial[] = "GET /ping HTTP/1.0\r\n";  // header never finished
    ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, 0), 0);
    // Let the serve thread accept and park in the read loop's poll tick.
    std::this_thread::sleep_for(std::chrono::milliseconds(60));

    const auto t0 = std::chrono::steady_clock::now();
    srv.stop();  // joins the serve thread
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    // Budget: one in-flight poll tick plus generous CI scheduling slack —
    // still far below the read budget a broken handshake would burn.
    EXPECT_LT(elapsed, std::chrono::milliseconds(750))
        << "stop mid-request took more than a few poll ticks";
    ::close(fd);
  }
}

// ---- served sweep integration ---------------------------------------------

std::vector<core::SweepJob> small_jobs(std::size_t n, double scale) {
  std::vector<core::SweepJob> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    core::SweepJob j;
    j.config.arch = ArchModel::kAsComa;
    j.config.memory_pressure = 0.5;
    j.workload = "fft";
    j.workload_scale = scale;
    j.label = "job" + std::to_string(i);
    jobs.push_back(j);
  }
  return jobs;
}

// Scrape every endpoint of a real served sweep.  The serve_ready callback
// runs on the sweep thread after the server is listening but before any
// worker starts, so those scrapes see a deterministic all-pending world; a
// scraper thread then hammers /metrics and /progress concurrently with the
// 4 worker threads for the rest of the run (the CI TSan job runs this).
TEST(ObsdSweep, ScrapeDuringLiveMultiThreadedSweep) {
  std::vector<core::SweepJob> jobs = core::paper_grid("em3d", {0.3, 0.7});
  for (core::SweepJob& j : jobs) j.workload_scale = 0.3;
  ASSERT_EQ(jobs.size(), 9u);

  obs::Registry reg;
  core::SweepOptions opts;
  opts.threads = 4;
  opts.serve_port = std::uint16_t{0};
  opts.registry = &reg;

  std::string metrics0, progress0, jobs0, job0, notfound0, events0;
  std::atomic<bool> sweep_done{false};
  std::thread scraper;
  opts.serve_ready = [&](std::uint16_t port) {
    // Deterministic: listening, every job still pending.
    metrics0 = http_get(port, "/metrics");
    progress0 = http_get(port, "/progress");
    jobs0 = http_get(port, "/jobs");
    const std::size_t fp_pos = jobs0.find("\"fingerprint\":\"");
    if (fp_pos != std::string::npos) {
      const std::string fp = jobs0.substr(fp_pos + 15, 16);
      job0 = http_get(port, "/jobs/" + fp);
    }
    notfound0 = http_get(port, "/nope");
    events0 = http_get(port, "/events?last=16");
    // Concurrent: keep scraping until the sweep finishes.
    scraper = std::thread([&, port] {
      while (!sweep_done.load()) {
        (void)http_get(port, "/metrics");
        (void)http_get(port, "/progress");
      }
    });
  };

  const std::vector<core::SweepResult> results = core::run_sweep(jobs, opts);
  sweep_done.store(true);
  ASSERT_TRUE(scraper.joinable());  // serve_ready must have fired
  scraper.join();

  // The deterministic scrapes.
  EXPECT_TRUE(contains(metrics0, "HTTP/1.0 200 OK")) << metrics0;
  EXPECT_TRUE(contains(metrics0, "version=0.0.4")) << metrics0;
  EXPECT_TRUE(contains(metrics0, "# TYPE ascoma_sweep_jobs gauge"));
  EXPECT_TRUE(contains(metrics0, "ascoma_sweep_jobs 9"));
  EXPECT_TRUE(contains(progress0, "Content-Type: application/json"));
  EXPECT_TRUE(contains(progress0, "\"sweep\":\"progress\""));
  EXPECT_TRUE(contains(progress0, "\"done\":0"));
  EXPECT_TRUE(contains(progress0, "\"total\":9"));
  EXPECT_TRUE(contains(jobs0, "\"total\":9"));
  EXPECT_TRUE(contains(jobs0, "\"pending\":9"));
  EXPECT_TRUE(contains(jobs0, "\"fingerprint\":\""));
  EXPECT_TRUE(contains(job0, "HTTP/1.0 200 OK")) << job0;
  EXPECT_TRUE(contains(job0, "\"state\":\"pending\"")) << job0;
  EXPECT_TRUE(contains(notfound0, "HTTP/1.0 404 Not Found"));
  // The tail already carries the serve events of the scrapes above.
  EXPECT_TRUE(contains(events0, "\"seq\":0")) << events0;
  EXPECT_TRUE(contains(events0, "\"kind\":\"serve_request\"")) << events0;
  EXPECT_TRUE(contains(events0, "\"kind\":\"serve_error\"")) << events0;

  // The sweep itself is unaffected by being watched.
  ASSERT_EQ(results.size(), 9u);
  for (const core::SweepResult& r : results) {
    EXPECT_GT(r.accesses(), 0u);
    EXPECT_GT(r.timing.serve.value(), 0u) << r.job.label;
    EXPECT_EQ(r.result.config.registry, nullptr) << r.job.label;
  }

  // The caller-owned registry survives run_sweep and holds the final state.
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_TRUE(contains(text, "ascoma_sweep_jobs_total{state=\"done\"} 9"));
  EXPECT_TRUE(contains(text, "ascoma_sweep_jobs_running 0"));
  EXPECT_TRUE(contains(text, "ascoma_sweep_job_wall_ns_count 9"));
  EXPECT_TRUE(contains(text, "ascoma_sweep_sim_cycles_total"));
  EXPECT_TRUE(contains(text, "ascoma_events_total{kind="));
  EXPECT_TRUE(contains(text, "ascoma_node_free_frames{node=\"0\"}"));
  EXPECT_TRUE(contains(text, "ascoma_serve_requests_total{endpoint=\"metrics\"}"));
  // Exactly one error response was provoked (the /nope 404).
  EXPECT_TRUE(contains(text, "ascoma_serve_errors_total 1")) << text;
}

// Mirror of DurableSweep.StorelessSweepChargesZeroStoreTime: with
// serve_port unset the observability plane must be completely free — no
// serve thread, no registry, and a hard zero in the serve_ns column.
TEST(ObsdSweep, ServelessSweepChargesZeroServeTime) {
  core::SweepOptions opts;
  opts.threads = 2;
  const auto results = core::run_sweep(small_jobs(2, 0.2), opts);
  ASSERT_EQ(results.size(), 2u);
  for (const core::SweepResult& r : results) {
    EXPECT_EQ(r.timing.serve.value(), 0u) << r.job.label;
    EXPECT_GT(r.timing.wall.value(), 0u);
  }
}

}  // namespace
}  // namespace ascoma
