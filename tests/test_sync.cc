// Compile-time and runtime contract of src/common/sync.hh: the annotated
// primitives are zero-cost overlays over the std types (the attributes
// may change what clang -Wthread-safety proves, but never what the
// compiler emits), and their lock/unlock/condvar semantics match std.
//
// The negative half of the contract — that a GUARDED_BY violation FAILS
// to compile under clang++ -Wthread-safety -Werror — cannot live in a
// test binary; CI's thread-safety step compiles a violating snippet and
// asserts the compile error (see .github/workflows/ci.yml).

#include "common/sync.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "gtest/gtest.h"

namespace {

using ascoma::CondVar;
using ascoma::LockGuard;
using ascoma::Mutex;

// Zero data cost: each wrapper is exactly its std counterpart in memory.
static_assert(sizeof(Mutex) == sizeof(std::mutex));
static_assert(alignof(Mutex) == alignof(std::mutex));
static_assert(sizeof(LockGuard) == sizeof(std::lock_guard<std::mutex>));
static_assert(sizeof(CondVar) == sizeof(std::condition_variable));
static_assert(alignof(CondVar) == alignof(std::condition_variable));

// Like the std types, the wrappers pin their identity: no copies.
static_assert(!std::is_copy_constructible_v<Mutex>);
static_assert(!std::is_copy_constructible_v<LockGuard>);
static_assert(!std::is_copy_constructible_v<CondVar>);

// Zero layout cost for annotated fields: GUARDED_BY on a member changes
// neither size nor layout of the enclosing class.
struct PlainGuarded {
  Mutex mu;
  int value = 0;
};
struct AnnotatedGuarded {
  Mutex mu;
  int value ASCOMA_GUARDED_BY(mu) = 0;
};
static_assert(sizeof(AnnotatedGuarded) == sizeof(PlainGuarded));
static_assert(alignof(AnnotatedGuarded) == alignof(PlainGuarded));

// Zero signature cost: ASCOMA_REQUIRES / ASCOMA_EXCLUDES on a function do
// not change its type.
struct Api {
  Mutex mu;
  int get() ASCOMA_EXCLUDES(mu) {
    LockGuard lk(mu);
    return 1;
  }
  int get_locked() ASCOMA_REQUIRES(mu) { return 2; }
};
static_assert(std::is_same_v<decltype(&Api::get), int (Api::*)()>);
static_assert(std::is_same_v<decltype(&Api::get_locked), int (Api::*)()>);

TEST(Sync, LockGuardProvidesMutualExclusion) {
  Mutex mu;
  long counter = 0;  // guarded by mu; plain long so a race would corrupt it
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        LockGuard lk(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(Sync, CondVarWaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu
  int observed = 0;
  std::thread waiter([&] {
    LockGuard lk(mu);
    cv.wait(mu, [&] { return ready; });
    observed = 1;
  });
  {
    LockGuard lk(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(Sync, CondVarWaitForTimesOutWhenPredicateStaysFalse) {
  Mutex mu;
  CondVar cv;
  LockGuard lk(mu);
  const bool satisfied =
      cv.wait_for(mu, std::chrono::milliseconds(10), [] { return false; });
  EXPECT_FALSE(satisfied);
}

TEST(Sync, CondVarWaitForReturnsTrueOnceNotified) {
  Mutex mu;
  CondVar cv;
  bool done = false;  // guarded by mu
  std::thread setter([&] {
    LockGuard lk(mu);
    done = true;
    cv.notify_all();
  });
  bool satisfied = false;
  {
    LockGuard lk(mu);
    satisfied = cv.wait_for(mu, std::chrono::seconds(30),
                            [&] { return done; });
  }
  setter.join();
  EXPECT_TRUE(satisfied);
}

TEST(Sync, MutexIsHeldAcrossCondVarWaitReturn) {
  // wait() must hand the lock back to the caller's LockGuard: each side
  // mutates the shared stage right after its wait() returns, still under
  // the same guard.  If ownership were dropped, TSan (and the final
  // assertion) would catch the race in this ping-pong.
  Mutex mu;
  CondVar cv;
  int stage = 0;  // guarded by mu
  std::thread bumper([&] {
    {
      LockGuard lk(mu);
      stage = 1;
    }
    cv.notify_one();
    LockGuard lk(mu);
    cv.wait(mu, [&] { return stage == 2; });
    stage = 3;
  });
  {
    LockGuard lk(mu);
    cv.wait(mu, [&] { return stage == 1; });
    stage = 2;
  }
  cv.notify_one();
  bumper.join();
  LockGuard lk(mu);
  EXPECT_EQ(stage, 3);
}

}  // namespace
