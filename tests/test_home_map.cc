#include "vm/home_map.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::vm {
namespace {

TEST(HomeMap, FirstTouchAssigns) {
  HomeMap h(8, 2);
  EXPECT_FALSE(h.assigned(0));
  EXPECT_EQ(h.claim(0, 1), 1u);
  EXPECT_TRUE(h.assigned(0));
  EXPECT_EQ(h.home_of(0), 1u);
  EXPECT_EQ(h.home_pages(1), 1u);
}

TEST(HomeMap, SecondClaimIgnored) {
  HomeMap h(8, 2);
  h.claim(0, 1);
  EXPECT_EQ(h.claim(0, 0), 1u);  // already homed at 1
  EXPECT_EQ(h.home_pages(0), 0u);
}

TEST(HomeMap, CapForcesRoundRobinOverflow) {
  // 8 pages, 2 nodes -> cap 4 per node.  Node 0 touches everything first.
  HomeMap h(8, 2);
  for (VPageId p = 0; p < 8; ++p) h.claim(p, 0);
  EXPECT_EQ(h.home_pages(0), 4u);
  EXPECT_EQ(h.home_pages(1), 4u);  // overflow spilled to node 1
}

TEST(HomeMap, OverflowDistributesAcrossNodes) {
  // 12 pages, 3 nodes -> cap 4.  Node 0 touches all 12.
  HomeMap h(12, 3);
  for (VPageId p = 0; p < 12; ++p) h.claim(p, 0);
  EXPECT_EQ(h.home_pages(0), 4u);
  EXPECT_EQ(h.home_pages(1), 4u);
  EXPECT_EQ(h.home_pages(2), 4u);
}

TEST(HomeMap, ContiguousLayout) {
  HomeMap h(8, 2);
  h.assign_contiguous();
  for (VPageId p = 0; p < 4; ++p) EXPECT_EQ(h.home_of(p), 0u);
  for (VPageId p = 4; p < 8; ++p) EXPECT_EQ(h.home_of(p), 1u);
  EXPECT_EQ(h.max_home_pages(), 4u);
}

TEST(HomeMap, ContiguousWithUnevenPages) {
  HomeMap h(7, 2);  // cap = 4
  h.assign_contiguous();
  EXPECT_EQ(h.home_pages(0), 4u);
  EXPECT_EQ(h.home_pages(1), 3u);
  EXPECT_EQ(h.max_home_pages(), 4u);
}

TEST(HomeMap, HomeOfUnassignedThrows) {
  HomeMap h(4, 2);
  EXPECT_THROW(h.home_of(0), ascoma::CheckFailure);
}

TEST(HomeMap, BoundsChecked) {
  HomeMap h(4, 2);
  EXPECT_THROW(h.claim(4, 0), ascoma::CheckFailure);
  EXPECT_THROW(h.claim(0, 2), ascoma::CheckFailure);
}

}  // namespace
}  // namespace ascoma::vm
