#include "vm/home_map.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::vm {
namespace {

TEST(HomeMap, FirstTouchAssigns) {
  HomeMap h(8, 2);
  EXPECT_FALSE(h.assigned(VPageId{0}));
  EXPECT_EQ(h.claim(VPageId{0}, NodeId{1}), NodeId{1});
  EXPECT_TRUE(h.assigned(VPageId{0}));
  EXPECT_EQ(h.home_of(VPageId{0}), NodeId{1});
  EXPECT_EQ(h.home_pages(NodeId{1}), 1u);
}

TEST(HomeMap, SecondClaimIgnored) {
  HomeMap h(8, 2);
  h.claim(VPageId{0}, NodeId{1});
  EXPECT_EQ(h.claim(VPageId{0}, NodeId{0}), NodeId{1});  // already homed at 1
  EXPECT_EQ(h.home_pages(NodeId{0}), 0u);
}

TEST(HomeMap, CapForcesRoundRobinOverflow) {
  // 8 pages, 2 nodes -> cap 4 per node.  Node 0 touches everything first.
  HomeMap h(8, 2);
  for (VPageId p{0}; p.value() < 8; ++p) h.claim(p, NodeId{0});
  EXPECT_EQ(h.home_pages(NodeId{0}), 4u);
  EXPECT_EQ(h.home_pages(NodeId{1}), 4u);  // overflow spilled to node 1
}

TEST(HomeMap, OverflowDistributesAcrossNodes) {
  // 12 pages, 3 nodes -> cap 4.  Node 0 touches all 12.
  HomeMap h(12, 3);
  for (VPageId p{0}; p.value() < 12; ++p) h.claim(p, NodeId{0});
  EXPECT_EQ(h.home_pages(NodeId{0}), 4u);
  EXPECT_EQ(h.home_pages(NodeId{1}), 4u);
  EXPECT_EQ(h.home_pages(NodeId{2}), 4u);
}

TEST(HomeMap, ContiguousLayout) {
  HomeMap h(8, 2);
  h.assign_contiguous();
  for (VPageId p{0}; p.value() < 4; ++p) EXPECT_EQ(h.home_of(p), NodeId{0});
  for (VPageId p{4}; p < VPageId{8}; ++p) EXPECT_EQ(h.home_of(p), NodeId{1});
  EXPECT_EQ(h.max_home_pages(), 4u);
}

TEST(HomeMap, ContiguousWithUnevenPages) {
  HomeMap h(7, 2);  // cap = 4
  h.assign_contiguous();
  EXPECT_EQ(h.home_pages(NodeId{0}), 4u);
  EXPECT_EQ(h.home_pages(NodeId{1}), 3u);
  EXPECT_EQ(h.max_home_pages(), 4u);
}

TEST(HomeMap, HomeOfUnassignedThrows) {
  HomeMap h(4, 2);
  EXPECT_THROW(h.home_of(VPageId{0}), ascoma::CheckFailure);
}

TEST(HomeMap, BoundsChecked) {
  HomeMap h(4, 2);
  EXPECT_THROW(h.claim(VPageId{4}, NodeId{0}), ascoma::CheckFailure);
  EXPECT_THROW(h.claim(VPageId{0}, NodeId{2}), ascoma::CheckFailure);
}

}  // namespace
}  // namespace ascoma::vm
