#include "mem/rac.hh"

#include <gtest/gtest.h>

namespace ascoma::mem {
namespace {

TEST(Rac, DefaultIsSingleBlock) {
  MachineConfig cfg;
  Rac r(cfg);
  EXPECT_EQ(r.entries(), 1u);
}

TEST(Rac, HoldsLastFilledBlock) {
  MachineConfig cfg;
  Rac r(cfg);
  EXPECT_FALSE(r.probe(BlockId{10}));
  r.fill(BlockId{10});
  EXPECT_TRUE(r.probe(BlockId{10}));
  r.fill(BlockId{11});  // single entry: displaces block 10
  EXPECT_FALSE(r.probe(BlockId{10}));
  EXPECT_TRUE(r.probe(BlockId{11}));
  EXPECT_EQ(r.fills(), 2u);
}

TEST(Rac, InvalidateRemovesOnlyMatchingTag) {
  MachineConfig cfg;
  Rac r(cfg);
  r.fill(BlockId{10});
  EXPECT_FALSE(r.invalidate(BlockId{99}));  // different block (same slot)
  EXPECT_TRUE(r.probe(BlockId{10}));
  EXPECT_TRUE(r.invalidate(BlockId{10}));
  EXPECT_FALSE(r.probe(BlockId{10}));
  EXPECT_FALSE(r.invalidate(BlockId{10}));  // already gone
}

TEST(Rac, LargerRacIsDirectMapped) {
  MachineConfig cfg;
  cfg.rac_bytes = ByteCount{4 * 128};  // 4 entries
  Rac r(cfg);
  EXPECT_EQ(r.entries(), 4u);
  r.fill(BlockId{0});
  r.fill(BlockId{1});
  r.fill(BlockId{2});
  r.fill(BlockId{3});
  EXPECT_TRUE(r.probe(BlockId{0}));
  EXPECT_TRUE(r.probe(BlockId{3}));
  r.fill(BlockId{4});  // maps to slot 0, evicts block 0
  EXPECT_FALSE(r.probe(BlockId{0}));
  EXPECT_TRUE(r.probe(BlockId{4}));
  EXPECT_TRUE(r.probe(BlockId{1}));
}

TEST(Rac, InvalidatePageClearsAllPageBlocks) {
  MachineConfig cfg;
  cfg.rac_bytes = ByteCount{64 * 128};  // 64 entries: a full page (32 blocks) plus room
  Rac r(cfg);
  const BlockId first = cfg.first_block_of_page(VPageId{2});  // page 2
  for (std::uint32_t i = 0; i < cfg.blocks_per_page(); ++i) r.fill(first + i);
  EXPECT_EQ(r.invalidate_page(VPageId{2}), cfg.blocks_per_page());
  for (std::uint32_t i = 0; i < cfg.blocks_per_page(); ++i)
    EXPECT_FALSE(r.probe(first + i));
}

TEST(Rac, HitCounter) {
  MachineConfig cfg;
  Rac r(cfg);
  r.fill(BlockId{5});
  r.note_hit();
  r.note_hit();
  EXPECT_EQ(r.hits(), 2u);
  r.reset();
  EXPECT_EQ(r.hits(), 0u);
  EXPECT_FALSE(r.probe(BlockId{5}));
}

}  // namespace
}  // namespace ascoma::mem
