#include "mem/rac.hh"

#include <gtest/gtest.h>

namespace ascoma::mem {
namespace {

TEST(Rac, DefaultIsSingleBlock) {
  MachineConfig cfg;
  Rac r(cfg);
  EXPECT_EQ(r.entries(), 1u);
}

TEST(Rac, HoldsLastFilledBlock) {
  MachineConfig cfg;
  Rac r(cfg);
  EXPECT_FALSE(r.probe(10));
  r.fill(10);
  EXPECT_TRUE(r.probe(10));
  r.fill(11);  // single entry: displaces block 10
  EXPECT_FALSE(r.probe(10));
  EXPECT_TRUE(r.probe(11));
  EXPECT_EQ(r.fills(), 2u);
}

TEST(Rac, InvalidateRemovesOnlyMatchingTag) {
  MachineConfig cfg;
  Rac r(cfg);
  r.fill(10);
  EXPECT_FALSE(r.invalidate(99));  // different block (same slot)
  EXPECT_TRUE(r.probe(10));
  EXPECT_TRUE(r.invalidate(10));
  EXPECT_FALSE(r.probe(10));
  EXPECT_FALSE(r.invalidate(10));  // already gone
}

TEST(Rac, LargerRacIsDirectMapped) {
  MachineConfig cfg;
  cfg.rac_bytes = 4 * 128;  // 4 entries
  Rac r(cfg);
  EXPECT_EQ(r.entries(), 4u);
  r.fill(0);
  r.fill(1);
  r.fill(2);
  r.fill(3);
  EXPECT_TRUE(r.probe(0));
  EXPECT_TRUE(r.probe(3));
  r.fill(4);  // maps to slot 0, evicts block 0
  EXPECT_FALSE(r.probe(0));
  EXPECT_TRUE(r.probe(4));
  EXPECT_TRUE(r.probe(1));
}

TEST(Rac, InvalidatePageClearsAllPageBlocks) {
  MachineConfig cfg;
  cfg.rac_bytes = 64 * 128;  // 64 entries: a full page (32 blocks) plus room
  Rac r(cfg);
  const BlockId first = 2 * cfg.blocks_per_page();  // page 2
  for (std::uint32_t i = 0; i < cfg.blocks_per_page(); ++i) r.fill(first + i);
  EXPECT_EQ(r.invalidate_page(2), cfg.blocks_per_page());
  for (std::uint32_t i = 0; i < cfg.blocks_per_page(); ++i)
    EXPECT_FALSE(r.probe(first + i));
}

TEST(Rac, HitCounter) {
  MachineConfig cfg;
  Rac r(cfg);
  r.fill(5);
  r.note_hit();
  r.note_hit();
  EXPECT_EQ(r.hits(), 2u);
  r.reset();
  EXPECT_EQ(r.hits(), 0u);
  EXPECT_FALSE(r.probe(5));
}

}  // namespace
}  // namespace ascoma::mem
