#include "workload/synthetic.hh"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hh"

namespace ascoma::workload {
namespace {

std::vector<Op> drain(OpStream& s) {
  std::vector<Op> ops;
  for (Op op = s.next(); op.kind != OpKind::kEnd; op = s.next())
    ops.push_back(op);
  return ops;
}

SyntheticParams tiny() {
  SyntheticParams p;
  p.nodes = 4;
  p.home_pages = 16;
  p.remote_pages = 8;
  p.iterations = 2;
  return p;
}

TEST(Synthetic, ValidatesParams) {
  SyntheticParams p = tiny();
  p.remote_pages = 1000;  // bigger than the rest of the machine
  EXPECT_THROW(SyntheticWorkload{p}, CheckFailure);
  p = tiny();
  p.write_fraction = 1.5;
  EXPECT_THROW(SyntheticWorkload{p}, CheckFailure);
  p = tiny();
  p.home_pages = 0;
  EXPECT_THROW(SyntheticWorkload{p}, CheckFailure);
}

TEST(Synthetic, FootprintMatchesParams) {
  SyntheticWorkload wl(tiny());
  EXPECT_EQ(wl.nodes(), 4u);
  EXPECT_EQ(wl.total_pages(), 64u);
  EXPECT_EQ(wl.pages_per_node(), 16u);
}

TEST(Synthetic, HotRemoteSetHasRequestedSize) {
  SyntheticWorkload wl(tiny());
  std::set<VPageId> remote;
  for (const Op& op : drain(*wl.stream(0, 5))) {
    if (op.kind != OpKind::kLoad && op.kind != OpKind::kStore) continue;
    const VPageId page{op.arg / wl.page_bytes().value()};
    if (page >= VPageId{16}) remote.insert(page);  // proc 0 partition is [0,16)
  }
  EXPECT_EQ(remote.size(), tiny().remote_pages);
}

TEST(Synthetic, WriteFractionZeroMeansNoStores) {
  SyntheticParams p = tiny();
  p.write_fraction = 0.0;
  p.locks = 0;
  SyntheticWorkload wl(p);
  for (const Op& op : drain(*wl.stream(1, 5)))
    EXPECT_NE(op.kind, OpKind::kStore);
}

TEST(Synthetic, WriteFractionOneMeansNoLoads) {
  SyntheticParams p = tiny();
  p.write_fraction = 1.0;
  SyntheticWorkload wl(p);
  for (const Op& op : drain(*wl.stream(1, 5)))
    EXPECT_NE(op.kind, OpKind::kLoad);
}

TEST(Synthetic, BarriersCanBeDisabled) {
  SyntheticParams p = tiny();
  p.barriers = false;
  SyntheticWorkload wl(p);
  for (const Op& op : drain(*wl.stream(0, 5)))
    EXPECT_NE(op.kind, OpKind::kBarrier);
}

TEST(Synthetic, LocksEmitBalancedPairs) {
  SyntheticParams p = tiny();
  p.locks = 4;
  SyntheticWorkload wl(p);
  int depth = 0;
  for (const Op& op : drain(*wl.stream(0, 5))) {
    if (op.kind == OpKind::kLock) ++depth;
    if (op.kind == OpKind::kUnlock) --depth;
    ASSERT_GE(depth, 0);
    ASSERT_LE(depth, 1);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Synthetic, DeterministicPerSeed) {
  SyntheticWorkload wl(tiny());
  const auto a = drain(*wl.stream(2, 9));
  const auto b = drain(*wl.stream(2, 9));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].arg, b[i].arg);
}

TEST(Synthetic, SingleNodeHasNoRemoteSet) {
  SyntheticParams p = tiny();
  p.nodes = 1;
  p.remote_pages = 0;
  SyntheticWorkload wl(p);
  const auto ops = drain(*wl.stream(0, 1));
  EXPECT_FALSE(ops.empty());
  for (const Op& op : ops) {
    if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore) {
      EXPECT_LT(op.arg / wl.page_bytes().value(), 16u);
    }
  }
}

TEST(Synthetic, MoreIterationsMeansMoreOps) {
  SyntheticParams p = tiny();
  SyntheticWorkload small(p);
  p.iterations = 8;
  SyntheticWorkload big(p);
  EXPECT_GT(drain(*big.stream(0, 3)).size(),
            drain(*small.stream(0, 3)).size());
}

}  // namespace
}  // namespace ascoma::workload
