// Tests of the observability subsystem (src/obs): ring-buffer overflow and
// drop accounting, event ordering, sampler cadence, exporter golden outputs,
// and machine-level consistency between the event stream and KernelStats.

#include <gtest/gtest.h>

#include <sstream>

#include "core/machine.hh"
#include "obs/export.hh"
#include "obs/sink.hh"
#include "workload/synthetic.hh"

namespace ascoma::obs {
namespace {

Event ev(Cycle cycle, EventKind kind, NodeId node,
         VPageId page = kInvalidPage, std::uint64_t a = 0,
         std::uint64_t b = 0, std::uint64_t c = 0) {
  return Event{cycle, kind, node, page, a, b, c};
}

// ---- ring buffer ----------------------------------------------------------

TEST(EventSink, StoresEmittedEventsInOrder) {
  EventSink sink;
  sink.emit(ev(Cycle{10}, EventKind::kPageFault, NodeId{0}, VPageId{7}));
  sink.emit(ev(Cycle{20}, EventKind::kUpgrade, NodeId{1}, VPageId{7}));
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.events()[0].cycle, Cycle{10});
  EXPECT_EQ(sink.events()[0].kind, EventKind::kPageFault);
  EXPECT_EQ(sink.events()[1].cycle, Cycle{20});
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(EventSink, OverflowDropsNewestAndCountsEverything) {
  EventSink sink(4);
  for (std::uint64_t c = 0; c < 7; ++c)
    sink.emit(ev(Cycle{c}, EventKind::kDowngrade, NodeId{0}, VPageId{c}));
  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 3u);
  // The oldest events are retained...
  EXPECT_EQ(sink.events().front().cycle, Cycle{0});
  EXPECT_EQ(sink.events().back().cycle, Cycle{3});
  // ...and the per-kind tally still counts the dropped ones.
  EXPECT_EQ(sink.count(EventKind::kDowngrade), 7u);
  EXPECT_EQ(sink.count(EventKind::kUpgrade), 0u);
}

TEST(EventSink, ClearResetsEverything) {
  EventSink sink(2);
  sink.emit(ev(Cycle{1}, EventKind::kPageFault, NodeId{0}));
  sink.emit(ev(Cycle{2}, EventKind::kPageFault, NodeId{0}));
  sink.emit(ev(Cycle{3}, EventKind::kPageFault, NodeId{0}));
  sink.add_sample(Sample{Cycle{100}, NodeId{0}, 1, 2, 3, 4});
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.count(EventKind::kPageFault), 0u);
  EXPECT_TRUE(sink.samples().empty());
}

TEST(EventSink, SortedEventsOrdersByCycleStably) {
  EventSink sink;
  // Nodes interleave: emission order is not globally cycle-sorted.
  sink.emit(ev(Cycle{30}, EventKind::kUpgrade, NodeId{0}, VPageId{1}));
  sink.emit(ev(Cycle{10}, EventKind::kPageFault, NodeId{1}, VPageId{2}));
  sink.emit(ev(Cycle{30}, EventKind::kDowngrade, NodeId{1}, VPageId{3}));  // tie with the upgrade
  sink.emit(ev(Cycle{20}, EventKind::kPageFault, NodeId{0}, VPageId{4}));
  const auto sorted = sink.sorted_events();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].cycle, Cycle{10});
  EXPECT_EQ(sorted[1].cycle, Cycle{20});
  // Stable: the tie at cycle 30 keeps emission order (upgrade first).
  EXPECT_EQ(sorted[2].kind, EventKind::kUpgrade);
  EXPECT_EQ(sorted[3].kind, EventKind::kDowngrade);
}

// ---- sampler --------------------------------------------------------------

TEST(Sampler, FiresAtEveryBoundary) {
  Sampler s(Cycle{100});
  EXPECT_TRUE(s.enabled());
  EXPECT_FALSE(s.due(Cycle{0}));
  EXPECT_FALSE(s.due(Cycle{99}));
  EXPECT_TRUE(s.due(Cycle{100}));
  EXPECT_EQ(s.boundary(), Cycle{100});
  s.advance(Cycle{100});
  EXPECT_FALSE(s.due(Cycle{150}));
  EXPECT_TRUE(s.due(Cycle{200}));
  EXPECT_EQ(s.boundary(), Cycle{200});
}

TEST(Sampler, LongStallYieldsOneCatchUpSample) {
  Sampler s(Cycle{100});
  ASSERT_TRUE(s.due(Cycle{1234}));
  EXPECT_EQ(s.boundary(), Cycle{100});  // stamped at the boundary that fired
  s.advance(Cycle{1234});
  EXPECT_FALSE(s.due(Cycle{1299}));      // skipped boundaries do not replay
  EXPECT_TRUE(s.due(Cycle{1300}));
}

TEST(Sampler, ZeroPeriodDisables) {
  Sampler s(Cycle{0});
  EXPECT_FALSE(s.enabled());
  EXPECT_FALSE(s.due(Cycle{1'000'000'000}));
}

// ---- exporters ------------------------------------------------------------

TEST(Export, JsonlGolden) {
  EventSink sink;
  sink.emit(ev(Cycle{20}, EventKind::kThresholdRaise, NodeId{1}, kInvalidPage, 96, 1));
  sink.emit(ev(Cycle{10}, EventKind::kPageFault, NodeId{0}, VPageId{42}));
  sink.emit(ev(Cycle{15}, EventKind::kDaemonRun, NodeId{2}, kInvalidPage, 8, 3, 1));
  std::ostringstream os;
  write_jsonl(os, sink);
  EXPECT_EQ(os.str(),
            "{\"cycle\":10,\"kind\":\"page_fault\",\"node\":0,\"page\":42}\n"
            "{\"cycle\":15,\"kind\":\"daemon_run\",\"node\":2,\"scanned\":8,"
            "\"reclaimed\":3,\"met_target\":1}\n"
            "{\"cycle\":20,\"kind\":\"threshold_raise\",\"node\":1,"
            "\"threshold\":96,\"relocation_enabled\":1}\n");
}

TEST(Export, MetricsCsvGolden) {
  EventSink sink;
  sink.add_sample(Sample{Cycle{1000}, NodeId{0}, 12, 64, 30, 111});
  sink.add_sample(Sample{Cycle{1000}, NodeId{1}, 7, 96, 35, 222});
  std::ostringstream os;
  write_metrics_csv(os, sink);
  EXPECT_EQ(os.str(),
            "cycle,node,free_frames,threshold,page_cache_active,"
            "remote_misses\n"
            "1000,0,12,64,30,111\n"
            "1000,1,7,96,35,222\n");
}

TEST(Export, PerfettoGolden) {
  EventSink sink;
  sink.emit(ev(Cycle{10}, EventKind::kUpgrade, NodeId{0}, VPageId{5}));
  sink.add_sample(Sample{Cycle{1000}, NodeId{0}, 12, 64, 30, 111});
  std::ostringstream os;
  write_perfetto(os, sink, 1);
  EXPECT_EQ(
      os.str(),
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"node 0\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"events\"}},\n"
      "{\"name\":\"upgrade\",\"ph\":\"i\",\"s\":\"t\",\"ts\":10,\"pid\":0,"
      "\"tid\":0,\"args\":{\"page\":5}},\n"
      "{\"name\":\"free_frames\",\"ph\":\"C\",\"ts\":1000,\"pid\":0,"
      "\"args\":{\"free_frames\":12}},\n"
      "{\"name\":\"threshold\",\"ph\":\"C\",\"ts\":1000,\"pid\":0,"
      "\"args\":{\"threshold\":64}},\n"
      "{\"name\":\"page_cache_active\",\"ph\":\"C\",\"ts\":1000,\"pid\":0,"
      "\"args\":{\"page_cache_active\":30}},\n"
      "{\"name\":\"remote_misses\",\"ph\":\"C\",\"ts\":1000,\"pid\":0,"
      "\"args\":{\"remote_misses\":111}}\n"
      "]}\n");
}

TEST(Export, PerfettoIsBalancedJsonOnRealisticInput) {
  // Structural sanity on a bigger, mixed trace: every brace/bracket closes.
  EventSink sink;
  for (std::uint64_t c = 0; c < 100; ++c) {
    const NodeId node{static_cast<std::uint32_t>(c % 4)};
    sink.emit(ev(Cycle{c * 7},
                 static_cast<EventKind>(c % static_cast<std::uint64_t>(kNumEventKinds)),
                 node, c % 3 ? VPageId{c} : kInvalidPage, c, c, c));
    if (c % 10 == 0) sink.add_sample(Sample{Cycle{c * 7}, node, c, c, c, c});
  }
  std::ostringstream os;
  write_perfetto(os, sink, 4);
  const std::string s = os.str();
  long depth_brace = 0, depth_bracket = 0;
  bool in_string = false;
  for (char ch : s) {
    if (ch == '"') in_string = !in_string;
    if (in_string) continue;
    depth_brace += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    depth_bracket += ch == '[' ? 1 : ch == ']' ? -1 : 0;
    ASSERT_GE(depth_brace, 0);
    ASSERT_GE(depth_bracket, 0);
  }
  EXPECT_EQ(depth_brace, 0);
  EXPECT_EQ(depth_bracket, 0);
  EXPECT_FALSE(in_string);
}

// ---- machine-level integration -------------------------------------------

workload::SyntheticWorkload pressured_wl() {
  workload::SyntheticParams p;
  p.nodes = 4;
  p.home_pages = 32;
  p.remote_pages = 24;
  p.iterations = 6;
  p.sweeps_per_iteration = 3;
  p.loads_per_page = 32;
  p.write_fraction = 0.05;
  return workload::SyntheticWorkload(p);
}

MachineConfig pressured_cfg(EventSink* sink, Cycle sample_every = Cycle{0}) {
  MachineConfig c;
  c.arch = ArchModel::kAsComa;
  c.memory_pressure = 0.90;
  c.sink = sink;
  c.sample_every = sample_every;
  return c;
}

TEST(MachineObs, EventStreamMatchesKernelStats) {
  const auto w = pressured_wl();
  EventSink sink;
  const auto r = core::simulate(pressured_cfg(&sink), w);
  const auto& k = r.stats.totals.kernel;

  // The paper's back-off narrative: at 90% pressure AS-COMA must raise its
  // threshold, and every raise appears in the event stream.
  EXPECT_GT(k.threshold_raises, 0u);
  EXPECT_EQ(sink.count(EventKind::kThresholdRaise), k.threshold_raises);
  EXPECT_EQ(sink.count(EventKind::kThresholdDrop), k.threshold_drops);
  EXPECT_EQ(sink.count(EventKind::kPageFault), k.page_faults);
  EXPECT_EQ(sink.count(EventKind::kScomaAlloc), k.scoma_allocs);
  EXPECT_EQ(sink.count(EventKind::kNumaAlloc), k.numa_allocs);
  EXPECT_EQ(sink.count(EventKind::kUpgrade), k.upgrades);
  EXPECT_EQ(sink.count(EventKind::kDowngrade), k.downgrades);
  EXPECT_EQ(sink.count(EventKind::kRelocInterrupt), k.relocation_interrupts);
  EXPECT_EQ(sink.count(EventKind::kRemapSuppressed), k.remap_suppressed);
  EXPECT_EQ(sink.count(EventKind::kDaemonRun), k.daemon_runs);
  EXPECT_EQ(sink.count(EventKind::kBarrierRelease), r.barrier_episodes);
}

TEST(MachineObs, AttachingASinkDoesNotChangeTheRun) {
  const auto w = pressured_wl();
  EventSink sink;
  const auto observed = core::simulate(pressured_cfg(&sink, Cycle{10'000}), w);
  const auto bare = core::simulate(pressured_cfg(nullptr), w);
  EXPECT_EQ(observed.cycles(), bare.cycles());
  EXPECT_EQ(observed.stats.totals.misses.total(),
            bare.stats.totals.misses.total());
  EXPECT_EQ(observed.final_threshold, bare.final_threshold);
}

TEST(MachineObs, FinalSampleMatchesRunResult) {
  const auto w = pressured_wl();
  EventSink sink;
  const auto r = core::simulate(pressured_cfg(&sink, Cycle{10'000}), w);
  ASSERT_FALSE(sink.samples().empty());

  // The last nodes() samples are the end-of-run snapshot.
  const auto& samples = sink.samples();
  ASSERT_GE(samples.size(), static_cast<std::size_t>(r.stats.nodes));
  for (std::uint32_t n = 0; n < r.stats.nodes; ++n) {
    const Sample& s = samples[samples.size() - r.stats.nodes + n];
    EXPECT_EQ(s.cycle, r.cycles());
    EXPECT_EQ(s.node, NodeId{n});
    EXPECT_EQ(s.threshold, r.final_threshold[n]);
  }

  // Samples cover the run at the requested cadence and are time-ordered.
  EXPECT_GT(samples.size(), static_cast<std::size_t>(r.stats.nodes));
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_LE(samples[i - 1].cycle, samples[i].cycle);
}

TEST(MachineObs, InstallSinkHookIsEquivalentToConfig) {
  const auto w = pressured_wl();
  EventSink via_cfg, via_hook;
  (void)core::simulate(pressured_cfg(&via_cfg), w);

  MachineConfig c = pressured_cfg(nullptr);
  core::Machine m(c, w);
  m.install_sink(&via_hook);
  (void)m.run();
  EXPECT_EQ(via_hook.count(EventKind::kThresholdRaise),
            via_cfg.count(EventKind::kThresholdRaise));
  EXPECT_EQ(via_hook.size(), via_cfg.size());
}

}  // namespace
}  // namespace ascoma::obs
