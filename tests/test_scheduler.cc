#include "sim/scheduler.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::sim {
namespace {

TEST(Scheduler, PicksSmallestReadyCycle) {
  Scheduler s(3);
  s.set_ready(0, Cycle{30});
  s.set_ready(1, Cycle{10});
  s.set_ready(2, Cycle{20});
  EXPECT_EQ(s.pick(), 1u);
}

TEST(Scheduler, TiesGoToLowestId) {
  Scheduler s(3);
  s.set_ready(0, Cycle{5});
  s.set_ready(1, Cycle{5});
  s.set_ready(2, Cycle{5});
  EXPECT_EQ(s.pick(), 0u);
}

TEST(Scheduler, BlockedProcessorsAreSkipped) {
  Scheduler s(2);
  s.set_ready(0, Cycle{1});
  s.set_ready(1, Cycle{2});
  s.block(0);
  EXPECT_EQ(s.pick(), 1u);
  EXPECT_TRUE(s.is_blocked(0));
  s.set_ready(0, Cycle{0});  // unblocks
  EXPECT_FALSE(s.is_blocked(0));
  EXPECT_EQ(s.pick(), 0u);
}

TEST(Scheduler, FinishRemovesFromLiveSet) {
  Scheduler s(2);
  EXPECT_EQ(s.live(), 2u);
  s.finish(0);
  EXPECT_EQ(s.live(), 1u);
  EXPECT_TRUE(s.is_done(0));
  EXPECT_EQ(s.pick(), 1u);
  s.finish(1);
  EXPECT_TRUE(s.all_done());
}

TEST(Scheduler, DeadlockDetected) {
  Scheduler s(2);
  s.block(0);
  s.block(1);
  EXPECT_THROW(s.pick(), CheckFailure);
}

TEST(Scheduler, ReadyingFinishedProcessorThrows) {
  Scheduler s(1);
  s.finish(0);
  EXPECT_THROW(s.set_ready(0, Cycle{5}), CheckFailure);
}

TEST(Scheduler, DoubleFinishThrows) {
  Scheduler s(1);
  s.finish(0);
  EXPECT_THROW(s.finish(0), CheckFailure);
}

TEST(Scheduler, ReadyAtRoundTrips) {
  Scheduler s(1);
  s.set_ready(0, Cycle{12345});
  EXPECT_EQ(s.ready_at(0), Cycle{12345});
}

}  // namespace
}  // namespace ascoma::sim
