#include "proto/directory.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::proto {
namespace {

TEST(Directory, InitiallyUncached) {
  Directory d(16, 4);
  EXPECT_EQ(d.owner(0), kInvalidNode);
  EXPECT_EQ(d.sharer_count(0), 0u);
  EXPECT_FALSE(d.in_copyset(0, 0));
}

TEST(Directory, GetsAddsSharer) {
  Directory d(16, 4);
  const auto r = d.gets(0, 1);
  EXPECT_FALSE(r.was_in_copyset);
  EXPECT_EQ(r.dirty_owner, kInvalidNode);
  EXPECT_TRUE(d.in_copyset(0, 1));
  EXPECT_EQ(d.sharer_count(0), 1u);
}

TEST(Directory, RepeatGetsIsRefetchSignal) {
  Directory d(16, 4);
  d.gets(0, 1);
  const auto r = d.gets(0, 1);
  EXPECT_TRUE(r.was_in_copyset);
}

TEST(Directory, GetxInvalidatesOtherSharers) {
  Directory d(16, 4);
  d.gets(0, 0);
  d.gets(0, 1);
  d.gets(0, 2);
  const auto r = d.getx(0, 1);
  EXPECT_TRUE(r.was_in_copyset);
  EXPECT_EQ(r.dirty_owner, kInvalidNode);
  ASSERT_EQ(r.invalidate.size(), 2u);
  EXPECT_EQ(r.invalidate[0], 0u);
  EXPECT_EQ(r.invalidate[1], 2u);
  EXPECT_EQ(d.owner(0), 1u);
  EXPECT_EQ(d.sharer_count(0), 1u);
  EXPECT_TRUE(d.in_copyset(0, 1));
  d.check_entry(0);
}

TEST(Directory, GetsAfterGetxForwardsToOwner) {
  Directory d(16, 4);
  d.getx(0, 2);
  const auto r = d.gets(0, 3);
  EXPECT_EQ(r.dirty_owner, 2u);
  // Owner downgraded to sharer; home current again.
  EXPECT_EQ(d.owner(0), kInvalidNode);
  EXPECT_TRUE(d.in_copyset(0, 2));
  EXPECT_TRUE(d.in_copyset(0, 3));
  d.check_entry(0);
}

TEST(Directory, GetxAfterGetxForwardsAndInvalidatesOwner) {
  Directory d(16, 4);
  d.getx(0, 2);
  const auto r = d.getx(0, 3);
  EXPECT_EQ(r.dirty_owner, 2u);
  EXPECT_TRUE(r.invalidate.empty());  // owner handled by the forward
  EXPECT_EQ(d.owner(0), 3u);
  EXPECT_EQ(d.sharer_count(0), 1u);
  d.check_entry(0);
}

TEST(Directory, OwnerReacquiringKeepsOwnership) {
  Directory d(16, 4);
  d.getx(0, 2);
  const auto r = d.getx(0, 2);
  EXPECT_TRUE(r.was_in_copyset);
  EXPECT_EQ(r.dirty_owner, kInvalidNode);  // no self-forward
  EXPECT_TRUE(r.invalidate.empty());
  EXPECT_EQ(d.owner(0), 2u);
}

TEST(Directory, FlushNodeRemovesFromCopyset) {
  Directory d(16, 4);
  d.gets(0, 1);
  d.gets(0, 2);
  EXPECT_FALSE(d.flush_node(0, 1));  // not owner
  EXPECT_FALSE(d.in_copyset(0, 1));
  EXPECT_TRUE(d.in_copyset(0, 2));
}

TEST(Directory, FlushOwnerReturnsTrueAndClearsOwnership) {
  Directory d(16, 4);
  d.getx(0, 1);
  EXPECT_TRUE(d.flush_node(0, 1));
  EXPECT_EQ(d.owner(0), kInvalidNode);
  EXPECT_EQ(d.sharer_count(0), 0u);
  d.check_entry(0);
}

TEST(Directory, RefetchAfterFlushIsNotInCopyset) {
  Directory d(16, 4);
  d.gets(0, 1);
  d.flush_node(0, 1);
  const auto r = d.gets(0, 1);
  EXPECT_FALSE(r.was_in_copyset);  // flushed pages fetch cold, not refetch
}

TEST(Directory, CountsInvalidationsAndForwards) {
  Directory d(16, 4);
  d.gets(0, 0);
  d.gets(0, 1);
  d.getx(0, 2);  // invalidates 0 and 1
  EXPECT_EQ(d.invalidations_sent(), 2u);
  d.gets(0, 3);  // forward to owner 2
  EXPECT_EQ(d.forwards(), 1u);
}

TEST(Directory, IndependentBlocks) {
  Directory d(16, 4);
  d.getx(3, 1);
  EXPECT_EQ(d.owner(4), kInvalidNode);
  EXPECT_EQ(d.owner(3), 1u);
}

TEST(Directory, RejectsTooManyNodes) {
  EXPECT_THROW(Directory(8, 65), ascoma::CheckFailure);
}

TEST(Directory, BoundsChecked) {
  Directory d(4, 2);
  EXPECT_THROW(d.gets(4, 0), ascoma::CheckFailure);
  EXPECT_THROW(d.gets(0, 2), ascoma::CheckFailure);
}

}  // namespace
}  // namespace ascoma::proto
