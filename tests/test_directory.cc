#include "proto/directory.hh"

#include <gtest/gtest.h>

#include "common/check.hh"

namespace ascoma::proto {
namespace {

TEST(Directory, InitiallyUncached) {
  Directory d(16, 4);
  EXPECT_EQ(d.owner(BlockId{0}), kInvalidNode);
  EXPECT_EQ(d.sharer_count(BlockId{0}), 0u);
  EXPECT_FALSE(d.in_copyset(BlockId{0}, NodeId{0}));
}

TEST(Directory, GetsAddsSharer) {
  Directory d(16, 4);
  const auto r = d.gets(BlockId{0}, NodeId{1});
  EXPECT_FALSE(r.was_in_copyset);
  EXPECT_EQ(r.dirty_owner, kInvalidNode);
  EXPECT_TRUE(d.in_copyset(BlockId{0}, NodeId{1}));
  EXPECT_EQ(d.sharer_count(BlockId{0}), 1u);
}

TEST(Directory, RepeatGetsIsRefetchSignal) {
  Directory d(16, 4);
  d.gets(BlockId{0}, NodeId{1});
  const auto r = d.gets(BlockId{0}, NodeId{1});
  EXPECT_TRUE(r.was_in_copyset);
}

TEST(Directory, GetxInvalidatesOtherSharers) {
  Directory d(16, 4);
  d.gets(BlockId{0}, NodeId{0});
  d.gets(BlockId{0}, NodeId{1});
  d.gets(BlockId{0}, NodeId{2});
  const auto r = d.getx(BlockId{0}, NodeId{1});
  EXPECT_TRUE(r.was_in_copyset);
  EXPECT_EQ(r.dirty_owner, kInvalidNode);
  ASSERT_EQ(r.invalidate.size(), 2u);
  EXPECT_EQ(r.invalidate[0], NodeId{0});
  EXPECT_EQ(r.invalidate[1], NodeId{2});
  EXPECT_EQ(d.owner(BlockId{0}), NodeId{1});
  EXPECT_EQ(d.sharer_count(BlockId{0}), 1u);
  EXPECT_TRUE(d.in_copyset(BlockId{0}, NodeId{1}));
  d.check_entry(BlockId{0});
}

TEST(Directory, GetsAfterGetxForwardsToOwner) {
  Directory d(16, 4);
  d.getx(BlockId{0}, NodeId{2});
  const auto r = d.gets(BlockId{0}, NodeId{3});
  EXPECT_EQ(r.dirty_owner, NodeId{2});
  // Owner downgraded to sharer; home current again.
  EXPECT_EQ(d.owner(BlockId{0}), kInvalidNode);
  EXPECT_TRUE(d.in_copyset(BlockId{0}, NodeId{2}));
  EXPECT_TRUE(d.in_copyset(BlockId{0}, NodeId{3}));
  d.check_entry(BlockId{0});
}

TEST(Directory, GetxAfterGetxForwardsAndInvalidatesOwner) {
  Directory d(16, 4);
  d.getx(BlockId{0}, NodeId{2});
  const auto r = d.getx(BlockId{0}, NodeId{3});
  EXPECT_EQ(r.dirty_owner, NodeId{2});
  EXPECT_TRUE(r.invalidate.empty());  // owner handled by the forward
  EXPECT_EQ(d.owner(BlockId{0}), NodeId{3});
  EXPECT_EQ(d.sharer_count(BlockId{0}), 1u);
  d.check_entry(BlockId{0});
}

TEST(Directory, OwnerReacquiringKeepsOwnership) {
  Directory d(16, 4);
  d.getx(BlockId{0}, NodeId{2});
  const auto r = d.getx(BlockId{0}, NodeId{2});
  EXPECT_TRUE(r.was_in_copyset);
  EXPECT_EQ(r.dirty_owner, kInvalidNode);  // no self-forward
  EXPECT_TRUE(r.invalidate.empty());
  EXPECT_EQ(d.owner(BlockId{0}), NodeId{2});
}

TEST(Directory, FlushNodeRemovesFromCopyset) {
  Directory d(16, 4);
  d.gets(BlockId{0}, NodeId{1});
  d.gets(BlockId{0}, NodeId{2});
  EXPECT_FALSE(d.flush_node(BlockId{0}, NodeId{1}));  // not owner
  EXPECT_FALSE(d.in_copyset(BlockId{0}, NodeId{1}));
  EXPECT_TRUE(d.in_copyset(BlockId{0}, NodeId{2}));
}

TEST(Directory, FlushOwnerReturnsTrueAndClearsOwnership) {
  Directory d(16, 4);
  d.getx(BlockId{0}, NodeId{1});
  EXPECT_TRUE(d.flush_node(BlockId{0}, NodeId{1}));
  EXPECT_EQ(d.owner(BlockId{0}), kInvalidNode);
  EXPECT_EQ(d.sharer_count(BlockId{0}), 0u);
  d.check_entry(BlockId{0});
}

TEST(Directory, RefetchAfterFlushIsNotInCopyset) {
  Directory d(16, 4);
  d.gets(BlockId{0}, NodeId{1});
  d.flush_node(BlockId{0}, NodeId{1});
  const auto r = d.gets(BlockId{0}, NodeId{1});
  EXPECT_FALSE(r.was_in_copyset);  // flushed pages fetch cold, not refetch
}

TEST(Directory, CountsInvalidationsAndForwards) {
  Directory d(16, 4);
  d.gets(BlockId{0}, NodeId{0});
  d.gets(BlockId{0}, NodeId{1});
  d.getx(BlockId{0}, NodeId{2});  // invalidates 0 and 1
  EXPECT_EQ(d.invalidations_sent(), 2u);
  d.gets(BlockId{0}, NodeId{3});  // forward to owner 2
  EXPECT_EQ(d.forwards(), 1u);
}

TEST(Directory, IndependentBlocks) {
  Directory d(16, 4);
  d.getx(BlockId{3}, NodeId{1});
  EXPECT_EQ(d.owner(BlockId{4}), kInvalidNode);
  EXPECT_EQ(d.owner(BlockId{3}), NodeId{1});
}

TEST(Directory, RejectsTooManyNodes) {
  EXPECT_THROW(Directory(8, 65), ascoma::CheckFailure);
}

TEST(Directory, BoundsChecked) {
  Directory d(4, 2);
  EXPECT_THROW(d.gets(BlockId{4}, NodeId{0}), ascoma::CheckFailure);
  EXPECT_THROW(d.gets(BlockId{0}, NodeId{2}), ascoma::CheckFailure);
}

}  // namespace
}  // namespace ascoma::proto
