#include "sim/resource.hh"

#include <gtest/gtest.h>

namespace ascoma::sim {
namespace {

TEST(Resource, UncontendedStartsImmediately) {
  Resource r;
  EXPECT_EQ(r.acquire(100, 10), 100u);
  EXPECT_EQ(r.free_at(), 110u);
}

TEST(Resource, BackToBackQueues) {
  Resource r;
  EXPECT_EQ(r.acquire(0, 10), 0u);
  EXPECT_EQ(r.acquire(0, 10), 10u);  // waits behind the first
  EXPECT_EQ(r.acquire(5, 10), 20u);
  EXPECT_EQ(r.free_at(), 30u);
}

TEST(Resource, IdleGapResets) {
  Resource r;
  r.acquire(0, 10);
  EXPECT_EQ(r.acquire(50, 10), 50u);  // no queueing after a gap
}

TEST(Resource, AcquireUntilReturnsCompletion) {
  Resource r;
  EXPECT_EQ(r.acquire_until(7, 3), 10u);
  EXPECT_EQ(r.acquire_until(0, 5), 15u);
}

TEST(Resource, TracksWaitAndBusyCycles) {
  Resource r;
  r.acquire(0, 10);
  r.acquire(0, 10);  // waits 10
  EXPECT_EQ(r.busy_cycles(), 20u);
  EXPECT_EQ(r.wait_cycles(), 10u);
  EXPECT_EQ(r.transactions(), 2u);
}

TEST(Resource, Utilization) {
  Resource r;
  r.acquire(0, 25);
  EXPECT_DOUBLE_EQ(r.utilization(100), 0.25);
  EXPECT_DOUBLE_EQ(r.utilization(0), 0.0);
}

TEST(Resource, ZeroDurationIsFree) {
  Resource r;
  EXPECT_EQ(r.acquire(5, 0), 5u);
  EXPECT_EQ(r.free_at(), 5u);
}

TEST(Resource, ResetClearsState) {
  Resource r("bus");
  r.acquire(0, 10);
  r.reset();
  EXPECT_EQ(r.free_at(), 0u);
  EXPECT_EQ(r.busy_cycles(), 0u);
  EXPECT_EQ(r.transactions(), 0u);
  EXPECT_EQ(r.name(), "bus");
}

}  // namespace
}  // namespace ascoma::sim
