#include "sim/resource.hh"

#include <gtest/gtest.h>

namespace ascoma::sim {
namespace {

TEST(Resource, UncontendedStartsImmediately) {
  Resource r;
  EXPECT_EQ(r.acquire(Cycle{100}, Cycle{10}), Cycle{100});
  EXPECT_EQ(r.free_at(), Cycle{110});
}

TEST(Resource, BackToBackQueues) {
  Resource r;
  EXPECT_EQ(r.acquire(Cycle{0}, Cycle{10}), Cycle{0});
  EXPECT_EQ(r.acquire(Cycle{0}, Cycle{10}), Cycle{10});  // waits behind the first
  EXPECT_EQ(r.acquire(Cycle{5}, Cycle{10}), Cycle{20});
  EXPECT_EQ(r.free_at(), Cycle{30});
}

TEST(Resource, IdleGapResets) {
  Resource r;
  r.acquire(Cycle{0}, Cycle{10});
  EXPECT_EQ(r.acquire(Cycle{50}, Cycle{10}), Cycle{50});  // no queueing after a gap
}

TEST(Resource, AcquireUntilReturnsCompletion) {
  Resource r;
  EXPECT_EQ(r.acquire_until(Cycle{7}, Cycle{3}), Cycle{10});
  EXPECT_EQ(r.acquire_until(Cycle{0}, Cycle{5}), Cycle{15});
}

TEST(Resource, TracksWaitAndBusyCycles) {
  Resource r;
  r.acquire(Cycle{0}, Cycle{10});
  r.acquire(Cycle{0}, Cycle{10});  // waits 10
  EXPECT_EQ(r.busy_cycles(), Cycle{20});
  EXPECT_EQ(r.wait_cycles(), Cycle{10});
  EXPECT_EQ(r.transactions(), 2u);
}

TEST(Resource, Utilization) {
  Resource r;
  r.acquire(Cycle{0}, Cycle{25});
  EXPECT_DOUBLE_EQ(r.utilization(Cycle{100}), 0.25);
  EXPECT_DOUBLE_EQ(r.utilization(Cycle{0}), 0.0);
}

TEST(Resource, ZeroDurationIsFree) {
  Resource r;
  EXPECT_EQ(r.acquire(Cycle{5}, Cycle{0}), Cycle{5});
  EXPECT_EQ(r.free_at(), Cycle{5});
}

TEST(Resource, ResetClearsState) {
  Resource r("bus");
  r.acquire(Cycle{0}, Cycle{10});
  r.reset();
  EXPECT_EQ(r.free_at(), Cycle{0});
  EXPECT_EQ(r.busy_cycles(), Cycle{0});
  EXPECT_EQ(r.transactions(), 0u);
  EXPECT_EQ(r.name(), "bus");
}

}  // namespace
}  // namespace ascoma::sim
