#!/usr/bin/env bash
# Kill-resume property test (ARCHITECTURE.md §15): SIGKILL a store-backed
# sweep at a seeded point mid-run, resume it from the manifest, and require
# the final CSV to be byte-identical to an uninterrupted run's.  The kill
# point is derived from KILL_RESUME_SEED so CI can vary it run to run while
# any failure stays reproducible from the logged seed.
#
#   usage: kill_resume.sh <path-to-ascoma-cli>

set -u

BIN="${1:?usage: kill_resume.sh <path-to-ascoma-cli>}"
SEED="${KILL_RESUME_SEED:-20260808}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

ARGS=(--workload fft --arch all --pressure 30,70 --scale 2 --threads 2)

# Reference: the same sweep, uninterrupted and storeless.  Its wall time
# also calibrates the kill delay.
t0=$(date +%s%N)
"$BIN" "${ARGS[@]}" --csv ref.csv >/dev/null 2>&1 \
  || { echo "FAIL: reference run failed"; exit 1; }
t1=$(date +%s%N)
ref_ms=$(( (t1 - t0) / 1000000 ))

# Seeded kill point: 25%..74% of the reference wall time.
frac=$(( 25 + SEED % 50 ))
delay_ms=$(( ref_ms * frac / 100 ))
echo "seed=$SEED ref=${ref_ms}ms kill at ${delay_ms}ms (${frac}%)"

"$BIN" "${ARGS[@]}" --store st --csv out.csv >/dev/null 2>victim.log &
pid=$!
sleep "$(awk "BEGIN{print $delay_ms/1000}")"
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null

if [ -f out.csv ]; then
  echo "note: sweep finished before the kill landed; comparing directly"
else
  records=$(ls st/*.result 2>/dev/null | wc -l)
  echo "killed with $records result record(s) persisted; resuming"
  "$BIN" --resume st >/dev/null 2>resume.log \
    || { echo "FAIL: resume failed"; cat resume.log; exit 1; }
fi

if ! cmp ref.csv out.csv; then
  echo "FAIL: resumed CSV differs from the uninterrupted run (seed=$SEED)"
  diff ref.csv out.csv | head -10
  exit 1
fi

# The store must verify clean after the crash + resume cycle.
"$BIN" --store-verify st >/dev/null \
  || { echo "FAIL: store failed verification after resume"; exit 1; }

echo "PASS: CSV byte-identical after kill -9 + --resume (seed=$SEED)"
