// Fault-injection framework: plan determinism, network drop/dup/jitter
// semantics, protocol NACK/retry paths, the forward-progress watchdog, the
// post-run invariant sweep, and the crash-path exporter flush.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hh"
#include "common/config.hh"
#include "fault/invariants.hh"
#include "fault/plan.hh"
#include "fault/watchdog.hh"
#include "net/network.hh"
#include "obs/export.hh"
#include "obs/sink.hh"
#include "proto/coherent_memory.hh"
#include "vm/home_map.hh"
#include "vm/page_table.hh"

namespace ascoma {
namespace {

// ---- seed threading --------------------------------------------------------

TEST(ComponentSeed, WorkloadStreamIsTheRawSeed) {
  MachineConfig cfg;
  cfg.seed = 12345;
  EXPECT_EQ(cfg.component_seed(MachineConfig::kSeedStreamWorkload), 12345u);
}

TEST(ComponentSeed, FaultStreamDiffersFromWorkloadStream) {
  MachineConfig cfg;
  cfg.seed = 12345;
  EXPECT_NE(cfg.component_seed(MachineConfig::kSeedStreamFault), cfg.seed);
  EXPECT_EQ(cfg.effective_fault_seed(),
            cfg.component_seed(MachineConfig::kSeedStreamFault));
}

TEST(ComponentSeed, ExplicitFaultSeedOverridesDerivation) {
  MachineConfig cfg;
  cfg.seed = 12345;
  cfg.fault_seed = 777;
  EXPECT_EQ(cfg.effective_fault_seed(), 777u);
}

TEST(ComponentSeed, DistinctTopLevelSeedsGiveDistinctFaultStreams) {
  MachineConfig a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(a.effective_fault_seed(), b.effective_fault_seed());
}

// ---- FaultPlan -------------------------------------------------------------

TEST(FaultPlan, DefaultConstructedIsDisabled) {
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  const auto d = plan.decide(Cycle{0}, NodeId{0}, NodeId{1});
  EXPECT_FALSE(d.drop);
  EXPECT_FALSE(d.duplicate);
  EXPECT_EQ(d.jitter, Cycle{0});
}

TEST(FaultPlan, ZeroConfigIsDisabled) {
  MachineConfig cfg;
  fault::FaultPlan plan(cfg);
  EXPECT_FALSE(plan.enabled());
}

TEST(FaultPlan, SameSeedReplaysTheSameDecisions) {
  MachineConfig cfg;
  cfg.fault_drop = 0.3;
  cfg.fault_jitter = 0.3;
  cfg.fault_seed = 42;
  fault::FaultPlan a(cfg), b(cfg);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const auto da = a.decide(Cycle{i}, NodeId{0}, NodeId{1});
    const auto db = b.decide(Cycle{i}, NodeId{0}, NodeId{1});
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.jitter, db.jitter);
  }
  EXPECT_EQ(a.drops(), b.drops());
  EXPECT_GT(a.drops(), 0u);
}

TEST(FaultPlan, ResetRewindsTheRngAndCounters) {
  MachineConfig cfg;
  cfg.fault_drop = 0.5;
  cfg.fault_seed = 7;
  fault::FaultPlan plan(cfg);
  std::vector<bool> first;
  for (std::uint64_t i = 0; i < 100; ++i)
    first.push_back(plan.decide(Cycle{i}, NodeId{0}, NodeId{1}).drop);
  plan.reset();
  EXPECT_EQ(plan.drops(), 0u);
  for (std::uint64_t i = 0; i < 100; ++i)
    EXPECT_EQ(plan.decide(Cycle{i}, NodeId{0}, NodeId{1}).drop, first[i]);
}

TEST(FaultPlan, TargetRuleFiresOnlyInsideItsWindow) {
  MachineConfig cfg;
  fault::FaultPlan plan(cfg);
  plan.add_rule({fault::FaultKind::kDrop, NodeId{2}, NodeId{3}, Cycle{100}, Cycle{200}});
  EXPECT_TRUE(plan.enabled());
  EXPECT_FALSE(plan.decide(Cycle{99}, NodeId{2}, NodeId{3}).drop);   // before the window
  EXPECT_TRUE(plan.decide(Cycle{150}, NodeId{2}, NodeId{3}).drop);   // inside
  EXPECT_FALSE(plan.decide(Cycle{150}, NodeId{1}, NodeId{3}).drop);  // wrong source
  EXPECT_FALSE(plan.decide(Cycle{200}, NodeId{2}, NodeId{3}).drop);  // end is exclusive
}

TEST(FaultPlan, WildcardRuleMatchesAnyEndpoints) {
  MachineConfig cfg;
  fault::FaultPlan plan(cfg);
  plan.add_rule({fault::FaultKind::kDuplicate, kInvalidNode, kInvalidNode, Cycle{0}, kNeverCycle});
  EXPECT_TRUE(plan.decide(Cycle{5}, NodeId{3}, NodeId{1}).duplicate);
  EXPECT_TRUE(plan.decide(Cycle{999}, NodeId{0}, NodeId{7}).duplicate);
}

TEST(FaultPlan, NackRuleTargetsTheHome) {
  MachineConfig cfg;
  fault::FaultPlan plan(cfg);
  plan.add_rule({fault::FaultKind::kNack, kInvalidNode, NodeId{2}, Cycle{0}, Cycle{1000}});
  EXPECT_TRUE(plan.nack_forced(Cycle{10}, NodeId{2}));
  EXPECT_FALSE(plan.nack_forced(Cycle{10}, NodeId{1}));
  EXPECT_FALSE(plan.nack_forced(Cycle{1000}, NodeId{2}));
}

TEST(FaultPlan, DropSuppressesDuplicateAndJitter) {
  MachineConfig cfg;
  fault::FaultPlan plan(cfg);
  plan.add_rule({fault::FaultKind::kDrop, NodeId{0}, NodeId{1}, Cycle{0}, kNeverCycle});
  plan.add_rule({fault::FaultKind::kDuplicate, NodeId{0}, NodeId{1}, Cycle{0}, kNeverCycle});
  plan.add_rule({fault::FaultKind::kJitter, NodeId{0}, NodeId{1}, Cycle{0}, kNeverCycle});
  const auto d = plan.decide(Cycle{0}, NodeId{0}, NodeId{1});
  EXPECT_TRUE(d.drop);
  EXPECT_FALSE(d.duplicate);
  EXPECT_EQ(d.jitter, Cycle{0});
  EXPECT_EQ(plan.duplicates(), 0u);
}

// ---- Network under faults --------------------------------------------------

class FaultyNetworkTest : public ::testing::Test {
 protected:
  FaultyNetworkTest() : cfg_([] {
    MachineConfig c;
    c.nodes = 4;
    return c;
  }()), net_(cfg_), plan_(cfg_) {}

  MachineConfig cfg_;
  net::Network net_;
  fault::FaultPlan plan_;
};

TEST_F(FaultyNetworkTest, DisabledPlanKeepsDeliveryBitIdentical) {
  net::Network bare(cfg_);
  const Cycle without = bare.deliver(Cycle{0}, NodeId{0}, NodeId{1});
  net_.set_fault_plan(&plan_);  // attached but disabled
  EXPECT_FALSE(net_.faulty());
  EXPECT_EQ(net_.deliver(Cycle{0}, NodeId{0}, NodeId{1}), without);
}

TEST_F(FaultyNetworkTest, DroppedMessageIsReportedToTheCaller) {
  plan_.add_rule({fault::FaultKind::kDrop, NodeId{0}, NodeId{1}, Cycle{0}, Cycle{50}});
  net_.set_fault_plan(&plan_);
  const auto a = net_.try_deliver(Cycle{0}, NodeId{0}, NodeId{1});
  EXPECT_TRUE(a.dropped);
  EXPECT_EQ(plan_.drops(), 1u);
  // The drop never reached the destination port.
  EXPECT_EQ(net_.input_port(NodeId{1}).transactions(), 0u);
}

TEST_F(FaultyNetworkTest, DeliverRetransmitsPastTheDropWindow) {
  plan_.add_rule({fault::FaultKind::kDrop, NodeId{0}, NodeId{1}, Cycle{0}, Cycle{200}});
  net_.set_fault_plan(&plan_);
  const Cycle arrival = net_.deliver(Cycle{0}, NodeId{0}, NodeId{1});
  EXPECT_GT(net_.retransmits(), 0u);
  // The first send at or after cycle 200 goes through.
  net::Network clean(cfg_);
  EXPECT_GE(arrival, clean.deliver(Cycle{200}, NodeId{0}, NodeId{1}));
}

TEST_F(FaultyNetworkTest, DeliverThrowsWhenTheRetryBudgetIsExhausted) {
  cfg_.retry_max_attempts = 4;
  net::Network limited(cfg_);
  plan_.add_rule({fault::FaultKind::kDrop, NodeId{0}, NodeId{1}, Cycle{0}, kNeverCycle});
  limited.set_fault_plan(&plan_);
  EXPECT_THROW(limited.deliver(Cycle{0}, NodeId{0}, NodeId{1}), CheckFailure);
}

TEST_F(FaultyNetworkTest, DuplicateOccupiesTheDestinationPortTwice) {
  plan_.add_rule({fault::FaultKind::kDuplicate, NodeId{0}, NodeId{1}, Cycle{0}, Cycle{50}});
  net_.set_fault_plan(&plan_);
  const auto a = net_.try_deliver(Cycle{0}, NodeId{0}, NodeId{1});
  EXPECT_FALSE(a.dropped);
  EXPECT_EQ(net_.input_port(NodeId{1}).transactions(), 2u);
  // The real copy is serialized behind the spurious one.
  net::Network clean(cfg_);
  EXPECT_GT(a.arrival, clean.try_deliver(Cycle{0}, NodeId{0}, NodeId{1}).arrival);
}

TEST_F(FaultyNetworkTest, JitterDelaysArrival) {
  plan_.add_rule({fault::FaultKind::kJitter, NodeId{0}, NodeId{1}, Cycle{0}, Cycle{50}});
  net_.set_fault_plan(&plan_);
  net::Network clean(cfg_);
  const Cycle base = clean.try_deliver(Cycle{0}, NodeId{0}, NodeId{1}).arrival;
  const auto a = net_.try_deliver(Cycle{0}, NodeId{0}, NodeId{1});
  EXPECT_EQ(a.arrival, base + cfg_.fault_jitter_cycles);
  EXPECT_EQ(plan_.jitters(), 1u);
}

TEST_F(FaultyNetworkTest, FaultEventsAreEmitted) {
  obs::EventSink sink;
  plan_.add_rule({fault::FaultKind::kDrop, NodeId{0}, NodeId{1}, Cycle{0}, Cycle{50}});
  net_.set_fault_plan(&plan_);
  net_.set_sink(&sink);
  net_.try_deliver(Cycle{0}, NodeId{0}, NodeId{1});
  EXPECT_EQ(sink.count(obs::EventKind::kFaultInjected), 1u);
}

// ---- CoherentMemory retry / NACK / watchdog -------------------------------

// 4 nodes, 4 home pages each; node 0 accesses page 4 (homed at node 1).
class FaultedMemoryTest : public ::testing::Test {
 protected:
  explicit FaultedMemoryTest() : homes_(16, 4) { homes_.assign_contiguous(); }

  void build() {
    cfg_.nodes = 4;
    for (NodeId n{0}; n.value() < 4; ++n) {
      pts_.push_back(std::make_unique<vm::PageTable>(16));
      for (VPageId p{n.value() * 4ull}; p < VPageId{(n.value() + 1) * 4ull}; ++p)
        pts_[n.value()]->map_home(p);
    }
    pts_[0]->map_numa(VPageId{4});  // remote page homed at node 1
    cm_ = std::make_unique<proto::CoherentMemory>(cfg_, homes_);
    std::vector<const vm::PageTable*> ptrs;
    for (auto& pt : pts_) ptrs.push_back(pt.get());
    cm_->set_page_tables(ptrs);
  }

  Addr addr(VPageId page, std::uint64_t line_in_page = 0) const {
    return Addr{page.value() * cfg_.page_bytes.value() +
                line_in_page * cfg_.line_bytes.value()};
  }

  MachineConfig cfg_;
  vm::HomeMap homes_;
  std::vector<std::unique_ptr<vm::PageTable>> pts_;
  std::unique_ptr<proto::CoherentMemory> cm_;
};

TEST_F(FaultedMemoryTest, RequestRetriesThroughADropWindow) {
  build();
  cm_->fault_plan().add_rule({fault::FaultKind::kDrop, NodeId{0}, NodeId{1}, Cycle{0}, Cycle{400}});
  const auto o = cm_->access(0, addr(VPageId{4}), false, Cycle{0});
  EXPECT_GT(o.retries, 0u);
  EXPECT_EQ(cm_->net_retries(), o.retries);
  EXPECT_TRUE(o.remote);
  // A clean fetch would complete earlier.
  EXPECT_GT(o.done, cfg_.min_remote_latency());
}

TEST_F(FaultedMemoryTest, RetriesEmitEventsAndBackOffExponentially) {
  build();
  obs::EventSink sink;
  cm_->set_sink(&sink);
  cm_->fault_plan().add_rule({fault::FaultKind::kDrop, NodeId{0}, NodeId{1}, Cycle{0}, Cycle{2000}});
  const auto o = cm_->access(0, addr(VPageId{4}), false, Cycle{0});
  EXPECT_EQ(sink.count(obs::EventKind::kRetry), o.retries);
  EXPECT_GT(sink.count(obs::EventKind::kFaultInjected), 0u);
}

TEST_F(FaultedMemoryTest, ForcedNackIsCountedEverywhere) {
  build();
  obs::EventSink sink;
  cm_->set_sink(&sink);
  // Home node 1 NACKs every request before cycle 500.
  cm_->fault_plan().add_rule(
      {fault::FaultKind::kNack, kInvalidNode, NodeId{1}, Cycle{0}, Cycle{500}});
  const auto o = cm_->access(0, addr(VPageId{4}), false, Cycle{0});
  EXPECT_GT(o.nacks, 0u);
  EXPECT_EQ(cm_->nacks_received(), o.nacks);
  EXPECT_EQ(cm_->directory().nacks(), o.nacks);
  EXPECT_EQ(sink.count(obs::EventKind::kNack), o.nacks);
  // The NACKed request performed no directory transition until it got in.
  EXPECT_TRUE(cm_->directory().in_copyset(cfg_.block_of(addr(VPageId{4})), NodeId{0}));
}

TEST_F(FaultedMemoryTest, NackedRunIsSlowerButStateIdentical) {
  build();
  const auto faulted = cm_->access(0, addr(VPageId{4}), false, Cycle{0});

  pts_.clear();
  cm_.reset();
  build();
  const auto clean = cm_->access(0, addr(VPageId{4}), false, Cycle{0});
  EXPECT_EQ(clean.done, faulted.done);  // no rules: identical machines

  pts_.clear();
  cm_.reset();
  build();
  cm_->fault_plan().add_rule(
      {fault::FaultKind::kNack, kInvalidNode, NodeId{1}, Cycle{0}, Cycle{300}});
  const auto nacked = cm_->access(0, addr(VPageId{4}), false, Cycle{0});
  EXPECT_GT(nacked.done, clean.done);
  EXPECT_EQ(nacked.source, clean.source);
  EXPECT_EQ(nacked.remote, clean.remote);
}

TEST_F(FaultedMemoryTest, WatchdogTripsOnAPermanentDrop) {
  cfg_.watchdog_cycles = Cycle{5000};
  build();
  obs::EventSink sink;
  cm_->set_sink(&sink);
  cm_->fault_plan().add_rule({fault::FaultKind::kDrop, NodeId{0}, NodeId{1}, Cycle{0}, kNeverCycle});
  try {
    cm_->access(0, addr(VPageId{4}), false, Cycle{0});
    FAIL() << "expected WatchdogError";
  } catch (const fault::WatchdogError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("forward-progress watchdog tripped"),
              std::string::npos);
    EXPECT_NE(msg.find("in-flight: load by proc 0"), std::string::npos);
    EXPECT_NE(msg.find("protocol state at cycle"), std::string::npos);
    EXPECT_NE(msg.find("engine free_at"), std::string::npos);
  }
  EXPECT_EQ(cm_->watchdog().trips(), 1u);
  EXPECT_EQ(sink.count(obs::EventKind::kWatchdogTrip), 1u);
  // The trace survived the abort: the injected drops are all recorded.
  EXPECT_GT(sink.count(obs::EventKind::kFaultInjected), 0u);
}

TEST_F(FaultedMemoryTest, RetryBudgetBackstopsWhenWatchdogIsOff) {
  cfg_.retry_max_attempts = 3;
  build();
  cm_->fault_plan().add_rule({fault::FaultKind::kDrop, NodeId{0}, NodeId{1}, Cycle{0}, kNeverCycle});
  try {
    cm_->access(0, addr(VPageId{4}), false, Cycle{0});
    FAIL() << "expected WatchdogError";
  } catch (const fault::WatchdogError& e) {
    EXPECT_NE(std::string(e.what()).find("retry budget exhausted"),
              std::string::npos);
  }
}

TEST_F(FaultedMemoryTest, NackBudgetBackstopsAgainstNackLivelock) {
  cfg_.retry_max_attempts = 3;
  build();
  cm_->fault_plan().add_rule(
      {fault::FaultKind::kNack, kInvalidNode, NodeId{1}, Cycle{0}, kNeverCycle});
  try {
    cm_->access(0, addr(VPageId{4}), false, Cycle{0});
    FAIL() << "expected WatchdogError";
  } catch (const fault::WatchdogError& e) {
    EXPECT_NE(std::string(e.what()).find("NACK retry budget exhausted"),
              std::string::npos);
  }
}

TEST_F(FaultedMemoryTest, WatchdogDisarmedAfterEachAccess) {
  cfg_.watchdog_cycles = Cycle{5000};
  build();
  cm_->access(0, addr(VPageId{4}), false, Cycle{0});
  EXPECT_FALSE(cm_->watchdog().in_flight().active);
  // A later clean access at a huge cycle must not trip on the old arming.
  const auto o = cm_->access(0, addr(VPageId{4}), false, Cycle{10'000'000});
  EXPECT_GT(o.done, Cycle{10'000'000});
}

// ---- Watchdog unit ---------------------------------------------------------

TEST(Watchdog, DisabledNeverExpires) {
  fault::Watchdog wd;
  wd.arm(0, Addr{0}, false, Cycle{0});
  EXPECT_FALSE(wd.expired(kNeverCycle - Cycle{1}));
}

TEST(Watchdog, ExpiresStrictlyPastTheBound) {
  fault::Watchdog wd(Cycle{100});
  wd.arm(1, Addr{0x40}, true, Cycle{50});
  EXPECT_FALSE(wd.expired(Cycle{150}));  // exactly at the bound
  EXPECT_TRUE(wd.expired(Cycle{151}));
  wd.disarm();
  EXPECT_FALSE(wd.expired(Cycle{151}));
}

TEST(Watchdog, TripThrowsWithDiagnostics) {
  fault::Watchdog wd(Cycle{100});
  wd.arm(3, Addr{0x1000}, true, Cycle{0});
  wd.note_retry();
  wd.note_nack();
  try {
    wd.trip(Cycle{500}, "  custom state dump");
    FAIL() << "expected WatchdogError";
  } catch (const fault::WatchdogError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("store by proc 3"), std::string::npos);
    EXPECT_NE(msg.find("1 retransmission(s), 1 NACK(s)"), std::string::npos);
    EXPECT_NE(msg.find("custom state dump"), std::string::npos);
  }
  EXPECT_EQ(wd.trips(), 1u);
}

// ---- invariant sweep -------------------------------------------------------

TEST_F(FaultedMemoryTest, CleanStatePassesTheSweep) {
  build();
  cm_->access(0, addr(VPageId{4}), false, Cycle{0});
  cm_->access(1, addr(VPageId{4}), true, Cycle{1000});
  const auto rep = fault::check_coherence_invariants(*cm_, {}, {});
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_GT(rep.blocks_checked, 0u);
}

TEST_F(FaultedMemoryTest, SweepDetectsACopysetHoleBehindAValidCache) {
  build();
  cm_->access(0, addr(VPageId{4}), false, Cycle{0});  // node 0 now caches the block
  // Plant the corruption a lost protocol message would cause: the directory
  // forgets node 0 while the node still holds the line in L1/RAC.
  cm_->directory().flush_node(cfg_.block_of(addr(VPageId{4})), NodeId{0});
  const auto rep = fault::check_coherence_invariants(*cm_, {}, {});
  EXPECT_FALSE(rep.ok());
  EXPECT_GE(rep.total_violations, 1u);
  EXPECT_NE(rep.to_string().find("not in copyset"), std::string::npos);
}

TEST_F(FaultedMemoryTest, SweepReportsAreCappedButCountsAreExact) {
  build();
  // Touch every block of the remote page, then corrupt all of them plus
  // more planted holes than the report cap.
  for (std::uint32_t b = 0; b < cfg_.blocks_per_page(); ++b)
    cm_->access(0, addr(VPageId{4}, b * (cfg_.block_bytes / cfg_.line_bytes)), false,
                Cycle{b * 1000ull});
  const BlockId first = cfg_.first_block_of_page(PageId{4});
  for (std::uint32_t i = 0; i < cfg_.blocks_per_page(); ++i)
    cm_->directory().flush_node(first + i, NodeId{0});
  const auto rep = fault::check_coherence_invariants(*cm_, {}, {});
  EXPECT_FALSE(rep.ok());
  EXPECT_LE(rep.violations.size(), fault::InvariantReport::kMaxReported);
  EXPECT_GE(rep.total_violations, rep.violations.size());
}

// ---- crash exporter --------------------------------------------------------

TEST(CrashExporter, FlushWritesOnceAndOnlyOnce) {
  obs::EventSink sink;
  sink.emit(obs::EventKind::kFaultInjected, Cycle{1}, NodeId{0});
  const std::string path =
      ::testing::TempDir() + "/ascoma_crash_events.jsonl";
  std::remove(path.c_str());
  obs::CrashExporter crash(&sink, path, "", "", 4);
  EXPECT_EQ(crash.flush(), 1u);
  EXPECT_TRUE(crash.flushed());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("fault_injected"), std::string::npos);
  EXPECT_EQ(crash.flush(), 0u);  // idempotent
  std::remove(path.c_str());
}

TEST(CrashExporter, UnboundFlushIsANoOp) {
  obs::CrashExporter crash;
  EXPECT_EQ(crash.flush(), 0u);
}

}  // namespace
}  // namespace ascoma
