#include "proto/coherent_memory.hh"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.hh"

namespace ascoma::proto {
namespace {

// 4 nodes, 4 home pages each, contiguous layout.  Page tables are driven by
// hand so every hardware path can be exercised in isolation.
class CoherentMemoryTest : public ::testing::Test {
 protected:
  CoherentMemoryTest() : homes_(16, 4) {
    homes_.assign_contiguous();
    for (NodeId n{0}; n.value() < 4; ++n) {
      pts_.push_back(std::make_unique<vm::PageTable>(16));
      for (VPageId p{n.value() * 4ull}; p < VPageId{(n.value() + 1) * 4ull}; ++p)
        pts_[n.value()]->map_home(p);
    }
    cfg_.nodes = 4;
    cm_ = std::make_unique<CoherentMemory>(cfg_, homes_);
    std::vector<const vm::PageTable*> ptrs;
    for (auto& pt : pts_) ptrs.push_back(pt.get());
    cm_->set_page_tables(ptrs);
  }

  Addr addr(VPageId page, std::uint64_t line_in_page) const {
    return Addr{page.value() * cfg_.page_bytes.value() +
                line_in_page * cfg_.line_bytes.value()};
  }

  MachineConfig cfg_;
  vm::HomeMap homes_;
  std::vector<std::unique_ptr<vm::PageTable>> pts_;
  std::unique_ptr<CoherentMemory> cm_;
};

// ---- Table 4: minimum latencies -------------------------------------------

TEST_F(CoherentMemoryTest, LocalHomeMissCosts50Cycles) {
  const auto o = cm_->access(0, addr(VPageId{0}, 0), false, Cycle{0});
  EXPECT_EQ(o.done, cfg_.min_local_latency());
  EXPECT_EQ(o.done, Cycle{50});
  EXPECT_TRUE(o.counted_miss);
  EXPECT_EQ(o.source, MissSource::kHome);
  EXPECT_FALSE(o.remote);
}

TEST_F(CoherentMemoryTest, L1HitCostsOneCycle) {
  cm_->access(0, addr(VPageId{0}, 0), false, Cycle{0});
  const auto o = cm_->access(0, addr(VPageId{0}, 0), false, Cycle{100});
  EXPECT_TRUE(o.l1_hit);
  EXPECT_FALSE(o.counted_miss);
  EXPECT_EQ(o.done, Cycle{101});
}

TEST_F(CoherentMemoryTest, RemoteCleanFetchCosts150Cycles) {
  pts_[0]->map_numa(VPageId{4});  // page 4 homed at node 1
  const auto o = cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});
  EXPECT_EQ(o.done, cfg_.min_remote_latency());
  // 4 nodes -> one switch stage -> 138; the paper's 8-node machine gives the
  // full Table 4 value of 150 (asserted in test_config).
  EXPECT_EQ(o.done, Cycle{138});
  EXPECT_TRUE(o.remote);
  EXPECT_EQ(o.source, MissSource::kCold);
}

TEST_F(CoherentMemoryTest, RacHitCosts36Cycles) {
  pts_[0]->map_numa(VPageId{4});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});  // fetches block, fills RAC + L1
  // Line 1 is in the same 4-line block: L1 miss, RAC hit.
  const auto o = cm_->access(0, addr(VPageId{4}, 1), false, Cycle{1000});
  EXPECT_EQ(o.done - Cycle{1000}, cfg_.min_rac_latency());
  EXPECT_EQ(o.done - Cycle{1000}, Cycle{36});
  EXPECT_EQ(o.source, MissSource::kRac);
  EXPECT_FALSE(o.remote);
  EXPECT_EQ(cm_->rac(NodeId{0}).hits(), 1u);
}

TEST_F(CoherentMemoryTest, ScomaValidHitCostsLocalLatency) {
  pts_[0]->map_scoma(VPageId{4}, FrameId{0});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});  // cold remote fetch fills the block
  const auto o = cm_->access(0, addr(VPageId{4}, 1), false, Cycle{1000});
  EXPECT_EQ(o.done - Cycle{1000}, cfg_.min_local_latency());
  EXPECT_EQ(o.source, MissSource::kScoma);
  EXPECT_FALSE(o.remote);
}

// ---- classification ---------------------------------------------------------

TEST_F(CoherentMemoryTest, RefetchClassifiedConflict) {
  pts_[0]->map_numa(VPageId{4});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});
  // Evict from L1 and RAC by an aliasing access, then refetch.
  cm_->l1(0).invalidate_block(cfg_.block_of(addr(VPageId{4}, 0)));
  cm_->rac(NodeId{0}).invalidate(cfg_.block_of(addr(VPageId{4}, 0)));
  const auto o = cm_->access(0, addr(VPageId{4}, 0), false, Cycle{1000});
  EXPECT_EQ(o.source, MissSource::kConfCapc);
  EXPECT_TRUE(o.counted_refetch);
  EXPECT_EQ(o.page_refetch_count, 1u);
  EXPECT_EQ(cm_->refetch().count(VPageId{4}, NodeId{0}), 1u);
}

TEST_F(CoherentMemoryTest, InvalidationMissClassifiedCoherence) {
  pts_[0]->map_numa(VPageId{4});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});   // node 0 reads
  cm_->access(1, addr(VPageId{4}, 0), true, Cycle{100});  // home node 1 writes: invalidates 0
  const auto o = cm_->access(0, addr(VPageId{4}, 0), false, Cycle{1000});
  EXPECT_EQ(o.source, MissSource::kCoherence);
  EXPECT_FALSE(o.counted_refetch);  // not a conflict refetch
  EXPECT_EQ(cm_->refetch().count(VPageId{4}, NodeId{0}), 0u);
}

TEST_F(CoherentMemoryTest, ColdMissesDoNotCountAsRefetches) {
  pts_[0]->map_numa(VPageId{4});
  const auto o = cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});
  EXPECT_EQ(o.source, MissSource::kCold);
  EXPECT_FALSE(o.counted_refetch);
  EXPECT_FALSE(o.induced_cold);
}

TEST_F(CoherentMemoryTest, FlushThenRefetchIsInducedCold) {
  pts_[0]->map_numa(VPageId{4});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});
  cm_->flush_page(NodeId{0}, VPageId{4}, Cycle{100});
  const auto o = cm_->access(0, addr(VPageId{4}, 0), false, Cycle{1000});
  EXPECT_EQ(o.source, MissSource::kCold);
  EXPECT_TRUE(o.induced_cold);
}

// ---- S-COMA valid bits ------------------------------------------------------

TEST_F(CoherentMemoryTest, ScomaBlockFetchSetsWholeBlockValid) {
  pts_[0]->map_scoma(VPageId{4}, FrameId{0});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});
  // All four lines of the block are now backed locally: lines 1-3 are L1
  // misses satisfied from the page cache, not remote.
  for (std::uint64_t l = 1; l < 4; ++l) {
    const auto o = cm_->access(0, addr(VPageId{4}, l), false, Cycle{1000 + l});
    EXPECT_EQ(o.source, MissSource::kScoma) << "line " << l;
  }
  // Line 4 is the next block: remote again.
  const auto o = cm_->access(0, addr(VPageId{4}, 4), false, Cycle{5000});
  EXPECT_EQ(o.source, MissSource::kCold);
}

TEST_F(CoherentMemoryTest, InvalidationClearsScomaValidBit) {
  pts_[0]->map_scoma(VPageId{4}, FrameId{0});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});
  cm_->access(1, addr(VPageId{4}, 0), true, Cycle{500});  // home writes, invalidates replica
  const auto o = cm_->access(0, addr(VPageId{4}, 0), false, Cycle{1000});
  EXPECT_EQ(o.source, MissSource::kCoherence);  // had to refetch remotely
}

TEST_F(CoherentMemoryTest, ScomaStoreRequiresOwnershipOnce) {
  pts_[0]->map_scoma(VPageId{4}, FrameId{0});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});  // read: shared replica
  // Store to the valid replica: ownership-only round trip (kCoherence).
  const auto o1 = cm_->access(0, addr(VPageId{4}, 1), true, Cycle{1000});
  EXPECT_EQ(o1.source, MissSource::kCoherence);
  EXPECT_TRUE(o1.remote);
  // Subsequent store misses to the same block are local: node owns it.
  cm_->l1(0).invalidate_block(cfg_.block_of(addr(VPageId{4}, 0)));
  const auto o2 = cm_->access(0, addr(VPageId{4}, 2), true, Cycle{5000});
  EXPECT_EQ(o2.source, MissSource::kScoma);
  EXPECT_FALSE(o2.remote);
}

// ---- store/ownership paths --------------------------------------------------

TEST_F(CoherentMemoryTest, StoreHitWithoutOwnershipUpgrades) {
  pts_[0]->map_numa(VPageId{4});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});  // read: line in L1, shared
  const auto o = cm_->access(0, addr(VPageId{4}, 0), true, Cycle{1000});
  EXPECT_TRUE(o.l1_hit);
  EXPECT_FALSE(o.counted_miss);  // upgrade, not a data miss
  EXPECT_TRUE(o.remote);
  EXPECT_EQ(cm_->directory().owner(cfg_.block_of(addr(VPageId{4}, 0))),
            NodeId{0});
}

TEST_F(CoherentMemoryTest, StoreHitWithOwnershipIsOneCycle) {
  pts_[0]->map_numa(VPageId{4});
  cm_->access(0, addr(VPageId{4}, 0), true, Cycle{0});  // store fetch: owner now
  const auto o = cm_->access(0, addr(VPageId{4}, 0), true, Cycle{1000});
  EXPECT_TRUE(o.l1_hit);
  EXPECT_FALSE(o.remote);
  EXPECT_EQ(o.done, Cycle{1001});
}

TEST_F(CoherentMemoryTest, GetxInvalidatesAllSharerCaches) {
  pts_[0]->map_numa(VPageId{4});
  pts_[2]->map_numa(VPageId{4});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});
  cm_->access(2, addr(VPageId{4}, 0), false, Cycle{100});
  cm_->access(1, addr(VPageId{4}, 0), true, Cycle{1000});  // home node writes
  // Sharers lost every copy.
  EXPECT_FALSE(cm_->l1(0).probe(cfg_.line_of(addr(VPageId{4}, 0))));
  EXPECT_FALSE(cm_->l1(2).probe(cfg_.line_of(addr(VPageId{4}, 0))));
  EXPECT_FALSE(cm_->rac(NodeId{0}).probe(cfg_.block_of(addr(VPageId{4}, 0))));
  EXPECT_EQ(cm_->directory().owner(cfg_.block_of(addr(VPageId{4}, 0))),
            NodeId{1});
  cm_->audit();
}

TEST_F(CoherentMemoryTest, DirtyRemoteDataForwardedToHomeReader) {
  pts_[2]->map_numa(VPageId{0});  // page 0 homed at node 0
  cm_->access(2, addr(VPageId{0}, 0), true, Cycle{0});  // node 2 owns the block dirty
  // Home node reads its own page: 3-hop through the owner.
  const auto o = cm_->access(0, addr(VPageId{0}, 0), false, Cycle{1000});
  EXPECT_EQ(o.source, MissSource::kCoherence);
  EXPECT_TRUE(o.remote);
  EXPECT_GT(o.done - Cycle{1000}, cfg_.min_local_latency());
  EXPECT_EQ(cm_->directory().forwards(), 1u);
}

TEST_F(CoherentMemoryTest, DirtyRemoteForwardBetweenThirdParties) {
  pts_[2]->map_numa(VPageId{4});
  pts_[3]->map_numa(VPageId{4});
  cm_->access(2, addr(VPageId{4}, 0), true, Cycle{0});  // node 2 dirty owner (home = 1)
  const auto o = cm_->access(3, addr(VPageId{4}, 0), false, Cycle{1000});  // 3-hop
  EXPECT_TRUE(o.remote);
  EXPECT_GT(o.done - Cycle{1000}, cfg_.min_remote_latency());
  cm_->audit();
}

// ---- flush_page ------------------------------------------------------------

TEST_F(CoherentMemoryTest, FlushPageReportsL1Lines) {
  pts_[0]->map_numa(VPageId{4});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});
  cm_->access(0, addr(VPageId{4}, 8), true, Cycle{100});
  const auto fo = cm_->flush_page(NodeId{0}, VPageId{4}, Cycle{1000});
  EXPECT_EQ(fo.l1_valid_lines, 2u);
  EXPECT_EQ(fo.l1_dirty_lines, 1u);
  EXPECT_EQ(fo.blocks_released, 2u);
  EXPECT_FALSE(cm_->directory().in_copyset(cfg_.block_of(addr(VPageId{4}, 0)), NodeId{0}));
}

TEST_F(CoherentMemoryTest, FlushPageResetsRefetchCounter) {
  pts_[0]->map_numa(VPageId{4});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});
  cm_->l1(0).invalidate_block(cfg_.block_of(addr(VPageId{4}, 0)));
  cm_->rac(NodeId{0}).invalidate(cfg_.block_of(addr(VPageId{4}, 0)));
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{500});
  EXPECT_EQ(cm_->refetch().count(VPageId{4}, NodeId{0}), 1u);
  cm_->flush_page(NodeId{0}, VPageId{4}, Cycle{1000});
  EXPECT_EQ(cm_->refetch().count(VPageId{4}, NodeId{0}), 0u);
  EXPECT_EQ(cm_->refetch().cumulative(VPageId{4}, NodeId{0}), 1u);
}

TEST_F(CoherentMemoryTest, FlushOfUntouchedPageIsNoop) {
  pts_[0]->map_numa(VPageId{5});
  const auto fo = cm_->flush_page(NodeId{0}, VPageId{5}, Cycle{0});
  EXPECT_EQ(fo.l1_valid_lines, 0u);
  EXPECT_EQ(fo.blocks_released, 0u);
}

// ---- writebacks ------------------------------------------------------------

TEST_F(CoherentMemoryTest, DirtyVictimWritesBackRemotely) {
  pts_[0]->map_numa(VPageId{4});
  cm_->access(0, addr(VPageId{4}, 0), true, Cycle{0});  // dirty line in L1
  // Page 8 aliases page 4 in the L1 (512 lines = 4 pages): evicts the line.
  pts_[0]->map_numa(VPageId{8});
  cm_->access(0, addr(VPageId{8}, 0), false, Cycle{1000});
  EXPECT_EQ(cm_->writebacks_remote(), 1u);
}

TEST_F(CoherentMemoryTest, DirtyHomeVictimWritesBackLocally) {
  cm_->access(0, addr(VPageId{0}, 0), true, Cycle{0});
  pts_[0]->map_numa(VPageId{4});  // page 4 aliases page 0 in the L1
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{1000});
  EXPECT_EQ(cm_->writebacks_local(), 1u);
}

// ---- remote page census ------------------------------------------------------

TEST_F(CoherentMemoryTest, RemotePagesTouchedCensus) {
  pts_[0]->map_numa(VPageId{4});
  pts_[0]->map_numa(VPageId{8});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});
  cm_->access(0, addr(VPageId{4}, 1), false, Cycle{10});
  cm_->access(0, addr(VPageId{8}, 0), false, Cycle{20});
  cm_->access(0, addr(VPageId{0}, 0), false, Cycle{30});  // home page: not remote
  EXPECT_EQ(cm_->remote_pages_touched(NodeId{0}), 2u);
}

// ---- invariants --------------------------------------------------------------

TEST_F(CoherentMemoryTest, CoherenceShadowCatchesStaleCopies) {
  pts_[0]->map_numa(VPageId{4});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});    // node 0 caches the line
  cm_->access(1, addr(VPageId{4}, 0), true, Cycle{500});   // home writes: invalidates node 0
  EXPECT_FALSE(cm_->l1(0).probe(cfg_.line_of(addr(VPageId{4}, 0))));
  // Tamper: resurrect the stale line in node 0's L1 behind the protocol's
  // back.  The functional shadow must refuse to serve it.
  cm_->l1(0).fill(cfg_.line_of(addr(VPageId{4}, 0)), false);
  EXPECT_THROW(cm_->access(0, addr(VPageId{4}, 0), false, Cycle{1000}), ascoma::CheckFailure);
}

TEST_F(CoherentMemoryTest, CoherenceShadowAcceptsCurrentCopies) {
  pts_[0]->map_numa(VPageId{4});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0});
  cm_->access(1, addr(VPageId{4}, 0), true, Cycle{500});
  cm_->access(0, addr(VPageId{4}, 0), false, Cycle{1000});  // refetch: current again
  const auto o = cm_->access(0, addr(VPageId{4}, 0), false, Cycle{2000});  // L1 hit, fresh
  EXPECT_TRUE(o.l1_hit);
}

TEST_F(CoherentMemoryTest, AccessToUnmappedPageThrows) {
  EXPECT_THROW(cm_->access(0, addr(VPageId{4}, 0), false, Cycle{0}), ascoma::CheckFailure);
}

TEST_F(CoherentMemoryTest, AuditPassesAfterMixedTraffic) {
  pts_[0]->map_numa(VPageId{4});
  pts_[2]->map_scoma(VPageId{4}, FrameId{0});
  pts_[3]->map_numa(VPageId{0});  // page 0 is homed at node 0: remote for node 3
  Cycle t{0};
  for (int i = 0; i < 50; ++i) {
    cm_->access(0, addr(VPageId{4}, i % 128), i % 3 == 0, t += Cycle{200});
    cm_->access(2, addr(VPageId{4}, (i * 7) % 128), i % 5 == 0, t += Cycle{200});
    cm_->access(3, addr(VPageId{0}, i % 128), false, t += Cycle{200});
    cm_->access(1, addr(VPageId{4}, i % 128), i % 7 == 0, t += Cycle{200});
  }
  cm_->flush_page(NodeId{2}, VPageId{4}, t + Cycle{100});
  cm_->audit();
}

}  // namespace
}  // namespace ascoma::proto
