// Focused tests of the Machine's kernel paths: pageout-daemon gating,
// reference-bit flow, fault-time behaviour per architecture, and the
// relocation mechanics.

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "workload/synthetic.hh"

namespace ascoma::core {
namespace {

workload::SyntheticWorkload wl(std::uint32_t iterations = 4,
                               double write_fraction = 0.05) {
  workload::SyntheticParams p;
  p.nodes = 4;
  p.home_pages = 32;
  p.remote_pages = 24;
  p.iterations = iterations;
  p.sweeps_per_iteration = 3;
  p.loads_per_page = 32;
  p.write_fraction = write_fraction;
  return workload::SyntheticWorkload(p);
}

MachineConfig cfg(ArchModel arch, double pressure) {
  MachineConfig c;
  c.arch = arch;
  c.memory_pressure = pressure;
  return c;
}

TEST(MachineKernel, DaemonIsRateLimited) {
  // A tiny daemon period lets the daemon run often; a huge one means it can
  // run at most a handful of times during the run.
  auto w = wl(8);
  MachineConfig fast = cfg(ArchModel::kScoma, 0.9);
  fast.daemon_period = Cycle{10'000};
  MachineConfig slow = cfg(ArchModel::kScoma, 0.9);
  slow.daemon_period = Cycle{1'000'000'000};  // effectively never
  const auto rf = simulate(fast, w);
  const auto rs = simulate(slow, w);
  EXPECT_GT(rf.stats.totals.kernel.daemon_runs,
            rs.stats.totals.kernel.daemon_runs);
  // With the daemon starved, pure S-COMA falls back to per-fault mandatory
  // replacement: downgrades still happen.
  EXPECT_GT(rs.stats.totals.kernel.downgrades, 0u);
}

TEST(MachineKernel, CcNumaNeverTouchesTheDaemon) {
  const auto r = simulate(cfg(ArchModel::kCcNuma, 0.9), wl());
  EXPECT_EQ(r.stats.totals.kernel.daemon_runs, 0u);
  EXPECT_EQ(r.stats.totals.kernel.downgrades, 0u);
  EXPECT_EQ(r.stats.totals.kernel.relocation_interrupts, 0u);
}

TEST(MachineKernel, FaultChargesKernelBase) {
  const auto r = simulate(cfg(ArchModel::kCcNuma, 0.5), wl(1));
  const auto& k = r.stats.totals.kernel;
  EXPECT_GT(k.page_faults, 0u);
  // One fault per remote page per node: 4 nodes x 24 hot remote pages.
  EXPECT_EQ(k.page_faults, 4u * 24);
  EXPECT_EQ(r.stats.totals.time[TimeBucket::kKernelBase],
            k.page_faults * r.config.cost_page_fault);
}

TEST(MachineKernel, ScomaFaultsAgainAfterEviction) {
  // Pure S-COMA at brutal pressure: pages are unmapped on eviction, so the
  // fault count exceeds the number of distinct remote pages.
  const auto r = simulate(cfg(ArchModel::kScoma, 0.93), wl(6));
  const auto& k = r.stats.totals.kernel;
  EXPECT_GT(k.downgrades, 0u);
  EXPECT_GT(k.page_faults, r.remote_page_node_pairs);
}

TEST(MachineKernel, HybridFaultsOncePerPage) {
  // Hybrids downgrade to CC-NUMA mode instead of unmapping: exactly one
  // fault per (page, node) no matter how much churn follows.
  const auto r = simulate(cfg(ArchModel::kRNuma, 0.93), wl(6));
  EXPECT_EQ(r.stats.totals.kernel.page_faults, r.remote_page_node_pairs);
}

TEST(MachineKernel, RelocationInterruptsAccountedAsOverhead) {
  const auto r = simulate(cfg(ArchModel::kRNuma, 0.5), wl());
  const auto& k = r.stats.totals.kernel;
  EXPECT_GT(k.relocation_interrupts, 0u);
  EXPECT_GT(r.stats.totals.time[TimeBucket::kKernelOvhd],
            k.relocation_interrupts * r.config.cost_interrupt / 2);
}

TEST(MachineKernel, UpgradeFlushesCountLines) {
  const auto r = simulate(cfg(ArchModel::kRNuma, 0.5), wl());
  const auto& k = r.stats.totals.kernel;
  EXPECT_GT(k.upgrades, 0u);
  // Upgraded pages had cached lines; flushes must be visible.
  EXPECT_GT(k.lines_flushed, 0u);
}

TEST(MachineKernel, RefBitsProtectHotPagesFromTheDaemon) {
  // At moderate pressure with a daemon running, the hot working set should
  // mostly survive: reclaim happens but the page cache keeps serving.
  auto w = wl(8);
  MachineConfig c = cfg(ArchModel::kScoma, 0.6);
  c.daemon_period = Cycle{100'000};
  const auto r = simulate(c, w);
  EXPECT_GT(r.stats.totals.misses[MissSource::kScoma], 0u);
  EXPECT_GT(r.stats.totals.kernel.daemon_pages_scanned,
            r.stats.totals.kernel.daemon_pages_reclaimed);
}

TEST(MachineKernel, ThresholdRaisesOnlyUnderBackoffArchitecture) {
  auto w = wl(8);
  MachineConfig as = cfg(ArchModel::kAsComa, 0.93);
  as.daemon_period = Cycle{5'000};  // force daemon activity in this short run
  MachineConfig rn = cfg(ArchModel::kRNuma, 0.93);
  rn.daemon_period = Cycle{5'000};
  const auto ra = simulate(as, w);
  const auto rr = simulate(rn, w);
  EXPECT_EQ(rr.stats.totals.kernel.threshold_raises, 0u);
  for (std::uint32_t t : rr.final_threshold)
    EXPECT_EQ(t, rn.refetch_threshold);
  // AS-COMA may or may not raise in a short run, but never below initial.
  for (std::uint32_t t : ra.final_threshold)
    EXPECT_GE(t, as.refetch_threshold);
}

TEST(MachineKernel, SuppressedRemapsLeavePageInNumaMode) {
  auto w = wl(10);
  Machine m(cfg(ArchModel::kAsComa, 0.93), w);
  const auto r = m.run();
  ASSERT_GT(r.stats.totals.kernel.remap_suppressed, 0u);
  // Frames stay conserved even with suppressed remaps in the mix.
  for (NodeId n{0}; n.value() < 4; ++n) {
    EXPECT_EQ(m.page_cache(n).free_frames() + m.page_cache(n).active_pages(),
              m.page_cache(n).capacity());
    EXPECT_EQ(m.page_table(n).scoma_pages(), m.page_cache(n).active_pages());
  }
}

TEST(MachineKernel, KernelTimeIsExclusiveToKernelArchitectures) {
  const auto cc = simulate(cfg(ArchModel::kCcNuma, 0.9), wl());
  EXPECT_EQ(cc.stats.totals.time[TimeBucket::kKernelOvhd], Cycle{0});
  const auto sc = simulate(cfg(ArchModel::kScoma, 0.93), wl(6));
  EXPECT_GT(sc.stats.totals.time[TimeBucket::kKernelOvhd], Cycle{0});
}

}  // namespace
}  // namespace ascoma::core
