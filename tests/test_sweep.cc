#include "core/sweep.hh"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ascoma::core {
namespace {

TEST(Sweep, ParallelMatchesSerial) {
  std::vector<SweepJob> jobs;
  for (double p : {0.1, 0.7}) {
    SweepJob j;
    j.config.arch = ArchModel::kAsComa;
    j.config.memory_pressure = p;
    j.workload = "ocean";
    j.workload_scale = 0.2;
    j.label = "ascoma";
    jobs.push_back(j);
  }
  const auto serial = run_sweep(jobs, 1);
  const auto parallel = run_sweep(jobs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.cycles(), parallel[i].result.cycles());
    EXPECT_EQ(serial[i].result.stats.totals.misses.total(),
              parallel[i].result.stats.totals.misses.total());
  }
}

TEST(Sweep, ResultsInJobOrder) {
  std::vector<SweepJob> jobs;
  for (ArchModel a : {ArchModel::kCcNuma, ArchModel::kScoma}) {
    SweepJob j;
    j.config.arch = a;
    j.config.memory_pressure = 0.2;
    j.workload = "fft";
    j.workload_scale = 0.5;
    j.label = to_string(a);
    jobs.push_back(j);
  }
  const auto res = run_sweep(jobs, 2);
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].job.label, "CCNUMA");
  EXPECT_EQ(res[1].job.label, "SCOMA");
}

TEST(Sweep, UnknownWorkloadThrows) {
  SweepJob j;
  j.workload = "no-such-program";
  EXPECT_THROW(run_sweep({j}, 2), std::exception);
}

TEST(Sweep, EmptyJobListIsFine) {
  EXPECT_TRUE(run_sweep({}, 4).empty());
}

TEST(PaperGrid, CcNumaOnceOthersPerPressure) {
  const auto jobs = paper_grid("em3d", {0.1, 0.5, 0.9});
  // 1 CC-NUMA + 4 architectures x 3 pressures.
  EXPECT_EQ(jobs.size(), 1u + 4 * 3);
  EXPECT_EQ(jobs[0].config.arch, ArchModel::kCcNuma);
  int ascoma = 0;
  for (const auto& j : jobs) {
    EXPECT_EQ(j.workload, "em3d");
    if (j.config.arch == ArchModel::kAsComa) ++ascoma;
  }
  EXPECT_EQ(ascoma, 3);
}

TEST(PaperGrid, LabelsEncodeArchAndPressure) {
  const auto jobs = paper_grid("lu", {0.7});
  bool found = false;
  for (const auto& j : jobs)
    if (j.label == "ASCOMA(70%)") found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ascoma::core
