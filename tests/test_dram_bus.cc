#include <gtest/gtest.h>

#include "mem/bus.hh"
#include "mem/dram.hh"

namespace ascoma::mem {
namespace {

TEST(Dram, UncontendedLatencyIsAccessCycles) {
  MachineConfig cfg;
  Dram d(cfg);
  EXPECT_EQ(d.access(Cycle{100}, BlockId{0}), Cycle{100} + cfg.dram_access_cycles);
  EXPECT_EQ(d.banks(), cfg.dram_banks);
}

TEST(Dram, BlocksInterleaveAcrossBanks) {
  MachineConfig cfg;  // 4 banks
  Dram d(cfg);
  // Blocks 0..3 hit distinct banks: all complete without queueing.
  for (BlockId b{0}; b.value() < 4; ++b)
    EXPECT_EQ(d.access(Cycle{0}, b), cfg.dram_access_cycles);
}

TEST(Dram, SameBankQueues) {
  MachineConfig cfg;
  Dram d(cfg);
  EXPECT_EQ(d.access(Cycle{0}, BlockId{0}), Cycle{30});
  EXPECT_EQ(d.access(Cycle{0}, BlockId{4}), Cycle{60});  // block 4 -> bank 0 again
  EXPECT_EQ(d.access(Cycle{0}, BlockId{8}), Cycle{90});
}

TEST(Dram, CountsAccesses) {
  MachineConfig cfg;
  Dram d(cfg);
  d.access(Cycle{0}, BlockId{0});
  d.access(Cycle{0}, BlockId{1});
  EXPECT_EQ(d.accesses(), 2u);
  d.reset();
  EXPECT_EQ(d.accesses(), 0u);
  EXPECT_EQ(d.access(Cycle{0}, BlockId{0}), Cycle{30});  // banks cleared too
}

TEST(Bus, TransactOccupiesBus) {
  MachineConfig cfg;
  Bus b(cfg);
  EXPECT_EQ(b.transact(Cycle{0}), cfg.bus_occupancy);
  EXPECT_EQ(b.transact(Cycle{0}), 2 * cfg.bus_occupancy);  // queued behind first
  EXPECT_EQ(b.transactions(), 2u);
}

TEST(Bus, ShortTransactionIsHalf) {
  MachineConfig cfg;  // occupancy 10 -> short 5
  Bus b(cfg);
  EXPECT_EQ(b.transact_short(Cycle{0}), Cycle{5});
}

TEST(Bus, ResetClears) {
  MachineConfig cfg;
  Bus b(cfg);
  b.transact(Cycle{0});
  b.reset();
  EXPECT_EQ(b.transactions(), 0u);
  EXPECT_EQ(b.transact(Cycle{0}), cfg.bus_occupancy);
}

}  // namespace
}  // namespace ascoma::mem
