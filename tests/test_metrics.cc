// Unified live-metrics registry tests (ARCHITECTURE.md §16): find-or-create
// identity, sharded lock-free hot-path counting under real threads, typed
// strong-quantity overloads, log2-histogram agreement with
// prof::LatencyHistogram, and the Prometheus text exposition grammar
// (HELP/TYPE once per family, sorted families, escaped label values,
// cumulative histogram buckets whose +Inf equals _count).

#include "obs/metrics.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hh"
#include "prof/histogram.hh"
#include "selfprof/clock.hh"

namespace ascoma::obs {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(Metrics, FindOrCreateReturnsTheSameChild) {
  Registry reg;
  Counter& a = reg.counter("ascoma_test_total", "help");
  Counter& b = reg.counter("ascoma_test_total", "help");
  EXPECT_EQ(&a, &b);
  // Distinct labels are distinct children.
  Counter& c = reg.counter("ascoma_test_total", "help", {{"k", "v"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, LabelOrderIsCanonicalized) {
  Registry reg;
  Counter& a = reg.counter("ascoma_pairs_total", "help",
                           {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("ascoma_pairs_total", "help",
                           {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, CounterSumsAcrossThreads) {
  Registry reg;
  Counter& c = reg.counter("ascoma_threads_total", "help");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& t : pool) t.join();
  EXPECT_EQ(c.value(), std::uint64_t{kThreads} * kPerThread);
}

TEST(Metrics, TypedOverloadsTakeStrongQuantities) {
  Registry reg;
  Counter& c = reg.counter("ascoma_typed_total", "help");
  c.inc(Cycle{41});
  c.inc(selfprof::HostNs{1});
  EXPECT_EQ(c.value(), 42u);

  Gauge& g = reg.gauge("ascoma_typed_gauge", "help");
  g.set(ByteCount{4096});
  EXPECT_DOUBLE_EQ(g.value(), 4096.0);

  Histogram& h = reg.histogram("ascoma_typed_ns", "help");
  h.observe(Cycle{100});
  EXPECT_EQ(h.snapshot().count, 1u);
  EXPECT_EQ(h.snapshot().sum, 100u);
}

TEST(Metrics, GaugeSetAddSub) {
  Registry reg;
  Gauge& g = reg.gauge("ascoma_g", "help");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.sub(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.5);
}

TEST(Metrics, HistogramBucketsMatchProfHistogram) {
  Registry reg;
  Histogram& h = reg.histogram("ascoma_h_ns", "help");
  const std::uint64_t values[] = {0, 1, 2, 3, 127, 128, 1 << 20};
  for (std::uint64_t v : values) h.observe(v);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 7u);
  for (std::uint64_t v : values) {
    const int b = prof::LatencyHistogram::bucket_of(v);
    EXPECT_GT(snap.buckets[static_cast<std::size_t>(b)], 0u)
        << "value " << v << " missing from bucket " << b;
    EXPECT_LE(v, prof::LatencyHistogram::bucket_upper_bound(b));
  }
}

TEST(Metrics, ValidMetricNames) {
  EXPECT_TRUE(valid_metric_name("ascoma_sweep_jobs_total"));
  EXPECT_TRUE(valid_metric_name("a:b_c9"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("9starts_with_digit"));
  EXPECT_FALSE(valid_metric_name("has-dash"));
  // Label names additionally reject ':'.
  EXPECT_TRUE(valid_metric_name("node", /*label=*/true));
  EXPECT_FALSE(valid_metric_name("a:b", /*label=*/true));
}

TEST(Metrics, PrometheusEscape) {
  EXPECT_EQ(prometheus_escape("plain"), "plain");
  EXPECT_EQ(prometheus_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Metrics, PrometheusExpositionGrammar) {
  Registry reg;
  reg.counter("ascoma_z_total", "last family", {{"state", "done"}}).inc(3);
  reg.counter("ascoma_z_total", "last family", {{"state", "cached"}}).inc(1);
  reg.gauge("ascoma_a_gauge", "first family").set(std::uint64_t{7});
  Histogram& h = reg.histogram("ascoma_m_ns", "histogram \"help\"");
  h.observe(std::uint64_t{1});
  h.observe(std::uint64_t{1});
  h.observe(std::uint64_t{300});
  reg.counter("ascoma_esc_total", "escapes", {{"label", "a\"b\\c\nd"}})
      .inc();

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();

  // HELP/TYPE exactly once per family, families sorted by name.
  EXPECT_EQ(count_occurrences(text, "# HELP ascoma_z_total"), 1u);
  EXPECT_EQ(count_occurrences(text, "# TYPE ascoma_z_total counter"), 1u);
  EXPECT_LT(text.find("# HELP ascoma_a_gauge"),
            text.find("# HELP ascoma_esc_total"));
  EXPECT_LT(text.find("# HELP ascoma_esc_total"),
            text.find("# HELP ascoma_m_ns"));
  EXPECT_LT(text.find("# HELP ascoma_m_ns"),
            text.find("# HELP ascoma_z_total"));

  // Values and label rendering.
  EXPECT_NE(text.find("ascoma_z_total{state=\"done\"} 3"), std::string::npos);
  EXPECT_NE(text.find("ascoma_z_total{state=\"cached\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ascoma_a_gauge 7"), std::string::npos);
  EXPECT_NE(text.find("ascoma_esc_total{label=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);

  // Histogram: cumulative buckets, a +Inf bucket equal to _count, and _sum.
  EXPECT_NE(text.find("# TYPE ascoma_m_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("ascoma_m_ns_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("ascoma_m_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ascoma_m_ns_sum 302"), std::string::npos);
  EXPECT_NE(text.find("ascoma_m_ns_count 3"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

// Producers hammer counters/gauges/histograms while a reader scrapes the
// whole registry: the shard slots are atomics and the registration map is
// mutex-guarded, so this is race-free (the CI TSan job runs this test).
TEST(Metrics, ConcurrentProducersAndScrapers) {
  Registry reg;
  Counter& c = reg.counter("ascoma_race_total", "help");
  Gauge& g = reg.gauge("ascoma_race_gauge", "help");
  Histogram& h = reg.histogram("ascoma_race_ns", "help");
  std::atomic<bool> stop{false};

  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t)
    pool.emplace_back([&] {
      for (int i = 0; i < 20'000; ++i) {
        c.inc();
        g.set(static_cast<double>(i));
        h.observe(static_cast<std::uint64_t>(i));
      }
    });
  std::thread scraper([&] {
    while (!stop.load()) {
      std::ostringstream os;
      reg.write_prometheus(os);
      EXPECT_NE(os.str().find("ascoma_race_total"), std::string::npos);
    }
  });
  // A late registration while scraping is also legal.
  reg.counter("ascoma_race_late_total", "help").inc();
  for (auto& t : pool) t.join();
  stop.store(true);
  scraper.join();
  EXPECT_EQ(c.value(), 80'000u);
  EXPECT_EQ(h.snapshot().count, 80'000u);
}

// ---- memory-order contracts (lint_concurrency C1, ARCHITECTURE.md §18) -----

// Pins the rationale written at Counter::value(): relaxed scrape loads are
// sufficient, not just tolerable, because every shard is monotonic — a live
// scrape may lag the true total but can never exceed it, successive scrapes
// never go backwards (per-location coherence orders same-thread relaxed
// loads of each shard), and the value is exact once the writers are joined.
TEST(MetricsOrdering, RelaxedScrapeNeverOvercounts) {
  Registry reg;
  Counter& c = reg.counter("ascoma_order_total", "help");
  constexpr std::uint64_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;

  std::vector<std::thread> pool;
  for (std::uint64_t t = 0; t < kThreads; ++t)
    pool.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  std::atomic<bool> writers_done{false};
  std::thread joiner([&] {
    for (auto& t : pool) t.join();
    writers_done.store(true);
  });

  std::uint64_t prev = 0;
  while (!writers_done.load()) {
    const std::uint64_t now = c.value();
    ASSERT_GE(now, prev) << "a scrape went backwards";
    ASSERT_LE(now, kThreads * kPerThread) << "a scrape overcounted";
    prev = now;
  }
  joiner.join();
  // Thread join is a full happens-before edge: the total is now exact.
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

// Pins the rationale at Gauge::add(): the relaxed CAS loop needs only the
// atomicity of the read-modify-write — under full contention no increment
// is lost, and the failure path re-reads the fresh value returned by the
// CAS itself, so no acquire edge is required either.
TEST(MetricsOrdering, GaugeCasRetryLoopIsExactUnderContention) {
  Registry reg;
  Gauge& g = reg.gauge("ascoma_order_gauge", "help");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  for (auto& t : pool) t.join();
  // Every add survived the retry races (doubles are exact to 2^53).
  EXPECT_EQ(g.value(), static_cast<double>(kThreads * kPerThread));
}

}  // namespace
}  // namespace ascoma::obs
