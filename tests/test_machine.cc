#include "core/machine.hh"

#include <gtest/gtest.h>

#include "common/check.hh"
#include "workload/synthetic.hh"
#include "workload/workload.hh"

namespace ascoma::core {
namespace {

// A small hot-remote-set workload: 4 nodes x 32 home pages, 24 hot remote
// pages per node, enough reuse to cross the relocation threshold.
workload::SyntheticWorkload hot_workload(std::uint32_t iterations = 6) {
  workload::SyntheticParams p;
  p.nodes = 4;
  p.home_pages = 32;
  p.remote_pages = 24;
  p.iterations = iterations;
  p.sweeps_per_iteration = 3;
  p.loads_per_page = 32;  // stride 4: one line per block -> strong refetch
  p.write_fraction = 0.05;
  p.compute_per_page = Cycle{5};
  return workload::SyntheticWorkload(p);
}

MachineConfig config(ArchModel arch, double pressure) {
  MachineConfig cfg;
  cfg.arch = arch;
  cfg.memory_pressure = pressure;
  return cfg;
}

TEST(Machine, RunsToCompletionAndAuditsClean) {
  auto wl = hot_workload();
  const RunResult r = simulate(config(ArchModel::kAsComa, 0.5), wl);
  EXPECT_GT(r.cycles(), Cycle{0});
  EXPECT_EQ(r.stats.nodes, 4u);
}

TEST(Machine, AccessAccountingBalances) {
  auto wl = hot_workload();
  for (ArchModel arch : {ArchModel::kCcNuma, ArchModel::kScoma,
                         ArchModel::kRNuma, ArchModel::kVcNuma,
                         ArchModel::kAsComa}) {
    const RunResult r = simulate(config(arch, 0.6), wl);
    for (const NodeStats& n : r.per_node) {
      // Every shared access is either an L1 hit (incl. upgrades) or a miss.
      EXPECT_EQ(n.shared_loads + n.shared_stores,
                n.l1_hits + n.misses.total())
          << to_string(arch);
    }
  }
}

TEST(Machine, TimeBucketsSumToCompletionCycle) {
  auto wl = hot_workload();
  const RunResult r = simulate(config(ArchModel::kAsComa, 0.5), wl);
  Cycle max_total{0};
  for (const NodeStats& n : r.per_node)
    max_total = std::max(max_total, n.time.total());
  EXPECT_EQ(max_total, r.stats.parallel_cycles);
}

TEST(Machine, DeterministicAcrossRuns) {
  auto wl = hot_workload();
  const RunResult a = simulate(config(ArchModel::kAsComa, 0.7), wl);
  const RunResult b = simulate(config(ArchModel::kAsComa, 0.7), wl);
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_EQ(a.stats.totals.misses.total(), b.stats.totals.misses.total());
  EXPECT_EQ(a.stats.totals.kernel.upgrades, b.stats.totals.kernel.upgrades);
}

TEST(Machine, CcNumaIsPressureInvariant) {
  auto wl = hot_workload();
  const RunResult lo = simulate(config(ArchModel::kCcNuma, 0.1), wl);
  const RunResult hi = simulate(config(ArchModel::kCcNuma, 0.9), wl);
  EXPECT_EQ(lo.cycles(), hi.cycles());
  EXPECT_EQ(lo.stats.totals.kernel.upgrades, 0u);
  EXPECT_EQ(lo.stats.totals.kernel.daemon_runs, 0u);
}

TEST(Machine, AsComaMatchesScomaAtLowPressure) {
  // Below the ideal pressure AS-COMA maps everything S-COMA up front and
  // performs no remappings: identical behaviour to pure S-COMA.
  auto wl = hot_workload();
  const RunResult s = simulate(config(ArchModel::kScoma, 0.2), wl);
  const RunResult a = simulate(config(ArchModel::kAsComa, 0.2), wl);
  EXPECT_EQ(a.cycles(), s.cycles());
  EXPECT_EQ(a.stats.totals.kernel.upgrades, 0u);
  EXPECT_EQ(a.stats.totals.kernel.downgrades, 0u);
}

TEST(Machine, AsComaBeatsCcNumaAtLowPressure) {
  auto wl = hot_workload();
  const RunResult c = simulate(config(ArchModel::kCcNuma, 0.2), wl);
  const RunResult a = simulate(config(ArchModel::kAsComa, 0.2), wl);
  EXPECT_LT(a.cycles(), c.cycles());
}

TEST(Machine, FramesFollowMemoryPressure) {
  auto wl = hot_workload(2);
  const RunResult r = simulate(config(ArchModel::kAsComa, 0.25), wl);
  // 32 home pages at 25% pressure -> 128 frames per node.
  EXPECT_EQ(r.stats.frames_per_node, 128u);
  EXPECT_EQ(r.stats.home_pages_per_node, 32u);
  EXPECT_DOUBLE_EQ(r.stats.memory_pressure, 0.25);
}

TEST(Machine, HybridsUpgradeHotPages) {
  auto wl = hot_workload();
  for (ArchModel arch :
       {ArchModel::kRNuma, ArchModel::kVcNuma, ArchModel::kAsComa}) {
    const RunResult r = simulate(config(arch, 0.5), wl);
    // At 50% pressure (cache 32 < hot 24... cache fits): hybrids should
    // move hot pages into the page cache one way or another.
    EXPECT_GT(r.stats.totals.misses[MissSource::kScoma], 0u)
        << to_string(arch);
  }
}

TEST(Machine, RNumaPaysColdRefetchesBeforeUpgrading) {
  auto wl = hot_workload();
  const RunResult r = simulate(config(ArchModel::kRNuma, 0.2), wl);
  const RunResult a = simulate(config(ArchModel::kAsComa, 0.2), wl);
  // R-NUMA maps CC-NUMA first: it must suffer remote conflict refetches that
  // AS-COMA's S-COMA-first allocation never sees.
  EXPECT_GT(r.stats.totals.misses[MissSource::kConfCapc],
            a.stats.totals.misses[MissSource::kConfCapc]);
  EXPECT_GT(r.stats.totals.kernel.upgrades, 0u);
  EXPECT_EQ(a.stats.totals.kernel.upgrades, 0u);
}

TEST(Machine, ScomaThrashesAtHighPressure) {
  auto wl = hot_workload();
  const RunResult lo = simulate(config(ArchModel::kScoma, 0.2), wl);
  const RunResult hi = simulate(config(ArchModel::kScoma, 0.93), wl);
  EXPECT_GT(hi.cycles(), lo.cycles());
  EXPECT_GT(hi.stats.totals.kernel.downgrades, 0u);
  EXPECT_GT(hi.stats.totals.time[TimeBucket::kKernelOvhd], Cycle{0});
}

TEST(Machine, AsComaBacksOffAtHighPressure) {
  auto wl = hot_workload(10);
  const RunResult r = simulate(config(ArchModel::kAsComa, 0.93), wl);
  const KernelStats& k = r.stats.totals.kernel;
  // The back-off must have engaged: remaps were suppressed and the node
  // switched to CC-NUMA-mode allocation for part of the working set.
  EXPECT_GT(k.remap_suppressed, 0u);
  EXPECT_GT(k.numa_allocs, 0u);
  // Suppressions reset the directory counter, so interrupts stay bounded:
  // far fewer than one per suppressed refetch beyond the threshold.
  EXPECT_GE(k.relocation_interrupts, k.upgrades + k.remap_suppressed);
}

TEST(Machine, AsComaEscalatesWhenDaemonFindsNoColdPages) {
  // A shorter daemon period makes the daemon run within this small
  // workload's lifetime while every page is still hot: reclaim failures
  // must raise the refetch threshold (the paper's escalation path).
  auto wl = hot_workload(10);
  MachineConfig cfg = config(ArchModel::kAsComa, 0.93);
  cfg.daemon_period = Cycle{5'000};  // hot pages stay referenced across runs
  const RunResult r = simulate(cfg, wl);
  if (r.stats.totals.kernel.daemon_reclaim_failures > 0) {
    EXPECT_GT(r.stats.totals.kernel.threshold_raises, 0u);
    bool raised = false;
    for (std::uint32_t t : r.final_threshold)
      raised |= t > r.config.refetch_threshold;
    EXPECT_TRUE(raised);
  }
}

TEST(Machine, AsComaSuppressesRemapsUnderPressure) {
  auto wl = hot_workload(10);
  const RunResult a = simulate(config(ArchModel::kAsComa, 0.93), wl);
  const RunResult rn = simulate(config(ArchModel::kRNuma, 0.93), wl);
  EXPECT_GT(a.stats.totals.kernel.remap_suppressed, 0u);
  // R-NUMA never suppresses; it force-evicts instead.
  EXPECT_EQ(rn.stats.totals.kernel.remap_suppressed, 0u);
  EXPECT_LT(a.stats.totals.kernel.upgrades,
            rn.stats.totals.kernel.upgrades);
}

TEST(Machine, SynchronizationIsAccounted) {
  auto wl = hot_workload();
  const RunResult r = simulate(config(ArchModel::kCcNuma, 0.5), wl);
  EXPECT_GT(r.barrier_episodes, 0u);
  EXPECT_GT(r.stats.totals.time[TimeBucket::kSync], Cycle{0});
}

TEST(Machine, RemotePageCensusPopulated) {
  auto wl = hot_workload(2);
  const RunResult r = simulate(config(ArchModel::kCcNuma, 0.5), wl);
  // Each of the 4 nodes has a 24-page hot remote set.
  EXPECT_EQ(r.remote_page_node_pairs, 4u * 24);
}

TEST(Machine, RelocationCensusCountsHotPages) {
  auto wl = hot_workload();
  const RunResult r = simulate(config(ArchModel::kCcNuma, 0.5), wl);
  // CC-NUMA never remaps, but the census still reports which pages *would*
  // qualify (Table 6 is measured this way at 50% pressure).
  EXPECT_GT(r.relocated_pairs, 0u);
  EXPECT_LE(r.relocated_pairs, r.remote_page_node_pairs);
}

TEST(Machine, RunIsSingleShot) {
  auto wl = hot_workload(1);
  Machine m(config(ArchModel::kAsComa, 0.5), wl);
  m.run();
  EXPECT_THROW(m.run(), CheckFailure);
}

TEST(Machine, RejectsGranularityMismatch) {
  auto wl = hot_workload(1);
  MachineConfig cfg = config(ArchModel::kAsComa, 0.5);
  cfg.page_bytes = ByteCount{8192};
  cfg.l1_bytes = ByteCount{16384};
  EXPECT_THROW(Machine(cfg, wl), CheckFailure);
}

TEST(Machine, RejectsInvalidConfig) {
  auto wl = hot_workload(1);
  MachineConfig cfg = config(ArchModel::kAsComa, 0.5);
  cfg.refetch_threshold = 0;
  EXPECT_THROW(Machine(cfg, wl), CheckFailure);
}

TEST(Machine, UpgradedPagesServeFromPageCache) {
  auto wl = hot_workload();
  const RunResult r = simulate(config(ArchModel::kRNuma, 0.3), wl);
  EXPECT_GT(r.stats.totals.kernel.upgrades, 0u);
  EXPECT_GT(r.stats.totals.misses[MissSource::kScoma], 0u);
  // Upgrades flush the page: induced cold misses must be visible.
  EXPECT_GT(r.stats.totals.induced_cold_misses, 0u);
}

TEST(Machine, WritebacksAreTracked) {
  auto wl = hot_workload();
  const RunResult r = simulate(config(ArchModel::kCcNuma, 0.5), wl);
  EXPECT_GT(r.writebacks_local + r.writebacks_remote, 0u);
}

}  // namespace
}  // namespace ascoma::core
