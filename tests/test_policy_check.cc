// Regression tests for the AS-COMA policy checker (src/check/policy_model.*
// + the BackoffKernel it drives).  Three claims are pinned down:
//
//   1. the pristine policy satisfies every checked property on the 2-node /
//      <=4-page configurations the tool runs in CI;
//   2. every seeded policy mutation is caught, with a BFS-minimal
//      counterexample of at most 8 steps;
//   3. counterexample traces and state dumps speak in policy vocabulary
//      (mapping modes, thresholds, daemon verdicts), not raw integers.

#include "check/policy_model.hh"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/backoff_kernel.hh"
#include "check/explore_core.hh"

namespace ascoma::check {
namespace {

ExploreResult run(const PolicyCheckConfig& cfg) {
  const PolicyModel model(cfg);
  return explore_model(model, ExploreOptions{});
}

// ---- pristine ---------------------------------------------------------------

TEST(PolicyCheck, PristinePassesDefaultConfig) {
  const ExploreResult res = run(PolicyCheckConfig{});
  EXPECT_TRUE(res.ok) << res.report();
  EXPECT_FALSE(res.truncated);
  EXPECT_GT(res.states, 1000u);  // the space is genuinely explored
  EXPECT_GT(res.finals, 0u);     // and bottoms out in quiescent states
}

TEST(PolicyCheck, PristinePassesFourPagesAndDeeperPool) {
  PolicyCheckConfig cfg;
  cfg.nodes = 1;
  cfg.pages_per_node = 4;
  cfg.pool_frames = 2;
  cfg.touches = 6;
  const ExploreResult res = run(cfg);
  EXPECT_TRUE(res.ok) << res.report();
  EXPECT_FALSE(res.truncated);
}

TEST(PolicyCheck, PristinePassesFullInterleaving) {
  // Cross-check the node-ordered persistent set against the full product on
  // a budget small enough to stay exhaustive.
  PolicyCheckConfig cfg;
  cfg.touches = 2;
  cfg.daemon_runs = 3;
  cfg.ordered = false;
  const ExploreResult res = run(cfg);
  EXPECT_TRUE(res.ok) << res.report();
  EXPECT_FALSE(res.truncated);
}

// ---- mutations --------------------------------------------------------------

TEST(PolicyCheckMutations, EveryMutationCaughtWithShortTrace) {
  for (int i = 1; i < kNumPolicyMutations; ++i) {
    PolicyCheckConfig cfg;
    cfg.mutation = static_cast<PolicyMutation>(i);
    const ExploreResult res = run(cfg);
    EXPECT_FALSE(res.ok) << "mutation " << to_string(cfg.mutation)
                         << " was not caught";
    EXPECT_FALSE(res.violation.empty());
    // BFS yields minimal counterexamples; every seeded bug is shallow.
    EXPECT_LE(res.trace.size(), 8u)
        << "mutation " << to_string(cfg.mutation) << " trace:\n"
        << res.report();
  }
}

TEST(PolicyCheckMutations, UpgradeWhileDisabledNamesTheUpgrade) {
  PolicyCheckConfig cfg;
  cfg.mutation = PolicyMutation::kUpgradeWhileDisabled;
  const ExploreResult res = run(cfg);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.violation.find("remapping is disabled"), std::string::npos);
  ASSERT_FALSE(res.trace.empty());
  EXPECT_NE(res.trace.back().find("upgraded to S-COMA"), std::string::npos);
}

TEST(PolicyCheckMutations, PoolOvercommitIsAStateInvariant) {
  PolicyCheckConfig cfg;
  cfg.mutation = PolicyMutation::kUpgradeIgnoresPool;
  const ExploreResult res = run(cfg);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.violation.find("pool overcommitted"), std::string::npos);
}

TEST(PolicyCheckMutations, TracesSpeakPolicyVocabulary) {
  // Counterexamples must name policy states — mapping modes, thresholds,
  // daemon verdicts — not bare enum ints.
  PolicyCheckConfig cfg;
  cfg.mutation = PolicyMutation::kThrashingSticky;
  const ExploreResult res = run(cfg);
  ASSERT_FALSE(res.ok);
  for (const std::string& step : res.trace) {
    EXPECT_TRUE(step.find("touches page") != std::string::npos ||
                step.find("pageout daemon") != std::string::npos)
        << "unreadable trace step: " << step;
  }
  EXPECT_NE(res.final_dump.find("threshold="), std::string::npos);
  EXPECT_NE(res.final_dump.find("remap="), std::string::npos);
  EXPECT_TRUE(res.final_dump.find("S-COMA") != std::string::npos ||
              res.final_dump.find("unmapped") != std::string::npos ||
              res.final_dump.find("CC-NUMA") != std::string::npos)
      << res.final_dump;
}

TEST(PolicyCheckMutations, NamesRoundTrip) {
  for (int i = 0; i < kNumPolicyMutations; ++i) {
    const auto m = static_cast<PolicyMutation>(i);
    PolicyMutation parsed;
    ASSERT_TRUE(parse_policy_mutation(to_string(m), &parsed)) << to_string(m);
    EXPECT_EQ(parsed, m);
  }
  PolicyMutation parsed;
  EXPECT_FALSE(parse_policy_mutation("not-a-mutation", &parsed));
}

// ---- the kernel the model drives --------------------------------------------

arch::BackoffSettings tiny() { return PolicyCheckConfig{}.settings(); }

TEST(BackoffKernel, PressureEscalatesThenDisablesRemapping) {
  arch::BackoffKernel k(tiny());
  Cycle period = tiny().initial_period;
  auto s1 = k.on_pressure(true, &period);
  EXPECT_TRUE(s1.accepted);
  EXPECT_TRUE(s1.escalated);
  EXPECT_EQ(k.threshold(), 2u);
  EXPECT_TRUE(k.relocation_enabled());
  EXPECT_EQ(period, Cycle{8});
  auto s2 = k.on_pressure(true, &period);
  EXPECT_TRUE(s2.escalated);
  EXPECT_FALSE(k.relocation_enabled());  // converged to CC-NUMA
  auto s3 = k.on_pressure(true, &period);
  EXPECT_TRUE(s3.accepted);
  EXPECT_FALSE(s3.escalated);  // nothing left to escalate
  EXPECT_EQ(period, Cycle{16});  // saturated at period_max
}

TEST(BackoffKernel, RateLimitAbsorbsSamePeriodSignals) {
  arch::BackoffKernel k(tiny());
  Cycle period = tiny().initial_period;
  EXPECT_TRUE(k.on_pressure(true, &period).accepted);
  EXPECT_FALSE(k.on_pressure(false, &period).accepted);
  EXPECT_EQ(k.threshold(), 2u);  // unchanged by the absorbed signal
  EXPECT_TRUE(k.on_pressure(true, &period).accepted);
}

TEST(BackoffKernel, RecoveryIsHystereticAndClearsThrashing) {
  arch::BackoffKernel k(tiny());
  Cycle period = tiny().initial_period;
  k.on_pressure(true, &period);
  EXPECT_TRUE(k.thrashing());
  EXPECT_FALSE(k.on_healthy(true, &period).accepted);  // streak 1 of 2
  auto s = k.on_healthy(true, &period);
  EXPECT_TRUE(s.accepted);
  EXPECT_TRUE(s.relaxed);
  EXPECT_EQ(k.threshold(), tiny().initial_threshold);
  EXPECT_FALSE(k.thrashing());  // full health reached
  EXPECT_EQ(period, tiny().initial_period);
}

TEST(BackoffKernel, ColdEvidenceRequiredAndFailureResetsStreak) {
  arch::BackoffKernel k(tiny());
  Cycle period = tiny().initial_period;
  k.on_pressure(true, &period);
  EXPECT_FALSE(k.on_healthy(false, &period).accepted);  // no cold evidence
  EXPECT_FALSE(k.on_healthy(true, &period).accepted);   // streak 1 of 2
  k.clear_streak();                                     // a failure intervenes
  EXPECT_FALSE(k.on_healthy(true, &period).accepted);   // back to 1 of 2
  EXPECT_TRUE(k.on_healthy(true, &period).accepted);
}

}  // namespace
}  // namespace ascoma::check
