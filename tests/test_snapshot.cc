// Machine checkpoint/restore tests (ARCHITECTURE.md §15): for every
// architecture model, a run interrupted at a checkpoint and resumed in a
// fresh machine must finish with a bit-identical RunResult; snapshots must
// refuse to restore into a differently-built machine; and the default-on
// self-check must hold (save → restore → save is byte-stable).

#include "core/machine.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/check.hh"
#include "core/sweep_store.hh"
#include "store/codec.hh"
#include "store/snapshot.hh"
#include "workload/workload.hh"

namespace ascoma::core {
namespace {

constexpr double kScale = 0.1;

MachineConfig config_for(ArchModel arch) {
  MachineConfig cfg;
  cfg.arch = arch;
  cfg.memory_pressure = 0.7;
  return cfg;
}

/// Canonical bytes of a RunResult — the equality the golden CSV depends on.
std::vector<std::uint8_t> canon(const RunResult& r) {
  store::Encoder e;
  encode_run_result(e, r);
  return e.bytes();
}

const std::vector<ArchModel> kAllArchs = {
    ArchModel::kCcNuma, ArchModel::kScoma, ArchModel::kRNuma,
    ArchModel::kVcNuma, ArchModel::kAsComa};

TEST(Snapshot, FreshMachineSaveRestoreSaveIsByteStable) {
  const auto wl = workload::make_workload("fft", kScale);
  ASSERT_NE(wl, nullptr);
  for (ArchModel arch : kAllArchs) {
    const MachineConfig cfg = config_for(arch);
    Machine a(cfg, *wl);
    store::Snapshot snap;
    a.save(&snap);
    EXPECT_FALSE(snap.empty());

    Machine b(cfg, *wl);
    b.restore(snap);
    store::Snapshot again;
    b.save(&again);
    EXPECT_EQ(snap, again) << to_string(arch);
  }
}

TEST(Snapshot, ResumedRunMatchesUninterruptedRunAllArchitectures) {
  const auto wl = workload::make_workload("fft", kScale);
  ASSERT_NE(wl, nullptr);
  for (ArchModel arch : kAllArchs) {
    const MachineConfig cfg = config_for(arch);

    Machine reference(cfg, *wl);
    const RunResult expect = reference.run();

    // Checkpoint mid-run (self-check on by default: every snapshot must
    // round-trip byte-identically through a scratch machine or the run
    // fails here).
    std::vector<store::Snapshot> snaps;
    Machine interrupted(cfg, *wl);
    interrupted.set_checkpoint(
        Cycle{expect.cycles().value() / 3},
        [&snaps](const store::Snapshot& s, Cycle) { snaps.push_back(s); });
    const RunResult through = interrupted.run();
    ASSERT_GE(snaps.size(), 2u) << to_string(arch);
    // Checkpointing itself never changes simulated behaviour.
    EXPECT_EQ(canon(through), canon(expect)) << to_string(arch);

    // Resume from each snapshot — early and late — and finish the run.
    for (const store::Snapshot& snap : {snaps.front(), snaps.back()}) {
      Machine resumed(cfg, *wl);
      resumed.restore(snap);
      const RunResult got = resumed.run();
      EXPECT_EQ(canon(got), canon(expect)) << to_string(arch);
    }
  }
}

TEST(Snapshot, RestoreRefusesMismatchedConfig) {
  const auto wl = workload::make_workload("fft", kScale);
  Machine a(config_for(ArchModel::kAsComa), *wl);
  store::Snapshot snap;
  a.save(&snap);

  // Different architecture: different machine fingerprint.
  Machine b(config_for(ArchModel::kScoma), *wl);
  EXPECT_THROW(b.restore(snap), store::CodecError);

  // Different workload shape: also refused.
  const auto other = workload::make_workload("radix", kScale);
  Machine c(config_for(ArchModel::kAsComa), *other);
  EXPECT_THROW(c.restore(snap), store::CodecError);
}

TEST(Snapshot, RestoreRefusesTamperedBytes) {
  const auto wl = workload::make_workload("fft", kScale);
  Machine a(config_for(ArchModel::kAsComa), *wl);
  store::Snapshot snap;
  a.save(&snap);

  store::Snapshot truncated = snap;
  truncated.bytes.resize(truncated.bytes.size() / 2);
  Machine b(config_for(ArchModel::kAsComa), *wl);
  EXPECT_THROW(b.restore(truncated), store::CodecError);
}

TEST(Snapshot, RestoreRefusesAfterRun) {
  const auto wl = workload::make_workload("fft", kScale);
  Machine a(config_for(ArchModel::kCcNuma), *wl);
  store::Snapshot snap;
  a.save(&snap);
  a.run();
  EXPECT_THROW(a.restore(snap), CheckFailure);
}

TEST(Snapshot, FileRoundTripThroughRecordFraming) {
  const auto wl = workload::make_workload("fft", kScale);
  Machine a(config_for(ArchModel::kAsComa), *wl);
  store::Snapshot snap;
  a.save(&snap);

  const std::string path =
      (std::string(::getenv("TMPDIR") ? ::getenv("TMPDIR") : "/tmp")) +
      "/ascoma_snapshot_test.ckpt";
  store::write_snapshot_file(path, snap);
  const store::Snapshot back = store::read_snapshot_file(path);
  EXPECT_EQ(back, snap);
  ::remove(path.c_str());
}

TEST(Snapshot, SetCheckpointRejectsZeroInterval) {
  const auto wl = workload::make_workload("fft", kScale);
  Machine a(config_for(ArchModel::kAsComa), *wl);
  EXPECT_THROW(
      a.set_checkpoint(Cycle{0}, [](const store::Snapshot&, Cycle) {}),
      CheckFailure);
}

}  // namespace
}  // namespace ascoma::core
